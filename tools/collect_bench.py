#!/usr/bin/env python3
"""Fold every BENCH_<name>.json in a directory into one BENCH_SUMMARY.json.

Each experiment bench writes a flat report (see bench/bench_common.hpp):

    {"bench": "<name>", "metrics": {...}, "config": {...},
     "obs": {...}, "prof": {...}, "manifest": {...}}

This script collects them into a single machine-consumable summary -- the
repo's perf/quality trajectory snapshot -- keyed by bench name and sorted
deterministically:

    {
      "benches": {"<name>": {"pass": true, "metrics": {...}, "config": {...},
                             "obs": {...}, "prof": {...}, "manifest": {...}},
                  ...},
      "totals": {"count": N, "passed": N, "failed": ["<name>", ...]},
      "resilience": {...},   # distilled from BENCH_e13_resilience.json
      "artifacts": {"traces": [...], "timeseries": [...], "prof": [...]}
    }

The "resilience" section (present when the e13 fault-matrix bench and/or
the e15 partition-resilience bench ran) lifts the headline robustness
figures to the summary's top level so the PR-over-PR trajectory trends
them directly: baseline vs worst-cell precision, the degradation factor
between them, per-cell p99s, the crash-cell rejoin statistics, and --
under "partition" -- E15's per-cell holdover peaks/resync rounds, the
measured-vs-analytic alpha-growth slope ratios, and the byte-identity /
containment / bound verdicts.

Usage: collect_bench.py [directory] [--expect name1,name2,...]
                        [--baseline DIR --compare [--gate]]
(default directory: current directory)

--expect declares the bench reports that MUST be present: a missing
BENCH_<name>.json is reported by name and fails the run.  A silently
missing report used to collapse into a smaller-but-green summary -- the
worst failure mode for a trajectory file -- so absence is now as loud as a
failing bench.  --expect also audits provenance: every collected report
must carry a manifest with non-empty git_sha/compiler/build_type/preset/
host fields (see src/obs/manifest.hpp) -- a bench built without provenance
fails the run.

Trace-record loss is never silent: any report whose obs section (or
metrics) shows a nonzero *trace.overwritten* count gets a loud warning --
the post-mortem ring wrapped and early records are gone; raise
trace_capacity if the trace matters.

--baseline DIR --compare reads the baseline summary (DIR's
BENCH_SUMMARY.json, or its raw BENCH_*.json reports) and writes
BENCH_DELTA.json: per-metric {base, cur, ratio} for every numeric metric
present on both sides, plus a regression list driven by threshold
patterns:

    --min-ratio 'throughput.csps_per_sec=0.7'   # lower is worse
    --max-ratio '*.precision_max_us.mean=1.5'   # higher is worse

Patterns are fnmatch globs over "<bench>.<metric>".  Without --gate the
compare step is informational (regressions are printed but do not fail);
with --gate any regression exits 1.  Reports whose manifests disagree on
build_type or obs_enabled are compared anyway but flagged in the delta's
"mismatches" list -- a RelWithDebInfo-vs-sanitized comparison is noise.

Exit status: 0 when every collected bench passed and every expected report
exists (and, with --gate, no regressions), 1 otherwise, 2 when no reports
were found at all.
"""
import argparse
import fnmatch
import json
import sys
import tempfile
from pathlib import Path

MANIFEST_REQUIRED = ("git_sha", "compiler", "build_type", "preset", "host")


def resilience_section(metrics: dict) -> dict:
    """Distill the e13 fault-matrix metrics into a trajectory-friendly dict."""
    baseline = metrics.get("baseline_p99_us")
    worst = metrics.get("worst_p99_us")
    section = {
        "baseline_p99_us": baseline,
        "worst_p99_us": worst,
        "degradation_factor": (round(worst / baseline, 3)
                               if baseline and worst else None),
        "cells": {},
        "crash": {},
    }
    for key, value in sorted(metrics.items()):
        if key.startswith("l") and key.endswith(".precision_p99_us"):
            cell = key.split(".", 1)[0]          # e.g. "l20_c10"
            section["cells"][cell] = value
        elif key.startswith("crash."):
            section["crash"][key.removeprefix("crash.")] = value
    return section


def partition_section(metrics: dict) -> dict:
    """Distill the e15 partition-resilience metrics (gateway holdover)."""
    section = {
        "containment_violations": metrics.get("containment_violations"),
        "bytes_identical": metrics.get("bytes_identical"),
        "holdover_within_bound": metrics.get("holdover_within_bound"),
        "resync_bounded": metrics.get("resync_bounded"),
        "alpha_slope_ratio": {},
        "cells": {},
    }
    for key, value in sorted(metrics.items()):
        if key.endswith("_alpha_slope_ratio"):
            shape = key.removesuffix("_alpha_slope_ratio")
            section["alpha_slope_ratio"][shape] = value
        elif key.endswith("_peak_holdover_alpha_us"):
            cell = key.removesuffix("_peak_holdover_alpha_us")
            section["cells"].setdefault(cell, {})["peak_holdover_alpha_us"] \
                = value
        elif key.endswith("_rounds_to_resync"):
            cell = key.removesuffix("_rounds_to_resync")
            section["cells"].setdefault(cell, {})["rounds_to_resync"] = value
    return section


def trace_loss(entry: dict) -> float:
    """Total trace-ring records lost by a bench entry (obs + metrics keys)."""
    lost = 0.0
    for section in ("obs", "metrics"):
        for key, value in entry.get(section, {}).items():
            if "trace.overwritten" in key and isinstance(value, (int, float)):
                lost += max(0.0, float(value))
    return lost


def manifest_problems(entry: dict) -> list:
    """Names of missing/empty provenance fields in a bench entry."""
    manifest = entry.get("manifest")
    if not isinstance(manifest, dict) or not manifest:
        return ["manifest"]
    bad = [f for f in MANIFEST_REQUIRED
           if not str(manifest.get(f, "")).strip()]
    if "obs_enabled" not in manifest:
        bad.append("obs_enabled")
    return bad


def collect(directory: Path, expected: list) -> dict:
    benches = {}
    failed = []
    for path in sorted(directory.glob("BENCH_*.json")):
        if path.name in ("BENCH_SUMMARY.json", "BENCH_DELTA.json"):
            continue
        try:
            report = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"collect_bench: skipping {path.name}: {err}", file=sys.stderr)
            failed.append(path.stem.removeprefix("BENCH_"))
            continue
        name = report.get("bench", path.stem.removeprefix("BENCH_"))
        metrics = report.get("metrics", {})
        ok = metrics.get("pass") == 1
        if not ok:
            failed.append(name)
        entry = {
            "pass": ok,
            "metrics": dict(sorted(metrics.items())),
            "config": dict(sorted(report.get("config", {}).items())),
        }
        for section in ("obs", "prof", "manifest"):
            if section in report:
                entry[section] = report[section]
        benches[name] = entry
    missing = sorted(set(expected) - set(benches))
    for name in missing:
        print(f"collect_bench: MISSING expected report BENCH_{name}.json "
              f"in {directory}", file=sys.stderr)
    summary = {
        "benches": benches,
        "totals": {
            "count": len(benches),
            "passed": len(benches) - len(failed),
            "failed": sorted(failed),
            "missing": missing,
        },
        "artifacts": {
            "traces": sorted(p.name for p in directory.glob("TRACE_*.json")),
            "timeseries": sorted(p.name for p in directory.glob("TIMESERIES_*.csv")),
            "prof": sorted(p.name for p in directory.glob("PROF_*.json")),
        },
    }
    if "e13_resilience" in benches:
        summary["resilience"] = resilience_section(
            benches["e13_resilience"]["metrics"])
    if "e15_partition_resilience" in benches:
        summary.setdefault("resilience", {})["partition"] = partition_section(
            benches["e15_partition_resilience"]["metrics"])
    return summary


def warn_trace_loss(summary: dict) -> None:
    for name, entry in sorted(summary["benches"].items()):
        lost = trace_loss(entry)
        if lost > 0:
            print(f"collect_bench: WARNING: bench '{name}' LOST "
                  f"{lost:.0f} trace record(s) to ring wraparound -- the "
                  "post-mortem trace is incomplete; raise trace_capacity "
                  "if the trace matters", file=sys.stderr)


def validate_manifests(summary: dict) -> list:
    """Benches with missing provenance (printed loudly; fails with --expect)."""
    bad = []
    for name, entry in sorted(summary["benches"].items()):
        problems = manifest_problems(entry)
        if problems:
            bad.append(name)
            print(f"collect_bench: bench '{name}' has NO usable provenance: "
                  f"missing/empty {', '.join(problems)} -- rebuilt without "
                  "the manifest wiring?", file=sys.stderr)
    return bad


def load_baseline(directory: Path) -> dict:
    summary_path = directory / "BENCH_SUMMARY.json"
    if summary_path.is_file():
        return json.loads(summary_path.read_text())
    return collect(directory, [])


def parse_thresholds(specs: list, flag: str) -> list:
    out = []
    for spec in specs:
        pattern, sep, ratio = spec.rpartition("=")
        if not sep or not pattern:
            raise SystemExit(f"collect_bench: bad {flag} '{spec}' "
                             "(want PATTERN=RATIO)")
        try:
            out.append((pattern, float(ratio)))
        except ValueError:
            raise SystemExit(f"collect_bench: bad {flag} ratio in '{spec}'")
    return out


def compare(current: dict, baseline: dict, min_ratio: list,
            max_ratio: list) -> dict:
    """Per-metric current/baseline ratios + threshold-driven regressions."""
    metrics = {}
    regressions = []
    mismatches = []
    cur_benches = current["benches"]
    base_benches = baseline.get("benches", {})
    for name in sorted(set(cur_benches) & set(base_benches)):
        cur_man = cur_benches[name].get("manifest", {})
        base_man = base_benches[name].get("manifest", {})
        for field in ("build_type", "obs_enabled"):
            if cur_man.get(field) != base_man.get(field):
                mismatches.append(f"{name}.{field}: baseline="
                                  f"{base_man.get(field)!r} current="
                                  f"{cur_man.get(field)!r}")
        cur_m = cur_benches[name]["metrics"]
        base_m = base_benches[name]["metrics"]
        for key in sorted(set(cur_m) & set(base_m)):
            cur_v, base_v = cur_m[key], base_m[key]
            if not isinstance(cur_v, (int, float)) or \
               not isinstance(base_v, (int, float)):
                continue
            full = f"{name}.{key}"
            ratio = (cur_v / base_v) if base_v else None
            metrics[full] = {"base": base_v, "cur": cur_v, "ratio": ratio}
            if ratio is None:
                continue
            for pattern, floor in min_ratio:
                if fnmatch.fnmatch(full, pattern) and ratio < floor:
                    regressions.append(
                        f"{full}: ratio {ratio:.3f} < floor {floor} "
                        f"(base {base_v:.6g} -> cur {cur_v:.6g})")
            for pattern, ceil in max_ratio:
                if fnmatch.fnmatch(full, pattern) and ratio > ceil:
                    regressions.append(
                        f"{full}: ratio {ratio:.3f} > ceiling {ceil} "
                        f"(base {base_v:.6g} -> cur {cur_v:.6g})")
    return {
        "thresholds": {
            "min_ratio": [[p, r] for p, r in min_ratio],
            "max_ratio": [[p, r] for p, r in max_ratio],
        },
        "metrics": metrics,
        "mismatches": mismatches,
        "regressions": regressions,
    }


def main(argv: list) -> int:
    ap = argparse.ArgumentParser(
        description="Fold BENCH_*.json reports into BENCH_SUMMARY.json")
    ap.add_argument("directory", nargs="?", default=".", type=Path)
    ap.add_argument("--expect", action="append", default=[],
                    help="comma-separated bench names that must be present "
                         "(also turns on manifest validation); repeatable")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="directory holding the baseline BENCH_SUMMARY.json "
                         "(or raw BENCH_*.json) for --compare")
    ap.add_argument("--compare", action="store_true",
                    help="write BENCH_DELTA.json of current vs --baseline")
    ap.add_argument("--min-ratio", action="append", default=[],
                    metavar="PATTERN=R",
                    help="regression when cur/base < R for metrics matching "
                         "the fnmatch PATTERN (lower is worse); repeatable")
    ap.add_argument("--max-ratio", action="append", default=[],
                    metavar="PATTERN=R",
                    help="regression when cur/base > R (higher is worse)")
    ap.add_argument("--gate", action="store_true",
                    help="fail (exit 1) on compare regressions; without this "
                         "the compare step is informational")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in fixture suite and exit")
    args = ap.parse_args(argv[1:])
    if args.self_test:
        return self_test()
    expected = [n for chunk in args.expect for n in chunk.split(",") if n]
    summary = collect(args.directory, expected)
    if not summary["benches"]:
        print(f"collect_bench: no BENCH_*.json in {args.directory}",
              file=sys.stderr)
        return 2
    warn_trace_loss(summary)
    bad_manifests = validate_manifests(summary) if args.expect else []
    out = args.directory / "BENCH_SUMMARY.json"
    out.write_text(json.dumps(summary, indent=1, sort_keys=False) + "\n")
    totals = summary["totals"]
    print(f"collect_bench: {out} ({totals['passed']}/{totals['count']} passed)")

    rc = 0
    if args.compare:
        if args.baseline is None:
            print("collect_bench: --compare needs --baseline DIR",
                  file=sys.stderr)
            return 2
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, json.JSONDecodeError) as err:
            print(f"collect_bench: cannot read baseline from "
                  f"{args.baseline}: {err}", file=sys.stderr)
            return 2
        delta = compare(summary, baseline,
                        parse_thresholds(args.min_ratio, "--min-ratio"),
                        parse_thresholds(args.max_ratio, "--max-ratio"))
        delta_path = args.directory / "BENCH_DELTA.json"
        delta_path.write_text(json.dumps(delta, indent=1) + "\n")
        print(f"collect_bench: {delta_path} "
              f"({len(delta['metrics'])} metrics compared, "
              f"{len(delta['regressions'])} regression(s))")
        for line in delta["mismatches"]:
            print(f"collect_bench: baseline mismatch: {line}", file=sys.stderr)
        for line in delta["regressions"]:
            print(f"collect_bench: REGRESSION: {line}", file=sys.stderr)
        if delta["regressions"] and args.gate:
            rc = 1

    if totals["failed"]:
        print(f"collect_bench: FAILED: {', '.join(totals['failed'])}",
              file=sys.stderr)
        rc = 1
    if totals["missing"]:
        print(f"collect_bench: MISSING: {', '.join(totals['missing'])}",
              file=sys.stderr)
        rc = 1
    if bad_manifests:
        print(f"collect_bench: NO PROVENANCE: {', '.join(bad_manifests)}",
              file=sys.stderr)
        rc = 1
    return rc


# -- self-test ---------------------------------------------------------------

GOOD_MANIFEST = {
    "git_sha": "abc123def456", "compiler": "GNU 12.2.0",
    "build_type": "RelWithDebInfo", "preset": "default",
    "host": "ci-box", "obs_enabled": True, "seed": 1616, "threads": 4,
}


def _report(name: str, metrics: dict, manifest=None, obs=None) -> str:
    doc = {"bench": name, "metrics": metrics, "config": {}}
    if obs is not None:
        doc["obs"] = obs
    if manifest is not None:
        doc["manifest"] = manifest
    return json.dumps(doc)


def self_test() -> int:
    failures = []

    def expect(cond, what):
        if not cond:
            failures.append(what)

    # Collection + manifest validation + trace-loss detection.
    with tempfile.TemporaryDirectory() as tmp:
        d = Path(tmp)
        (d / "BENCH_good.json").write_text(_report(
            "good", {"pass": 1, "csps_per_sec": 100.0},
            manifest=GOOD_MANIFEST, obs={"trace.overwritten": 0}))
        (d / "BENCH_lossy.json").write_text(_report(
            "lossy", {"pass": 1, "obs.trace.overwritten.mean": 12.0},
            manifest=GOOD_MANIFEST))
        (d / "BENCH_naked.json").write_text(_report(
            "naked", {"pass": 1}))
        summary = collect(d, [])
        expect(set(summary["benches"]) == {"good", "lossy", "naked"},
               f"collect found {sorted(summary['benches'])}")
        expect(trace_loss(summary["benches"]["good"]) == 0,
               "good bench misreported trace loss")
        expect(trace_loss(summary["benches"]["lossy"]) == 12.0,
               "lossy bench trace loss not detected")
        expect(manifest_problems(summary["benches"]["good"]) == [],
               "good manifest flagged")
        expect(manifest_problems(summary["benches"]["naked"]) == ["manifest"],
               "missing manifest not flagged")
        incomplete = dict(GOOD_MANIFEST, git_sha="")
        expect(manifest_problems({"manifest": incomplete}) == ["git_sha"],
               "empty git_sha not flagged")

        # End-to-end: --expect fails the run on the provenance-free report.
        rc = main(["collect_bench.py", str(d), "--expect", "good,naked"])
        expect(rc == 1, f"--expect with naked manifest: rc {rc} != 1")

    # E15 partition-resilience distillation.
    sec = partition_section({
        "pass": 1, "containment_violations": 0, "bytes_identical": 1,
        "holdover_within_bound": 1, "resync_bounded": 1,
        "chain_alpha_slope_ratio": 1.01,
        "chain_short_peak_holdover_alpha_us": 46.7,
        "chain_short_rounds_to_resync": 0.3,
        "chain_short_violations": 0,
    })
    expect(sec["alpha_slope_ratio"] == {"chain": 1.01},
           f"slope ratios {sec['alpha_slope_ratio']}")
    expect(sec["cells"] == {"chain_short": {"peak_holdover_alpha_us": 46.7,
                                            "rounds_to_resync": 0.3}},
           f"partition cells {sec['cells']}")
    expect(sec["bytes_identical"] == 1 and sec["containment_violations"] == 0,
           "partition verdicts not lifted")

    # The summary-level wiring: an e15 report creates resilience.partition.
    with tempfile.TemporaryDirectory() as tmp:
        d = Path(tmp)
        (d / "BENCH_e15_partition_resilience.json").write_text(_report(
            "e15_partition_resilience",
            {"pass": 1, "bytes_identical": 1, "mesh_alpha_slope_ratio": 0.99},
            manifest=GOOD_MANIFEST))
        summary = collect(d, [])
        expect(summary["resilience"]["partition"]["alpha_slope_ratio"] ==
               {"mesh": 0.99},
               f"resilience.partition {summary.get('resilience')}")

    # Compare: ratios, regression thresholds, manifest mismatch flag.
    with tempfile.TemporaryDirectory() as tmp:
        base_d, cur_d = Path(tmp) / "base", Path(tmp) / "cur"
        base_d.mkdir()
        cur_d.mkdir()
        (base_d / "BENCH_t.json").write_text(_report(
            "t", {"pass": 1, "csps_per_sec": 200.0, "precision_us": 1.0},
            manifest=GOOD_MANIFEST))
        slower = dict(GOOD_MANIFEST, build_type="RelWithDebInfo,san:address")
        (cur_d / "BENCH_t.json").write_text(_report(
            "t", {"pass": 1, "csps_per_sec": 100.0, "precision_us": 1.1},
            manifest=slower))
        cur = collect(cur_d, [])
        base = collect(base_d, [])
        delta = compare(cur, base,
                        min_ratio=[("t.csps_per_sec", 0.7)],
                        max_ratio=[("*.precision_us", 1.5)])
        expect(delta["metrics"]["t.csps_per_sec"]["ratio"] == 0.5,
               f"ratio {delta['metrics']['t.csps_per_sec']}")
        expect(len(delta["regressions"]) == 1 and
               "t.csps_per_sec" in delta["regressions"][0],
               f"regressions {delta['regressions']}")
        expect(any("build_type" in m for m in delta["mismatches"]),
               f"mismatches {delta['mismatches']}")

        # Informational vs gated exit codes.
        rc = main(["collect_bench.py", str(cur_d), "--baseline", str(base_d),
                   "--compare", "--min-ratio", "t.csps_per_sec=0.7"])
        expect(rc == 0, f"informational compare: rc {rc} != 0")
        expect((cur_d / "BENCH_DELTA.json").is_file(), "no BENCH_DELTA.json")
        rc = main(["collect_bench.py", str(cur_d), "--baseline", str(base_d),
                   "--compare", "--min-ratio", "t.csps_per_sec=0.7", "--gate"])
        expect(rc == 1, f"gated compare: rc {rc} != 1")

        # Gating path, exhaustively (this is what CI's sixth gate runs):
        # a satisfied floor gates green ...
        rc = main(["collect_bench.py", str(cur_d), "--baseline", str(base_d),
                   "--compare", "--min-ratio", "t.csps_per_sec=0.4", "--gate"])
        expect(rc == 0, f"gated compare, floor satisfied: rc {rc} != 0")
        # ... a breached --max-ratio ceiling gates red ...
        rc = main(["collect_bench.py", str(cur_d), "--baseline", str(base_d),
                   "--compare", "--max-ratio", "*.precision_us=1.05",
                   "--gate"])
        expect(rc == 1, f"gated compare, ceiling breached: rc {rc} != 1")
        # ... and a bare metric name (no "<bench>." prefix) binds NOTHING:
        # patterns match the full "<bench>.<metric>" key, so a prefix-less
        # threshold silently gates zero metrics.  Pinned here because the
        # CI workflow shipped exactly this mistake for two PRs.
        rc = main(["collect_bench.py", str(cur_d), "--baseline", str(base_d),
                   "--compare", "--min-ratio", "csps_per_sec=0.7", "--gate"])
        expect(rc == 0, f"gated compare, unbound bare pattern: rc {rc} != 0")
        delta = json.loads((cur_d / "BENCH_DELTA.json").read_text())
        expect(delta["regressions"] == [],
               f"bare pattern unexpectedly bound: {delta['regressions']}")

    if failures:
        for f in failures:
            print(f"collect_bench self-test FAILED: {f}", file=sys.stderr)
        return 1
    print("collect_bench self-test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
