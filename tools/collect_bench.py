#!/usr/bin/env python3
"""Fold every BENCH_<name>.json in a directory into one BENCH_SUMMARY.json.

Each experiment bench writes a flat report (see bench/bench_common.hpp):

    {"bench": "<name>", "metrics": {...}, "config": {...}}

This script collects them into a single machine-consumable summary -- the
repo's perf/quality trajectory snapshot -- keyed by bench name and sorted
deterministically:

    {
      "benches": {"<name>": {"pass": true, "metrics": {...}, "config": {...}},
                  ...},
      "totals": {"count": N, "passed": N, "failed": ["<name>", ...]},
      "resilience": {...},   # distilled from BENCH_e13_resilience.json
      "artifacts": {"traces": [...], "timeseries": [...]}
    }

The "resilience" section (present only when the e13 fault-matrix bench ran)
lifts the headline robustness figures to the summary's top level so the
PR-over-PR trajectory trends them directly: baseline vs worst-cell
precision, the degradation factor between them, per-cell p99s, and the
crash-cell rejoin statistics.

Usage: collect_bench.py [directory] [--expect name1,name2,...]
(default directory: current directory)

--expect declares the bench reports that MUST be present: a missing
BENCH_<name>.json is reported by name and fails the run.  A silently
missing report used to collapse into a smaller-but-green summary -- the
worst failure mode for a trajectory file -- so absence is now as loud as a
failing bench.

Exit status: 0 when every collected bench passed and every expected report
exists, 1 otherwise (missing "pass", a failed bench, or a missing expected
report), 2 when no reports were found at all.
"""
import argparse
import json
import sys
from pathlib import Path


def resilience_section(metrics: dict) -> dict:
    """Distill the e13 fault-matrix metrics into a trajectory-friendly dict."""
    baseline = metrics.get("baseline_p99_us")
    worst = metrics.get("worst_p99_us")
    section = {
        "baseline_p99_us": baseline,
        "worst_p99_us": worst,
        "degradation_factor": (round(worst / baseline, 3)
                               if baseline and worst else None),
        "cells": {},
        "crash": {},
    }
    for key, value in sorted(metrics.items()):
        if key.startswith("l") and key.endswith(".precision_p99_us"):
            cell = key.split(".", 1)[0]          # e.g. "l20_c10"
            section["cells"][cell] = value
        elif key.startswith("crash."):
            section["crash"][key.removeprefix("crash.")] = value
    return section


def collect(directory: Path, expected: list) -> dict:
    benches = {}
    failed = []
    for path in sorted(directory.glob("BENCH_*.json")):
        if path.name == "BENCH_SUMMARY.json":
            continue
        try:
            report = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"collect_bench: skipping {path.name}: {err}", file=sys.stderr)
            failed.append(path.stem.removeprefix("BENCH_"))
            continue
        name = report.get("bench", path.stem.removeprefix("BENCH_"))
        metrics = report.get("metrics", {})
        ok = metrics.get("pass") == 1
        if not ok:
            failed.append(name)
        benches[name] = {
            "pass": ok,
            "metrics": dict(sorted(metrics.items())),
            "config": dict(sorted(report.get("config", {}).items())),
        }
    missing = sorted(set(expected) - set(benches))
    for name in missing:
        print(f"collect_bench: MISSING expected report BENCH_{name}.json "
              f"in {directory}", file=sys.stderr)
    summary = {
        "benches": benches,
        "totals": {
            "count": len(benches),
            "passed": len(benches) - len(failed),
            "failed": sorted(failed),
            "missing": missing,
        },
        "artifacts": {
            "traces": sorted(p.name for p in directory.glob("TRACE_*.json")),
            "timeseries": sorted(p.name for p in directory.glob("TIMESERIES_*.csv")),
        },
    }
    if "e13_resilience" in benches:
        summary["resilience"] = resilience_section(
            benches["e13_resilience"]["metrics"])
    return summary


def main(argv: list) -> int:
    ap = argparse.ArgumentParser(
        description="Fold BENCH_*.json reports into BENCH_SUMMARY.json")
    ap.add_argument("directory", nargs="?", default=".", type=Path)
    ap.add_argument("--expect", action="append", default=[],
                    help="comma-separated bench names that must be present; "
                         "repeatable")
    args = ap.parse_args(argv[1:])
    expected = [n for chunk in args.expect for n in chunk.split(",") if n]
    summary = collect(args.directory, expected)
    if not summary["benches"]:
        print(f"collect_bench: no BENCH_*.json in {args.directory}",
              file=sys.stderr)
        return 2
    out = args.directory / "BENCH_SUMMARY.json"
    out.write_text(json.dumps(summary, indent=1, sort_keys=False) + "\n")
    totals = summary["totals"]
    print(f"collect_bench: {out} ({totals['passed']}/{totals['count']} passed)")
    if totals["failed"]:
        print(f"collect_bench: FAILED: {', '.join(totals['failed'])}",
              file=sys.stderr)
        return 1
    if totals["missing"]:
        print(f"collect_bench: MISSING: {', '.join(totals['missing'])}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
