#!/usr/bin/env python3
"""nti-lint: repo-specific determinism & unit-safety lint for the NTI tree.

The deterministic clock core must stay bit-reproducible and unit-safe, and
those properties are invariants the compiler cannot check.  This tool walks
``src/`` and enforces them as a ctest (label ``lint``); see
docs/STATIC_ANALYSIS.md for the full contract.

Rules (category in parentheses is the sanction key):

  float     No ``double``/``float`` types in the deterministic clock core
            (src/utcsu, src/csa, src/interval).  Real-valued configuration
            inputs are allowed only behind an explicit sanction that states
            where the value is re-quantized to integers.
  nondet    No nondeterminism sources anywhere in src/: std::random_device,
            rand()/srand(), time(NULL/nullptr/0), getenv.
  prof      No wall-clock reads (std::chrono system/steady/high_resolution
            clocks, rdtsc) anywhere in src/ outside the profiler's home
            (src/obs/prof*).  The profiler measures real time by design;
            everything else reading a wall clock is either a determinism
            bug or belongs behind a PROF_ZONE.  Sanctioned call sites
            (e.g. mc::Runner's human-facing throughput figure) must state
            why the value can never feed back into simulation state.
  unordered No std::unordered_{map,set,multimap,multiset} anywhere in src/:
            hash iteration order is layout-dependent and has already caused
            export nondeterminism once.
  offset    No raw hex literals in the *address* argument of bus_read /
            bus_write / cpu_read32 / cpu_write32 calls, and no
            ``<base> + 0x...`` address math; register offsets live in
            src/nti/memmap.hpp and src/utcsu/regs.hpp as named constants.
            (Write *values* are exempt: broadcast masks etc. are data.)
  metric    Metric names registered via add_counter/add_gauge/
            add_distribution and register_metrics prefixes must be
            lowercase dotted snake_case, and full names must start with a
            documented root (see METRIC_ROOTS / docs/OBSERVABILITY.md).
  alloc     No ``make_shared<...EventState...>`` anywhere in src/: the
            scheduler hot path allocates event storage from the engine's
            slab/freelist (src/sim/engine.hpp), and a per-event heap
            allocation is exactly the regression the slab rewrite removed
            (docs/PERFORMANCE.md).  The pre-rewrite implementation is kept
            for comparison in bench/micro/legacy_engine.hpp, outside this
            tool's walk.
  shard     No concurrency primitives (std::thread/mutex/atomic/
            condition_variable/future/..., thread_local) anywhere in src/
            outside the thread-pool home (src/mc/pool.*).  The sharded
            engine's determinism argument rests on segments sharing *no*
            mutable state outside the per-link handoff queues, with the
            pool's barrier providing every happens-before edge
            (docs/SHARDING.md); ad-hoc synchronization anywhere else is
            either a determinism hazard or belongs in the pool.  Sanctioned
            call sites must state why no output byte can depend on them.

Sanction grammar (reason text after ``:`` is mandatory -- an unexplained
exemption is itself a defect):

  // nti-lint: allow(CAT): reason           this line or the next line
  // nti-lint: begin-allow(CAT): reason     region start
  // nti-lint: end-allow(CAT)               region end
  // nti-lint: allow-file(CAT): reason      whole file

Exit status: 0 clean, 1 violations found, 2 usage/internal error.

Implementation note: the container has no libclang, so this is a line
lexer, not a parser.  It strips string literals and comments before
matching, and understands just enough argument structure for the offset
rule.  That makes it conservative where it must be (sanctions are explicit)
and cheap everywhere else.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

CATEGORIES = ("float", "nondet", "unordered", "offset", "metric", "alloc",
              "prof", "shard")

# Directories (relative to the repo root) whose files are linted at all.
SRC_ROOT = "src"

# The deterministic clock core: the only scope of the `float` rule.
CLOCK_CORE_DIRS = ("src/utcsu", "src/csa", "src/interval")

# Files allowed to define raw register offsets.
OFFSET_HOME_FILES = ("src/nti/memmap.hpp", "src/utcsu/regs.hpp")

# The profiler's home: the only path prefix allowed to read wall clocks.
PROF_HOME_PREFIX = "src/obs/prof"

# The thread pool's home: the only path prefix allowed to hold concurrency
# primitives (docs/SHARDING.md).
POOL_HOME_PREFIX = "src/mc/pool."

# Documented metric-name roots (first dotted segment of a full name or of a
# register_metrics prefix).  Extend here *and* in docs/STATIC_ANALYSIS.md.
METRIC_ROOTS = {
    "sim", "net", "fault", "cluster", "span", "csa",
    "comco", "node", "gps", "mc", "obs",
}

CPP_EXTENSIONS = (".cpp", ".hpp", ".cc", ".hh", ".h")

SANCTION_RE = re.compile(
    r"//\s*nti-lint:\s*"
    r"(?P<kind>allow|begin-allow|end-allow|allow-file)"
    r"\((?P<cat>[a-z]+)\)"
    r"(?P<reason>:.*)?$"
)

FLOAT_RE = re.compile(r"\b(?:double|float)\b")
NONDET_RE = re.compile(
    r"std::random_device"
    r"|\brandom_device\b"
    r"|(?<![\w:])s?rand\s*\("
    r"|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"
    r"|(?<![\w:])(?:std::)?getenv\b"
)
PROF_RE = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"|\b__builtin_ia32_rdtscp?\b"
    r"|\b__rdtscp?\b"
    r"|\brdtscp?\s*\("
)
UNORDERED_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")
SHARD_RE = re.compile(
    r"std::(?:jthread|thread|mutex|recursive_mutex|shared_mutex|timed_mutex"
    r"|condition_variable(?:_any)?|atomic\w*|lock_guard|unique_lock"
    r"|scoped_lock|shared_lock|async|future|shared_future|promise|barrier"
    r"|latch|counting_semaphore|binary_semaphore|call_once|once_flag"
    r"|stop_token)\b"
    r"|\bthread_local\b"
)
ALLOC_RE = re.compile(r"\bmake_shared\s*<[^>]*EventState")
HEX_RE = re.compile(r"0[xX][0-9a-fA-F'][0-9a-fA-F']*")
BUS_CALL_RE = re.compile(r"\b(bus_read|bus_write|cpu_read32|cpu_write32)\s*\(")
OFFSET_MATH_RE = re.compile(r"\bk\w*Base\s*\+\s*0[xX][0-9a-fA-F']+")
METRIC_CALL_RE = re.compile(r"\b(add_counter|add_gauge|add_distribution)\s*\(")
REGISTER_METRICS_RE = re.compile(r"\bregister_metrics\s*\(")
METRIC_NAME_RE = re.compile(r"^[a-z0-9_.<>]+$")  # <N> placeholders in docs
STRING_LIT_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


class Violation:
    def __init__(self, path: str, line: int, cat: str, message: str):
        self.path = path
        self.line = line
        self.cat = cat
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.cat}] {self.message}"


def strip_noncode(line: str, in_block_comment: bool):
    """Split a physical line into comment-free views.

    Returns (code, code_with_strings, comment, still_in_block):
      code              literals masked with '#' -- for keyword rules, so a
                        "double" inside a string never trips the float rule;
      code_with_strings literals preserved -- for the metric-name check;
      comment           the //-comment tail (for sanction parsing).
    """
    code = []
    literal = []
    comment = ""
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(code), "".join(literal), comment, True
            i = end + 2
            in_block_comment = False
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            comment = line[i:]
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            in_block_comment = True
            i += 2
            continue
        if c == '"' or c == "'":
            quote = c
            code.append('"' if quote == '"' else " ")
            literal.append(quote if quote == '"' else " ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                code.append("#")  # placeholder, keeps column math sane
                literal.append(line[i] if quote == '"' else " ")
                i += 1
            if quote == '"':
                code.append('"')
                literal.append('"')
            i += 1
            continue
        code.append(c)
        literal.append(c)
        i += 1
    return "".join(code), "".join(literal), comment, in_block_comment


def split_top_level_args(argtext: str):
    """Split an argument list on top-level commas (parens/brackets nested)."""
    args = []
    depth = 0
    current = []
    for ch in argtext:
        if ch in "([{<":
            depth += 1
        elif ch in ")]}>":
            depth = max(0, depth - 1)
        if ch == "," and depth == 0:
            args.append("".join(current))
            current = []
        else:
            current.append(ch)
    args.append("".join(current))
    return args


def extract_call_args(text: str, open_paren: int):
    """Return (argtext, end_index) for the call whose '(' is at open_paren,
    or (None, None) if the call does not close inside `text`."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:i], i
    return None, None


class FileLinter:
    def __init__(self, relpath: str, lines, repo_root: str):
        self.relpath = relpath
        self.lines = lines
        self.repo_root = repo_root
        self.violations = []
        self.errors = []  # sanction-grammar problems (also fail the run)
        # cat -> sanction state
        self.file_allow = set()
        self.region_allow = {}  # cat -> line where region began
        self.next_line_allow = {}  # cat -> True (armed by a preceding allow)

    def allowed(self, cat: str) -> bool:
        return (
            cat in self.file_allow
            or cat in self.region_allow
            or self.next_line_allow.get(cat, False)
        )

    def report(self, lineno: int, cat: str, message: str):
        if not self.allowed(cat):
            self.violations.append(
                Violation(self.relpath, lineno, cat, message))

    def handle_sanction(self, lineno: int, comment: str):
        m = SANCTION_RE.search(comment)
        if m is None:
            # Only the directive form `nti-lint:` is parsed; prose mentions
            # of the tool by name ("nti-lint's shard rule") are just text.
            if "nti-lint:" in comment:
                self.errors.append(Violation(
                    self.relpath, lineno, "sanction",
                    "unparseable nti-lint directive"))
            return None
        kind, cat, reason = m.group("kind"), m.group("cat"), m.group("reason")
        if cat not in CATEGORIES:
            self.errors.append(Violation(
                self.relpath, lineno, "sanction",
                f"unknown category '{cat}' (known: {', '.join(CATEGORIES)})"))
            return None
        if kind != "end-allow" and (reason is None or
                                    len(reason.lstrip(': ').strip()) == 0):
            self.errors.append(Violation(
                self.relpath, lineno, "sanction",
                f"{kind}({cat}) needs a ': reason' -- say why it is safe"))
            return None
        if kind == "allow-file":
            self.file_allow.add(cat)
        elif kind == "begin-allow":
            if cat in self.region_allow:
                self.errors.append(Violation(
                    self.relpath, lineno, "sanction",
                    f"nested begin-allow({cat}); already open at line "
                    f"{self.region_allow[cat]}"))
            self.region_allow[cat] = lineno
        elif kind == "end-allow":
            if cat not in self.region_allow:
                self.errors.append(Violation(
                    self.relpath, lineno, "sanction",
                    f"end-allow({cat}) without matching begin-allow"))
            else:
                del self.region_allow[cat]
        return (kind, cat)

    # -- per-rule checks ----------------------------------------------------

    def in_clock_core(self) -> bool:
        return any(self.relpath == d or self.relpath.startswith(d + "/")
                   for d in CLOCK_CORE_DIRS)

    def is_offset_home(self) -> bool:
        return self.relpath in OFFSET_HOME_FILES

    def is_prof_home(self) -> bool:
        return self.relpath.startswith(PROF_HOME_PREFIX)

    def is_pool_home(self) -> bool:
        return self.relpath.startswith(POOL_HOME_PREFIX)

    def check_line(self, lineno: int, code: str):
        if self.in_clock_core() and FLOAT_RE.search(code):
            self.report(lineno, "float",
                        "double/float in the deterministic clock core "
                        "(re-quantize to integer units, or sanction with a "
                        "reason)")
        m = NONDET_RE.search(code)
        if m:
            self.report(lineno, "nondet",
                        f"nondeterminism source '{m.group(0).strip()}'")
        if not self.is_prof_home():
            m = PROF_RE.search(code)
            if m:
                self.report(
                    lineno, "prof",
                    f"wall-clock read '{m.group(0).strip()}' outside the "
                    f"profiler home ({PROF_HOME_PREFIX}*); use PROF_ZONE, "
                    "or sanction with a reason the value cannot feed back "
                    "into simulation state")
        m = UNORDERED_RE.search(code)
        if m:
            self.report(lineno, "unordered",
                        f"hash container '{m.group(0)}': iteration order "
                        "depends on library layout; use std::map/std::set")
        if not self.is_pool_home():
            m = SHARD_RE.search(code)
            if m:
                self.report(
                    lineno, "shard",
                    f"concurrency primitive '{m.group(0).strip()}' outside "
                    f"the thread-pool home ({POOL_HOME_PREFIX}*): shards must "
                    "share no mutable state outside the handoff queues "
                    "(docs/SHARDING.md); route work through mc::ThreadPool, "
                    "or sanction with a reason no output byte can depend "
                    "on it")
        m = ALLOC_RE.search(code)
        if m:
            self.report(lineno, "alloc",
                        "per-event make_shared<...EventState>: event storage "
                        "comes from the engine slab/freelist "
                        "(src/sim/engine.hpp); see docs/PERFORMANCE.md")

    def check_offsets(self, joined: str, line_starts):
        """Offset rule over the whole file text (calls span lines)."""
        if self.is_offset_home():
            return

        def lineno_at(pos: int) -> int:
            lo, hi = 0, len(line_starts) - 1
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if line_starts[mid] <= pos:
                    lo = mid
                else:
                    hi = mid - 1
            return lo + 1

        for m in BUS_CALL_RE.finditer(joined):
            fn = m.group(1)
            argtext, _ = extract_call_args(joined, m.end() - 1)
            if argtext is None:
                continue
            args = split_top_level_args(argtext)
            # Writes carry a data value as the last argument; only the
            # address arguments are covered by the rule.
            addr_args = args[:-1] if fn in ("bus_write", "cpu_write32") \
                and len(args) >= 3 else args
            for a in addr_args:
                if HEX_RE.search(a):
                    self._offset_report(lineno_at(m.start()), fn)
                    break
        for m in OFFSET_MATH_RE.finditer(joined):
            self._offset_report(lineno_at(m.start()), "address math")

    def _offset_report(self, lineno: int, where: str):
        # Region/file sanctions work naturally; line sanctions anchor at the
        # line the call starts on.
        saved = self.next_line_allow
        self.next_line_allow = self.line_allow_map.get(lineno, {})
        self.report(lineno, "offset",
                    f"raw hex register offset in {where}: name it in "
                    "src/nti/memmap.hpp or src/utcsu/regs.hpp")
        self.next_line_allow = saved

    def check_metrics(self, joined: str, line_starts):
        def lineno_at(pos: int) -> int:
            lo, hi = 0, len(line_starts) - 1
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if line_starts[mid] <= pos:
                    lo = mid
                else:
                    hi = mid - 1
            return lo + 1

        def check_name(literal: str, lineno: int, is_prefix: bool):
            name = literal.strip('"')
            if name == "":
                return
            if not METRIC_NAME_RE.match(name):
                self._metric_report(
                    lineno,
                    f'metric name "{name}" must be lowercase dotted '
                    "snake_case")
                return
            # Only a name anchored at the start of the argument expression
            # begins at a root boundary; a `prefix + "dotted.suffix"`
            # literal is namespaced by its prefix.
            if is_prefix:
                root = name.split(".", 1)[0]
                if root not in METRIC_ROOTS:
                    self._metric_report(
                        lineno,
                        f'metric root "{root}." is not documented '
                        f"(known: {', '.join(sorted(METRIC_ROOTS))}); add it "
                        "to METRIC_ROOTS and docs/STATIC_ANALYSIS.md or fix "
                        "the name")

        for m in METRIC_CALL_RE.finditer(joined):
            argtext, _ = extract_call_args(joined, m.end() - 1)
            if argtext is None:
                continue
            args = split_top_level_args(argtext)
            if not args:
                continue
            first = args[0].strip()
            lit = STRING_LIT_RE.search(first)
            if lit is None:
                continue
            # `"full.name"` is anchored; `prefix + "suffix"` is not.
            check_name(lit.group(0), lineno_at(m.start()),
                       is_prefix=first.startswith('"'))
        for m in REGISTER_METRICS_RE.finditer(joined):
            argtext, _ = extract_call_args(joined, m.end() - 1)
            if argtext is None:
                continue
            for a in split_top_level_args(argtext):
                lit = STRING_LIT_RE.search(a.strip())
                if lit is not None:
                    check_name(lit.group(0), lineno_at(m.start()),
                               is_prefix=True)

    def _metric_report(self, lineno: int, message: str):
        saved = self.next_line_allow
        self.next_line_allow = self.line_allow_map.get(lineno, {})
        self.report(lineno, "metric", message)
        self.next_line_allow = saved

    # -- driver -------------------------------------------------------------

    def run(self):
        in_block = False
        stripped = []
        with_strings = []
        self.line_allow_map = {}  # lineno -> {cat: True}
        pending = {}  # cat armed for the next code line
        for idx, raw in enumerate(self.lines, start=1):
            code, lit, comment, in_block = strip_noncode(raw, in_block)
            self.next_line_allow = pending
            sanction = None
            if comment:
                sanction = self.handle_sanction(idx, comment)
            if sanction is not None and sanction[0] == "allow":
                self.next_line_allow = dict(pending)
                self.next_line_allow[sanction[1]] = True
                pending = dict(pending)
                pending[sanction[1]] = True
            self.line_allow_map[idx] = dict(self.next_line_allow)
            self.check_line(idx, code)
            # A plain allow() covers its own line and the next *code* line:
            # blank / pure-comment lines (multi-line sanction reasons) do
            # not consume it.
            if code.strip():
                pending = {}
            stripped.append(code)
            with_strings.append(lit)

        for cat, where in self.region_allow.items():
            self.errors.append(Violation(
                self.relpath, where, "sanction",
                f"begin-allow({cat}) never closed"))

        def starts_of(lines_list):
            starts = [0]
            for s in lines_list:
                starts.append(starts[-1] + len(s) + 1)
            return starts[:-1]

        self.next_line_allow = {}
        joined = "\n".join(stripped)
        self.check_offsets(joined, starts_of(stripped))
        joined_lit = "\n".join(with_strings)
        self.check_metrics(joined_lit, starts_of(with_strings))
        return self.violations, self.errors


def lint_tree(root: str):
    violations = []
    errors = []
    src = os.path.join(root, SRC_ROOT)
    if not os.path.isdir(src):
        print(f"nti-lint: no {SRC_ROOT}/ under {root}", file=sys.stderr)
        return [], [Violation(root, 0, "config", "missing src tree")]
    for dirpath, _, filenames in sorted(os.walk(src)):
        for fn in sorted(filenames):
            if not fn.endswith(CPP_EXTENSIONS):
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, encoding="utf-8", errors="replace") as f:
                lines = f.read().splitlines()
            v, e = FileLinter(rel, lines, root).run()
            violations.extend(v)
            errors.extend(e)
    return violations, errors


# -- self-test ---------------------------------------------------------------

FIXTURE_BAD_UTCSU = """\
#include <cstdint>
namespace nti::utcsu {
double drift_estimate(double a) { return a * 1.5; }   // float violation
std::uint32_t read_alpha(Bus& b) {
  return b.bus_read(t, 0x38);                         // offset violation
}
std::uint64_t seed() {
  std::random_device rd;                              // nondet violation
  return rd();
}
}  // namespace nti::utcsu
"""

FIXTURE_BAD_OBS = """\
#include <unordered_map>
namespace nti::obs {
std::unordered_map<int, int> table;                   // unordered violation
void hook(MetricsRegistry& reg) {
  reg.add_counter("Bogus.Name", &x);                  // metric casing
  reg.add_counter("mystery.count", &y);               // metric root
}
}  // namespace nti::obs
"""

FIXTURE_BAD_SIM = """\
#include <memory>
namespace nti::sim {
EventHandle Engine::schedule_at(SimTime t, EventFn fn) {
  auto state = std::make_shared<detail::EventState>();  // alloc violation
  return EventHandle{state};
}
double wall_seconds() {
  auto t = std::chrono::steady_clock::now();            // prof violation
  return std::int64_t(__builtin_ia32_rdtsc()) * 1e-9;   // prof violation
}
}  // namespace nti::sim
"""

FIXTURE_BAD_SHARD = """\
#include <atomic>
#include <mutex>
namespace nti::cluster {
std::mutex segment_lock;                              // shard violation
std::atomic<int> shared_counter{0};                   // shard violation
void bump() {
  std::lock_guard<std::mutex> lk(segment_lock);       // shard violation
  shared_counter++;
}
}  // namespace nti::cluster
"""

# Concurrency primitives are legal in the pool's home (src/mc/pool.*) and
# behind an explicit shard sanction elsewhere.
FIXTURE_POOL_HOME = """\
#include <mutex>
#include <thread>
namespace nti::mc {
std::mutex mu;
std::thread worker;
}  // namespace nti::mc
"""

FIXTURE_SHARD_SANCTIONED = """\
namespace nti::obs {
unsigned probe_cores() {
  // nti-lint: allow(shard): sizing hint recorded in the manifest only;
  // never feeds back into simulation state.
  return std::thread::hardware_concurrency();
}
}  // namespace nti::obs
"""

# Wall-clock reads are legal in the profiler's home (src/obs/prof*) and
# behind an explicit prof sanction elsewhere.
FIXTURE_PROF_HOME = """\
#include <chrono>
namespace nti::obs::prof {
std::int64_t ticks_now() {
  return std::int64_t(__builtin_ia32_rdtsc());
}
std::int64_t steady_ns_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
}  // namespace nti::obs::prof
"""

FIXTURE_PROF_SANCTIONED = """\
namespace nti::mc {
double wall() {
  // nti-lint: allow(prof): human-facing throughput only, never fed back.
  return std::chrono::duration<double>(
             // nti-lint: allow(prof): see above.
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace nti::mc
"""

FIXTURE_GOOD_UTCSU = """\
#include <cstdint>
namespace nti::utcsu {
// nti-lint: begin-allow(float): config boundary, quantized below.
double nominal(double f) { return f; }
// nti-lint: end-allow(float)
std::uint32_t read_alpha(Bus& b) {
  // nti-lint: allow(offset): fixture exercising the line sanction.
  return b.bus_read(t, 0x38);
}
void broadcast(Bus& b) {
  b.bus_write(t, kRegCtrl, 0xFFFF'FFFF);  // value arg: hex is fine
}
}  // namespace nti::utcsu
"""

FIXTURE_STRINGS = """\
namespace nti::utcsu {
// The word double in a comment is fine; so is "double" in a string.
const char* kDoc = "double float 0x1234 unordered_map";
/* block comment: double float rand( time(0) */
}  // namespace nti::utcsu
"""


def self_test() -> int:
    failures = []

    def expect(cond, what):
        if not cond:
            failures.append(what)

    with tempfile.TemporaryDirectory() as tmp:
        def put(rel, text):
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)

        put("src/utcsu/bad.cpp", FIXTURE_BAD_UTCSU)
        put("src/obs/bad.cpp", FIXTURE_BAD_OBS)
        put("src/sim/bad.cpp", FIXTURE_BAD_SIM)
        put("src/cluster/bad_shard.cpp", FIXTURE_BAD_SHARD)
        v, e = lint_tree(tmp)
        cats = sorted(x.cat for x in v)
        expect(e == [], f"seeded tree: sanction errors {[str(x) for x in e]}")
        expect(cats.count("float") == 1, f"want 1 float violation, got {cats}")
        expect(cats.count("offset") == 1, f"want 1 offset violation, got {cats}")
        expect(cats.count("nondet") == 1, f"want 1 nondet violation, got {cats}")
        expect(cats.count("unordered") >= 1,
               f"want unordered violation, got {cats}")
        expect(cats.count("metric") == 2, f"want 2 metric violations, got {cats}")
        expect(cats.count("alloc") == 1, f"want 1 alloc violation, got {cats}")
        expect(cats.count("prof") == 2, f"want 2 prof violations, got {cats}")
        expect(cats.count("shard") == 3, f"want 3 shard violations, got {cats}")

    with tempfile.TemporaryDirectory() as tmp:
        def put(rel, text):
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)

        put("src/utcsu/good.cpp", FIXTURE_GOOD_UTCSU)
        put("src/utcsu/strings.cpp", FIXTURE_STRINGS)
        put("src/obs/prof_fixture.cpp", FIXTURE_PROF_HOME)
        put("src/mc/wall.cpp", FIXTURE_PROF_SANCTIONED)
        put("src/mc/pool.cpp", FIXTURE_POOL_HOME)
        put("src/obs/cores.cpp", FIXTURE_SHARD_SANCTIONED)
        v, e = lint_tree(tmp)
        expect(v == [], f"clean tree: violations {[str(x) for x in v]}")
        expect(e == [], f"clean tree: errors {[str(x) for x in e]}")

    # Sanction grammar: a reasonless allow is an error.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "src", "utcsu")
        os.makedirs(path, exist_ok=True)
        with open(os.path.join(path, "x.cpp"), "w", encoding="utf-8") as f:
            f.write("// nti-lint: allow(float)\ndouble d;\n")
        v, e = lint_tree(tmp)
        expect(len(e) == 1, f"want 1 grammar error, got {[str(x) for x in e]}")

    if failures:
        for f in failures:
            print(f"nti-lint self-test FAILED: {f}", file=sys.stderr)
        return 1
    print("nti-lint self-test: all checks passed")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in fixture suite and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    violations, errors = lint_tree(root)
    for v in violations:
        print(str(v))
    for e in errors:
        print(str(e))
    if violations or errors:
        n = len(violations) + len(errors)
        print(f"nti-lint: {n} problem(s)", file=sys.stderr)
        return 1
    print("nti-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
