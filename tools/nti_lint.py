#!/usr/bin/env python3
"""nti-lint: whole-program determinism & unit-safety analyzer for the NTI tree.

The deterministic clock core must stay bit-reproducible and unit-safe, and
those properties are invariants the compiler cannot check.  This tool walks
``src/`` and enforces them as a ctest (label ``lint``); see
docs/STATIC_ANALYSIS.md for the full contract.

Twelve rules (category in parentheses is the sanction key):

  float     No ``double``/``float`` types in the deterministic clock core
            (src/utcsu, src/csa, src/interval).  Real-valued configuration
            inputs are allowed only behind an explicit sanction that states
            where the value is re-quantized to integers.
  nondet    No nondeterminism sources anywhere in src/: std::random_device,
            rand()/srand(), time(NULL/nullptr/0), getenv.
  prof      No wall-clock reads (std::chrono system/steady/high_resolution
            clocks, rdtsc) anywhere in src/ outside the profiler's home
            (src/obs/prof*).
  unordered No std::unordered_{map,set,multimap,multiset} anywhere in src/:
            hash iteration order is layout-dependent and has already caused
            export nondeterminism once.
  offset    No raw hex literals in the *address* argument of bus_read /
            bus_write / cpu_read32 / cpu_write32 calls, and no
            ``<base> + 0x...`` address math; register offsets live in
            src/nti/memmap.hpp and src/utcsu/regs.hpp as named constants.
            (Write *values* are exempt: broadcast masks etc. are data.)
  metric    Metric names registered via add_counter/add_gauge/
            add_distribution and register_metrics prefixes must be
            lowercase dotted snake_case, and full names must start with a
            documented root (see METRIC_ROOTS / docs/OBSERVABILITY.md).
            Adjacent string literals are concatenated before checking.
  alloc     No ``make_shared<...EventState...>`` anywhere in src/: the
            scheduler hot path allocates event storage from the engine's
            slab/freelist (src/sim/engine.hpp).
  shard     No concurrency primitives (std::thread/mutex/atomic/
            condition_variable/future/..., thread_local) anywhere in src/
            outside the thread-pool home (src/mc/pool.*).
  layer     The src/ include graph must match the committed layering
            manifest (tools/layering.json): no include cycles, no
            undeclared upward or cross-layer edges.  Cross-cutting layers
            (obs, mc) may be included from anywhere but may themselves
            include only their declared dependencies.  Manifest-level
            exceptions carry reasons and are themselves ledger-checked.
  unitflow  Function signatures in clock-core public headers (src/utcsu,
            src/csa, src/interval, src/osc *.hpp) must not take raw
            int64_t/uint64_t parameters with unit-suffixed names
            (*_ps, *_ticks, *_alpha, *_alpha_units): those values have
            strong types (TickCount / RateStep / AlphaUnits / Duration,
            src/common/time_types.hpp) and a raw-integer parameter
            reopens exactly the unit-confusion hole the types closed.
  hotpath   No ``new`` / ``make_shared`` / ``make_unique`` / ``throw`` /
            ``std::function`` construction inside a profiled hot zone: the
            innermost function (or lambda) body enclosing a PROF_ZONE is a
            measured hot path, and per-call allocation or EH setup there is
            exactly the regression the slab rewrite removed
            (docs/PERFORMANCE.md).
  ledger    Every sanction must suppress at least one actual match: a
            stale ``nti-lint: allow(...)`` (or a stale manifest layer
            exception) that no longer suppresses anything is itself an
            error -- dead exemptions are how walls rot.

Sanction grammar (reason text after ``:`` is mandatory -- an unexplained
exemption is itself a defect):

  // nti-lint: allow(CAT): reason           this line or the next code line
  // nti-lint: begin-allow(CAT): reason     region start
  // nti-lint: end-allow(CAT)               region end
  // nti-lint: allow-file(CAT): reason      whole file

Exit status: 0 clean, 1 violations found, 2 usage/internal error.

Implementation note: the container has no libclang, so this is a shared
preprocessor-aware lexer, not a parser.  It splices line continuations,
understands raw string literals, masks string/char literals and comments,
treats ``#if 0`` regions as dead code, records live ``#include`` edges for
the layer rule, and understands just enough brace/paren structure for the
offset, unitflow and hotpath rules.  That makes it conservative where it
must be (sanctions are explicit) and cheap everywhere else.

SARIF: ``--sarif PATH`` additionally writes the findings as a SARIF 2.1.0
report (one rule per category), which the lint CI gate uploads so findings
annotate pull requests.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import tempfile

CATEGORIES = ("float", "nondet", "unordered", "offset", "metric", "alloc",
              "prof", "shard", "layer", "unitflow", "hotpath", "ledger")

# `ledger` findings are meta (a sanction that suppresses nothing); they can
# not themselves be sanctioned away.
SANCTIONABLE = tuple(c for c in CATEGORIES if c != "ledger")

RULE_DESCRIPTIONS = {
    "float": "no floating point in the deterministic clock core",
    "nondet": "no nondeterminism sources in src/",
    "unordered": "no hash containers in src/ (iteration order nondeterminism)",
    "offset": "register offsets live in the register maps",
    "metric": "metric names are lowercase dotted snake_case from documented roots",
    "alloc": "no per-event heap allocation in the scheduler",
    "prof": "wall-clock reads live in the profiler",
    "shard": "concurrency primitives live in the worker pool",
    "layer": "src/ include graph matches the layering manifest; no cycles",
    "unitflow": "clock-core public signatures use strong unit types",
    "hotpath": "no allocation/EH/type-erasure construction in profiled hot zones",
    "ledger": "every sanction must suppress at least one actual match",
    "sanction": "sanction grammar: allow(CAT) needs a reason",
    "config": "analyzer configuration error",
}

# Directories (relative to the repo root) whose files are linted at all.
SRC_ROOT = "src"

# The deterministic clock core: the only scope of the `float` rule.
CLOCK_CORE_DIRS = ("src/utcsu", "src/csa", "src/interval")

# Clock-core public headers: the scope of the `unitflow` rule.
UNITFLOW_DIRS = ("src/utcsu", "src/csa", "src/interval", "src/osc")
HEADER_EXTENSIONS = (".hpp", ".hh", ".h")

# Files allowed to define raw register offsets.
OFFSET_HOME_FILES = ("src/nti/memmap.hpp", "src/utcsu/regs.hpp")

# The profiler's home: the only path prefix allowed to read wall clocks.
PROF_HOME_PREFIX = "src/obs/prof"

# The thread pool's home: the only path prefix allowed to hold concurrency
# primitives (docs/SHARDING.md).
POOL_HOME_PREFIX = "src/mc/pool."

# Documented metric-name roots (first dotted segment of a full name or of a
# register_metrics prefix).  Extend here *and* in docs/STATIC_ANALYSIS.md.
METRIC_ROOTS = {
    "sim", "net", "fault", "cluster", "span", "csa",
    "comco", "node", "gps", "mc", "obs",
}

CPP_EXTENSIONS = (".cpp", ".hpp", ".cc", ".hh", ".h")

DEFAULT_MANIFEST = os.path.join("tools", "layering.json")

SANCTION_RE = re.compile(
    r"//\s*nti-lint:\s*"
    r"(?P<kind>allow|begin-allow|end-allow|allow-file)"
    r"\((?P<cat>[a-z]+)\)"
    r"(?P<reason>:.*)?$"
)

FLOAT_RE = re.compile(r"\b(?:double|float)\b")
NONDET_RE = re.compile(
    r"std::random_device"
    r"|\brandom_device\b"
    r"|(?<![\w:])s?rand\s*\("
    r"|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"
    r"|(?<![\w:])(?:std::)?getenv\b"
)
PROF_RE = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"|\b__builtin_ia32_rdtscp?\b"
    r"|\b__rdtscp?\b"
    r"|\brdtscp?\s*\("
)
UNORDERED_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")
SHARD_RE = re.compile(
    r"std::(?:jthread|thread|mutex|recursive_mutex|shared_mutex|timed_mutex"
    r"|condition_variable(?:_any)?|atomic\w*|lock_guard|unique_lock"
    r"|scoped_lock|shared_lock|async|future|shared_future|promise|barrier"
    r"|latch|counting_semaphore|binary_semaphore|call_once|once_flag"
    r"|stop_token)\b"
    r"|\bthread_local\b"
)
ALLOC_RE = re.compile(r"\bmake_shared\s*<[^>]*EventState")
HEX_RE = re.compile(r"0[xX][0-9a-fA-F'][0-9a-fA-F']*")
BUS_CALL_RE = re.compile(r"\b(bus_read|bus_write|cpu_read32|cpu_write32)\s*\(")
OFFSET_MATH_RE = re.compile(r"\bk\w*Base\s*\+\s*0[xX][0-9a-fA-F']+")
METRIC_CALL_RE = re.compile(r"\b(add_counter|add_gauge|add_distribution)\s*\(")
REGISTER_METRICS_RE = re.compile(r"\bregister_metrics\s*\(")
METRIC_NAME_RE = re.compile(r"^[a-z0-9_.<>]+$")  # <N> placeholders in docs
STRING_LIT_RE = re.compile(r'"(?:[^"\\]|\\.)*"')

UNITFLOW_RE = re.compile(
    r"\b(?:std\s*::\s*)?(u?int64_t)\b"
    r"(?:\s*const)?\s*&?\s+"
    r"(\w+_(?:ps|ticks|alpha|alpha_units))\b"
)

PROF_ZONE_RE = re.compile(r"\bPROF_ZONE\s*\(")
HOTPATH_BAN_RE = re.compile(
    r"\bnew\b(?!\s*\()"          # `new Foo`, not the rare `operator new(...)`
    r"|\bmake_shared\b"
    r"|\bmake_unique\b"
    r"|\bthrow\b"
    r"|\bstd\s*::\s*function\b"
)

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch"}

DIRECTIVE_RE = re.compile(r"^\s*#\s*(\w+)")
INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')
RAW_STRING_OPEN_RE = re.compile(r'(?:u8|[uUL])?R"([^()\\ \t\n]{0,16})\(')

COND_DIRECTIVES = {"if", "ifdef", "ifndef", "elif", "else", "endif"}


class Violation:
    def __init__(self, path: str, line: int, cat: str, message: str):
        self.path = path
        self.line = line
        self.cat = cat
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.cat}] {self.message}"


class Sanction:
    """One allow/begin-allow/allow-file directive, tracked for staleness."""

    def __init__(self, path: str, line: int, kind: str, cat: str):
        self.path = path
        self.line = line
        self.kind = kind
        self.cat = cat
        self.used = False

    def describe(self) -> str:
        return f"{self.kind}({self.cat})"


# ---------------------------------------------------------------------------
# The shared preprocessor-aware lexer
# ---------------------------------------------------------------------------

class LexedLine:
    __slots__ = ("code", "lit", "comment", "dead")

    def __init__(self, code: str, lit: str, comment: str, dead: bool):
        self.code = code      # literals masked with '#', comments removed
        self.lit = lit        # like `code`, but string *contents* preserved
        self.comment = comment  # the //-comment tail (sanction parsing)
        self.dead = dead      # inside an `#if 0` region


class LexedFile:
    def __init__(self):
        self.lines: list[LexedLine] = []          # index 0 == line 1
        self.includes: list[tuple[int, str]] = []  # (lineno, quoted path)

    def joined_code(self) -> str:
        return "\n".join(ln.code for ln in self.lines)

    def joined_lit(self) -> str:
        return "\n".join(ln.lit for ln in self.lines)

    def line_starts(self) -> list[int]:
        starts = [0]
        for ln in self.lines:
            starts.append(starts[-1] + len(ln.code) + 1)
        return starts[:-1]


def _cond_eval(expr: str) -> str:
    """Classify a #if/#elif expression: 'lit0', 'lit1', or 'unknown'."""
    expr = expr.split("//")[0]
    expr = re.sub(r"/\*.*?\*/", " ", expr).strip()
    if expr == "0":
        return "lit0"
    if expr == "1":
        return "lit1"
    return "unknown"


class _CondFrame:
    __slots__ = ("parent_dead", "branch_dead", "kind")

    def __init__(self, parent_dead: bool, branch_dead: bool, kind: str):
        self.parent_dead = parent_dead
        self.branch_dead = branch_dead
        self.kind = kind  # 'lit0' | 'lit1' | 'unknown'


def lex_file(text: str) -> LexedFile:
    """Preprocessor-aware lexer over a whole file.

    Handles, beyond the old per-line stripper: line continuations (a `//`
    comment ending in `\\` swallows the next physical line; spliced
    directives stay directives), raw string literals (`R"delim(...)delim"`,
    possibly spanning lines), `#if 0` dead regions (content masked, nesting
    tracked), and `#include` capture for the layer rule.  String and char
    literal contents are masked in the code view; string contents are
    preserved in the lit view at identical column positions, so offsets
    computed on one view index the other.
    """
    out = LexedFile()
    physical = text.split("\n")

    in_block_comment = False
    in_line_comment = False      # continued via trailing backslash
    in_raw_string = None         # delimiter string when inside R"delim( ...
    cond_stack: list[_CondFrame] = []
    directive_cont = None        # ('cond'|'include'|'other', accumulated text,
    #                               start lineno) while splicing a directive

    def currently_dead() -> bool:
        return any(f.parent_dead or f.branch_dead for f in cond_stack)

    def handle_directive(dtext: str, lineno: int, keyword: str):
        nonlocal cond_stack
        if keyword in ("if", "ifdef", "ifndef"):
            parent_dead = currently_dead()
            if keyword == "if":
                body = re.sub(r"^\s*#\s*if\b", "", dtext, count=1)
                kind = _cond_eval(body)
            else:
                kind = "unknown"  # both branches of #ifdef/#ifndef are linted
            cond_stack.append(
                _CondFrame(parent_dead, kind == "lit0", kind))
        elif keyword == "elif":
            if cond_stack:
                f = cond_stack[-1]
                body = re.sub(r"^\s*#\s*elif\b", "", dtext, count=1)
                kind = _cond_eval(body)
                # After a live `#if 1`, every later branch is dead; after a
                # `#if 0` or an unknown condition, the branch's own literal
                # decides (unknown => linted).
                if f.kind == "lit1":
                    f.branch_dead = True
                else:
                    f.branch_dead = kind == "lit0"
        elif keyword == "else":
            if cond_stack:
                f = cond_stack[-1]
                if f.kind == "lit0":
                    f.branch_dead = False
                elif f.kind == "lit1":
                    f.branch_dead = True
                # unknown: both branches stay live (linted)
        elif keyword == "endif":
            if cond_stack:
                cond_stack.pop()
        elif keyword == "include":
            if not currently_dead():
                m = INCLUDE_RE.search(dtext)
                if m:
                    out.includes.append((lineno, m.group(1)))

    for lineno, raw in enumerate(physical, start=1):
        code: list[str] = []
        lit: list[str] = []
        comment = ""
        dead = currently_dead()

        def emit(c_code: str, c_lit: str):
            code.append(c_code)
            lit.append(c_lit)

        # -- a directive continued from the previous physical line ----------
        if directive_cont is not None:
            dkind, dtext, dline, dkeyword = directive_cont
            dtext += "\n" + raw
            if raw.endswith("\\"):
                directive_cont = (dkind, dtext, dline, dkeyword)
            else:
                directive_cont = None
                handle_directive(dtext, dline, dkeyword)
            out.lines.append(LexedLine("", "", "", dead))
            continue

        # -- a // comment continued from the previous physical line ---------
        if in_line_comment:
            comment = raw
            in_line_comment = raw.endswith("\\")
            out.lines.append(LexedLine("", "", comment, dead))
            continue

        # -- raw string continued from the previous physical line -----------
        i = 0
        n = len(raw)
        if in_raw_string is not None:
            closer = ")" + in_raw_string + '"'
            end = raw.find(closer)
            if end < 0:
                emit("#" * n, "#" * n)
                out.lines.append(
                    LexedLine("".join(code), "".join(lit), "", dead))
                continue
            masked = end + len(closer)
            emit("#" * end + '"', "#" * end + '"')
            i = masked
            in_raw_string = None

        # -- block comment continued from the previous physical line --------
        # (handled inside the main loop via in_block_comment)

        # -- preprocessor directive at line start (outside comments) --------
        if (not in_block_comment and in_raw_string is None and i == 0):
            m = DIRECTIVE_RE.match(raw)
            if m:
                keyword = m.group(1)
                if keyword in COND_DIRECTIVES or keyword == "include":
                    if raw.endswith("\\"):
                        directive_cont = (
                            "cond" if keyword in COND_DIRECTIVES else "include",
                            raw, lineno, keyword)
                    else:
                        handle_directive(raw, lineno, keyword)
                    out.lines.append(LexedLine("", "", "", dead))
                    continue
                # Other directives (#define, #pragma, ...) fall through and
                # are lexed as ordinary code so a `#define BAD getenv(...)`
                # still trips the rules -- unless the region is dead.

        if dead:
            out.lines.append(LexedLine("", "", "", True))
            continue

        # -- ordinary code lexing -------------------------------------------
        while i < n:
            if in_block_comment:
                end = raw.find("*/", i)
                if end < 0:
                    i = n
                    break
                i = end + 2
                in_block_comment = False
                continue
            c = raw[i]
            if c == "/" and i + 1 < n and raw[i + 1] == "/":
                comment = raw[i:]
                in_line_comment = raw.endswith("\\")
                i = n
                break
            if c == "/" and i + 1 < n and raw[i + 1] == "*":
                in_block_comment = True
                i += 2
                continue
            rm = RAW_STRING_OPEN_RE.match(raw, i)
            if rm:
                in_raw_string = rm.group(1)
                emit('"', '"')
                i = rm.end()
                closer = ")" + in_raw_string + '"'
                end = raw.find(closer, i)
                if end < 0:
                    pad = n - i
                    emit("#" * pad, "#" * pad)
                    i = n
                else:
                    pad = end - i
                    emit("#" * pad + '"', "#" * pad + '"')
                    i = end + len(closer)
                    in_raw_string = None
                continue
            if c == '"' or c == "'":
                quote = c
                emit('"' if quote == '"' else " ",
                     '"' if quote == '"' else " ")
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        if i + 1 < n:
                            emit("##" if quote == '"' else "  ",
                                 raw[i:i + 2] if quote == '"' else "  ")
                        i += 2
                        continue
                    if raw[i] == quote:
                        break
                    emit("#" if quote == '"' else " ",
                         raw[i] if quote == '"' else " ")
                    i += 1
                if quote == '"':
                    emit('"', '"')
                i += 1
                continue
            emit(c, c)
            i += 1

        out.lines.append(LexedLine("".join(code), "".join(lit), comment, dead))

    return out


def split_top_level_args(argtext: str):
    """Split an argument list on top-level commas (parens/brackets nested)."""
    args = []
    depth = 0
    current = []
    for ch in argtext:
        if ch in "([{<":
            depth += 1
        elif ch in ")]}>":
            depth = max(0, depth - 1)
        if ch == "," and depth == 0:
            args.append("".join(current))
            current = []
        else:
            current.append(ch)
    args.append("".join(current))
    return args


def extract_call_args(text: str, open_paren: int):
    """Return (argtext, end_index) for the call whose '(' is at open_paren,
    or (None, None) if the call does not close inside `text`."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:i], i
    return None, None


def concat_adjacent_strings(text: str, first: re.Match):
    """Concatenate a run of adjacent string literals starting at `first`.

    `"sim." "queue"` names the metric `sim.queue`; the old per-line stripper
    saw only the first fragment.  Returns the merged contents (no quotes).
    """
    merged = first.group(0)[1:-1]
    pos = first.end()
    while True:
        m = STRING_LIT_RE.match(text, pos) if text[pos:pos + 1] == '"' \
            else None
        if m is None:
            stripped = text[pos:].lstrip()
            if stripped.startswith('"'):
                skip = len(text) - len(text[pos:].lstrip()) - pos + pos
                m = STRING_LIT_RE.match(text, pos + (len(text[pos:])
                                                     - len(stripped)))
        if m is None:
            break
        merged += m.group(0)[1:-1]
        pos = m.end()
    return merged


# ---------------------------------------------------------------------------
# Brace/scope analysis (shared by the hotpath rule)
# ---------------------------------------------------------------------------

class Scope:
    __slots__ = ("open", "close", "parent", "is_function")

    def __init__(self, open_: int, parent):
        self.open = open_
        self.close = -1
        self.parent = parent
        self.is_function = False


def _matching_open_paren(code: str, close_idx: int) -> int:
    depth = 0
    for i in range(close_idx, -1, -1):
        if code[i] == ")":
            depth += 1
        elif code[i] == "(":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _classify_function_scope(code: str, open_brace: int) -> bool:
    """Heuristic: does the brace at `open_brace` open a function/lambda body?

    Walk backward over declarator tail tokens (const/noexcept/override/
    trailing return types).  A `)` whose matching `(` is not headed by a
    control keyword means a function (or lambda with parameter list); a
    bare `]` means a capture-only lambda.  Everything else (namespace,
    class/struct, enum, plain blocks, initializer lists) is not.
    """
    j = open_brace - 1
    # Skip declarator tail: whitespace, identifiers, ::, <>, &*,, -> types.
    while j >= 0 and (code[j].isspace() or code[j].isalnum()
                      or code[j] in "_:<>,&*[]."):
        if code[j] == "]":
            # could be `[...]` lambda introducer directly before `{`
            k = j
            depth = 0
            while k >= 0:
                if code[k] == "]":
                    depth += 1
                elif code[k] == "[":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            # lambda introducer iff the `[` is not an array subscript:
            # preceded by start, whitespace+punctuation, or an operator.
            prev = code[:k].rstrip()[-1:] if k > 0 else ""
            if prev == "" or prev in "(,=+-*/%<>!&|?:;{}":
                return True
            j = k - 1
            continue
        if code[j] == ">" and j >= 1 and code[j - 1] == "-":
            j -= 2
            continue
        j -= 1
    if j < 0:
        return False
    if code[j] == ")":
        op = _matching_open_paren(code, j)
        if op < 0:
            return False
        head = code[:op].rstrip()
        m = re.search(r"(\w+)$", head)
        if m and m.group(1) in CONTROL_KEYWORDS:
            return False
        if head.endswith("]"):  # lambda with parameter list
            return True
        return bool(m)  # named function declarator
    return False


def build_scopes(code: str):
    """Build the brace-scope tree of a masked code blob.

    Returns (root, all_scopes).  Unbalanced braces (macro bodies) degrade
    gracefully: stray closers are ignored, unclosed scopes close at EOF.
    """
    root = Scope(-1, None)
    root.close = len(code)
    stack = [root]
    scopes = []
    for i, c in enumerate(code):
        if c == "{":
            s = Scope(i, stack[-1])
            s.is_function = _classify_function_scope(code, i)
            scopes.append(s)
            stack.append(s)
        elif c == "}":
            if len(stack) > 1:
                stack[-1].close = i
                stack.pop()
    for s in scopes:
        if s.close < 0:
            s.close = len(code)
    return root, scopes


def innermost_scope_at(scopes, pos: int):
    best = None
    for s in scopes:
        if s.open < pos <= s.close:
            if best is None or s.open > best.open:
                best = s
    return best


# ---------------------------------------------------------------------------
# Per-file linting
# ---------------------------------------------------------------------------

class FileLinter:
    def __init__(self, relpath: str, lexed: LexedFile, repo_root: str):
        self.relpath = relpath
        self.lexed = lexed
        self.repo_root = repo_root
        self.violations: list[Violation] = []
        self.errors: list[Violation] = []  # grammar problems (fail the run)
        self.sanctions: list[Sanction] = []
        # lineno -> {cat: Sanction} — every sanction active on that line
        # (file-wide, region, and line allows all folded in).
        self.allow_map: dict[int, dict[str, Sanction]] = {}

    # -- sanction collection ------------------------------------------------

    def collect_sanctions(self):
        file_allow: dict[str, Sanction] = {}
        open_regions: dict[str, Sanction] = {}
        region_spans: list[tuple[int, int, Sanction]] = []
        line_allows: list[tuple[int, Sanction]] = []  # (decl line, sanction)

        nlines = len(self.lexed.lines)
        for idx in range(1, nlines + 1):
            comment = self.lexed.lines[idx - 1].comment
            if not comment:
                continue
            m = SANCTION_RE.search(comment)
            if m is None:
                if "nti-lint:" in comment:
                    self.errors.append(Violation(
                        self.relpath, idx, "sanction",
                        "unparseable nti-lint directive"))
                continue
            kind, cat, reason = m.group("kind"), m.group("cat"), \
                m.group("reason")
            if cat not in SANCTIONABLE:
                self.errors.append(Violation(
                    self.relpath, idx, "sanction",
                    f"unknown category '{cat}' "
                    f"(known: {', '.join(SANCTIONABLE)})"))
                continue
            if kind != "end-allow" and (reason is None or
                                        len(reason.lstrip(': ').strip()) == 0):
                self.errors.append(Violation(
                    self.relpath, idx, "sanction",
                    f"{kind}({cat}) needs a ': reason' -- say why it is "
                    "safe"))
                continue
            if kind == "allow-file":
                s = Sanction(self.relpath, idx, kind, cat)
                self.sanctions.append(s)
                file_allow[cat] = s
            elif kind == "begin-allow":
                if cat in open_regions:
                    self.errors.append(Violation(
                        self.relpath, idx, "sanction",
                        f"nested begin-allow({cat}); already open at line "
                        f"{open_regions[cat].line}"))
                    continue
                s = Sanction(self.relpath, idx, kind, cat)
                self.sanctions.append(s)
                open_regions[cat] = s
            elif kind == "end-allow":
                if cat not in open_regions:
                    self.errors.append(Violation(
                        self.relpath, idx, "sanction",
                        f"end-allow({cat}) without matching begin-allow"))
                else:
                    s = open_regions.pop(cat)
                    region_spans.append((s.line, idx, s))
            else:  # allow
                s = Sanction(self.relpath, idx, kind, cat)
                self.sanctions.append(s)
                line_allows.append((idx, s))

        for cat, s in open_regions.items():
            self.errors.append(Violation(
                self.relpath, s.line, "sanction",
                f"begin-allow({cat}) never closed"))
            # Treat as covering to EOF so the unclosed-region error is the
            # only complaint.
            region_spans.append((s.line, nlines, s))

        # Fold into the per-line map.  Precedence within a line does not
        # matter (any active sanction suppresses); for ledger credit the
        # most specific wins: line > region > file.
        for idx in range(1, nlines + 1):
            active: dict[str, Sanction] = {}
            for cat, s in file_allow.items():
                active[cat] = s
            for lo, hi, s in region_spans:
                if lo <= idx <= hi:
                    active[s.cat] = s
            self.allow_map[idx] = active
        for decl, s in line_allows:
            # covers its own line plus the next *code* line (comment-only /
            # blank lines in between don't consume it).
            self.allow_map.setdefault(decl, {})[s.cat] = s
            idx = decl + 1
            while idx <= nlines:
                ln = self.lexed.lines[idx - 1]
                self.allow_map.setdefault(idx, {})[s.cat] = s
                if ln.code.strip():
                    break
                idx += 1

    # -- reporting ----------------------------------------------------------

    def report(self, lineno: int, cat: str, message: str):
        s = self.allow_map.get(lineno, {}).get(cat)
        if s is not None:
            s.used = True
            return
        self.violations.append(Violation(self.relpath, lineno, cat, message))

    # -- scopes -------------------------------------------------------------

    def in_clock_core(self) -> bool:
        return any(self.relpath == d or self.relpath.startswith(d + "/")
                   for d in CLOCK_CORE_DIRS)

    def in_unitflow_scope(self) -> bool:
        return (self.relpath.endswith(HEADER_EXTENSIONS)
                and any(self.relpath.startswith(d + "/")
                        for d in UNITFLOW_DIRS))

    def is_offset_home(self) -> bool:
        return self.relpath in OFFSET_HOME_FILES

    def is_prof_home(self) -> bool:
        return self.relpath.startswith(PROF_HOME_PREFIX)

    def is_pool_home(self) -> bool:
        return self.relpath.startswith(POOL_HOME_PREFIX)

    # -- per-line rules -----------------------------------------------------

    def check_line(self, lineno: int, code: str):
        if self.in_clock_core() and FLOAT_RE.search(code):
            self.report(lineno, "float",
                        "double/float in the deterministic clock core "
                        "(re-quantize to integer units, or sanction with a "
                        "reason)")
        m = NONDET_RE.search(code)
        if m:
            self.report(lineno, "nondet",
                        f"nondeterminism source '{m.group(0).strip()}'")
        if not self.is_prof_home():
            m = PROF_RE.search(code)
            if m:
                self.report(
                    lineno, "prof",
                    f"wall-clock read '{m.group(0).strip()}' outside the "
                    f"profiler home ({PROF_HOME_PREFIX}*); use PROF_ZONE, "
                    "or sanction with a reason the value cannot feed back "
                    "into simulation state")
        m = UNORDERED_RE.search(code)
        if m:
            self.report(lineno, "unordered",
                        f"hash container '{m.group(0)}': iteration order "
                        "depends on library layout; use std::map/std::set")
        if not self.is_pool_home():
            m = SHARD_RE.search(code)
            if m:
                self.report(
                    lineno, "shard",
                    f"concurrency primitive '{m.group(0).strip()}' outside "
                    f"the thread-pool home ({POOL_HOME_PREFIX}*): shards must "
                    "share no mutable state outside the handoff queues "
                    "(docs/SHARDING.md); route work through mc::ThreadPool, "
                    "or sanction with a reason no output byte can depend "
                    "on it")
        m = ALLOC_RE.search(code)
        if m:
            self.report(lineno, "alloc",
                        "per-event make_shared<...EventState>: event storage "
                        "comes from the engine slab/freelist "
                        "(src/sim/engine.hpp); see docs/PERFORMANCE.md")

    # -- whole-file rules ---------------------------------------------------

    @staticmethod
    def _lineno_fn(line_starts):
        def lineno_at(pos: int) -> int:
            lo, hi = 0, len(line_starts) - 1
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if line_starts[mid] <= pos:
                    lo = mid
                else:
                    hi = mid - 1
            return lo + 1
        return lineno_at

    def check_offsets(self, joined: str, line_starts):
        if self.is_offset_home():
            return
        lineno_at = self._lineno_fn(line_starts)
        for m in BUS_CALL_RE.finditer(joined):
            fn = m.group(1)
            argtext, _ = extract_call_args(joined, m.end() - 1)
            if argtext is None:
                continue
            args = split_top_level_args(argtext)
            # Writes carry a data value as the last argument; only the
            # address arguments are covered by the rule.
            addr_args = args[:-1] if fn in ("bus_write", "cpu_write32") \
                and len(args) >= 3 else args
            for a in addr_args:
                if HEX_RE.search(a):
                    self.report(lineno_at(m.start()), "offset",
                                f"raw hex register offset in {fn}: name it "
                                "in src/nti/memmap.hpp or "
                                "src/utcsu/regs.hpp")
                    break
        for m in OFFSET_MATH_RE.finditer(joined):
            self.report(lineno_at(m.start()), "offset",
                        "raw hex register offset in address math: name it "
                        "in src/nti/memmap.hpp or src/utcsu/regs.hpp")

    def check_metrics(self, joined_lit: str, line_starts):
        lineno_at = self._lineno_fn(line_starts)

        def check_name(name: str, lineno: int, is_prefix: bool):
            if name == "":
                return
            if not METRIC_NAME_RE.match(name):
                self.report(
                    lineno, "metric",
                    f'metric name "{name}" must be lowercase dotted '
                    "snake_case")
                return
            # Only a name anchored at the start of the argument expression
            # begins at a root boundary; a `prefix + "dotted.suffix"`
            # literal is namespaced by its prefix.
            if is_prefix:
                root = name.split(".", 1)[0]
                if root not in METRIC_ROOTS:
                    self.report(
                        lineno, "metric",
                        f'metric root "{root}." is not documented '
                        f"(known: {', '.join(sorted(METRIC_ROOTS))}); add it "
                        "to METRIC_ROOTS and docs/STATIC_ANALYSIS.md or fix "
                        "the name")

        def merged_literal(argtext: str):
            """First string literal in `argtext`, with adjacent literals
            concatenated (`"sim." "queue"` → `sim.queue`)."""
            lit = STRING_LIT_RE.search(argtext)
            if lit is None:
                return None
            merged = lit.group(0)[1:-1]
            pos = lit.end()
            while True:
                rest = argtext[pos:]
                stripped = rest.lstrip()
                if not stripped.startswith('"'):
                    break
                m = STRING_LIT_RE.match(argtext,
                                        pos + len(rest) - len(stripped))
                if m is None:
                    break
                merged += m.group(0)[1:-1]
                pos = m.end()
            return merged

        for m in METRIC_CALL_RE.finditer(joined_lit):
            argtext, _ = extract_call_args(joined_lit, m.end() - 1)
            if argtext is None:
                continue
            args = split_top_level_args(argtext)
            if not args:
                continue
            first = args[0].strip()
            name = merged_literal(first)
            if name is None:
                continue
            # `"full.name"` is anchored; `prefix + "suffix"` is not.
            check_name(name, lineno_at(m.start()),
                       is_prefix=first.startswith('"'))
        for m in REGISTER_METRICS_RE.finditer(joined_lit):
            argtext, _ = extract_call_args(joined_lit, m.end() - 1)
            if argtext is None:
                continue
            for a in split_top_level_args(argtext):
                name = merged_literal(a.strip())
                if name is not None:
                    check_name(name, lineno_at(m.start()), is_prefix=True)

    def check_unitflow(self, joined: str, line_starts):
        if not self.in_unitflow_scope():
            return
        matches = list(UNITFLOW_RE.finditer(joined))
        if not matches:
            return
        lineno_at = self._lineno_fn(line_starts)
        # Parenthesis depth at every match position distinguishes function
        # parameters (depth >= 1) from member/local declarations (depth 0).
        depth = 0
        depths = {}
        want = sorted(m.start() for m in matches)
        wi = 0
        for i, c in enumerate(joined):
            while wi < len(want) and want[wi] == i:
                depths[i] = depth
                wi += 1
            if c == "(":
                depth += 1
            elif c == ")":
                depth = max(0, depth - 1)
        for m in matches:
            if depths.get(m.start(), 0) < 1:
                continue
            self.report(
                lineno_at(m.start()), "unitflow",
                f"raw {m.group(1)} parameter '{m.group(2)}' in a clock-core "
                "public signature bypasses the strong unit types; take "
                "TickCount / RateStep / AlphaUnits / Duration "
                "(src/common/time_types.hpp) instead, or sanction with a "
                "reason the raw width is required")

    def check_hotpath(self, joined: str, joined_lit: str, line_starts):
        zones = list(PROF_ZONE_RE.finditer(joined))
        if not zones:
            return
        lineno_at = self._lineno_fn(line_starts)
        _, scopes = build_scopes(joined)
        # innermost *function* body enclosing each zone (a PROF_ZONE in a
        # lambda times the lambda, not its lexical parent function).
        functions = {}  # open pos -> (scope, zone names)
        for zm in zones:
            s = innermost_scope_at(scopes, zm.start())
            while s is not None and not s.is_function:
                s = s.parent
            if s is None or s.open < 0:
                continue  # macro definition / file scope: not a call site
            argtext, _ = extract_call_args(joined_lit, zm.end() - 1)
            zname = "?"
            if argtext:
                lit = STRING_LIT_RE.search(argtext)
                if lit:
                    zname = lit.group(0).strip('"')
            functions.setdefault(s.open, (s, []))[1].append(zname)
        for open_pos, (s, names) in sorted(functions.items()):
            body = joined[s.open + 1:s.close]
            for bm in HOTPATH_BAN_RE.finditer(body):
                pos = s.open + 1 + bm.start()
                token = re.sub(r"\s+", "", bm.group(0))
                self.report(
                    lineno_at(pos), "hotpath",
                    f"'{token}' inside the profiled hot zone "
                    f"'{'/'.join(sorted(set(names)))}': no allocation, "
                    "exception or std::function construction in a PROF_ZONE "
                    "function body (docs/PERFORMANCE.md); hoist it out of "
                    "the hot path or sanction with a reason it is "
                    "per-round, not per-event")

    # -- driver -------------------------------------------------------------

    def run(self):
        self.collect_sanctions()
        for idx, ln in enumerate(self.lexed.lines, start=1):
            if ln.code:
                self.check_line(idx, ln.code)
        joined = self.lexed.joined_code()
        joined_lit = self.lexed.joined_lit()
        starts = self.lexed.line_starts()
        self.check_offsets(joined, starts)
        self.check_metrics(joined_lit, starts)
        self.check_unitflow(joined, starts)
        self.check_hotpath(joined, joined_lit, starts)
        return self


# ---------------------------------------------------------------------------
# Whole-program layer rule
# ---------------------------------------------------------------------------

class LayeringManifest:
    def __init__(self, layer_of: dict, cross_cutting: dict, umbrella: set,
                 exceptions: list, path: str):
        self.layer_of = layer_of            # dir -> layer index
        self.cross_cutting = cross_cutting  # dir -> set(allowed include dirs)
        self.umbrella = umbrella            # basenames at src/ root
        self.exceptions = exceptions        # list of dicts + 'used' flag
        self.path = path


def load_manifest(path: str):
    """Parse tools/layering.json.  Returns (manifest, error-or-None)."""
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return None, f"cannot read layering manifest {path}: {exc}"
    try:
        layer_of = {}
        for idx, group in enumerate(data["layers"]):
            for d in group:
                if d in layer_of:
                    return None, f"layering manifest: dir '{d}' in two layers"
                layer_of[d] = idx
        cross = {}
        for d, spec in data.get("cross_cutting", {}).items():
            if d in layer_of:
                return None, (f"layering manifest: '{d}' is both layered "
                              "and cross-cutting")
            cross[d] = set(spec.get("may_include", []))
        umbrella = set(data.get("umbrella", []))
        exceptions = []
        for e in data.get("exceptions", []):
            if not e.get("reason", "").strip():
                return None, ("layering manifest: exception "
                              f"{e.get('from')}->{e.get('to')} needs a "
                              "'reason'")
            exceptions.append({"from": e["from"], "to": e["to"],
                               "reason": e["reason"], "used": False})
    except (KeyError, TypeError) as exc:
        return None, f"layering manifest {path}: malformed ({exc!r})"
    return LayeringManifest(layer_of, cross, umbrella, exceptions, path), None


def check_layering(files: dict, manifest: LayeringManifest,
                   manifest_rel: str):
    """files: relpath -> FileLinter.  Returns (violations, errors).

    Emits `layer` violations for undeclared cross-layer edges and include
    cycles, and `ledger` violations for stale manifest exceptions.
    """
    violations = []
    errors = []

    def dir_of(rel: str):
        parts = rel.split("/")
        # src/<dir>/... ; bare src/<file> is umbrella-or-unknown
        if len(parts) >= 3:
            return parts[1]
        return None

    def resolve(rel_includer: str, inc: str):
        if "/" in inc:
            cand = SRC_ROOT + "/" + inc
        else:
            cand = rel_includer.rsplit("/", 1)[0] + "/" + inc
        return cand if cand in files else None

    # ---- edge + layer checks ----
    graph = {}  # rel -> list[(lineno, target rel)]
    for rel, fl in sorted(files.items()):
        edges = []
        for lineno, inc in fl.lexed.includes:
            tgt = resolve(rel, inc)
            if tgt is None:
                continue  # system / generated / non-src header
            edges.append((lineno, tgt))
        graph[rel] = edges

    known = set(manifest.layer_of) | set(manifest.cross_cutting)

    def edge_allowed(src_dir: str, dst_dir: str):
        """None if allowed, else a human-readable reason string."""
        if src_dir == dst_dir:
            return None
        if dst_dir in manifest.cross_cutting:
            return None  # cross-cutting layers may be included from anywhere
        if src_dir in manifest.cross_cutting:
            if dst_dir in manifest.cross_cutting[src_dir]:
                return None
            return (f"cross-cutting layer '{src_dir}' may include only "
                    f"{sorted(manifest.cross_cutting[src_dir])} "
                    f"(declared in {manifest_rel})")
        li, lj = manifest.layer_of.get(src_dir), manifest.layer_of.get(dst_dir)
        if li is None or lj is None:
            missing = src_dir if li is None else dst_dir
            return (f"dir 'src/{missing}' is not in the layering manifest "
                    f"({manifest_rel}); declare its layer")
        if lj <= li:
            return None
        return (f"upward layer edge: '{src_dir}' (layer {li}) may not "
                f"include '{dst_dir}' (layer {lj})")

    for rel in sorted(graph):
        fl = files[rel]
        src_dir = dir_of(rel)
        if src_dir is None:
            base = rel.split("/")[-1]
            if base in manifest.umbrella:
                continue  # umbrella headers may include everything
            violations.append(Violation(
                rel, 1, "layer",
                f"src-root file '{base}' is not declared as an umbrella "
                f"header in {manifest_rel}"))
            continue
        if src_dir not in known:
            violations.append(Violation(
                rel, 1, "layer",
                f"dir 'src/{src_dir}' is not in the layering manifest "
                f"({manifest_rel}); declare its layer"))
            continue
        for lineno, tgt in graph[rel]:
            dst_dir = dir_of(tgt)
            if dst_dir is None:
                continue  # including the umbrella from inside src would be
                # a cycle; the cycle check reports it
            reason = edge_allowed(src_dir, dst_dir)
            if reason is None:
                continue
            exc = next((e for e in manifest.exceptions
                        if e["from"] == src_dir and e["to"] == dst_dir), None)
            if exc is not None:
                exc["used"] = True
                continue
            s = fl.allow_map.get(lineno, {}).get("layer")
            if s is not None:
                s.used = True
                continue
            violations.append(Violation(
                rel, lineno, "layer",
                f"undeclared include edge src/{src_dir} -> src/{dst_dir}: "
                f"{reason}; break the edge or declare an exception (with a "
                f"reason) in {manifest_rel}"))

    # ---- cycle check (file granularity, always enforced) ----
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {rel: WHITE for rel in graph}
    seen_cycles = set()

    def dfs(start):
        stack = [(start, iter(graph[start]))]
        color[start] = GRAY
        path = [start]
        while stack:
            node, it = stack[-1]
            advanced = False
            for lineno, tgt in it:
                if color.get(tgt, BLACK) == GRAY:
                    cyc = path[path.index(tgt):] + [tgt]
                    key = frozenset(cyc)
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        violations.append(Violation(
                            node, lineno, "layer",
                            "include cycle: " + " -> ".join(cyc)))
                elif color.get(tgt, BLACK) == WHITE:
                    color[tgt] = GRAY
                    stack.append((tgt, iter(graph[tgt])))
                    path.append(tgt)
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                path.pop()

    for rel in sorted(graph):
        if color[rel] == WHITE:
            dfs(rel)

    # ---- stale manifest exceptions ----
    for e in manifest.exceptions:
        if not e["used"]:
            violations.append(Violation(
                manifest_rel, 1, "ledger",
                f"stale layering exception {e['from']} -> {e['to']}: no "
                "such include edge exists any more; delete it"))

    return violations, errors


# ---------------------------------------------------------------------------
# Tree driver
# ---------------------------------------------------------------------------

def lint_tree(root: str, manifest_path: str | None = None):
    violations = []
    errors = []
    src = os.path.join(root, SRC_ROOT)
    if not os.path.isdir(src):
        print(f"nti-lint: no {SRC_ROOT}/ under {root}", file=sys.stderr)
        return [], [Violation(root, 0, "config", "missing src tree")]

    if manifest_path is None:
        manifest_path = os.path.join(root, DEFAULT_MANIFEST)
    manifest_rel = os.path.relpath(manifest_path, root).replace(os.sep, "/")
    manifest, merr = load_manifest(manifest_path)
    if manifest is None:
        errors.append(Violation(manifest_rel, 1, "config", merr))

    files: dict[str, FileLinter] = {}
    for dirpath, _, filenames in sorted(os.walk(src)):
        for fn in sorted(filenames):
            if not fn.endswith(CPP_EXTENSIONS):
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
            fl = FileLinter(rel, lex_file(text), root).run()
            files[rel] = fl
            violations.extend(fl.violations)
            errors.extend(fl.errors)

    if manifest is not None:
        lv, le = check_layering(files, manifest, manifest_rel)
        violations.extend(lv)
        errors.extend(le)

    # Sanction ledger: resolved last, so whole-program rules (layer) get
    # the chance to mark their suppressions used.
    for rel in sorted(files):
        for s in files[rel].sanctions:
            if not s.used:
                violations.append(Violation(
                    s.path, s.line, "ledger",
                    f"stale sanction {s.describe()}: it suppresses no "
                    "actual match; delete it (or fix the rule drift that "
                    "orphaned it)"))

    violations.sort(key=lambda v: (v.path, v.line, v.cat))
    return violations, errors


# ---------------------------------------------------------------------------
# SARIF output
# ---------------------------------------------------------------------------

def to_sarif(violations, errors, root: str):
    results = []
    for v in list(violations) + list(errors):
        results.append({
            "ruleId": v.cat,
            "level": "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": v.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, v.line)},
                },
            }],
        })
    rules = [{
        "id": cat,
        "name": cat,
        "shortDescription": {"text": RULE_DESCRIPTIONS[cat]},
        "defaultConfiguration": {"level": "error"},
    } for cat in list(CATEGORIES) + ["sanction", "config"]]
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "nti-lint",
                    "informationUri":
                        "https://example.invalid/docs/STATIC_ANALYSIS.md",
                    "version": "2.0.0",
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file:///" + os.path.abspath(root)
                            .replace(os.sep, "/").lstrip("/") + "/"},
            },
            "results": results,
        }],
    }


def write_sarif(path: str, violations, errors, root: str):
    doc = to_sarif(violations, errors, root)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")


# ---------------------------------------------------------------------------
# Self-test fixtures
# ---------------------------------------------------------------------------

FIXTURE_MANIFEST = """\
{
  "layers": [
    ["common"],
    ["sim", "net"],
    ["osc", "utcsu", "gps"],
    ["comco", "nti"],
    ["interval", "csa"],
    ["node"],
    ["cluster", "fault"]
  ],
  "cross_cutting": {
    "obs": { "may_include": ["common"] },
    "mc": { "may_include": ["common", "obs", "cluster"] }
  },
  "umbrella": ["nti_api.hpp"],
  "exceptions": []
}
"""

FIXTURE_BAD_UTCSU = """\
#include <cstdint>
namespace nti::utcsu {
double drift_estimate(double a) { return a * 1.5; }   // float violation
std::uint32_t read_alpha(Bus& b) {
  return b.bus_read(t, 0x38);                         // offset violation
}
std::uint64_t seed() {
  std::random_device rd;                              // nondet violation
  return rd();
}
}  // namespace nti::utcsu
"""

FIXTURE_BAD_OBS = """\
#include <unordered_map>
namespace nti::obs {
std::unordered_map<int, int> table;                   // unordered violation
void hook(MetricsRegistry& reg) {
  reg.add_counter("Bogus.Name", &x);                  // metric casing
  reg.add_counter("mystery.count", &y);               // metric root
}
}  // namespace nti::obs
"""

FIXTURE_BAD_SIM = """\
#include <memory>
namespace nti::sim {
EventHandle Engine::schedule_at(SimTime t, EventFn fn) {
  auto state = std::make_shared<detail::EventState>();  // alloc violation
  return EventHandle{state};
}
double wall_seconds() {
  auto t = std::chrono::steady_clock::now();            // prof violation
  return std::int64_t(__builtin_ia32_rdtsc()) * 1e-9;   // prof violation
}
}  // namespace nti::sim
"""

FIXTURE_BAD_SHARD = """\
#include <atomic>
#include <mutex>
namespace nti::cluster {
std::mutex segment_lock;                              // shard violation
std::atomic<int> shared_counter{0};                   // shard violation
void bump() {
  std::lock_guard<std::mutex> lk(segment_lock);       // shard violation
  shared_counter++;
}
}  // namespace nti::cluster
"""

# Concurrency primitives are legal in the pool's home (src/mc/pool.*) and
# behind an explicit shard sanction elsewhere.
FIXTURE_POOL_HOME = """\
#include <mutex>
#include <thread>
namespace nti::mc {
std::mutex mu;
std::thread worker;
}  // namespace nti::mc
"""

FIXTURE_SHARD_SANCTIONED = """\
namespace nti::obs {
unsigned probe_cores() {
  // nti-lint: allow(shard): sizing hint recorded in the manifest only;
  // never feeds back into simulation state.
  return std::thread::hardware_concurrency();
}
}  // namespace nti::obs
"""

# Wall-clock reads are legal in the profiler's home (src/obs/prof*) and
# behind an explicit prof sanction elsewhere.
FIXTURE_PROF_HOME = """\
#include <chrono>
namespace nti::obs::prof {
std::int64_t ticks_now() {
  return std::int64_t(__builtin_ia32_rdtsc());
}
std::int64_t steady_ns_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
}  // namespace nti::obs::prof
"""

FIXTURE_PROF_SANCTIONED = """\
namespace nti::mc {
std::int64_t wall_ns() {
  // nti-lint: allow(prof): human-facing throughput only, never fed back.
  auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}
}  // namespace nti::mc
"""

FIXTURE_GOOD_UTCSU = """\
#include <cstdint>
namespace nti::utcsu {
// nti-lint: begin-allow(float): config boundary, quantized below.
double nominal(double f) { return f; }
// nti-lint: end-allow(float)
std::uint32_t read_alpha(Bus& b) {
  // nti-lint: allow(offset): fixture exercising the line sanction.
  return b.bus_read(t, 0x38);
}
void broadcast(Bus& b) {
  b.bus_write(t, kRegCtrl, 0xFFFF'FFFF);  // value arg: hex is fine
}
}  // namespace nti::utcsu
"""

FIXTURE_STRINGS = """\
namespace nti::utcsu {
// The word double in a comment is fine; so is "double" in a string.
const char* kDoc = "double float 0x1234 unordered_map";
/* block comment: double float rand( time(0) */
}  // namespace nti::utcsu
"""

# -- lexer fixtures: each pins a false-negative/positive class the old
# per-line stripper mis-handled --------------------------------------------

# Raw strings: the old stripper lexed `R"(` as an ordinary string opened at
# `"`, so the `)";` terminator left it desynchronized and real code after
# the literal could be swallowed (false negatives) or literal content could
# leak into the code view (false positives).
FIXTURE_RAW_STRING = """\
namespace nti::utcsu {
const char* kBanner = R"(double float 0x38 std::random_device
unordered_map rand( time(0) getenv
)";
const char* kDelim = R"x(quote " inside, still a string: double)x";
double after_raw;  // float violation: lexer must resync after raw strings
}  // namespace nti::utcsu
"""

# Line continuations: a `//` comment ending in a backslash swallows the
# next physical line; the old stripper treated that line as live code.
FIXTURE_CONTINUATION = """\
namespace nti::utcsu {
// this whole comment continues onto the next line \\
double commented_out;
double real_violation;  // float violation: exactly one in this file
#define UTCSU_BAD_SEED() \\
  std::random_device{}()
}  // namespace nti::utcsu
"""

# `#if 0` regions are dead code: the old stripper linted them (false
# positives); `#else` of `#if 0`, and both arms of `#ifdef`, stay live.
FIXTURE_IF0 = """\
namespace nti::utcsu {
#if 0
double dead_code;
std::random_device dead_rd;
#else
double live_else;  // float violation
#endif
#ifdef UTCSU_EXPERIMENT
double live_ifdef;  // float violation: #ifdef arms are linted
#endif
#if 1
double live_if1;  // float violation
#else
double dead_else_of_1;
#endif
}  // namespace nti::utcsu
"""

# Adjacent string literal concatenation: `"si" "m.x"` names `sim.x` (the
# old stripper checked the first fragment only -- a false positive on
# split roots and a false negative on split bad casing).
FIXTURE_CONCAT = """\
namespace nti::obs {
void hook(MetricsRegistry& reg) {
  reg.add_counter("si" "m.queue_depth", &x);   // OK: concatenates to sim.*
  reg.add_counter("sim" ".Bad.Case", &y);      // metric casing violation
}
}  // namespace nti::obs
"""

# unitflow: raw 64-bit parameters with unit-suffixed names in clock-core
# public headers bypass the strong types; members/locals are exempt.
FIXTURE_UNITFLOW = """\
#pragma once
namespace nti::utcsu {
class Ltu {
 public:
  void set_state(std::int64_t value_ps);              // unitflow violation
  void advance(std::uint64_t n_ticks);                // unitflow violation
  void set_alpha(AlphaUnits a);                       // typed: fine
  // nti-lint: allow(unitflow): wire format, width is the contract.
  void decode(std::uint64_t raw_ticks);
 private:
  std::int64_t cache_ps = 0;                          // member: fine
};
}  // namespace nti::utcsu
"""

# hotpath: the innermost function (or lambda) body enclosing a PROF_ZONE
# must not allocate, throw, or build std::function values.
FIXTURE_HOTPATH = """\
#include <memory>
namespace nti::sim {
void Engine::dispatch() {
  PROF_ZONE("sim.engine.dispatch");
  auto scratch = std::make_shared<Frame>();        // hotpath violation
  if (scratch == nullptr) {
    throw std::runtime_error("oom");               // hotpath violation
  }
  std::function<void()> cb = [] {};                // hotpath violation
  cb();
}
void Engine::cold_setup() {
  auto port = std::make_unique<Port>();            // no zone: fine
  handlers_.push_back([this] {
    PROF_ZONE("sim.engine.pop");
    counters_++;                                   // lambda zone is clean
  });
}
void Engine::sanctioned() {
  PROF_ZONE("sim.engine.schedule");
  // nti-lint: allow(hotpath): one-time arena growth, amortized per run.
  arena_.push_back(new Slab());
}
}  // namespace nti::sim
"""

# layer fixtures: an upward include edge, a file-level cycle, and a clean
# downward edge, all under the standard manifest.
FIXTURE_LAYER_BAD_UP = """\
#pragma once
#include "node/card.hpp"
namespace nti::utcsu {}
"""

FIXTURE_LAYER_NODE = """\
#pragma once
namespace nti::node {}
"""

FIXTURE_LAYER_CYCLE_A = """\
#pragma once
#include "interval/b.hpp"
namespace nti::interval {}
"""

FIXTURE_LAYER_CYCLE_B = """\
#pragma once
#include "interval/a.hpp"
namespace nti::interval {}
"""

FIXTURE_LAYER_GOOD = """\
#pragma once
#include "common/base.hpp"
#include "obs/metrics_fwd.hpp"
namespace nti::cluster {}
"""

# ledger: a sanction that suppresses nothing is itself a violation.
FIXTURE_STALE_SANCTION = """\
namespace nti::node {
// nti-lint: allow(float): stale -- the float rule does not even apply here.
int not_a_float = 0;
}  // namespace nti::node
"""


def _put(tmp: str, rel: str, text: str):
    path = os.path.join(tmp, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)


def self_test() -> int:
    failures = []

    def expect(cond, what):
        if not cond:
            failures.append(what)

    # ---- seeded violations: every rule must fire -------------------------
    with tempfile.TemporaryDirectory() as tmp:
        _put(tmp, "tools/layering.json", FIXTURE_MANIFEST)
        _put(tmp, "src/utcsu/bad.cpp", FIXTURE_BAD_UTCSU)
        _put(tmp, "src/obs/bad.cpp", FIXTURE_BAD_OBS)
        _put(tmp, "src/sim/bad.cpp", FIXTURE_BAD_SIM)
        _put(tmp, "src/cluster/bad_shard.cpp", FIXTURE_BAD_SHARD)
        _put(tmp, "src/utcsu/unitflow.hpp", FIXTURE_UNITFLOW)
        _put(tmp, "src/sim/hotpath.cpp", FIXTURE_HOTPATH)
        _put(tmp, "src/utcsu/layer_up.hpp", FIXTURE_LAYER_BAD_UP)
        _put(tmp, "src/node/card.hpp", FIXTURE_LAYER_NODE)
        _put(tmp, "src/interval/a.hpp", FIXTURE_LAYER_CYCLE_A)
        _put(tmp, "src/interval/b.hpp", FIXTURE_LAYER_CYCLE_B)
        _put(tmp, "src/node/stale.cpp", FIXTURE_STALE_SANCTION)
        _put(tmp, "src/obs/concat.cpp", FIXTURE_CONCAT)
        v, e = lint_tree(tmp)
        cats = sorted(x.cat for x in v)
        expect(e == [], f"seeded tree: sanction errors {[str(x) for x in e]}")
        expect(cats.count("float") == 1, f"want 1 float violation, got {cats}")
        expect(cats.count("offset") == 1,
               f"want 1 offset violation, got {cats}")
        expect(cats.count("nondet") == 1,
               f"want 1 nondet violation, got {cats}")
        expect(cats.count("unordered") == 1,
               f"want exactly 1 unordered violation (the declaration; the "
               f"include line is preprocessor, not code), got {cats}")
        expect(cats.count("metric") == 3,
               f"want 3 metric violations (2 seeded + 1 concat), got {cats}")
        expect(cats.count("alloc") == 1, f"want 1 alloc violation, got {cats}")
        expect(cats.count("prof") == 2, f"want 2 prof violations, got {cats}")
        expect(cats.count("shard") == 3,
               f"want 3 shard violations, got {cats}")
        expect(cats.count("unitflow") == 2,
               f"want 2 unitflow violations, got {cats}")
        expect(cats.count("hotpath") == 3,
               f"want 3 hotpath violations, got {cats}")
        expect(cats.count("layer") == 2,
               f"want 2 layer violations (upward edge + cycle), got {cats}")
        expect(cats.count("ledger") == 1,
               f"want 1 ledger violation (stale float allow), got {cats}")
        layer_msgs = [x.message for x in v if x.cat == "layer"]
        expect(any("upward layer edge" in m for m in layer_msgs),
               f"layer: no upward-edge finding in {layer_msgs}")
        expect(any("include cycle" in m for m in layer_msgs),
               f"layer: no cycle finding in {layer_msgs}")

        # SARIF: emit and structurally validate.
        sarif_path = os.path.join(tmp, "out.sarif")
        write_sarif(sarif_path, v, e, tmp)
        with open(sarif_path, encoding="utf-8") as f:
            doc = json.load(f)
        expect(doc["version"] == "2.1.0", "sarif: wrong version")
        run = doc["runs"][0]
        expect(run["tool"]["driver"]["name"] == "nti-lint",
               "sarif: wrong tool name")
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        expect(set(CATEGORIES) <= rule_ids, "sarif: missing rule metadata")
        expect(len(run["results"]) == len(v) + len(e),
               "sarif: result count mismatch")
        r0 = run["results"][0]
        expect(r0["ruleId"] in rule_ids and
               r0["locations"][0]["physicalLocation"]["region"]["startLine"]
               >= 1, "sarif: malformed result record")

    # ---- clean tree: homes, sanctions, lexer resilience ------------------
    with tempfile.TemporaryDirectory() as tmp:
        _put(tmp, "tools/layering.json", FIXTURE_MANIFEST)
        _put(tmp, "src/utcsu/good.cpp", FIXTURE_GOOD_UTCSU)
        _put(tmp, "src/utcsu/strings.cpp", FIXTURE_STRINGS)
        _put(tmp, "src/obs/prof_fixture.cpp", FIXTURE_PROF_HOME)
        _put(tmp, "src/mc/wall.cpp", FIXTURE_PROF_SANCTIONED)
        _put(tmp, "src/mc/pool.cpp", FIXTURE_POOL_HOME)
        _put(tmp, "src/obs/cores.cpp", FIXTURE_SHARD_SANCTIONED)
        _put(tmp, "src/cluster/good_layer.hpp", FIXTURE_LAYER_GOOD)
        _put(tmp, "src/common/base.hpp", "#pragma once\n")
        _put(tmp, "src/obs/metrics_fwd.hpp", "#pragma once\n")
        v, e = lint_tree(tmp)
        expect(v == [], f"clean tree: violations {[str(x) for x in v]}")
        expect(e == [], f"clean tree: errors {[str(x) for x in e]}")

    # ---- lexer fixtures: each mis-handled by the old per-line stripper ---
    with tempfile.TemporaryDirectory() as tmp:
        _put(tmp, "tools/layering.json", FIXTURE_MANIFEST)
        _put(tmp, "src/utcsu/raw.cpp", FIXTURE_RAW_STRING)
        v, e = lint_tree(tmp)
        cats = [x.cat for x in v]
        expect(cats == ["float"],
               f"raw strings: want exactly the trailing float violation, "
               f"got {[str(x) for x in v]}")
        expect(v and v[0].line == 6,
               f"raw strings: violation must anchor after the literals, "
               f"got {[str(x) for x in v]}")

    with tempfile.TemporaryDirectory() as tmp:
        _put(tmp, "tools/layering.json", FIXTURE_MANIFEST)
        _put(tmp, "src/utcsu/cont.cpp", FIXTURE_CONTINUATION)
        v, e = lint_tree(tmp)
        floats = [x for x in v if x.cat == "float"]
        nondets = [x for x in v if x.cat == "nondet"]
        expect(len(floats) == 1 and floats[0].line == 4,
               f"continuation: comment must swallow the continued line, "
               f"got {[str(x) for x in v]}")
        expect(len(nondets) == 1,
               f"continuation: #define body must still be linted, "
               f"got {[str(x) for x in v]}")

    with tempfile.TemporaryDirectory() as tmp:
        _put(tmp, "tools/layering.json", FIXTURE_MANIFEST)
        _put(tmp, "src/utcsu/if0.cpp", FIXTURE_IF0)
        v, e = lint_tree(tmp)
        cats = sorted(x.cat for x in v)
        lines = sorted(x.line for x in v if x.cat == "float")
        expect(cats.count("nondet") == 0,
               f"#if 0: dead region must not be linted, got "
               f"{[str(x) for x in v]}")
        expect(lines == [6, 9, 12],
               f"#if 0: want float violations exactly on the live arms "
               f"(lines 6, 9, 12), got {[str(x) for x in v]}")

    # ---- sanction grammar: a reasonless allow is an error ----------------
    with tempfile.TemporaryDirectory() as tmp:
        _put(tmp, "tools/layering.json", FIXTURE_MANIFEST)
        _put(tmp, "src/utcsu/x.cpp",
             "// nti-lint: allow(float)\ndouble d;\n")
        v, e = lint_tree(tmp)
        expect(len(e) == 1,
               f"want 1 grammar error, got {[str(x) for x in e]}")

    # ---- layer: declared exceptions suppress, stale exceptions flag ------
    with tempfile.TemporaryDirectory() as tmp:
        manifest = json.loads(FIXTURE_MANIFEST)
        manifest["exceptions"] = [
            {"from": "utcsu", "to": "node",
             "reason": "fixture: declared upward edge"},
            {"from": "gps", "to": "fault",
             "reason": "fixture: stale, no such edge"},
        ]
        _put(tmp, "tools/layering.json", json.dumps(manifest))
        _put(tmp, "src/utcsu/layer_up.hpp", FIXTURE_LAYER_BAD_UP)
        _put(tmp, "src/node/card.hpp", FIXTURE_LAYER_NODE)
        v, e = lint_tree(tmp)
        cats = sorted(x.cat for x in v)
        expect(cats.count("layer") == 0,
               f"declared exception must suppress the edge, got "
               f"{[str(x) for x in v]}")
        expect(cats.count("ledger") == 1,
               f"stale manifest exception must flag, got "
               f"{[str(x) for x in v]}")

    # ---- missing manifest is a config error, not a silent skip -----------
    with tempfile.TemporaryDirectory() as tmp:
        _put(tmp, "src/common/base.hpp", "#pragma once\n")
        v, e = lint_tree(tmp)
        expect(any(x.cat == "config" for x in e),
               f"missing manifest must be a config error, got "
               f"{[str(x) for x in e]}")

    if failures:
        for f in failures:
            print(f"nti-lint self-test FAILED: {f}", file=sys.stderr)
        return 1
    print("nti-lint self-test: all checks passed "
          f"({len(CATEGORIES)} rules exercised)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--manifest", default=None,
                    help="layering manifest (default: <root>/tools/"
                         "layering.json)")
    ap.add_argument("--sarif", default=None, metavar="PATH",
                    help="also write findings as a SARIF 2.1.0 report")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in fixture suite and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    violations, errors = lint_tree(root, args.manifest)
    for v in violations:
        print(str(v))
    for e in errors:
        print(str(e))
    if args.sarif:
        write_sarif(args.sarif, violations, errors, root)
        print(f"nti-lint: SARIF report written to {args.sarif}",
              file=sys.stderr)
    if violations or errors:
        n = len(violations) + len(errors)
        print(f"nti-lint: {n} problem(s)", file=sys.stderr)
        return 1
    print("nti-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
