#include "fault/fault.hpp"

#include <cassert>

namespace nti::fault {

const char* to_string(Kind k) {
  switch (k) {
    case Kind::kFrameLoss: return "frame_loss";
    case Kind::kFrameCorrupt: return "frame_corrupt";
    case Kind::kPartition: return "partition";
    case Kind::kDelaySpike: return "delay_spike";
    case Kind::kNodeCrash: return "node_crash";
    case Kind::kBabblingIdiot: return "babbling_idiot";
    case Kind::kMissedTrigger: return "missed_trigger";
    case Kind::kStaleLatch: return "stale_latch";
    case Kind::kClockYank: return "clock_yank";
    case Kind::kFreqStep: return "freq_step";
    case Kind::kGpsOffsetSpike: return "gps_offset_spike";
    case Kind::kGpsOmission: return "gps_omission";
    case Kind::kGpsStuck: return "gps_stuck";
    case Kind::kGpsWrongSecond: return "gps_wrong_second";
    case Kind::kGpsRamp: return "gps_ramp";
  }
  return "unknown";
}

FaultSpec FaultSpec::frame_loss(double rate, SimTime start, SimTime end,
                                int rx_node) {
  FaultSpec s;
  s.kind = Kind::kFrameLoss;
  s.rate = rate;
  s.start = start;
  s.end = end;
  s.node = rx_node;
  return s;
}

FaultSpec FaultSpec::frame_corrupt(double rate, SimTime start, SimTime end) {
  FaultSpec s;
  s.kind = Kind::kFrameCorrupt;
  s.rate = rate;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::partition(std::vector<int> group, SimTime start,
                               SimTime end) {
  FaultSpec s;
  s.kind = Kind::kPartition;
  s.group = std::move(group);
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::delay_spike(double rate, Duration magnitude, SimTime start,
                                 SimTime end, int rx_node) {
  FaultSpec s;
  s.kind = Kind::kDelaySpike;
  s.rate = rate;
  s.magnitude = magnitude;
  s.start = start;
  s.end = end;
  s.node = rx_node;
  return s;
}

FaultSpec FaultSpec::node_crash(int node, SimTime crash, SimTime restart,
                                Duration cold_scatter) {
  FaultSpec s;
  s.kind = Kind::kNodeCrash;
  s.node = node;
  s.start = crash;
  s.end = restart;
  s.magnitude = cold_scatter;
  return s;
}

FaultSpec FaultSpec::babbling_idiot(int node, SimTime start, SimTime end,
                                    Duration gap, std::int64_t frame_bytes) {
  FaultSpec s;
  s.kind = Kind::kBabblingIdiot;
  s.node = node;
  s.start = start;
  s.end = end;
  s.period = gap;
  s.param = frame_bytes;
  return s;
}

FaultSpec FaultSpec::missed_trigger(double rate, int node, SimTime start,
                                    SimTime end) {
  FaultSpec s;
  s.kind = Kind::kMissedTrigger;
  s.rate = rate;
  s.node = node;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::stale_latch(double rate, int node, SimTime start,
                                 SimTime end) {
  FaultSpec s;
  s.kind = Kind::kStaleLatch;
  s.rate = rate;
  s.node = node;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::clock_yank(int node, Duration magnitude, Duration period,
                                SimTime start, SimTime end, bool one_sided) {
  FaultSpec s;
  s.kind = Kind::kClockYank;
  s.node = node;
  s.magnitude = magnitude;
  s.period = period;
  s.start = start;
  s.end = end;
  s.param = one_sided ? 1 : 0;
  return s;
}

FaultSpec FaultSpec::freq_step(int node, double ppm, SimTime start,
                               SimTime end) {
  FaultSpec s;
  s.kind = Kind::kFreqStep;
  s.node = node;
  s.ppm = ppm;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::gps_offset_spike(int node, Duration magnitude,
                                      SimTime start, SimTime end) {
  FaultSpec s;
  s.kind = Kind::kGpsOffsetSpike;
  s.node = node;
  s.magnitude = magnitude;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::gps_omission(int node, SimTime start, SimTime end) {
  FaultSpec s;
  s.kind = Kind::kGpsOmission;
  s.node = node;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::gps_stuck(int node, Duration ramp_per_sec, SimTime start,
                               SimTime end) {
  FaultSpec s;
  s.kind = Kind::kGpsStuck;
  s.node = node;
  s.period = ramp_per_sec;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::gps_wrong_second(int node, std::int64_t label_offset,
                                      SimTime start, SimTime end) {
  FaultSpec s;
  s.kind = Kind::kGpsWrongSecond;
  s.node = node;
  s.param = label_offset;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::gps_ramp(int node, Duration ramp_per_sec, SimTime start,
                              SimTime end) {
  FaultSpec s;
  s.kind = Kind::kGpsRamp;
  s.node = node;
  s.period = ramp_per_sec;
  s.start = start;
  s.end = end;
  return s;
}

bool is_gps_kind(Kind k) {
  switch (k) {
    case Kind::kGpsOffsetSpike:
    case Kind::kGpsOmission:
    case Kind::kGpsStuck:
    case Kind::kGpsWrongSecond:
    case Kind::kGpsRamp:
      return true;
    default:
      return false;
  }
}

gps::FaultWindow to_gps_window(const FaultSpec& s) {
  assert(is_gps_kind(s.kind));
  gps::FaultWindow w{};
  switch (s.kind) {
    case Kind::kGpsOffsetSpike:
      w.kind = gps::FaultKind::kOffsetSpike;
      break;
    case Kind::kGpsOmission:
      w.kind = gps::FaultKind::kOmission;
      break;
    case Kind::kGpsStuck:
      w.kind = gps::FaultKind::kStuck;
      break;
    case Kind::kGpsWrongSecond:
      w.kind = gps::FaultKind::kWrongSecond;
      break;
    case Kind::kGpsRamp:
      w.kind = gps::FaultKind::kRamp;
      break;
    default:
      break;
  }
  w.start = s.start;
  w.end = s.end;
  w.magnitude = s.magnitude;
  w.ramp_per_sec = s.period;
  w.label_offset = s.param;
  return w;
}

FaultSpec from_gps_window(int node, const gps::FaultWindow& w) {
  switch (w.kind) {
    case gps::FaultKind::kOffsetSpike:
      return FaultSpec::gps_offset_spike(node, w.magnitude, w.start, w.end);
    case gps::FaultKind::kOmission:
      return FaultSpec::gps_omission(node, w.start, w.end);
    case gps::FaultKind::kStuck:
      return FaultSpec::gps_stuck(node, w.ramp_per_sec, w.start, w.end);
    case gps::FaultKind::kWrongSecond:
      return FaultSpec::gps_wrong_second(node, w.label_offset, w.start, w.end);
    case gps::FaultKind::kRamp:
      return FaultSpec::gps_ramp(node, w.ramp_per_sec, w.start, w.end);
  }
  return FaultSpec::gps_omission(node, w.start, w.end);
}

std::vector<const FaultSpec*> FaultPlan::of_kind(Kind k) const {
  std::vector<const FaultSpec*> out;
  for (const FaultSpec& s : specs) {
    if (s.kind == k) out.push_back(&s);
  }
  return out;
}

}  // namespace nti::fault
