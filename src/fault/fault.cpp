#include "fault/fault.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace nti::fault {

const char* to_string(Kind k) {
  switch (k) {
    case Kind::kFrameLoss: return "frame_loss";
    case Kind::kFrameCorrupt: return "frame_corrupt";
    case Kind::kPartition: return "partition";
    case Kind::kDelaySpike: return "delay_spike";
    case Kind::kNodeCrash: return "node_crash";
    case Kind::kBabblingIdiot: return "babbling_idiot";
    case Kind::kMissedTrigger: return "missed_trigger";
    case Kind::kStaleLatch: return "stale_latch";
    case Kind::kClockYank: return "clock_yank";
    case Kind::kFreqStep: return "freq_step";
    case Kind::kGpsOffsetSpike: return "gps_offset_spike";
    case Kind::kGpsOmission: return "gps_omission";
    case Kind::kGpsStuck: return "gps_stuck";
    case Kind::kGpsWrongSecond: return "gps_wrong_second";
    case Kind::kGpsRamp: return "gps_ramp";
    case Kind::kGatewayPartition: return "gateway_partition";
    case Kind::kGatewayCapsuleLoss: return "gateway_capsule_loss";
    case Kind::kGatewayDelaySpike: return "gateway_delay_spike";
    case Kind::kCapsuleCorrupt: return "capsule_corrupt";
    case Kind::kSegmentCrash: return "segment_crash";
  }
  return "unknown";
}

FaultSpec FaultSpec::frame_loss(double rate, SimTime start, SimTime end,
                                int rx_node) {
  FaultSpec s;
  s.kind = Kind::kFrameLoss;
  s.rate = rate;
  s.start = start;
  s.end = end;
  s.node = rx_node;
  return s;
}

FaultSpec FaultSpec::frame_corrupt(double rate, SimTime start, SimTime end) {
  FaultSpec s;
  s.kind = Kind::kFrameCorrupt;
  s.rate = rate;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::partition(std::vector<int> group, SimTime start,
                               SimTime end) {
  FaultSpec s;
  s.kind = Kind::kPartition;
  s.group = std::move(group);
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::delay_spike(double rate, Duration magnitude, SimTime start,
                                 SimTime end, int rx_node) {
  FaultSpec s;
  s.kind = Kind::kDelaySpike;
  s.rate = rate;
  s.magnitude = magnitude;
  s.start = start;
  s.end = end;
  s.node = rx_node;
  return s;
}

FaultSpec FaultSpec::node_crash(int node, SimTime crash, SimTime restart,
                                Duration cold_scatter) {
  FaultSpec s;
  s.kind = Kind::kNodeCrash;
  s.node = node;
  s.start = crash;
  s.end = restart;
  s.magnitude = cold_scatter;
  return s;
}

FaultSpec FaultSpec::babbling_idiot(int node, SimTime start, SimTime end,
                                    Duration gap, std::int64_t frame_bytes) {
  FaultSpec s;
  s.kind = Kind::kBabblingIdiot;
  s.node = node;
  s.start = start;
  s.end = end;
  s.period = gap;
  s.param = frame_bytes;
  return s;
}

FaultSpec FaultSpec::missed_trigger(double rate, int node, SimTime start,
                                    SimTime end) {
  FaultSpec s;
  s.kind = Kind::kMissedTrigger;
  s.rate = rate;
  s.node = node;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::stale_latch(double rate, int node, SimTime start,
                                 SimTime end) {
  FaultSpec s;
  s.kind = Kind::kStaleLatch;
  s.rate = rate;
  s.node = node;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::clock_yank(int node, Duration magnitude, Duration period,
                                SimTime start, SimTime end, bool one_sided) {
  FaultSpec s;
  s.kind = Kind::kClockYank;
  s.node = node;
  s.magnitude = magnitude;
  s.period = period;
  s.start = start;
  s.end = end;
  s.param = one_sided ? 1 : 0;
  return s;
}

FaultSpec FaultSpec::freq_step(int node, double ppm, SimTime start,
                               SimTime end) {
  FaultSpec s;
  s.kind = Kind::kFreqStep;
  s.node = node;
  s.ppm = ppm;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::gps_offset_spike(int node, Duration magnitude,
                                      SimTime start, SimTime end) {
  FaultSpec s;
  s.kind = Kind::kGpsOffsetSpike;
  s.node = node;
  s.magnitude = magnitude;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::gps_omission(int node, SimTime start, SimTime end) {
  FaultSpec s;
  s.kind = Kind::kGpsOmission;
  s.node = node;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::gps_stuck(int node, Duration ramp_per_sec, SimTime start,
                               SimTime end) {
  FaultSpec s;
  s.kind = Kind::kGpsStuck;
  s.node = node;
  s.period = ramp_per_sec;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::gps_wrong_second(int node, std::int64_t label_offset,
                                      SimTime start, SimTime end) {
  FaultSpec s;
  s.kind = Kind::kGpsWrongSecond;
  s.node = node;
  s.param = label_offset;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::gps_ramp(int node, Duration ramp_per_sec, SimTime start,
                              SimTime end) {
  FaultSpec s;
  s.kind = Kind::kGpsRamp;
  s.node = node;
  s.period = ramp_per_sec;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::gateway_partition(int link, SimTime start, SimTime end) {
  FaultSpec s;
  s.kind = Kind::kGatewayPartition;
  s.node = link;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::gateway_capsule_loss(double rate, int link, SimTime start,
                                          SimTime end) {
  FaultSpec s;
  s.kind = Kind::kGatewayCapsuleLoss;
  s.rate = rate;
  s.node = link;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::gateway_delay_spike(double rate, Duration magnitude,
                                         int link, SimTime start, SimTime end) {
  FaultSpec s;
  s.kind = Kind::kGatewayDelaySpike;
  s.rate = rate;
  s.magnitude = magnitude;
  s.node = link;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::capsule_corrupt(double rate, int link, SimTime start,
                                     SimTime end) {
  FaultSpec s;
  s.kind = Kind::kCapsuleCorrupt;
  s.rate = rate;
  s.node = link;
  s.start = start;
  s.end = end;
  return s;
}

FaultSpec FaultSpec::segment_crash(int segment, SimTime crash, SimTime restart,
                                   Duration cold_scatter) {
  FaultSpec s;
  s.kind = Kind::kSegmentCrash;
  s.node = segment;
  s.start = crash;
  s.end = restart;
  s.magnitude = cold_scatter;
  return s;
}

bool is_gps_kind(Kind k) {
  switch (k) {
    case Kind::kGpsOffsetSpike:
    case Kind::kGpsOmission:
    case Kind::kGpsStuck:
    case Kind::kGpsWrongSecond:
    case Kind::kGpsRamp:
      return true;
    default:
      return false;
  }
}

gps::FaultWindow to_gps_window(const FaultSpec& s) {
  assert(is_gps_kind(s.kind));
  gps::FaultWindow w{};
  switch (s.kind) {
    case Kind::kGpsOffsetSpike:
      w.kind = gps::FaultKind::kOffsetSpike;
      break;
    case Kind::kGpsOmission:
      w.kind = gps::FaultKind::kOmission;
      break;
    case Kind::kGpsStuck:
      w.kind = gps::FaultKind::kStuck;
      break;
    case Kind::kGpsWrongSecond:
      w.kind = gps::FaultKind::kWrongSecond;
      break;
    case Kind::kGpsRamp:
      w.kind = gps::FaultKind::kRamp;
      break;
    default:
      break;
  }
  w.start = s.start;
  w.end = s.end;
  w.magnitude = s.magnitude;
  w.ramp_per_sec = s.period;
  w.label_offset = s.param;
  return w;
}

FaultSpec from_gps_window(int node, const gps::FaultWindow& w) {
  switch (w.kind) {
    case gps::FaultKind::kOffsetSpike:
      return FaultSpec::gps_offset_spike(node, w.magnitude, w.start, w.end);
    case gps::FaultKind::kOmission:
      return FaultSpec::gps_omission(node, w.start, w.end);
    case gps::FaultKind::kStuck:
      return FaultSpec::gps_stuck(node, w.ramp_per_sec, w.start, w.end);
    case gps::FaultKind::kWrongSecond:
      return FaultSpec::gps_wrong_second(node, w.label_offset, w.start, w.end);
    case gps::FaultKind::kRamp:
      return FaultSpec::gps_ramp(node, w.ramp_per_sec, w.start, w.end);
  }
  return FaultSpec::gps_omission(node, w.start, w.end);
}

bool is_gateway_kind(Kind k) {
  switch (k) {
    case Kind::kGatewayPartition:
    case Kind::kGatewayCapsuleLoss:
    case Kind::kGatewayDelaySpike:
    case Kind::kCapsuleCorrupt:
      return true;
    default:
      return false;
  }
}

bool is_sharded_kind(Kind k) {
  return is_gateway_kind(k) || k == Kind::kSegmentCrash;
}

namespace {

bool windows_overlap(const FaultSpec& a, const FaultSpec& b) {
  return std::max(a.start, b.start) < std::min(a.end, b.end);
}

[[noreturn]] void spec_error(std::size_t i, const FaultSpec& s,
                             const std::string& what) {
  throw std::invalid_argument("fault plan: spec " + std::to_string(i) + " (" +
                              to_string(s.kind) + ") " + what);
}

}  // namespace

void FaultPlan::validate(int num_nodes, int num_segments, int num_links) const {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const FaultSpec& s = specs[i];
    if (is_sharded_kind(s.kind) && num_segments <= 1) {
      spec_error(i, s,
                 "requires a multi-segment topology (docs/SHARDING.md); a "
                 "single-segment cluster has no gateway links or segments "
                 "to target");
    }
    if (is_gateway_kind(s.kind)) {
      if (s.node < -1 || s.node >= num_links) {
        spec_error(i, s,
                   "targets gateway link " + std::to_string(s.node) +
                       " but the topology has " + std::to_string(num_links) +
                       " links (-1 = all links)");
      }
      continue;
    }
    if (s.kind == Kind::kSegmentCrash) {
      if (s.node < 0 || s.node >= num_segments) {
        spec_error(i, s,
                   "targets segment " + std::to_string(s.node) +
                       " but the topology has " + std::to_string(num_segments) +
                       " segments");
      }
      continue;
    }
    // Node-scoped kinds of the single-segment catalogue.  Plan node ids are
    // segment-0-local on a sharded topology (docs/SHARDING.md).
    const bool needs_node = s.kind == Kind::kNodeCrash ||
                            s.kind == Kind::kBabblingIdiot ||
                            s.kind == Kind::kClockYank ||
                            s.kind == Kind::kFreqStep;
    if (needs_node && s.node < 0) {
      spec_error(i, s, "requires a concrete target node (got -1)");
    }
    if (s.node < -1 || s.node >= num_nodes) {
      spec_error(i, s,
                 "targets node " + std::to_string(s.node) +
                     " but the cluster has " + std::to_string(num_nodes) +
                     " nodes");
    }
    for (const int member : s.group) {
      if (member < 0 || member >= num_nodes) {
        spec_error(i, s,
                   "partition group references node " + std::to_string(member) +
                       " but the cluster has " + std::to_string(num_nodes) +
                       " nodes");
      }
    }
  }
  // Overlapping crash windows on one target: the injector's stop/rejoin
  // event pairs would interleave (a node cold-restarted by one spec while
  // another still holds it down), which has no defined semantics.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const FaultSpec& a = specs[i];
    if (a.kind != Kind::kNodeCrash && a.kind != Kind::kSegmentCrash) continue;
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      const FaultSpec& b = specs[j];
      if (b.kind != Kind::kNodeCrash && b.kind != Kind::kSegmentCrash) continue;
      const bool same_target = a.kind == b.kind && a.node == b.node;
      // Plan node ids live in segment 0, so a segment 0 crash covers every
      // node a node_crash could touch.
      const bool seg0_vs_node =
          (a.kind == Kind::kSegmentCrash && a.node == 0 &&
           b.kind == Kind::kNodeCrash) ||
          (b.kind == Kind::kSegmentCrash && b.node == 0 &&
           a.kind == Kind::kNodeCrash);
      if ((same_target || seg0_vs_node) && windows_overlap(a, b)) {
        throw std::invalid_argument(
            "fault plan: specs " + std::to_string(i) + " and " +
            std::to_string(j) + " (" + to_string(a.kind) + " / " +
            to_string(b.kind) + ") have overlapping crash windows for the "
            "same target; stop/cold-rejoin pairs must not interleave");
      }
    }
  }
}

std::vector<const FaultSpec*> FaultPlan::of_kind(Kind k) const {
  std::vector<const FaultSpec*> out;
  for (const FaultSpec& s : specs) {
    if (s.kind == k) out.push_back(&s);
  }
  return out;
}

}  // namespace nti::fault
