#include "fault/injector.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/phi.hpp"

namespace nti::fault {

namespace {

/// Corruptible wire region: the checksum-protected stamp words that the
/// CPLD maps into the transmit header (tx_map_timestamp 0x18 through
/// tx_map_alpha+3 = 0x23 would include the alpha word, which the checksum
/// does NOT cover -- so flips are confined to the 64 time bits at byte
/// offsets [0x18, 0x20), every one of which time_checksum8 detects).
constexpr std::int64_t kStampBitBase = 0x18 * 8;
constexpr std::int64_t kStampBits = 64;

}  // namespace

Injector::Injector(sim::Engine& engine, FaultPlan plan, RngStream rng)
    : engine_(engine), plan_(std::move(plan)), rng_(rng) {
  spec_rng_.reserve(plan_.specs.size());
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    spec_rng_.push_back(rng_.fork("spec", i));
  }
}

void Injector::attach_medium(net::Medium& medium) {
  medium_ = &medium;
  medium.set_tap(this);
}

void Injector::attach_node(int node, node::NodeCard& card,
                           csa::SyncNode& sync) {
  nodes_[node] = NodeRef{&card, &sync};
}

bool Injector::in_group(const FaultSpec& s, int station) {
  return std::find(s.group.begin(), s.group.end(), station) != s.group.end();
}

bool Injector::node_down(int node) const {
  return node >= 0 && static_cast<std::size_t>(node) < down_.size() &&
         down_[static_cast<std::size_t>(node)];
}

Injector::NodeRef& Injector::target(const FaultSpec& s) {
  assert(nodes_.count(s.node) != 0 && "fault spec targets an unattached node");
  return nodes_.at(s.node);
}

void Injector::trace_fault(obs::TraceType type, Kind k, int node,
                           std::int64_t detail) {
  if (trace_ == nullptr) return;
  trace_->push(engine_.now(), type, node, static_cast<std::int64_t>(k), detail);
}

void Injector::arm() {
  if (armed_) return;
  armed_ = true;
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& s = plan_.specs[i];
    switch (s.kind) {
      case Kind::kNodeCrash:
        arm_crash(i);
        break;
      case Kind::kClockYank:
        engine_.schedule_at(s.start, [this, i] { yank_tick(i); });
        break;
      case Kind::kFreqStep:
        arm_freq_step(i);
        break;
      case Kind::kBabblingIdiot:
        engine_.schedule_at(s.start, [this, i] { babble_tick(i, true); });
        break;
      case Kind::kPartition:
        arm_window_markers(i, /*count_at_start=*/true);
        break;
      default:
        // GPS kinds are enacted by the receiver model (Cluster translates
        // them to gps::FaultWindow); trace + count their window edges here
        // so the unified trace covers them too.  Stochastic medium/driver
        // kinds need no scheduled events -- the tap / driver hooks consult
        // the window per delivery, and each hit is individually visible as
        // a kFrameDrop / kFaultInject record.
        if (is_gps_kind(s.kind)) arm_window_markers(i, /*count_at_start=*/true);
        break;
    }
  }
  install_driver_hooks();
}

void Injector::arm_crash(std::size_t idx) {
  const FaultSpec& spec = plan_.specs[idx];
  engine_.schedule_at(spec.start, [this, idx] {
    const FaultSpec& s = plan_.specs[idx];
    NodeRef& nr = target(s);
    nr.sync->stop();
    if (static_cast<std::size_t>(s.node) >= down_.size()) {
      down_.resize(static_cast<std::size_t>(s.node) + 1, false);
    }
    down_[static_cast<std::size_t>(s.node)] = true;
    count(Kind::kNodeCrash);
    trace_fault(obs::TraceType::kFaultInject, s.kind, s.node, 0);
  });
  if (spec.end == SimTime::never()) return;
  engine_.schedule_at(spec.end, [this, idx] {
    const FaultSpec& s = plan_.specs[idx];
    NodeRef& nr = target(s);
    down_[static_cast<std::size_t>(s.node)] = false;
    // Cold rejoin: the rebooted CPU knows the time only roughly (battery
    // RTC / neighbor hint), modeled as truth +- cold_scatter with an
    // honest alpha0 covering the scatter.  Re-integration then happens
    // through ordinary CSA rounds -- no special protocol.
    const SimTime now = engine_.now();
    const Duration truth = now - SimTime::epoch();
    const Duration scatter = spec_rng_[idx].uniform(-s.magnitude, s.magnitude);
    const Duration value = truth + scatter;
    const Duration alpha0 = s.magnitude + Duration::us(2);
    const Duration period = nr.sync->config().round_period;
    const auto first_round =
        static_cast<std::uint32_t>(value.count_ps() / period.count_ps()) + 2;
    nr.sync->start(value, alpha0, first_round);
    ++recoveries_;
    trace_fault(obs::TraceType::kFaultClear, s.kind, s.node,
                scatter.count_ps());
  });
}

void Injector::yank_tick(std::size_t idx) {
  const FaultSpec& s = plan_.specs[idx];
  const SimTime now = engine_.now();
  if (now >= s.end) {
    ++recoveries_;
    trace_fault(obs::TraceType::kFaultClear, s.kind, s.node, 0);
    return;
  }
  NodeRef& nr = target(s);
  const Duration yank = s.param != 0
                            ? s.magnitude
                            : spec_rng_[idx].uniform(-s.magnitude, s.magnitude);
  nr.card->chip().ltu().set_state(
      now, Phi::from_duration(nr.card->true_clock(now) + yank));
  count(Kind::kClockYank);
  trace_fault(obs::TraceType::kFaultInject, s.kind, s.node, yank.count_ps());
  if (s.period <= Duration::zero()) return;  // one-shot yank
  engine_.schedule_at(now + s.period, [this, idx] { yank_tick(idx); });
}

void Injector::arm_freq_step(std::size_t idx) {
  const FaultSpec& spec = plan_.specs[idx];
  engine_.schedule_at(spec.start, [this, idx] {
    const FaultSpec& s = plan_.specs[idx];
    auto& ltu = target(s).card->chip().ltu();
    // The fault model scales STEP by a ppm factor; the result is
    // re-quantized to an integer augend before the register write.
    const double factor = 1.0 + s.ppm * 1e-6;
    ltu.set_step(engine_.now(),
                 RateStep::raw(std::llround(
                     static_cast<double>(ltu.step().magnitude()) * factor)));
    count(Kind::kFreqStep);
    trace_fault(obs::TraceType::kFaultInject, s.kind, s.node,
                std::llround(s.ppm * 1000.0));
  });
  if (spec.end == SimTime::never()) return;
  engine_.schedule_at(spec.end, [this, idx] {
    const FaultSpec& s = plan_.specs[idx];
    auto& ltu = target(s).card->chip().ltu();
    // Undo multiplicatively against the *current* STEP so legitimate rate-
    // sync adjustments made during the window survive the restore.
    // Float use re-quantized as in arm_freq_step above.
    const double factor = 1.0 + s.ppm * 1e-6;
    ltu.set_step(engine_.now(),
                 RateStep::raw(std::llround(
                     static_cast<double>(ltu.step().magnitude()) / factor)));
    ++recoveries_;
    trace_fault(obs::TraceType::kFaultClear, s.kind, s.node,
                std::llround(s.ppm * 1000.0));
  });
}

void Injector::babble_tick(std::size_t idx, bool first) {
  const FaultSpec& s = plan_.specs[idx];
  const SimTime now = engine_.now();
  if (now >= s.end) {
    if (!first) {
      ++recoveries_;
      trace_fault(obs::TraceType::kFaultClear, s.kind, s.node, 0);
    }
    return;
  }
  if (first) trace_fault(obs::TraceType::kFaultInject, s.kind, s.node, s.param);
  target(s).card->driver().send_data(0x0B0B,
                                     static_cast<std::size_t>(s.param));
  count(Kind::kBabblingIdiot);
  if (s.period <= Duration::zero()) return;  // degenerate: single frame
  engine_.schedule_at(now + s.period, [this, idx] { babble_tick(idx, false); });
}

void Injector::arm_window_markers(std::size_t idx, bool count_at_start) {
  const FaultSpec& spec = plan_.specs[idx];
  engine_.schedule_at(spec.start, [this, idx, count_at_start] {
    const FaultSpec& s = plan_.specs[idx];
    if (count_at_start) count(s.kind);
    trace_fault(obs::TraceType::kFaultInject, s.kind, s.node, 0);
  });
  if (spec.end == SimTime::never()) return;
  engine_.schedule_at(spec.end, [this, idx] {
    const FaultSpec& s = plan_.specs[idx];
    ++recoveries_;
    trace_fault(obs::TraceType::kFaultClear, s.kind, s.node, 0);
  });
}

void Injector::install_driver_hooks() {
  for (auto& [node, ref] : nodes_) {
    std::vector<std::size_t> miss, stale;
    for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
      const FaultSpec& s = plan_.specs[i];
      if (s.node >= 0 && s.node != node) continue;
      if (s.kind == Kind::kMissedTrigger) miss.push_back(i);
      if (s.kind == Kind::kStaleLatch) stale.push_back(i);
    }
    const int id = node;
    if (!miss.empty()) {
      ref.card->driver().fault_miss_trigger = [this, miss, id] {
        const SimTime now = engine_.now();
        for (const std::size_t i : miss) {
          const FaultSpec& s = plan_.specs[i];
          if (active(s, now) && spec_rng_[i].chance(s.rate)) {
            count(Kind::kMissedTrigger);
            trace_fault(obs::TraceType::kFaultInject, s.kind, id, 0);
            return true;
          }
        }
        return false;
      };
    }
    if (!stale.empty()) {
      ref.card->driver().fault_stale_latch = [this, stale, id] {
        const SimTime now = engine_.now();
        for (const std::size_t i : stale) {
          const FaultSpec& s = plan_.specs[i];
          if (active(s, now) && spec_rng_[i].chance(s.rate)) {
            count(Kind::kStaleLatch);
            trace_fault(obs::TraceType::kFaultInject, s.kind, id, 0);
            return true;
          }
        }
        return false;
      };
    }
  }
}

obs::DiscardReason Injector::rx_drop(int src, int dst, const net::Frame&) {
  if (node_down(src) || node_down(dst)) return obs::DiscardReason::kNodeDown;
  const SimTime now = engine_.now();
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& s = plan_.specs[i];
    if (!active(s, now)) continue;
    if (s.kind == Kind::kPartition) {
      if (in_group(s, src) != in_group(s, dst)) {
        return obs::DiscardReason::kPartition;
      }
    } else if (s.kind == Kind::kFrameLoss) {
      if ((s.node < 0 || s.node == dst) && spec_rng_[i].chance(s.rate)) {
        count(Kind::kFrameLoss);
        return obs::DiscardReason::kInjectedLoss;
      }
    }
  }
  return obs::DiscardReason::kNone;
}

Duration Injector::rx_extra_delay(int src, int dst) {
  (void)src;
  const SimTime now = engine_.now();
  Duration extra = Duration::zero();
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& s = plan_.specs[i];
    if (s.kind != Kind::kDelaySpike || !active(s, now)) continue;
    if ((s.node < 0 || s.node == dst) && spec_rng_[i].chance(s.rate)) {
      count(Kind::kDelaySpike);
      extra = extra + s.magnitude;
    }
  }
  return extra;
}

std::int64_t Injector::corrupt_bit(const net::Frame& f) {
  const SimTime now = engine_.now();
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& s = plan_.specs[i];
    if (s.kind != Kind::kFrameCorrupt || !active(s, now)) continue;
    if (!spec_rng_[i].chance(s.rate)) continue;
    if (f.bytes.size() < 0x20) return -1;  // runt: no stamp words on the wire
    count(Kind::kFrameCorrupt);
    return kStampBitBase + spec_rng_[i].uniform_int(0, kStampBits - 1);
  }
  return -1;
}

void Injector::register_metrics(obs::MetricsRegistry& reg,
                                const std::string& prefix) {
  for (std::size_t k = 0; k < kNumKinds; ++k) {
    reg.add_counter(prefix + "injected." + to_string(static_cast<Kind>(k)),
                    &counts_[k]);
  }
  reg.add_counter(prefix + "injections_total", &total_);
  reg.add_counter(prefix + "recoveries", &recoveries_);
}

}  // namespace nti::fault
