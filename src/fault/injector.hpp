// fault::Injector: enacts a FaultPlan against a live cluster.
//
// One injector owns all fault mechanisms of a scenario:
//   * as the Medium's MediumTap it decides, per delivery, about injected
//     frame loss, partition cuts, node-down blackout and delay spikes, and
//     picks the corruption bit for wire-level flips (always inside the
//     checksum-protected stamp words 0x18..0x1F, so every injected flip is
//     detectable by time_checksum8 -- the property the stamp checksum
//     exists for);
//   * scheduled engine events drive the windowed faults: node crash (stops
//     the SyncNode; inbound/outbound frames blackholed) and cold-clock
//     rejoin at restart, Byzantine clock yanks, oscillator frequency
//     steps, babbling-idiot data floods;
//   * closures installed on CiDriver enact the NTI/COMCO-layer faults
//     (missed RECEIVE trigger, stale SSU latch);
//   * GPS-kind specs are *not* enacted here -- the Cluster translates them
//     into gps::FaultWindow on the targeted receivers -- but the injector
//     still traces their window edges so the trace tells one story.
//
// Determinism: every stochastic choice draws from a per-spec RngStream
// forked off the injector's stream (itself forked off the cluster seed),
// in medium-event order, which the engine makes deterministic.  Same seed,
// same plan => bit-identical injections.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time_types.hpp"
#include "csa/sync.hpp"
#include "fault/fault.hpp"
#include "net/medium.hpp"
#include "node/node_card.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace nti::fault {

class Injector final : public net::MediumTap {
 public:
  Injector(sim::Engine& engine, FaultPlan plan, RngStream rng);

  /// Install this injector as the medium's delivery tap.
  void attach_medium(net::Medium& medium);
  /// Register a node's card + sync algorithm as an injection target.
  /// Station index == node id for cluster-attached node ports.
  void attach_node(int node, node::NodeCard& card, csa::SyncNode& sync);

  /// Schedule all windowed/periodic fault events and install the driver
  /// hooks.  Call once, after every attach_* and after the SyncNodes have
  /// started (Cluster::start does; schedule_at clamps past windows to now).
  void arm();

  /// Trace every injection/recovery as kFaultInject/kFaultClear records.
  /// Borrowed, not owned; nullptr disables.
  void set_trace(obs::TraceRing* ring) { trace_ = ring; }

  /// Per-kind injection counters under `prefix` (e.g. "fault."):
  /// `<prefix>injected.<kind>` plus `<prefix>injections_total` and
  /// `<prefix>recoveries`.  The injector must outlive registry snapshots.
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix);

  // -- MediumTap ----------------------------------------------------------
  obs::DiscardReason rx_drop(int src, int dst, const net::Frame& f) override;
  Duration rx_extra_delay(int src, int dst) override;
  std::int64_t corrupt_bit(const net::Frame& f) override;

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t injections(Kind k) const {
    return counts_[static_cast<std::size_t>(k)];
  }
  std::uint64_t total_injections() const { return total_; }
  std::uint64_t recoveries() const { return recoveries_; }
  bool node_down(int node) const;

 private:
  struct NodeRef {
    node::NodeCard* card = nullptr;
    csa::SyncNode* sync = nullptr;
  };

  static bool active(const FaultSpec& s, SimTime t) {
    return t >= s.start && t < s.end;
  }
  static bool in_group(const FaultSpec& s, int station);
  void count(Kind k) {
    ++counts_[static_cast<std::size_t>(k)];
    ++total_;
  }
  void trace_fault(obs::TraceType type, Kind k, int node, std::int64_t detail);
  void arm_crash(std::size_t idx);
  void arm_freq_step(std::size_t idx);
  void arm_window_markers(std::size_t idx, bool count_at_start);
  void yank_tick(std::size_t idx);
  void babble_tick(std::size_t idx, bool first);
  void install_driver_hooks();
  NodeRef& target(const FaultSpec& s);

  sim::Engine& engine_;
  FaultPlan plan_;
  RngStream rng_;
  std::vector<RngStream> spec_rng_;  ///< one fork per spec, by plan index
  net::Medium* medium_ = nullptr;
  std::map<int, NodeRef> nodes_;
  std::vector<bool> down_;  ///< indexed by node id (grown on demand)
  std::array<std::uint64_t, kNumKinds> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t recoveries_ = 0;
  bool armed_ = false;
  obs::TraceRing* trace_ = nullptr;
};

}  // namespace nti::fault
