// Unified deterministic fault-injection plans.
//
// The paper's whole point is *fault-tolerant* interval-based sync: stamp
// checksums, interval-based clock validation, and convergence functions
// that survive f faulty nodes.  A FaultPlan describes, declaratively, the
// adverse conditions a scenario runs under -- one typed FaultSpec per
// injected fault, each with a scheduled window and/or a stochastic rate --
// across four layers of the system:
//
//   medium  frame loss, payload bit-flip corruption (caught by the stamp
//           checksum), link partition of a station subset, delay spikes
//   node    crash/restart with cold-clock rejoin, babbling-idiot flood
//   comco   missed timestamp trigger, stale stamp latch
//   clock   Byzantine clock yank, oscillator frequency step
//
// plus the GPS receiver fault catalogue ([HS97]) that gps::FaultWindow
// already modeled; those specs translate into per-receiver windows so one
// plan covers every fault source in a cluster.
//
// Determinism contract: a plan is pure data.  All randomness (loss draws,
// corruption bit choice, yank magnitudes) is drawn by fault::Injector from
// an RngStream forked off the owning cluster's seed, so (a) two runs of
// the same seed inject identically, and (b) Monte-Carlo replicas -- which
// differ in cluster seed by construction (mc::replica_seed) -- inject
// decorrelated but individually reproducible fault sequences.  Adding a
// fault plan never perturbs the cluster's other streams (named forks).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time_types.hpp"
#include "gps/gps.hpp"

namespace nti::fault {

enum class Kind : std::uint8_t {
  // -- medium layer --------------------------------------------------------
  kFrameLoss = 0,   ///< per-receiver Bernoulli frame drop at `rate`
  kFrameCorrupt,    ///< wire-level bit flip in the stamp words at `rate`
  kPartition,       ///< stations in `group` cut off from the rest
  kDelaySpike,      ///< extra rx delay `magnitude` with probability `rate`
  // -- node layer ----------------------------------------------------------
  kNodeCrash,       ///< CPU dead from start..end; cold-clock rejoin at end
  kBabblingIdiot,   ///< node floods data frames every `period` in the window
  // -- NTI/COMCO layer ------------------------------------------------------
  kMissedTrigger,   ///< RECEIVE trigger lost: rx stamp never latched
  kStaleLatch,      ///< SSU latch not updated: previous frame's stamp parked
  // -- clock layer ----------------------------------------------------------
  kClockYank,       ///< Byzantine: state yanked by +-`magnitude` every `period`
  kFreqStep,        ///< logical-clock rate stepped by `ppm` over the window
  // -- GPS receiver (generalizes gps::FaultWindow) ---------------------------
  kGpsOffsetSpike,
  kGpsOmission,
  kGpsStuck,
  kGpsWrongSecond,
  kGpsRamp,
  // -- sharded-topology layer (docs/SHARDING.md; enacted by the gateway-side
  // -- capsule tap in cluster::ShardedCluster, never by the per-segment
  // -- Injector, so ShardGroup byte-determinism is preserved) --------------
  kGatewayPartition,   ///< gateway link cut: capsules dropped (retransmits apply)
  kGatewayCapsuleLoss, ///< per-capsule Bernoulli drop at `rate` on the link
  kGatewayDelaySpike,  ///< capsule transmit held back by `magnitude` at `rate`
  kCapsuleCorrupt,     ///< one wire bit flipped per capsule at `rate` (crc8-caught)
  kSegmentCrash,       ///< whole segment dead start..end; cold rejoin at end
};
inline constexpr std::size_t kNumKinds = 20;

const char* to_string(Kind k);

/// One injected fault.  Fields are interpreted per kind (see the builder
/// helpers below, which are the documented construction surface).
struct FaultSpec {
  Kind kind = Kind::kFrameLoss;
  /// Target node/station; -1 targets the whole medium (medium-layer kinds)
  /// or every node (comco/gps kinds).
  int node = -1;
  SimTime start = SimTime::epoch();
  SimTime end = SimTime::never();
  /// Per-event probability for stochastic kinds (loss, corruption, delay
  /// spikes, missed trigger, stale latch), in [0, 1].
  double rate = 0.0;
  /// Amplitude: yank bound, delay spike size, GPS spike offset, crash
  /// rejoin cold-clock scatter.
  Duration magnitude = Duration::zero();
  /// Cadence: yank period, babble inter-frame gap, GPS ramp rate per sec.
  Duration period = Duration::zero();
  /// Frequency step for kFreqStep, in ppm.
  double ppm = 0.0;
  /// Misc integer: GPS wrong-second label offset, babble frame bytes.
  std::int64_t param = 0;
  /// kPartition: the stations on the isolated side of the cut.
  std::vector<int> group;

  // ---- builders ----------------------------------------------------------
  static FaultSpec frame_loss(double rate, SimTime start = SimTime::epoch(),
                              SimTime end = SimTime::never(), int rx_node = -1);
  static FaultSpec frame_corrupt(double rate, SimTime start = SimTime::epoch(),
                                 SimTime end = SimTime::never());
  static FaultSpec partition(std::vector<int> group, SimTime start, SimTime end);
  static FaultSpec delay_spike(double rate, Duration magnitude,
                               SimTime start = SimTime::epoch(),
                               SimTime end = SimTime::never(), int rx_node = -1);
  static FaultSpec node_crash(int node, SimTime crash, SimTime restart,
                              Duration cold_scatter = Duration::us(300));
  static FaultSpec babbling_idiot(int node, SimTime start, SimTime end,
                                  Duration gap = Duration::us(600),
                                  std::int64_t frame_bytes = 512);
  static FaultSpec missed_trigger(double rate, int node = -1,
                                  SimTime start = SimTime::epoch(),
                                  SimTime end = SimTime::never());
  static FaultSpec stale_latch(double rate, int node = -1,
                               SimTime start = SimTime::epoch(),
                               SimTime end = SimTime::never());
  /// `one_sided` yanks by exactly +magnitude every period (a consistently
  /// biased Byzantine clock); the default draws uniform +-magnitude.
  static FaultSpec clock_yank(int node, Duration magnitude, Duration period,
                              SimTime start = SimTime::epoch(),
                              SimTime end = SimTime::never(),
                              bool one_sided = false);
  static FaultSpec freq_step(int node, double ppm, SimTime start,
                             SimTime end = SimTime::never());
  static FaultSpec gps_offset_spike(int node, Duration magnitude, SimTime start,
                                    SimTime end);
  static FaultSpec gps_omission(int node, SimTime start, SimTime end);
  static FaultSpec gps_stuck(int node, Duration ramp_per_sec, SimTime start,
                             SimTime end);
  static FaultSpec gps_wrong_second(int node, std::int64_t label_offset,
                                    SimTime start, SimTime end);
  static FaultSpec gps_ramp(int node, Duration ramp_per_sec, SimTime start,
                            SimTime end);
  // Sharded-topology kinds.  For the gateway kinds, `node` carries the
  // *gateway link index* into TopologySpec::links (-1 = every link); for
  // segment_crash it carries the *segment index*.
  static FaultSpec gateway_partition(int link, SimTime start, SimTime end);
  static FaultSpec gateway_capsule_loss(double rate, int link = -1,
                                        SimTime start = SimTime::epoch(),
                                        SimTime end = SimTime::never());
  static FaultSpec gateway_delay_spike(double rate, Duration magnitude,
                                       int link = -1,
                                       SimTime start = SimTime::epoch(),
                                       SimTime end = SimTime::never());
  static FaultSpec capsule_corrupt(double rate, int link = -1,
                                   SimTime start = SimTime::epoch(),
                                   SimTime end = SimTime::never());
  static FaultSpec segment_crash(int segment, SimTime crash, SimTime restart,
                                 Duration cold_scatter = Duration::us(300));
};

/// True for the kinds that translate into gps::FaultWindow.
bool is_gps_kind(Kind k);

/// True for the kinds scoped to one gateway link (partition, capsule loss,
/// delay spike, capsule corruption).  `FaultSpec::node` is then a link index.
bool is_gateway_kind(Kind k);

/// True for every kind that only makes sense on a multi-segment topology:
/// the gateway kinds plus kSegmentCrash.  A single-segment Cluster rejects
/// them at validation.
bool is_sharded_kind(Kind k);

/// Translate a GPS-kind spec into the receiver-level window (asserts on
/// non-GPS kinds).
gps::FaultWindow to_gps_window(const FaultSpec& s);

/// Lift a legacy receiver-level window into a plan spec targeting `node`.
FaultSpec from_gps_window(int node, const gps::FaultWindow& w);

/// Thin compat alias for pre-plan call sites (the receiver-level window
/// type remains the mechanism; the plan is the policy surface).
using GpsFaultWindow = gps::FaultWindow;

/// The declarative fault scenario handed to cluster::ClusterConfig.
struct FaultPlan {
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty(); }
  FaultPlan& add(FaultSpec s) {
    specs.push_back(std::move(s));
    return *this;
  }
  /// Specs of one kind (e.g. all partitions), preserving plan order.
  std::vector<const FaultSpec*> of_kind(Kind k) const;

  /// Configure-time validation against the hosting scenario: throws
  /// std::invalid_argument on specs referencing nonexistent nodes, segments
  /// or gateway links, on sharded kinds handed to a single-segment cluster
  /// (num_segments <= 1), and on overlapping crash windows for the same
  /// target — two node_crash specs on one node, two segment_crash specs on
  /// one segment, or a segment 0 crash overlapping any node_crash (plan
  /// node ids are segment-0-local).  Overlapping crash windows would leave
  /// the injector's stop/cold-rejoin pairs interleaved, which is undefined.
  void validate(int num_nodes, int num_segments = 1, int num_links = 0) const;
};

}  // namespace nti::fault
