// Unified deterministic fault-injection plans.
//
// The paper's whole point is *fault-tolerant* interval-based sync: stamp
// checksums, interval-based clock validation, and convergence functions
// that survive f faulty nodes.  A FaultPlan describes, declaratively, the
// adverse conditions a scenario runs under -- one typed FaultSpec per
// injected fault, each with a scheduled window and/or a stochastic rate --
// across four layers of the system:
//
//   medium  frame loss, payload bit-flip corruption (caught by the stamp
//           checksum), link partition of a station subset, delay spikes
//   node    crash/restart with cold-clock rejoin, babbling-idiot flood
//   comco   missed timestamp trigger, stale stamp latch
//   clock   Byzantine clock yank, oscillator frequency step
//
// plus the GPS receiver fault catalogue ([HS97]) that gps::FaultWindow
// already modeled; those specs translate into per-receiver windows so one
// plan covers every fault source in a cluster.
//
// Determinism contract: a plan is pure data.  All randomness (loss draws,
// corruption bit choice, yank magnitudes) is drawn by fault::Injector from
// an RngStream forked off the owning cluster's seed, so (a) two runs of
// the same seed inject identically, and (b) Monte-Carlo replicas -- which
// differ in cluster seed by construction (mc::replica_seed) -- inject
// decorrelated but individually reproducible fault sequences.  Adding a
// fault plan never perturbs the cluster's other streams (named forks).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time_types.hpp"
#include "gps/gps.hpp"

namespace nti::fault {

enum class Kind : std::uint8_t {
  // -- medium layer --------------------------------------------------------
  kFrameLoss = 0,   ///< per-receiver Bernoulli frame drop at `rate`
  kFrameCorrupt,    ///< wire-level bit flip in the stamp words at `rate`
  kPartition,       ///< stations in `group` cut off from the rest
  kDelaySpike,      ///< extra rx delay `magnitude` with probability `rate`
  // -- node layer ----------------------------------------------------------
  kNodeCrash,       ///< CPU dead from start..end; cold-clock rejoin at end
  kBabblingIdiot,   ///< node floods data frames every `period` in the window
  // -- NTI/COMCO layer ------------------------------------------------------
  kMissedTrigger,   ///< RECEIVE trigger lost: rx stamp never latched
  kStaleLatch,      ///< SSU latch not updated: previous frame's stamp parked
  // -- clock layer ----------------------------------------------------------
  kClockYank,       ///< Byzantine: state yanked by +-`magnitude` every `period`
  kFreqStep,        ///< logical-clock rate stepped by `ppm` over the window
  // -- GPS receiver (generalizes gps::FaultWindow) ---------------------------
  kGpsOffsetSpike,
  kGpsOmission,
  kGpsStuck,
  kGpsWrongSecond,
  kGpsRamp,
};
inline constexpr std::size_t kNumKinds = 15;

const char* to_string(Kind k);

/// One injected fault.  Fields are interpreted per kind (see the builder
/// helpers below, which are the documented construction surface).
struct FaultSpec {
  Kind kind = Kind::kFrameLoss;
  /// Target node/station; -1 targets the whole medium (medium-layer kinds)
  /// or every node (comco/gps kinds).
  int node = -1;
  SimTime start = SimTime::epoch();
  SimTime end = SimTime::never();
  /// Per-event probability for stochastic kinds (loss, corruption, delay
  /// spikes, missed trigger, stale latch), in [0, 1].
  double rate = 0.0;
  /// Amplitude: yank bound, delay spike size, GPS spike offset, crash
  /// rejoin cold-clock scatter.
  Duration magnitude = Duration::zero();
  /// Cadence: yank period, babble inter-frame gap, GPS ramp rate per sec.
  Duration period = Duration::zero();
  /// Frequency step for kFreqStep, in ppm.
  double ppm = 0.0;
  /// Misc integer: GPS wrong-second label offset, babble frame bytes.
  std::int64_t param = 0;
  /// kPartition: the stations on the isolated side of the cut.
  std::vector<int> group;

  // ---- builders ----------------------------------------------------------
  static FaultSpec frame_loss(double rate, SimTime start = SimTime::epoch(),
                              SimTime end = SimTime::never(), int rx_node = -1);
  static FaultSpec frame_corrupt(double rate, SimTime start = SimTime::epoch(),
                                 SimTime end = SimTime::never());
  static FaultSpec partition(std::vector<int> group, SimTime start, SimTime end);
  static FaultSpec delay_spike(double rate, Duration magnitude,
                               SimTime start = SimTime::epoch(),
                               SimTime end = SimTime::never(), int rx_node = -1);
  static FaultSpec node_crash(int node, SimTime crash, SimTime restart,
                              Duration cold_scatter = Duration::us(300));
  static FaultSpec babbling_idiot(int node, SimTime start, SimTime end,
                                  Duration gap = Duration::us(600),
                                  std::int64_t frame_bytes = 512);
  static FaultSpec missed_trigger(double rate, int node = -1,
                                  SimTime start = SimTime::epoch(),
                                  SimTime end = SimTime::never());
  static FaultSpec stale_latch(double rate, int node = -1,
                               SimTime start = SimTime::epoch(),
                               SimTime end = SimTime::never());
  /// `one_sided` yanks by exactly +magnitude every period (a consistently
  /// biased Byzantine clock); the default draws uniform +-magnitude.
  static FaultSpec clock_yank(int node, Duration magnitude, Duration period,
                              SimTime start = SimTime::epoch(),
                              SimTime end = SimTime::never(),
                              bool one_sided = false);
  static FaultSpec freq_step(int node, double ppm, SimTime start,
                             SimTime end = SimTime::never());
  static FaultSpec gps_offset_spike(int node, Duration magnitude, SimTime start,
                                    SimTime end);
  static FaultSpec gps_omission(int node, SimTime start, SimTime end);
  static FaultSpec gps_stuck(int node, Duration ramp_per_sec, SimTime start,
                             SimTime end);
  static FaultSpec gps_wrong_second(int node, std::int64_t label_offset,
                                    SimTime start, SimTime end);
  static FaultSpec gps_ramp(int node, Duration ramp_per_sec, SimTime start,
                            SimTime end);
};

/// True for the kinds that translate into gps::FaultWindow.
bool is_gps_kind(Kind k);

/// Translate a GPS-kind spec into the receiver-level window (asserts on
/// non-GPS kinds).
gps::FaultWindow to_gps_window(const FaultSpec& s);

/// Lift a legacy receiver-level window into a plan spec targeting `node`.
FaultSpec from_gps_window(int node, const gps::FaultWindow& w);

/// Thin compat alias for pre-plan call sites (the receiver-level window
/// type remains the mechanism; the plan is the policy surface).
using GpsFaultWindow = gps::FaultWindow;

/// The declarative fault scenario handed to cluster::ClusterConfig.
struct FaultPlan {
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty(); }
  FaultPlan& add(FaultSpec s) {
    specs.push_back(std::move(s));
    return *this;
  }
  /// Specs of one kind (e.g. all partitions), preserving plan order.
  std::vector<const FaultSpec*> of_kind(Kind k) const;
};

}  // namespace nti::fault
