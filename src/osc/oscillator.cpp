#include "osc/oscillator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace nti::osc {
namespace {
constexpr i128 kAsPerPs = 1'000'000;  // attoseconds per picosecond
constexpr double kAsPerSec = 1e18;

i128 to_as(SimTime t) { return static_cast<i128>(t.count_ps()) * kAsPerPs; }
SimTime from_as(i128 as) {
  // Round toward +inf so that time_of_tick never reports a time strictly
  // before the tick's true instant (keeps ticks_at(time_of_tick(n)) == n).
  const i128 ps = (as + kAsPerPs - 1) / kAsPerPs;
  return SimTime::from_ps(static_cast<std::int64_t>(ps));
}
}  // namespace

OscConfig OscConfig::ideal(double hz) {
  OscConfig c;
  c.nominal_hz = hz;
  c.rho_max_ppm = 0.001;  // algorithms still need a nonzero bound
  return c;
}

OscConfig OscConfig::tcxo(double hz) {
  OscConfig c;
  c.nominal_hz = hz;
  c.offset_ppm = 0.0;  // set per instance by the scenario builder
  c.aging_ppm_per_day = 0.005;
  c.wander_sigma_ppb = 0.3;
  c.wander_bound_ppm = 0.5;
  c.temp_coeff_ppm = 0.2;
  c.temp_period = Duration::sec(600);
  c.rho_max_ppm = 2.0;
  return c;
}

OscConfig OscConfig::ocxo(double hz) {
  OscConfig c;
  c.nominal_hz = hz;
  c.aging_ppm_per_day = 0.0005;
  c.wander_sigma_ppb = 0.02;
  c.wander_bound_ppm = 0.01;
  c.temp_coeff_ppm = 0.002;
  c.temp_period = Duration::sec(600);
  c.rho_max_ppm = 0.05;
  return c;
}

OscConfig OscConfig::cheap_xo(double hz) {
  OscConfig c;
  c.nominal_hz = hz;
  c.aging_ppm_per_day = 0.1;
  c.wander_sigma_ppb = 5.0;
  c.wander_bound_ppm = 10.0;
  c.temp_coeff_ppm = 5.0;
  c.temp_period = Duration::sec(300);
  c.rho_max_ppm = 100.0;
  return c;
}

OscConfig OscConfig::gps_reference(double hz) {
  OscConfig c;
  c.nominal_hz = hz;
  c.wander_sigma_ppb = 0.001;
  c.wander_bound_ppm = 0.0005;
  c.rho_max_ppm = 0.001;
  return c;
}

QuartzOscillator::QuartzOscillator(OscConfig cfg, RngStream rng)
    : cfg_(cfg), rng_(rng) {
  assert(cfg_.nominal_hz >= 1e6 && cfg_.nominal_hz <= 20e6 &&
         "UTCSU accepts 1..20 MHz oscillators");
  append_segment();
}

double QuartzOscillator::sample_rho(double t_sec) {
  // Random-walk wander, clamped.
  wander_ppm_ += rng_.normal(0.0, cfg_.wander_sigma_ppb * 1e-3);
  wander_ppm_ = std::clamp(wander_ppm_, -cfg_.wander_bound_ppm, cfg_.wander_bound_ppm);
  const double aging = cfg_.aging_ppm_per_day * (t_sec / 86400.0);
  const double temp =
      cfg_.temp_coeff_ppm *
      std::sin(2.0 * std::numbers::pi * t_sec / cfg_.temp_period.to_sec_f());
  return (cfg_.offset_ppm + aging + wander_ppm_ + temp) * 1e-6;
}

void QuartzOscillator::append_segment() {
  Segment s{};
  if (segs_.empty()) {
    s.start_as = 0;
    s.start_tick = 0;
  } else {
    const Segment& prev = segs_.back();
    s.start_as = prev.start_as + prev.period_as * static_cast<i128>(prev.n_ticks);
    s.start_tick = prev.start_tick + prev.n_ticks;
  }
  const double t_sec = static_cast<double>(s.start_as) / kAsPerSec;
  s.rho = sample_rho(t_sec);
  const double freq = cfg_.nominal_hz * (1.0 + s.rho);
  s.period_as = static_cast<i128>(std::llround(kAsPerSec / freq));
  // Whole number of nominal ticks per segment; at least one.
  s.n_ticks = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(cfg_.segment_len.to_sec_f() * cfg_.nominal_hz));
  segs_.push_back(s);
}

void QuartzOscillator::extend_to_time(i128 t_as) {
  while (true) {
    const Segment& last = segs_.back();
    const i128 end = last.start_as + last.period_as * static_cast<i128>(last.n_ticks);
    if (end > t_as) return;
    append_segment();
  }
}

void QuartzOscillator::extend_to_tick(std::uint64_t n) {
  while (segs_.back().start_tick + segs_.back().n_ticks < n) append_segment();
}

const QuartzOscillator::Segment& QuartzOscillator::segment_for_time(i128 t_as) {
  extend_to_time(t_as);
  // Locality: most queries are monotone in time; try the cached cursor.
  if (cursor_ >= segs_.size()) cursor_ = segs_.size() - 1;
  while (segs_[cursor_].start_as > t_as && cursor_ > 0) --cursor_;
  while (cursor_ + 1 < segs_.size() && segs_[cursor_ + 1].start_as <= t_as) ++cursor_;
  return segs_[cursor_];
}

const QuartzOscillator::Segment& QuartzOscillator::segment_for_tick(std::uint64_t n) {
  extend_to_tick(n);
  if (cursor_ >= segs_.size()) cursor_ = segs_.size() - 1;
  while (segs_[cursor_].start_tick >= n && cursor_ > 0) --cursor_;
  while (cursor_ + 1 < segs_.size() && segs_[cursor_ + 1].start_tick < n) ++cursor_;
  return segs_[cursor_];
}

std::uint64_t QuartzOscillator::ticks_at(SimTime t) {
  if (t.count_ps() <= 0) return 0;
  const i128 t_as = to_as(t);
  const Segment& s = segment_for_time(t_as);
  // Ticks within this segment: k-th tick of the segment fires at
  // start + k*period (k = 1..n_ticks); count those with firing time <= t.
  const i128 elapsed = t_as - s.start_as;
  std::uint64_t k = static_cast<std::uint64_t>(elapsed / s.period_as);
  k = std::min<std::uint64_t>(k, s.n_ticks);
  return s.start_tick + k;
}

SimTime QuartzOscillator::time_of_tick(std::uint64_t n) {
  if (n == 0) return SimTime::epoch();
  const Segment& s = segment_for_tick(n);
  const i128 t_as =
      s.start_as + s.period_as * static_cast<i128>(n - s.start_tick);
  return from_as(t_as);
}

double QuartzOscillator::true_rate_error(SimTime t) {
  const Segment& s = segment_for_time(to_as(t));
  return s.rho;
}

std::unique_ptr<Oscillator> make_oscillator(const OscConfig& cfg, RngStream rng) {
  return std::make_unique<QuartzOscillator>(cfg, rng);
}

}  // namespace nti::osc
