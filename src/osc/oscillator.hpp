// Oscillator models.
//
// The UTCSU's clock is paced by an on-board TCXO/OCXO or an external
// reference (paper Sec. 3.2).  For the simulation, an oscillator is a
// *monotone phase function*: how many rising edges have occurred by real
// time t, and, inversely, at what real time tick n occurs.  The inverse is
// what lets the UTCSU model schedule duty-timer events without simulating
// individual ticks (DESIGN.md §4, lazy clock evaluation).
//
// Frequency error model (all deterministic under a seed):
//   rho(t) = offset + aging*t + wander(t) + temp_coeff * temp_dev(t)
// realized as piecewise-constant frequency over short segments, each a
// whole number of ticks, so phase is continuous and exactly invertible.
// Segment periods are held in integer attoseconds (1e-18 s): relative
// quantization at 10 MHz is 1e-11, two orders below the best oscillator
// stability we model.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/phi.hpp"  // for the i128 wide-integer alias
#include "common/rng.hpp"
#include "common/time_types.hpp"

namespace nti::osc {

class Oscillator {
 public:
  virtual ~Oscillator() = default;

  /// Nominal frequency in Hz.  The UTCSU accepts 1..20 MHz (paper Sec. 3.3).
  virtual double nominal_hz() const = 0;

  /// Number of ticks in the half-open interval (epoch, t].
  virtual std::uint64_t ticks_at(SimTime t) = 0;

  /// Real time of tick n (n >= 1).  Inverse of ticks_at:
  ///   ticks_at(time_of_tick(n)) == n, and time_of_tick(ticks_at(t)) <= t.
  virtual SimTime time_of_tick(std::uint64_t n) = 0;

  /// Manufacturer bound on |d(phase error)/dt| in parts per million; this is
  /// the rho_max the synchronization algorithms are configured with.
  virtual double rho_max_ppm() const = 0;

  /// Nominal tick period (used for synchronizer-uncertainty modeling).
  Duration nominal_period() const {
    return Duration::ps(static_cast<std::int64_t>(1e12 / nominal_hz()));
  }

  /// True instantaneous fractional frequency error at time t (observer-only;
  /// the algorithms never see this — it exists for experiment ground truth).
  virtual double true_rate_error(SimTime t) = 0;
};

/// Configuration for the stochastic quartz model.
struct OscConfig {
  double nominal_hz = 10e6;
  double offset_ppm = 0.0;          ///< static manufacturing offset
  double aging_ppm_per_day = 0.0;   ///< linear aging
  double wander_sigma_ppb = 0.0;    ///< random-walk step (per segment)
  double wander_bound_ppm = 0.0;    ///< clamp on the random-walk component
  double temp_coeff_ppm = 0.0;      ///< amplitude of the temperature-induced
                                    ///  sinusoidal frequency deviation
  Duration temp_period = Duration::sec(300);
  double rho_max_ppm = 10.0;        ///< spec-sheet bound handed to algorithms
  Duration segment_len = Duration::ms(10);

  /// Factory presets mirroring the hardware choices in the paper.
  static OscConfig ideal(double hz = 10e6);
  static OscConfig tcxo(double hz = 10e6);       ///< on-board default
  static OscConfig ocxo(double hz = 10e6);       ///< ovenized option
  static OscConfig cheap_xo(double hz = 10e6);   ///< uncompensated crystal
  static OscConfig gps_reference(double hz = 10e6);  ///< external 10 MHz input
};

/// Piecewise-linear stochastic oscillator; segments are generated lazily
/// and cached, so arbitrarily long runs cost memory proportional to
/// simulated time / segment_len only for the time actually queried.
class QuartzOscillator final : public Oscillator {
 public:
  QuartzOscillator(OscConfig cfg, RngStream rng);

  double nominal_hz() const override { return cfg_.nominal_hz; }
  std::uint64_t ticks_at(SimTime t) override;
  SimTime time_of_tick(std::uint64_t n) override;
  double rho_max_ppm() const override { return cfg_.rho_max_ppm; }
  double true_rate_error(SimTime t) override;

  const OscConfig& config() const { return cfg_; }

 private:
  struct Segment {
    i128 start_as;            ///< segment start, attoseconds since epoch
    std::uint64_t start_tick; ///< ticks elapsed at segment start
    std::uint64_t n_ticks;    ///< ticks in this segment
    i128 period_as;           ///< tick period, attoseconds
    double rho;               ///< fractional frequency error this segment
  };

  void extend_to_time(i128 t_as);
  void extend_to_tick(std::uint64_t n);
  void append_segment();
  double sample_rho(double t_sec);
  const Segment& segment_for_time(i128 t_as);
  const Segment& segment_for_tick(std::uint64_t n);

  OscConfig cfg_;
  RngStream rng_;
  std::vector<Segment> segs_;
  double wander_ppm_ = 0.0;
  std::size_t cursor_ = 0;  ///< locality cache for sequential queries
};

std::unique_ptr<Oscillator> make_oscillator(const OscConfig& cfg, RngStream rng);

}  // namespace nti::osc
