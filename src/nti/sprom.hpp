// Serial PROM carrying M-Module identification (MUMM spec [MM96]).
//
// The real device is bit-serial behind one access byte in I/O space; the
// model keeps the one-byte window semantics: writing the access byte sets
// the read address, reading returns the addressed PROM byte.
#pragma once

#include <array>
#include <cstdint>

namespace nti::module {

class Sprom {
 public:
  Sprom();

  std::uint8_t access_read();
  void access_write(std::uint8_t addr) { cursor_ = addr; }

  /// Fields per the M-Module ID record.
  std::uint16_t module_id() const;
  std::uint16_t revision() const;
  bool checksum_ok() const;

  static constexpr std::uint16_t kNtiModuleId = 0x4E54;  // "NT"
  static constexpr std::uint16_t kNtiRevision = 0x0100;  // v1.0

 private:
  std::array<std::uint8_t, 256> rom_{};
  std::uint8_t cursor_ = 0;
};

}  // namespace nti::module
