#include "nti/nti.hpp"

#include <cassert>
#include <cstring>

namespace nti::module {
namespace {
std::uint32_t load32(const std::vector<std::uint8_t>& mem, Addr a) {
  std::uint32_t v;
  std::memcpy(&v, &mem[a], 4);  // host little-endian == M68k driver handles
  return v;                     // byte order; the model stays byte-exact
}
void store32(std::vector<std::uint8_t>& mem, Addr a, std::uint32_t v) {
  std::memcpy(&mem[a], &v, 4);
}
}  // namespace

Nti::Nti(utcsu::Utcsu& chip, CpldProgram program, int ssu_index)
    : chip_(chip), program_(program), ssu_(ssu_index), mem_(kMemBytes, 0) {
  chip_.add_int_line_listener([this](utcsu::IntLine line, bool level) {
    utcsu_line_changed(line, level);
  });
}

// ------------------------------------------------------------- CPU side ---

std::uint32_t Nti::cpu_read32(SimTime t, Addr addr) {
  last_bus_time_ = t;
  if (addr >= kCpuUtcsuBase) {
    return chip_.bus_read(t, addr - kCpuUtcsuBase);
  }
  assert(addr + 4 <= kMemBytes);
  return load32(mem_, addr);
}

void Nti::cpu_write32(SimTime t, Addr addr, std::uint32_t value) {
  last_bus_time_ = t;
  if (addr >= kCpuUtcsuBase) {
    chip_.bus_write(t, addr - kCpuUtcsuBase, value);
    return;
  }
  assert(addr + 4 <= kMemBytes);
  store32(mem_, addr, value);
}

std::uint8_t Nti::cpu_read8(SimTime t, Addr addr) {
  last_bus_time_ = t;
  assert(addr < kMemBytes);
  return mem_[addr];
}

void Nti::cpu_write8(SimTime t, Addr addr, std::uint8_t value) {
  last_bus_time_ = t;
  assert(addr < kMemBytes);
  mem_[addr] = value;
}

// ----------------------------------------------------------- COMCO side ---

std::uint32_t Nti::comco_read32(SimTime t, Addr addr) {
  last_bus_time_ = t;
  assert(addr + 4 <= kMemBytes);
  if (in_tx_headers(addr)) {
    const Addr offset = addr & (kHeaderBytes - 1);
    if (offset == program_.tx_trigger_offset) {
      // The decoding logic raises TRANSMIT while the COMCO's read cycle is
      // on the bus; the UTCSU samples at the following oscillator edge.
      chip_.trigger_transmit(ssu_, t);
      if (spans_ != nullptr) {
        spans_->record(dma_trace_, obs::SpanStage::kTxTrigger, t, node_id_);
      }
      return load32(mem_, addr);
    }
    // Transparent mapping: these header words *are* the UTCSU's sampled
    // transmit stamp registers, so the stamp rides out in the packet
    // without any CPU involvement (paper Fig. 3).
    if (offset == program_.tx_map_timestamp) {
      return chip_.ssu_tx(ssu_).timestamp;
    }
    if (offset == program_.tx_map_macrostamp) {
      return chip_.ssu_tx(ssu_).macrostamp;
    }
    if (offset == program_.tx_map_alpha) {
      // The alpha word is the semantic payload of the transparent stamp, so
      // its fetch marks the insertion stage (one record per burst).
      if (spans_ != nullptr) {
        spans_->record(dma_trace_, obs::SpanStage::kTxStampInsert, t, node_id_);
      }
      return chip_.ssu_tx(ssu_).alpha;
    }
  }
  return load32(mem_, addr);
}

void Nti::comco_write32(SimTime t, Addr addr, std::uint32_t value) {
  last_bus_time_ = t;
  assert(addr + 4 <= kMemBytes);
  store32(mem_, addr, value);
  if (in_rx_headers(addr)) {
    const Addr offset = addr & (kHeaderBytes - 1);
    if (offset == program_.rx_trigger_offset) {
      chip_.trigger_receive(ssu_, t);
      // Latch the header base so the ISR can associate the sampled stamp
      // with the right packet even under back-to-back reception
      // (paper Sec. 3.4, footnote 4).
      rx_header_base_ = static_cast<std::uint16_t>((addr & ~(kHeaderBytes - 1)) >> 6);
      if (spans_ != nullptr) {
        spans_->record(dma_trace_, obs::SpanStage::kRxStamp, t, node_id_);
      }
    }
  }
}

// -------------------------------------------------------------- I/O space --

std::uint16_t Nti::io_read16(Addr offset) {
  switch (offset) {
    case kIoRxHeaderBase:
      return rx_header_base_;
    case kIoVectorBase:
      return vector_base_;
    case kIoSprom:
      return sprom_.access_read();
    default:
      return 0;
  }
}

void Nti::io_write16(Addr offset, std::uint16_t value) {
  switch (offset) {
    case kIoVectorBase:
      vector_base_ = static_cast<std::uint8_t>(value & 0xF8);  // low 3 bits carry line state
      break;
    case kIoIntEnable:
      int_enabled_ = (value & 1u) != 0;
      if (int_enabled_) maybe_fire();
      break;
    case kIoSprom:
      sprom_.access_write(static_cast<std::uint8_t>(value));
      break;
    default:
      break;
  }
}

// ------------------------------------------------------------- interrupts --

void Nti::utcsu_line_changed(utcsu::IntLine line, bool level) {
  line_[static_cast<std::size_t>(line)] = level;
  if (level) maybe_fire();
}

void Nti::maybe_fire() {
  if (!int_enabled_) return;
  if (!(line_[0] || line_[1] || line_[2])) return;
  // One-shot: the module holds off further interrupts until the ISR
  // re-enables via kIoIntEnable (paper Sec. 3.4).
  int_enabled_ = false;
  const std::uint8_t vector = static_cast<std::uint8_t>(
      vector_base_ | (line_[0] ? 1u : 0u)        // INTN
      | (line_[1] ? 2u : 0u)                     // INTT
      | (line_[2] ? 4u : 0u));                   // INTA
  if (on_irq) on_irq(vector);
}

}  // namespace nti::module
