// NTI memory map (paper Sec. 3.4, Figs. 6-8).
//
// The NTI memory (two 64K x 16 SRAMs = 256 KB) is mapped twice: once for
// plain CPU accesses and once for COMCO accesses, where the CPLD decoding
// logic adds the timestamping side effects.  Section split per Fig. 6:
//   System Structures  184 KB   COMCO command interface & descriptors
//   Data Buffers        60 KB   ordinary packet payload
//   Receive Headers      4 KB   64 headers x 64 B (special on COMCO write)
//   Transmit Headers     8 KB   128 headers x 64 B (special on COMCO read)
#pragma once

#include <cstdint>

namespace nti::module {

using Addr = std::uint32_t;

inline constexpr Addr kMemBytes = 256 * 1024;

inline constexpr Addr kSystemStructBase = 0x00000;
inline constexpr Addr kDataBufferBase = 0x2E000;   // 184 KB in
inline constexpr Addr kRxHeaderBase = 0x3D000;     // 4 KB region
inline constexpr Addr kTxHeaderBase = 0x3E000;     // 8 KB region
inline constexpr Addr kHeaderBytes = 64;
inline constexpr int kNumRxHeaders = 64;
inline constexpr int kNumTxHeaders = 128;

// CPU view: the UTCSU's 512-byte register window follows the memory region.
inline constexpr Addr kCpuUtcsuBase = 0x40000;

// Offsets inside a 64-byte header supervised by the CPLD (Fig. 7).  The
// trigger offset and the mapping offsets are independently configurable in
// the CPLD (paper Sec. 5: "two independently configurable addresses");
// these are the defaults programmed for the Intel 82596CA.
struct CpldProgram {
  Addr tx_trigger_offset = 0x14;   ///< COMCO read here -> TRANSMIT trigger
  Addr tx_map_timestamp = 0x18;    ///< reads return UTCSU TX stamp regs
  Addr tx_map_macrostamp = 0x1C;
  Addr tx_map_alpha = 0x20;
  Addr rx_trigger_offset = 0x1C;   ///< COMCO write here -> RECEIVE trigger
};

// Software-conventional locations where the CPU stores the receive stamp
// into the "unused portion of the receive buffer" (paper Sec. 3.1) after
// reading it from the SSU registers in the ISR.
inline constexpr Addr kRxSaveTimestamp = 0x24;
inline constexpr Addr kRxSaveMacrostamp = 0x28;
inline constexpr Addr kRxSaveAlpha = 0x2C;

// I/O-space register offsets (256-byte M-Module I/O space, Fig. 8).
inline constexpr Addr kIoRxHeaderBase = 0x00;  ///< RO; latched on RECEIVE
inline constexpr Addr kIoVectorBase = 0x02;    ///< RW; interrupt vector base
inline constexpr Addr kIoIntEnable = 0x04;     ///< W; re-enable NTI interrupts
inline constexpr Addr kIoSprom = 0xFE;         ///< serial PROM access byte

}  // namespace nti::module
