// The NTI MA-Module (paper Sec. 3.2, Fig. 4).
//
// Composition: UTCSU-ASIC + 256 KB SRAM + CPLD decoding/glue logic + S-PROM,
// behind the MA-Module bus interface.  Everything architecturally visible
// is modeled:
//   * dual-mapped memory: the same SRAM reached via a CPU region (plain)
//     and a COMCO region, where the CPLD adds the timestamping side effects
//     (Sec. 3.1): TRANSMIT trigger + transparent stamp mapping on transmit-
//     header reads, RECEIVE trigger + Receive-Header-Base latch on receive-
//     header writes;
//   * interrupt logic: the three UTCSU lines (INTN/INTT/INTA) are folded
//     onto the single vectorized M-Module interrupt; the final vector
//     includes the three line states; firing disables further interrupts
//     until software re-enables via the Dis/Enable register (Fig. 8);
//   * I/O space: Receive Header Base, Vector Base, Dis/Enable, S-PROM.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "nti/memmap.hpp"
#include "nti/sprom.hpp"
#include "obs/span.hpp"
#include "utcsu/utcsu.hpp"

namespace nti::module {

class Nti {
 public:
  /// `ssu_index` selects which of the six UTCSU SSUs this module's COMCO
  /// port is wired to (gateway nodes instantiate several COMCOs).
  Nti(utcsu::Utcsu& chip, CpldProgram program = {}, int ssu_index = 0);

  // ---- CPU-side bus (memory space) --------------------------------------
  std::uint32_t cpu_read32(SimTime t, Addr addr);
  void cpu_write32(SimTime t, Addr addr, std::uint32_t value);
  std::uint8_t cpu_read8(SimTime t, Addr addr);
  void cpu_write8(SimTime t, Addr addr, std::uint8_t value);

  // ---- COMCO-side bus (memory space with CPLD side effects) -------------
  std::uint32_t comco_read32(SimTime t, Addr addr);
  void comco_write32(SimTime t, Addr addr, std::uint32_t value);

  // ---- I/O space ---------------------------------------------------------
  std::uint16_t io_read16(Addr offset);
  void io_write16(Addr offset, std::uint16_t value);

  /// Asserted interrupt: the carrier board delivers `vector` to the CPU.
  std::function<void(std::uint8_t vector)> on_irq;

  /// Interrupt-enable state (the ISR re-enables just before returning).
  bool interrupts_enabled() const { return int_enabled_; }

  utcsu::Utcsu& chip() { return chip_; }
  const CpldProgram& program() const { return program_; }
  int ssu_index() const { return ssu_; }

  /// Observe CPLD-level CSP stages (kTxTrigger on the TRANSMIT trigger-word
  /// read, kTxStampInsert on the mapped alpha-word fetch, kRxStamp on the
  /// RECEIVE trigger-word write).  `node_id` tags the events; the collector
  /// is borrowed, nullptr disables.
  void set_spans(obs::SpanCollector* spans, int node_id) {
    spans_ = spans;
    node_id_ = node_id;
  }
  /// Arm the trace id the COMCO's next DMA burst belongs to (0 = untraced).
  /// The CPLD cannot see trace ids -- the COMCO model sets this just before
  /// replaying a burst's bus cycles, mirroring how the bursts are already
  /// attributed to one frame at a time.
  void set_dma_trace(std::uint64_t trace) { dma_trace_ = trace; }

  /// Address helpers for drivers.
  static Addr tx_header_addr(int slot) {
    return kTxHeaderBase + static_cast<Addr>(slot) * kHeaderBytes;
  }
  static Addr rx_header_addr(int slot) {
    return kRxHeaderBase + static_cast<Addr>(slot) * kHeaderBytes;
  }

 private:
  void utcsu_line_changed(utcsu::IntLine line, bool level);
  void maybe_fire();
  bool in_tx_headers(Addr a) const { return a >= kTxHeaderBase && a < kTxHeaderBase + kNumTxHeaders * kHeaderBytes; }
  bool in_rx_headers(Addr a) const { return a >= kRxHeaderBase && a < kRxHeaderBase + kNumRxHeaders * kHeaderBytes; }

  utcsu::Utcsu& chip_;
  CpldProgram program_;
  int ssu_;
  std::vector<std::uint8_t> mem_;
  Sprom sprom_;

  std::uint16_t rx_header_base_ = 0;  ///< latched on RECEIVE trigger
  std::uint8_t vector_base_ = 0x40;
  bool int_enabled_ = false;
  bool line_[3] = {false, false, false};
  SimTime last_bus_time_ = SimTime::epoch();

  obs::SpanCollector* spans_ = nullptr;
  int node_id_ = -1;
  std::uint64_t dma_trace_ = 0;  ///< trace of the burst on the COMCO bus
};

}  // namespace nti::module
