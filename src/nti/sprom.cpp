#include "nti/sprom.hpp"

#include <numeric>

namespace nti::module {

Sprom::Sprom() {
  // ID record layout (simplified MUMM format):
  //   0x00..0x01  sync word 0x5346 ("SF")
  //   0x02..0x03  module id
  //   0x04..0x05  revision
  //   0x06..0x0D  vendor string
  //   0xFF        two's-complement checksum over 0x00..0xFE
  rom_[0x00] = 0x53;
  rom_[0x01] = 0x46;
  rom_[0x02] = static_cast<std::uint8_t>(kNtiModuleId >> 8);
  rom_[0x03] = static_cast<std::uint8_t>(kNtiModuleId & 0xFF);
  rom_[0x04] = static_cast<std::uint8_t>(kNtiRevision >> 8);
  rom_[0x05] = static_cast<std::uint8_t>(kNtiRevision & 0xFF);
  const char vendor[] = "TUW-SYNC";
  for (std::size_t i = 0; i < sizeof(vendor) - 1; ++i) {
    rom_[0x06 + i] = static_cast<std::uint8_t>(vendor[i]);
  }
  std::uint8_t sum = 0;
  for (std::size_t i = 0; i < 0xFF; ++i) sum = static_cast<std::uint8_t>(sum + rom_[i]);
  rom_[0xFF] = static_cast<std::uint8_t>(0x100 - sum);
}

std::uint8_t Sprom::access_read() { return rom_[cursor_++]; }

std::uint16_t Sprom::module_id() const {
  return static_cast<std::uint16_t>((rom_[0x02] << 8) | rom_[0x03]);
}

std::uint16_t Sprom::revision() const {
  return static_cast<std::uint16_t>((rom_[0x04] << 8) | rom_[0x05]);
}

bool Sprom::checksum_ok() const {
  std::uint8_t sum = 0;
  for (const std::uint8_t b : rom_) sum = static_cast<std::uint8_t>(sum + b);
  return sum == 0;
}

}  // namespace nti::module
