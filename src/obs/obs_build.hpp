// Compile-time observability switch.
//
// The default build carries full observability: TraceRing records, CSP
// span stages, metric counters.  Configuring with -DNTI_OBS_OFF=ON (the
// `obs-off` CMake preset) compiles TraceRing::push and SpanCollector
// record/begin_csp into no-ops so the throughput bench can quantify the
// observability tax (docs/PERFORMANCE.md).  The obs-off build is for
// benchmarking only: the obs test suite legitimately fails under it, and
// BENCH_*.json files it produces carry "obs_enabled": 0 so they are never
// compared against default-build output.
#pragma once

namespace nti::obs {

#ifdef NTI_OBS_OFF
inline constexpr bool kObsEnabled = false;
#else
inline constexpr bool kObsEnabled = true;
#endif

}  // namespace nti::obs
