#include "obs/timeseries.hpp"

#include <cassert>
#include <cstdio>
#include <fstream>

namespace nti::obs {

TimeSeriesRecorder::TimeSeriesRecorder(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TimeSeriesRecorder::add_row(double t_sec, std::span<const double> values) {
  assert(values.size() == columns_.size());
  Row r;
  r.t_sec = t_sec;
  r.values.assign(values.begin(), values.end());
  rows_.push_back(std::move(r));
}

double TimeSeriesRecorder::at(std::size_t row, std::size_t col) const {
  assert(row < rows_.size() && col < columns_.size());
  return rows_[row].values[col];
}

void TimeSeriesRecorder::dump_csv(std::ostream& os) const {
  os << "t_s";
  for (const auto& c : columns_) os << ',' << c;
  os << '\n';
  char buf[32];
  for (const auto& r : rows_) {
    std::snprintf(buf, sizeof buf, "%.9g", r.t_sec);
    os << buf;
    for (const double v : r.values) {
      std::snprintf(buf, sizeof buf, "%.9g", v);
      os << ',' << buf;
    }
    os << '\n';
  }
}

bool TimeSeriesRecorder::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  dump_csv(f);
  return static_cast<bool>(f);
}

}  // namespace nti::obs
