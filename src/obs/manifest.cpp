#include "obs/manifest.hpp"

#include <thread>

#include <unistd.h>

#include "obs/build_info_gen.hpp"
#include "obs/obs_build.hpp"

namespace nti::obs {

RunManifest RunManifest::current() {
  RunManifest m;
  m.git_sha = NTI_BUILD_GIT_SHA;
  m.compiler = NTI_BUILD_COMPILER;
  m.build_type = NTI_BUILD_TYPE;
  m.preset = NTI_BUILD_PRESET;
  char host[256] = {};
  // gethostname is environment description, not simulation input: the
  // manifest is emitted alongside results, never read back by the models.
  if (::gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    m.host = host;
  } else {
    m.host = "unknown";
  }
  m.obs_enabled = kObsEnabled;
  // nti-lint: allow(shard): hardware sizing recorded in the manifest only;
  // never feeds back into simulation state.
  m.threads = std::thread::hardware_concurrency();
  return m;
}

JsonObject RunManifest::to_json() const {
  JsonObject o;
  o.add("git_sha", git_sha);
  o.add("compiler", compiler);
  o.add("build_type", build_type);
  o.add("preset", preset);
  o.add("host", host);
  o.add("obs_enabled", obs_enabled);
  o.add("seed", seed);
  o.add("threads", static_cast<std::uint64_t>(threads));
  return o;
}

}  // namespace nti::obs
