#include "obs/trace.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"
#include "obs/prof.hpp"

namespace nti::obs {

const char* to_string(TraceType t) {
  switch (t) {
    case TraceType::kEventFired: return "event_fired";
    case TraceType::kFrameTx: return "frame_tx";
    case TraceType::kFrameRx: return "frame_rx";
    case TraceType::kCspStamp: return "csp_stamp";
    case TraceType::kResync: return "resync";
    case TraceType::kFrameDrop: return "frame_drop";
    case TraceType::kFaultInject: return "fault_inject";
    case TraceType::kFaultClear: return "fault_clear";
    case TraceType::kCapsuleDrop: return "capsule_drop";
    case TraceType::kGatewayState: return "gateway_state";
  }
  return "?";
}

TraceRing::TraceRing(std::size_t capacity) : buf_(std::max<std::size_t>(1, capacity)) {}

#ifndef NTI_OBS_OFF
void TraceRing::push(SimTime t, TraceType type, std::int32_t node, std::int64_t a,
                     std::int64_t b) {
  PROF_ZONE("obs.trace.push");
  TraceRecord& r = buf_[head_];
  r.t = t;
  r.type = type;
  r.node = node;
  r.a = a;
  r.b = b;
  head_ = (head_ + 1) % buf_.size();
  ++pushed_;
}
#endif  // NTI_OBS_OFF

std::size_t TraceRing::size() const {
  return pushed_ < buf_.size() ? static_cast<std::size_t>(pushed_) : buf_.size();
}

std::uint64_t TraceRing::overwritten() const {
  return pushed_ - size();
}

const TraceRecord& TraceRing::at(std::size_t i) const {
  assert(i < size());
  if (pushed_ < buf_.size()) return buf_[i];
  return buf_[(head_ + i) % buf_.size()];
}

void TraceRing::clear() {
  head_ = 0;
  pushed_ = 0;
}

void TraceRing::dump_csv(std::ostream& os) const {
  os << "t_ps,type,node,a,b\n";
  for (std::size_t i = 0; i < size(); ++i) {
    const TraceRecord& r = at(i);
    os << format_ps(r.t) << ',' << to_string(r.type) << ',' << r.node << ','
       << r.a << ',' << r.b << '\n';
  }
}

}  // namespace nti::obs
