// LogHistogram: log-bucketed latency distribution for hot-path recording.
//
// The span layer records one stage duration per CSP per stage -- tens of
// thousands of samples in a long run -- and the registry snapshots want
// p50/p99/max out of them without retaining every sample (SampleSet) or
// fixing a range up front (the fixed-width Histogram in common/stats.hpp).
// Buckets are base-2 octaves split into 8 linear sub-buckets, so the
// quantile estimate carries a bounded ~6% relative error while add() is a
// handful of integer ops and the footprint is one counter per touched
// bucket.  Values are unit-agnostic non-negative doubles; every user in
// this repo feeds picosecond durations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/time_types.hpp"

namespace nti::obs {

class LogHistogram {
 public:
  void add(double v);
  void add(Duration d) { add(static_cast<double>(d.count_ps())); }

  std::uint64_t count() const { return n_; }
  /// Samples below zero (clamped into the first bucket; stage durations
  /// are causal, so a nonzero value here flags an instrumentation bug).
  std::uint64_t negatives() const { return negatives_; }
  bool empty() const { return n_ == 0; }

  // Exact extrema / mean (tracked outside the buckets).
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }

  /// Nearest-rank percentile over the bucket counts, p in [0,100]; the
  /// selected bucket's midpoint, clamped into [min(), max()].  0.0 when
  /// empty.
  double percentile(double p) const;

  /// Buckets currently allocated (diagnostics).
  std::size_t bucket_count() const { return buckets_.size(); }

  /// Fold another histogram's samples into this one (bucket-wise count
  /// addition; extrema/sum/negatives combined exactly).  Used by the
  /// Monte-Carlo reduction, which merges per-replica histograms in replica
  /// order so the floating-point `sum` accumulation stays deterministic.
  void merge(const LogHistogram& other);

  void clear();

 private:
  static constexpr int kSubBuckets = 8;  // per octave
  static std::size_t bucket_of(double v);
  static double bucket_mid(std::size_t idx);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t n_ = 0;
  std::uint64_t negatives_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace nti::obs
