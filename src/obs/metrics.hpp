// MetricsRegistry: the system-wide counters/gauges inventory.
//
// The paper's claims are quantitative (sub-us precision, bounded drop
// rates), so every layer of the simulation exports its counters here and
// benches serialize the registry into BENCH_<name>.json -- the repo's
// perf/quality trajectory.  Four metric kinds:
//   * counter   -- a monotonically increasing std::uint64_t owned by the
//     instrumented component; the registry stores a pointer and reads it
//     lazily at snapshot time (zero cost on the hot path);
//   * gauge     -- a callback evaluated at snapshot time (queue depths,
//     envelope widths, anything derived);
//   * scalar    -- a value pushed into the registry directly (probe results,
//     per-round aggregates);
//   * histogram -- a pointer to a LogHistogram owned by the instrumented
//     component; each snapshot expands it into <name>.{p50,p99,max,count}
//     entries (scaled by the registration-time factor), so distribution
//     shape rides into BENCH_*.json alongside the flat counters.
//
// Lifetime contract: registered pointers/callbacks must outlive every
// snapshot() call.  The intended owner is the scenario object (Cluster, a
// bench's main), which also owns the instrumented components.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace nti::obs {

class LogHistogram;

struct Metric {
  enum class Kind { kCounter, kGauge, kScalar, kHistogram };
  std::string name;
  double value = 0.0;
  Kind kind = Kind::kScalar;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register a monotone counter by address.  `name` must be unique; the
  /// pointed-to value is read at snapshot time.
  void add_counter(std::string name, const std::uint64_t* value);
  /// Register a computed gauge.
  void add_gauge(std::string name, std::function<double()> fn);
  /// Set (upsert) a directly pushed scalar.
  void set_scalar(const std::string& name, double value);
  /// Upsert a scalar keeping the maximum seen so far (envelope tracking).
  void set_scalar_max(const std::string& name, double value);
  /// Register a distribution by address.  Each snapshot expands it into
  /// `<name>.p50`, `<name>.p99`, `<name>.max` and `<name>.count`, the
  /// value entries multiplied by `scale` (e.g. 1e-6 for ps -> us, per the
  /// repo's `_us` key convention).
  void add_histogram(std::string name, const LogHistogram* hist, double scale = 1.0);

  std::size_t size() const { return entries_.size(); }
  bool contains(const std::string& name) const;
  /// Current value of one metric (0.0 when absent).  Histograms are
  /// addressed by their expanded names (`<name>.p99`, ...).
  double value(const std::string& name) const;

  /// Evaluate every metric, sorted by name (histograms expanded).
  std::vector<Metric> snapshot() const;

  /// One flat JSON object: {"name": value, ...}, sorted by name.
  std::string to_json() const;

 private:
  struct Entry {
    std::string name;
    Metric::Kind kind;
    const std::uint64_t* counter = nullptr;
    std::function<double()> gauge;
    double scalar = 0.0;
    const LogHistogram* hist = nullptr;
    double hist_scale = 1.0;
  };
  Entry* find(const std::string& name);
  const Entry* find(const std::string& name) const;
  double eval(const Entry& e) const;
  static void expand_histogram(const Entry& e, std::vector<Metric>& out);

  std::vector<Entry> entries_;
};

}  // namespace nti::obs
