#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <vector>

#include "obs/json.hpp"
#include "obs/span.hpp"

namespace nti::obs {
namespace {

constexpr double kPsPerUs = 1e6;

JsonObject metadata_event(const char* what, int tid, const std::string& name,
                          int pid = 0) {
  JsonObject args;
  args.add("name", name);
  JsonObject ev;
  ev.add("ph", "M");
  ev.add("name", what);
  ev.add("pid", std::int64_t{pid});
  ev.add("tid", std::int64_t{tid});
  ev.add_object("args", args);
  return ev;
}

JsonObject slice_event(const SpanEvent& ev) {
  JsonObject args;
  args.add("csp", ev.trace);
  args.add("src", std::int64_t{ev.src});
  if (ev.stage == SpanStage::kDiscarded) {
    args.add("reason", to_string(static_cast<DiscardReason>(ev.detail)));
  } else if (ev.detail != 0) {
    args.add("detail", ev.detail);
  }
  JsonObject out;
  out.add("ph", "X");
  out.add("name", to_string(ev.stage));
  out.add("cat", "csp");
  out.add("pid", std::int64_t{0});
  out.add("tid", std::int64_t{ev.node});
  out.add("ts", static_cast<double>(ev.parent_ps) / kPsPerUs);
  out.add("dur", static_cast<double>(ev.t_ps - ev.parent_ps) / kPsPerUs);
  out.add_object("args", args);
  return out;
}

JsonObject instant_event(const SpanEvent& ev) {
  JsonObject args;
  args.add("csp", ev.trace);
  JsonObject out;
  out.add("ph", "i");
  out.add("name", to_string(ev.stage));
  out.add("cat", "csp");
  out.add("pid", std::int64_t{0});
  out.add("tid", std::int64_t{ev.node});
  out.add("ts", static_cast<double>(ev.t_ps) / kPsPerUs);
  out.add("s", "t");
  out.add_object("args", args);
  return out;
}

/// phase is "s" (start), "t" (step) or "f" (finish).  The flow event binds
/// to the slice enclosing `ts` on the same track, so anchor it at the
/// slice's start instant (for the root instant, the event instant itself).
JsonObject flow_event(const SpanEvent& ev, const char* phase, double ts_us) {
  JsonObject out;
  out.add("ph", phase);
  out.add("name", "csp");
  out.add("cat", "csp-flow");
  out.add("id", ev.trace);
  out.add("pid", std::int64_t{0});
  out.add("tid", std::int64_t{ev.node});
  out.add("ts", ts_us);
  if (phase[0] == 'f') out.add("bp", "e");
  return out;
}

}  // namespace

void dump_chrome_trace(std::ostream& os, const SpanCollector& spans) {
  dump_chrome_trace(os, spans, {});
}

void dump_chrome_trace(std::ostream& os, const SpanCollector& spans,
                       const std::vector<prof::ZoneStats>& prof_zones) {
  const auto& events = spans.events();

  // Track inventory and per-trace ordering (events are recorded in global
  // chronological order, so per-trace order is positional).
  std::set<std::int32_t> nodes;
  std::map<std::uint64_t, std::vector<std::size_t>> by_trace;
  for (std::size_t i = 0; i < events.size(); ++i) {
    nodes.insert(events[i].node);
    by_trace[events[i].trace].push_back(i);
  }

  os << "{\"traceEvents\": [";
  bool first = true;
  const auto emit = [&](const JsonObject& ev) {
    if (!first) os << ",\n  ";
    else os << "\n  ";
    first = false;
    os << ev.str();
  };

  emit(metadata_event("process_name", 0, "nti-sim"));
  for (const std::int32_t n : nodes) {
    emit(metadata_event("thread_name", n, "node " + std::to_string(n)));
  }

  for (const auto& [trace, idxs] : by_trace) {
    (void)trace;
    for (std::size_t k = 0; k < idxs.size(); ++k) {
      const SpanEvent& ev = events[idxs[k]];
      const bool last = (k + 1 == idxs.size());
      if (ev.parent_ps < 0) {
        // Root (or unresolvable-parent) event: an instant marker.
        emit(instant_event(ev));
        emit(flow_event(ev, last ? "f" : (k == 0 ? "s" : "t"),
                        static_cast<double>(ev.t_ps) / kPsPerUs));
      } else {
        emit(slice_event(ev));
        emit(flow_event(ev, last ? "f" : (k == 0 ? "s" : "t"),
                        static_cast<double>(ev.parent_ps) / kPsPerUs));
      }
    }
  }

  // Profiler tracks (real time, not simulated): zone rows are name-sorted
  // by snapshot(), so tids -- and the emitted JSON -- are deterministic.
  if (!prof_zones.empty()) {
    emit(metadata_event("process_name", 0, "nti-prof", 1));
    int tid = 0;
    for (const auto& z : prof_zones) {
      emit(metadata_event("thread_name", tid, z.name, 1));

      JsonObject args;
      args.add("calls", z.calls);
      args.add("self_us", static_cast<double>(z.self_ns) / 1e3);
      JsonObject slice;
      slice.add("ph", "X");
      slice.add("name", z.name);
      slice.add("cat", "prof");
      slice.add("pid", std::int64_t{1});
      slice.add("tid", std::int64_t{tid});
      slice.add("ts", 0.0);
      slice.add("dur", static_cast<double>(z.total_ns) / 1e3);
      slice.add_object("args", args);
      emit(slice);

      JsonObject counter_args;
      counter_args.add("self_us", static_cast<double>(z.self_ns) / 1e3);
      JsonObject counter;
      counter.add("ph", "C");
      counter.add("name", "prof." + z.name);
      counter.add("pid", std::int64_t{1});
      counter.add("tid", std::int64_t{tid});
      counter.add("ts", 0.0);
      counter.add_object("args", counter_args);
      emit(counter);
      ++tid;
    }
  }

  os << "\n], \"displayTimeUnit\": \"ns\"}\n";
}

bool write_chrome_trace(const std::string& path, const SpanCollector& spans) {
  return write_chrome_trace(path, spans, {});
}

bool write_chrome_trace(const std::string& path, const SpanCollector& spans,
                        const std::vector<prof::ZoneStats>& prof_zones) {
  std::ofstream f(path);
  if (!f) return false;
  dump_chrome_trace(f, spans, prof_zones);
  return static_cast<bool>(f);
}

}  // namespace nti::obs
