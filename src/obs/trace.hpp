// TraceRing: bounded post-mortem trace of typed simulation records.
//
// Log::trace prints as it goes (useful live, useless after the fact); the
// TraceRing instead *retains* the last N records of what the system did --
// event firings, frame tx/rx, CSP stamps, resynchronizations -- so a sync
// anomaly found at t = 290 s can be diagnosed from the records leading up
// to it.  Fixed capacity, overwrite-oldest semantics, O(1) push, no
// allocation after construction; records are POD so tracing the hot path
// costs a few stores.
//
// Record field conventions (a/b are type-specific payloads):
//   kEventFired  node = -1              a = event seq        b = 0
//   kFrameTx     node = src station     a = frame id         b = frame bytes
//   kFrameRx     node = rx station      a = frame id         b = rx_end ps
//   kCspStamp    node = local node id   a = src node         b = remote stamp ps
//   kResync      node = node id         a = round            b = correction ps
//   kFrameDrop   node = station         a = frame id         b = DiscardReason
//   kFaultInject node = target node     a = fault::Kind      b = detail (ps/bit)
//   kFaultClear  node = target node     a = fault::Kind      b = detail
//   kCapsuleDrop node = gateway node    a = gateway link     b = DiscardReason
//   kGatewayState node = gateway node   a = gateway link     b = old<<8 | new
//                 (GatewayState values; see node/gateway.hpp)
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

#include "common/time_types.hpp"

namespace nti::obs {

enum class TraceType : std::uint8_t {
  kEventFired = 0,
  kFrameTx = 1,
  kFrameRx = 2,
  kCspStamp = 3,
  kResync = 4,
  kFrameDrop = 5,
  kFaultInject = 6,
  kFaultClear = 7,
  kCapsuleDrop = 8,
  kGatewayState = 9,
};

const char* to_string(TraceType t);

struct TraceRecord {
  SimTime t;
  TraceType type = TraceType::kEventFired;
  std::int32_t node = -1;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

class TraceRing {
 public:
  /// Capacity must be >= 1; storage is allocated once, up front.
  explicit TraceRing(std::size_t capacity);

#ifdef NTI_OBS_OFF
  // Observability-tax build (docs/PERFORMANCE.md): tracing compiles to
  // nothing; the ring stays empty.
  void push(SimTime, TraceType, std::int32_t, std::int64_t = 0,
            std::int64_t = 0) {}
#else
  void push(SimTime t, TraceType type, std::int32_t node, std::int64_t a = 0,
            std::int64_t b = 0);
#endif

  std::size_t capacity() const { return buf_.size(); }
  /// Records currently retained (<= capacity).
  std::size_t size() const;
  /// Total records ever pushed, including overwritten ones.
  std::uint64_t total_pushed() const { return pushed_; }
  /// Records lost to overwriting.
  std::uint64_t overwritten() const;

  /// i = 0 is the oldest retained record, size()-1 the newest.
  const TraceRecord& at(std::size_t i) const;

  void clear();

  /// CSV dump (header + one row per retained record, oldest first):
  /// t_ps,type,node,a,b
  void dump_csv(std::ostream& os) const;

 private:
  std::vector<TraceRecord> buf_;
  std::size_t head_ = 0;     ///< next write position
  std::uint64_t pushed_ = 0;
};

}  // namespace nti::obs
