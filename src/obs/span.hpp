// SpanCollector: causal CSP-lifecycle tracing.
//
// The paper's precision argument is a latency decomposition: every stage of
// a CSP's life -- transmit trigger on the COMCO read of header offset 0x14,
// transparent stamp insertion, medium access, propagation, receive trigger
// on the write of 0x1C, ISR association, interval fusion, amortized
// correction -- contributes a bounded term.  The SpanCollector attributes
// end-to-end CSP delay to exactly those stages: the CI driver assigns a
// trace id when it hands a CSP to the COMCO, the id rides along through the
// MAC / DMA / ISR / fusion layers (never on the wire -- it is simulation
// metadata, like net::Frame::id), and each layer records a typed stage
// event with a picosecond timestamp.
//
// Stage taxonomy and parentage (the stage's duration is measured from its
// parent event on the same trace; rx-side stages are per receiving node,
// so one broadcast CSP forks into one branch per receiver):
//
//   stage               recorded by          parent            meaning
//   send_request        node::CiDriver       (root)            CSP handed to COMCO
//   medium_acquire      net::Medium          send_request      MAC won the wire
//   tx_trigger          module::Nti          medium_acquire    COMCO read of TX trigger word
//   tx_stamp_insert     module::Nti          tx_trigger        mapped stamp words fetched
//   on_wire             net::Medium          medium_acquire    first bit at this receiver
//   rx_stamp            module::Nti          on_wire           COMCO write of RX trigger word
//   isr_assoc           node::CiDriver       rx_stamp          INTN ISR parked the stamp
//   fused               csa::SyncNode        isr_assoc         interval entered convergence
//   discarded           any layer            (varies)          left the pipeline (reason)
//   correction_applied  csa::SyncNode        fused             resync correction applied
//
// Per-stage latency histograms (aggregate and per src->dst node pair) are
// maintained incrementally on record(); raw events are retained (up to a
// configurable cap) for the Chrome trace-event exporter
// (obs/chrome_trace.hpp).  Everything is deterministic: ids are a simple
// counter, no wall-clock anywhere.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time_types.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"

namespace nti::obs {

enum class SpanStage : std::uint8_t {
  kSendRequest = 0,
  kMediumAcquire,
  kTxTrigger,
  kTxStampInsert,
  kOnWire,
  kRxStamp,
  kIsrAssoc,
  kFused,
  kDiscarded,
  kCorrectionApplied,
};
inline constexpr std::size_t kNumSpanStages = 10;

const char* to_string(SpanStage s);

/// Why a CSP left the pipeline early (SpanEvent::detail of kDiscarded).
/// Also the per-receiver drop verdict of a net::MediumTap (kNone = deliver).
enum class DiscardReason : std::int64_t {
  kNone = 0,         ///< not discarded (MediumTap "deliver" verdict)
  kQueueDrop = 1,    ///< MAC tx ring overflow (net::Medium)
  kTxAbort = 2,      ///< gave up after max_attempts collisions
  kRxOverrun = 3,    ///< COMCO rx descriptor ring empty
  kLateRound = 4,    ///< CSP for a round we already left
  kInvalidStamp = 5, ///< hardware/software stamp failed validation
  kLateArrival = 6,  ///< arrived after the resync point
  kInjectedLoss = 7, ///< fault injection: stochastic frame loss
  kPartition = 8,    ///< fault injection: link partition cut this path
  kNodeDown = 9,     ///< fault injection: station's node is crashed
  kCapsuleStale = 10,   ///< gateway capsule: duplicate seq or hold > timeout
  kCapsuleCorrupt = 11, ///< gateway capsule: wire checksum (crc8) mismatch
};

const char* to_string(DiscardReason r);

struct SpanEvent {
  std::uint64_t trace = 0;    ///< CSP trace id (begin_csp order, from 1)
  SpanStage stage = SpanStage::kSendRequest;
  std::int32_t node = -1;     ///< node the stage executed on
  std::int32_t src = -1;      ///< originating (sender) node of the CSP
  std::int64_t t_ps = 0;      ///< stage completion instant
  std::int64_t parent_ps = -1; ///< parent event instant (-1: root / unknown)
  std::int64_t detail = 0;    ///< stage-specific payload (reason, correction ps, ...)
};

class SpanCollector {
 public:
  /// `max_events` bounds the retained raw-event store (histograms keep
  /// accumulating past the cap; dropped_events() counts the overflow).
  explicit SpanCollector(std::size_t max_events = std::size_t{1} << 20);
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

#ifdef NTI_OBS_OFF
  // Observability-tax build (docs/PERFORMANCE.md): span recording compiles
  // to nothing.  begin_csp returns 0, the instrumentation-wide "no span"
  // id, so every downstream record() is a statically dead no-op.
  std::uint64_t begin_csp(int, SimTime) { return 0; }
  void record(std::uint64_t, SpanStage, SimTime, int, std::int64_t = 0) {}
#else
  /// Open a span for a CSP originating at `src_node`; records the
  /// kSendRequest root event and returns the trace id (never 0 -- 0 means
  /// "no span" throughout the instrumentation).
  std::uint64_t begin_csp(int src_node, SimTime t);

  /// Record a stage event.  Unknown trace ids (e.g. 0) are ignored, so
  /// instrumented layers can call unconditionally for non-CSP frames.
  void record(std::uint64_t trace, SpanStage stage, SimTime t, int node,
              std::int64_t detail = 0);
#endif

  // ---- queries ------------------------------------------------------------
  std::uint64_t spans_started() const { return next_id_ - 1; }
  std::size_t event_count() const { return events_.size(); }
  const SpanEvent& event(std::size_t i) const { return events_[i]; }
  const std::vector<SpanEvent>& events() const { return events_; }
  std::uint64_t dropped_events() const { return dropped_; }

  /// All retained events of one trace, in recording order.
  std::vector<SpanEvent> trace_events(std::uint64_t trace) const;

  /// Aggregate per-stage latency distribution (nullptr-free; empty until
  /// the stage has fired).  kSendRequest is the root and has no duration.
  const LogHistogram& stage_histogram(SpanStage s) const;
  /// Per node-pair distribution, or nullptr when the pair never fired the
  /// stage.  For tx-side stages dst == src.
  const LogHistogram* pair_histogram(int src, int dst, SpanStage s) const;

  /// Export aggregate stage histograms plus span counters into `reg` under
  /// `prefix` (e.g. "span."); this collector must outlive snapshots.
  void register_metrics(MetricsRegistry& reg, const std::string& prefix);

  void clear();

 private:
  // In-flight per-trace state used to resolve each stage's parent instant.
  struct Branch {
    std::int64_t on_wire = -1;
    std::int64_t rx_stamp = -1;
    std::int64_t isr_assoc = -1;
    std::int64_t fused = -1;
  };
  struct TraceState {
    std::int32_t src = -1;
    std::int64_t send_request = -1;
    std::int64_t medium_acquire = -1;
    std::int64_t tx_trigger = -1;
    std::int64_t tx_stamp_insert = -1;
    std::map<std::int32_t, Branch> rx;  ///< keyed by receiving node
  };

  std::int64_t resolve_parent(TraceState& st, SpanStage stage, int node,
                              std::int64_t t_ps);
  static std::uint64_t pair_key(int src, int dst, SpanStage s);

  std::size_t max_events_;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::vector<SpanEvent> events_;
  // Ordered map: live-trace iteration must be id-ordered so any export or
  // sweep over in-flight traces is independent of hash layout.
  std::map<std::uint64_t, TraceState> live_;
  LogHistogram stage_hist_[kNumSpanStages];
  std::map<std::uint64_t, LogHistogram> pair_hist_;
  // One-entry memoization of the last trace / pair-histogram lookup.  A
  // CSP's stage records arrive in bursts for the same trace (and often the
  // same src->dst pair), so this folds consecutive records into a single
  // map probe each.  Safe because std::map nodes are address-stable and
  // live_/pair_hist_ entries are only removed by clear(), which resets the
  // caches.
  std::uint64_t cached_trace_ = 0;           ///< 0 = empty (never a live id)
  TraceState* cached_state_ = nullptr;
  std::uint64_t cached_pair_key_ = ~std::uint64_t{0};
  LogHistogram* cached_pair_ = nullptr;
};

}  // namespace nti::obs
