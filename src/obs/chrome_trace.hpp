// Chrome trace-event exporter for SpanCollector.
//
// Renders the retained span events as a Trace Event Format JSON object
// ({"traceEvents": [...]}) loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.  Mapping:
//   * one track (tid) per simulation node, all under pid 0 ("nti-sim"),
//     named via ph:"M" thread_name/process_name metadata events;
//   * every stage with a resolved parent becomes a ph:"X" duration slice
//     on its node's track: ts = parent instant, dur = stage latency, both
//     in microseconds (doubles, so the picosecond grid survives as the
//     fractional part); args carry {csp, src, detail};
//   * each CSP becomes one async flow (id = trace id): ph:"s" at the root
//     kSendRequest instant, ph:"t" binding every slice, ph:"f" at the
//     chronologically last event -- Perfetto draws the arrows that stitch
//     tx_trigger on the sender to rx_stamp/fused/correction_applied on
//     every receiver.
//
// When profiler zone stats are supplied, they land in a second process
// (pid 1, "nti-prof"): one track per zone carrying a ph:"X" slice of the
// zone's total wall time (args: calls, self_us) and a ph:"C" counter of
// its self time, so the per-subsystem obs/sim split is visible next to the
// simulated-time spans.  Note the axes differ: pid 0 is simulated time,
// pid 1 is real (profiled) time laid out from 0.
// No dependencies beyond obs/json.hpp and obs/prof.hpp.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/prof.hpp"

namespace nti::obs {

class SpanCollector;

/// Stream the full trace JSON ({"traceEvents": [...], ...}) to `os`.
void dump_chrome_trace(std::ostream& os, const SpanCollector& spans);
/// Same, plus profiler zone tracks under pid 1 (see header comment).
void dump_chrome_trace(std::ostream& os, const SpanCollector& spans,
                       const std::vector<prof::ZoneStats>& prof_zones);

/// Convenience: dump_chrome_trace into `path`; false (no file) on error.
bool write_chrome_trace(const std::string& path, const SpanCollector& spans);
bool write_chrome_trace(const std::string& path, const SpanCollector& spans,
                        const std::vector<prof::ZoneStats>& prof_zones);

}  // namespace nti::obs
