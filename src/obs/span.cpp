#include "obs/span.hpp"

#include "common/log.hpp"
#include "obs/prof.hpp"

namespace nti::obs {

const char* to_string(SpanStage s) {
  switch (s) {
    case SpanStage::kSendRequest: return "send_request";
    case SpanStage::kMediumAcquire: return "medium_acquire";
    case SpanStage::kTxTrigger: return "tx_trigger";
    case SpanStage::kTxStampInsert: return "tx_stamp_insert";
    case SpanStage::kOnWire: return "on_wire";
    case SpanStage::kRxStamp: return "rx_stamp";
    case SpanStage::kIsrAssoc: return "isr_assoc";
    case SpanStage::kFused: return "fused";
    case SpanStage::kDiscarded: return "discarded";
    case SpanStage::kCorrectionApplied: return "correction_applied";
  }
  return "?";
}

const char* to_string(DiscardReason r) {
  switch (r) {
    case DiscardReason::kNone: return "none";
    case DiscardReason::kQueueDrop: return "queue_drop";
    case DiscardReason::kTxAbort: return "tx_abort";
    case DiscardReason::kRxOverrun: return "rx_overrun";
    case DiscardReason::kLateRound: return "late_round";
    case DiscardReason::kInvalidStamp: return "invalid_stamp";
    case DiscardReason::kLateArrival: return "late_arrival";
    case DiscardReason::kInjectedLoss: return "injected_loss";
    case DiscardReason::kPartition: return "partition";
    case DiscardReason::kNodeDown: return "node_down";
    case DiscardReason::kCapsuleStale: return "capsule_stale";
    case DiscardReason::kCapsuleCorrupt: return "capsule_corrupt";
  }
  return "?";
}

SpanCollector::SpanCollector(std::size_t max_events) : max_events_(max_events) {}

// Key packing is needed by the (unconditional) read-side accessors, so it
// stays compiled even when the record path is compiled out.
std::uint64_t SpanCollector::pair_key(int src, int dst, SpanStage s) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst) & 0xFFFF'FFu) << 16) |
         static_cast<std::uint64_t>(s);
}

#ifndef NTI_OBS_OFF
std::uint64_t SpanCollector::begin_csp(int src_node, SimTime t) {
  const std::uint64_t id = next_id_++;
  TraceState st;
  st.src = src_node;
  live_.emplace(id, st);
  record(id, SpanStage::kSendRequest, t, src_node);
  return id;
}

std::int64_t SpanCollector::resolve_parent(TraceState& st, SpanStage stage,
                                           int node, std::int64_t t_ps) {
  switch (stage) {
    case SpanStage::kSendRequest:
      st.send_request = t_ps;
      return -1;
    case SpanStage::kMediumAcquire:
      st.medium_acquire = t_ps;
      return st.send_request;
    case SpanStage::kTxTrigger:
      st.tx_trigger = t_ps;
      return st.medium_acquire;
    case SpanStage::kTxStampInsert:
      st.tx_stamp_insert = t_ps;
      return st.tx_trigger;
    case SpanStage::kOnWire: {
      st.rx[node].on_wire = t_ps;
      return st.medium_acquire;
    }
    case SpanStage::kRxStamp: {
      Branch& b = st.rx[node];
      b.rx_stamp = t_ps;
      return b.on_wire;
    }
    case SpanStage::kIsrAssoc: {
      Branch& b = st.rx[node];
      b.isr_assoc = t_ps;
      return b.rx_stamp;
    }
    case SpanStage::kFused: {
      Branch& b = st.rx[node];
      b.fused = t_ps;
      return b.isr_assoc;
    }
    case SpanStage::kDiscarded: {
      // Discards happen on either side of the wire: tx-side (queue drop,
      // tx abort) parent from the latest tx-side event, rx-side from the
      // deepest rx-branch event reached.
      if (node == st.src) {
        if (st.medium_acquire >= 0) return st.medium_acquire;
        return st.send_request;
      }
      const auto it = st.rx.find(node);
      if (it == st.rx.end()) return st.send_request;
      const Branch& b = it->second;
      if (b.fused >= 0) return b.fused;
      if (b.isr_assoc >= 0) return b.isr_assoc;
      if (b.rx_stamp >= 0) return b.rx_stamp;
      if (b.on_wire >= 0) return b.on_wire;
      return st.send_request;
    }
    case SpanStage::kCorrectionApplied: {
      const auto it = st.rx.find(node);
      return it != st.rx.end() ? it->second.fused : -1;
    }
  }
  return -1;
}

void SpanCollector::record(std::uint64_t trace, SpanStage stage, SimTime t,
                           int node, std::int64_t detail) {
  PROF_ZONE("obs.span.record");
  if (trace == 0) return;  // "no span" id (also the empty-cache sentinel)
  TraceState* stp = cached_state_;
  if (trace != cached_trace_) {
    const auto it = live_.find(trace);
    if (it == live_.end()) return;  // unknown trace: not a CSP span
    cached_trace_ = trace;
    cached_state_ = stp = &it->second;
  }
  TraceState& st = *stp;

  SpanEvent ev;
  ev.trace = trace;
  ev.stage = stage;
  ev.node = node;
  ev.src = st.src;
  ev.t_ps = t.count_ps();
  ev.detail = detail;
  ev.parent_ps = resolve_parent(st, stage, node, ev.t_ps);

  if (ev.parent_ps >= 0) {
    const auto delta = static_cast<double>(ev.t_ps - ev.parent_ps);
    stage_hist_[static_cast<std::size_t>(stage)].add(delta);
    const std::uint64_t key = pair_key(st.src, node, stage);
    if (key != cached_pair_key_) {
      cached_pair_key_ = key;
      cached_pair_ = &pair_hist_[key];
    }
    cached_pair_->add(delta);
  }

  if (events_.size() < max_events_) {
    events_.push_back(ev);
  } else {
    ++dropped_;
  }

  // Correlate with the text-log stream: same pico-timestamp formatting,
  // span id spelled out (enable LogCat::kObs to interleave).
  if (Log::enabled(LogCat::kObs)) {
    Log::trace(LogCat::kObs, t, "span %llu %s node=%d detail=%lld",
               static_cast<unsigned long long>(trace), to_string(stage), node,
               static_cast<long long>(detail));
  }
}
#endif  // NTI_OBS_OFF

std::vector<SpanEvent> SpanCollector::trace_events(std::uint64_t trace) const {
  std::vector<SpanEvent> out;
  for (const auto& ev : events_) {
    if (ev.trace == trace) out.push_back(ev);
  }
  return out;
}

const LogHistogram& SpanCollector::stage_histogram(SpanStage s) const {
  return stage_hist_[static_cast<std::size_t>(s)];
}

const LogHistogram* SpanCollector::pair_histogram(int src, int dst,
                                                  SpanStage s) const {
  const auto it = pair_hist_.find(pair_key(src, dst, s));
  return it != pair_hist_.end() ? &it->second : nullptr;
}

void SpanCollector::register_metrics(MetricsRegistry& reg,
                                     const std::string& prefix) {
  // kSendRequest is the root (no duration); every other stage exports its
  // aggregate latency distribution, scaled ps -> us per repo convention.
  for (std::size_t i = 1; i < kNumSpanStages; ++i) {
    reg.add_histogram(prefix + "stage." + to_string(static_cast<SpanStage>(i)) + "_us",
                      &stage_hist_[i], 1e-6);
  }
  reg.add_gauge(prefix + "spans_started",
                [this] { return static_cast<double>(spans_started()); });
  reg.add_gauge(prefix + "events_retained",
                [this] { return static_cast<double>(events_.size()); });
  reg.add_gauge(prefix + "events_dropped",
                [this] { return static_cast<double>(dropped_); });
}

void SpanCollector::clear() {
  events_.clear();
  live_.clear();
  pair_hist_.clear();
  for (auto& h : stage_hist_) h.clear();
  dropped_ = 0;
  next_id_ = 1;
  cached_trace_ = 0;
  cached_state_ = nullptr;
  cached_pair_key_ = ~std::uint64_t{0};
  cached_pair_ = nullptr;
}

}  // namespace nti::obs
