#include "obs/prof.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>

// Cold path of the profiler: interning, the global flushed store, the tick
// calibration anchor, and snapshot/reset.  The per-zone hot path is inline
// in prof.hpp.  This pair of files is the sanctioned home of every
// wall-clock read in src/ -- the `prof` rule in tools/nti_lint.py fires on
// chrono clocks / rdtsc anywhere else.  Profiler state is write-only from
// the simulation's point of view: nothing outside snapshot()/enabled()
// reads it, so it can never feed back into simulated behaviour.
//
// nti-lint: allow-file(shard): the profiler aggregates per-thread zone
// buffers under its own mutex; it records wall-clock telemetry only and no
// output byte of the simulation depends on it.

namespace nti::obs::prof {
namespace {

inline std::int64_t steady_ns_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// g_mutex guards the intern table, the flushed store, and the calibration
// anchor.  The hot path (zone_enter/zone_exit) never takes it.
std::mutex g_mutex;
std::vector<std::string>& names() {
  static std::vector<std::string> v;
  return v;
}
std::map<std::string, ZoneId>& ids() {
  static std::map<std::string, ZoneId> m;
  return m;
}
std::vector<detail::ZoneAccum>& flushed() {
  static std::vector<detail::ZoneAccum> v;
  return v;
}
// Calibration anchor: (steady ns, ticks) pair taken at reset()/first
// enable; the ns-per-tick ratio is measured against it at snapshot time.
std::int64_t g_anchor_ns = 0;
std::int64_t g_anchor_ticks = 0;

void anchor_locked() {
  g_anchor_ns = steady_ns_now();
  g_anchor_ticks = detail::ticks_now();
}

}  // namespace

#ifndef NTI_OBS_OFF

namespace detail {

void ThreadState::flush() {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& store = flushed();
  if (store.size() < slots.size()) store.resize(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) store[i].merge(slots[i]);
  slots.clear();
}

}  // namespace detail

ZoneId intern(const char* name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& m = ids();
  const auto it = m.find(name);
  if (it != m.end()) return it->second;
  const ZoneId id = static_cast<ZoneId>(names().size());
  names().emplace_back(name);
  m.emplace(name, id);
  return id;
}

#endif  // NTI_OBS_OFF

void set_enabled(bool on) {
  const bool want = kObsEnabled && on;
  if (want && !detail::g_enabled.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (g_anchor_ns == 0) anchor_locked();
  }
  detail::g_enabled.store(want, std::memory_order_relaxed);
}

void set_sample_period(std::uint32_t period) {
  // Round down to a power of two so the window check is a single mask.
  std::uint32_t p = 1;
  while (p * 2 <= period && p < (1u << 30)) p *= 2;
  detail::g_sample_mask.store(p - 1, std::memory_order_relaxed);
}

std::uint32_t sample_period() {
  return detail::g_sample_mask.load(std::memory_order_relaxed) + 1;
}

void reset() {
#ifndef NTI_OBS_OFF
  detail::ThreadState& ts = detail::tls();
  ts.slots.clear();
  ts.depth = 0;
  ts.timing = false;
  ts.window_seq = 0;  // next top-level window is a sampled one
#endif
  std::lock_guard<std::mutex> lock(g_mutex);
  flushed().clear();
  anchor_locked();
}

std::vector<ZoneStats> snapshot() {
  std::vector<ZoneStats> out;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::vector<detail::ZoneAccum> merged = flushed();
#ifndef NTI_OBS_OFF
  const auto& live = detail::tls().slots;
  if (merged.size() < live.size()) merged.resize(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) merged[i].merge(live[i]);
#endif

  // ns-per-tick from the calibration anchor (identity when ticks already
  // are steady_clock nanoseconds, or before the first enable).
  double ns_per_tick = 1.0;
  if (g_anchor_ns != 0) {
    const std::int64_t dticks = detail::ticks_now() - g_anchor_ticks;
    const std::int64_t dns = steady_ns_now() - g_anchor_ns;
    if (dticks > 0 && dns > 0) {
      ns_per_tick = static_cast<double>(dns) / static_cast<double>(dticks);
    }
  }

  const auto& zone_names = names();
  for (std::size_t i = 0; i < merged.size() && i < zone_names.size(); ++i) {
    if (merged[i].calls == 0) continue;
    ZoneStats z;
    z.name = zone_names[i];
    z.calls = merged[i].calls;
    // Extrapolate from the sampled windows: a zone timed on timed_calls of
    // calls executions scales by calls/timed_calls (1.0 at period 1).
    const double scale =
        merged[i].timed_calls > 0
            ? static_cast<double>(merged[i].calls) /
                  static_cast<double>(merged[i].timed_calls)
            : 0.0;
    z.total_ns = static_cast<std::int64_t>(
        static_cast<double>(merged[i].total_ticks) * ns_per_tick * scale);
    z.self_ns = static_cast<std::int64_t>(
        static_cast<double>(merged[i].self_ticks) * ns_per_tick * scale);
    out.push_back(std::move(z));
  }
  std::sort(out.begin(), out.end(),
            [](const ZoneStats& a, const ZoneStats& b) { return a.name < b.name; });
  return out;
}

}  // namespace nti::obs::prof
