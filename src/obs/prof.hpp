// obs::prof -- self-profiling wall-clock attribution for the simulator.
//
// The bench trajectory records *what* the simulator computed; this records
// *where the real CPU time went* while computing it: engine pop/dispatch,
// medium TX/RX, the COMCO DMA walk, CSA rounds, and the observability
// layer's own emission cost (refining the single ~35% obs-tax number of
// docs/PERFORMANCE.md into a per-subsystem breakdown).
//
// Design constraints, in priority order:
//   1. ZERO feedback into simulation state.  Zones only ever write into
//      thread-local accumulators that nothing in src/ reads back; a new
//      ctest (tests/mc/prof_determinism_test.cpp) pins that simulation
//      output stays byte-identical with profiling on/off and across
//      NTI_MC_THREADS.  This file and prof.cpp are the only places in src/
//      allowed to read a wall clock (tools/nti_lint.py rule `prof`).
//   2. Near-zero cost when disabled: a PROF_ZONE site is one relaxed
//      atomic load when profiling is off, and compiles to nothing entirely
//      under NTI_OBS_OFF.
//      nti-lint: allow-file(shard): thread-local accumulators plus relaxed
//      config flags; telemetry-only, nothing in src/ reads it back, so no
//      output byte can depend on it.
//   3. Cheap when enabled: most zone executions only bump a thread-local
//      call counter; clock reads (raw TSC, steady_clock fallback on
//      non-x86) are confined to sampled windows -- no locks, no allocation
//      on the hot path (per-thread zone slabs grow once per zone, then
//      plateau).
//
// Attribution model: zones nest lexically (RAII).  Each zone accumulates
//   total -- wall time between scope entry and exit (inclusive), and
//   self  -- total minus the time spent in directly nested zones,
// so sum(self) over all zones partitions the instrumented wall time.
// Worker threads (mc::Runner's pool) flush their slabs into a global store
// when they exit; snapshot() merges the flushed store with the calling
// thread's live slab and returns name-ordered rows -- integer sums commute,
// so the merge order never depends on thread scheduling.
//
// Sampling: clock reads dominate zone cost (rdtsc costs ~20 ns under some
// hypervisors), so timing is window-sampled.  Calls are counted on every
// zone execution, but tick reads happen only inside 1-of-N top-level
// windows (N = set_sample_period(), default 16).  A window spans one
// outermost zone and everything nested in it, so self/total accounting is
// exact within a window; snapshot() extrapolates each zone's times by
// calls/timed_calls.  Set the period to 1 to time every window.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs_build.hpp"

#if !defined(__x86_64__) && !defined(__i386__)
#include <chrono>  // steady_clock tick-source fallback (rule `prof` home)
#endif

namespace nti::obs::prof {

/// One merged zone row (times in nanoseconds, calibrated from raw ticks at
/// snapshot time and extrapolated from the sampled windows by
/// calls/timed_calls).  Rows are sorted by name -- the deterministic merge
/// order across any number of worker threads.
struct ZoneStats {
  std::string name;
  std::uint64_t calls = 0;    ///< exact execution count
  std::int64_t total_ns = 0;  ///< inclusive wall time (sampled estimate)
  std::int64_t self_ns = 0;   ///< exclusive (total minus nested zones)
};

namespace detail {
/// The global switch lives in the header so enabled() inlines to a single
/// relaxed load at every PROF_ZONE site.  Write it through set_enabled().
inline std::atomic<bool> g_enabled{false};

/// Raw tick source: TSC on x86 (~7 ns/read, calibrated to wall ns at
/// snapshot time), steady_clock elsewhere (ticks are already ns).  Needed
/// unconditionally: the calibration anchor lives in prof.cpp.
inline std::int64_t ticks_now() {
#if defined(__x86_64__) || defined(__i386__)
  return static_cast<std::int64_t>(__builtin_ia32_rdtsc());
#else
  return std::chrono::steady_clock::now().time_since_epoch().count();
#endif
}

/// Sampling mask (period - 1, period a power of two).  Read relaxed on the
/// hot path; written through set_sample_period().
inline std::atomic<std::uint32_t> g_sample_mask{15};

struct ZoneAccum {
  std::uint64_t calls = 0;        ///< every execution (exact)
  std::uint64_t timed_calls = 0;  ///< executions inside a timed window
  std::int64_t total_ticks = 0;   ///< summed over timed windows only
  std::int64_t self_ticks = 0;

  void merge(const ZoneAccum& o) {
    calls += o.calls;
    timed_calls += o.timed_calls;
    total_ticks += o.total_ticks;
    self_ticks += o.self_ticks;
  }
};
}  // namespace detail

/// Global profiling switch.  Off by default; benches turn it on around the
/// region they attribute.  Under NTI_OBS_OFF this is forced off.
void set_enabled(bool on);
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Time 1 of every `period` top-level zone windows (counting is always
/// exact).  Rounded down to a power of two; 1 = time everything.  Applies
/// to windows entered after the call; the default is 16.
void set_sample_period(std::uint32_t period);
std::uint32_t sample_period();

/// Drop all accumulated data (flushed store + the calling thread's slab)
/// and re-anchor the tick calibration.  Call between attribution runs,
/// after worker threads have joined.
void reset();

/// Name-ordered merged zone rows: the flushed store (exited threads) plus
/// the calling thread's live slab.  Call after joining any worker threads
/// that profiled; zones with zero calls are omitted.
std::vector<ZoneStats> snapshot();

using ZoneId = std::uint32_t;

#ifndef NTI_OBS_OFF

/// Intern a zone name (dotted lowercase, e.g. "sim.engine.dispatch") into a
/// process-wide id.  Slow (mutex); call once per site via the PROF_ZONE
/// macro's function-local static.
ZoneId intern(const char* name);

// ---------------------------------------------------------------------------
// Hot path -- header-inline so an active zone costs two raw tick reads plus
// a handful of thread-local integer stores, with no function calls.  This
// header is inside the src/obs/prof* lint-rule home, so the tick reads are
// sanctioned here and nowhere else in src/.
// ---------------------------------------------------------------------------
namespace detail {

inline constexpr int kMaxDepth = 64;

struct Frame {
  ZoneId id = 0;
  std::int64_t start_ticks = 0;
  std::int64_t child_ticks = 0;
};

/// Per-thread zone slab + scope stack.  The destructor merges the slab
/// into the global flushed store (prof.cpp), so worker-pool threads hand
/// their data over when they exit.
struct ThreadState {
  std::vector<ZoneAccum> slots;  ///< indexed by ZoneId; grows per first use
  Frame stack[kMaxDepth];
  int depth = 0;
  bool timing = false;           ///< this window's sampling decision
  std::uint32_t window_seq = 0;  ///< top-level windows entered so far

  ~ThreadState() { flush(); }
  /// Merge this thread's slab into the global flushed store and clear it
  /// (out-of-line: takes the global mutex).
  void flush();
};

inline ThreadState& tls() {
  thread_local ThreadState state;
  return state;
}

/// Push a frame for `id` on this thread's zone stack; read the clock only
/// in sampled windows.  Returns the thread state for the matching
/// zone_exit, or nullptr when the stack is at max depth (no frame pushed).
inline ThreadState* zone_enter(ZoneId id) {
  ThreadState& ts = tls();
  if (ts.depth >= kMaxDepth) return nullptr;
  if (ts.depth == 0) {
    ts.timing = (ts.window_seq++ &
                 g_sample_mask.load(std::memory_order_relaxed)) == 0;
  }
  Frame& f = ts.stack[ts.depth++];
  f.id = id;
  f.child_ticks = 0;
  if (ts.timing) f.start_ticks = ticks_now();
  return &ts;
}

/// Pop the top frame; count the call, and in sampled windows accumulate
/// total/self and charge the parent.
inline void zone_exit(ThreadState* tsp) {
  ThreadState& ts = *tsp;
  Frame& f = ts.stack[--ts.depth];
  if (f.id >= ts.slots.size()) ts.slots.resize(f.id + 1);
  ZoneAccum& a = ts.slots[f.id];
  ++a.calls;
  if (!ts.timing) return;
  std::int64_t total = ticks_now() - f.start_ticks;
  if (total < 0) total = 0;  // TSC migration slop; never let it go negative
  ++a.timed_calls;
  a.total_ticks += total;
  const std::int64_t self = total - f.child_ticks;
  a.self_ticks += self > 0 ? self : 0;
  if (ts.depth > 0) ts.stack[ts.depth - 1].child_ticks += total;
}

}  // namespace detail

/// RAII zone scope.  Prefer the PROF_ZONE macro, which caches the intern.
class Scope {
 public:
  explicit Scope(ZoneId id)
      : ts_(enabled() ? detail::zone_enter(id) : nullptr) {}
  ~Scope() {
    if (ts_ != nullptr) detail::zone_exit(ts_);
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  detail::ThreadState* ts_;
};

#define NTI_PROF_CONCAT2(a, b) a##b
#define NTI_PROF_CONCAT(a, b) NTI_PROF_CONCAT2(a, b)
/// Attribute the rest of the enclosing scope to zone `name`.  The intern is
/// a function-local static, so steady-state cost is one guard check plus
/// the Scope (one relaxed load when profiling is off).
#define PROF_ZONE(name)                                                     \
  static const ::nti::obs::prof::ZoneId NTI_PROF_CONCAT(                    \
      nti_prof_zone_id_, __LINE__) = ::nti::obs::prof::intern(name);        \
  const ::nti::obs::prof::Scope NTI_PROF_CONCAT(nti_prof_zone_scope_,       \
                                                __LINE__)(                  \
      NTI_PROF_CONCAT(nti_prof_zone_id_, __LINE__))

#else  // NTI_OBS_OFF

// Observability-tax build: zones compile to nothing, matching
// TraceRing::push / SpanCollector::record (docs/PERFORMANCE.md).
#define PROF_ZONE(name) static_cast<void>(0)

#endif  // NTI_OBS_OFF

}  // namespace nti::obs::prof
