#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace nti::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values (counters, counts) print exactly without a fraction;
  // everything else gets enough digits to round-trip.
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void JsonObject::add(const std::string& key, double v) {
  fields_.emplace_back(key, json_number(v));
}

void JsonObject::add(const std::string& key, std::uint64_t v) {
  fields_.emplace_back(key, std::to_string(v));
}

void JsonObject::add(const std::string& key, std::int64_t v) {
  fields_.emplace_back(key, std::to_string(v));
}

void JsonObject::add(const std::string& key, bool v) {
  fields_.emplace_back(key, v ? "true" : "false");
}

void JsonObject::add(const std::string& key, const std::string& v) {
  fields_.emplace_back(key, "\"" + json_escape(v) + "\"");
}

void JsonObject::add(const std::string& key, const char* v) {
  add(key, std::string(v));
}

void JsonObject::add_object(const std::string& key, const JsonObject& obj) {
  fields_.emplace_back(key, obj.str());
}

void JsonObject::add_array(const std::string& key, const JsonArray& arr) {
  fields_.emplace_back(key, arr.str());
}

void JsonObject::add_raw(const std::string& key, const std::string& json) {
  fields_.emplace_back(key, json);
}

std::string JsonObject::str() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : fields_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + json_escape(k) + "\": " + v;
  }
  out += "}";
  return out;
}

void JsonArray::add(double v) { items_.push_back(json_number(v)); }
void JsonArray::add(std::uint64_t v) { items_.push_back(std::to_string(v)); }
void JsonArray::add(std::int64_t v) { items_.push_back(std::to_string(v)); }

void JsonArray::add(const std::string& v) {
  items_.push_back("\"" + json_escape(v) + "\"");
}

void JsonArray::add_object(const JsonObject& obj) { items_.push_back(obj.str()); }
void JsonArray::add_raw(const std::string& json) { items_.push_back(json); }

std::string JsonArray::str() const {
  std::string out = "[";
  bool first = true;
  for (const auto& v : items_) {
    if (!first) out += ", ";
    first = false;
    out += v;
  }
  out += "]";
  return out;
}

}  // namespace nti::obs
