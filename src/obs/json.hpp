// Minimal ordered JSON object writer (no external dependencies).
//
// Just enough for the observability layer's emission needs: flat or nested
// objects with string/number values, insertion-ordered keys, valid JSON
// output (numbers that are NaN/Inf are emitted as null so the files always
// parse).  Not a parser, not a DOM.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nti::obs {

/// Escape a string for use inside JSON quotes.
std::string json_escape(const std::string& s);
/// Render a double as a JSON number (integral values without a fraction,
/// NaN/Inf as null).
std::string json_number(double v);

class JsonArray;

class JsonObject {
 public:
  void add(const std::string& key, double v);
  void add(const std::string& key, std::uint64_t v);
  void add(const std::string& key, std::int64_t v);
  void add(const std::string& key, bool v);
  void add(const std::string& key, const std::string& v);
  void add(const std::string& key, const char* v);
  /// Nest a sub-object (rendered from its current contents).
  void add_object(const std::string& key, const JsonObject& obj);
  /// Nest a sub-array (rendered from its current contents).
  void add_array(const std::string& key, const JsonArray& arr);
  /// Splice a pre-rendered JSON value verbatim.
  void add_raw(const std::string& key, const std::string& json);

  bool empty() const { return fields_.empty(); }
  std::size_t size() const { return fields_.size(); }

  /// Render as {"k": v, ...} in insertion order.
  std::string str() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> rendered value
};

class JsonArray {
 public:
  void add(double v);
  void add(std::uint64_t v);
  void add(std::int64_t v);
  void add(const std::string& v);
  void add_object(const JsonObject& obj);
  /// Splice a pre-rendered JSON value verbatim.
  void add_raw(const std::string& json);

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  /// Render as [v, ...] in insertion order.
  std::string str() const;

 private:
  std::vector<std::string> items_;  // rendered values
};

}  // namespace nti::obs
