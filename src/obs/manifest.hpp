// RunManifest -- provenance record attached to every BenchReport.
//
// A BENCH_*.json file without provenance is a number with no story: you
// cannot tell which commit, compiler, preset, or machine produced it, so
// the perf trajectory across PRs never accumulates.  The manifest stamps
// each report with enough context to compare runs honestly
// (tools/collect_bench.py --baseline/--compare refuses mismatched
// build_type, and --expect fails reports missing these fields).
//
// Build-time fields (git sha, compiler, build type, preset) come from
// build_info_gen.hpp, configured by CMake; run-time fields (host, threads,
// obs_enabled) are sampled at current(); workload fields (seed, threads
// actually used) are filled in by the bench via BenchReport.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/json.hpp"

namespace nti::obs {

struct RunManifest {
  std::string git_sha;     ///< HEAD at configure time ("unknown" outside git)
  std::string compiler;    ///< e.g. "GNU 12.2.0"
  std::string build_type;  ///< CMAKE_BUILD_TYPE (+",san:<list>" when sanitized)
  std::string preset;      ///< CMake preset name, or "manual"
  std::string host;        ///< gethostname()
  bool obs_enabled = true;     ///< false in NTI_OBS_OFF builds
  std::uint64_t seed = 0;      ///< workload base seed (bench fills in)
  std::size_t threads = 0;     ///< worker threads used (bench fills in)

  /// Manifest for this build/process; seed and threads default to 0 /
  /// hardware_concurrency until the bench overrides them.
  static RunManifest current();

  /// Insertion-ordered JSON object, keys matching the field names above.
  JsonObject to_json() const;
};

}  // namespace nti::obs
