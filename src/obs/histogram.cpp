#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace nti::obs {

// Bucket 0 holds [0, 1); bucket 1 + e*8 + s holds
// [2^e * (1 + s/8), 2^e * (1 + (s+1)/8)) for e in [0, 62], s in [0, 7].
std::size_t LogHistogram::bucket_of(double v) {
  if (v < 1.0) return 0;
  int e = std::ilogb(v);
  e = std::clamp(e, 0, 62);
  const double base = std::ldexp(1.0, e);
  auto sub = static_cast<int>((v / base - 1.0) * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return 1 + static_cast<std::size_t>(e) * kSubBuckets + static_cast<std::size_t>(sub);
}

double LogHistogram::bucket_mid(std::size_t idx) {
  if (idx == 0) return 0.5;
  const std::size_t e = (idx - 1) / kSubBuckets;
  const std::size_t sub = (idx - 1) % kSubBuckets;
  const double base = std::ldexp(1.0, static_cast<int>(e));
  const double lo = base * (1.0 + static_cast<double>(sub) / kSubBuckets);
  const double hi = base * (1.0 + static_cast<double>(sub + 1) / kSubBuckets);
  return 0.5 * (lo + hi);
}

void LogHistogram::add(double v) {
  if (v < 0.0) {
    ++negatives_;
    v = 0.0;
  }
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++n_;
  const std::size_t idx = bucket_of(v);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
}

double LogHistogram::percentile(double p) const {
  if (n_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest rank: the smallest bucket whose cumulative count reaches
  // ceil(p/100 * n); p = 0 selects the first non-empty bucket.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(n_))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= rank) return std::clamp(bucket_mid(i), min_, max_);
  }
  return max_;
}

void LogHistogram::merge(const LogHistogram& other) {
  negatives_ += other.negatives_;
  if (other.n_ == 0) return;
  if (n_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  n_ += other.n_;
  sum_ += other.sum_;
}

void LogHistogram::clear() {
  buckets_.clear();
  n_ = negatives_ = 0;
  min_ = max_ = sum_ = 0.0;
}

}  // namespace nti::obs
