#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>

#include "obs/histogram.hpp"
#include "obs/json.hpp"

namespace nti::obs {

MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name) {
  for (auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

void MetricsRegistry::add_counter(std::string name, const std::uint64_t* value) {
  assert(value != nullptr);
  assert(find(name) == nullptr && "duplicate metric name");
  Entry e;
  e.name = std::move(name);
  e.kind = Metric::Kind::kCounter;
  e.counter = value;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::add_gauge(std::string name, std::function<double()> fn) {
  assert(fn != nullptr);
  assert(find(name) == nullptr && "duplicate metric name");
  Entry e;
  e.name = std::move(name);
  e.kind = Metric::Kind::kGauge;
  e.gauge = std::move(fn);
  entries_.push_back(std::move(e));
}

void MetricsRegistry::set_scalar(const std::string& name, double value) {
  if (Entry* e = find(name)) {
    assert(e->kind == Metric::Kind::kScalar && "kind mismatch on upsert");
    e->scalar = value;
    return;
  }
  Entry e;
  e.name = name;
  e.kind = Metric::Kind::kScalar;
  e.scalar = value;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::add_histogram(std::string name, const LogHistogram* hist,
                                    double scale) {
  assert(hist != nullptr);
  assert(find(name) == nullptr && "duplicate metric name");
  Entry e;
  e.name = std::move(name);
  e.kind = Metric::Kind::kHistogram;
  e.hist = hist;
  e.hist_scale = scale;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::set_scalar_max(const std::string& name, double value) {
  if (const Entry* e = find(name)) {
    value = std::max(value, e->scalar);
  }
  set_scalar(name, value);
}

bool MetricsRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

double MetricsRegistry::eval(const Entry& e) const {
  switch (e.kind) {
    case Metric::Kind::kCounter: return static_cast<double>(*e.counter);
    case Metric::Kind::kGauge: return e.gauge();
    case Metric::Kind::kScalar: return e.scalar;
    case Metric::Kind::kHistogram: return static_cast<double>(e.hist->count());
  }
  return 0.0;
}

void MetricsRegistry::expand_histogram(const Entry& e, std::vector<Metric>& out) {
  const LogHistogram& h = *e.hist;
  out.push_back({e.name + ".p50", h.percentile(50) * e.hist_scale,
                 Metric::Kind::kHistogram});
  out.push_back({e.name + ".p99", h.percentile(99) * e.hist_scale,
                 Metric::Kind::kHistogram});
  out.push_back({e.name + ".max", h.max() * e.hist_scale,
                 Metric::Kind::kHistogram});
  out.push_back({e.name + ".count", static_cast<double>(h.count()),
                 Metric::Kind::kHistogram});
}

double MetricsRegistry::value(const std::string& name) const {
  if (const Entry* e = find(name)) return eval(*e);
  // Histogram sub-metric lookup by expanded name (`<base>.p99`, ...).
  const auto dot = name.rfind('.');
  if (dot == std::string::npos) return 0.0;
  const Entry* base = find(name.substr(0, dot));
  if (base == nullptr || base->kind != Metric::Kind::kHistogram) return 0.0;
  const std::string leaf = name.substr(dot + 1);
  if (leaf == "p50") return base->hist->percentile(50) * base->hist_scale;
  if (leaf == "p99") return base->hist->percentile(99) * base->hist_scale;
  if (leaf == "max") return base->hist->max() * base->hist_scale;
  if (leaf == "count") return static_cast<double>(base->hist->count());
  return 0.0;
}

std::vector<Metric> MetricsRegistry::snapshot() const {
  std::vector<Metric> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    if (e.kind == Metric::Kind::kHistogram) {
      expand_histogram(e, out);
    } else {
      out.push_back(Metric{e.name, eval(e), e.kind});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Metric& a, const Metric& b) { return a.name < b.name; });
  return out;
}

std::string MetricsRegistry::to_json() const {
  JsonObject obj;
  for (const auto& m : snapshot()) obj.add(m.name, m.value);
  return obj.str();
}

}  // namespace nti::obs
