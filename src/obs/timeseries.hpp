// TimeSeriesRecorder: sampled trajectories of the sync dynamics.
//
// The probe scalars in the registry only keep "latest" and "worst"; the
// dynamics the paper (and ptp++/HyNTP-style evaluations) care about are
// trajectories -- how pi(t) converges after cold start, how the alpha-/
// alpha+ envelope breathes between resyncs, how each node's offset to the
// reference wanders.  The recorder is a column-labeled append-only table
// the Cluster probe drives once per sample, dumped as CSV (first column is
// always t_s, the simulated-time abscissa in seconds).
#pragma once

#include <cstddef>
#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace nti::obs {

class TimeSeriesRecorder {
 public:
  /// `columns` are the value-column labels (t_s is implicit, first).
  explicit TimeSeriesRecorder(std::vector<std::string> columns);

  std::size_t column_count() const { return columns_.size(); }
  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }

  /// Append one sample; `values.size()` must equal column_count().
  void add_row(double t_sec, std::span<const double> values);

  double at(std::size_t row, std::size_t col) const;
  double t_at(std::size_t row) const { return rows_[row].t_sec; }

  /// CSV: "t_s,<col0>,<col1>,..." header plus one row per sample, %.9g.
  void dump_csv(std::ostream& os) const;
  /// Convenience: dump_csv into `path`; false (and no file) on open error.
  bool write_csv(const std::string& path) const;

  void clear() { rows_.clear(); }

 private:
  struct Row {
    double t_sec;
    std::vector<double> values;
  };
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace nti::obs
