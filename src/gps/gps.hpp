// GPS timing receiver model (paper Secs. 1, 3.3, 5).
//
// A mid-1990s timing receiver emits a 1pps pulse marking each UTC second
// plus a serial message labeling the pulse.  The model produces:
//   * per-pulse error = static offset (antenna cable) + quantization
//     sawtooth (the receiver aligns the pulse to its internal clock grid)
//     + white noise;
//   * the [HS97] failure catalogue observed in the authors' two-month
//     six-receiver evaluation: offset spikes, pulse omissions, stuck
//     (free-running) pulses, wrongly labeled seconds, slow ramps.  The
//     interval-based clock *validation* of [Sch94] is exactly the defense
//     the paper proposes against these, and experiment E6 drives each
//     fault class through that code path.
//
// Simulation epoch == UTC second 0, so "truth" is trivially available to
// the experiment probes.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/time_types.hpp"
#include "sim/engine.hpp"

namespace nti::gps {

enum class FaultKind {
  kOffsetSpike,   ///< pulses displaced by `magnitude` during the window
  kOmission,      ///< pulses missing during the window
  kStuck,         ///< receiver free-runs: error ramps at `ramp_per_sec`
  kWrongSecond,   ///< serial label off by `label_offset` seconds
  kRamp,          ///< slow error ramp (failing oscillator discipline)
};

struct FaultWindow {
  FaultKind kind;
  SimTime start;
  SimTime end;
  Duration magnitude = Duration::zero();      ///< spike displacement
  Duration ramp_per_sec = Duration::zero();   ///< stuck/ramp growth rate
  std::int64_t label_offset = 0;              ///< wrong-second shift
};

struct GpsConfig {
  Duration static_offset = Duration::ns(40);      ///< cable/antenna delay
  Duration sawtooth_amplitude = Duration::ns(52); ///< internal-grid quantization
  Duration noise_sigma = Duration::ns(25);
  /// Accuracy bound the receiver *claims* per pulse (what the validation
  /// interval is built from); honest receivers satisfy it, faulty ones not.
  Duration claimed_accuracy = Duration::ns(300);
  Duration serial_delay = Duration::ms(80);       ///< pulse -> serial message
  std::vector<FaultWindow> faults;
};

/// One pulse event as seen by the node software: the hardware timestamp is
/// taken by the UTCSU GPU; the label arrives later over the serial line.
struct PpsEvent {
  SimTime true_time;          ///< when the pulse physically occurred
  std::uint64_t labeled_second;  ///< from the (possibly faulty) serial message
  Duration claimed_accuracy;  ///< receiver's per-pulse claim
  bool emitted;               ///< false when omitted by a fault
};

class GpsReceiver {
 public:
  GpsReceiver(sim::Engine& engine, GpsConfig cfg, RngStream rng);

  /// Fired at each physical pulse instant (wire this to Utcsu::pps_pulse).
  std::function<void(SimTime pulse_time)> on_pps;
  /// Fired when the serial message for second k arrives.
  std::function<void(const PpsEvent&)> on_serial;

  void start();
  void stop() { running_ = false; }

  const GpsConfig& config() const { return cfg_; }
  std::uint64_t pulses_emitted() const { return emitted_; }

 private:
  void schedule_second(std::uint64_t k);
  PpsEvent make_event(std::uint64_t k);
  const FaultWindow* active_fault(SimTime t, FaultKind kind) const;

  sim::Engine& engine_;
  GpsConfig cfg_;
  RngStream rng_;
  bool running_ = false;
  std::uint64_t emitted_ = 0;
};

}  // namespace nti::gps
