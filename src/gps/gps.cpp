#include "gps/gps.hpp"

#include <cmath>

namespace nti::gps {

GpsReceiver::GpsReceiver(sim::Engine& engine, GpsConfig cfg, RngStream rng)
    : engine_(engine), cfg_(cfg), rng_(rng) {}

void GpsReceiver::start() {
  running_ = true;
  // First pulse at the next whole second strictly after "now".
  const std::uint64_t k =
      static_cast<std::uint64_t>(engine_.now().count_ps() / 1'000'000'000'000LL) + 1;
  schedule_second(k);
}

const FaultWindow* GpsReceiver::active_fault(SimTime t, FaultKind kind) const {
  for (const auto& f : cfg_.faults) {
    if (f.kind == kind && t >= f.start && t < f.end) return &f;
  }
  return nullptr;
}

PpsEvent GpsReceiver::make_event(std::uint64_t k) {
  const SimTime nominal = SimTime::epoch() + Duration::sec(static_cast<std::int64_t>(k));
  // Sawtooth: the receiver quantizes the pulse to its internal oscillator
  // grid; modeled as a triangle wave over a ~17 s beat period.
  const double phase = static_cast<double>(k % 17) / 17.0;
  const double tri = 2.0 * std::fabs(phase - 0.5) - 0.5;  // in [-0.5, 0.5]
  Duration err = cfg_.static_offset +
                 Duration::from_sec_f(tri * cfg_.sawtooth_amplitude.to_sec_f()) +
                 Duration::from_sec_f(rng_.normal(0.0, cfg_.noise_sigma.to_sec_f()));

  PpsEvent ev;
  ev.labeled_second = k;
  ev.claimed_accuracy = cfg_.claimed_accuracy;
  ev.emitted = true;

  if (const auto* f = active_fault(nominal, FaultKind::kOmission)) {
    (void)f;
    ev.emitted = false;
  }
  if (const auto* f = active_fault(nominal, FaultKind::kOffsetSpike)) {
    err += f->magnitude;
  }
  if (const auto* f = active_fault(nominal, FaultKind::kStuck)) {
    const double secs = (nominal - f->start).to_sec_f();
    err += Duration::from_sec_f(secs * f->ramp_per_sec.to_sec_f());
  }
  if (const auto* f = active_fault(nominal, FaultKind::kRamp)) {
    const double secs = (nominal - f->start).to_sec_f();
    err += Duration::from_sec_f(secs * f->ramp_per_sec.to_sec_f());
  }
  if (const auto* f = active_fault(nominal, FaultKind::kWrongSecond)) {
    ev.labeled_second = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(k) + f->label_offset);
  }

  ev.true_time = nominal + err;
  return ev;
}

void GpsReceiver::schedule_second(std::uint64_t k) {
  const SimTime nominal = SimTime::epoch() + Duration::sec(static_cast<std::int64_t>(k));
  engine_.schedule_at(nominal - Duration::ms(500), [this, k] {
    if (!running_) return;
    const PpsEvent ev = make_event(k);
    if (ev.emitted) {
      engine_.schedule_at(ev.true_time, [this, ev] {
        ++emitted_;
        if (on_pps) on_pps(ev.true_time);
      });
      engine_.schedule_at(ev.true_time + cfg_.serial_delay, [this, ev] {
        if (on_serial) on_serial(ev);
      });
    }
    schedule_second(k + 1);
  });
}

}  // namespace nti::gps
