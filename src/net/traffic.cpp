#include "net/traffic.hpp"

namespace nti::net {

TrafficGenerator::TrafficGenerator(sim::Engine& engine, Medium& medium,
                                   TrafficConfig cfg, RngStream rng)
    : engine_(engine), medium_(medium), port_(medium.attach()), cfg_(cfg), rng_(rng) {
  // Poisson arrivals with mean inter-arrival chosen so that
  // offered_load = air_time / mean_gap.
  const double air_sec = medium_.frame_air_time(cfg_.frame_bytes).to_sec_f();
  mean_gap_sec_ = cfg_.offered_load > 0 ? air_sec / cfg_.offered_load : 0.0;
  if (cfg_.offered_load > 0) schedule_next();
}

void TrafficGenerator::schedule_next() {
  const Duration gap = Duration::from_sec_f(rng_.exponential(mean_gap_sec_));
  engine_.schedule_in(gap, [this] {
    medium_.transmit(port_, medium_.make_frame(cfg_.frame_bytes, 0xBB));
    ++sent_;
    schedule_next();
  });
}

}  // namespace nti::net
