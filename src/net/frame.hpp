// The unit of transmission on the shared medium.
//
// The byte stream itself is not simulated; a frame is an opaque payload
// plus exact wire timing: every byte's on-wire instant is computable from
// wire_start, so the COMCO models can place their DMA accesses correctly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time_types.hpp"

namespace nti::net {

struct Frame {
  int src_station = -1;
  std::vector<std::uint8_t> bytes;  ///< header + payload as laid out in memory
  std::uint64_t id = 0;             ///< unique per transmission (diagnostics)
  /// CSP span id (obs::SpanCollector), 0 for untraced frames (background
  /// traffic, plain data).  Simulation metadata like `id`: never on the wire.
  std::uint64_t trace_id = 0;
  /// Wire-level corruption: index of one flipped bit (-1 = clean).  Set by
  /// the fault tap at wire start; since the medium is a shared bus, every
  /// receiver sees the same flip.  The frame's `bytes` are filled *late*
  /// (at the sender's DMA-fill instant) on shared storage, so the flip is
  /// applied on the receive side, when the COMCO copies the byte into NTI
  /// memory -- not by mutating the shared payload.
  std::int64_t corrupt_bit = -1;
};

/// Timing handed to receivers along with the frame.
struct RxTiming {
  SimTime wire_start;  ///< first preamble bit on the wire at the sender
  SimTime rx_start;    ///< first bit at this receiver (after propagation)
  SimTime rx_end;      ///< last bit at this receiver
  Duration byte_time;  ///< serialization time of one byte
};

}  // namespace nti::net
