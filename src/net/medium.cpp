#include "net/medium.hpp"

#include <algorithm>
#include <cassert>

#include "obs/prof.hpp"

namespace nti::net {

Medium::Medium(sim::Engine& engine, MediumConfig cfg, RngStream rng)
    : engine_(engine), cfg_(cfg), rng_(rng) {
  // Quantize the configured rate once; all wire timing derives from the
  // integer rate so a run is exactly reproducible from the config.
  bit_rate_hz_ = static_cast<std::int64_t>(cfg_.bit_rate_hz);
  assert(bit_rate_hz_ > 0);
  // Truncated per-byte serialization time, used for intra-frame DMA access
  // placement (RxTiming::byte_time).  Whole-frame air time is NOT this
  // value times the byte count -- see frame_air_time().
  byte_time_ = Duration::ps(std::int64_t{8} * 1'000'000'000'000 / bit_rate_hz_);
}

MacPort& Medium::attach() {
  auto port = std::make_unique<MacPort>();
  port->station_ = static_cast<int>(ports_.size());
  ports_.push_back(std::move(port));
  return *ports_.back();
}

Duration Medium::frame_air_time(std::size_t frame_bytes) const {
  // Exact air time from the total bit count, rounded half-up to the ps
  // grid.  Multiplying a truncated per-byte time accumulated up to one ps
  // of error per byte for bit rates that do not divide 8e12 (e.g. 7 Mbit/s
  // lost 62 ps on a 72-byte frame), biasing every wire occupancy and
  // delivery instant early.  For divisible rates (10 Mbit/s default) this
  // is bit-identical to the old per-byte product.
  const auto total_bits = static_cast<unsigned __int128>(
                              frame_bytes + static_cast<std::size_t>(cfg_.preamble_bytes)) * 8u;
  const auto rate = static_cast<unsigned __int128>(bit_rate_hz_);
  const unsigned __int128 num = total_bits * 1'000'000'000'000ULL + rate / 2;
  return Duration::ps(static_cast<std::int64_t>(num / rate));
}

void Medium::record_drop(MacPort& station, const Frame& frame, SimTime t,
                         obs::DiscardReason reason) {
  ++station.drops_;
  if (trace_ != nullptr) {
    trace_->push(t, obs::TraceType::kFrameDrop, station.station_,
                 static_cast<std::int64_t>(frame.id),
                 static_cast<std::int64_t>(reason));
  }
  if (spans_ != nullptr) {
    spans_->record(frame.trace_id, obs::SpanStage::kDiscarded, t,
                   station.station_, static_cast<std::int64_t>(reason));
  }
}

bool Medium::transmit(MacPort& port, Frame frame) {
  frame.src_station = port.station_;
  frame.id = next_frame_id_++;
  if (port.queue_.size() >= cfg_.tx_queue_cap) {
    // Transmit-ring overflow: a saturated channel cannot drain offered
    // load; real controllers tail-drop exactly like this.
    ++queue_drops_;
    record_drop(port, frame, engine_.now(), obs::DiscardReason::kQueueDrop);
    return false;
  }
  port.queue_.push_back(std::move(frame));
  try_start(static_cast<std::size_t>(port.station_));
  return true;
}

void Medium::try_start(std::size_t port_idx) {
  const SimTime now = engine_.now();
  MacPort& port = *ports_[port_idx];
  if (port.queue_.empty() || port.backing_off_) return;
  if (carrier(now) || contention_scheduled_) {
    // 1-persistent: wait for the wire to clear, then contend.
    if (!contention_scheduled_) start_contention_round(busy_until_ + cfg_.inter_frame_gap);
    return;
  }
  // Idle medium: sole transmitter (simultaneous same-instant requests are
  // serialized by event order; the second sees carrier).
  begin_transmission(port_idx);
}

void Medium::start_contention_round(SimTime when) {
  contention_scheduled_ = true;
  engine_.schedule_at(when, [this] {
    contention_scheduled_ = false;
    std::vector<std::size_t> waiting;
    for (std::size_t i = 0; i < ports_.size(); ++i) {
      if (!ports_[i]->queue_.empty()) waiting.push_back(i);
    }
    if (waiting.empty()) return;
    if (carrier(engine_.now())) {  // someone grabbed it meanwhile
      start_contention_round(busy_until_ + cfg_.inter_frame_gap);
      return;
    }
    if (waiting.size() == 1) {
      begin_transmission(waiting[0]);
      return;
    }
    // Collision resolution by binary exponential backoff, resolved
    // analytically: repeat draws until a unique minimum slot emerges; each
    // non-unique round costs (min_slot + 1) slot times of jam/retry.
    SimTime start = engine_.now();
    while (true) {
      std::int64_t min_slot = -1;
      std::size_t winner = 0;
      int winners = 0;
      for (const std::size_t idx : waiting) {
        MacPort& p = *ports_[idx];
        const int exp = std::min(1 + p.attempts_, cfg_.max_backoff_exp);
        const std::int64_t slot = rng_.uniform_int(0, (std::int64_t{1} << exp) - 1);
        if (min_slot < 0 || slot < min_slot) {
          min_slot = slot;
          winner = idx;
          winners = 1;
        } else if (slot == min_slot) {
          ++winners;
        }
      }
      if (winners == 1) {
        start += cfg_.slot_time * min_slot;
        begin_transmission(winner, start);
        return;
      }
      ++collisions_;
      start += cfg_.slot_time * (min_slot + 1);
      bool someone_aborted = false;
      for (const std::size_t idx : waiting) {
        MacPort& p = *ports_[idx];
        if (++p.attempts_ >= cfg_.max_attempts) {
          Frame dropped = std::move(p.queue_.front());
          p.queue_.erase(p.queue_.begin());
          p.attempts_ = 0;
          // The abort happens at `start` -- a future instant this analytic
          // resolution has already computed past.  Running the drop
          // bookkeeping and the owner callback synchronously here stamped
          // trace/span records with a timestamp ahead of engine_.now() and
          // let retransmit logic react to an abort "before" it occurred;
          // defer both to the abort's own simulated time instead.
          engine_.schedule_at(
              start, [this, &p, dropped = std::move(dropped)]() mutable {
                ++tx_aborts_;
                record_drop(p, dropped, engine_.now(),
                            obs::DiscardReason::kTxAbort);
                if (p.on_tx_abort) p.on_tx_abort(dropped);
              });
          someone_aborted = true;
        }
      }
      if (someone_aborted) {
        std::erase_if(waiting, [this](std::size_t idx) {
          return ports_[idx]->queue_.empty();
        });
        if (waiting.empty()) return;
        if (waiting.size() == 1) {
          begin_transmission(waiting[0], start);
          return;
        }
      }
    }
  });
}

void Medium::begin_transmission(std::size_t port_idx) {
  begin_transmission(port_idx, engine_.now());
}

void Medium::begin_transmission(std::size_t port_idx, SimTime wire_start) {
  PROF_ZONE("net.medium.tx");
  MacPort& port = *ports_[port_idx];
  assert(!port.queue_.empty());
  // Move the frame into pool-backed shared ownership: several delivery
  // events need it, and the pool recycles the slot + byte buffer once the
  // last of them releases it.
  std::shared_ptr<Frame> frame = pool_.adopt(std::move(port.queue_.front()));
  port.queue_.erase(port.queue_.begin());
  port.attempts_ = 0;

  const Duration air = frame_air_time(frame->bytes.size());
  busy_until_ = wire_start + air;

  // Wire-level fault tap: one bit flip per transmission (all receivers see
  // the same corrupted signal on a shared bus).
  if (tap_ != nullptr) {
    frame->corrupt_bit = tap_->corrupt_bit(*frame);
    if (frame->corrupt_bit >= 0) {
      ++corrupted_frames_;
      if (trace_ != nullptr) {
        trace_->push(wire_start, obs::TraceType::kFaultInject, port.station_,
                     static_cast<std::int64_t>(frame->id), frame->corrupt_bit);
      }
    }
  }

  engine_.schedule_at(wire_start, [this, &port, frame, wire_start] {
    if (trace_ != nullptr) {
      trace_->push(wire_start, obs::TraceType::kFrameTx, port.station_,
                   static_cast<std::int64_t>(frame->id),
                   static_cast<std::int64_t>(frame->bytes.size()));
    }
    if (spans_ != nullptr) {
      spans_->record(frame->trace_id, obs::SpanStage::kMediumAcquire, wire_start,
                     port.station_);
    }
    if (port.on_wire_start) port.on_wire_start(wire_start, frame);
  });

  // Delivery completes when the last receiver has the final bit; a frame
  // with no receivers attached "delivers" when the wire clears.
  SimTime delivered_at = busy_until_;
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (i == port_idx) continue;
    MacPort& rx = *ports_[i];
    const auto hops = static_cast<std::int64_t>(
        i > port_idx ? i - port_idx : port_idx - i);
    const Duration prop = cfg_.propagation_per_station * hops;
    Duration extra = Duration::zero();
    if (tap_ != nullptr) {
      const obs::DiscardReason drop =
          tap_->rx_drop(frame->src_station, rx.station_, *frame);
      if (drop != obs::DiscardReason::kNone) {
        switch (drop) {
          case obs::DiscardReason::kPartition: ++partition_drops_; break;
          case obs::DiscardReason::kNodeDown: ++node_down_drops_; break;
          default: ++injected_losses_; break;
        }
        record_drop(rx, *frame, wire_start + prop, drop);
        continue;
      }
      extra = tap_->rx_extra_delay(frame->src_station, rx.station_);
    }
    RxTiming timing;
    timing.wire_start = wire_start;
    timing.rx_start = wire_start + prop + extra;
    timing.rx_end = timing.rx_start + air;
    timing.byte_time = byte_time_;
    delivered_at = std::max(delivered_at, timing.rx_end);
    engine_.schedule_at(timing.rx_start, [this, &rx, frame, timing] {
      PROF_ZONE("net.medium.rx");
      if (trace_ != nullptr) {
        trace_->push(timing.rx_start, obs::TraceType::kFrameRx, rx.station_,
                     static_cast<std::int64_t>(frame->id),
                     timing.rx_end.count_ps());
      }
      if (spans_ != nullptr) {
        spans_->record(frame->trace_id, obs::SpanStage::kOnWire, timing.rx_start,
                       rx.station_);
      }
      if (rx.on_frame) rx.on_frame(frame, timing);
    });
  }
  engine_.schedule_at(delivered_at, [this] { ++frames_delivered_; });

  // Once the wire clears, let any queued stations contend again.
  if (!contention_scheduled_) {
    bool anyone_waiting = false;
    for (const auto& p : ports_) {
      if (!p->queue_.empty() && p.get() != &port) anyone_waiting = true;
    }
    if (anyone_waiting || !port.queue_.empty()) {
      start_contention_round(busy_until_ + cfg_.inter_frame_gap);
    }
  }
}

void Medium::register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) {
  reg.add_counter(prefix + "frames_delivered", &frames_delivered_);
  reg.add_counter(prefix + "collisions", &collisions_);
  reg.add_counter(prefix + "queue_drops", &queue_drops_);
  reg.add_counter(prefix + "tx_aborts", &tx_aborts_);
  reg.add_counter(prefix + "injected_losses", &injected_losses_);
  reg.add_counter(prefix + "partition_drops", &partition_drops_);
  reg.add_counter(prefix + "node_down_drops", &node_down_drops_);
  reg.add_counter(prefix + "corrupted_frames", &corrupted_frames_);
  for (const auto& p : ports_) {
    reg.add_counter(
        prefix + "station" + std::to_string(p->station_) + ".drops",
        &p->drops_);
  }
}

}  // namespace nti::net
