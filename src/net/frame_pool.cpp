#include "net/frame_pool.hpp"

#include <utility>

namespace nti::net {

std::shared_ptr<Frame> FramePool::adopt(Frame&& f) {
  State& st = *state_;
  Frame* slot;
  if (!st.free.empty()) {
    slot = st.free.back();
    st.free.pop_back();
    ++st.slots_reused;
    *slot = std::move(f);
  } else {
    st.slab.push_back(std::make_unique<Frame>(std::move(f)));
    slot = st.slab.back().get();
  }
  // The deleter keeps the pool state alive, so frames may outlive the pool.
  return std::shared_ptr<Frame>(slot, Recycler{state_});
}

void FramePool::Recycler::operator()(Frame* f) const {
  // Steal the byte storage (capacity intact) before resetting the slot.
  std::vector<std::uint8_t> bytes = std::move(f->bytes);
  bytes.clear();
  state->buffers.push_back(std::move(bytes));
  *f = Frame{};
  state->free.push_back(f);
}

}  // namespace nti::net
