// Shared broadcast medium with CSMA/CD MAC (10 Mbit/s Ethernet-class).
//
// The paper targets class (II) systems: LANs on a shared broadcast channel
// with "almost deterministic propagation delays but considerable medium
// access uncertainty" (Sec. 1).  This model produces exactly those two
// components:
//   * propagation: fixed per-station-pair delay (cable position);
//   * medium access: 1-persistent CSMA/CD with binary exponential backoff;
//     under load, the time from transmit request to wire start is the
//     dominant, highly variable term that software timestamping (step 1 of
//     the Sec. 3.1 sequence) cannot avoid but DMA-trigger timestamping
//     (step 4) does.
//
// The byte stream itself is not simulated; a frame (net/frame.hpp) is an
// opaque payload plus exact wire timing: every byte's on-wire instant is
// computable from wire_start, so the COMCO models can place their DMA
// accesses correctly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/time_types.hpp"
#include "net/frame.hpp"
#include "net/frame_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace nti::net {

struct MediumConfig {
  double bit_rate_hz = 10e6;               ///< 10 Mbit/s Ethernet
  std::size_t tx_queue_cap = 64;           ///< per-station ring; excess dropped
  Duration slot_time = Duration::us(51);   ///< 512 bit times @10 Mbit (51.2 us)
  Duration inter_frame_gap = Duration::us(9);  ///< 96 bit times (9.6 us)
  int preamble_bytes = 8;
  int max_backoff_exp = 10;
  int max_attempts = 16;
  Duration propagation_per_station = Duration::ns(50);  ///< ~10 m cable per drop
};

class Medium;

/// Fault-injection hook consulted by the Medium on every transmission.
/// Implemented by fault::Injector; all methods must be deterministic given
/// the simulation state (draws come from a forked RngStream, consulted in
/// event order).  The default-free interface keeps net/ independent of the
/// fault library.
class MediumTap {
 public:
  virtual ~MediumTap() = default;
  /// Per-receiver verdict: kNone delivers, anything else drops the frame at
  /// `dst` with that reason (kInjectedLoss, kPartition, kNodeDown, ...).
  virtual obs::DiscardReason rx_drop(int src, int dst, const Frame& f) = 0;
  /// Extra receive-path delay at `dst` (zero for none): a delay spike.
  virtual Duration rx_extra_delay(int src, int dst) = 0;
  /// Wire-level corruption: bit index to flip in the frame, or -1 for a
  /// clean transmission.  Consulted once per frame, at wire start.
  virtual std::int64_t corrupt_bit(const Frame& f) = 0;
};

/// One station's attachment point.  The owner (a COMCO model) implements
/// the callbacks; transmission is requested through the port and the MAC
/// state machine inside Medium does carrier sense / backoff.
class MacPort {
 public:
  /// Called when the MAC wins the medium and the first preamble bit goes
  /// on the wire.  The COMCO uses it to schedule its DMA fetches at their
  /// modeled times and fill in the frame bytes.  The frame is shared with
  /// the receivers, which by construction only consume bytes at DMA-write
  /// instants that lie after the sender's DMA-read instants; callbacks
  /// keep the shared_ptr alive across their scheduled events.
  std::function<void(SimTime wire_start, const std::shared_ptr<Frame>&)> on_wire_start;
  /// Called at every other station when the first bit arrives (rx_start);
  /// the receiver schedules its own byte-accurate memory writes from the
  /// timing info.
  std::function<void(std::shared_ptr<const Frame>, const RxTiming&)> on_frame;
  /// Called when the MAC gives up after max_attempts collisions.
  std::function<void(const Frame&)> on_tx_abort;

  int station() const { return station_; }
  /// Frames this station lost to any drop cause: its own tx-queue
  /// overflows plus receive-side drops (injected loss, partition, node
  /// down).  Every increment leaves a kFrameDrop trace record.
  std::uint64_t drops() const { return drops_; }

 private:
  friend class Medium;
  int station_ = -1;
  std::vector<Frame> queue_;  ///< FIFO of frames awaiting transmission
  int attempts_ = 0;
  bool backing_off_ = false;
  std::uint64_t drops_ = 0;
};

class Medium {
 public:
  Medium(sim::Engine& engine, MediumConfig cfg, RngStream rng);

  /// Attach a new station; the returned port is owned by the Medium (stable
  /// address for the lifetime of the Medium).
  MacPort& attach();

  /// Enqueue a frame for transmission from the given port.  Returns false
  /// when the tx ring is full and the frame was tail-dropped -- the caller
  /// must not expect a wire start for it (comco::Comco keeps its pending-tx
  /// bookkeeping in sync through this).
  bool transmit(MacPort& port, Frame frame);

  /// True while a frame occupies the wire.
  bool carrier(SimTime now) const { return now < busy_until_; }

  Duration byte_time() const { return byte_time_; }
  Duration frame_air_time(std::size_t frame_bytes) const;
  const MediumConfig& config() const { return cfg_; }

  /// Build a frame whose byte buffer comes from the medium's arena when
  /// recycled storage is available (producers should prefer this over a
  /// fresh std::vector -- see net/frame_pool.hpp).
  Frame make_frame(std::size_t nbytes, std::uint8_t fill = 0) {
    return pool_.make_frame(nbytes, fill);
  }
  /// The frame arena (exposed for allocation-behaviour assertions).
  const FramePool& frame_pool() const { return pool_; }

  /// Counters for the medium-access experiments.  frames_delivered counts
  /// at *delivery time* -- the instant the last receiver has the full frame
  /// (or the wire clears, for a frame with no receivers attached) -- not
  /// when the transmission is scheduled, so a probe mid-flight never sees
  /// a frame counted before anyone could have received it.
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t collisions() const { return collisions_; }
  std::uint64_t queue_drops() const { return queue_drops_; }
  /// Frames abandoned after max_attempts collisions (excessive-collision
  /// aborts; each one also invoked its port's on_tx_abort).
  std::uint64_t tx_aborts() const { return tx_aborts_; }
  /// Fault-tap drop tallies (zero without a tap): stochastic per-receiver
  /// losses, partition cuts, crashed-node cuts, injected bit flips.
  std::uint64_t injected_losses() const { return injected_losses_; }
  std::uint64_t partition_drops() const { return partition_drops_; }
  std::uint64_t node_down_drops() const { return node_down_drops_; }
  std::uint64_t corrupted_frames() const { return corrupted_frames_; }

  /// Export the MAC counters into `reg` under `prefix` (e.g. "net.medium.");
  /// the Medium must outlive snapshots of `reg`.
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix);

  /// Record kFrameTx / kFrameRx trace entries.  Borrowed, not owned;
  /// nullptr stops tracing.
  void set_trace(obs::TraceRing* ring) { trace_ = ring; }

  /// Record CSP span stages (kMediumAcquire at wire start on the sender,
  /// kOnWire at each receiver's rx_start, kDiscarded for queue drops and
  /// excessive-collision aborts).  Borrowed, not owned; nullptr disables.
  void set_spans(obs::SpanCollector* spans) { spans_ = spans; }

  /// Install the fault-injection tap (loss / partition / delay spikes /
  /// corruption).  Borrowed, not owned; nullptr removes it.
  void set_tap(MediumTap* tap) { tap_ = tap; }

 private:
  /// Common accounting for every frame lost at `station`: per-station drop
  /// counter, kFrameDrop trace record, kDiscarded span stage.
  void record_drop(MacPort& station, const Frame& frame, SimTime t,
                   obs::DiscardReason reason);
  void try_start(std::size_t port_idx);
  void start_contention_round(SimTime when);
  void begin_transmission(std::size_t port_idx);
  void begin_transmission(std::size_t port_idx, SimTime wire_start);

  sim::Engine& engine_;
  MediumConfig cfg_;
  RngStream rng_;
  std::int64_t bit_rate_hz_ = 0;  ///< cfg_.bit_rate_hz quantized to integer
  Duration byte_time_;
  FramePool pool_;
  std::vector<std::unique_ptr<MacPort>> ports_;
  SimTime busy_until_ = SimTime::epoch();
  bool contention_scheduled_ = false;
  std::uint64_t next_frame_id_ = 1;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t collisions_ = 0;
  std::uint64_t queue_drops_ = 0;
  std::uint64_t tx_aborts_ = 0;
  std::uint64_t injected_losses_ = 0;
  std::uint64_t partition_drops_ = 0;
  std::uint64_t node_down_drops_ = 0;
  std::uint64_t corrupted_frames_ = 0;
  obs::TraceRing* trace_ = nullptr;
  obs::SpanCollector* spans_ = nullptr;
  MediumTap* tap_ = nullptr;
};

}  // namespace nti::net
