// Arena-style reuse for net::Frame objects and their byte buffers.
//
// Every transmission used to pay two heap allocations: the frame's byte
// vector at the producer (comco/traffic) and a make_shared<Frame> copy
// when the MAC moved the frame into shared ownership for delivery.  Under
// load that is the second-largest allocation source on the hot path after
// the (now slab-backed) event queue -- see docs/PERFORMANCE.md.
//
// The pool recycles both:
//   * Frame slots live in a slab of stable-address objects; releasing the
//     last shared_ptr returns the slot to a freelist instead of freeing;
//   * byte buffers are stolen from released frames and handed back to
//     producers with their capacity intact, so steady-state traffic
//     serializes frames into already-sized storage.
//
// The pool's state is shared_ptr-owned by every outstanding frame, so
// frames may outlive the pool (and the Medium) safely; recycling is
// deterministic (LIFO freelists, no time or address ordering).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/frame.hpp"

namespace nti::net {

class FramePool {
 public:
  FramePool() : state_(std::make_shared<State>()) {}

  /// Build a frame whose byte buffer reuses recycled storage when any is
  /// available; the buffer is sized to `nbytes` and filled with `fill`.
  Frame make_frame(std::size_t nbytes, std::uint8_t fill) {
    Frame f;
    if (!state_->buffers.empty()) {
      f.bytes = std::move(state_->buffers.back());
      state_->buffers.pop_back();
      ++state_->buffers_reused;
    }
    f.bytes.assign(nbytes, fill);
    return f;
  }

  /// Move `f` into pool-backed shared ownership.  When the last reference
  /// drops, the slot and its byte buffer return to the pool.
  std::shared_ptr<Frame> adopt(Frame&& f);

  /// Slots ever allocated (the high-water mark of concurrently live
  /// frames; steady state allocates no new ones).
  std::size_t slots_allocated() const { return state_->slab.size(); }
  /// Times a released slot (with its buffer capacity) was handed out again.
  std::uint64_t slots_reused() const { return state_->slots_reused; }
  std::uint64_t buffers_reused() const { return state_->buffers_reused; }

 private:
  struct State {
    std::vector<std::unique_ptr<Frame>> slab;
    std::vector<Frame*> free;
    std::vector<std::vector<std::uint8_t>> buffers;
    std::uint64_t slots_reused = 0;
    std::uint64_t buffers_reused = 0;
  };
  struct Recycler {
    std::shared_ptr<State> state;
    void operator()(Frame* f) const;
  };
  std::shared_ptr<State> state_;
};

}  // namespace nti::net
