// Background traffic generator.
//
// The medium-access uncertainty that dominates software-timestamped clock
// synchronization only appears under load (paper Secs. 1, 3.1).  This
// generator attaches ordinary stations that emit Poisson frame arrivals of
// configurable size, producing the contention the experiments sweep over.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "net/medium.hpp"
#include "sim/engine.hpp"

namespace nti::net {

struct TrafficConfig {
  double offered_load = 0.2;        ///< fraction of channel capacity
  std::size_t frame_bytes = 512;    ///< payload size per background frame
};

class TrafficGenerator {
 public:
  TrafficGenerator(sim::Engine& engine, Medium& medium, TrafficConfig cfg,
                   RngStream rng);

  std::uint64_t frames_sent() const { return sent_; }

 private:
  void schedule_next();

  sim::Engine& engine_;
  Medium& medium_;
  MacPort& port_;
  TrafficConfig cfg_;
  RngStream rng_;
  double mean_gap_sec_;
  std::uint64_t sent_ = 0;
};

}  // namespace nti::net
