// NodeCard: one complete node of Fig. 2 -- CPU + memory + UTCSU + COMCO
// (+ optionally a GPS receiver), wired together the way the MVME-162 +
// NTI MA-Module + 82596CA system of Sec. 4 is.
#pragma once

#include <memory>
#include <optional>

#include "comco/comco.hpp"
#include "gps/gps.hpp"
#include "net/medium.hpp"
#include "node/cpu.hpp"
#include "node/driver.hpp"
#include "nti/nti.hpp"
#include "osc/oscillator.hpp"
#include "sim/engine.hpp"
#include "utcsu/utcsu.hpp"

namespace nti::node {

struct NodeConfig {
  int node_id = 0;
  osc::OscConfig osc = osc::OscConfig::tcxo();
  utcsu::UtcsuConfig utcsu{};
  comco::ComcoConfig comco{};
  CpuConfig cpu{};
  StampMode mode = StampMode::kHardware;
  std::optional<gps::GpsConfig> gps;  ///< present => node has a receiver
};

class NodeCard {
 public:
  NodeCard(sim::Engine& engine, net::Medium& medium, const NodeConfig& cfg,
           RngStream rng);

  int id() const { return cfg_.node_id; }
  const NodeConfig& config() const { return cfg_; }

  osc::Oscillator& oscillator() { return *osc_; }
  utcsu::Utcsu& chip() { return *utcsu_; }
  module::Nti& nti() { return *nti_; }
  comco::Comco& comco() { return *comco_; }
  Cpu& cpu() { return *cpu_; }
  CiDriver& driver() { return *driver_; }
  gps::GpsReceiver* gps_receiver() { return gps_ ? gps_.get() : nullptr; }
  bool has_gps() const { return gps_ != nullptr; }

  /// Ground truth for experiment probes: the node's clock value at real
  /// time t (what the SNU would snapshot on a simultaneous HWSNAP pulse).
  Duration true_clock(SimTime t) { return utcsu_->clock_duration(t); }

  /// Thread one SpanCollector through every CSP-touching layer of this
  /// card (NTI CPLD triggers, COMCO DMA/overrun, driver send/ISR).  The
  /// Medium and SyncNode are wired by the scenario owner.  Borrowed, not
  /// owned; nullptr disables.
  void set_spans(obs::SpanCollector* spans) {
    nti_->set_spans(spans, cfg_.node_id);
    comco_->set_spans(spans);
    driver_->set_spans(spans);
  }

 private:
  NodeConfig cfg_;
  std::unique_ptr<osc::Oscillator> osc_;
  std::unique_ptr<utcsu::Utcsu> utcsu_;
  std::unique_ptr<module::Nti> nti_;
  std::unique_ptr<comco::Comco> comco_;
  std::unique_ptr<Cpu> cpu_;
  std::unique_ptr<CiDriver> driver_;
  std::unique_ptr<gps::GpsReceiver> gps_;
};

}  // namespace nti::node
