// Gateway port: a second network attachment served by the SAME UTCSU —
// plus the capsule wire format and the per-gateway degradation state
// machine the sharded topology layer builds on (docs/SHARDING.md).
//
// The paper provides six SSUs "to facilitate fault-tolerant (redundant)
// communications architectures or gateway nodes" (Sec. 3.3) and notes that
// WANs-of-LANs work "provided that all gateway nodes are also equipped
// with the NTI" (footnote 2).  A GatewayPort bundles the extra decode
// context: its own NTI memory/CPLD instance bound to a chosen SSU, its own
// COMCO on the second medium, its own CPU context and driver.  The primary
// driver keeps ownership of the duty-timer/GPS interrupt demux.
//
// TimeCapsule hardens the inter-segment time transfer the same way the NTI
// hardens CSPs: a monotone per-link sequence number, a CRC-8 over the
// payload (every single-bit wire corruption is detectable, exactly the
// property the stamp checksum exists for), and a capture-to-transmit
// `hold` so a retransmitted capsule stays usable — the receiver folds the
// hold into the reference point and widens the bound by rho * hold, the
// ACU deterioration law applied in software.
//
// GatewayGuard is the degradation state machine of a receiving gateway:
//
//   SYNCHRONIZED --missed/stale round--> HOLDOVER
//   HOLDOVER     --bound > ceiling----->  FREE_RUNNING  (accuracy broken)
//   HOLDOVER/FREE_RUNNING --capsule----> REJOINING
//   REJOINING    --rejoin_rounds accepts--> SYNCHRONIZED
//   REJOINING    --missed round--------> HOLDOVER
//
// In HOLDOVER the guard freewheels on the last accepted capsule: the
// synthesized offer's reference advances with the local clock while the
// offered bound deteriorates at rho per elapsed tick, quantized through
// AlphaUnits (round-up, saturating) — the gateway degrades loudly and
// never lies about accuracy, mirroring the hardware ACU's behaviour when
// resynchronization input stops.  The guard is pure state (no engine or
// hardware dependencies), so the transition law is unit-testable.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "comco/comco.hpp"
#include "net/medium.hpp"
#include "node/cpu.hpp"
#include "node/driver.hpp"
#include "node/node_card.hpp"
#include "obs/span.hpp"

namespace nti::node {

/// The unit shipped over a gateway link: the sending gateway's reference
/// interval and LTU step at capture, plus the hardening fields.
struct TimeCapsule {
  std::uint64_t seq = 0;   ///< per-link, monotone from 1 (0 = invalid)
  Duration ref;            ///< sender's current_interval ref at capture
  Duration alpha_minus;
  Duration alpha_plus;
  /// Capture-to-transmit delay measured on the sender's clock: zero on the
  /// first transmit attempt, the accumulated backoff on a retransmit, the
  /// spike size under an injected transmit delay.
  Duration hold;
  RateStep step;           ///< sender's STEP augend (rate sync)

  /// Serialized form: six 8-byte little-endian fields + trailing CRC-8.
  static constexpr std::size_t kWireBytes = 6 * 8 + 1;
  struct Wire {
    std::array<std::uint8_t, kWireBytes> bytes{};
  };
  Wire encode() const;
  /// nullopt iff the CRC-8 over the payload bytes mismatches the trailer.
  static std::optional<TimeCapsule> decode(const Wire& w);
};

/// Degradation state of a receiving gateway (one per inbound link).
enum class GatewayState : std::uint8_t {
  kSynchronized = 0,  ///< fresh capsules arriving every round
  kHoldover = 1,      ///< freewheeling on the last capsule, bound widening
  kFreeRunning = 2,   ///< bound exceeded the ceiling: accuracy broken
  kRejoining = 3,     ///< capsules flowing again, re-integrating
};

const char* to_string(GatewayState s);

struct GuardConfig {
  /// Drift bound used for the holdover deterioration, in ppm.
  // Configuration bound in ppm; the widened margin is quantized through
  // AlphaUnits before it is offered.
  double rho_ppm = 2.0;
  /// Capture-read granularity added once per synthesized offer.
  Duration granularity = Duration::ns(60);
  /// Bound ceiling: max(alpha-, alpha+) beyond it breaks accuracy.
  Duration alpha_ceiling = Duration::ms(2);
  /// Capsules with hold beyond this are rejected as stale.
  Duration stale_timeout = Duration::sec(1);
  /// Consecutive accepted capsules needed to leave REJOINING.
  int rejoin_rounds = 2;
};

/// What a gateway should feed into the local round in place of the missing
/// capsule: the last accepted interval freewheeled forward and widened.
struct HoldoverOffer {
  Duration ref;
  Duration alpha_minus;
  Duration alpha_plus;
  RateStep step;
};

class GatewayGuard {
 public:
  explicit GatewayGuard(GuardConfig cfg) : cfg_(cfg) {}

  struct Verdict {
    bool accepted = false;
    /// kCapsuleStale on duplicate/out-of-order seq or hold > stale_timeout.
    obs::DiscardReason reason = obs::DiscardReason::kNone;
    /// Hold-folded offer (valid iff accepted): ref advanced by the hold,
    /// bounds widened by rho * hold + granularity.
    HoldoverOffer offer{};
    GatewayState from = GatewayState::kSynchronized;
    GatewayState to = GatewayState::kSynchronized;  ///< from != to: transition
  };
  /// Feed a decoded (checksum-valid) capsule received at destination local
  /// clock `local_clock`.
  Verdict on_capsule(const TimeCapsule& c, Duration local_clock);

  struct RoundCheck {
    /// True when the round went unanswered and a holdover offer should be
    /// synthesized into it (false in FREE_RUNNING: a broken bound is
    /// signalled, never offered).
    bool offer_valid = false;
    HoldoverOffer offer{};
    bool accuracy_broken_now = false;  ///< ceiling crossed on this check
    GatewayState from = GatewayState::kSynchronized;
    GatewayState to = GatewayState::kSynchronized;
  };
  /// Called once per round, after the expected capsule arrival instant.
  RoundCheck on_round_check(Duration local_clock);

  GatewayState state() const { return state_; }
  std::uint64_t transitions() const { return transitions_; }
  /// Round checks that found no fresh capsule (HOLDOVER + FREE_RUNNING).
  std::uint64_t holdover_rounds() const { return holdover_rounds_; }
  /// Times the deteriorated bound crossed the ceiling.
  std::uint64_t accuracy_broken() const { return accuracy_broken_; }
  /// Widest synthesized holdover bound so far (E15's measured alpha growth).
  Duration peak_holdover_alpha() const { return peak_holdover_alpha_; }
  std::uint64_t last_seq() const { return last_seq_; }

 private:
  GatewayState shift(GatewayState to);  ///< returns previous state

  GuardConfig cfg_;
  GatewayState state_ = GatewayState::kSynchronized;
  std::uint64_t last_seq_ = 0;
  HoldoverOffer last_offer_{};   ///< hold-folded, at accept
  Duration accept_clock_;        ///< local clock at the last accept
  bool has_baseline_ = false;
  bool fresh_since_check_ = false;
  int rejoin_streak_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t holdover_rounds_ = 0;
  std::uint64_t accuracy_broken_ = 0;
  Duration peak_holdover_alpha_;
};

class GatewayPort {
 public:
  /// Attach `card` to `second_medium` through SSU `ssu_index` (1..5; SSU 0
  /// belongs to the card's primary port).
  GatewayPort(NodeCard& card, net::Medium& second_medium, int ssu_index,
              RngStream rng,
              comco::ComcoConfig comco_cfg = {}, CpuConfig cpu_cfg = {});

  CiDriver& driver() { return *driver_; }
  comco::Comco& comco() { return *comco_; }
  module::Nti& nti() { return *nti_; }

 private:
  std::unique_ptr<module::Nti> nti_;
  std::unique_ptr<comco::Comco> comco_;
  std::unique_ptr<Cpu> cpu_;
  std::unique_ptr<CiDriver> driver_;
};

}  // namespace nti::node
