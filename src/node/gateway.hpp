// Gateway port: a second network attachment served by the SAME UTCSU.
//
// The paper provides six SSUs "to facilitate fault-tolerant (redundant)
// communications architectures or gateway nodes" (Sec. 3.3) and notes that
// WANs-of-LANs work "provided that all gateway nodes are also equipped
// with the NTI" (footnote 2).  A GatewayPort bundles the extra decode
// context: its own NTI memory/CPLD instance bound to a chosen SSU, its own
// COMCO on the second medium, its own CPU context and driver.  The primary
// driver keeps ownership of the duty-timer/GPS interrupt demux.
#pragma once

#include <memory>

#include "comco/comco.hpp"
#include "net/medium.hpp"
#include "node/cpu.hpp"
#include "node/driver.hpp"
#include "node/node_card.hpp"

namespace nti::node {

class GatewayPort {
 public:
  /// Attach `card` to `second_medium` through SSU `ssu_index` (1..5; SSU 0
  /// belongs to the card's primary port).
  GatewayPort(NodeCard& card, net::Medium& second_medium, int ssu_index,
              RngStream rng,
              comco::ComcoConfig comco_cfg = {}, CpuConfig cpu_cfg = {});

  CiDriver& driver() { return *driver_; }
  comco::Comco& comco() { return *comco_; }
  module::Nti& nti() { return *nti_; }

 private:
  std::unique_ptr<module::Nti> nti_;
  std::unique_ptr<comco::Comco> comco_;
  std::unique_ptr<Cpu> cpu_;
  std::unique_ptr<CiDriver> driver_;
};

}  // namespace nti::node
