// CPU / interrupt model (MVME-162-class board running pSOS+m, paper Sec. 4).
//
// What matters for clock synchronization is the *latency distribution* of
// getting from a hardware event to the instruction that reads a clock:
//   * ISR dispatch: base + jitter, occasionally stretched by code sections
//     executing with interrupts disabled (paper Sec. 3.1: "seriously
//     impaired by code segments with interrupts disabled");
//   * task level: ISR -> task wakeup through the kernel scheduler, an order
//     of magnitude larger and heavily load-dependent.
// These two draws are exactly the difference between the software,
// interrupt-based, and hardware timestamping methods compared in E4.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "common/time_types.hpp"
#include "sim/engine.hpp"

namespace nti::node {

struct CpuConfig {
  Duration isr_base = Duration::us(12);
  Duration isr_jitter = Duration::us(10);
  double int_disabled_prob = 0.08;           ///< P(hit a masked section)
  Duration int_disabled_max = Duration::us(60);
  Duration task_base = Duration::us(80);     ///< ISR -> task-level handover
  Duration task_jitter = Duration::us(500);
};

class Cpu {
 public:
  Cpu(sim::Engine& engine, CpuConfig cfg, RngStream rng)
      : engine_(engine), cfg_(cfg), rng_(rng) {}

  /// Deliver a vectored interrupt; `isr` runs after the dispatch latency.
  void request_interrupt(std::uint8_t vector) {
    const Duration latency = draw_isr_latency();
    engine_.schedule_in(latency, [this, vector] {
      if (isr) isr(vector);
    });
  }

  /// Handler installed by the driver.
  std::function<void(std::uint8_t vector)> isr;

  /// Schedule work at task level (through the kernel scheduler).
  void defer_to_task(std::function<void()> fn) {
    engine_.schedule_in(draw_task_latency(), std::move(fn));
  }

  Duration draw_isr_latency() {
    Duration d = cfg_.isr_base + rng_.uniform(Duration::zero(), cfg_.isr_jitter);
    if (rng_.chance(cfg_.int_disabled_prob)) {
      d += rng_.uniform(Duration::zero(), cfg_.int_disabled_max);
    }
    return d;
  }

  Duration draw_task_latency() {
    return cfg_.task_base + rng_.uniform(Duration::zero(), cfg_.task_jitter);
  }

  sim::Engine& engine() { return engine_; }

 private:
  sim::Engine& engine_;
  CpuConfig cfg_;
  RngStream rng_;
};

}  // namespace nti::node
