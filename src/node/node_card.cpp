#include "node/node_card.hpp"

namespace nti::node {

NodeCard::NodeCard(sim::Engine& engine, net::Medium& medium,
                   const NodeConfig& cfg, RngStream rng)
    : cfg_(cfg) {
  const auto uid = static_cast<std::uint64_t>(cfg.node_id);
  osc_ = osc::make_oscillator(cfg.osc, rng.fork("osc", uid));
  utcsu_ = std::make_unique<utcsu::Utcsu>(engine, *osc_, cfg.utcsu);
  nti_ = std::make_unique<module::Nti>(*utcsu_);
  comco_ = std::make_unique<comco::Comco>(engine, *nti_, medium, cfg.comco,
                                          rng.fork("comco", uid));
  cpu_ = std::make_unique<Cpu>(engine, cfg.cpu, rng.fork("cpu", uid));
  driver_ = std::make_unique<CiDriver>(*cpu_, *nti_, *comco_, cfg.node_id, cfg.mode);

  if (cfg.gps) {
    gps_ = std::make_unique<gps::GpsReceiver>(engine, *cfg.gps, rng.fork("gps", uid));
    // 1pps wired to GPU 0 of the UTCSU (front-panel D-sub, Sec. 3.2).
    gps_->on_pps = [this](SimTime t) { utcsu_->pps_pulse(0, t); };
    gps_->start();
  }
}

}  // namespace nti::node
