// COMCO driver: the pSOS+m add-on of paper Sec. 4 (Fig. 9).
//
// The driver multiplexes three message-passing interfaces onto one COMCO:
//   KI  kernel interface   (pSOS+m remote objects / RPC)
//   NI  network interface  (pNA+ TCP/IP sockets)
//   CI  clock interface    (clock synchronization packets)
// Only CI frames are CSPs and carry hardware stamps, but *every* received
// frame lands in a receive-header slot and therefore fires the RECEIVE
// trigger -- the driver must consume the stamp and discard it for non-CSP
// frames, exactly the footnote-4 situation the Receive-Header-Base
// register exists for.
//
// Interrupt flow on reception:
//   1. RECEIVE trigger -> UTCSU INTN -> NTI vectored IRQ -> isr_nti():
//      read Receive Header Base, read SSU RX stamp registers, park the
//      stamp in driver RAM keyed by the header address, ack, re-enable.
//      If a second trigger beat the ISR (back-to-back frames), the SSU
//      overrun bit is set and the *older* stamp is unrecoverable: that
//      packet is delivered with rx_stamp_valid = false.
//   2. COMCO rx-complete IRQ -> isr_rx(): parse the header, pick up the
//      saved stamp, hand the CSP to the CI client (or count KI/NI data).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "comco/comco.hpp"
#include "node/cpu.hpp"
#include "nti/nti.hpp"
#include "utcsu/stamp.hpp"

namespace nti::node {

/// Where timestamps are taken; selects the paper's Sec. 5 method ladder.
enum class StampMode {
  kHardware,   ///< NTI DMA triggers (the paper's contribution)
  kInterrupt,  ///< clock read in the completion ISRs (CSU-class, [KO87])
  kSoftware,   ///< clock read at task level (purely software approaches)
};

struct RxCsp {
  std::vector<std::uint8_t> payload;
  int src_node = -1;
  std::uint64_t trace_id = 0;     ///< CSP span id (0 when tracing is off)
  utcsu::DecodedStamp tx_stamp;   ///< sender's stamp from the wire (HW mode)
  utcsu::DecodedStamp rx_stamp;   ///< local SSU stamp (HW mode)
  bool rx_stamp_valid = false;
  std::uint32_t rx_raw_timestamp = 0;   ///< raw register words of rx_stamp
  std::uint32_t rx_raw_macrostamp = 0;  ///< (echoed verbatim by RTT replies)
  Duration rx_clock_isr;          ///< local clock read in the rx ISR
  Duration rx_clock_task;         ///< local clock read at task level
  SimTime delivered_at;           ///< sim time of CI delivery (task level)
};

struct DriverStats {
  std::uint64_t csp_sent = 0;
  std::uint64_t csp_received = 0;
  std::uint64_t non_csp_received = 0;
  std::uint64_t stamps_lost_overrun = 0;
  std::uint64_t stamps_stale = 0;  ///< leftover stamp from a reused rx slot
  std::uint64_t checksum_failures = 0;
  std::uint64_t tx_aborts = 0;
};

class CiDriver {
 public:
  CiDriver(Cpu& cpu, module::Nti& nti, comco::Comco& comco, int node_id,
           StampMode mode = StampMode::kHardware);

  /// Send a CSP carrying `payload`.  In HW mode the transmit stamp is
  /// inserted on the fly by the CPLD/UTCSU; in software mode the caller is
  /// expected to have embedded its own clock reading in the payload.
  void send_csp(std::span<const std::uint8_t> payload);

  /// Send an ordinary data frame on behalf of KI or NI (exercises the
  /// discard path at every receiver).
  void send_data(std::uint16_t ethertype, std::size_t payload_bytes);

  /// CI client callback (the clock synchronization algorithm).
  std::function<void(const RxCsp&)> on_csp;
  /// Duty-timer interrupt (INTT) demultiplexed to the timer index.
  std::function<void(int timer)> on_duty;
  /// GPS 1pps capture interrupt (INTA) demultiplexed to the GPU index.
  std::function<void(int gpu)> on_gps;

  /// Unmask additional UTCSU interrupt sources (duty timers, GPUs).
  void enable_int_sources(std::uint32_t bits);

  /// Open a span per sent CSP (kSendRequest root) and record kIsrAssoc when
  /// the INTN ISR parks a receive stamp.  Borrowed, not owned; nullptr
  /// disables tracing (every transmit then carries trace id 0).
  void set_spans(obs::SpanCollector* spans) { spans_ = spans; }

  /// NTI/COMCO-layer fault hooks (installed by fault::Injector; unset =
  /// healthy hardware).  Consulted in the INTN ISR when a receive stamp is
  /// waiting:
  ///   fault_miss_trigger  true => the RECEIVE trigger was lost (CPLD glitch
  ///     / race): the stamp is not parked, so the packet is delivered with
  ///     rx_stamp_valid = false and the CSA discards it as invalid.
  ///   fault_stale_latch  true => the SSU latch failed to update: the
  ///     *previous* capture's registers are parked for this packet.  The
  ///     driver's freshness check catches stale stamps older than one
  ///     frame-plus-ISR window; younger ones model a genuinely faulty node.
  std::function<bool()> fault_miss_trigger;
  std::function<bool()> fault_stale_latch;

  /// Whether this driver demultiplexes duty-timer / GPS interrupts.  On a
  /// gateway node several drivers share one UTCSU; exactly one of them
  /// (the primary) must own the INTT/INTA demux, or they race to ack the
  /// same status bits.
  bool demux_timers = true;

  const DriverStats& stats() const { return stats_; }
  int node_id() const { return node_id_; }
  StampMode mode() const { return mode_; }

  /// Clock helper: full 56-bit time via the atomic timestamp+macrostamp
  /// register pair, as driver software would read it.
  Duration read_clock(SimTime now);

 private:
  void isr_nti(std::uint8_t vector);
  void isr_rx_complete(int rx_slot, std::size_t payload_len);
  void provision(int rx_slot);
  int alloc_tx_slot() { return tx_next_++ % module::kNumTxHeaders; }

  struct SavedStamp {
    std::uint32_t timestamp = 0;
    std::uint32_t macrostamp = 0;
    std::uint32_t alpha = 0;
  };

  Cpu& cpu_;
  module::Nti& nti_;
  comco::Comco& comco_;
  int node_id_;
  StampMode mode_;
  DriverStats stats_;
  /// Stamps parked by the INTN ISR, keyed by receive-header address, until
  /// the rx-complete ISR picks them up (see isr_nti for why they cannot
  /// live in the header itself).
  std::map<module::Addr, SavedStamp> saved_stamps_;
  SavedStamp last_latch_{};   ///< previous capture (stale-latch injection)
  bool have_last_latch_ = false;
  int tx_next_ = 0;
  std::uint32_t seq_ = 0;
  obs::SpanCollector* spans_ = nullptr;
  static constexpr int kRxRingDepth = 16;
};

}  // namespace nti::node
