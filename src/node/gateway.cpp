#include "node/gateway.hpp"

#include <algorithm>
#include <cassert>
#include <span>

#include "common/checksum.hpp"

namespace nti::node {

namespace {

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

/// rho-ppm deterioration margin over a locally measured elapsed time.
// rho is a spec-sheet ppm figure; the margin is re-quantized to integer
// picoseconds (and AlphaUnits downstream).
Duration rho_margin(Duration elapsed, double rho_ppm) {
  return Duration::from_sec_f(elapsed.to_sec_f() * rho_ppm * 1e-6);
}

/// The ACU quantization applied to every bound this layer synthesizes:
/// round-up saturating to 2^-24 s units, back to the duration the ALPHA
/// registers would report.  A stale bound must never silently shrink.
Duration quantize_alpha(Duration d) {
  return AlphaUnits::from_duration(d).to_duration();
}

}  // namespace

const char* to_string(GatewayState s) {
  switch (s) {
    case GatewayState::kSynchronized: return "synchronized";
    case GatewayState::kHoldover: return "holdover";
    case GatewayState::kFreeRunning: return "free_running";
    case GatewayState::kRejoining: return "rejoining";
  }
  return "?";
}

TimeCapsule::Wire TimeCapsule::encode() const {
  Wire w;
  put_u64(&w.bytes[0], seq);
  put_u64(&w.bytes[8], static_cast<std::uint64_t>(ref.count_ps()));
  put_u64(&w.bytes[16], static_cast<std::uint64_t>(alpha_minus.count_ps()));
  put_u64(&w.bytes[24], static_cast<std::uint64_t>(alpha_plus.count_ps()));
  put_u64(&w.bytes[32], static_cast<std::uint64_t>(hold.count_ps()));
  put_u64(&w.bytes[40], step.reg64());
  w.bytes[48] = crc8(std::span<const std::uint8_t>(w.bytes.data(), 48));
  return w;
}

std::optional<TimeCapsule> TimeCapsule::decode(const Wire& w) {
  if (crc8(std::span<const std::uint8_t>(w.bytes.data(), 48)) != w.bytes[48]) {
    return std::nullopt;  // CRC-8 catches every single-bit wire flip
  }
  TimeCapsule c;
  c.seq = get_u64(&w.bytes[0]);
  c.ref = Duration::ps(static_cast<std::int64_t>(get_u64(&w.bytes[8])));
  c.alpha_minus = Duration::ps(static_cast<std::int64_t>(get_u64(&w.bytes[16])));
  c.alpha_plus = Duration::ps(static_cast<std::int64_t>(get_u64(&w.bytes[24])));
  c.hold = Duration::ps(static_cast<std::int64_t>(get_u64(&w.bytes[32])));
  c.step = RateStep::raw(static_cast<std::int64_t>(get_u64(&w.bytes[40])));
  return c;
}

GatewayState GatewayGuard::shift(GatewayState to) {
  const GatewayState from = state_;
  if (from != to) {
    state_ = to;
    ++transitions_;
  }
  return from;
}

GatewayGuard::Verdict GatewayGuard::on_capsule(const TimeCapsule& c,
                                               Duration local_clock) {
  Verdict v;
  v.from = state_;
  v.to = state_;
  if (c.seq <= last_seq_ || c.hold > cfg_.stale_timeout) {
    // Duplicate / out-of-order (a superseded retransmit racing a fresh
    // capture) or held past the staleness cut: either way the payload is
    // too old to bound the sender's clock usefully.
    v.reason = obs::DiscardReason::kCapsuleStale;
    return v;
  }
  v.accepted = true;
  last_seq_ = c.seq;
  // Fold the hold: the capture interval contained the sender's true time
  // `hold` sender-clock units before transmit, so advance the reference by
  // it and pay rho over it — the deterioration law, applied at the sender's
  // advertised drift bound.
  last_offer_.ref = c.ref + c.hold;
  last_offer_.alpha_minus = quantize_alpha(
      c.alpha_minus + rho_margin(c.hold, cfg_.rho_ppm) + cfg_.granularity);
  last_offer_.alpha_plus = quantize_alpha(
      c.alpha_plus + rho_margin(c.hold, cfg_.rho_ppm) + cfg_.granularity);
  last_offer_.step = c.step;
  accept_clock_ = local_clock;
  has_baseline_ = true;
  fresh_since_check_ = true;
  v.offer = last_offer_;

  switch (state_) {
    case GatewayState::kSynchronized:
      break;
    case GatewayState::kHoldover:
    case GatewayState::kFreeRunning:
      rejoin_streak_ = 1;
      v.from = shift(rejoin_streak_ >= cfg_.rejoin_rounds
                         ? GatewayState::kSynchronized
                         : GatewayState::kRejoining);
      v.to = state_;
      break;
    case GatewayState::kRejoining:
      ++rejoin_streak_;
      if (rejoin_streak_ >= cfg_.rejoin_rounds) {
        v.from = shift(GatewayState::kSynchronized);
        v.to = state_;
      }
      break;
  }
  return v;
}

GatewayGuard::RoundCheck GatewayGuard::on_round_check(Duration local_clock) {
  RoundCheck rc;
  rc.from = state_;
  rc.to = state_;
  if (fresh_since_check_) {
    // The round was answered by a real capsule; nothing to synthesize.
    fresh_since_check_ = false;
    return rc;
  }
  if (!has_baseline_) return rc;  // nothing ever arrived: nothing to degrade
  ++holdover_rounds_;
  if (state_ == GatewayState::kSynchronized ||
      state_ == GatewayState::kRejoining) {
    // A missed round during REJOINING resets the streak: re-integration
    // requires rejoin_rounds *consecutive* accepts.
    rejoin_streak_ = 0;
    rc.from = shift(GatewayState::kHoldover);
    rc.to = state_;
  }

  // Freewheel: the last accepted offer bounded the sender's clock at
  // accept_clock_; `elapsed` local ticks later the reference has advanced
  // with the local clock (the rate baseline) and the bound has deteriorated
  // by rho per tick — exactly what the ACU does to the local interval when
  // resynchronization input stops.
  const Duration elapsed = std::max(Duration::zero(), local_clock - accept_clock_);
  const Duration widen = rho_margin(elapsed, cfg_.rho_ppm) + cfg_.granularity;
  HoldoverOffer o;
  o.ref = last_offer_.ref + elapsed;
  o.alpha_minus = quantize_alpha(last_offer_.alpha_minus + widen);
  o.alpha_plus = quantize_alpha(last_offer_.alpha_plus + widen);
  o.step = last_offer_.step;
  const Duration worst = std::max(o.alpha_minus, o.alpha_plus);
  if (state_ == GatewayState::kHoldover) {
    peak_holdover_alpha_ = std::max(peak_holdover_alpha_, worst);
  }
  if (worst > cfg_.alpha_ceiling) {
    if (state_ != GatewayState::kFreeRunning) {
      rc.from = shift(GatewayState::kFreeRunning);
      rc.to = state_;
      rc.accuracy_broken_now = true;
      ++accuracy_broken_;
    }
    return rc;  // broken accuracy is signalled, never offered
  }
  rc.offer_valid = true;
  rc.offer = o;
  return rc;
}

GatewayPort::GatewayPort(NodeCard& card, net::Medium& second_medium,
                         int ssu_index, RngStream rng,
                         comco::ComcoConfig comco_cfg, CpuConfig cpu_cfg) {
  assert(ssu_index >= 1 && ssu_index < utcsu::kNumSsu &&
         "SSU 0 belongs to the primary port");
  nti_ = std::make_unique<module::Nti>(card.chip(), module::CpldProgram{},
                                       ssu_index);
  comco_ = std::make_unique<comco::Comco>(card.cpu().engine(), *nti_,
                                          second_medium, comco_cfg,
                                          rng.fork("gw-comco",
                                                   static_cast<std::uint64_t>(ssu_index)));
  cpu_ = std::make_unique<Cpu>(card.cpu().engine(), cpu_cfg,
                               rng.fork("gw-cpu",
                                        static_cast<std::uint64_t>(ssu_index)));
  driver_ = std::make_unique<CiDriver>(*cpu_, *nti_, *comco_, card.id());
  // The primary driver owns the duty-timer/GPS demux (see driver.hpp).
  driver_->demux_timers = false;
}

}  // namespace nti::node
