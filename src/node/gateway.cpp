#include "node/gateway.hpp"

#include <cassert>

namespace nti::node {

GatewayPort::GatewayPort(NodeCard& card, net::Medium& second_medium,
                         int ssu_index, RngStream rng,
                         comco::ComcoConfig comco_cfg, CpuConfig cpu_cfg) {
  assert(ssu_index >= 1 && ssu_index < utcsu::kNumSsu &&
         "SSU 0 belongs to the primary port");
  nti_ = std::make_unique<module::Nti>(card.chip(), module::CpldProgram{},
                                       ssu_index);
  comco_ = std::make_unique<comco::Comco>(card.cpu().engine(), *nti_,
                                          second_medium, comco_cfg,
                                          rng.fork("gw-comco",
                                                   static_cast<std::uint64_t>(ssu_index)));
  cpu_ = std::make_unique<Cpu>(card.cpu().engine(), cpu_cfg,
                               rng.fork("gw-cpu",
                                        static_cast<std::uint64_t>(ssu_index)));
  driver_ = std::make_unique<CiDriver>(*cpu_, *nti_, *comco_, card.id());
  // The primary driver owns the duty-timer/GPS demux (see driver.hpp).
  driver_->demux_timers = false;
}

}  // namespace nti::node
