#include "node/driver.hpp"

#include <cassert>

#include "common/log.hpp"
#include "utcsu/regs.hpp"

namespace nti::node {

using module::Addr;
using module::kCpuUtcsuBase;

namespace {
// Data-buffer carving inside the 60 KB Data Buffers region (Fig. 6):
// 128 x 256 B transmit buffers, then 16 x 256 B receive buffers.
constexpr Addr kTxDataStride = 256;
constexpr Addr kRxDataStride = 256;
constexpr Addr kRxDataBase = module::kDataBufferBase + 128 * kTxDataStride;

Addr tx_data_addr(int slot) {
  return module::kDataBufferBase + static_cast<Addr>(slot) * kTxDataStride;
}
Addr rx_data_addr(int slot) {
  return kRxDataBase + static_cast<Addr>(slot) * kRxDataStride;
}

// Header-word offsets used by the driver's frame layout (see comco.hpp).
constexpr Addr kHdrDest = 0x00;
constexpr Addr kHdrSrc = 0x08;
constexpr Addr kHdrTypeLen = 0x0C;
constexpr Addr kHdrSeq = 0x10;
}  // namespace

CiDriver::CiDriver(Cpu& cpu, module::Nti& nti, comco::Comco& comco, int node_id,
                   StampMode mode)
    : cpu_(cpu), nti_(nti), comco_(comco), node_id_(node_id), mode_(mode) {
  // Wire the NTI's vectored interrupt through the CPU dispatch model.
  nti_.on_irq = [this](std::uint8_t vector) { cpu_.request_interrupt(vector); };
  cpu_.isr = [this](std::uint8_t vector) { isr_nti(vector); };

  // COMCO completion interrupts (separate line on the MVME-162).
  comco_.on_rx_complete = [this](int slot, std::size_t len) {
    cpu_.engine().schedule_in(cpu_.draw_isr_latency(),
                              [this, slot, len] { isr_rx_complete(slot, len); });
  };
  comco_.on_tx_abort = [this](int) { ++stats_.tx_aborts; };

  const SimTime now = cpu_.engine().now();
  // Program the NTI: vector base, enable the module interrupt logic.
  nti_.io_write16(module::kIoVectorBase, 0x40);
  nti_.io_write16(module::kIoIntEnable, 1);
  // Unmask the RECEIVE interrupt of our SSU in the UTCSU (read-modify-
  // write: a gateway node runs several drivers against one chip).
  const std::uint32_t rx_bit =
      utcsu::int_bit(utcsu::IntSource::kSsuRx0, nti_.ssu_index());
  const std::uint32_t cur =
      nti_.cpu_read32(now, kCpuUtcsuBase + utcsu::kRegIntEnable);
  nti_.cpu_write32(now, kCpuUtcsuBase + utcsu::kRegIntEnable, cur | rx_bit);

  for (int slot = 0; slot < kRxRingDepth; ++slot) provision(slot);
}

void CiDriver::provision(int rx_slot) {
  comco_.provision_rx(rx_slot, rx_data_addr(rx_slot), kRxDataStride);
}

Duration CiDriver::read_clock(SimTime now) {
  const std::uint32_t ts = nti_.cpu_read32(now, kCpuUtcsuBase + utcsu::kRegTimestamp);
  const std::uint32_t macro =
      nti_.cpu_read32(now, kCpuUtcsuBase + utcsu::kRegMacrostamp);
  return utcsu::decode_stamp(ts, macro, 0).time();
}

void CiDriver::send_csp(std::span<const std::uint8_t> payload) {
  const SimTime now = cpu_.engine().now();
  const int slot = alloc_tx_slot();
  const Addr hdr = module::Nti::tx_header_addr(slot);
  nti_.cpu_write32(now, hdr + kHdrDest, 0xFFFF'FFFF);
  nti_.cpu_write32(now, hdr + kHdrDest + 4, 0xFFFF'FFFF);
  nti_.cpu_write32(now, hdr + kHdrSrc, static_cast<std::uint32_t>(node_id_));
  nti_.cpu_write32(now, hdr + kHdrTypeLen,
                   comco::kEthertypeCsp |
                       (static_cast<std::uint32_t>(payload.size()) << 16));
  nti_.cpu_write32(now, hdr + kHdrSeq, seq_++);
  const Addr data = tx_data_addr(slot);
  for (std::size_t i = 0; i < payload.size(); i += 4) {
    std::uint32_t w = 0;
    for (std::size_t b = 0; b < 4 && i + b < payload.size(); ++b) {
      w |= std::uint32_t{payload[i + b]} << (8 * b);
    }
    nti_.cpu_write32(now, data + static_cast<Addr>(i), w);
  }
  const std::uint64_t trace =
      spans_ != nullptr ? spans_->begin_csp(node_id_, now) : 0;
  comco_.transmit(slot, data, payload.size(), trace);
  ++stats_.csp_sent;
}

void CiDriver::send_data(std::uint16_t ethertype, std::size_t payload_bytes) {
  const SimTime now = cpu_.engine().now();
  const int slot = alloc_tx_slot();
  const Addr hdr = module::Nti::tx_header_addr(slot);
  nti_.cpu_write32(now, hdr + kHdrDest, 0xFFFF'FFFF);
  nti_.cpu_write32(now, hdr + kHdrSrc, static_cast<std::uint32_t>(node_id_));
  nti_.cpu_write32(now, hdr + kHdrTypeLen,
                   std::uint32_t{ethertype} |
                       (static_cast<std::uint32_t>(payload_bytes) << 16));
  nti_.cpu_write32(now, hdr + kHdrSeq, seq_++);
  comco_.transmit(slot, tx_data_addr(slot), payload_bytes);
}

void CiDriver::isr_nti(std::uint8_t vector) {
  const SimTime now = cpu_.engine().now();
  Log::trace(LogCat::kNode, now, "node%d isr_nti vector=0x%02x", node_id_, vector);
  if (vector & 1u) {  // INTN: a receive stamp is waiting in the SSU
    const int ssu = nti_.ssu_index();
    const Addr ssu_base = kCpuUtcsuBase + utcsu::kRegSsuBase +
                          static_cast<Addr>(ssu) * utcsu::kSsuStride;
    const std::uint32_t status = nti_.cpu_read32(now, ssu_base + utcsu::kSsuStatus);
    if (status & utcsu::kSsuStatusRxOverrun) {
      // A back-to-back frame overwrote an unread stamp (footnote 4): the
      // older packet's stamp is gone.  The latched header base still
      // matches the *latest* stamp, so we proceed with that one.
      ++stats_.stamps_lost_overrun;
    }
    Log::trace(LogCat::kNode, now, "node%d INTN ssu_status=0x%x", node_id_, status);
    if (status & utcsu::kSsuStatusRxValid) {
      // Move the stamp out of the SSU before the next CSP overwrites it,
      // and associate it with its packet via the Receive-Header-Base latch
      // (paper Sec. 3.4).  It is parked in driver RAM rather than in the
      // header itself: the COMCO's end-of-frame burst still writes the
      // remaining header words and would clobber anything stored there.
      const std::uint16_t base64 = nti_.io_read16(module::kIoRxHeaderBase);
      const Addr hdr = static_cast<Addr>(base64) << 6;
      if (spans_ != nullptr) {
        const int rx_slot = static_cast<int>((hdr - module::kRxHeaderBase) /
                                             module::kHeaderBytes);
        spans_->record(comco_.rx_trace(rx_slot), obs::SpanStage::kIsrAssoc, now,
                       node_id_);
      }
      SavedStamp saved;
      saved.timestamp = nti_.cpu_read32(now, ssu_base + utcsu::kSsuRxTimestamp);
      saved.macrostamp = nti_.cpu_read32(now, ssu_base + utcsu::kSsuRxMacro);
      saved.alpha = nti_.cpu_read32(now, ssu_base + utcsu::kSsuRxAlpha);
      if (fault_stale_latch && have_last_latch_ && fault_stale_latch()) {
        // Injected SSU latch failure: the registers still hold the previous
        // capture, so that is what gets parked for this packet.
        saved_stamps_[hdr] = last_latch_;
      } else if (fault_miss_trigger && fault_miss_trigger()) {
        // Injected lost RECEIVE trigger: no capture happened for this
        // packet, nothing to park (the ISR still acks the spurious status).
        saved_stamps_.erase(hdr);
      } else {
        saved_stamps_[hdr] = saved;
      }
      last_latch_ = saved;
      have_last_latch_ = true;
      // Ack the SSU and the UTCSU interrupt source.
      nti_.cpu_write32(now, ssu_base + utcsu::kSsuStatus,
                       utcsu::kSsuStatusRxValid | utcsu::kSsuStatusRxOverrun);
      nti_.cpu_write32(now, kCpuUtcsuBase + utcsu::kRegIntAck,
                       utcsu::int_bit(utcsu::IntSource::kSsuRx0, ssu));
    }
  }
  if (demux_timers && (vector & (2u | 4u))) {  // INTT / INTA demux (primary driver only)
    const std::uint32_t status =
        nti_.cpu_read32(now, kCpuUtcsuBase + utcsu::kRegIntStatus);
    std::uint32_t ack = 0;
    for (int i = 0; i < utcsu::kNumDutyTimers; ++i) {
      const std::uint32_t bit = utcsu::int_bit(utcsu::IntSource::kDuty0, i);
      if (status & bit) {
        ack |= bit;
        if (on_duty) on_duty(i);
      }
    }
    for (int i = 0; i < utcsu::kNumGpu; ++i) {
      const std::uint32_t bit = utcsu::int_bit(utcsu::IntSource::kGpu0, i);
      if (status & bit) {
        ack |= bit;
        if (on_gps) on_gps(i);
      }
    }
    if (ack != 0) {
      nti_.cpu_write32(now, kCpuUtcsuBase + utcsu::kRegIntAck, ack);
    }
  }
  // Re-enable the NTI interrupt logic just before "returning" (Sec. 3.4).
  nti_.io_write16(module::kIoIntEnable, 1);
}

void CiDriver::enable_int_sources(std::uint32_t bits) {
  const SimTime now = cpu_.engine().now();
  const std::uint32_t cur =
      nti_.cpu_read32(now, kCpuUtcsuBase + utcsu::kRegIntEnable);
  nti_.cpu_write32(now, kCpuUtcsuBase + utcsu::kRegIntEnable, cur | bits);
}

void CiDriver::isr_rx_complete(int rx_slot, std::size_t payload_len) {
  const SimTime now = cpu_.engine().now();
  Log::trace(LogCat::kNode, now, "node%d rx_complete slot=%d len=%zu", node_id_,
             rx_slot, payload_len);
  const Addr hdr = module::Nti::rx_header_addr(rx_slot);
  const std::uint32_t type_len = nti_.cpu_read32(now, hdr + kHdrTypeLen);
  const auto ethertype = static_cast<std::uint16_t>(type_len & 0xFFFF);

  if (ethertype != comco::kEthertypeCsp) {
    // KI / NI data (or background noise): consume and discard any stamp
    // the hardware took for it -- the footnote-4 discard path.
    ++stats_.non_csp_received;
    saved_stamps_.erase(hdr);
    provision(rx_slot);
    return;
  }

  RxCsp csp;
  csp.src_node = static_cast<int>(nti_.cpu_read32(now, hdr + kHdrSrc));
  csp.trace_id = comco_.rx_trace(rx_slot);
  csp.rx_clock_isr = read_clock(now);
  csp.tx_stamp = utcsu::decode_stamp(
      nti_.cpu_read32(now, hdr + nti_.program().tx_map_timestamp),
      nti_.cpu_read32(now, hdr + nti_.program().tx_map_macrostamp),
      nti_.cpu_read32(now, hdr + nti_.program().tx_map_alpha));
  // Wire corruption of the sender's mapped stamp words lands here: count it
  // so transmission errors are never silently absorbed (the CSA separately
  // discards the observation as invalid).
  if (!csp.tx_stamp.checksum_ok) ++stats_.checksum_failures;
  if (const auto it = saved_stamps_.find(hdr); it != saved_stamps_.end()) {
    csp.rx_raw_timestamp = it->second.timestamp;
    csp.rx_raw_macrostamp = it->second.macrostamp;
    csp.rx_stamp = utcsu::decode_stamp(it->second.timestamp,
                                       it->second.macrostamp, it->second.alpha);
    csp.rx_stamp_valid = csp.rx_stamp.checksum_ok;
    if (!csp.rx_stamp.checksum_ok) ++stats_.checksum_failures;
    // Freshness check: if this packet's own stamp was lost (late INTN ISR
    // after a back-to-back burst), a leftover entry from the *previous*
    // occupant of this header slot could still be parked here.  A stamp
    // taken more than one frame-plus-ISR window ago cannot belong to this
    // packet; using it would corrupt the drift compensation by seconds.
    const Duration age = csp.rx_clock_isr - csp.rx_stamp.time();
    if (age < Duration::zero() || age > Duration::ms(50)) {
      csp.rx_stamp_valid = false;
      ++stats_.stamps_stale;
    }
    saved_stamps_.erase(it);
  }

  const std::uint32_t wire_len = type_len >> 16;
  const std::size_t len = std::min<std::size_t>(payload_len, wire_len);
  csp.payload.resize(len);
  const Addr data = rx_data_addr(rx_slot);
  for (std::size_t i = 0; i < len; i += 4) {
    const std::uint32_t w = nti_.cpu_read32(now, data + static_cast<Addr>(i));
    for (std::size_t b = 0; b < 4 && i + b < len; ++b) {
      csp.payload[i + b] = static_cast<std::uint8_t>(w >> (8 * b));
    }
  }
  provision(rx_slot);
  ++stats_.csp_received;

  // Hand over to the CI client at task level (where the sync algorithm
  // runs under pSOS+m); record both clock readings for the baselines.
  cpu_.defer_to_task([this, csp = std::move(csp)]() mutable {
    const SimTime task_now = cpu_.engine().now();
    csp.rx_clock_task = read_clock(task_now);
    csp.delivered_at = task_now;
    if (on_csp) on_csp(csp);
  });
}

}  // namespace nti::node
