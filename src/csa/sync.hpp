// Interval-based clock synchronization: the generic round algorithm of
// [SS97] (paper Sec. 2) running on top of the NTI hardware.
//
// Per node p, each round k:
//   1. when C_p = kP (+ a per-node stagger slot to decongest the medium):
//      broadcast a CSP; the NTI inserts [C, alpha-, alpha+] on the fly;
//   2. on CSP reception: *delay compensation* (enlarge by the transmission
//      delay bounds) and *drift compensation* (shift to the resync point,
//      enlarging by the drift bound over the local elapsed time);
//   3. when C_p = kP + Delta: apply the convergence function to the set of
//      preprocessed intervals (plus the own interval), then enforce the
//      result: state via continuous amortization, accuracies via the ACU,
//      rate via the rate-synchronization update on STEP.
//
// Convergence functions provided:
//   kMarzullo  M_f intersection [Mar84]
//   kOA        orthogonal-accuracy / fault-tolerant edge fusion (see
//              interval/interval.hpp and DESIGN.md §4)
//   kFTA       fault-tolerant average on reference points (the CSU-class
//              baseline [KO87], wrapped in intervals for comparability)
//
// External synchronization: nodes with a GPS receiver maintain a UTC
// interval from (GPU-stamped 1pps, serial second label, claimed accuracy)
// and run interval-based *clock validation* [Sch94]: the GPS interval is
// used only when consistent with the internally-derived validation
// interval, so a faulty receiver degrades accuracy but never correctness.
#pragma once

#include <cstdint>
#include <functional>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/time_types.hpp"
#include "interval/interval.hpp"
#include "node/node_card.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "csa/payload.hpp"

namespace nti::csa {

enum class Convergence { kMarzullo, kOA, kFTA };

/// Duration -> ACCSET accuracy units (2^-24 s), rounded up, saturating at
/// 0xFFFF.  Computed in 128-bit so large cold-start accuracies (>= ~0.55 s,
/// where count_ps() << 24 would overflow int64) saturate instead of
/// wrapping.  Thin alias for AlphaUnits::from_duration kept for the CSA
/// call sites and their regression tests.
AlphaUnits to_alpha_units(Duration d);

struct SyncConfig {
  Duration round_period = Duration::sec(1);      ///< P
  Duration resync_offset = Duration::ms(250);    ///< Delta
  Duration send_stagger_slot = Duration::ms(2);  ///< per-node send offset
  int fault_tolerance = 0;                       ///< f
  Convergence convergence = Convergence::kOA;

  /// Transmission delay bounds between stamp triggers (delay compensation).
  /// The *constant* part is dominated by the byte offset between the TX
  /// trigger word (0x14, read ~FIFO-lead early) and the RX trigger word
  /// (0x1C, written after arbitration): ~20 byte-times at 10 Mbit/s minus
  /// the FIFO lead, i.e. ~13 us for the default CpldProgram/ComcoConfig.
  /// Only the residual *uncertainty* (FIFO + arbitration jitter, < 1 us)
  /// costs precision.  These bounds are exactly what the paper's
  /// round-trip delay measurement calibrates (Sec. 2); csa::RttMeasurer
  /// reproduces that measurement and these defaults match it.
  Duration delay_min = Duration::from_sec_f(12.5e-6);
  Duration delay_max = Duration::from_sec_f(13.6e-6);

  /// Drift bound used for compensation & ACU deterioration, in ppm.
  // nti-lint: allow(float): configuration bound in ppm; quantized to
  // integer LAMBDA augends before reaching the ACU.
  double rho_bound_ppm = 2.0;
  /// Additional per-stamp uncertainty: clock granularity (2^-24 s) and the
  /// synchronizer stages; added on both sides during preprocessing.
  Duration granularity = Duration::ns(60);

  /// Continuous amortization slew rate (fraction of nominal speed).
  // nti-lint: allow(float): configuration fraction; quantized to an integer
  // AMORTSTEP augend before reaching the LTU.
  double amort_rate = 2e-3;
  /// Ablation switch: apply corrections as hard state sets instead of
  /// continuous amortization.  Backward corrections then make the clock
  /// jump backwards -- the non-monotonicity the UTCSU's amortization
  /// hardware exists to prevent (paper Secs. 3.3, 5).
  bool use_amortization = true;
  /// Corrections larger than this are applied as a hard state set (only
  /// ever expected at cold start).
  Duration hard_set_threshold = Duration::ms(50);

  bool rate_sync = true;
  // nti-lint: begin-allow(float): rate-sync tuning knobs are dimensionless
  // gains/clamps; the adjustment is re-quantized to an integer STEP augend.
  double rate_gain = 0.7;          ///< fraction of estimated skew corrected
  double rate_max_adj_ppm = 50.0;  ///< clamp per round
  // nti-lint: end-allow(float)
  /// Rounds of baseline for rate estimation.  One round of hardware-stamp
  /// noise (~0.3 us) over P = 1 s is ~0.3 ppm -- the same order as the
  /// drift being corrected -- so estimates are taken against samples this
  /// many rounds old, dividing the noise accordingly.
  int rate_baseline_rounds = 8;

  bool gps_validation = true;      ///< use GPS when the node has a receiver
  bool use_hw_stamps = true;       ///< false => software-mode baseline

  /// Which timestamp the software-mode baseline uses on the receive side.
  bool sw_rx_at_task = true;       ///< task-level read (vs ISR-level)
};

/// Per-round diagnostics exposed to experiments.
struct RoundReport {
  std::uint32_t round = 0;
  int intervals_used = 0;
  Duration correction;             ///< signed state adjustment
  Duration alpha_minus_after;
  Duration alpha_plus_after;
  bool gps_offered = false;
  bool gps_accepted = false;
  // nti-lint: allow(float): diagnostic report value, not clock arithmetic.
  double rate_adj_ppm = 0.0;
};

class SyncNode {
 public:
  SyncNode(node::NodeCard& card, SyncConfig cfg, int num_nodes);

  /// Set the local interval clock to `value` with accuracy +-alpha0 and
  /// begin round execution with round `first_round`.  Re-entrant: calling
  /// it on a stopped node re-initializes the clock and resumes rounds (the
  /// crash/restart injection path -- a cold rejoin re-integrates through
  /// normal CSA rounds, its initial alpha0 covering the cold-clock scatter).
  void start(Duration value, Duration alpha0, std::uint32_t first_round = 1);

  /// Halt round execution (node crash): pending duty-timer events and
  /// received CSPs become no-ops.  The UTCSU keeps free-running -- a dead
  /// CPU does not stop the clock hardware -- so the ACU's deterioration
  /// keeps the advertised interval honest while the node is down.
  void stop() { running_ = false; }
  bool running() const { return running_; }

  /// Called after every resynchronization.
  std::function<void(const RoundReport&)> on_round;

  /// Arm a hardware leap-second correction: when the local clock reaches
  /// UTC second `at_utc_second`, one second is inserted (or deleted).
  /// Duty timer 3 carries the compare value, per the register-map
  /// convention (paper Sec. 3.3: duty timers are used "to insert/delete
  /// leap seconds").  Every node arms the same UTC second, so the whole
  /// ensemble leaps within its mutual precision.
  void schedule_leap(bool insert, std::uint64_t at_utc_second);

  const SyncConfig& config() const { return cfg_; }
  std::uint32_t round() const { return round_; }
  std::uint64_t csps_late() const { return csps_late_; }
  std::uint64_t csps_invalid() const { return csps_invalid_; }
  std::uint64_t csps_used() const { return csps_used_; }
  std::uint64_t rounds_completed() const { return rounds_completed_; }
  std::uint64_t state_corrections() const { return state_corrections_; }
  std::uint64_t rate_adjustments() const { return rate_adjustments_; }

  /// Export this node's round/CSP counters into `reg` under `prefix`
  /// (e.g. "csa.node3."); the node must outlive snapshots of `reg`.
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix);

  /// Record kCspStamp (accepted peer stamp) and kResync (applied round)
  /// trace entries.  Borrowed, not owned; nullptr stops tracing.
  void set_trace(obs::TraceRing* ring) { trace_ = ring; }

  /// Close out CSP spans at the algorithm layer: kDiscarded (late round,
  /// invalid stamp, late arrival), kFused when a peer interval enters the
  /// convergence function, kCorrectionApplied (detail = signed correction
  /// in ps) when the resulting round correction is applied.  Borrowed, not
  /// owned; nullptr disables.
  void set_spans(obs::SpanCollector* spans) { spans_ = spans; }

  /// Current locally-believed interval (for examples / probes).
  interval::AccInterval current_interval(SimTime now);

  /// Inject a remote segment's reference interval, received over a gateway
  /// link, into the current round as a pseudo-peer observation
  /// (docs/SHARDING.md).  `peer_key` must be negative so it can never
  /// collide with a local node id — the sharded cluster uses -(1 + link
  /// index).  `remote_ref`/`remote_alpha_*` are the sender's
  /// current_interval at capture; `link_latency` is the gateway's exact
  /// simulated transit time, so the interval is translated by it without
  /// delay uncertainty and then drift-compensated to the local resync
  /// point exactly like a received CSP.  Capsules arriving after the
  /// resync point count as late and are dropped (csps_late), preserving
  /// the round structure.
  /// `synthetic` marks a holdover offer fabricated by the receiving
  /// gateway from a stale capsule (node/gateway.hpp): it still fuses (its
  /// widened bound is honest) but is excluded from the rate-sync baselines
  /// — a freewheeled reference carries the *local* rate, so feeding it back
  /// would teach the rate loop nothing but its own echo.
  void offer_remote(int peer_key, Duration remote_ref,
                    Duration remote_alpha_minus, Duration remote_alpha_plus,
                    RateStep remote_step, Duration link_latency,
                    bool synthetic = false);

  /// Local clock value at which the current amortized correction drains
  /// (zero when none is running) — exposed for the cold-rejoin regression
  /// test: start() must reset it along with the other stale history.
  Duration amort_end_clock() const { return amort_end_clock_; }

 private:
  struct PeerObs {
    interval::AccInterval preprocessed;  ///< expressed at the resync point
    Duration remote_time;                ///< raw remote stamp (rate sync)
    Duration local_time;                 ///< raw local rx stamp (rate sync)
    RateStep remote_step;                ///< peer's advertised STEP augend
    std::uint64_t trace_id = 0;          ///< span of the CSP that carried it
    bool rate_valid = true;              ///< false: skip rate-sync baselines
  };
  struct RateSample {
    std::uint32_t round = 0;
    Duration remote_time;
    Duration local_time;
    Duration cum_corr;  ///< local corrections applied up to this sample
  };
  struct GpsFix {
    Duration clock_at_pps;      ///< local clock at the 1pps capture
    std::uint64_t utc_second = 0;
    Duration claimed_acc;
    SimTime taken_at;
    bool fresh = false;
  };

  void arm_round_timers();
  void on_duty_timer(int timer);
  void handle_csp(const node::RxCsp& rx);
  void do_send();
  void do_resync();
  void apply_rate_sync(RoundReport& report);
  std::optional<interval::AccInterval> gps_interval(Duration at_clock);
  void write_duty(int timer, Duration clock_value);
  // nti-lint: allow(float): ppm bound input; quantized in the definition.
  void set_lambdas(double rho_ppm, std::int64_t extra_shrink_minus,
                   std::int64_t extra_shrink_plus);
  Duration send_time_of_round(std::uint32_t k) const;
  Duration resync_time_of_round(std::uint32_t k) const;

  node::NodeCard& card_;
  SyncConfig cfg_;
  int n_;
  std::uint32_t round_ = 0;
  bool running_ = false;
  std::map<int, PeerObs> obs_;                  ///< current round, by peer id
  std::map<int, std::deque<RateSample>> rate_hist_;  ///< per-peer baselines
  GpsFix gps_fix_{};
  std::uint64_t csps_late_ = 0;
  std::uint64_t csps_invalid_ = 0;
  std::uint64_t csps_used_ = 0;         ///< accepted peer observations
  std::uint64_t rounds_completed_ = 0;  ///< resynchronizations executed
  std::uint64_t state_corrections_ = 0; ///< rounds that applied a nonzero state adj
  std::uint64_t rate_adjustments_ = 0;  ///< STEP updates from rate sync
  obs::TraceRing* trace_ = nullptr;
  obs::SpanCollector* spans_ = nullptr;
  Duration cum_corr_;  ///< sum of applied state corrections
  /// Local clock value at which the most recent amortized correction is
  /// fully absorbed (zero when the last correction was hard-set or none is
  /// running).  offer_remote widens its drift margin by the slew still
  /// pending past the capsule's arrival: while amortizing, the clock runs
  /// at (1 +- amort_rate) x nominal -- far outside the rho bound the
  /// sigma-based compensation assumes.  CSPs never need this: their
  /// rx-to-resync window opens ~3/4 of a round after the previous resync,
  /// long after any sub-millisecond correction has drained.
  Duration amort_end_clock_;
};

}  // namespace nti::csa
