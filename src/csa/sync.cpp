#include "csa/sync.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "nti/memmap.hpp"
#include "obs/prof.hpp"
#include "utcsu/regs.hpp"
#include "utcsu/stamp.hpp"

namespace nti::csa {

using module::kCpuUtcsuBase;
namespace uc = nti::utcsu;

AlphaUnits to_alpha_units(Duration d) { return AlphaUnits::from_duration(d); }

namespace {

// nti-lint: allow(float): drift bounds are spec-sheet ppm figures; the
// scaled margin is re-quantized to integer picoseconds immediately.
Duration scaled_ppm(Duration base, double ppm) {
  return Duration::from_sec_f(base.to_sec_f() * ppm * 1e-6);
}

}  // namespace

SyncNode::SyncNode(node::NodeCard& card, SyncConfig cfg, int num_nodes)
    : card_(card), cfg_(cfg), n_(num_nodes) {}

Duration SyncNode::send_time_of_round(std::uint32_t k) const {
  return cfg_.round_period * static_cast<std::int64_t>(k) +
         cfg_.send_stagger_slot * card_.id();
}

Duration SyncNode::resync_time_of_round(std::uint32_t k) const {
  return cfg_.round_period * static_cast<std::int64_t>(k) + cfg_.resync_offset;
}

void SyncNode::write_duty(int timer, Duration clock_value) {
  const SimTime now = card_.cpu().engine().now();
  const Phi phi = Phi::from_duration(clock_value);
  const module::Addr base = kCpuUtcsuBase + uc::kRegDutyBase +
                            static_cast<module::Addr>(timer) * uc::kDutyStride;
  card_.nti().cpu_write32(now, base + uc::kDutyCompareLo, phi.frac24());
  card_.nti().cpu_write32(now, base + uc::kDutyCompareHi,
                          static_cast<std::uint32_t>(phi.whole_seconds() & 0xFF'FFFF));
  card_.nti().cpu_write32(now, base + uc::kDutyCtrl, 1);
}

// nti-lint: begin-allow(float): LAMBDA is derived once per round from the
// ppm drift bound; the programmed register value is integer phi-per-tick.
void SyncNode::set_lambdas(double rho_ppm, std::int64_t extra_shrink_minus,
                           std::int64_t extra_shrink_plus) {
  const SimTime now = card_.cpu().engine().now();
  const auto step = static_cast<double>(card_.chip().ltu().step().value());
  const auto base = static_cast<std::int64_t>(std::llround(step * rho_ppm * 1e-6));
  // nti-lint: end-allow(float)
  card_.nti().cpu_write32(now, kCpuUtcsuBase + uc::kRegLambdaMinus,
                          static_cast<std::uint32_t>(base - extra_shrink_minus));
  card_.nti().cpu_write32(now, kCpuUtcsuBase + uc::kRegLambdaPlus,
                          static_cast<std::uint32_t>(base - extra_shrink_plus));
}

void SyncNode::start(Duration value, Duration alpha0, std::uint32_t first_round) {
  auto& nti = card_.nti();
  const SimTime now = card_.cpu().engine().now();

  // Initialize clock + accuracies atomically (SYNCRUN-style start).
  const Phi phi = Phi::from_duration(value);
  const u128 raw = phi.raw_value();
  nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegTimeSet0,
                  static_cast<std::uint32_t>(raw));
  nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegTimeSet1,
                  static_cast<std::uint32_t>(raw >> 32));
  nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegTimeSet2,
                  static_cast<std::uint32_t>(raw >> 64));
  nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegAccSetMinus,
                  to_alpha_units(alpha0).value());
  nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegAccSetPlus,
                  to_alpha_units(alpha0).value());
  nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegCtrl, uc::kCtrlApplyTimeSet);
  set_lambdas(cfg_.rho_bound_ppm, 0, 0);

  card_.driver().on_csp = [this](const node::RxCsp& rx) { handle_csp(rx); };
  card_.driver().on_duty = [this](int timer) { on_duty_timer(timer); };
  card_.driver().enable_int_sources(uc::int_bit(uc::IntSource::kDuty0, 0) |
                                    uc::int_bit(uc::IntSource::kDuty0, 1) |
                                    uc::int_bit(uc::IntSource::kDuty0, 2));

  if (auto* gps = card_.gps_receiver(); gps != nullptr && cfg_.gps_validation) {
    gps->on_serial = [this](const gps::PpsEvent& ev) {
      const SimTime t = card_.cpu().engine().now();
      auto& nt = card_.nti();
      const module::Addr gpu = kCpuUtcsuBase + uc::kRegGpuBase;  // GPU 0
      const std::uint32_t status = nt.cpu_read32(t, gpu + uc::kGpuStatus);
      if (!(status & 1u)) return;  // pulse lost (fault) -- no capture
      const auto stamp = uc::decode_stamp(
          nt.cpu_read32(t, gpu + uc::kGpuTimestamp),
          nt.cpu_read32(t, gpu + uc::kGpuMacro),
          nt.cpu_read32(t, gpu + uc::kGpuAlpha));
      nt.cpu_write32(t, gpu + uc::kGpuStatus, 3u);  // ack valid+overrun
      if (!stamp.checksum_ok) return;
      gps_fix_.clock_at_pps = stamp.time();
      gps_fix_.utc_second = ev.labeled_second;
      gps_fix_.claimed_acc = ev.claimed_accuracy;
      gps_fix_.taken_at = t;
      gps_fix_.fresh = true;
    };
  }

  // Re-entrant start (crash/restart): observations and rate baselines from
  // before the outage reference a resync point seconds in the past; fusing
  // or rate-estimating against them would corrupt the first round back.
  obs_.clear();
  rate_hist_.clear();
  gps_fix_.fresh = false;
  // A pending amortization slew died with the crash (the hard TimeSet above
  // replaces the clock state outright); a stale end mark would make
  // offer_remote widen the first post-rejoin margins for a slew that is not
  // running.
  amort_end_clock_ = Duration::zero();

  round_ = first_round;
  running_ = true;
  arm_round_timers();
}

void SyncNode::schedule_leap(bool insert, std::uint64_t at_utc_second) {
  const SimTime now = card_.cpu().engine().now();
  auto& nti = card_.nti();
  // Stage the compare value in duty timer 3 (without arming its
  // interrupt), then strobe the leap control bit.
  const module::Addr base =
      kCpuUtcsuBase + uc::kRegDutyBase + 3 * uc::kDutyStride;
  nti.cpu_write32(now, base + uc::kDutyCompareLo, 0);
  nti.cpu_write32(now, base + uc::kDutyCompareHi,
                  static_cast<std::uint32_t>(at_utc_second & 0xFF'FFFF));
  nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegCtrl,
                  insert ? uc::kCtrlLeapInsert : uc::kCtrlLeapDelete);
}

void SyncNode::arm_round_timers() {
  write_duty(0, send_time_of_round(round_));
  write_duty(1, resync_time_of_round(round_));
}

void SyncNode::on_duty_timer(int timer) {
  if (!running_) return;
  switch (timer) {
    case 0: do_send(); break;
    case 1: do_resync(); break;
    case 2:
      // Amortization finished: withdraw the extra shrink terms.
      set_lambdas(cfg_.rho_bound_ppm, 0, 0);
      break;
    default: break;
  }
}

void SyncNode::do_send() {
  const SimTime now = card_.cpu().engine().now();
  auto& nti = card_.nti();
  CspPayload p;
  p.kind = CspKind::kSync;
  p.src = static_cast<std::uint8_t>(card_.id());
  p.round = static_cast<std::uint16_t>(round_);
  // Software-sampled interval at assembly (step 1 of Sec. 3.1) -- this is
  // what a purely software approach has to work with.
  p.sw_timestamp = nti.cpu_read32(now, kCpuUtcsuBase + uc::kRegTimestamp);
  p.sw_macrostamp = nti.cpu_read32(now, kCpuUtcsuBase + uc::kRegMacrostamp);
  p.sw_alpha = (nti.cpu_read32(now, kCpuUtcsuBase + uc::kRegAlphaMinus) << 16) |
               (nti.cpu_read32(now, kCpuUtcsuBase + uc::kRegAlphaPlus) & 0xFFFF);
  p.step = card_.chip().ltu().step().reg64();
  const auto bytes = p.encode();
  card_.driver().send_csp(bytes);
}

void SyncNode::handle_csp(const node::RxCsp& rx) {
  PROF_ZONE("csa.handle_csp");
  if (!running_) return;
  const auto discard = [&](obs::DiscardReason reason) {
    if (spans_ != nullptr) {
      spans_->record(rx.trace_id, obs::SpanStage::kDiscarded,
                     card_.cpu().engine().now(), card_.id(),
                     static_cast<std::int64_t>(reason));
    }
  };
  const auto payload = CspPayload::decode(rx.payload);
  if (!payload || payload->kind != CspKind::kSync) return;
  if (payload->round != (round_ & 0xFFFF)) {
    ++csps_late_;
    discard(obs::DiscardReason::kLateRound);
    return;
  }

  Duration remote_t, remote_am, remote_ap, local_r;
  if (cfg_.use_hw_stamps) {
    if (!rx.rx_stamp_valid || !rx.tx_stamp.checksum_ok) {
      ++csps_invalid_;
      discard(obs::DiscardReason::kInvalidStamp);
      return;
    }
    remote_t = rx.tx_stamp.time();
    remote_am = rx.tx_stamp.acc_minus();
    remote_ap = rx.tx_stamp.acc_plus();
    local_r = rx.rx_stamp.time();
  } else {
    const auto sw = uc::decode_stamp(payload->sw_timestamp,
                                     payload->sw_macrostamp, payload->sw_alpha);
    if (!sw.checksum_ok) {
      ++csps_invalid_;
      discard(obs::DiscardReason::kInvalidStamp);
      return;
    }
    remote_t = sw.time();
    remote_am = sw.acc_minus();
    remote_ap = sw.acc_plus();
    local_r = cfg_.sw_rx_at_task ? rx.rx_clock_task : rx.rx_clock_isr;
  }

  // Delay compensation: t at the local rx event lies within
  // [T - a- + d_min, T + a+ + d_max], widened by the stamp granularity.
  const Duration lo0 = remote_t - remote_am + cfg_.delay_min - cfg_.granularity;
  const Duration hi0 = remote_t + remote_ap + cfg_.delay_max + cfg_.granularity;

  // Drift compensation: shift to the resync point kP + Delta, enlarging by
  // the drift bound over the locally measured elapsed time.
  const Duration sigma = resync_time_of_round(round_) - local_r;
  if (sigma < Duration::zero()) {
    ++csps_late_;  // arrived after (or during) our resynchronization
    discard(obs::DiscardReason::kLateArrival);
    return;
  }
  const Duration margin = scaled_ppm(sigma, cfg_.rho_bound_ppm) + cfg_.granularity;
  // The interval's *reference point* is the best point estimate of the
  // peer's clock translated to the resync instant.  It must NOT be the
  // interval midpoint: the edges inherit the peer's asymmetric
  // post-amortization accuracies, and a midpoint-based reference would
  // feed that asymmetry back into the next round's corrections (a
  // self-sustaining multi-us correction treadmill -- observed in
  // bring-up; see DESIGN.md S4).
  const Duration mean_delay = cfg_.delay_min + (cfg_.delay_max - cfg_.delay_min) / 2;
  const Duration peer_ref = remote_t + mean_delay + sigma;
  const interval::AccInterval pre = interval::AccInterval::from_edges(
      lo0 + sigma - margin, hi0 + sigma + margin, peer_ref);

  PeerObs ob;
  ob.preprocessed = pre;
  ob.remote_time = remote_t;
  ob.local_time = local_r;
  ob.remote_step = RateStep::raw(static_cast<std::int64_t>(payload->step));
  ob.trace_id = rx.trace_id;
  obs_[rx.src_node] = ob;
  ++csps_used_;
  if (trace_ != nullptr) {
    trace_->push(card_.cpu().engine().now(), obs::TraceType::kCspStamp,
                 card_.id(), rx.src_node, remote_t.count_ps());
  }
}

void SyncNode::offer_remote(int peer_key, Duration remote_ref,
                            Duration remote_alpha_minus,
                            Duration remote_alpha_plus, RateStep remote_step,
                            Duration link_latency, bool synthetic) {
  if (!running_) return;
  const SimTime now = card_.cpu().engine().now();
  const Duration local_r = card_.driver().read_clock(now);

  // Translate to the arrival instant: the capture interval contained true
  // time then, and exactly link_latency of true time has since elapsed, so
  // shifting every edge by it preserves containment.  Only the capture
  // read's granularity is added — a simulated point-to-point link has no
  // delay uncertainty to compensate (contrast handle_csp's
  // [d_min, d_max] bounds).
  const Duration lo0 =
      remote_ref - remote_alpha_minus + link_latency - cfg_.granularity;
  const Duration hi0 =
      remote_ref + remote_alpha_plus + link_latency + cfg_.granularity;

  // Drift compensation to the local resync point, as in handle_csp.
  const Duration sigma = resync_time_of_round(round_) - local_r;
  if (sigma < Duration::zero()) {
    ++csps_late_;  // capsule arrived after our resynchronization
    return;
  }
  Duration margin = scaled_ppm(sigma, cfg_.rho_bound_ppm) + cfg_.granularity;
  // Self-amortization cover: if this node is still slewing its own last
  // correction, its clock runs at (1 +- amort_rate) x nominal until the
  // slew drains -- three orders of magnitude outside the rho bound the
  // sigma margin assumes, so sigma clock units can differ from true
  // elapsed time by up to (remaining amortized span) x amort_rate.  Widen
  // by exactly that overlap; it is zero once amortization has drained,
  // which is the steady state for any bridge_phase past the slew window.
  if (amort_end_clock_ > local_r) {
    const Duration overlap = std::min(amort_end_clock_ - local_r, sigma);
    // amort_rate is a configuration fraction; scaled_ppm re-quantizes
    // to integer picoseconds immediately.
    margin = margin + scaled_ppm(overlap, cfg_.amort_rate * 1e6);
  }
  const Duration peer_ref = remote_ref + link_latency + sigma;
  const interval::AccInterval pre = interval::AccInterval::from_edges(
      lo0 + sigma - margin, hi0 + sigma + margin, peer_ref);

  PeerObs ob;
  ob.preprocessed = pre;
  // Rate baseline: the remote clock read mapped to the local receive
  // instant, against the local clock at that instant — the same pairing a
  // CSP produces, so apply_rate_sync tracks inter-segment skew unchanged.
  ob.remote_time = remote_ref + link_latency;
  ob.local_time = local_r;
  ob.remote_step = remote_step;
  ob.trace_id = 0;
  ob.rate_valid = !synthetic;
  obs_[peer_key] = ob;
  ++csps_used_;
  if (trace_ != nullptr) {
    trace_->push(now, obs::TraceType::kCspStamp, card_.id(), peer_key,
                 remote_ref.count_ps());
  }
}

std::optional<interval::AccInterval> SyncNode::gps_interval(Duration at_clock) {
  if (!gps_fix_.fresh) return std::nullopt;
  const SimTime now = card_.cpu().engine().now();
  if (now - gps_fix_.taken_at > cfg_.round_period * 2) return std::nullopt;
  const Duration utc_at_pps = Duration::sec(static_cast<std::int64_t>(gps_fix_.utc_second));
  const Duration elapsed = at_clock - gps_fix_.clock_at_pps;
  const Duration ref = utc_at_pps + elapsed;
  const Duration margin = gps_fix_.claimed_acc + scaled_ppm(elapsed, cfg_.rho_bound_ppm) +
                          cfg_.granularity * 2;
  return interval::AccInterval(ref, margin, margin);
}

void SyncNode::do_resync() {
  PROF_ZONE("csa.round");
  const SimTime now = card_.cpu().engine().now();
  auto& nti = card_.nti();
  const Duration c_resync = resync_time_of_round(round_);

  RoundReport report;
  report.round = round_;

  // Own interval at the resync point: the ACU has been deteriorating since
  // the last round, read it fresh.
  const Duration own_am = Duration::ps(
      (static_cast<std::int64_t>(nti.cpu_read32(now, kCpuUtcsuBase + uc::kRegAlphaMinus)) *
       1'000'000'000'000LL) >> 24);
  const Duration own_ap = Duration::ps(
      (static_cast<std::int64_t>(nti.cpu_read32(now, kCpuUtcsuBase + uc::kRegAlphaPlus)) *
       1'000'000'000'000LL) >> 24);

  std::vector<interval::AccInterval> xs;
  xs.emplace_back(c_resync, own_am, own_ap);
  for (const auto& [peer, ob] : obs_) {
    xs.push_back(ob.preprocessed);
    if (spans_ != nullptr) {
      spans_->record(ob.trace_id, obs::SpanStage::kFused, now, card_.id());
    }
  }
  report.intervals_used = static_cast<int>(xs.size());

  std::optional<interval::AccInterval> fused;
  switch (cfg_.convergence) {
    case Convergence::kMarzullo:
      fused = interval::marzullo(xs, cfg_.fault_tolerance);
      if (!fused) fused = interval::ft_edge_fusion(xs, cfg_.fault_tolerance);
      break;
    case Convergence::kOA:
      fused = interval::ft_edge_fusion(xs, cfg_.fault_tolerance);
      break;
    case Convergence::kFTA: {
      std::vector<Duration> refs;
      refs.reserve(xs.size());
      Duration max_alpha = Duration::zero();
      for (const auto& x : xs) {
        refs.push_back(x.ref());
        max_alpha = std::max(max_alpha, std::max(x.alpha_minus(), x.alpha_plus()));
      }
      if (const auto avg = interval::fault_tolerant_average(refs, cfg_.fault_tolerance)) {
        fused = interval::AccInterval(*avg, max_alpha, max_alpha);
      }
      break;
    }
  }
  interval::AccInterval result = fused.value_or(xs.front());

  // Interval-based clock validation [Sch94]: a (possibly faulty) GPS
  // interval is adopted only when consistent with the validation interval.
  if (auto g = gps_interval(c_resync)) {
    report.gps_offered = true;
    if (const auto both = interval::intersect(*g, result)) {
      result = *both;
      report.gps_accepted = true;
    }
  }

  // New clock value: this is where "orthogonal accuracy" earns its name --
  // *precision* comes from a fault-tolerant midpoint over the reference
  // points (the classic Welch-Lynch family), while *accuracy* is
  // maintained by the interval fusion above.  The point estimate is
  // clamped into the fused interval so it can never leave the region that
  // provably contains t.
  Duration m;
  switch (cfg_.convergence) {
    case Convergence::kOA: {
      std::vector<Duration> refs;
      refs.reserve(xs.size());
      for (const auto& x : xs) refs.push_back(x.ref());
      std::sort(refs.begin(), refs.end());
      const auto f = static_cast<std::size_t>(cfg_.fault_tolerance);
      if (refs.size() >= 2 * f + 1) {
        const Duration lo_ref = refs[f];
        const Duration hi_ref = refs[refs.size() - 1 - f];
        m = lo_ref + (hi_ref - lo_ref) / 2;
      } else {
        m = result.midpoint();
      }
      m = std::clamp(m, result.lower(), result.upper());
      break;
    }
    case Convergence::kMarzullo:
    case Convergence::kFTA:
      m = result.midpoint();
      break;
  }
  const Duration d = m - c_resync;
  report.correction = d;
  if (d != Duration::zero()) ++state_corrections_;
  if (trace_ != nullptr) {
    trace_->push(now, obs::TraceType::kResync, card_.id(), round_, d.count_ps());
  }

  // Stage the post-adjustment accuracies: they must contain t for every
  // clock value the slew passes through (see DESIGN.md / utcsu/acu.hpp).
  const Duration slack = cfg_.granularity;
  const Duration am_set = (m - result.lower()) +
                          (d < Duration::zero() ? -d : Duration::zero()) + slack;
  const Duration ap_set = (result.upper() - m) +
                          (d > Duration::zero() ? d : Duration::zero()) + slack;
  nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegAccSetMinus,
                  to_alpha_units(am_set).value());
  nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegAccSetPlus,
                  to_alpha_units(ap_set).value());

  if (d.abs() > cfg_.hard_set_threshold || !cfg_.use_amortization) {
    // Cold-start escape hatch: one hard state set, then normal rounds.
    const Duration clock_now = card_.driver().read_clock(now);
    const Phi target = Phi::from_duration(m + (clock_now - c_resync));
    const u128 raw = target.raw_value();
    nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegTimeSet0, static_cast<std::uint32_t>(raw));
    nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegTimeSet1, static_cast<std::uint32_t>(raw >> 32));
    nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegTimeSet2, static_cast<std::uint32_t>(raw >> 64));
    nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegCtrl, uc::kCtrlApplyTimeSet);
    amort_end_clock_ = Duration::zero();  // the jump leaves no pending slew
  } else if (d != Duration::zero()) {
    nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegCtrl, uc::kCtrlApplyAccSet);
    // Continuous amortization: slew at (1 +- amort_rate) x nominal speed
    // until the offset is absorbed.
    const std::uint64_t step = card_.chip().ltu().step().magnitude();
    // nti-lint: begin-allow(float): amort_rate is a configuration fraction;
    // dpt is re-quantized to an integer augend delta before it touches the
    // LTU.
    const auto dpt = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(static_cast<double>(step) * cfg_.amort_rate)));
    // nti-lint: end-allow(float)
    const u128 d_phi_mag = Phi::from_duration(d.abs()).raw_value();
    const auto ticks = static_cast<std::uint64_t>(d_phi_mag / dpt) + 1;
    const std::uint64_t amort_step = d > Duration::zero() ? step + dpt : step - dpt;
    nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegAmortStepLo,
                    static_cast<std::uint32_t>(amort_step));
    nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegAmortStepHi,
                    static_cast<std::uint32_t>(amort_step >> 32));
    nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegAmortTicksLo,
                    static_cast<std::uint32_t>(ticks));
    nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegAmortTicksHi,
                    static_cast<std::uint32_t>(ticks >> 32));
    nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegCtrl, uc::kCtrlStartAmort);
    // While amortizing, drain the transient accuracy term on the side the
    // clock moves away from (the ACU zero-masks any overshoot).
    if (d > Duration::zero()) {
      set_lambdas(cfg_.rho_bound_ppm, 0, static_cast<std::int64_t>(dpt));
    } else {
      set_lambdas(cfg_.rho_bound_ppm, static_cast<std::int64_t>(dpt), 0);
    }
    // Duty timer 2 marks the end of amortization (restore lambdas there).
    const Duration amort_len = Phi::raw(u128{amort_step} * ticks).to_duration();
    const Duration clock_now = card_.driver().read_clock(now);
    write_duty(2, clock_now + amort_len);
    amort_end_clock_ = clock_now + amort_len;
  } else {
    nti.cpu_write32(now, kCpuUtcsuBase + uc::kRegCtrl, uc::kCtrlApplyAccSet);
  }
  cum_corr_ += d;
  if (spans_ != nullptr) {
    // Every CSP fused into this round contributed to the same applied
    // correction; close each contributing span with the signed magnitude.
    for (const auto& [peer, ob] : obs_) {
      spans_->record(ob.trace_id, obs::SpanStage::kCorrectionApplied, now,
                     card_.id(), d.count_ps());
    }
  }

  if (cfg_.rate_sync) apply_rate_sync(report);

  report.alpha_minus_after = am_set;
  report.alpha_plus_after = ap_set;
  if (on_round) on_round(report);

  // Bookkeeping for future rate estimates, then advance.  Synthetic
  // holdover offers stay out: their reference freewheels on the local
  // clock, so a baseline built from them would estimate a unity ratio and
  // slowly wash out the real inter-segment skew signal.
  for (const auto& [peer, ob] : obs_) {
    if (!ob.rate_valid) continue;
    rate_hist_[peer].push_back({round_, ob.remote_time, ob.local_time, cum_corr_});
  }
  obs_.clear();
  ++rounds_completed_;
  ++round_;
  arm_round_timers();
}

void SyncNode::register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) {
  reg.add_counter(prefix + "rounds", &rounds_completed_);
  reg.add_counter(prefix + "csps_used", &csps_used_);
  reg.add_counter(prefix + "csps_late", &csps_late_);
  reg.add_counter(prefix + "csps_invalid", &csps_invalid_);
  reg.add_counter(prefix + "state_corrections", &state_corrections_);
  reg.add_counter(prefix + "rate_adjustments", &rate_adjustments_);
  reg.add_gauge(prefix + "cum_correction_us", [this] { return cum_corr_.to_us_f(); });
}

void SyncNode::apply_rate_sync(RoundReport& report) {
  // Estimate each peer's clock speed relative to ours over a multi-round
  // baseline (stamp noise over one round is the same order as the drift
  // being corrected), correcting the local elapsed time for the state
  // adjustments we applied in between (they are not oscillator drift).
  //
  // Guard: while state corrections are still large (cold start), peers'
  // own amortization slews pollute the elapsed-time ratios; a bad rate
  // adjustment would exceed the deterioration bound and endanger the
  // containment invariant, so skip those rounds entirely.
  if (report.correction.abs() > Duration::us(50)) return;
  // Adjust only once per baseline window: STEP is then constant across
  // each measurement window, so the ratio cleanly reflects the *current*
  // relative rate.  (Adjusting every round against a multi-round baseline
  // is delayed feedback -- it oscillates and slowly walks the ensemble
  // rate away from nominal; we measured exactly that during bring-up.)
  const auto baseline = static_cast<std::uint32_t>(cfg_.rate_baseline_rounds);
  if (round_ % baseline != 0) return;
  // nti-lint: begin-allow(float): rate estimation works on dimensionless
  // elapsed-time ratios; the result is clamped and re-quantized to an
  // integer STEP augend before it is written to the register.
  std::vector<double> ratios;
  for (const auto& [peer, ob] : obs_) {
    if (!ob.rate_valid) continue;  // synthetic holdover offer: local echo
    auto& hist = rate_hist_[peer];
    while (hist.size() > 2 * static_cast<std::size_t>(baseline)) hist.pop_front();
    const RateSample* base = nullptr;
    for (const auto& smp : hist) {
      if (round_ - smp.round >= baseline) base = &smp;
    }
    if (base == nullptr) continue;
    const double corr_between = (cum_corr_ - base->cum_corr).to_sec_f();
    const double dt_remote = (ob.remote_time - base->remote_time).to_sec_f();
    const double dt_local =
        (ob.local_time - base->local_time).to_sec_f() - corr_between;
    if (dt_local <= 0.5 * cfg_.round_period.to_sec_f()) continue;  // bogus
    ratios.push_back(dt_remote / dt_local);
  }
  if (ratios.empty()) return;
  ratios.push_back(1.0);  // our own clock is a candidate too
  std::sort(ratios.begin(), ratios.end());
  const int f = cfg_.fault_tolerance;
  if (static_cast<int>(ratios.size()) < 2 * f + 1) return;
  const double lo = ratios[static_cast<std::size_t>(f)];
  const double hi = ratios[ratios.size() - 1 - static_cast<std::size_t>(f)];
  const double target = 0.5 * (lo + hi);  // fault-tolerant midpoint of rates

  double adj = cfg_.rate_gain * (target - 1.0);
  // Per-round clamp: never steer faster than a quarter of the advertised
  // drift bound, so a mis-estimate stays covered by the ACU deterioration.
  const double clamp =
      std::min(cfg_.rate_max_adj_ppm, cfg_.rho_bound_ppm / 4.0) * 1e-6;
  adj = std::clamp(adj, -clamp, clamp);
  if (adj == 0.0) return;

  const SimTime now = card_.cpu().engine().now();
  const std::uint64_t step = card_.chip().ltu().step().magnitude();
  const auto new_step = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(step) * (1.0 + adj)));
  card_.nti().cpu_write32(now, kCpuUtcsuBase + uc::kRegStepLo,
                          static_cast<std::uint32_t>(new_step));
  card_.nti().cpu_write32(now, kCpuUtcsuBase + uc::kRegStepHi,
                          static_cast<std::uint32_t>(new_step >> 32));
  ++rate_adjustments_;
  report.rate_adj_ppm = adj * 1e6;
  // nti-lint: end-allow(float)
}

interval::AccInterval SyncNode::current_interval(SimTime now) {
  auto& nti = card_.nti();
  const Duration c = card_.driver().read_clock(now);
  const Duration am = Duration::ps(
      (static_cast<std::int64_t>(nti.cpu_read32(now, kCpuUtcsuBase + uc::kRegAlphaMinus)) *
       1'000'000'000'000LL) >> 24);
  const Duration ap = Duration::ps(
      (static_cast<std::int64_t>(nti.cpu_read32(now, kCpuUtcsuBase + uc::kRegAlphaPlus)) *
       1'000'000'000'000LL) >> 24);
  return {c, am, ap};
}

}  // namespace nti::csa
