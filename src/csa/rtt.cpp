#include "csa/rtt.hpp"

#include "nti/memmap.hpp"
#include "utcsu/regs.hpp"
#include "utcsu/stamp.hpp"

namespace nti::csa {

namespace uc = nti::utcsu;
using module::kCpuUtcsuBase;

RttMeasurer::RttMeasurer(node::NodeCard& card) : card_(card) {
  chained_ = card_.driver().on_csp;
  card_.driver().on_csp = [this](const node::RxCsp& rx) { handle(rx); };
}

void RttMeasurer::handle(const node::RxCsp& rx) {
  const auto payload = CspPayload::decode(rx.payload);
  if (!payload) return;
  switch (payload->kind) {
    case CspKind::kRttProbe:
      reply_to_probe(rx, *payload);
      return;
    case CspKind::kRttReply:
      record_reply(rx, *payload);
      return;
    default:
      if (chained_) chained_(rx);
      return;
  }
}

void RttMeasurer::send_probe() {
  CspPayload p;
  p.kind = CspKind::kRttProbe;
  p.src = static_cast<std::uint8_t>(card_.id());
  p.probe_id = next_probe_++;
  outstanding_probe_ = p.probe_id;
  probe_t1_.reset();  // read back lazily once the transmission happened
  card_.driver().send_csp(p.encode());
  ++probes_sent_;
}

void RttMeasurer::reply_to_probe(const node::RxCsp& rx, const CspPayload& p) {
  if (!rx.rx_stamp_valid) return;  // nothing trustworthy to echo
  CspPayload reply;
  reply.kind = CspKind::kRttReply;
  reply.src = static_cast<std::uint8_t>(card_.id());
  reply.probe_id = p.probe_id;
  reply.echo_timestamp = rx.rx_raw_timestamp;
  reply.echo_macrostamp = rx.rx_raw_macrostamp;
  card_.driver().send_csp(reply.encode());
  ++replies_sent_;
}

void RttMeasurer::record_reply(const node::RxCsp& rx, const CspPayload& p) {
  if (p.probe_id != outstanding_probe_) return;
  if (!rx.rx_stamp_valid || !rx.tx_stamp.checksum_ok) return;

  if (!probe_t1_) {
    // The SSU TX registers still hold the probe's transmit stamp, provided
    // no other transmission interleaved (true for the ping-pong usage in
    // the benches; a production driver would latch T1 in the tx-complete
    // ISR).
    const SimTime now = card_.cpu().engine().now();
    auto& nti = card_.nti();
    const module::Addr ssu_base =
        kCpuUtcsuBase + uc::kRegSsuBase +
        static_cast<module::Addr>(nti.ssu_index()) * uc::kSsuStride;
    const auto t1 = uc::decode_stamp(
        nti.cpu_read32(now, ssu_base + uc::kSsuTxTimestamp),
        nti.cpu_read32(now, ssu_base + uc::kSsuTxMacro),
        nti.cpu_read32(now, ssu_base + uc::kSsuTxAlpha));
    if (!t1.checksum_ok) return;
    probe_t1_ = t1.time();
  }

  const Duration t1 = *probe_t1_;
  const Duration t2 = uc::decode_stamp(p.echo_timestamp, p.echo_macrostamp, 0).time();
  const Duration t3 = rx.tx_stamp.time();
  const Duration t4 = rx.rx_stamp.time();

  RttResult r;
  r.probe_id = p.probe_id;
  r.peer = rx.src_node;
  r.round_trip = (t2 - t1) + (t4 - t3);
  r.delay_estimate = r.round_trip / 2;
  r.offset_estimate = ((t2 - t1) - (t4 - t3)) / 2;
  delays_.add(r.delay_estimate);
  if (on_result) on_result(r);
}

}  // namespace nti::csa
