// Round-trip transmission-delay measurement (paper Sec. 2: "our ambitious
// goal of a 1 us-range precision/accuracy makes it inevitable to employ an
// accurate round-trip-based transmission delay measurement").
//
// Four hardware stamps per handshake, NTP-style but at trigger precision:
//   T1  prober's SSU TX stamp of the probe        (read back after send)
//   T2  responder's SSU RX stamp of the probe     (echoed in the reply)
//   T3  responder's SSU TX stamp of the reply     (in the reply header)
//   T4  prober's SSU RX stamp of the reply
// Then delay = ((T2-T1) + (T4-T3)) / 2, with the asymmetry bounded by the
// (tiny) trigger jitter rather than by interrupt latencies -- this is what
// lets the bounds [delay_min, delay_max] in SyncConfig be set tight.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "common/stats.hpp"
#include "common/time_types.hpp"
#include "node/node_card.hpp"
#include "csa/payload.hpp"

namespace nti::csa {

struct RttResult {
  std::uint32_t probe_id = 0;
  int peer = -1;
  Duration delay_estimate;   ///< ((T2-T1)+(T4-T3))/2
  Duration offset_estimate;  ///< ((T2-T1)-(T4-T3))/2, NTP-style
  Duration round_trip;       ///< (T2-T1)+(T4-T3)
};

/// Installs itself by *chaining* onto the driver's CSP callback: RTT kinds
/// are consumed, everything else is forwarded to the previously installed
/// handler (so it composes with a running SyncNode; install after it).
class RttMeasurer {
 public:
  explicit RttMeasurer(node::NodeCard& card);

  /// Broadcast a probe; every peer's RttMeasurer replies.
  void send_probe();

  std::function<void(const RttResult&)> on_result;

  SampleSet& delays() { return delays_; }
  std::uint64_t probes_sent() const { return probes_sent_; }
  std::uint64_t replies_sent() const { return replies_sent_; }

 private:
  void handle(const node::RxCsp& rx);
  void reply_to_probe(const node::RxCsp& rx, const CspPayload& p);
  void record_reply(const node::RxCsp& rx, const CspPayload& p);

  node::NodeCard& card_;
  std::function<void(const node::RxCsp&)> chained_;
  std::uint32_t next_probe_ = 1;
  /// T1 of the outstanding probe (tx stamp read back after transmission).
  std::optional<Duration> probe_t1_;
  std::uint32_t outstanding_probe_ = 0;
  SampleSet delays_;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t replies_sent_ = 0;
};

}  // namespace nti::csa
