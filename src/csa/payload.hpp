// CSP payload: the software-defined part of a clock synchronization packet.
//
// In hardware mode the authoritative time/accuracy interval travels in the
// *header* (inserted by the CPLD/UTCSU transparent mapping); the payload
// carries round bookkeeping, the software-sampled interval used by the
// purely-software baseline, and rate-synchronization data.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

namespace nti::csa {

enum class CspKind : std::uint8_t {
  kSync = 0,     ///< periodic round broadcast
  kRttProbe = 1, ///< round-trip delay measurement request
  kRttReply = 2, ///< reply carrying the probe's stamps
};

struct CspPayload {
  CspKind kind = CspKind::kSync;
  std::uint8_t src = 0;
  std::uint16_t round = 0;
  /// Software-sampled stamp at packet assembly (baseline comparison).
  std::uint32_t sw_timestamp = 0;
  std::uint32_t sw_macrostamp = 0;
  std::uint32_t sw_alpha = 0;
  /// Rate synchronization: the sender's current STEP register, so peers
  /// can translate observed clock speed into augend terms.
  std::uint64_t step = 0;
  /// RTT handshake: echoed stamps (reply only).
  std::uint32_t echo_timestamp = 0;
  std::uint32_t echo_macrostamp = 0;
  std::uint32_t probe_id = 0;

  static constexpr std::size_t kWireSize = 40;

  std::vector<std::uint8_t> encode() const {
    std::vector<std::uint8_t> out(kWireSize, 0);
    out[0] = static_cast<std::uint8_t>(kind);
    out[1] = src;
    std::memcpy(&out[2], &round, 2);
    std::memcpy(&out[4], &sw_timestamp, 4);
    std::memcpy(&out[8], &sw_macrostamp, 4);
    std::memcpy(&out[12], &sw_alpha, 4);
    std::memcpy(&out[16], &step, 8);
    std::memcpy(&out[24], &echo_timestamp, 4);
    std::memcpy(&out[28], &echo_macrostamp, 4);
    std::memcpy(&out[32], &probe_id, 4);
    return out;
  }

  static std::optional<CspPayload> decode(std::span<const std::uint8_t> in) {
    if (in.size() < kWireSize) return std::nullopt;
    CspPayload p;
    p.kind = static_cast<CspKind>(in[0]);
    p.src = in[1];
    std::memcpy(&p.round, &in[2], 2);
    std::memcpy(&p.sw_timestamp, &in[4], 4);
    std::memcpy(&p.sw_macrostamp, &in[8], 4);
    std::memcpy(&p.sw_alpha, &in[12], 4);
    std::memcpy(&p.step, &in[16], 8);
    std::memcpy(&p.echo_timestamp, &in[24], 4);
    std::memcpy(&p.echo_macrostamp, &in[28], 4);
    std::memcpy(&p.probe_id, &in[32], 4);
    return p;
  }
};

}  // namespace nti::csa
