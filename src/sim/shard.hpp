// ShardGroup: conservative parallel discrete-event simulation over a set
// of independently scheduled engines (docs/SHARDING.md).
//
// Each shard is one sim::Engine (its own slab/4-ary-heap queue, its own
// virtual time).  Shards are joined by directed *gateway links* with a
// fixed positive latency; that latency is the classic null-message-style
// lookahead bound: a shard may only advance to
//
//   min(limit, min over in-links (now(src shard) + link latency) - 1 ps)
//
// so every message it could still receive lies strictly in its future.
// Cross-shard messages are handed off through per-link FIFO queues stamped
// with the sender's virtual time; the queues are written only by the
// sending shard during the parallel phase and drained only by the serial
// barrier phase, so the group needs no locks of its own — the thread-pool
// barrier provides the happens-before edges (TSan-clean by construction).
//
// Determinism is the hard contract here: the observable event order is
// byte-identical no matter how segments are grouped onto shards or how
// many pool threads run them.  Two mechanisms deliver that:
//   1. every delivery — even on a link whose endpoints share an engine —
//      goes through a per-engine *ingress buffer* keyed by arrival time;
//      the buffer's drain event runs in the engine's front band
//      (Engine::schedule_at_front), so deliveries at time t always execute
//      before all local events at t, regardless of when the drain was
//      scheduled (at send time intra-shard vs at a barrier cross-shard);
//   2. within one arrival time, entries execute sorted by
//      (link id, per-link sequence number) — both assigned by construction
//      order, never by shard or thread.
//
// Progress: link latencies are validated >= kMinLinkLatency, so the shard
// holding the minimum virtual time always advances by at least
// latency - 1 ps per round; the loop terminates for every finite limit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/time_types.hpp"
#include "mc/pool.hpp"
#include "sim/engine.hpp"

namespace nti::sim {

/// One cross-shard delivery, retained when set_record_handoffs(true); the
/// lookahead property test asserts delivered == send + latency for every
/// record and that no delivery ever ran early.
struct HandoffRecord {
  std::size_t link = 0;
  std::uint64_t seq = 0;
  std::int64_t send_ps = 0;      ///< sender's virtual time at send()
  std::int64_t arrival_ps = 0;   ///< send + link latency
  std::int64_t delivered_ps = 0; ///< receiver's virtual time at execution
};

class ShardGroup {
 public:
  /// Links shorter than this cannot bound lookahead meaningfully (the
  /// advance target is horizon - 1 ps, so latency <= 1 ps would deadlock).
  static constexpr Duration kMinLinkLatency = Duration::ns(1);

  explicit ShardGroup(std::size_t num_engines);
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  std::size_t num_engines() const { return engines_.size(); }
  Engine& engine(std::size_t i) { return *engines_[i]; }

  /// Register a directed gateway link; returns its link id (registration
  /// order — the cross-link delivery tie-break, so register links in a
  /// topology-determined order, never a shard-determined one).  Throws
  /// std::invalid_argument on latency < kMinLinkLatency.
  std::size_t add_link(std::size_t src_engine, std::size_t dst_engine,
                       Duration latency);

  /// Send `deliver` over `link` from within an event executing on the
  /// link's source engine; it runs on the destination engine at
  /// now(src) + latency, ahead of that instant's local events.
  void send(std::size_t link, EventFn deliver);

  /// Advance every engine to `limit` under the lookahead rule.  `pool` may
  /// be nullptr (or single-threaded) for serial execution; with a real pool
  /// each round's eligible shards run as one barrier batch.
  void run_until(SimTime limit, mc::ThreadPool* pool = nullptr);

  /// Lookahead rounds executed (advance + barrier iterations).
  std::uint64_t rounds() const { return rounds_; }
  /// Total link deliveries executed (intra- and cross-shard).
  std::uint64_t deliveries() const;
  /// Deliveries that crossed shards through a handoff queue (the rest were
  /// intra-shard and entered the ingress buffer directly at send time).
  std::uint64_t cross_shard_handoffs() const { return cross_handoffs_; }

  void set_record_handoffs(bool on) { record_ = on; }
  /// All recorded deliveries, merged across engines and sorted by
  /// (arrival, link, seq).
  std::vector<HandoffRecord> handoff_records() const;

 private:
  struct IngressEntry {
    std::size_t link;
    std::uint64_t seq;
    std::int64_t send_ps;
    EventFn fn;
  };
  struct PendingMsg {
    std::int64_t send_ps;
    std::int64_t arrival_ps;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Link {
    std::size_t src;
    std::size_t dst;
    std::int64_t latency_ps;
    std::uint64_t next_seq = 0;
    /// Cross-shard handoff FIFO: appended by the src shard while it runs,
    /// drained into the dst ingress at the next barrier.
    std::vector<PendingMsg> pending;
  };
  /// Per-engine ingress: arrival time -> entries.  Creating a key
  /// schedules exactly one front-band drain event at that time.
  struct Ingress {
    std::map<std::int64_t, std::vector<IngressEntry>> by_arrival;
  };

  void ingress_push(std::size_t dst_engine, std::int64_t arrival_ps,
                    IngressEntry entry);
  void drain_at(std::size_t engine_index, std::int64_t arrival_ps);

  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<Link> links_;
  std::vector<Ingress> ingress_;
  std::uint64_t rounds_ = 0;       ///< serial phase only
  std::uint64_t cross_handoffs_ = 0;  ///< serial phase only
  /// Indexed by (destination) engine so drain events running concurrently
  /// on different shards never share a counter or a record vector.
  std::vector<std::uint64_t> deliveries_by_engine_;
  bool record_ = false;
  std::vector<std::vector<HandoffRecord>> records_by_engine_;
};

}  // namespace nti::sim
