// Deterministic discrete-event simulation engine.
//
// This is the substrate every hardware model runs on.  Properties the rest
// of the system relies on:
//   * events at equal times fire in scheduling order (stable tie-break via
//     a monotone sequence number), so runs are bit-reproducible; the one
//     exception is the front band (schedule_at_front), which fires before
//     all normal events at the same time — the shard layer's handle for
//     making cross-segment deliveries order-independent of *when* the
//     delivery event was scheduled;
//   * cancellation is O(1) (lazy: a cancelled event is skipped when popped);
//   * the engine never advances past the time of the event being executed,
//     so a handler observing now() sees exactly its own firing time;
//   * run_until(limit) never executes an event with when > limit, even when
//     cancelled events sit between the queue head and the next live event.
//
// Storage: events live in a slab (a growable vector of EventState slots
// recycled through a freelist) and the ready queue is a 4-ary min-heap of
// {when, seq, slot} entries -- the sort key is copied into the heap entry
// (it is immutable once scheduled), so sift comparisons stay inside one
// contiguous array and never chase into the slab; the fan-out of four
// halves the number of levels (= cache misses) a sift touches on deep
// queues compared to a binary heap.  Scheduling an event
// therefore costs zero heap allocations in steady state (the slab and heap
// arrays reach a high-water mark and are reused), where the previous
// implementation paid one make_shared<EventState> plus shared_ptr refcount
// traffic per event and a double pointer-dereference per heap comparison --
// the dominant cost of the simulator hot path (docs/PERFORMANCE.md).
// Handles validate against a per-slot generation counter, so a handle to a
// fired or reaped event whose slot has been reused is inert, exactly like
// the expired weak_ptr of the old design.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/time_types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nti::sim {

using EventFn = std::function<void()>;

namespace detail {
struct EventState {
  SimTime when;
  std::uint64_t seq = 0;
  EventFn fn;
  std::uint32_t gen = 0;    ///< bumped every time the slot is released
  bool cancelled = false;
  bool live = false;        ///< scheduled and not yet popped/reaped
};

/// The slab is shared with EventHandles through a weak_ptr so a handle
/// that outlives its Engine stays inert (same contract as the old
/// weak_ptr<EventState> handles) without a per-event allocation.
struct EventSlab {
  std::vector<EventState> slots;
  std::vector<std::uint32_t> free_list;
};
}  // namespace detail

/// Cancellation token for a scheduled event.  Default-constructed handles
/// are inert; cancelling an already-fired or cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel() {
    if (auto s = slab_.lock()) {
      detail::EventState& st = s->slots[slot_];
      if (st.gen == gen_ && st.live) st.cancelled = true;
    }
  }
  bool pending() const {
    const auto s = slab_.lock();
    if (!s) return false;
    const detail::EventState& st = s->slots[slot_];
    return st.gen == gen_ && st.live && !st.cancelled;
  }

 private:
  friend class Engine;
  EventHandle(std::weak_ptr<detail::EventSlab> s, std::uint32_t slot,
              std::uint32_t gen)
      : slab_(std::move(s)), slot_(slot), gen_(gen) {}
  std::weak_ptr<detail::EventSlab> slab_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Engine {
 public:
  Engine() : slab_(std::make_shared<detail::EventSlab>()) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `t` (clamped to now() if in
  /// the past — "immediately" — so hardware models may schedule zero-delay
  /// follow-ups without special-casing).
  EventHandle schedule_at(SimTime t, EventFn fn) {
    return schedule_banded(t, kBandNormal, std::move(fn));
  }
  /// Schedule `fn` after a non-negative delay.
  EventHandle schedule_in(Duration d, EventFn fn) {
    return schedule_at(now_ + d, std::move(fn));
  }
  /// Schedule `fn` at `t` ahead of every normally-scheduled event with the
  /// same firing time, regardless of scheduling order.  Used by the shard
  /// layer for ingress-drain events: a cross-segment delivery at t must
  /// execute before all local events at t in *both* the monolithic and the
  /// sharded path, even though the two paths schedule the drain at
  /// different moments (send time vs handoff barrier) and hence with
  /// different sequence numbers (docs/SHARDING.md).
  EventHandle schedule_at_front(SimTime t, EventFn fn) {
    return schedule_banded(t, kBandFront, std::move(fn));
  }

  /// Execute the next event if any; returns false when the queue is empty.
  bool step();
  /// Run events with firing time <= `limit`; afterwards now() == limit
  /// (time advances to the horizon even if the queue drains early).
  void run_until(SimTime limit);
  /// Run until the queue is empty.
  void run();

  std::uint64_t events_executed() const { return executed_; }
  /// Cancelled events reaped from the queue (lazy cancellation makes this
  /// observable only at pop time).
  std::uint64_t events_cancelled() const { return cancelled_reaped_; }
  std::size_t events_pending() const { return live_; }
  /// Largest queue size ever observed (capacity planning / leak detection).
  std::size_t queue_high_water() const { return queue_hwm_; }
  /// Slab slots currently allocated (the event-storage high-water mark;
  /// steady-state scheduling never allocates past it).
  std::size_t slab_capacity() const { return slab_->slots.size(); }

  /// Export the engine's counters into `reg` under `prefix` (e.g.
  /// "sim.engine."); the engine must outlive snapshots of `reg`.
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix);

  /// Record a kEventFired trace entry for every executed event.  The ring
  /// is borrowed, not owned; pass nullptr to stop tracing.
  void set_trace(obs::TraceRing* ring) { trace_ = ring; }

 private:
  /// Priority bands within one firing time: front-band events (ingress
  /// drains) pop before normal ones no matter when either was scheduled.
  static constexpr std::uint32_t kBandFront = 0;
  static constexpr std::uint32_t kBandNormal = 1;

  /// Heap entry: the (when, band, seq) sort key is immutable for the
  /// lifetime of a scheduled event, so it is denormalized here and
  /// comparisons never touch the slab.  The band rides in what used to be
  /// struct padding, so the entry stays 24 bytes.
  struct HeapEntry {
    std::int64_t when_ps;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t band;
  };

  /// True when entry a must pop before b: min on (when, band, seq).
  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.when_ps != b.when_ps) return a.when_ps < b.when_ps;
    if (a.band != b.band) return a.band < b.band;
    return a.seq < b.seq;  // FIFO among equals
  }

  EventHandle schedule_banded(SimTime t, std::uint32_t band, EventFn fn);

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  HeapEntry heap_pop_root();
  /// Return a slot to the freelist; invalidates outstanding handles to it.
  void release_slot(std::uint32_t idx);

  /// Pop cancelled events off the queue head so top() is a live event.
  void reap_cancelled_heads();

  SimTime now_ = SimTime::epoch();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_reaped_ = 0;
  std::size_t live_ = 0;  // scheduled, not yet fired (cancelled still counted until popped)
  std::size_t queue_hwm_ = 0;
  obs::TraceRing* trace_ = nullptr;
  std::shared_ptr<detail::EventSlab> slab_;
  std::vector<HeapEntry> heap_;  ///< 4-ary min-heap on (when, band, seq)
};

}  // namespace nti::sim
