// Deterministic discrete-event simulation engine.
//
// This is the substrate every hardware model runs on.  Properties the rest
// of the system relies on:
//   * events at equal times fire in scheduling order (stable tie-break via
//     a monotone sequence number), so runs are bit-reproducible;
//   * cancellation is O(1) (lazy: a cancelled event is skipped when popped);
//   * the engine never advances past the time of the event being executed,
//     so a handler observing now() sees exactly its own firing time;
//   * run_until(limit) never executes an event with when > limit, even when
//     cancelled events sit between the queue head and the next live event.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time_types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nti::sim {

using EventFn = std::function<void()>;

namespace detail {
struct EventState {
  SimTime when;
  std::uint64_t seq = 0;
  EventFn fn;
  bool cancelled = false;
  bool fired = false;
};
}  // namespace detail

/// Cancellation token for a scheduled event.  Default-constructed handles
/// are inert; cancelling an already-fired or cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel() {
    if (auto s = state_.lock()) s->cancelled = true;
  }
  bool pending() const {
    const auto s = state_.lock();
    return s && !s->cancelled && !s->fired;
  }

 private:
  friend class Engine;
  explicit EventHandle(std::weak_ptr<detail::EventState> s) : state_(std::move(s)) {}
  std::weak_ptr<detail::EventState> state_;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `t` (clamped to now() if in
  /// the past — "immediately" — so hardware models may schedule zero-delay
  /// follow-ups without special-casing).
  EventHandle schedule_at(SimTime t, EventFn fn);
  /// Schedule `fn` after a non-negative delay.
  EventHandle schedule_in(Duration d, EventFn fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Execute the next event if any; returns false when the queue is empty.
  bool step();
  /// Run events with firing time <= `limit`; afterwards now() == limit
  /// (time advances to the horizon even if the queue drains early).
  void run_until(SimTime limit);
  /// Run until the queue is empty.
  void run();

  std::uint64_t events_executed() const { return executed_; }
  /// Cancelled events reaped from the queue (lazy cancellation makes this
  /// observable only at pop time).
  std::uint64_t events_cancelled() const { return cancelled_reaped_; }
  std::size_t events_pending() const { return live_; }
  /// Largest queue size ever observed (capacity planning / leak detection).
  std::size_t queue_high_water() const { return queue_hwm_; }

  /// Export the engine's counters into `reg` under `prefix` (e.g.
  /// "sim.engine."); the engine must outlive snapshots of `reg`.
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix);

  /// Record a kEventFired trace entry for every executed event.  The ring
  /// is borrowed, not owned; pass nullptr to stop tracing.
  void set_trace(obs::TraceRing* ring) { trace_ = ring; }

 private:
  using StatePtr = std::shared_ptr<detail::EventState>;
  struct Compare {
    bool operator()(const StatePtr& a, const StatePtr& b) const {
      if (a->when != b->when) return a->when > b->when;  // min-heap on time
      return a->seq > b->seq;                            // FIFO among equals
    }
  };

  /// Pop cancelled events off the queue head so top() is a live event.
  void reap_cancelled_heads();

  SimTime now_ = SimTime::epoch();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_reaped_ = 0;
  std::size_t live_ = 0;  // scheduled, not yet fired (cancelled still counted until popped)
  std::size_t queue_hwm_ = 0;
  obs::TraceRing* trace_ = nullptr;
  std::priority_queue<StatePtr, std::vector<StatePtr>, Compare> queue_;
};

}  // namespace nti::sim
