// Periodic task helper built on the engine.
//
// Fires strictly on the grid `start + k*period` in simulated real time (no
// drift accumulation from handler latency).  Used for probe sampling and
// for environmental processes (temperature, load generators) — NOT for the
// clock-synchronization rounds themselves, which are driven by UTCSU duty
// timers off each node's own (drifting) clock, as in the real system.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/engine.hpp"

namespace nti::sim {

class PeriodicTask {
 public:
  /// `fn(k)` is invoked with the firing index k = 0, 1, 2, ...
  PeriodicTask(Engine& eng, SimTime start, Duration period,
               std::function<void(std::uint64_t)> fn)
      : eng_(eng), start_(start), period_(period), fn_(std::move(fn)) {
    arm();
  }
  ~PeriodicTask() { stop(); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop() { handle_.cancel(); }

 private:
  void arm() {
    handle_ = eng_.schedule_at(start_ + period_ * static_cast<std::int64_t>(k_), [this] {
      const std::uint64_t k = k_++;
      arm();  // re-arm first so fn_ may stop() us
      fn_(k);
    });
  }

  Engine& eng_;
  SimTime start_;
  Duration period_;
  std::function<void(std::uint64_t)> fn_;
  std::uint64_t k_ = 0;
  EventHandle handle_;
};

}  // namespace nti::sim
