#include "sim/engine.hpp"

#include <utility>

namespace nti::sim {

EventHandle Engine::schedule_at(SimTime t, EventFn fn) {
  auto state = std::make_shared<detail::EventState>();
  state->when = (t < now_) ? now_ : t;
  state->seq = next_seq_++;
  state->fn = std::move(fn);
  queue_.push(state);
  ++live_;
  if (queue_.size() > queue_hwm_) queue_hwm_ = queue_.size();
  return EventHandle{state};
}

void Engine::reap_cancelled_heads() {
  while (!queue_.empty() && queue_.top()->cancelled) {
    queue_.pop();
    --live_;
    ++cancelled_reaped_;
  }
}

bool Engine::step() {
  while (!queue_.empty()) {
    StatePtr s = queue_.top();
    queue_.pop();
    --live_;
    if (s->cancelled) {
      ++cancelled_reaped_;
      continue;
    }
    now_ = s->when;
    s->fired = true;
    ++executed_;
    if (trace_ != nullptr) {
      trace_->push(now_, obs::TraceType::kEventFired, -1,
                   static_cast<std::int64_t>(s->seq));
    }
    // Move the closure out so re-entrant scheduling from inside the handler
    // cannot alias the state we are executing.
    EventFn fn = std::move(s->fn);
    fn();
    return true;
  }
  return false;
}

void Engine::run_until(SimTime limit) {
  for (;;) {
    // Reap cancelled heads *before* inspecting the guard: a cancelled event
    // with when <= limit must not admit a live event with when > limit.
    reap_cancelled_heads();
    if (queue_.empty() || queue_.top()->when > limit) break;
    if (!step()) break;
  }
  if (now_ < limit) now_ = limit;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) {
  reg.add_counter(prefix + "events_executed", &executed_);
  reg.add_counter(prefix + "events_cancelled", &cancelled_reaped_);
  reg.add_gauge(prefix + "events_pending",
                [this] { return static_cast<double>(live_); });
  reg.add_gauge(prefix + "queue_high_water",
                [this] { return static_cast<double>(queue_hwm_); });
}

}  // namespace nti::sim
