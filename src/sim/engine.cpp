#include "sim/engine.hpp"

#include <utility>

namespace nti::sim {

EventHandle Engine::schedule_at(SimTime t, EventFn fn) {
  auto state = std::make_shared<detail::EventState>();
  state->when = (t < now_) ? now_ : t;
  state->seq = next_seq_++;
  state->fn = std::move(fn);
  queue_.push(state);
  ++live_;
  return EventHandle{state};
}

bool Engine::step() {
  while (!queue_.empty()) {
    StatePtr s = queue_.top();
    queue_.pop();
    --live_;
    if (s->cancelled) continue;
    now_ = s->when;
    s->fired = true;
    ++executed_;
    // Move the closure out so re-entrant scheduling from inside the handler
    // cannot alias the state we are executing.
    EventFn fn = std::move(s->fn);
    fn();
    return true;
  }
  return false;
}

void Engine::run_until(SimTime limit) {
  while (!queue_.empty() && queue_.top()->when <= limit) {
    if (!step()) break;
  }
  // Drain any cancelled heads so events_pending() is meaningful.
  while (!queue_.empty() && queue_.top()->cancelled) {
    queue_.pop();
    --live_;
  }
  if (now_ < limit) now_ = limit;
}

void Engine::run() {
  while (step()) {
  }
}

}  // namespace nti::sim
