#include "sim/engine.hpp"

#include <utility>

#include "obs/prof.hpp"

namespace nti::sim {

EventHandle Engine::schedule_banded(SimTime t, std::uint32_t band, EventFn fn) {
  PROF_ZONE("sim.engine.schedule");
  detail::EventSlab& slab = *slab_;
  std::uint32_t idx;
  if (!slab.free_list.empty()) {
    idx = slab.free_list.back();
    slab.free_list.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slab.slots.size());
    slab.slots.emplace_back();
  }
  detail::EventState& st = slab.slots[idx];
  st.when = (t < now_) ? now_ : t;
  st.seq = next_seq_++;
  st.fn = std::move(fn);
  st.cancelled = false;
  st.live = true;
  heap_.push_back(HeapEntry{st.when.count_ps(), st.seq, idx, band});
  sift_up(heap_.size() - 1);
  ++live_;
  if (heap_.size() > queue_hwm_) queue_hwm_ = heap_.size();
  return EventHandle{slab_, idx, st.gen};
}

void Engine::sift_up(std::size_t i) {
  const HeapEntry moving = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(moving, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = moving;
}

void Engine::sift_down(std::size_t i) {
  const HeapEntry moving = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], moving)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moving;
}

Engine::HeapEntry Engine::heap_pop_root() {
  const HeapEntry root = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return root;
}

void Engine::release_slot(std::uint32_t idx) {
  detail::EventState& st = slab_->slots[idx];
  st.fn = nullptr;
  st.live = false;
  ++st.gen;  // outstanding handles to this slot become inert
  slab_->free_list.push_back(idx);
}

void Engine::reap_cancelled_heads() {
  while (!heap_.empty() && slab_->slots[heap_.front().slot].cancelled) {
    release_slot(heap_pop_root().slot);
    --live_;
    ++cancelled_reaped_;
  }
}

bool Engine::step() {
  while (!heap_.empty()) {
    EventFn fn;
    {
      PROF_ZONE("sim.engine.pop");
      const HeapEntry e = heap_pop_root();
      detail::EventState& st = slab_->slots[e.slot];
      --live_;
      if (st.cancelled) {
        ++cancelled_reaped_;
        release_slot(e.slot);
        continue;
      }
      now_ = SimTime::from_ps(e.when_ps);
      ++executed_;
      if (trace_ != nullptr) {
        trace_->push(now_, obs::TraceType::kEventFired, -1,
                     static_cast<std::int64_t>(e.seq));
      }
      // Move the closure out and release the slot *before* invoking it:
      // re-entrant scheduling from inside the handler may grow the slab
      // (invalidating `st`) or immediately reuse this very slot.
      fn = std::move(st.fn);
      release_slot(e.slot);
    }
    PROF_ZONE("sim.engine.dispatch");
    fn();
    return true;
  }
  return false;
}

void Engine::run_until(SimTime limit) {
  const std::int64_t limit_ps = limit.count_ps();
  for (;;) {
    // Reap cancelled heads *before* inspecting the guard: a cancelled event
    // with when <= limit must not admit a live event with when > limit.
    reap_cancelled_heads();
    if (heap_.empty() || heap_.front().when_ps > limit_ps) break;
    if (!step()) break;
  }
  if (now_ < limit) now_ = limit;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) {
  reg.add_counter(prefix + "events_executed", &executed_);
  reg.add_counter(prefix + "events_cancelled", &cancelled_reaped_);
  reg.add_gauge(prefix + "events_pending",
                [this] { return static_cast<double>(live_); });
  reg.add_gauge(prefix + "queue_high_water",
                [this] { return static_cast<double>(queue_hwm_); });
}

}  // namespace nti::sim
