#include "sim/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/prof.hpp"

namespace nti::sim {

ShardGroup::ShardGroup(std::size_t num_engines) {
  if (num_engines == 0) {
    throw std::invalid_argument("ShardGroup needs at least one engine");
  }
  engines_.reserve(num_engines);
  for (std::size_t i = 0; i < num_engines; ++i) {
    engines_.push_back(std::make_unique<Engine>());
  }
  ingress_.resize(num_engines);
  deliveries_by_engine_.assign(num_engines, 0);
  records_by_engine_.resize(num_engines);
}

std::size_t ShardGroup::add_link(std::size_t src_engine, std::size_t dst_engine,
                                 Duration latency) {
  if (src_engine >= engines_.size() || dst_engine >= engines_.size()) {
    throw std::invalid_argument("ShardGroup::add_link: engine index out of range");
  }
  if (latency < kMinLinkLatency) {
    throw std::invalid_argument(
        "gateway link latency must be >= 1 ns: a zero (or near-zero) latency "
        "link provides no conservative lookahead, so the receiving shard "
        "could never safely advance (got " + std::to_string(latency.count_ps()) +
        " ps)");
  }
  links_.push_back(Link{src_engine, dst_engine, latency.count_ps(), 0, {}});
  return links_.size() - 1;
}

void ShardGroup::send(std::size_t link, EventFn deliver) {
  Link& l = links_[link];
  const std::int64_t send_ps = engines_[l.src]->now().count_ps();
  const std::int64_t arrival_ps = send_ps + l.latency_ps;
  const std::uint64_t seq = l.next_seq++;
  if (l.src == l.dst) {
    // Intra-shard: enter the ingress buffer immediately.  Same buffer, same
    // drain band, same (link, seq) ordering as the cross-shard path — only
    // the moment of insertion differs, which the front band makes
    // unobservable.
    ingress_push(l.dst, arrival_ps,
                 IngressEntry{link, seq, send_ps, std::move(deliver)});
  } else {
    l.pending.push_back(PendingMsg{send_ps, arrival_ps, seq, std::move(deliver)});
  }
}

void ShardGroup::ingress_push(std::size_t dst_engine, std::int64_t arrival_ps,
                              IngressEntry entry) {
  Engine& eng = *engines_[dst_engine];
  if (arrival_ps <= eng.now().count_ps()) {
    throw std::logic_error(
        "ShardGroup: delivery scheduled at or before the receiving shard's "
        "virtual time — conservative lookahead violated");
  }
  auto [it, inserted] =
      ingress_[dst_engine].by_arrival.try_emplace(arrival_ps);
  it->second.push_back(std::move(entry));
  if (inserted) {
    // First entry for this arrival instant: schedule the (single) drain
    // event.  Front band => it fires before every local event at that time.
    eng.schedule_at_front(SimTime::from_ps(arrival_ps),
                          [this, dst_engine, arrival_ps] {
                            drain_at(dst_engine, arrival_ps);
                          });
  }
}

void ShardGroup::drain_at(std::size_t engine_index, std::int64_t arrival_ps) {
  PROF_ZONE("sim.shard.drain");
  auto& by_arrival = ingress_[engine_index].by_arrival;
  const auto it = by_arrival.find(arrival_ps);
  if (it == by_arrival.end()) return;
  std::vector<IngressEntry> entries = std::move(it->second);
  // Erase before executing: a delivery may itself send on an intra-shard
  // link and touch the map.
  by_arrival.erase(it);
  std::sort(entries.begin(), entries.end(),
            [](const IngressEntry& a, const IngressEntry& b) {
              if (a.link != b.link) return a.link < b.link;
              return a.seq < b.seq;
            });
  for (IngressEntry& e : entries) {
    e.fn();
    ++deliveries_by_engine_[engine_index];
    if (record_) {
      records_by_engine_[engine_index].push_back(
          HandoffRecord{e.link, e.seq, e.send_ps, arrival_ps,
                        engines_[engine_index]->now().count_ps()});
    }
  }
}

void ShardGroup::run_until(SimTime limit, mc::ThreadPool* pool) {
  const std::int64_t limit_ps = limit.count_ps();
  const std::size_t n = engines_.size();
  std::vector<std::int64_t> target(n);
  // nti-lint: allow(hotpath): per-round task batch for the pool, O(shards)
  // per conservative round, not O(events); run_batch's interface wants it.
  std::vector<std::function<void()>> tasks;
  for (;;) {
    bool all_at_limit = true;
    for (std::size_t e = 0; e < n; ++e) {
      if (engines_[e]->now().count_ps() < limit_ps) {
        all_at_limit = false;
        break;
      }
    }
    if (all_at_limit) break;

    {
      // Conservative horizon: a shard may run to min over cross-shard
      // in-links of (sender's committed time + latency) - 1 ps.  Everything
      // a sender could still emit arrives strictly later than that.
      PROF_ZONE("sim.shard.horizon");
      for (std::size_t e = 0; e < n; ++e) target[e] = limit_ps;
      for (const Link& l : links_) {
        if (l.src == l.dst) continue;
        const std::int64_t horizon =
            engines_[l.src]->now().count_ps() + l.latency_ps - 1;
        target[l.dst] = std::min(target[l.dst], horizon);
      }
    }

    tasks.clear();
    for (std::size_t e = 0; e < n; ++e) {
      if (target[e] > engines_[e]->now().count_ps()) {
        Engine* eng = engines_[e].get();
        const SimTime t = SimTime::from_ps(target[e]);
        tasks.push_back([eng, t] { eng->run_until(t); });
      }
    }
    if (tasks.empty()) {
      // nti-lint: allow(hotpath): unreachable progress assertion, cold by
      // construction -- link validation rejects degenerate latencies.
      throw std::logic_error(
          "ShardGroup::run_until made no progress — a gateway link cycle "
          "with degenerate latency slipped past validation");
    }
    {
      PROF_ZONE("sim.shard.advance");
      if (pool != nullptr) {
        pool->run_batch(tasks);
      } else {
        for (const auto& t : tasks) t();
      }
    }
    {
      // Barrier handoff: move everything the senders emitted into the
      // receivers' ingress buffers.  Serial, in link-id order — though the
      // order is immaterial, since delivery order is fixed by
      // (arrival, link, seq) at drain time.
      PROF_ZONE("sim.shard.handoff");
      for (std::size_t li = 0; li < links_.size(); ++li) {
        Link& l = links_[li];
        if (l.src == l.dst || l.pending.empty()) continue;
        for (PendingMsg& m : l.pending) {
          ingress_push(l.dst, m.arrival_ps,
                       IngressEntry{li, m.seq, m.send_ps, std::move(m.fn)});
          ++cross_handoffs_;
        }
        l.pending.clear();
      }
    }
    ++rounds_;
  }
}

std::uint64_t ShardGroup::deliveries() const {
  std::uint64_t total = 0;
  for (const std::uint64_t d : deliveries_by_engine_) total += d;
  return total;
}

std::vector<HandoffRecord> ShardGroup::handoff_records() const {
  std::vector<HandoffRecord> all;
  for (const auto& per : records_by_engine_) {
    all.insert(all.end(), per.begin(), per.end());
  }
  std::sort(all.begin(), all.end(),
            [](const HandoffRecord& a, const HandoffRecord& b) {
              if (a.arrival_ps != b.arrival_ps) return a.arrival_ps < b.arrival_ps;
              if (a.link != b.link) return a.link < b.link;
              return a.seq < b.seq;
            });
  return all;
}

}  // namespace nti::sim
