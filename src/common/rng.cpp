#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace nti {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view s, std::uint64_t h) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

RngStream::RngStream(std::uint64_t seed) : seed_(seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

RngStream RngStream::fork(std::string_view name) const {
  return RngStream(fnv1a(name, seed_ ^ 0xA5A5A5A5DEADBEEFULL));
}

RngStream RngStream::fork(std::string_view name, std::uint64_t index) const {
  std::uint64_t h = fnv1a(name, seed_ ^ 0xA5A5A5A5DEADBEEFULL);
  h ^= index + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return RngStream(h);
}

std::uint64_t RngStream::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double RngStream::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection-free Lemire reduction is overkill here; modulo bias is
  // negligible for the span sizes used (all << 2^64).
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

Duration RngStream::uniform(Duration lo, Duration hi) {
  return Duration::ps(uniform_int(lo.count_ps(), hi.count_ps()));
}

double RngStream::normal(double mean, double stddev) {
  // Box-Muller; draw until u1 is nonzero to avoid log(0).
  double u1 = 0.0;
  do { u1 = next_double(); } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double RngStream::exponential(double mean) {
  double u = 0.0;
  do { u = next_double(); } while (u <= 0.0);
  return -mean * std::log(u);
}

bool RngStream::chance(double probability) {
  return next_double() < probability;
}

}  // namespace nti
