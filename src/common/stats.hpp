// Small statistics helpers used by the measurement probes and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/time_types.hpp"

namespace nti {

/// Welford running statistics over double-valued samples.
class RunningStats {
 public:
  void add(double x);
  void add(Duration d) { add(static_cast<double>(d.count_ps())); }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number summary of a SampleSet, for machine-readable reporting.
struct SampleSummary {
  std::size_t n = 0;
  double min = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Sample reservoir with exact percentiles (stores everything; the
/// experiment runs here are short enough that this is the simplest correct
/// choice, and exactness matters for worst-case precision claims).
class SampleSet {
 public:
  void add(double x) { xs_.push_back(x); sorted_ = false; }
  void add(Duration d) { add(static_cast<double>(d.count_ps())); }

  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  double min();
  double max();
  double mean() const;
  /// Sample variance (n-1 denominator) via a single Welford pass -- no
  /// two-pass cancellation.  0.0 for n < 2.
  double variance() const;
  /// Sample standard deviation; 0.0 for n < 2.
  double stddev() const;
  /// Half-width of the 95% confidence interval of the mean,
  /// 1.96 * stddev / sqrt(n); 0.0 for n < 2.
  double ci95() const;
  /// p in [0,100]; nearest-rank percentile.
  double percentile(double p);
  /// min/mean/p50/p99/max in one call (all zeros when empty).
  SampleSummary summary();
  /// Convenience: max as a Duration when samples were Durations (ps).
  Duration max_duration() { return Duration::ps(static_cast<std::int64_t>(max())); }
  Duration mean_duration() const { return Duration::ps(static_cast<std::int64_t>(mean())); }
  Duration percentile_duration(double p) { return Duration::ps(static_cast<std::int64_t>(percentile(p))); }

 private:
  void ensure_sorted();
  std::vector<double> xs_;
  bool sorted_ = false;
};

/// Fixed-width histogram for distribution shape reporting in benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  /// Bulk insert: `count` observations of the same value (tally folding).
  void add(double x, std::uint64_t count);
  std::string ascii(std::size_t width = 50) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

 private:
  double lo_, hi_;
  std::vector<std::size_t> bins_;
  std::size_t underflow_ = 0, overflow_ = 0;
};

}  // namespace nti
