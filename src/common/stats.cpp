#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace nti {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::ensure_sorted() {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double SampleSet::min() {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.front();
}

double SampleSet::max() {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.back();
}

double SampleSet::mean() const {
  if (xs_.empty()) return 0.0;
  return std::accumulate(xs_.begin(), xs_.end(), 0.0) / static_cast<double>(xs_.size());
}

double SampleSet::variance() const {
  // Welford over the stored samples: numerically stable regardless of the
  // samples' magnitude (a two-pass sum-of-squares cancels catastrophically
  // for picosecond-scale values with microsecond-scale spreads).
  if (xs_.size() < 2) return 0.0;
  RunningStats acc;
  for (const double x : xs_) acc.add(x);
  return acc.variance();
}

double SampleSet::stddev() const { return std::sqrt(variance()); }

double SampleSet::ci95() const {
  if (xs_.size() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(xs_.size()));
}

double SampleSet::percentile(double p) {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  // Nearest-rank (as documented in stats.hpp): the p-th percentile is the
  // smallest sample such that at least p% of the samples are <= it, i.e.
  // element ceil(p/100 * n) of the sorted set (1-based).  No interpolation:
  // every returned value is an actual sample, which is what worst-case
  // precision/latency claims need.
  const double n = static_cast<double>(xs_.size());
  const double r = std::ceil(p / 100.0 * n);
  const auto idx = static_cast<std::size_t>(std::max(r, 1.0)) - 1;
  return xs_[std::min(idx, xs_.size() - 1)];
}

SampleSummary SampleSet::summary() {
  SampleSummary s;
  s.n = xs_.size();
  if (xs_.empty()) return s;
  s.min = min();
  s.mean = mean();
  s.p50 = percentile(50);
  s.p99 = percentile(99);
  s.max = max();
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0) {}

void Histogram::add(double x) { add(x, 1); }

void Histogram::add(double x, std::uint64_t count) {
  if (bins_.empty() || x < lo_) {
    underflow_ += count;
  } else if (x >= hi_) {
    overflow_ += count;
  } else {
    const auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                              static_cast<double>(bins_.size()));
    bins_[std::min(idx, bins_.size() - 1)] += count;
  }
}

std::string Histogram::ascii(std::size_t width) const {
  // A zero-bin histogram has no bars to draw (and max_element over an
  // empty range is UB); every observation sits in under-/overflow.
  if (bins_.empty()) return std::string();
  const std::size_t peak = std::max<std::size_t>(
      1, *std::max_element(bins_.begin(), bins_.end()));
  std::string out;
  const double bin_w = (hi_ - lo_) / static_cast<double>(bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    char head[64];
    std::snprintf(head, sizeof head, "%12.3g |", lo_ + bin_w * static_cast<double>(i));
    out += head;
    // 128-bit intermediate: count * width overflows 64 bits for tally-file
    // scale counts (e.g. 2^60 observations at width 50).
    const auto bar = static_cast<std::size_t>(
        static_cast<unsigned __int128>(bins_[i]) * width / peak);
    out.append(bar, '#');
    char tail[32];
    std::snprintf(tail, sizeof tail, " %zu\n", bins_[i]);
    out += tail;
  }
  return out;
}

}  // namespace nti
