// Minimal leveled trace facility.
//
// The simulation is deterministic, so a trace of "what happened when" is the
// primary debugging tool.  Output is off by default (benches and tests stay
// quiet); enable per-category via Log::enable().
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/time_types.hpp"

namespace nti {

enum class LogCat : std::uint32_t {
  kSim = 1u << 0,
  kUtcsu = 1u << 1,
  kNti = 1u << 2,
  kComco = 1u << 3,
  kNet = 1u << 4,
  kGps = 1u << 5,
  kNode = 1u << 6,
  kCsa = 1u << 7,
  kCluster = 1u << 8,
  kObs = 1u << 9,  ///< observability layer (span lifecycle, exporters)
};

/// Canonical picosecond timestamp rendering, shared by the text log prefix,
/// TraceRing::dump_csv and the span machinery: the plain integer picosecond
/// count since simulation start.  One format everywhere means a span id seen
/// in a kObs log line greps directly against the CSV/JSON artifacts.
std::string format_ps(SimTime t);

class Log {
 public:
  static void enable(LogCat cat);
  static void disable(LogCat cat);
  static void enable_all();
  static bool enabled(LogCat cat);

  /// printf-style trace line, prefixed with the simulated time.
  static void trace(LogCat cat, SimTime now, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

 private:
  static std::uint32_t mask_;
};

}  // namespace nti
