#include "common/time_types.hpp"

#include <cmath>
#include <cstdio>

namespace nti {

Duration Duration::from_sec_f(double seconds) {
  return Duration::ps(static_cast<std::int64_t>(std::llround(seconds * 1e12)));
}

std::string Duration::str() const {
  char buf[64];
  const double a = std::fabs(static_cast<double>(ps_));
  if (a >= 1e12) {
    std::snprintf(buf, sizeof buf, "%.6f s", static_cast<double>(ps_) * 1e-12);
  } else if (a >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f ms", static_cast<double>(ps_) * 1e-9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f us", static_cast<double>(ps_) * 1e-6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3f ns", static_cast<double>(ps_) * 1e-3);
  } else {
    std::snprintf(buf, sizeof buf, "%lld ps", static_cast<long long>(ps_));
  }
  return buf;
}

AlphaUnits AlphaUnits::from_duration(Duration d) {
  if (d <= Duration::zero()) return AlphaUnits::of(0);
  // (ps << 24) overflows int64 for d >= ~0.55 s; a wrapped value would
  // program a tiny ACCSET for a huge real uncertainty and break the
  // containment invariant at cold start.  128-bit arithmetic saturates
  // correctly instead.
  using i128_t = __int128;
  const i128_t units =
      ((i128_t{d.count_ps()} << 24) + 999'999'999'999LL) / 1'000'000'000'000LL;
  if (units >= kMax) return saturated();
  return AlphaUnits::of(static_cast<std::uint16_t>(static_cast<std::int64_t>(units)));
}

std::string SimTime::str() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "t=%.9f s", to_sec_f());
  return buf;
}

}  // namespace nti
