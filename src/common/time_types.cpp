#include "common/time_types.hpp"

#include <cmath>
#include <cstdio>

namespace nti {

Duration Duration::from_sec_f(double seconds) {
  return Duration::ps(static_cast<std::int64_t>(std::llround(seconds * 1e12)));
}

std::string Duration::str() const {
  char buf[64];
  const double a = std::fabs(static_cast<double>(ps_));
  if (a >= 1e12) {
    std::snprintf(buf, sizeof buf, "%.6f s", static_cast<double>(ps_) * 1e-12);
  } else if (a >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f ms", static_cast<double>(ps_) * 1e-9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f us", static_cast<double>(ps_) * 1e-6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3f ns", static_cast<double>(ps_) * 1e-3);
  } else {
    std::snprintf(buf, sizeof buf, "%lld ps", static_cast<long long>(ps_));
  }
  return buf;
}

std::string SimTime::str() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "t=%.9f s", to_sec_f());
  return buf;
}

}  // namespace nti
