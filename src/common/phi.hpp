// Phi: the UTCSU's internal time representation.
//
// The UTCSU's adder-based clock sums a programmable augend in multiples of
// 2^-51 s (~ 0.44 fs) into a 91-bit register on every oscillator tick
// (paper Sec. 3.3).  We call one 2^-51 s unit a "phi".  The full register is
// modeled with unsigned 128-bit arithmetic; the architecturally visible
// 56-bit NTP time (32-bit seconds, 24-bit fraction) is a bit-field view of
// the top of the register, exactly as in the ASIC.
#pragma once

#include <cassert>
#include <cstdint>
#include <compare>

#include "common/time_types.hpp"

namespace nti {

using u128 = unsigned __int128;
using i128 = __int128;

/// Signed span measured in phi units (2^-51 s).
class PhiDelta;

/// Unsigned clock state in phi units (2^-51 s).  One second == 2^51 phi.
class Phi {
 public:
  static constexpr int kFracBits = 51;                 ///< phi bits per second
  static constexpr u128 kPerSec = u128{1} << kFracBits;

  constexpr Phi() = default;
  static constexpr Phi raw(u128 v) { return Phi{v}; }
  static constexpr Phi from_sec(std::uint64_t s) { return Phi{u128{s} << kFracBits}; }

  /// Exact conversion from picoseconds: phi = ps * 2^51 / 10^12 (rounded).
  /// A clock state is non-negative by contract; a negative input would
  /// silently wrap to an astronomically large state (and e.g. make every
  /// duty timer fire immediately), so it is rejected here.
  static constexpr Phi from_duration(Duration d) {
    assert(d.count_ps() >= 0 && "clock states are non-negative");
    const u128 ps = static_cast<u128>(d.count_ps());
    return Phi{(ps * kPerSec + 500'000'000'000ULL) / 1'000'000'000'000ULL};
  }

  /// Rounded conversion back to picoseconds.
  constexpr Duration to_duration() const {
    const u128 ps = (v_ * 1'000'000'000'000ULL + (kPerSec >> 1)) >> kFracBits;
    return Duration::ps(static_cast<std::int64_t>(ps));
  }

  constexpr double to_sec_f() const {
    return static_cast<double>(v_) / static_cast<double>(kPerSec);
  }

  constexpr u128 raw_value() const { return v_; }
  constexpr std::uint64_t whole_seconds() const { return static_cast<std::uint64_t>(v_ >> kFracBits); }

  /// The 24-bit NTP fraction-of-second (granularity 2^-24 s ~ 59.6 ns).
  constexpr std::uint32_t frac24() const {
    return static_cast<std::uint32_t>((v_ >> (kFracBits - 24)) & 0xFF'FFFFu);
  }

  constexpr auto operator<=>(const Phi&) const = default;
  constexpr Phi operator+(Phi o) const { return Phi{v_ + o.v_}; }
  constexpr Phi& operator+=(Phi o) { v_ += o.v_; return *this; }
  constexpr Phi operator*(std::uint64_t k) const { return Phi{v_ * k}; }
  friend constexpr PhiDelta operator-(Phi a, Phi b);
  constexpr Phi plus(PhiDelta d) const;  // defined below

 private:
  constexpr explicit Phi(u128 v) : v_(v) {}
  u128 v_ = 0;
};

class PhiDelta {
 public:
  constexpr PhiDelta() = default;
  static constexpr PhiDelta raw(i128 v) { return PhiDelta{v}; }
  static constexpr PhiDelta from_duration(Duration d) {
    const bool neg = d.count_ps() < 0;
    const u128 mag = Phi::from_duration(neg ? -d : d).raw_value();
    return PhiDelta{neg ? -static_cast<i128>(mag) : static_cast<i128>(mag)};
  }
  constexpr Duration to_duration() const {
    const bool neg = v_ < 0;
    const u128 mag = static_cast<u128>(neg ? -v_ : v_);
    const Duration d = Phi::raw(mag).to_duration();
    return neg ? -d : d;
  }
  constexpr double to_sec_f() const {
    return (v_ < 0 ? -1.0 : 1.0) *
           static_cast<double>(static_cast<u128>(v_ < 0 ? -v_ : v_)) /
           static_cast<double>(Phi::kPerSec);
  }
  constexpr i128 raw_value() const { return v_; }
  constexpr auto operator<=>(const PhiDelta&) const = default;
  constexpr PhiDelta operator+(PhiDelta o) const { return PhiDelta{v_ + o.v_}; }
  constexpr PhiDelta operator-(PhiDelta o) const { return PhiDelta{v_ - o.v_}; }
  constexpr PhiDelta operator-() const { return PhiDelta{-v_}; }
  constexpr PhiDelta operator/(std::int64_t k) const { return PhiDelta{v_ / k}; }

 private:
  constexpr explicit PhiDelta(i128 v) : v_(v) {}
  i128 v_ = 0;
};

constexpr PhiDelta operator-(Phi a, Phi b) {
  return PhiDelta::raw(static_cast<i128>(a.v_) - static_cast<i128>(b.v_));
}

constexpr Phi Phi::plus(PhiDelta d) const {
  return Phi{static_cast<u128>(static_cast<i128>(v_) + d.raw_value())};
}

}  // namespace nti
