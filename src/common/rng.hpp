// Deterministic random-number streams.
//
// Every stochastic element of the simulation (oscillator wander, COMCO FIFO
// jitter, MAC backoff, ISR latency, GPS faults) draws from a named child
// stream forked off one root seed.  Forking is by hashing the parent state
// with the stream name, so adding a new consumer never perturbs the draws
// seen by existing consumers — a prerequisite for reproducible experiments
// and for bisecting behavioural changes across revisions.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/time_types.hpp"

namespace nti {

/// xoshiro256** seeded via SplitMix64; cheap to copy, no global state.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed);

  /// Child stream derived from this stream's seed and a stable name.
  RngStream fork(std::string_view name) const;
  /// Child stream derived from a name plus an index (e.g. per node).
  RngStream fork(std::string_view name, std::uint64_t index) const;

  std::uint64_t next_u64();
  /// Uniform in [0, 1).
  double next_double();
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Uniform duration in [lo, hi].
  Duration uniform(Duration lo, Duration hi);
  /// Standard normal via Box-Muller (no caching: stateless per call pair).
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Exponential with the given mean.
  double exponential(double mean);
  /// Bernoulli trial.
  bool chance(double probability);

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace nti
