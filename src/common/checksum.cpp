#include "common/checksum.hpp"

namespace nti {

std::uint8_t time_checksum8(std::uint64_t ntp56) {
  // CRC-8 over the seven time bytes.  (A ones'-complement byte sum cannot
  // distinguish a 0x00 byte from 0xFF -- arithmetic mod 255 -- so it would
  // miss exactly the all-bits-of-one-byte corruptions a glitched bus
  // produces; the CRC detects any single corrupted byte.)
  std::uint8_t bytes[7];
  for (int i = 0; i < 7; ++i) {
    bytes[i] = static_cast<std::uint8_t>(ntp56 >> (8 * i));
  }
  return crc8(bytes);
}

std::uint8_t crc8(std::span<const std::uint8_t> data) {
  std::uint8_t crc = 0;
  for (const std::uint8_t byte : data) {
    crc = static_cast<std::uint8_t>(crc ^ byte);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x80u) ? static_cast<std::uint8_t>((crc << 1) ^ 0x07u)
                          : static_cast<std::uint8_t>(crc << 1);
    }
  }
  return crc;
}

std::uint16_t blocksum16(std::span<const std::uint32_t> words) {
  std::uint32_t sum = 0;
  for (const std::uint32_t w : words) {
    sum += (w & 0xFFFFu) + (w >> 16);
  }
  while (sum > 0xFFFF) sum = (sum & 0xFFFFu) + (sum >> 16);
  return static_cast<std::uint16_t>(sum);
}

}  // namespace nti
