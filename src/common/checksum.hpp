// Checksums used by the UTCSU.
//
// The macrostamp carries an 8-bit checksum "protecting the entire time
// information" (paper Sec. 3.3); the BTU additionally computes block sums
// and signatures over register snapshots for self-checking operation.  The
// ASIC's exact polynomial is not published; we use a CRC-8 (poly 0x07,
// detecting any single corrupted byte and all bursts <= 8 bits) for both
// the macrostamp checksum and the BTU signatures, and document it here as
// part of the simulated register interface.
#pragma once

#include <cstdint>
#include <span>

namespace nti {

/// CRC-8 over the 7 bytes of a 56-bit NTP time value.
std::uint8_t time_checksum8(std::uint64_t ntp56);

/// CRC-8/ATM (poly x^8+x^2+x+1 = 0x07, init 0x00) over an arbitrary buffer.
std::uint8_t crc8(std::span<const std::uint8_t> data);

/// Incremental 16-bit block sum used by the BTU over register snapshots.
std::uint16_t blocksum16(std::span<const std::uint32_t> words);

}  // namespace nti
