// Strong time types for the NTI simulation.
//
// All "real time t" in the paper (UTC as observed by an omniscient outside
// observer) is represented as SimTime: a count of picoseconds since the
// simulation epoch.  Picosecond resolution is two orders of magnitude finer
// than the UTCSU's own granularity (2^-24 s ~ 60 ns) and three orders finer
// than the 1 us precision target, so quantization of the substrate never
// masks the effects under study.  int64 picoseconds covers +/- 106 days.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace nti {

/// A signed span of simulated real time, in picoseconds.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration ps(std::int64_t v) { return Duration{v}; }
  static constexpr Duration ns(std::int64_t v) { return Duration{v * 1'000}; }
  static constexpr Duration us(std::int64_t v) { return Duration{v * 1'000'000}; }
  static constexpr Duration ms(std::int64_t v) { return Duration{v * 1'000'000'000}; }
  static constexpr Duration sec(std::int64_t v) { return Duration{v * 1'000'000'000'000}; }
  /// Nearest-picosecond conversion from floating-point seconds.
  static Duration from_sec_f(double seconds);

  constexpr std::int64_t count_ps() const { return ps_; }
  constexpr double to_sec_f() const { return static_cast<double>(ps_) * 1e-12; }
  constexpr double to_us_f() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double to_ns_f() const { return static_cast<double>(ps_) * 1e-3; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return Duration{ps_ + o.ps_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ps_ - o.ps_}; }
  constexpr Duration operator-() const { return Duration{-ps_}; }
  constexpr Duration& operator+=(Duration o) { ps_ += o.ps_; return *this; }
  constexpr Duration& operator-=(Duration o) { ps_ -= o.ps_; return *this; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ps_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ps_ / k}; }
  constexpr std::int64_t operator/(Duration o) const { return ps_ / o.ps_; }
  constexpr Duration abs() const { return Duration{ps_ < 0 ? -ps_ : ps_}; }

  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() { return Duration{std::numeric_limits<std::int64_t>::max()}; }

  std::string str() const;  ///< Human-readable, auto-scaled unit.

 private:
  constexpr explicit Duration(std::int64_t v) : ps_(v) {}
  std::int64_t ps_ = 0;
};

/// A point in simulated real time: picoseconds since the simulation epoch.
class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime from_ps(std::int64_t v) { return SimTime{v}; }
  static constexpr SimTime epoch() { return SimTime{0}; }
  /// Sentinel "never": later than any schedulable time.
  static constexpr SimTime never() { return SimTime{std::numeric_limits<std::int64_t>::max()}; }

  constexpr std::int64_t count_ps() const { return ps_; }
  constexpr double to_sec_f() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(Duration d) const { return SimTime{ps_ + d.count_ps()}; }
  constexpr SimTime operator-(Duration d) const { return SimTime{ps_ - d.count_ps()}; }
  constexpr Duration operator-(SimTime o) const { return Duration::ps(ps_ - o.ps_); }
  constexpr SimTime& operator+=(Duration d) { ps_ += d.count_ps(); return *this; }

  std::string str() const;

 private:
  constexpr explicit SimTime(std::int64_t v) : ps_(v) {}
  std::int64_t ps_ = 0;
};

// ---------------------------------------------------------------------------
// Unit-safe wrappers for the deterministic clock core.
//
// The UTCSU model mixes three integer quantities that are all "just a
// uint64_t" at the register level but must never be confused in arithmetic:
// oscillator tick indices/counts, adder augends in 2^-51 s units, and
// accuracy readings in 2^-24 s units.  Wrapping each in its own type turns
// tick/rate/accuracy confusion into a compile error; tools/nti_lint.py
// enforces the complementary rules the type system cannot (see
// docs/STATIC_ANALYSIS.md).
// ---------------------------------------------------------------------------

/// A count of oscillator ticks: either an absolute tick index (rising edges
/// since the simulation epoch) or a width in ticks.  The adder-based clock
/// treats both identically, exactly like the hardware tick counter.
class TickCount {
 public:
  constexpr TickCount() = default;
  static constexpr TickCount of(std::uint64_t n) { return TickCount{n}; }
  static constexpr TickCount zero() { return TickCount{0}; }
  /// Sentinel "unreachable": later than any real tick (halted-clock case).
  static constexpr TickCount never() {
    return TickCount{std::numeric_limits<std::uint64_t>::max()};
  }

  constexpr std::uint64_t value() const { return n_; }
  constexpr bool is_never() const { return n_ == never().n_; }

  constexpr auto operator<=>(const TickCount&) const = default;
  constexpr TickCount operator+(TickCount o) const { return TickCount{n_ + o.n_}; }
  constexpr TickCount operator-(TickCount o) const { return TickCount{n_ - o.n_}; }
  constexpr TickCount& operator+=(TickCount o) { n_ += o.n_; return *this; }
  constexpr TickCount& operator-=(TickCount o) { n_ -= o.n_; return *this; }

 private:
  constexpr explicit TickCount(std::uint64_t n) : n_(n) {}
  std::uint64_t n_ = 0;
};

/// An adder augend: clock advance per oscillator tick in 2^-51 s ("phi")
/// units.  Signed so it also expresses the ACU deterioration rate LAMBDA,
/// whose negative range shrinks an accuracy bound; the LTU STEP/AMORTSTEP
/// registers only ever hold the non-negative range.
class RateStep {
 public:
  constexpr RateStep() = default;
  static constexpr RateStep raw(std::int64_t v) { return RateStep{v}; }
  static constexpr RateStep zero() { return RateStep{0}; }

  constexpr std::int64_t value() const { return v_; }
  /// Register view: the 64-bit STEP/AMORTSTEP/LAMBDA bus encoding.
  constexpr std::uint64_t reg64() const { return static_cast<std::uint64_t>(v_); }
  constexpr bool negative() const { return v_ < 0; }
  /// Magnitude in phi per tick (for tick arithmetic on a validated augend).
  constexpr std::uint64_t magnitude() const {
    return static_cast<std::uint64_t>(v_ < 0 ? -v_ : v_);
  }

  constexpr auto operator<=>(const RateStep&) const = default;
  constexpr RateStep operator+(RateStep o) const { return RateStep{v_ + o.v_}; }
  constexpr RateStep operator-(RateStep o) const { return RateStep{v_ - o.v_}; }
  constexpr RateStep operator-() const { return RateStep{-v_}; }
  constexpr RateStep operator/(std::int64_t k) const { return RateStep{v_ / k}; }
  constexpr RateStep operator*(std::int64_t k) const { return RateStep{v_ * k}; }

 private:
  constexpr explicit RateStep(std::int64_t v) : v_(v) {}
  std::int64_t v_ = 0;
};

/// A 16-bit accuracy reading/setting in 2^-24 s (~59.6 ns) units: the ACU
/// ALPHA/ACCSET register format.  Saturates at 0xFFFF by construction --
/// a stale accuracy must never silently shrink.
class AlphaUnits {
 public:
  static constexpr std::uint16_t kMax = 0xFFFF;

  constexpr AlphaUnits() = default;
  static constexpr AlphaUnits of(std::uint16_t u) { return AlphaUnits{u}; }
  static constexpr AlphaUnits saturated() { return AlphaUnits{kMax}; }
  /// Round-up, saturating conversion from a real-time uncertainty: the
  /// programmed bound must always contain the true one.  Non-positive
  /// durations map to zero.
  static AlphaUnits from_duration(Duration d);

  constexpr std::uint16_t value() const { return u_; }
  constexpr bool is_saturated() const { return u_ == kMax; }
  /// Exact conversion to picoseconds (units * 10^12 >> 24, truncating --
  /// the same rounding the stamp-decoding software path has always used).
  constexpr Duration to_duration() const {
    return Duration::ps((std::int64_t{u_} * 1'000'000'000'000LL) >> 24);
  }

  constexpr auto operator<=>(const AlphaUnits&) const = default;

 private:
  constexpr explicit AlphaUnits(std::uint16_t u) : u_(u) {}
  std::uint16_t u_ = 0;
};

namespace literals {
constexpr Duration operator""_ps(unsigned long long v) { return Duration::ps(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_ns(unsigned long long v) { return Duration::ns(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_us(unsigned long long v) { return Duration::us(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_ms(unsigned long long v) { return Duration::ms(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_s(unsigned long long v) { return Duration::sec(static_cast<std::int64_t>(v)); }
}  // namespace literals

}  // namespace nti
