// Strong time types for the NTI simulation.
//
// All "real time t" in the paper (UTC as observed by an omniscient outside
// observer) is represented as SimTime: a count of picoseconds since the
// simulation epoch.  Picosecond resolution is two orders of magnitude finer
// than the UTCSU's own granularity (2^-24 s ~ 60 ns) and three orders finer
// than the 1 us precision target, so quantization of the substrate never
// masks the effects under study.  int64 picoseconds covers +/- 106 days.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace nti {

/// A signed span of simulated real time, in picoseconds.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration ps(std::int64_t v) { return Duration{v}; }
  static constexpr Duration ns(std::int64_t v) { return Duration{v * 1'000}; }
  static constexpr Duration us(std::int64_t v) { return Duration{v * 1'000'000}; }
  static constexpr Duration ms(std::int64_t v) { return Duration{v * 1'000'000'000}; }
  static constexpr Duration sec(std::int64_t v) { return Duration{v * 1'000'000'000'000}; }
  /// Nearest-picosecond conversion from floating-point seconds.
  static Duration from_sec_f(double seconds);

  constexpr std::int64_t count_ps() const { return ps_; }
  constexpr double to_sec_f() const { return static_cast<double>(ps_) * 1e-12; }
  constexpr double to_us_f() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double to_ns_f() const { return static_cast<double>(ps_) * 1e-3; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return Duration{ps_ + o.ps_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ps_ - o.ps_}; }
  constexpr Duration operator-() const { return Duration{-ps_}; }
  constexpr Duration& operator+=(Duration o) { ps_ += o.ps_; return *this; }
  constexpr Duration& operator-=(Duration o) { ps_ -= o.ps_; return *this; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ps_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ps_ / k}; }
  constexpr std::int64_t operator/(Duration o) const { return ps_ / o.ps_; }
  constexpr Duration abs() const { return Duration{ps_ < 0 ? -ps_ : ps_}; }

  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() { return Duration{std::numeric_limits<std::int64_t>::max()}; }

  std::string str() const;  ///< Human-readable, auto-scaled unit.

 private:
  constexpr explicit Duration(std::int64_t v) : ps_(v) {}
  std::int64_t ps_ = 0;
};

/// A point in simulated real time: picoseconds since the simulation epoch.
class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime from_ps(std::int64_t v) { return SimTime{v}; }
  static constexpr SimTime epoch() { return SimTime{0}; }
  /// Sentinel "never": later than any schedulable time.
  static constexpr SimTime never() { return SimTime{std::numeric_limits<std::int64_t>::max()}; }

  constexpr std::int64_t count_ps() const { return ps_; }
  constexpr double to_sec_f() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(Duration d) const { return SimTime{ps_ + d.count_ps()}; }
  constexpr SimTime operator-(Duration d) const { return SimTime{ps_ - d.count_ps()}; }
  constexpr Duration operator-(SimTime o) const { return Duration::ps(ps_ - o.ps_); }
  constexpr SimTime& operator+=(Duration d) { ps_ += d.count_ps(); return *this; }

  std::string str() const;

 private:
  constexpr explicit SimTime(std::int64_t v) : ps_(v) {}
  std::int64_t ps_ = 0;
};

namespace literals {
constexpr Duration operator""_ps(unsigned long long v) { return Duration::ps(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_ns(unsigned long long v) { return Duration::ns(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_us(unsigned long long v) { return Duration::us(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_ms(unsigned long long v) { return Duration::ms(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_s(unsigned long long v) { return Duration::sec(static_cast<std::int64_t>(v)); }
}  // namespace literals

}  // namespace nti
