#include "common/log.hpp"

#include <cstdarg>
#include <cstdio>

namespace nti {

std::uint32_t Log::mask_ = 0;

void Log::enable(LogCat cat) { mask_ |= static_cast<std::uint32_t>(cat); }
void Log::disable(LogCat cat) { mask_ &= ~static_cast<std::uint32_t>(cat); }
void Log::enable_all() { mask_ = ~0u; }
bool Log::enabled(LogCat cat) { return (mask_ & static_cast<std::uint32_t>(cat)) != 0; }

std::string format_ps(SimTime t) { return std::to_string(t.count_ps()); }

void Log::trace(LogCat cat, SimTime now, const char* fmt, ...) {
  if (!enabled(cat)) return;
  std::fprintf(stderr, "[%14s ps] ", format_ps(now).c_str());
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace nti
