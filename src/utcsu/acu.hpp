// ACU: accuracy units (paper Sec. 3.3).
//
// Two additional adder-based "clocks", driven by the same oscillator,
// hold the local accuracies alpha- and alpha+ and automatically
// *deteriorate* them (grow them by LAMBDA per tick) to account for the
// maximum oscillator drift between resynchronizations.  Architecturally
// visible properties modeled:
//   * 16-bit read value in units of 2^-24 s (~60 ns), the clock granularity;
//   * wrap-around suppression: the accumulator saturates at 0xFFFF instead
//     of wrapping (a stale accuracy must never *shrink* silently);
//   * zero-masking during continuous amortization: while the clock slews
//     toward the new value, one bound shrinks (negative lambda) and is
//     clamped at zero rather than going negative;
//   * atomic (re)initialization in conjunction with the LTU clock register.
#pragma once

#include <cstdint>

#include "common/phi.hpp"
#include "osc/oscillator.hpp"

namespace nti::utcsu {

/// One deteriorating accuracy accumulator.
class AccuracyCell {
 public:
  static constexpr int kAlphaShift = Phi::kFracBits - 24;  ///< phi per 2^-24 s
  static constexpr std::uint64_t kPhiPerUnit = 1ull << kAlphaShift;
  static constexpr std::uint64_t kSaturation = 0xFFFFull << kAlphaShift;

  /// Current 16-bit accuracy value at tick n.
  std::uint16_t read_at_tick(std::uint64_t n);
  /// Raw accumulator (phi units), saturated, at tick n.
  std::uint64_t raw_at_tick(std::uint64_t n);

  void set(std::uint64_t tick_now, std::uint16_t units);
  /// Deterioration augend per tick, in 2^-51 s; negative shrinks (clamped 0).
  void set_lambda(std::uint64_t tick_now, std::int64_t lambda);
  std::int64_t lambda() const { return lambda_; }

 private:
  void advance(std::uint64_t n);
  std::int64_t acc_ = 0;       ///< phi units; clamped to [0, kSaturation]
  std::int64_t lambda_ = 0;    ///< phi per tick
  std::uint64_t last_tick_ = 0;
};

/// The pair alpha- / alpha+ plus staged set registers.
class Acu {
 public:
  explicit Acu(osc::Oscillator& oscillator) : osc_(oscillator) {}

  AccuracyCell& minus() { return minus_; }
  AccuracyCell& plus() { return plus_; }

  std::uint16_t alpha_minus(SimTime t) { return minus_.read_at_tick(osc_.ticks_at(t)); }
  std::uint16_t alpha_plus(SimTime t) { return plus_.read_at_tick(osc_.ticks_at(t)); }

  /// Packed [31:16]=alpha-, [15:0]=alpha+ as captured by the stamp units.
  std::uint32_t packed_at_tick(std::uint64_t n) {
    return (std::uint32_t{minus_.read_at_tick(n)} << 16) | plus_.read_at_tick(n);
  }

  /// Staged values written via kRegAccSet*, applied atomically with the LTU
  /// state by the ApplyTimeSet strobe.
  void stage(std::uint16_t am, std::uint16_t ap) { staged_minus_ = am; staged_plus_ = ap; }
  void apply_staged(SimTime t) {
    const std::uint64_t n = osc_.ticks_at(t);
    minus_.set(n, staged_minus_);
    plus_.set(n, staged_plus_);
  }

 private:
  osc::Oscillator& osc_;
  AccuracyCell minus_;
  AccuracyCell plus_;
  std::uint16_t staged_minus_ = 0;
  std::uint16_t staged_plus_ = 0;
};

}  // namespace nti::utcsu
