// ACU: accuracy units (paper Sec. 3.3).
//
// Two additional adder-based "clocks", driven by the same oscillator,
// hold the local accuracies alpha- and alpha+ and automatically
// *deteriorate* them (grow them by LAMBDA per tick) to account for the
// maximum oscillator drift between resynchronizations.  Architecturally
// visible properties modeled:
//   * 16-bit read value in units of 2^-24 s (~60 ns), the clock granularity;
//   * wrap-around suppression: the accumulator saturates at 0xFFFF instead
//     of wrapping (a stale accuracy must never *shrink* silently);
//   * zero-masking during continuous amortization: while the clock slews
//     toward the new value, one bound shrinks (negative lambda) and is
//     clamped at zero rather than going negative;
//   * atomic (re)initialization in conjunction with the LTU clock register.
//
// Unit safety: tick indices are TickCount, deterioration rates RateStep,
// and 16-bit accuracy values AlphaUnits (common/time_types.hpp).
#pragma once

#include <cstdint>

#include "common/phi.hpp"
#include "osc/oscillator.hpp"

namespace nti::utcsu {

/// One deteriorating accuracy accumulator.
class AccuracyCell {
 public:
  static constexpr int kAlphaShift = Phi::kFracBits - 24;  ///< phi per 2^-24 s
  static constexpr std::uint64_t kPhiPerUnit = 1ull << kAlphaShift;
  static constexpr std::uint64_t kSaturation = 0xFFFFull << kAlphaShift;

  /// Current 16-bit accuracy value at tick n.
  AlphaUnits read_at_tick(TickCount n);
  /// Raw accumulator (phi units), saturated, at tick n.
  std::uint64_t raw_at_tick(TickCount n);

  void set(TickCount tick_now, AlphaUnits units);
  /// Deterioration augend per tick, in 2^-51 s; negative shrinks (clamped 0).
  void set_lambda(TickCount tick_now, RateStep lambda);
  RateStep lambda() const { return lambda_; }

 private:
  void advance(TickCount tick);
  std::int64_t acc_ = 0;              ///< phi units; clamped to [0, kSaturation]
  RateStep lambda_ = RateStep::zero();  ///< phi per tick
  std::uint64_t last_tick_ = 0;
};

/// The pair alpha- / alpha+ plus staged set registers.
class Acu {
 public:
  explicit Acu(osc::Oscillator& oscillator) : osc_(oscillator) {}

  AccuracyCell& minus() { return minus_; }
  AccuracyCell& plus() { return plus_; }

  AlphaUnits alpha_minus(SimTime t) {
    return minus_.read_at_tick(TickCount::of(osc_.ticks_at(t)));
  }
  AlphaUnits alpha_plus(SimTime t) {
    return plus_.read_at_tick(TickCount::of(osc_.ticks_at(t)));
  }

  /// Packed [31:16]=alpha-, [15:0]=alpha+ as captured by the stamp units.
  std::uint32_t packed_at_tick(TickCount n) {
    return (std::uint32_t{minus_.read_at_tick(n).value()} << 16) |
           plus_.read_at_tick(n).value();
  }

  /// Staged values written via kRegAccSet*, applied atomically with the LTU
  /// state by the ApplyTimeSet strobe.
  void stage(AlphaUnits am, AlphaUnits ap) { staged_minus_ = am; staged_plus_ = ap; }
  void apply_staged(SimTime t) {
    const TickCount n = TickCount::of(osc_.ticks_at(t));
    minus_.set(n, staged_minus_);
    plus_.set(n, staged_plus_);
  }

 private:
  osc::Oscillator& osc_;
  AccuracyCell minus_;
  AccuracyCell plus_;
  AlphaUnits staged_minus_{};
  AlphaUnits staged_plus_{};
};

}  // namespace nti::utcsu
