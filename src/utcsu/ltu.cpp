#include "utcsu/ltu.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>

namespace nti::utcsu {
namespace {

/// ceil((target - from) / rate) for Phi quantities; rate > 0.
std::uint64_t ticks_to_reach(Phi from, Phi target, std::uint64_t rate) {
  if (from >= target) return 0;
  const u128 gap = target.raw_value() - from.raw_value();
  return static_cast<std::uint64_t>((gap + rate - 1) / rate);
}

}  // namespace

Ltu::Ltu(osc::Oscillator& oscillator, Phi initial)
    : osc_(oscillator), state_(initial), step_(nominal_step(oscillator.nominal_hz())) {}

// nti-lint: begin-allow(float): configuration boundary -- the augend is
// derived once from the spec-sheet frequency; all tick arithmetic that
// follows is exact integer math on the validated result.
RateStep Ltu::nominal_step(double f_osc_hz) {
  if (!std::isfinite(f_osc_hz) || f_osc_hz <= 0.0) {
    const std::string msg = "Ltu::nominal_step: oscillator frequency must be a "
                            "positive finite Hz value, got " +
                            std::to_string(f_osc_hz);
    std::fprintf(stderr, "nti: %s\n", msg.c_str());
    throw std::invalid_argument(msg);
  }
  const double step = std::nearbyint(static_cast<double>(Phi::kPerSec) / f_osc_hz);
  // The STEP register is 64 bits, and RateStep's signed domain is what the
  // LTU adder accepts; a frequency below ~2.4e-4 Hz would overflow it (the
  // old llround cast was UB there), one above 2^51 Hz rounds the augend to
  // zero and silently halts the clock.
  if (step < 1.0 ||
      step > static_cast<double>(std::numeric_limits<std::int64_t>::max())) {
    const std::string msg = "Ltu::nominal_step: augend for f_osc = " +
                            std::to_string(f_osc_hz) +
                            " Hz does not fit the STEP register";
    std::fprintf(stderr, "nti: %s\n", msg.c_str());
    throw std::invalid_argument(msg);
  }
  return RateStep::raw(std::llround(static_cast<double>(Phi::kPerSec) / f_osc_hz));
  // nti-lint: end-allow(float)
}

void Ltu::advance_to_tick(TickCount tick) {
  const std::uint64_t n = tick.value();
  while (last_tick_ < n) {
    const bool amortizing_now = amort_ticks_left_ > 0;
    const std::uint64_t rate = amortizing_now ? amort_step_.magnitude() : step_.magnitude();
    std::uint64_t k = n - last_tick_;
    if (amortizing_now && amort_ticks_left_ < k) k = amort_ticks_left_;

    // Apply a pending leap exactly at the tick where the clock first
    // reaches the armed clock value.
    bool leap_now = false;
    if (leap_armed_ && rate > 0 && state_ < leap_at_) {
      const std::uint64_t to_leap = ticks_to_reach(state_, leap_at_, rate);
      if (to_leap <= k) {
        k = to_leap;
        leap_now = true;
      }
    } else if (leap_armed_ && state_ >= leap_at_) {
      leap_now = true;  // already past the armed value: apply before advancing
      k = 0;
    }

    state_ += Phi::raw(u128{rate} * k);
    last_tick_ += k;
    if (amortizing_now) amort_ticks_left_ -= k;

    if (leap_now) {
      leap_armed_ = false;
      if (leap_insert_) {
        state_ += Phi::from_sec(1);
      } else {
        assert(state_.whole_seconds() >= 1 && "leap delete before 1 s of clock time");
        state_ = state_.plus(PhiDelta::raw(-static_cast<i128>(Phi::kPerSec)));
      }
    }
    if (k == 0 && !leap_now) break;  // rate 0 and nothing to do: clock halted
  }
}

Phi Ltu::read(SimTime t) {
  advance_to_tick(TickCount::of(osc_.ticks_at(t)));
  return state_;
}

Phi Ltu::value_at_tick(TickCount tick) {
  const std::uint64_t n = tick.value();
  if (n <= last_tick_) return state_;
  // Project under the current rate regime without committing the advance:
  // captures sample a couple of ticks in the future (synchronizer stages)
  // and must not block subsequent reads of earlier ticks.  The projection
  // must mirror advance_to_tick *including* an armed leap second --
  // otherwise capture stamps taken within a few ticks of the leap boundary
  // are off by a whole second versus the committed clock.
  Phi v = state_;
  std::uint64_t at = last_tick_;
  std::uint64_t amort_left = amort_ticks_left_;
  bool leap_armed = leap_armed_;
  while (at < n) {
    const bool amortizing_now = amort_left > 0;
    const std::uint64_t rate = amortizing_now ? amort_step_.magnitude() : step_.magnitude();
    std::uint64_t k = n - at;
    if (amortizing_now && amort_left < k) k = amort_left;

    bool leap_now = false;
    if (leap_armed && rate > 0 && v < leap_at_) {
      const std::uint64_t to_leap = ticks_to_reach(v, leap_at_, rate);
      if (to_leap <= k) {
        k = to_leap;
        leap_now = true;
      }
    } else if (leap_armed && v >= leap_at_) {
      leap_now = true;
      k = 0;
    }

    v += Phi::raw(u128{rate} * k);
    at += k;
    if (amortizing_now) amort_left -= k;

    if (leap_now) {
      leap_armed = false;
      if (leap_insert_) {
        v += Phi::from_sec(1);
      } else if (v.whole_seconds() >= 1) {
        v = v.plus(PhiDelta::raw(-static_cast<i128>(Phi::kPerSec)));
      }
    }
    if (k == 0 && !leap_now) break;  // rate 0 and nothing to do: clock halted
  }
  return v;
}

TickCount Ltu::capture_tick(SimTime t, int synchronizer_stages) const {
  return TickCount::of(osc_.ticks_at(t) +
                       static_cast<std::uint64_t>(synchronizer_stages));
}

void Ltu::set_step(SimTime t, RateStep new_step) {
  assert(!new_step.negative() && "STEP register holds a non-negative augend");
  advance_to_tick(TickCount::of(osc_.ticks_at(t)));
  step_ = new_step;
}

void Ltu::set_state(SimTime t, Phi value) {
  advance_to_tick(TickCount::of(osc_.ticks_at(t)));
  state_ = value;
  amort_ticks_left_ = 0;
}

void Ltu::start_amortization(SimTime t, RateStep amort_step, TickCount ticks) {
  assert(!amort_step.negative() && "AMORTSTEP register holds a non-negative augend");
  advance_to_tick(TickCount::of(osc_.ticks_at(t)));
  amort_step_ = amort_step;
  amort_ticks_left_ = ticks.value();
}

void Ltu::abort_amortization(SimTime t) {
  advance_to_tick(TickCount::of(osc_.ticks_at(t)));
  amort_ticks_left_ = 0;
}

void Ltu::arm_leap(bool insert, Phi at) {
  leap_armed_ = true;
  leap_insert_ = insert;
  leap_at_ = at;
}

TickCount Ltu::tick_reaching(Phi target) const {
  if (state_ >= target) return TickCount::of(last_tick_);
  Phi v = state_;
  std::uint64_t at = last_tick_;
  std::uint64_t amort_left = amort_ticks_left_;

  if (amort_left > 0) {
    if (amort_step_ == RateStep::zero()) {
      // Clock halted for the amortization phase; target reached afterwards.
      at += amort_left;
      amort_left = 0;
    } else {
      const std::uint64_t need = ticks_to_reach(v, target, amort_step_.magnitude());
      if (need <= amort_left) return TickCount::of(at + need);
      v += Phi::raw(u128{amort_step_.magnitude()} * amort_left);
      at += amort_left;
      amort_left = 0;
    }
  }
  if (step_ == RateStep::zero()) return TickCount::never();
  return TickCount::of(at + ticks_to_reach(v, target, step_.magnitude()));
}

}  // namespace nti::utcsu
