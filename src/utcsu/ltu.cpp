#include "utcsu/ltu.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace nti::utcsu {
namespace {
constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

/// ceil((target - from) / rate) for Phi quantities; rate > 0.
std::uint64_t ticks_to_reach(Phi from, Phi target, std::uint64_t rate) {
  if (from >= target) return 0;
  const u128 gap = target.raw_value() - from.raw_value();
  return static_cast<std::uint64_t>((gap + rate - 1) / rate);
}
}  // namespace

Ltu::Ltu(osc::Oscillator& oscillator, Phi initial)
    : osc_(oscillator), state_(initial), step_(nominal_step(oscillator.nominal_hz())) {}

std::uint64_t Ltu::nominal_step(double f_osc_hz) {
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(Phi::kPerSec) / f_osc_hz));
}

void Ltu::advance_to_tick(std::uint64_t n) {
  while (last_tick_ < n) {
    const bool amortizing_now = amort_ticks_left_ > 0;
    const std::uint64_t rate = amortizing_now ? amort_step_ : step_;
    std::uint64_t k = n - last_tick_;
    if (amortizing_now && amort_ticks_left_ < k) k = amort_ticks_left_;

    // Apply a pending leap exactly at the tick where the clock first
    // reaches the armed clock value.
    bool leap_now = false;
    if (leap_armed_ && rate > 0 && state_ < leap_at_) {
      const std::uint64_t to_leap = ticks_to_reach(state_, leap_at_, rate);
      if (to_leap <= k) {
        k = to_leap;
        leap_now = true;
      }
    } else if (leap_armed_ && state_ >= leap_at_) {
      leap_now = true;  // already past the armed value: apply before advancing
      k = 0;
    }

    state_ += Phi::raw(u128{rate} * k);
    last_tick_ += k;
    if (amortizing_now) amort_ticks_left_ -= k;

    if (leap_now) {
      leap_armed_ = false;
      if (leap_insert_) {
        state_ += Phi::from_sec(1);
      } else {
        assert(state_.whole_seconds() >= 1 && "leap delete before 1 s of clock time");
        state_ = state_.plus(PhiDelta::raw(-static_cast<i128>(Phi::kPerSec)));
      }
    }
    if (k == 0 && !leap_now) break;  // rate 0 and nothing to do: clock halted
  }
}

Phi Ltu::read(SimTime t) {
  advance_to_tick(osc_.ticks_at(t));
  return state_;
}

Phi Ltu::value_at_tick(std::uint64_t n) {
  if (n <= last_tick_) return state_;
  // Project under the current rate regime without committing the advance:
  // captures sample a couple of ticks in the future (synchronizer stages)
  // and must not block subsequent reads of earlier ticks.  The projection
  // must mirror advance_to_tick *including* an armed leap second --
  // otherwise capture stamps taken within a few ticks of the leap boundary
  // are off by a whole second versus the committed clock.
  Phi v = state_;
  std::uint64_t at = last_tick_;
  std::uint64_t amort_left = amort_ticks_left_;
  bool leap_armed = leap_armed_;
  while (at < n) {
    const bool amortizing_now = amort_left > 0;
    const std::uint64_t rate = amortizing_now ? amort_step_ : step_;
    std::uint64_t k = n - at;
    if (amortizing_now && amort_left < k) k = amort_left;

    bool leap_now = false;
    if (leap_armed && rate > 0 && v < leap_at_) {
      const std::uint64_t to_leap = ticks_to_reach(v, leap_at_, rate);
      if (to_leap <= k) {
        k = to_leap;
        leap_now = true;
      }
    } else if (leap_armed && v >= leap_at_) {
      leap_now = true;
      k = 0;
    }

    v += Phi::raw(u128{rate} * k);
    at += k;
    if (amortizing_now) amort_left -= k;

    if (leap_now) {
      leap_armed = false;
      if (leap_insert_) {
        v += Phi::from_sec(1);
      } else if (v.whole_seconds() >= 1) {
        v = v.plus(PhiDelta::raw(-static_cast<i128>(Phi::kPerSec)));
      }
    }
    if (k == 0 && !leap_now) break;  // rate 0 and nothing to do: clock halted
  }
  return v;
}

std::uint64_t Ltu::capture_tick(SimTime t, int synchronizer_stages) const {
  return osc_.ticks_at(t) + static_cast<std::uint64_t>(synchronizer_stages);
}

void Ltu::set_step(SimTime t, std::uint64_t new_step) {
  advance_to_tick(osc_.ticks_at(t));
  step_ = new_step;
}

void Ltu::set_state(SimTime t, Phi value) {
  advance_to_tick(osc_.ticks_at(t));
  state_ = value;
  amort_ticks_left_ = 0;
}

void Ltu::start_amortization(SimTime t, std::uint64_t amort_step, std::uint64_t ticks) {
  advance_to_tick(osc_.ticks_at(t));
  amort_step_ = amort_step;
  amort_ticks_left_ = ticks;
}

void Ltu::abort_amortization(SimTime t) {
  advance_to_tick(osc_.ticks_at(t));
  amort_ticks_left_ = 0;
}

void Ltu::arm_leap(bool insert, Phi at) {
  leap_armed_ = true;
  leap_insert_ = insert;
  leap_at_ = at;
}

std::uint64_t Ltu::tick_reaching(Phi target) const {
  if (state_ >= target) return last_tick_;
  Phi v = state_;
  std::uint64_t at = last_tick_;
  std::uint64_t amort_left = amort_ticks_left_;

  if (amort_left > 0) {
    if (amort_step_ == 0) {
      // Clock halted for the amortization phase; target reached afterwards.
      at += amort_left;
      amort_left = 0;
    } else {
      const std::uint64_t need = ticks_to_reach(v, target, amort_step_);
      if (need <= amort_left) return at + need;
      v += Phi::raw(u128{amort_step_} * amort_left);
      at += amort_left;
      amort_left = 0;
    }
  }
  if (step_ == 0) return kNever;
  return at + ticks_to_reach(v, target, step_);
}

}  // namespace nti::utcsu
