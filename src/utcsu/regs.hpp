// UTCSU register map.
//
// The ASIC exposes a 512-byte register window (paper Sec. 3.4, Fig. 6).
// The authoritative register-level spec ([SS95], TU Wien TR 183/1-56) is
// not published; this header defines a documented reconstruction that
// preserves every architecturally stated property: atomic 32-bit
// timestamp + checksummed macrostamp reads, 64-bit STEP augend in 2^-51 s
// units, 16-bit accuracies, six SSUs, three GPUs, nine APUs, 48-bit duty
// timers, three interrupt classes, BTU/SNU test & snapshot features.
// All registers are 32 bits wide and 4-byte aligned.
#pragma once

#include <cstdint>

namespace nti::utcsu {

using RegOffset = std::uint32_t;

// ---------------------------------------------------------------- LTU ----
inline constexpr RegOffset kRegTimestamp = 0x000;   // RO; latches macrostamp
inline constexpr RegOffset kRegMacrostamp = 0x004;  // RO; latched by timestamp read
inline constexpr RegOffset kRegStepLo = 0x008;      // RW; augend bits 31..0  (2^-51 s)
inline constexpr RegOffset kRegStepHi = 0x00C;      // RW; augend bits 63..32
inline constexpr RegOffset kRegAmortStepLo = 0x010; // RW; amortization augend lo
inline constexpr RegOffset kRegAmortStepHi = 0x014; // RW; amortization augend hi
inline constexpr RegOffset kRegAmortTicksLo = 0x018;// RW; amortization length (ticks)
inline constexpr RegOffset kRegAmortTicksHi = 0x01C;
inline constexpr RegOffset kRegTimeSet0 = 0x020;    // W; new state bits 31..0 (phi)
inline constexpr RegOffset kRegTimeSet1 = 0x024;    // W; bits 63..32
inline constexpr RegOffset kRegTimeSet2 = 0x028;    // W; bits 90..64
inline constexpr RegOffset kRegCtrl = 0x02C;        // RW; control bits below

// kRegCtrl bits:
inline constexpr std::uint32_t kCtrlApplyTimeSet = 1u << 0;  // strobe: load TimeSet atomically (with ACU AccSet)
inline constexpr std::uint32_t kCtrlStartAmort = 1u << 1;    // strobe: begin continuous amortization
inline constexpr std::uint32_t kCtrlAbortAmort = 1u << 2;    // strobe: cancel amortization
inline constexpr std::uint32_t kCtrlLeapInsert = 1u << 3;    // strobe: arm +1 s leap at next duty-timer LEAP
inline constexpr std::uint32_t kCtrlLeapDelete = 1u << 4;    // strobe: arm -1 s leap
inline constexpr std::uint32_t kCtrlReliableSync = 1u << 5;  // level: two-stage input synchronizers
inline constexpr std::uint32_t kCtrlApplyAccSet = 1u << 6;   // strobe: load staged accuracies only

// ---------------------------------------------------------------- ACU ----
inline constexpr RegOffset kRegAlphaMinus = 0x040;   // RO; 16-bit, 2^-24 s units
inline constexpr RegOffset kRegAlphaPlus = 0x044;    // RO
inline constexpr RegOffset kRegLambdaMinus = 0x048;  // RW; deterioration per tick (2^-51 s)
inline constexpr RegOffset kRegLambdaPlus = 0x04C;   // RW
inline constexpr RegOffset kRegAccSetMinus = 0x050;  // W; staged alpha- (16-bit)
inline constexpr RegOffset kRegAccSetPlus = 0x054;   // W; staged alpha+

// ---------------------------------------------------------------- SSU ----
// Six send/receive timestamp units (paper: fault-tolerant redundant
// communication architectures / gateway nodes).
inline constexpr int kNumSsu = 6;
inline constexpr RegOffset kRegSsuBase = 0x080;
inline constexpr RegOffset kSsuStride = 0x20;
// Per-SSU offsets:
inline constexpr RegOffset kSsuRxTimestamp = 0x00;  // RO
inline constexpr RegOffset kSsuRxMacro = 0x04;      // RO
inline constexpr RegOffset kSsuRxAlpha = 0x08;      // RO; [31:16]=a-, [15:0]=a+
inline constexpr RegOffset kSsuTxTimestamp = 0x0C;  // RO
inline constexpr RegOffset kSsuTxMacro = 0x10;      // RO
inline constexpr RegOffset kSsuTxAlpha = 0x14;      // RO
inline constexpr RegOffset kSsuStatus = 0x18;       // RW1C; bits below

inline constexpr std::uint32_t kSsuStatusRxValid = 1u << 0;
inline constexpr std::uint32_t kSsuStatusTxValid = 1u << 1;
inline constexpr std::uint32_t kSsuStatusRxOverrun = 1u << 2;  // RX trigger before previous read
inline constexpr std::uint32_t kSsuStatusTxOverrun = 1u << 3;

// ---------------------------------------------------------------- GPU ----
inline constexpr int kNumGpu = 3;
inline constexpr RegOffset kRegGpuBase = 0x140;
inline constexpr RegOffset kGpuStride = 0x10;
inline constexpr RegOffset kGpuTimestamp = 0x00;  // RO; 1pps capture
inline constexpr RegOffset kGpuMacro = 0x04;
inline constexpr RegOffset kGpuAlpha = 0x08;
inline constexpr RegOffset kGpuStatus = 0x0C;     // RW1C: bit0 valid, bit1 overrun

// ---------------------------------------------------------------- APU ----
inline constexpr int kNumApu = 9;
inline constexpr RegOffset kRegApuBase = 0x180;
inline constexpr RegOffset kApuStride = 0x10;
inline constexpr RegOffset kApuTimestamp = 0x00;
inline constexpr RegOffset kApuMacro = 0x04;
inline constexpr RegOffset kApuAlpha = 0x08;
inline constexpr RegOffset kApuStatus = 0x0C;

// ---------------------------------------------------------- duty timers ---
// Eight general 48-bit duty timers.  By convention the clock-sync software
// uses 0 for round send, 1 for resynchronization (kP + Delta), 2 for
// amortization end, 3 for leap seconds; 4..7 generate application events.
inline constexpr int kNumDutyTimers = 8;
inline constexpr RegOffset kRegDutyBase = 0x280;
inline constexpr RegOffset kDutyStride = 0x10;
inline constexpr RegOffset kDutyCompareLo = 0x00;  // RW; compare frac24 in [23:0], sec[7:0] in [31:24]
inline constexpr RegOffset kDutyCompareHi = 0x04;  // RW; sec bits 31..8 in [23:0]
inline constexpr RegOffset kDutyCtrl = 0x08;       // RW; bit0 arm (auto-clears on fire)
inline constexpr RegOffset kDutyStatus = 0x0C;     // RW1C; bit0 fired

// ---------------------------------------------------------------- ITU ----
inline constexpr RegOffset kRegIntStatus = 0x300;  // RO; one bit per IntSource
inline constexpr RegOffset kRegIntEnable = 0x304;  // RW
inline constexpr RegOffset kRegIntAck = 0x308;     // W1C

// ---------------------------------------------------------------- BTU ----
inline constexpr RegOffset kRegBtuChecksum = 0x340;  // RO; checksum of current time
inline constexpr RegOffset kRegBtuBlocksum = 0x344;  // RO; blocksum over LTU+ACU regs
inline constexpr RegOffset kRegBtuSignature = 0x348; // RO; CRC-8 signature
inline constexpr RegOffset kRegBtuSelftest = 0x34C;  // RW; write starts selftest, read = pass bit

// ---------------------------------------------------------------- SNU ----
inline constexpr RegOffset kRegSnapTimestamp = 0x360;  // RO; HWSNAP capture
inline constexpr RegOffset kRegSnapMacro = 0x364;
inline constexpr RegOffset kRegSnapAlpha = 0x368;
inline constexpr RegOffset kRegSnapStatus = 0x36C;     // RW1C

// ---------------------------------------------------------------- misc ---
inline constexpr RegOffset kRegIdVersion = 0x3F0;  // RO; 'UT' | version
inline constexpr std::uint32_t kIdVersionValue = 0x55544101;  // "UTA" v1

// Documented deviation: the paper's Fig. 6 shows a 512-byte register
// segment; our fully unpacked map (one 32-bit word per field, no sub-word
// packing) needs 0x3F4 bytes, so the model decodes a 1 KB window.  The
// ASIC packed several fields per word; unpacking keeps the model readable
// without changing any architectural behaviour.
inline constexpr std::uint32_t kRegWindowBytes = 1024;

/// Interrupt sources, each one bit in kRegIntStatus/Enable/Ack.
/// Static mapping onto the three UTCSU interrupt pins (paper Sec. 3.3):
/// SSU -> INTN (network), duty timers -> INTT (timer), GPU/APU/SNU -> INTA.
enum class IntSource : std::uint32_t {
  kSsuRx0 = 0,   // .. kSsuRx5 = 5
  kSsuTx0 = 6,   // .. kSsuTx5 = 11
  kDuty0 = 12,   // .. kDuty7 = 19
  kGpu0 = 20,    // .. kGpu2 = 22
  kApu0 = 23,    // .. kApu8 = 31
  // The SNU snapshot unit is a debug facility and is polled via
  // kRegSnapStatus rather than interrupt-driven (all 32 status bits are
  // taken by SSU/duty/GPU/APU sources).
};

inline constexpr std::uint32_t int_bit(IntSource s, int index = 0) {
  return 1u << (static_cast<std::uint32_t>(s) + static_cast<std::uint32_t>(index));
}

/// The three UTCSU interrupt output pins.
enum class IntLine { kIntN, kIntT, kIntA };

}  // namespace nti::utcsu
