#include "utcsu/utcsu.hpp"

#include <cassert>

namespace nti::utcsu {
namespace {
constexpr u128 kStateMask91 = (u128{1} << 91) - 1;
}

Utcsu::Utcsu(sim::Engine& engine, osc::Oscillator& oscillator, UtcsuConfig cfg)
    : engine_(engine),
      osc_(oscillator),
      ltu_(oscillator, cfg.initial_time),
      acu_(oscillator),
      reliable_(cfg.reliable_pin),
      step_shadow_(Ltu::nominal_step(oscillator.nominal_hz()).reg64()) {}

// ---------------------------------------------------------------- capture --

StampRegs Utcsu::capture(SimTime t) {
  const TickCount tick = ltu_.capture_tick(t, stages());
  const Phi v = ltu_.value_at_tick(tick);
  const std::uint32_t packed = acu_.packed_at_tick(tick);
  return pack_stamp(v, static_cast<std::uint16_t>(packed >> 16),
                    static_cast<std::uint16_t>(packed & 0xFFFF));
}

StampRegs Utcsu::sample_now(SimTime t) {
  // Synchronous bus access: no synchronizer stages, sample at the last
  // completed oscillator edge.
  const TickCount tick = TickCount::of(osc_.ticks_at(t));
  const Phi v = ltu_.read(t);
  const std::uint32_t packed = acu_.packed_at_tick(tick);
  return pack_stamp(v, static_cast<std::uint16_t>(packed >> 16),
                    static_cast<std::uint16_t>(packed & 0xFFFF));
}

// ----------------------------------------------------------- input pins ----

void Utcsu::trigger_transmit(int ssu, SimTime t) {
  auto& st = ssu_status_[static_cast<std::size_t>(ssu)];
  if (st & kSsuStatusTxValid) st |= kSsuStatusTxOverrun;
  ssu_tx_[static_cast<std::size_t>(ssu)] = capture(t);
  st |= kSsuStatusTxValid;
  raise_int(int_bit(IntSource::kSsuTx0, ssu));
}

void Utcsu::trigger_receive(int ssu, SimTime t) {
  auto& st = ssu_status_[static_cast<std::size_t>(ssu)];
  if (st & kSsuStatusRxValid) st |= kSsuStatusRxOverrun;
  ssu_rx_[static_cast<std::size_t>(ssu)] = capture(t);
  st |= kSsuStatusRxValid;
  raise_int(int_bit(IntSource::kSsuRx0, ssu));
}

void Utcsu::pps_pulse(int gpu, SimTime t) {
  auto& st = gpu_status_[static_cast<std::size_t>(gpu)];
  if (st & 1u) st |= 2u;
  gpu_[static_cast<std::size_t>(gpu)] = capture(t);
  st |= 1u;
  raise_int(int_bit(IntSource::kGpu0, gpu));
}

void Utcsu::app_pulse(int apu, SimTime t) {
  auto& st = apu_status_[static_cast<std::size_t>(apu)];
  if (st & 1u) st |= 2u;
  apu_[static_cast<std::size_t>(apu)] = capture(t);
  st |= 1u;
  raise_int(int_bit(IntSource::kApu0, apu));
}

void Utcsu::hw_snapshot(SimTime t) {
  if (snap_status_ & 1u) snap_status_ |= 2u;
  snap_ = capture(t);
  snap_status_ |= 1u;  // polled, no interrupt (see regs.hpp)
}

void Utcsu::sync_run(SimTime t) { apply_time_set(t); }

void Utcsu::apply_time_set(SimTime t) {
  const u128 raw = (u128{time_set_[2]} << 64) | (u128{time_set_[1]} << 32) |
                   u128{time_set_[0]};
  ltu_.set_state(t, Phi::raw(raw & kStateMask91));
  acu_.apply_staged(t);
  rearm_duty_timers(t);
}

// ------------------------------------------------------------ interrupts ---

IntLine Utcsu::line_of_bit(int bit) {
  if (bit < 12) return IntLine::kIntN;   // SSU rx/tx
  if (bit < 20) return IntLine::kIntT;   // duty timers
  return IntLine::kIntA;                 // GPU / APU
}

void Utcsu::raise_int(std::uint32_t bit) {
  int_status_ |= bit;
  update_lines();
}

bool Utcsu::line_level(IntLine line) const {
  return line_level_[static_cast<std::size_t>(line)];
}

void Utcsu::update_lines() {
  const std::uint32_t pending = int_status_ & int_enable_;
  bool level[3] = {false, false, false};
  for (int bit = 0; bit < 32; ++bit) {
    if (pending & (1u << bit)) {
      level[static_cast<std::size_t>(line_of_bit(bit))] = true;
    }
  }
  for (int l = 0; l < 3; ++l) {
    const auto idx = static_cast<std::size_t>(l);
    if (level[idx] != line_level_[idx]) {
      line_level_[idx] = level[idx];
      if (on_int_line) on_int_line(static_cast<IntLine>(l), level[idx]);
      for (const auto& fn : listeners_) fn(static_cast<IntLine>(l), level[idx]);
    }
  }
}

// ------------------------------------------------------------ duty timers --

Phi Utcsu::duty_target(const DutyTimer& d, SimTime t) {
  // 48-bit compare: seconds mod 2^24 and frac24.  Extend with the current
  // epoch of the clock; a compare value that already passed fires
  // immediately (documented deviation from wait-for-wrap hardware, see
  // utcsu/regs.hpp).
  const Phi now = ltu_.read(t);
  const std::uint64_t sec_now = now.whole_seconds();
  const std::uint64_t sec_base = sec_now & ~0xFF'FFFFull;
  const std::uint64_t sec = sec_base | (d.compare_hi & 0xFF'FFFF);
  return Phi::raw((u128{sec} << Phi::kFracBits) |
                  (u128{d.compare_lo & 0xFF'FFFF} << (Phi::kFracBits - 24)));
}

void Utcsu::schedule_duty(int idx, SimTime t) {
  auto& d = duty_[static_cast<std::size_t>(idx)];
  d.event.cancel();
  if (!d.armed) return;
  const Phi target = duty_target(d, t);
  const TickCount tick = ltu_.tick_reaching(target);
  const SimTime when = (tick == TickCount::zero() || ltu_.read(t) >= target)
                           ? t
                           : osc_.time_of_tick(tick.value());
  d.event = engine_.schedule_at(when, [this, idx] {
    auto& timer = duty_[static_cast<std::size_t>(idx)];
    timer.armed = false;
    timer.fired = true;
    raise_int(int_bit(IntSource::kDuty0, idx));
  });
}

void Utcsu::rearm_duty_timers(SimTime t) {
  for (int i = 0; i < kNumDutyTimers; ++i) {
    if (duty_[static_cast<std::size_t>(i)].armed) schedule_duty(i, t);
  }
}

// -------------------------------------------------------------- bus (BIU) --

std::uint32_t Utcsu::bus_read(SimTime t, RegOffset off) {
  assert(off < kRegWindowBytes && (off & 3u) == 0);

  // Stamp unit banks first (regular strides).
  if (off >= kRegSsuBase && off < kRegSsuBase + kNumSsu * kSsuStride) {
    const auto idx = (off - kRegSsuBase) / kSsuStride;
    const auto sub = (off - kRegSsuBase) % kSsuStride;
    const auto& rx = ssu_rx_[idx];
    const auto& tx = ssu_tx_[idx];
    switch (sub) {
      case kSsuRxTimestamp: return rx.timestamp;
      case kSsuRxMacro: return rx.macrostamp;
      case kSsuRxAlpha: return rx.alpha;
      case kSsuTxTimestamp: return tx.timestamp;
      case kSsuTxMacro: return tx.macrostamp;
      case kSsuTxAlpha: return tx.alpha;
      case kSsuStatus: return ssu_status_[idx];
      default: return 0;
    }
  }
  if (off >= kRegGpuBase && off < kRegGpuBase + kNumGpu * kGpuStride) {
    const auto idx = (off - kRegGpuBase) / kGpuStride;
    const auto sub = (off - kRegGpuBase) % kGpuStride;
    switch (sub) {
      case kGpuTimestamp: return gpu_[idx].timestamp;
      case kGpuMacro: return gpu_[idx].macrostamp;
      case kGpuAlpha: return gpu_[idx].alpha;
      case kGpuStatus: return gpu_status_[idx];
      default: return 0;
    }
  }
  if (off >= kRegApuBase && off < kRegApuBase + kNumApu * kApuStride) {
    const auto idx = (off - kRegApuBase) / kApuStride;
    const auto sub = (off - kRegApuBase) % kApuStride;
    switch (sub) {
      case kApuTimestamp: return apu_[idx].timestamp;
      case kApuMacro: return apu_[idx].macrostamp;
      case kApuAlpha: return apu_[idx].alpha;
      case kApuStatus: return apu_status_[idx];
      default: return 0;
    }
  }
  if (off >= kRegDutyBase && off < kRegDutyBase + kNumDutyTimers * kDutyStride) {
    const auto idx = (off - kRegDutyBase) / kDutyStride;
    const auto sub = (off - kRegDutyBase) % kDutyStride;
    const auto& d = duty_[idx];
    switch (sub) {
      case kDutyCompareLo: return static_cast<std::uint32_t>(d.compare_lo);
      case kDutyCompareHi: return static_cast<std::uint32_t>(d.compare_hi);
      case kDutyCtrl: return d.armed ? 1u : 0u;
      case kDutyStatus: return d.fired ? 1u : 0u;
      default: return 0;
    }
  }

  switch (off) {
    case kRegTimestamp: {
      // Atomic read: latch the matching macrostamp for the follow-up read.
      const StampRegs s = sample_now(t);
      macro_shadow_ = s.macrostamp;
      return s.timestamp;
    }
    case kRegMacrostamp:
      return macro_shadow_;
    case kRegStepLo:
      return static_cast<std::uint32_t>(ltu_.step().reg64());
    case kRegStepHi:
      return static_cast<std::uint32_t>(ltu_.step().reg64() >> 32);
    case kRegAmortStepLo:
      return static_cast<std::uint32_t>(amort_step_shadow_);
    case kRegAmortStepHi:
      return static_cast<std::uint32_t>(amort_step_shadow_ >> 32);
    case kRegAmortTicksLo:
      return static_cast<std::uint32_t>(ltu_.amort_ticks_left().value());
    case kRegAmortTicksHi:
      return static_cast<std::uint32_t>(ltu_.amort_ticks_left().value() >> 32);
    case kRegCtrl:
      return ctrl_ & kCtrlReliableSync;  // strobes read back as 0
    case kRegAlphaMinus:
      return acu_.alpha_minus(t).value();
    case kRegAlphaPlus:
      return acu_.alpha_plus(t).value();
    case kRegLambdaMinus:
      return static_cast<std::uint32_t>(acu_.minus().lambda().reg64());
    case kRegLambdaPlus:
      return static_cast<std::uint32_t>(acu_.plus().lambda().reg64());
    case kRegIntStatus:
      return int_status_;
    case kRegIntEnable:
      return int_enable_;
    case kRegBtuChecksum:
      return time_checksum8(ntp56_of(ltu_.read(t)));
    case kRegBtuBlocksum: {
      const StampRegs s = sample_now(t);
      const std::uint32_t words[4] = {s.timestamp, s.macrostamp, s.alpha,
                                      static_cast<std::uint32_t>(ltu_.step().reg64())};
      return blocksum16(words);
    }
    case kRegBtuSignature: {
      const StampRegs s = sample_now(t);
      const std::uint8_t bytes[8] = {
          static_cast<std::uint8_t>(s.timestamp), static_cast<std::uint8_t>(s.timestamp >> 8),
          static_cast<std::uint8_t>(s.timestamp >> 16), static_cast<std::uint8_t>(s.timestamp >> 24),
          static_cast<std::uint8_t>(s.macrostamp), static_cast<std::uint8_t>(s.macrostamp >> 8),
          static_cast<std::uint8_t>(s.macrostamp >> 16), static_cast<std::uint8_t>(s.macrostamp >> 24)};
      return crc8(bytes);
    }
    case kRegBtuSelftest:
      return 1;  // the modeled datapath always passes; fault injection for
                 // self-checking tests happens above this layer
    case kRegSnapTimestamp:
      return snap_.timestamp;
    case kRegSnapMacro:
      return snap_.macrostamp;
    case kRegSnapAlpha:
      return snap_.alpha;
    case kRegSnapStatus:
      return snap_status_;
    case kRegIdVersion:
      return kIdVersionValue;
    default:
      return 0;
  }
}

void Utcsu::bus_write(SimTime t, RegOffset off, std::uint32_t value) {
  assert(off < kRegWindowBytes && (off & 3u) == 0);

  if (off >= kRegSsuBase && off < kRegSsuBase + kNumSsu * kSsuStride) {
    const auto idx = (off - kRegSsuBase) / kSsuStride;
    if ((off - kRegSsuBase) % kSsuStride == kSsuStatus) {
      ssu_status_[idx] &= ~value;  // write-1-to-clear
    }
    return;
  }
  if (off >= kRegGpuBase && off < kRegGpuBase + kNumGpu * kGpuStride) {
    const auto idx = (off - kRegGpuBase) / kGpuStride;
    if ((off - kRegGpuBase) % kGpuStride == kGpuStatus) gpu_status_[idx] &= ~value;
    return;
  }
  if (off >= kRegApuBase && off < kRegApuBase + kNumApu * kApuStride) {
    const auto idx = (off - kRegApuBase) / kApuStride;
    if ((off - kRegApuBase) % kApuStride == kApuStatus) apu_status_[idx] &= ~value;
    return;
  }
  if (off >= kRegDutyBase && off < kRegDutyBase + kNumDutyTimers * kDutyStride) {
    const auto idx = (off - kRegDutyBase) / kDutyStride;
    const auto sub = (off - kRegDutyBase) % kDutyStride;
    auto& d = duty_[idx];
    switch (sub) {
      case kDutyCompareLo: d.compare_lo = value & 0xFF'FFFF; break;
      case kDutyCompareHi: d.compare_hi = value & 0xFF'FFFF; break;
      case kDutyCtrl:
        d.armed = (value & 1u) != 0;
        if (d.armed) {
          d.fired = false;
          schedule_duty(static_cast<int>(idx), t);
        } else {
          d.event.cancel();
        }
        break;
      case kDutyStatus:
        if (value & 1u) d.fired = false;
        break;
      default: break;
    }
    return;
  }

  switch (off) {
    case kRegStepLo:
      step_shadow_ = (step_shadow_ & ~0xFFFF'FFFFull) | value;
      break;
    case kRegStepHi:
      step_shadow_ = (step_shadow_ & 0xFFFF'FFFFull) | (std::uint64_t{value} << 32);
      ltu_.set_step(t, RateStep::raw(static_cast<std::int64_t>(step_shadow_)));  // hi write commits
      rearm_duty_timers(t);
      break;
    case kRegAmortStepLo:
      amort_step_shadow_ = (amort_step_shadow_ & ~0xFFFF'FFFFull) | value;
      break;
    case kRegAmortStepHi:
      amort_step_shadow_ =
          (amort_step_shadow_ & 0xFFFF'FFFFull) | (std::uint64_t{value} << 32);
      break;
    case kRegAmortTicksLo:
      amort_ticks_shadow_ = (amort_ticks_shadow_ & ~0xFFFF'FFFFull) | value;
      break;
    case kRegAmortTicksHi:
      amort_ticks_shadow_ =
          (amort_ticks_shadow_ & 0xFFFF'FFFFull) | (std::uint64_t{value} << 32);
      break;
    case kRegTimeSet0: time_set_[0] = value; break;
    case kRegTimeSet1: time_set_[1] = value; break;
    case kRegTimeSet2: time_set_[2] = value; break;
    case kRegCtrl:
      ctrl_ = value;
      if (value & kCtrlApplyTimeSet) apply_time_set(t);
      if (value & kCtrlApplyAccSet) acu_.apply_staged(t);
      if (value & kCtrlStartAmort) {
        ltu_.start_amortization(t,
                                RateStep::raw(static_cast<std::int64_t>(amort_step_shadow_)),
                                TickCount::of(amort_ticks_shadow_));
        rearm_duty_timers(t);
      }
      if (value & kCtrlAbortAmort) {
        ltu_.abort_amortization(t);
        rearm_duty_timers(t);
      }
      if (value & kCtrlLeapInsert) {
        ltu_.arm_leap(true, duty_target(duty_[3], t));
      }
      if (value & kCtrlLeapDelete) {
        ltu_.arm_leap(false, duty_target(duty_[3], t));
      }
      reliable_ = (value & kCtrlReliableSync) != 0;
      break;
    case kRegAccSetMinus:
    case kRegAccSetPlus: {
      // Stage; applied with ApplyTimeSet / SYNCRUN.  Keep both halves.
      if (off == kRegAccSetMinus) {
        staged_acc_minus_ = static_cast<std::uint16_t>(value);
      } else {
        staged_acc_plus_ = static_cast<std::uint16_t>(value);
      }
      acu_.stage(AlphaUnits::of(staged_acc_minus_), AlphaUnits::of(staged_acc_plus_));
      break;
    }
    case kRegLambdaMinus:
      acu_.minus().set_lambda(TickCount::of(osc_.ticks_at(t)),
                              RateStep::raw(static_cast<std::int32_t>(value)));
      break;
    case kRegLambdaPlus:
      acu_.plus().set_lambda(TickCount::of(osc_.ticks_at(t)),
                             RateStep::raw(static_cast<std::int32_t>(value)));
      break;
    case kRegIntEnable:
      int_enable_ = value;
      update_lines();
      break;
    case kRegIntAck:
      int_status_ &= ~value;
      update_lines();
      break;
    case kRegSnapStatus:
      snap_status_ &= ~value;
      break;
    default:
      break;  // writes to RO / unmapped space are ignored, as on the ASIC
  }
}

}  // namespace nti::utcsu
