// LTU: the adder-based local clock (paper Sec. 3.3).
//
// Instead of a counter, the UTCSU sums a programmable augend (STEP, in
// multiples of 2^-51 s) into a 91-bit register on every oscillator tick.
// Consequences faithfully modeled here:
//   * rate is adjustable in steps of f_osc * 2^-51 s/s (~ 10 ns/s);
//   * state adjustment happens by *continuous amortization*: the augend is
//     temporarily switched to AMORT_STEP for a programmed number of ticks,
//     so the clock never jumps and stays monotone when amortizing forward
//     or slewing backward with AMORT_STEP > 0;
//   * leap seconds insert/delete a whole second at a programmed instant.
//
// The model is *lazy*: no per-tick work.  State is the register value at a
// known tick index; any query advances it by closed-form arithmetic using
// the oscillator's phase function (DESIGN.md §4).
//
// Unit safety: tick indices are TickCount and augends are RateStep (see
// common/time_types.hpp); the raw-integer overloads are gone so rate/tick
// confusion no longer compiles.
#pragma once

#include <cstdint>

#include "common/phi.hpp"
#include "common/time_types.hpp"
#include "osc/oscillator.hpp"

namespace nti::utcsu {

class Ltu {
 public:
  /// The clock starts at `initial` and runs with the nominal augend for the
  /// oscillator's nominal frequency: STEP = round(2^51 / f_osc).
  Ltu(osc::Oscillator& oscillator, Phi initial);

  /// Nominal augend for a given oscillator frequency.  Rejects (logged
  /// std::invalid_argument) a non-positive/non-finite frequency and any
  /// frequency whose rounded augend does not fit the 64-bit STEP register
  /// or would halt the clock (rounds to zero) -- the old silent llround
  /// cast turned those into UB or a frozen clock.
  // nti-lint: allow(float): spec-sheet frequency input; quantized here.
  static RateStep nominal_step(double f_osc_hz);

  // -- reads ---------------------------------------------------------------
  /// Clock value at real time `t` (advances internal state; monotone in t).
  Phi read(SimTime t);
  /// Clock value exactly at oscillator tick n (n >= tick of last update).
  Phi value_at_tick(TickCount n);
  /// Tick at which a capture triggered at real time `t` samples the clock:
  /// the trigger passes a 1- or 2-stage synchronizer and is acted upon at
  /// the following oscillator edge (uncertainty <= stages / f_osc).
  TickCount capture_tick(SimTime t, int synchronizer_stages) const;

  // -- rate ---------------------------------------------------------------
  RateStep step() const { return step_; }
  /// Change the augend (takes effect from the current tick onward).
  /// `t` tells the model "now" so earlier ticks keep the old rate.
  void set_step(SimTime t, RateStep new_step);

  // -- state --------------------------------------------------------------
  /// Hard set (initialization / SYNCRUN only; sync rounds use amortization).
  void set_state(SimTime t, Phi value);
  /// Begin continuous amortization: run with `amort_step` for `ticks` ticks.
  void start_amortization(SimTime t, RateStep amort_step, TickCount ticks);
  void abort_amortization(SimTime t);
  bool amortizing() const { return amort_ticks_left_ > 0; }
  TickCount amort_ticks_left() const { return TickCount::of(amort_ticks_left_); }

  /// Arm a +/-1 s leap correction to be applied at clock value `at`.
  /// (In hardware a duty timer fires the strobe; the model folds the
  /// comparison into the advance logic so it is exact.)
  void arm_leap(bool insert, Phi at);
  bool leap_pending() const { return leap_armed_; }

  // -- projection (duty timers) --------------------------------------------
  /// Earliest tick n (>= current tick) with value_at_tick(n) >= target,
  /// accounting for a currently running amortization phase; the current
  /// tick if the target is already reached, TickCount::never() if the
  /// clock is halted short of it.
  TickCount tick_reaching(Phi target) const;

  osc::Oscillator& oscillator() const { return osc_; }

 private:
  void advance_to_tick(TickCount tick);

  osc::Oscillator& osc_;
  Phi state_;                   ///< register value at tick last_tick_
  std::uint64_t last_tick_ = 0;
  RateStep step_;
  RateStep amort_step_ = RateStep::zero();
  std::uint64_t amort_ticks_left_ = 0;
  bool leap_armed_ = false;
  bool leap_insert_ = true;
  Phi leap_at_{};
};

}  // namespace nti::utcsu
