// UTCSU: the Universal Time Coordinated Synchronization Unit.
//
// Composite register-accurate model of the ASIC (paper Sec. 3.3, Fig. 5):
//   BIU  bus interface           -> bus_read / bus_write (32-bit regs)
//   LTU  adder-based local clock -> utcsu/ltu.hpp
//   ACU  accuracy deterioration  -> utcsu/acu.hpp
//   SSU  6x CSP send/receive time/accuracy stamps (trigger inputs)
//   GPU  3x GPS 1pps time/accuracy stamps
//   APU  9x application time/accuracy stamps
//   duty timers (8x, 48-bit compare) with interrupt on fire
//   ITU  interrupt status/enable/ack, mapped to INTN / INTT / INTA pins
//   BTU  built-in test (checksums/blocksums/signatures)
//   SNU  snapshot unit (HWSNAP input, SYNCRUN restart)
//
// All external event inputs (triggers, pulses) pass a one- or two-stage
// synchronizer and are acted upon at the following oscillator edge, which
// introduces the <= stages/f_osc timing uncertainty stated in the paper.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/phi.hpp"
#include "osc/oscillator.hpp"
#include "sim/engine.hpp"
#include "utcsu/acu.hpp"
#include "utcsu/ltu.hpp"
#include "utcsu/regs.hpp"
#include "utcsu/stamp.hpp"

namespace nti::utcsu {

struct UtcsuConfig {
  Phi initial_time{};         ///< clock register at power-up
  bool reliable_pin = true;   ///< two-stage synchronizers (paper Sec. 3.3)
};

class Utcsu {
 public:
  Utcsu(sim::Engine& engine, osc::Oscillator& oscillator, UtcsuConfig cfg);

  // ---- hardware input pins -------------------------------------------
  /// TRANSMIT[i] trigger from the NTI decoding logic (paper Sec. 3.1).
  void trigger_transmit(int ssu, SimTime t);
  /// RECEIVE[i] trigger from the NTI decoding logic.
  void trigger_receive(int ssu, SimTime t);
  /// 1PPS[i] pulse from a GPS receiver.
  void pps_pulse(int gpu, SimTime t);
  /// APP[i] application timestamp input.
  void app_pulse(int apu, SimTime t);
  /// HWSNAP: snapshot the local time/accuracy (evaluation support).
  void hw_snapshot(SimTime t);
  /// SYNCRUN: apply the staged TimeSet/AccSet atomically (system start).
  void sync_run(SimTime t);

  /// Level-change callback for the three interrupt output pins; the NTI
  /// CPLD connects here.  Called only on actual level transitions.
  std::function<void(IntLine, bool level)> on_int_line;
  /// Additional listeners (a gateway node wires several NTI decode
  /// contexts to one UTCSU -- the six SSUs exist exactly for that).
  void add_int_line_listener(std::function<void(IntLine, bool)> fn) {
    listeners_.push_back(std::move(fn));
  }

  // ---- bus interface (BIU) --------------------------------------------
  std::uint32_t bus_read(SimTime t, RegOffset offset);
  void bus_write(SimTime t, RegOffset offset, std::uint32_t value);

  // ---- typed convenience API (what a driver would wrap around the bus;
  //      provided so examples/tests read naturally) ----------------------
  Phi clock(SimTime t) { return ltu_.read(t); }
  Duration clock_duration(SimTime t) { return ltu_.read(t).to_duration(); }
  /// Atomic {time, alpha-, alpha+} read (one synchronized sample point).
  StampRegs sample_now(SimTime t);
  StampRegs ssu_rx(int ssu) const { return ssu_rx_[static_cast<std::size_t>(ssu)]; }
  StampRegs ssu_tx(int ssu) const { return ssu_tx_[static_cast<std::size_t>(ssu)]; }
  StampRegs gpu_stamp(int gpu) const { return gpu_[static_cast<std::size_t>(gpu)]; }
  StampRegs apu_stamp(int apu) const { return apu_[static_cast<std::size_t>(apu)]; }
  StampRegs snapshot() const { return snap_; }

  Ltu& ltu() { return ltu_; }
  Acu& acu() { return acu_; }
  osc::Oscillator& oscillator() { return osc_; }
  sim::Engine& engine() { return engine_; }

  /// Interrupt status (mirrors kRegIntStatus).
  std::uint32_t int_status() const { return int_status_; }
  bool line_level(IntLine line) const;

  /// Re-arm all duty-timer projections; invoked internally after any rate
  /// or state change (exposed for tests).
  void rearm_duty_timers(SimTime t);

 private:
  struct DutyTimer {
    std::uint64_t compare_lo = 0;  ///< frac24
    std::uint64_t compare_hi = 0;  ///< seconds (48-bit compare total)
    bool armed = false;
    bool fired = false;
    sim::EventHandle event;
  };

  int stages() const { return reliable_ ? 2 : 1; }
  StampRegs capture(SimTime t);
  void raise_int(std::uint32_t bit);
  void update_lines();
  static IntLine line_of_bit(int bit);
  void schedule_duty(int idx, SimTime t);
  Phi duty_target(const DutyTimer& d, SimTime t);
  void apply_time_set(SimTime t);

  sim::Engine& engine_;
  osc::Oscillator& osc_;
  Ltu ltu_;
  Acu acu_;
  bool reliable_;

  std::array<StampRegs, kNumSsu> ssu_rx_{};
  std::array<StampRegs, kNumSsu> ssu_tx_{};
  std::array<std::uint32_t, kNumSsu> ssu_status_{};
  std::array<StampRegs, kNumGpu> gpu_{};
  std::array<std::uint32_t, kNumGpu> gpu_status_{};
  std::array<StampRegs, kNumApu> apu_{};
  std::array<std::uint32_t, kNumApu> apu_status_{};
  StampRegs snap_{};
  std::uint32_t snap_status_ = 0;

  std::array<DutyTimer, kNumDutyTimers> duty_{};

  std::uint32_t int_status_ = 0;
  std::uint32_t int_enable_ = 0;
  std::array<bool, 3> line_level_{};
  std::vector<std::function<void(IntLine, bool)>> listeners_;

  // BIU latches / staged values
  std::uint32_t macro_shadow_ = 0;   ///< latched by kRegTimestamp read
  std::uint64_t step_shadow_;        ///< STEP write staging (lo then hi commits)
  std::uint64_t amort_step_shadow_ = 0;
  std::uint64_t amort_ticks_shadow_ = 0;
  std::array<std::uint32_t, 3> time_set_{};  ///< staged 91-bit state
  std::uint16_t staged_acc_minus_ = 0;
  std::uint16_t staged_acc_plus_ = 0;
  std::uint32_t ctrl_ = 0;
};

}  // namespace nti::utcsu
