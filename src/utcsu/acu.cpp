#include "utcsu/acu.hpp"

#include <algorithm>

namespace nti::utcsu {

void AccuracyCell::advance(TickCount tick) {
  const std::uint64_t n = tick.value();
  if (n <= last_tick_) return;
  const std::uint64_t k = n - last_tick_;
  last_tick_ = n;
  // Saturating signed update.  k * |lambda| stays far below 2^63 for any
  // plausible deterioration rate and query spacing; clamp defends the rest.
  acc_ += lambda_.value() * static_cast<std::int64_t>(k);
  acc_ = std::clamp<std::int64_t>(acc_, 0, static_cast<std::int64_t>(kSaturation));
}

AlphaUnits AccuracyCell::read_at_tick(TickCount n) {
  advance(n);
  return AlphaUnits::of(
      static_cast<std::uint16_t>(static_cast<std::uint64_t>(acc_) >> kAlphaShift));
}

std::uint64_t AccuracyCell::raw_at_tick(TickCount n) {
  advance(n);
  return static_cast<std::uint64_t>(acc_);
}

void AccuracyCell::set(TickCount tick_now, AlphaUnits units) {
  advance(tick_now);
  acc_ = static_cast<std::int64_t>(std::uint64_t{units.value()} << kAlphaShift);
}

void AccuracyCell::set_lambda(TickCount tick_now, RateStep lambda) {
  advance(tick_now);
  lambda_ = lambda;
}

}  // namespace nti::utcsu
