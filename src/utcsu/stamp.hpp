// Time/accuracy-stamp register formats (paper Sec. 3.3).
//
// A capture latches three 32-bit registers:
//   timestamp  = [31:24] seconds mod 256 | [23:0] fraction (2^-24 s units)
//   macrostamp = [31: 8] seconds / 256   | [ 7:0] checksum over the 56-bit time
//   alpha      = [31:16] alpha-          | [15:0] alpha+   (2^-24 s units)
// The timestamp alone wraps every 256 s; together with the macrostamp the
// full 56-bit NTP time is recovered, protected by the checksum.  The stamp
// quantizes to 2^-24 s (~59.6 ns): this is the clock granularity G whose
// effect on achievable precision experiment E3 measures.
#pragma once

#include <cstdint>

#include "common/checksum.hpp"
#include "common/phi.hpp"

namespace nti::utcsu {

struct StampRegs {
  std::uint32_t timestamp = 0;
  std::uint32_t macrostamp = 0;
  std::uint32_t alpha = 0;
  bool valid = false;
};

inline std::uint64_t ntp56_of(Phi time) {
  return (time.whole_seconds() << 24) | time.frac24();
}

inline StampRegs pack_stamp(Phi time, std::uint16_t alpha_minus, std::uint16_t alpha_plus) {
  const std::uint64_t sec = time.whole_seconds();
  const std::uint64_t ntp56 = ntp56_of(time);
  StampRegs r;
  r.timestamp = (static_cast<std::uint32_t>(sec & 0xFF) << 24) | time.frac24();
  r.macrostamp = (static_cast<std::uint32_t>((sec >> 8) & 0xFF'FFFF) << 8) |
                 time_checksum8(ntp56);
  r.alpha = (std::uint32_t{alpha_minus} << 16) | alpha_plus;
  r.valid = true;
  return r;
}

/// Software-side view of a decoded stamp.
struct DecodedStamp {
  std::uint64_t seconds = 0;
  std::uint32_t frac24 = 0;
  std::uint16_t alpha_minus = 0;
  std::uint16_t alpha_plus = 0;
  bool checksum_ok = false;

  Phi to_phi() const {
    return Phi::raw((u128{seconds} << Phi::kFracBits) |
                    (u128{frac24} << (Phi::kFracBits - 24)));
  }
  Duration time() const { return to_phi().to_duration(); }
  Duration acc_minus() const {
    return Duration::ps((std::int64_t{alpha_minus} * 1'000'000'000'000LL) >> 24);
  }
  Duration acc_plus() const {
    return Duration::ps((std::int64_t{alpha_plus} * 1'000'000'000'000LL) >> 24);
  }
};

inline DecodedStamp decode_stamp(std::uint32_t timestamp, std::uint32_t macrostamp,
                                 std::uint32_t alpha) {
  DecodedStamp d;
  d.seconds = (std::uint64_t{macrostamp >> 8} << 8) | (timestamp >> 24);
  d.frac24 = timestamp & 0xFF'FFFF;
  d.alpha_minus = static_cast<std::uint16_t>(alpha >> 16);
  d.alpha_plus = static_cast<std::uint16_t>(alpha & 0xFFFF);
  const std::uint64_t ntp56 = (d.seconds << 24) | d.frac24;
  d.checksum_ok = time_checksum8(ntp56) == (macrostamp & 0xFF);
  return d;
}

}  // namespace nti::utcsu
