// libnti umbrella header: everything a downstream user needs.
//
// Layering (bottom to top):
//   common/   time types, fixed point, RNG, stats
//   obs/      observability: metrics registry, trace ring, JSON emission
//   sim/      discrete-event engine
//   osc/      oscillator models
//   interval/ accuracy-interval arithmetic & fusion
//   utcsu/    the UTCSU-ASIC model
//   nti/      the NTI MA-Module (memory map, CPLD, interrupts)
//   net/      CSMA/CD broadcast medium
//   comco/    Ethernet coprocessor (82596CA-class)
//   gps/      GPS timing receiver (+ fault injection)
//   node/     CPU/ISR model and the KI/NI/CI driver
//   csa/      interval-based clock synchronization algorithms
//   fault/    unified deterministic fault-injection plans + injector
//   cluster/  multi-node scenarios and measurement probes
//   mc/       parallel Monte-Carlo replication over clusters
#pragma once

#include "common/checksum.hpp"
#include "common/log.hpp"
#include "common/phi.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time_types.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/periodic.hpp"
#include "osc/oscillator.hpp"
#include "interval/interval.hpp"
#include "utcsu/regs.hpp"
#include "utcsu/stamp.hpp"
#include "utcsu/utcsu.hpp"
#include "nti/memmap.hpp"
#include "nti/nti.hpp"
#include "nti/sprom.hpp"
#include "net/medium.hpp"
#include "net/traffic.hpp"
#include "comco/comco.hpp"
#include "gps/gps.hpp"
#include "node/cpu.hpp"
#include "node/driver.hpp"
#include "node/gateway.hpp"
#include "node/node_card.hpp"
#include "csa/payload.hpp"
#include "csa/rtt.hpp"
#include "csa/sync.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "cluster/cluster.hpp"
#include "cluster/sharded.hpp"
#include "cluster/topology.hpp"
#include "mc/runner.hpp"
#include "sim/shard.hpp"
