// libnti umbrella header: everything a downstream user needs.
//
// Layering (bottom to top; machine-checked against tools/layering.json by
// the nti-lint `layer` rule -- see docs/STATIC_ANALYSIS.md):
//   common/        time types, fixed point, RNG, stats
//   sim/ net/      discrete-event engine; CSMA/CD broadcast medium
//   osc/ utcsu/    oscillator models; the UTCSU-ASIC model
//   gps/           GPS timing receiver (+ fault injection)
//   comco/ nti/    Ethernet coprocessor; the NTI MA-Module
//   interval/ csa/ accuracy-interval arithmetic; clock-sync algorithms
//   node/          CPU/ISR model and the KI/NI/CI driver
//   cluster/ fault/ multi-node scenarios; deterministic fault injection
// Cross-cutting (includable from anywhere): obs/ observability, mc/
// parallel Monte-Carlo replication.  The one declared upward edge,
// csa -> node, is recorded as a manifest exception until the pluggable
// SyncAlgorithm extraction inverts it.
#pragma once

#include "common/checksum.hpp"
#include "common/log.hpp"
#include "common/phi.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time_types.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/periodic.hpp"
#include "osc/oscillator.hpp"
#include "interval/interval.hpp"
#include "utcsu/regs.hpp"
#include "utcsu/stamp.hpp"
#include "utcsu/utcsu.hpp"
#include "nti/memmap.hpp"
#include "nti/nti.hpp"
#include "nti/sprom.hpp"
#include "net/medium.hpp"
#include "net/traffic.hpp"
#include "comco/comco.hpp"
#include "gps/gps.hpp"
#include "node/cpu.hpp"
#include "node/driver.hpp"
#include "node/gateway.hpp"
#include "node/node_card.hpp"
#include "csa/payload.hpp"
#include "csa/rtt.hpp"
#include "csa/sync.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "cluster/cluster.hpp"
#include "cluster/sharded.hpp"
#include "cluster/topology.hpp"
#include "mc/runner.hpp"
#include "sim/shard.hpp"
