#include "cluster/cluster.hpp"

#include <algorithm>
#include <cmath>

namespace nti::cluster {

Cluster::Cluster(ClusterConfig cfg)
    : Cluster(std::make_unique<sim::Engine>(), nullptr, std::move(cfg)) {}

Cluster::Cluster(sim::Engine& external_engine, ClusterConfig cfg)
    : Cluster(nullptr, &external_engine, std::move(cfg)) {}

Cluster::Cluster(std::unique_ptr<sim::Engine> owned, sim::Engine* external,
                 ClusterConfig cfg)
    : cfg_(std::move(cfg)),
      owned_engine_(std::move(owned)),
      engine_(external != nullptr ? *external : *owned_engine_) {
  // Loud configure-time rejection of malformed plans: nonexistent targets,
  // overlapping crash windows, and sharded-topology kinds on a
  // single-segment cluster (ShardedCluster validates the full plan against
  // its topology and strips the sharded kinds before this ctor runs).
  cfg_.faults.validate(cfg_.num_nodes);
  RngStream root(cfg_.seed);
  medium_ = std::make_unique<net::Medium>(engine_, cfg_.medium, root.fork("medium"));

  RngStream scatter = root.fork("scatter");
  for (int i = 0; i < cfg_.num_nodes; ++i) {
    node::NodeConfig nc;
    nc.node_id = i;
    nc.osc = cfg_.osc_base;
    nc.osc.offset_ppm = (scatter.next_double() * 2.0 - 1.0) * cfg_.osc_offset_spread_ppm;
    nc.cpu = cfg_.cpu;
    nc.comco = cfg_.comco;
    nc.mode = cfg_.mode;
    if (std::find(cfg_.gps_nodes.begin(), cfg_.gps_nodes.end(), i) !=
        cfg_.gps_nodes.end()) {
      nc.gps = cfg_.gps_base;
      // GPS-kind plan specs become receiver-level fault windows on the
      // targeted node(s); node = -1 hits every receiver.
      for (const fault::FaultSpec& s : cfg_.faults.specs) {
        if (fault::is_gps_kind(s.kind) && (s.node < 0 || s.node == i)) {
          nc.gps->faults.push_back(fault::to_gps_window(s));
        }
      }
    }
    nodes_.push_back(std::make_unique<node::NodeCard>(engine_, *medium_, nc, root));
    syncs_.push_back(std::make_unique<csa::SyncNode>(*nodes_.back(), cfg_.sync,
                                                     cfg_.num_nodes));
  }

  if (cfg_.background_load > 0.0) {
    net::TrafficConfig tc;
    tc.offered_load = cfg_.background_load;
    tc.frame_bytes = cfg_.background_frame_bytes;
    traffic_.push_back(std::make_unique<net::TrafficGenerator>(
        engine_, *medium_, tc, root.fork("traffic")));
  }

  if (!cfg_.faults.empty()) {
    injector_ = std::make_unique<fault::Injector>(engine_, cfg_.faults,
                                                  root.fork("fault"));
    injector_->attach_medium(*medium_);
    for (int i = 0; i < cfg_.num_nodes; ++i) {
      injector_->attach_node(i, *nodes_[static_cast<std::size_t>(i)],
                             *syncs_[static_cast<std::size_t>(i)]);
    }
  }

  // Observability: every layer registers its counters into the cluster's
  // registry (the Cluster owns all registered components, so lifetimes are
  // safe by construction), and the optional trace ring is shared.
  if (cfg_.trace_capacity > 0) {
    trace_ = std::make_unique<obs::TraceRing>(cfg_.trace_capacity);
    medium_->set_trace(trace_.get());
    for (auto& s : syncs_) s->set_trace(trace_.get());
    if (injector_ != nullptr) injector_->set_trace(trace_.get());
    // Engine-event tracing only makes sense on an owned engine: a shared
    // shard engine interleaves other segments' events into the ring.
    if (cfg_.trace_engine_events && owned_engine_ != nullptr) {
      engine_.set_trace(trace_.get());
    }
    // Wraparound loss used to be silent; collect_bench.py warns loudly when
    // this gauge is nonzero in a report's `obs` section.
    metrics_.add_gauge("obs.trace.overwritten", [this] {
      return static_cast<double>(trace_->overwritten());
    });
  }
  if (cfg_.enable_spans) {
    spans_ = std::make_unique<obs::SpanCollector>(cfg_.span_max_events);
    medium_->set_spans(spans_.get());
    for (auto& n : nodes_) n->set_spans(spans_.get());
    for (auto& s : syncs_) s->set_spans(spans_.get());
    spans_->register_metrics(metrics_, "span.");
  }
  if (cfg_.record_timeseries) {
    std::vector<std::string> cols = {"pi_us", "accuracy_worst_us",
                                     "alpha_minus_max_us", "alpha_plus_max_us"};
    for (int i = 0; i < cfg_.num_nodes; ++i) {
      cols.push_back("node" + std::to_string(i) + "_offset_us");
    }
    timeseries_ = std::make_unique<obs::TimeSeriesRecorder>(std::move(cols));
  }
  // A shared (external) engine's counters depend on shard grouping, so they
  // stay out of the per-segment registry; ShardedCluster reports them
  // separately, outside the deterministic output (docs/SHARDING.md).
  if (owned_engine_ != nullptr) engine_.register_metrics(metrics_, "sim.engine.");
  medium_->register_metrics(metrics_, "net.medium.");
  for (int i = 0; i < cfg_.num_nodes; ++i) {
    syncs_[static_cast<std::size_t>(i)]->register_metrics(
        metrics_, "csa.node" + std::to_string(i) + ".");
  }
  if (injector_ != nullptr) injector_->register_metrics(metrics_, "fault.");
  metrics_.add_counter("cluster.probes", &probes_);
  metrics_.add_counter("cluster.containment_violations", &violations_);
  metrics_.add_gauge("cluster.alpha_minus_worst_us",
                     [this] { return worst_alpha_minus_.to_us_f(); });
  metrics_.add_gauge("cluster.alpha_plus_worst_us",
                     [this] { return worst_alpha_plus_.to_us_f(); });
}

Cluster::~Cluster() = default;

void Cluster::start() {
  // Clock states are non-negative; advance simulated time past the scatter
  // so "UTC now - jitter" cannot go below zero at cold start.
  const SimTime base =
      SimTime::epoch() + cfg_.initial_offset_spread + Duration::ms(1);
  if (engine_.now() < base) engine_.run_until(base);

  RngStream init(cfg_.seed ^ 0x1717A711DEAD5EEDULL);
  for (int i = 0; i < cfg_.num_nodes; ++i) {
    const Duration jitter =
        init.uniform(-cfg_.initial_offset_spread, cfg_.initial_offset_spread);
    // Cold-start clock value: "UTC now" plus the node's scatter; the
    // initial accuracy must cover that scatter to keep the containment
    // invariant from the very first instant.
    const Duration value = (engine_.now() - SimTime::epoch()) + jitter;
    const Duration alpha0 = cfg_.initial_offset_spread + Duration::us(1);
    sync(i).start(value, alpha0);
  }
  // Arm after the sync nodes exist and run: windowed fault events may stop
  // and cold-restart them.  schedule_at clamps past windows to now().
  if (injector_ != nullptr) injector_->arm();
}

ProbeSample Cluster::probe() {
  const SimTime t = engine_.now();
  ProbeSample s;
  s.t = t;
  const Duration truth = t - SimTime::epoch();

  Duration min_c = Duration::max(), max_c = -Duration::max();
  Duration worst_acc = Duration::zero();
  std::int64_t alpha_acc = 0;
  std::vector<double> offsets_us;
  if (timeseries_ != nullptr) offsets_us.reserve(nodes_.size());
  for (auto& n : nodes_) {
    const Duration c = n->true_clock(t);
    min_c = std::min(min_c, c);
    max_c = std::max(max_c, c);
    worst_acc = std::max(worst_acc, (c - truth).abs());
    if (timeseries_ != nullptr) offsets_us.push_back((c - truth).to_us_f());

    // Containment check against the node's *own* advertised interval.
    const auto iv = syncs_[static_cast<std::size_t>(n->id())]->current_interval(t);
    alpha_acc += (iv.alpha_minus() + iv.alpha_plus()).count_ps() / 2;
    s.alpha_minus_max = std::max(s.alpha_minus_max, iv.alpha_minus());
    s.alpha_plus_max = std::max(s.alpha_plus_max, iv.alpha_plus());
    if (truth < iv.lower() || truth > iv.upper()) ++violations_;
  }
  s.precision = max_c - min_c;
  s.worst_accuracy = worst_acc;
  s.mean_alpha = Duration::ps(alpha_acc / cfg_.num_nodes);

  worst_alpha_minus_ = std::max(worst_alpha_minus_, s.alpha_minus_max);
  worst_alpha_plus_ = std::max(worst_alpha_plus_, s.alpha_plus_max);
  if (timeseries_ != nullptr) {
    std::vector<double> row = {s.precision.to_us_f(), s.worst_accuracy.to_us_f(),
                               s.alpha_minus_max.to_us_f(),
                               s.alpha_plus_max.to_us_f()};
    row.insert(row.end(), offsets_us.begin(), offsets_us.end());
    timeseries_->add_row(t.to_sec_f(), row);
  }
  metrics_.set_scalar("cluster.precision_us", s.precision.to_us_f());
  metrics_.set_scalar_max("cluster.precision_max_us", s.precision.to_us_f());
  metrics_.set_scalar_max("cluster.accuracy_worst_us", s.worst_accuracy.to_us_f());
  return s;
}

void Cluster::run(Duration total, Duration warmup, Duration probe_period) {
  const SimTime t0 = engine_.now();
  const SimTime t_end = t0 + total;
  SimTime t_probe = t0 + warmup;
  while (t_probe <= t_end) {
    engine_.run_until(t_probe);
    const ProbeSample s = probe();
    precision_.add(s.precision);
    accuracy_.add(s.worst_accuracy);
    alpha_.add(s.mean_alpha);
    ++probes_;
    if (on_probe) on_probe(s);
    t_probe += probe_period;
  }
  engine_.run_until(t_end);
}

double Cluster::max_rate_spread_ppm(SimTime t) {
  double lo = 1e9, hi = -1e9;
  for (auto& n : nodes_) {
    // Effective logical clock rate = oscillator rate error adjusted by the
    // node's STEP deviation from nominal.
    const double osc_err = n->oscillator().true_rate_error(t);
    const double nominal = static_cast<double>(
        utcsu::Ltu::nominal_step(n->oscillator().nominal_hz()).magnitude());
    const double step_ratio =
        static_cast<double>(n->chip().ltu().step().magnitude()) / nominal;
    const double rate = (1.0 + osc_err) * step_ratio - 1.0;
    lo = std::min(lo, rate);
    hi = std::max(hi, rate);
  }
  return (hi - lo) * 1e6;
}

}  // namespace nti::cluster
