#include "cluster/topology.hpp"

#include <queue>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "sim/shard.hpp"

namespace nti::cluster {

namespace {

void add_bidir(TopologySpec& t, int a, int b, Duration latency) {
  t.links.push_back(TopoLink{a, b, latency});
  t.links.push_back(TopoLink{b, a, latency});
}

}  // namespace

int TopologySpec::total_nodes() const {
  int n = 0;
  for (const int s : segment_sizes) n += s;
  return n;
}

int TopologySpec::diameter() const {
  const int s = num_segments();
  if (s <= 1) return 0;
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(s));
  for (const TopoLink& l : links) {
    adj[static_cast<std::size_t>(l.src_seg)].push_back(l.dst_seg);
    adj[static_cast<std::size_t>(l.dst_seg)].push_back(l.src_seg);
  }
  int diameter = 0;
  std::vector<int> dist(static_cast<std::size_t>(s));
  for (int start = 0; start < s; ++start) {
    std::fill(dist.begin(), dist.end(), -1);
    dist[static_cast<std::size_t>(start)] = 0;
    std::queue<int> q;
    q.push(start);
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (const int v : adj[static_cast<std::size_t>(u)]) {
        if (dist[static_cast<std::size_t>(v)] >= 0) continue;
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        q.push(v);
      }
    }
    for (int v = 0; v < s; ++v) {
      if (dist[static_cast<std::size_t>(v)] < 0) return -1;  // disconnected
      diameter = std::max(diameter, dist[static_cast<std::size_t>(v)]);
    }
  }
  return diameter;
}

void TopologySpec::validate() const {
  if (segment_sizes.empty()) {
    throw std::invalid_argument("topology: at least one segment required");
  }
  for (std::size_t s = 0; s < segment_sizes.size(); ++s) {
    if (segment_sizes[s] < 1 || segment_sizes[s] > 255) {
      throw std::invalid_argument(
          "topology: segment " + std::to_string(s) + " has " +
          std::to_string(segment_sizes[s]) +
          " nodes; sizes must be in [1, 255] (CSP source ids are one byte)");
    }
  }
  for (std::size_t i = 0; i < links.size(); ++i) {
    const TopoLink& l = links[i];
    if (l.src_seg < 0 || l.src_seg >= num_segments() || l.dst_seg < 0 ||
        l.dst_seg >= num_segments()) {
      throw std::invalid_argument("topology: link " + std::to_string(i) +
                                  " references a segment that does not exist");
    }
    if (l.src_seg == l.dst_seg) {
      throw std::invalid_argument(
          "topology: link " + std::to_string(i) +
          " is a self-link; gateways join distinct segments");
    }
    if (l.latency < sim::ShardGroup::kMinLinkLatency) {
      throw std::invalid_argument(
          "topology: link " + std::to_string(i) + " has latency " +
          std::to_string(l.latency.count_ps()) +
          " ps; gateway latencies must be >= 1 ns — a zero-latency link "
          "gives the sharded engine no conservative lookahead to advance "
          "under (docs/SHARDING.md)");
    }
  }
  if (bridge_phase <= Duration::zero()) {
    throw std::invalid_argument("topology: bridge_phase must be positive");
  }
  if (holdover_ceiling <= Duration::zero()) {
    throw std::invalid_argument("topology: holdover_ceiling must be positive");
  }
  if (rejoin_rounds < 1) {
    throw std::invalid_argument("topology: rejoin_rounds must be >= 1");
  }
  if (capsule_max_retransmit < 0) {
    throw std::invalid_argument(
        "topology: capsule_max_retransmit must be >= 0");
  }
  if (capsule_backoff < Duration::zero() ||
      capsule_stale_timeout < Duration::zero() ||
      capsule_check_delay < Duration::zero()) {
    throw std::invalid_argument(
        "topology: capsule backoff/staleness/check durations must be "
        "non-negative (zero = derived from the sync round period)");
  }
}

TopologySpec TopologySpec::chain(int segments, int nodes_per_segment,
                                 Duration latency) {
  TopologySpec t;
  t.segment_sizes.assign(static_cast<std::size_t>(segments), nodes_per_segment);
  for (int i = 0; i + 1 < segments; ++i) add_bidir(t, i, i + 1, latency);
  return t;
}

TopologySpec TopologySpec::tree(int fanout, int depth, int nodes_per_segment,
                                Duration latency) {
  TopologySpec t;
  // Breadth-first construction: segment 0 is the root; children are
  // appended level by level so parent indices are always already assigned.
  t.segment_sizes.push_back(nodes_per_segment);
  std::vector<int> frontier{0};
  for (int level = 0; level < depth; ++level) {
    std::vector<int> next;
    for (const int parent : frontier) {
      for (int c = 0; c < fanout; ++c) {
        const int child = static_cast<int>(t.segment_sizes.size());
        t.segment_sizes.push_back(nodes_per_segment);
        add_bidir(t, parent, child, latency);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  return t;
}

TopologySpec TopologySpec::mesh(int segments, int nodes_per_segment,
                                Duration latency) {
  TopologySpec t;
  t.segment_sizes.assign(static_cast<std::size_t>(segments), nodes_per_segment);
  for (int i = 0; i < segments; ++i) {
    for (int j = i + 1; j < segments; ++j) add_bidir(t, i, j, latency);
  }
  return t;
}

TopologySpec TopologySpec::ad_hoc(int segments, int nodes_per_segment,
                                  double edge_probability, Duration latency,
                                  std::uint64_t seed) {
  TopologySpec t;
  t.segment_sizes.assign(static_cast<std::size_t>(segments), nodes_per_segment);
  RngStream rng = RngStream(seed).fork("topology");
  // Spanning tree first (connectivity guaranteed), then extra edges.
  std::vector<std::vector<bool>> have(
      static_cast<std::size_t>(segments),
      std::vector<bool>(static_cast<std::size_t>(segments), false));
  for (int i = 1; i < segments; ++i) {
    const int j = static_cast<int>(rng.uniform_int(0, i - 1));
    add_bidir(t, j, i, latency);
    have[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = true;
  }
  for (int i = 0; i < segments; ++i) {
    for (int j = i + 1; j < segments; ++j) {
      if (have[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) continue;
      if (rng.chance(edge_probability)) add_bidir(t, i, j, latency);
    }
  }
  return t;
}

}  // namespace nti::cluster
