// Cluster: multi-node scenario builder and measurement probes.
//
// Recreates the paper's testbeds -- the two-node lab setup and the 16-node
// prototype (4x MVME-162 with 4 NTIs each, Sec. 4) -- as configurable
// scenarios, and measures what the authors planned to measure via the SNU:
// simultaneous snapshots of every node's interval clock.
//
// Metrics:
//   precision  pi(t)  = max_{p,q} |C_p(t) - C_q(t)|       (requirement P)
//   accuracy   a_p(t) = C_p(t) - t                        (requirement A)
//   containment        t in [C_p - alpha-, C_p + alpha+]  (the interval
//                      paradigm's correctness invariant; violations are
//                      counted and must be zero for non-faulty runs)
// The probe samples all clocks at one simulated instant, which is exactly
// what a wired-OR HWSNAP pulse into every UTCSU's SNU achieves in hardware.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/topology.hpp"
#include "common/stats.hpp"
#include "csa/sync.hpp"
#include "fault/injector.hpp"
#include "gps/gps.hpp"
#include "net/medium.hpp"
#include "net/traffic.hpp"
#include "node/node_card.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace nti::cluster {

struct ClusterConfig {
  int num_nodes = 4;
  std::uint64_t seed = 42;

  net::MediumConfig medium{};
  osc::OscConfig osc_base = osc::OscConfig::tcxo();
  /// Static per-node frequency offsets drawn uniformly from +- this value.
  double osc_offset_spread_ppm = 2.0;
  node::CpuConfig cpu{};
  comco::ComcoConfig comco{};
  node::StampMode mode = node::StampMode::kHardware;
  csa::SyncConfig sync{};

  /// Initial clock scatter at cold start (uniform +-) and the matching
  /// initial accuracy handed to each interval clock.
  Duration initial_offset_spread = Duration::us(500);

  /// Node ids equipped with a GPS receiver.
  std::vector<int> gps_nodes{};
  gps::GpsConfig gps_base{};

  /// Declarative fault scenario (fault::FaultPlan).  GPS-kind specs are
  /// translated into per-receiver gps::FaultWindow entries (generalizing
  /// gps_base.faults, which remains the raw mechanism-level knob); all
  /// other kinds are enacted by the cluster-owned fault::Injector, armed
  /// in start().  Randomness forks off `seed`, so plans are reproducible
  /// and never perturb the cluster's other streams.
  fault::FaultPlan faults{};

  /// Background KI/NI traffic as a fraction of channel capacity.
  double background_load = 0.0;
  std::size_t background_frame_bytes = 512;

  /// Observability: capacity of the post-mortem trace ring (0 disables
  /// tracing).  Frame tx/rx, accepted CSP stamps, and resyncs are traced;
  /// set trace_engine_events to additionally trace every engine event
  /// firing (very dense -- it evicts the interesting records quickly, so
  /// it is separate).
  std::size_t trace_capacity = 0;
  bool trace_engine_events = false;

  /// Causal CSP-lifecycle spans (obs::SpanCollector) threaded through every
  /// layer.  Per-stage latency histograms land in the metrics registry
  /// under "span."; retained raw events (up to span_max_events) feed the
  /// Chrome trace exporter.
  bool enable_spans = false;
  std::size_t span_max_events = std::size_t{1} << 20;

  /// Record a pi(t) / alpha(t) / per-node-offset row on every probe into a
  /// TimeSeriesRecorder (CSV export for plotting convergence trajectories).
  bool record_timeseries = false;

  /// Multi-segment topology (docs/SHARDING.md).  Ignored by the
  /// single-segment Cluster; cluster::ShardedCluster instantiates one
  /// Cluster per segment (num_nodes/seed taken per segment) and joins them
  /// with gateway links on a sharded event engine.  Empty = single segment.
  TopologySpec topology{};
};

struct ProbeSample {
  SimTime t;
  Duration precision;       ///< max pairwise clock difference
  Duration worst_accuracy;  ///< max |C_p(t) - t|
  Duration mean_alpha;      ///< average interval half-width
  Duration alpha_minus_max; ///< widest advertised alpha- across nodes
  Duration alpha_plus_max;  ///< widest advertised alpha+ across nodes
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);
  /// Build on an engine owned by someone else — the segment form used by
  /// ShardedCluster, where several segments may share one shard engine.
  /// Identical construction except that engine counters are NOT registered
  /// in this cluster's metrics registry: a shared engine's counters depend
  /// on which other segments ride the same shard, and per-segment metrics
  /// must stay byte-identical for every shard count (docs/SHARDING.md).
  Cluster(sim::Engine& external_engine, ClusterConfig cfg);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Engine& engine() { return engine_; }
  net::Medium& medium() { return *medium_; }
  int size() const { return cfg_.num_nodes; }
  node::NodeCard& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
  csa::SyncNode& sync(int i) { return *syncs_[static_cast<std::size_t>(i)]; }

  /// Initialize all interval clocks (scattered cold start) and begin
  /// round execution.
  void start();

  /// Run the simulation with a periodic measurement probe; samples taken
  /// before `warmup` has elapsed are discarded (initial convergence).
  void run(Duration total, Duration warmup, Duration probe_period = Duration::ms(100));

  /// One simultaneous snapshot (HWSNAP-equivalent) right now.
  ProbeSample probe();

  /// Observer invoked by run() after every probe (post-warmup samples
  /// only).  Chainable like the driver callbacks: capture the previous
  /// value when composing.  The Monte-Carlo runner uses this to record
  /// per-replica trajectories.
  std::function<void(const ProbeSample&)> on_probe;

  // Aggregated results over the measurement window.
  SampleSet& precision_samples() { return precision_; }
  SampleSet& accuracy_samples() { return accuracy_; }
  SampleSet& alpha_samples() { return alpha_; }
  std::uint64_t containment_violations() const { return violations_; }
  std::uint64_t probes_taken() const { return probes_; }
  /// Worst-case accuracy envelope observed by any probe so far.
  Duration worst_alpha_minus() const { return worst_alpha_minus_; }
  Duration worst_alpha_plus() const { return worst_alpha_plus_; }

  /// The cluster-wide metrics inventory: engine, medium, every sync node,
  /// and the probe's precision/accuracy envelope scalars.
  obs::MetricsRegistry& metrics() { return metrics_; }
  /// Post-mortem trace, or nullptr when cfg.trace_capacity == 0.
  obs::TraceRing* trace() { return trace_.get(); }
  /// CSP span collector, or nullptr when cfg.enable_spans == false.
  obs::SpanCollector* spans() { return spans_.get(); }
  /// Probe-driven time series, or nullptr when cfg.record_timeseries == false.
  obs::TimeSeriesRecorder* timeseries() { return timeseries_.get(); }
  /// The fault injector, or nullptr when cfg.faults is empty.
  fault::Injector* fault_injector() { return injector_.get(); }

  /// Ground-truth maximum pairwise oscillator rate difference right now
  /// (for the rate-synchronization experiment E7).
  double max_rate_spread_ppm(SimTime t);

 private:
  Cluster(std::unique_ptr<sim::Engine> owned, sim::Engine* external,
          ClusterConfig cfg);

  ClusterConfig cfg_;
  /// Set iff this cluster owns its engine (the classic single-segment
  /// form); engine_ then refers to it.
  std::unique_ptr<sim::Engine> owned_engine_;
  sim::Engine& engine_;
  std::unique_ptr<net::Medium> medium_;
  std::vector<std::unique_ptr<node::NodeCard>> nodes_;
  std::vector<std::unique_ptr<csa::SyncNode>> syncs_;
  std::vector<std::unique_ptr<net::TrafficGenerator>> traffic_;
  std::unique_ptr<fault::Injector> injector_;

  SampleSet precision_;
  SampleSet accuracy_;
  SampleSet alpha_;
  std::uint64_t violations_ = 0;
  std::uint64_t probes_ = 0;
  Duration worst_alpha_minus_;
  Duration worst_alpha_plus_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceRing> trace_;
  std::unique_ptr<obs::SpanCollector> spans_;
  std::unique_ptr<obs::TimeSeriesRecorder> timeseries_;
};

}  // namespace nti::cluster
