// Gateway-link bridge: hardened time-capsule transfer between segments
// (docs/SHARDING.md, docs/FAULTS.md).
//
// One GatewayLinkTx/GatewayLinkRx pair per TopoLink replaces the bare
// capture-and-send lambda of the original sharded cluster:
//
//   * the Tx (source engine) captures the gateway's reference interval at
//     the bridge phase of every round, serializes it as a TimeCapsule
//     (seq + CRC-8 + hold, node/gateway.hpp), evaluates the gateway-scoped
//     fault specs in plan order — partition, Bernoulli capsule loss,
//     transmit delay spikes, single-bit wire corruption — and schedules
//     bounded retransmit-with-backoff for dropped capsules.  Every drop is
//     accounted: a kCapsuleDrop trace record with a DiscardReason plus a
//     fault.capsule.link<i>.* counter.  No silent drops.
//   * the Rx (destination engine) validates the checksum and staleness,
//     drives the per-link GatewayGuard degradation state machine
//     (SYNCHRONIZED -> HOLDOVER -> FREE_RUNNING -> REJOINING), feeds
//     accepted capsules — and, on missed rounds, deteriorated holdover
//     offers — into the segment's round via SyncNode::offer_remote, and
//     traces every state transition (kGatewayState).
//
// Byte-determinism (the ShardGroup contract): every stochastic fault draw
// happens inside events on the link's *source* engine from a per-(spec,
// link) RNG substream, counters and traces land only in the owning
// segment's registry/ring, and the wire crossing itself goes through
// ShardGroup::send — the path-invariant delivery the sharding proof covers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "node/gateway.hpp"
#include "sim/periodic.hpp"
#include "sim/shard.hpp"

namespace nti::cluster {

class GatewayLinkRx;

/// Sending side of one gateway link: capture, fault tap, retransmit.
class GatewayLinkTx {
 public:
  struct Config {
    int link_index = 0;            ///< index into TopologySpec::links
    std::size_t group_link_id = 0; ///< ShardGroup link id
    Duration round_period;
    SimTime first_capture;         ///< epoch + period + bridge_phase
    Duration backoff0;             ///< first retransmit backoff
    int max_retransmit = 3;
  };
  /// One armed gateway-scoped fault spec, with its own RNG substream
  /// (forked per (spec index, link index) so draws stay on this engine).
  struct ArmedSpec {
    const fault::FaultSpec* spec = nullptr;
    RngStream rng;
  };

  GatewayLinkTx(sim::ShardGroup& group, Cluster& src_segment,
                GatewayLinkRx& rx, Config cfg, std::vector<ArmedSpec> specs);

  /// Sender-side accounting under "fault.capsule.link<i>." in the *source*
  /// segment's registry (counters must live where their events execute, so
  /// per-segment metrics stay invariant under the shard grouping).
  void register_metrics(obs::MetricsRegistry& reg);

  std::uint64_t captures() const { return captures_; }
  std::uint64_t sent() const { return sent_; }
  std::uint64_t dropped_partition() const { return dropped_partition_; }
  std::uint64_t dropped_loss() const { return dropped_loss_; }
  std::uint64_t corrupted() const { return corrupted_; }
  std::uint64_t delayed() const { return delayed_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t retransmit_superseded() const { return retransmit_superseded_; }
  std::uint64_t skipped_down() const { return skipped_down_; }

 private:
  void capture();
  /// One transmit attempt for `c` (attempt 0 = the capture itself).  The
  /// fault specs are (re-)evaluated at the attempt's own simulated time.
  void attempt(node::TimeCapsule c, Duration capture_clock, int attempt_no);
  void drop(const node::TimeCapsule& c, Duration capture_clock, int attempt_no,
            obs::DiscardReason reason);
  void transmit(node::TimeCapsule c, Duration capture_clock);

  sim::ShardGroup& group_;
  Cluster& src_;
  GatewayLinkRx& rx_;
  Config cfg_;
  std::vector<ArmedSpec> specs_;
  std::uint64_t seq_ = 0;  ///< last issued capsule sequence number

  std::uint64_t captures_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_partition_ = 0;
  std::uint64_t dropped_loss_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t retransmit_superseded_ = 0;
  std::uint64_t skipped_down_ = 0;

  std::unique_ptr<sim::PeriodicTask> task_;  ///< declared last: dies first
};

/// Receiving side of one gateway link: validation, degradation state
/// machine, holdover synthesis.
class GatewayLinkRx {
 public:
  struct Config {
    int link_index = 0;
    int peer_key = -1;       ///< -(1 + link index), the pseudo-peer id
    Duration link_latency;
    Duration round_period;
    SimTime first_check;     ///< first_capture + latency + check_delay
    node::GuardConfig guard{};
  };

  GatewayLinkRx(Cluster& dst_segment, Config cfg);

  /// Entry point for a wire arrival (runs on the destination engine).
  void on_wire(const node::TimeCapsule::Wire& wire);

  /// Receiver-side accounting in the *destination* segment's registry:
  /// capsule verdicts under "fault.capsule.link<i>." and the degradation
  /// state machine under "cluster.gw.link<i>.".
  void register_metrics(obs::MetricsRegistry& reg);

  const node::GatewayGuard& guard() const { return guard_; }
  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t rejected_checksum() const { return rejected_checksum_; }
  std::uint64_t rejected_stale() const { return rejected_stale_; }
  /// Capsules that arrived while the destination gateway node was crashed
  /// (segment_crash window) — accounted, never silently discarded.
  std::uint64_t skipped_down() const { return skipped_down_; }
  std::uint64_t holdover_offers() const { return holdover_offers_; }
  /// Simulated time of the most recent transition back to SYNCHRONIZED
  /// (epoch when it never happened) — E15's rounds-to-resync measurement.
  SimTime last_sync_time() const { return last_sync_time_; }

 private:
  void round_check();
  void trace_transition(node::GatewayState from, node::GatewayState to);

  Cluster& dst_;
  Config cfg_;
  node::GatewayGuard guard_;

  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_checksum_ = 0;
  std::uint64_t rejected_stale_ = 0;
  std::uint64_t skipped_down_ = 0;
  std::uint64_t holdover_offers_ = 0;
  SimTime last_sync_time_ = SimTime::epoch();

  std::unique_ptr<sim::PeriodicTask> task_;  ///< declared last: dies first
};

}  // namespace nti::cluster
