#include "cluster/sharded.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace nti::cluster {

ShardedCluster::ShardedCluster(ClusterConfig cfg) : base_(std::move(cfg)) {
  topo_ = base_.topology;
  if (!topo_.multi_segment()) {
    topo_.segment_sizes = {base_.num_nodes};
    topo_.links.clear();
  }
  topo_.validate();
  if (base_.trace_engine_events) {
    throw std::invalid_argument(
        "sharded cluster: trace_engine_events is unsupported — a shard "
        "engine is shared between segments, so per-segment traces cannot "
        "attribute event firings");
  }
  if (!topo_.links.empty() && topo_.bridge_phase >= base_.sync.round_period) {
    throw std::invalid_argument(
        "sharded cluster: bridge_phase must lie within one sync round");
  }
  int max_size = 0;
  for (const int s : topo_.segment_sizes) max_size = std::max(max_size, s);
  const Duration last_send =
      base_.sync.send_stagger_slot * (max_size - 1) + base_.sync.delay_max;
  if (last_send >= base_.sync.resync_offset) {
    throw std::invalid_argument(
        "sharded cluster: segment of " + std::to_string(max_size) +
        " nodes cannot finish its staggered CSP sends before the resync "
        "offset; shrink send_stagger_slot or segment sizes");
  }

  const int s_count = topo_.num_segments();
  // Validate the *full* plan against the topology (segment/link targets,
  // overlapping crash windows) before anything is built; the sharded kinds
  // are then stripped from segment 0's copy — they are enacted here, by the
  // gateway tap and the crash scheduler, never by a per-segment Injector.
  base_.faults.validate(topo_.segment_sizes[0], s_count,
                        static_cast<int>(topo_.links.size()));
  std::size_t shards = topo_.shards == 0 ? static_cast<std::size_t>(s_count)
                                         : topo_.shards;
  shards = std::min(shards, static_cast<std::size_t>(s_count));
  group_ = std::make_unique<sim::ShardGroup>(shards);
  threads_ = std::min(
      mc::resolve_threads(topo_.threads != 0
                              ? topo_.threads
                              : mc::env_size("NTI_MC_THREADS", 0)),
      shards);
  pool_ = std::make_unique<mc::ThreadPool>(threads_);

  // Contiguous block partition: segment s rides engine s*shards/S.  The
  // grouping is invisible in every output byte (docs/SHARDING.md).
  shard_of_.resize(static_cast<std::size_t>(s_count));
  for (int s = 0; s < s_count; ++s) {
    shard_of_[static_cast<std::size_t>(s)] = static_cast<int>(
        static_cast<std::size_t>(s) * shards / static_cast<std::size_t>(s_count));
  }

  // Per-segment clusters.  Each segment's whole stochastic identity derives
  // from (cluster seed, segment index) — never from the shard layout.
  for (int s = 0; s < s_count; ++s) {
    ClusterConfig seg = base_;
    seg.topology = TopologySpec{};
    seg.num_nodes = topo_.segment_sizes[static_cast<std::size_t>(s)];
    seg.seed = RngStream(base_.seed).fork("segment", static_cast<std::uint64_t>(s))
                   .next_u64();
    if (s != 0) {
      // The reference segment (0) keeps GPS receivers and the fault plan;
      // node ids in those configs are segment-local.
      seg.gps_nodes.clear();
      seg.faults = fault::FaultPlan{};
    } else {
      fault::FaultPlan local;
      for (const fault::FaultSpec& fs : base_.faults.specs) {
        if (!fault::is_sharded_kind(fs.kind)) local.add(fs);
      }
      seg.faults = std::move(local);
    }
    segments_.push_back(std::make_unique<Cluster>(
        group_->engine(
            static_cast<std::size_t>(shard_of_[static_cast<std::size_t>(s)])),
        std::move(seg)));
  }

  // Gateway links, registered in topology order so link ids — the
  // cross-segment delivery tie-break — never depend on the shard layout.
  link_ids_.reserve(topo_.links.size());
  for (const TopoLink& l : topo_.links) {
    link_ids_.push_back(group_->add_link(
        static_cast<std::size_t>(shard_of_[static_cast<std::size_t>(l.src_seg)]),
        static_cast<std::size_t>(shard_of_[static_cast<std::size_t>(l.dst_seg)]),
        l.latency));
  }

  arm_bridges();

  // Per-segment crash accounting lives in the targeted segment's registry
  // (crash events run on that segment's engine, so the counters stay
  // invariant under the shard grouping).
  crash_injected_.assign(static_cast<std::size_t>(s_count), 0);
  crash_recovered_.assign(static_cast<std::size_t>(s_count), 0);
  std::vector<bool> crash_registered(static_cast<std::size_t>(s_count), false);
  for (const fault::FaultSpec& fs : base_.faults.specs) {
    if (fs.kind != fault::Kind::kSegmentCrash) continue;
    const auto seg_idx = static_cast<std::size_t>(fs.node);
    if (crash_registered[seg_idx]) continue;  // several windows, one counter
    crash_registered[seg_idx] = true;
    Cluster& seg = *segments_[seg_idx];
    seg.metrics().add_counter("fault.segment_crash.injected",
                              &crash_injected_[seg_idx]);
    seg.metrics().add_counter("fault.segment_crash.recovered",
                              &crash_recovered_[seg_idx]);
  }
}

ShardedCluster::~ShardedCluster() = default;

void ShardedCluster::start() {
  // Same cold-start advance as Cluster::start, but through the lookahead
  // scheduler so all shards arrive at the start instant together.
  const SimTime base =
      SimTime::epoch() + base_.initial_offset_spread + Duration::ms(1);
  group_->run_until(base, pool_.get());
  for (auto& seg : segments_) seg->start();
  arm_segment_crashes();
}

void ShardedCluster::arm_bridges() {
  const Duration period = base_.sync.round_period;
  const SimTime first_capture = SimTime::epoch() + period + topo_.bridge_phase;
  // Resolve the auto (zero) capsule knobs against the round period.
  const Duration backoff0 = topo_.capsule_backoff > Duration::zero()
                                ? topo_.capsule_backoff
                                : period / 8;
  const Duration stale_timeout = topo_.capsule_stale_timeout > Duration::zero()
                                     ? topo_.capsule_stale_timeout
                                     : period;
  const Duration check_delay = topo_.capsule_check_delay > Duration::zero()
                                   ? topo_.capsule_check_delay
                                   : period / 8;
  // All gateway-fault randomness forks off (seed, "gwfault", spec index,
  // link index) — never off the shard layout, and never off the segments'
  // own streams, so arming a fault plan does not perturb a clean run.
  const RngStream gw_root = RngStream(base_.seed).fork("gwfault");

  rxs_.reserve(topo_.links.size());
  txs_.reserve(topo_.links.size());
  for (std::size_t li = 0; li < topo_.links.size(); ++li) {
    const TopoLink& l = topo_.links[li];
    Cluster& src = *segments_[static_cast<std::size_t>(l.src_seg)];
    Cluster& dst = *segments_[static_cast<std::size_t>(l.dst_seg)];

    GatewayLinkRx::Config rc;
    rc.link_index = static_cast<int>(li);
    // Pseudo-peer key: negative so it can never collide with a local node
    // id inside the destination segment's observation map.
    rc.peer_key = -(1 + static_cast<int>(li));
    rc.link_latency = l.latency;
    rc.round_period = period;
    rc.first_check = first_capture + l.latency + check_delay;
    rc.guard.rho_ppm = base_.sync.rho_bound_ppm;
    rc.guard.granularity = base_.sync.granularity;
    rc.guard.alpha_ceiling = topo_.holdover_ceiling;
    rc.guard.stale_timeout = stale_timeout;
    rc.guard.rejoin_rounds = topo_.rejoin_rounds;
    rxs_.push_back(std::make_unique<GatewayLinkRx>(dst, rc));
    rxs_.back()->register_metrics(dst.metrics());

    GatewayLinkTx::Config tc;
    tc.link_index = static_cast<int>(li);
    tc.group_link_id = link_ids_[li];
    tc.round_period = period;
    tc.first_capture = first_capture;
    tc.backoff0 = backoff0;
    tc.max_retransmit = topo_.capsule_max_retransmit;
    std::vector<GatewayLinkTx::ArmedSpec> armed;
    for (std::size_t si = 0; si < base_.faults.specs.size(); ++si) {
      const fault::FaultSpec& fs = base_.faults.specs[si];
      if (!fault::is_gateway_kind(fs.kind)) continue;
      if (fs.node >= 0 && fs.node != static_cast<int>(li)) continue;
      armed.push_back(GatewayLinkTx::ArmedSpec{
          &fs, gw_root.fork("spec", si).fork("link", li)});
    }
    txs_.push_back(std::make_unique<GatewayLinkTx>(
        *group_, src, *rxs_.back(), tc, std::move(armed)));
    txs_.back()->register_metrics(src.metrics());
  }
}

void ShardedCluster::arm_segment_crashes() {
  for (std::size_t si = 0; si < base_.faults.specs.size(); ++si) {
    const fault::FaultSpec& fs = base_.faults.specs[si];
    if (fs.kind != fault::Kind::kSegmentCrash) continue;
    const auto seg_idx = static_cast<std::size_t>(fs.node);
    Cluster& seg = *segments_[seg_idx];
    seg.engine().schedule_at(fs.start, [this, seg_idx, &fs] {
      Cluster& s = *segments_[seg_idx];
      for (int i = 0; i < s.size(); ++i) s.sync(i).stop();
      ++crash_injected_[seg_idx];
      if (auto* ring = s.trace(); ring != nullptr) {
        ring->push(s.engine().now(), obs::TraceType::kFaultInject, -1,
                   static_cast<std::int64_t>(fs.kind),
                   static_cast<std::int64_t>(seg_idx));
      }
    });
    if (fs.end == SimTime::never()) continue;
    seg.engine().schedule_at(fs.end, [this, si, seg_idx, &fs] {
      Cluster& s = *segments_[seg_idx];
      // Whole-segment cold rejoin, one scatter draw per node in node order
      // (the same model as the Injector's single-node crash recovery): the
      // rebooted CPUs know the time only roughly, and re-integration
      // happens through ordinary CSA rounds plus the gateway capsules.
      const SimTime now = s.engine().now();
      const Duration truth = now - SimTime::epoch();
      RngStream rng = RngStream(base_.seed).fork("gwfault").fork("crash", si);
      const Duration period = base_.sync.round_period;
      for (int i = 0; i < s.size(); ++i) {
        const Duration scatter = rng.uniform(-fs.magnitude, fs.magnitude);
        const Duration value = truth + scatter;
        const Duration alpha0 = fs.magnitude + Duration::us(2);
        const auto first_round =
            static_cast<std::uint32_t>(value.count_ps() / period.count_ps()) + 2;
        s.sync(i).start(value, alpha0, first_round);
      }
      ++crash_recovered_[seg_idx];
      if (auto* ring = s.trace(); ring != nullptr) {
        ring->push(now, obs::TraceType::kFaultClear, -1,
                   static_cast<std::int64_t>(fs.kind),
                   static_cast<std::int64_t>(seg_idx));
      }
    });
  }
}

ProbeSample ShardedCluster::probe() {
  const SimTime t = group_->engine(0).now();
  ProbeSample s;
  s.t = t;
  const Duration truth = t - SimTime::epoch();

  Duration min_c = Duration::max(), max_c = -Duration::max();
  Duration worst_acc = Duration::zero();
  std::int64_t alpha_acc = 0;
  int total_nodes = 0;
  for (auto& seg : segments_) {
    for (int i = 0; i < seg->size(); ++i) {
      const Duration c = seg->node(i).true_clock(t);
      min_c = std::min(min_c, c);
      max_c = std::max(max_c, c);
      worst_acc = std::max(worst_acc, (c - truth).abs());
      const auto iv = seg->sync(i).current_interval(t);
      alpha_acc += (iv.alpha_minus() + iv.alpha_plus()).count_ps() / 2;
      s.alpha_minus_max = std::max(s.alpha_minus_max, iv.alpha_minus());
      s.alpha_plus_max = std::max(s.alpha_plus_max, iv.alpha_plus());
      if (truth < iv.lower() || truth > iv.upper()) ++violations_;
      ++total_nodes;
    }
  }
  s.precision = max_c - min_c;
  s.worst_accuracy = worst_acc;
  s.mean_alpha = Duration::ps(alpha_acc / total_nodes);
  return s;
}

void ShardedCluster::run(Duration total, Duration warmup, Duration probe_period) {
  const SimTime t0 = group_->engine(0).now();
  const SimTime t_end = t0 + total;
  SimTime t_probe = t0 + warmup;
  while (t_probe <= t_end) {
    group_->run_until(t_probe, pool_.get());
    const ProbeSample s = probe();
    precision_.add(s.precision);
    accuracy_.add(s.worst_accuracy);
    alpha_.add(s.mean_alpha);
    ++probes_;
    trajectory_.push_back(s);
    if (on_probe) on_probe(s);
    t_probe += probe_period;
  }
  group_->run_until(t_end, pool_.get());
}

std::string ShardedCluster::output_signature() const {
  std::ostringstream os;
  os << "probes=" << probes_ << " violations=" << violations_ << "\n";
  for (const ProbeSample& s : trajectory_) {
    os << s.t.count_ps() << ',' << s.precision.count_ps() << ','
       << s.worst_accuracy.count_ps() << ',' << s.mean_alpha.count_ps() << ','
       << s.alpha_minus_max.count_ps() << ',' << s.alpha_plus_max.count_ps()
       << "\n";
  }
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    Cluster& seg = *segments_[i];
    os << "== segment " << i << " ==\n";
    os << seg.metrics().to_json() << "\n";
    if (auto* ring = seg.trace(); ring != nullptr) ring->dump_csv(os);
  }
  return os.str();
}

std::uint64_t ShardedCluster::total_events() const {
  std::uint64_t n = 0;
  for (std::size_t e = 0; e < group_->num_engines(); ++e) {
    n += const_cast<sim::ShardGroup&>(*group_).engine(e).events_executed();
  }
  return n;
}

}  // namespace nti::cluster
