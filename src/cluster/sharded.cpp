#include "cluster/sharded.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace nti::cluster {

ShardedCluster::ShardedCluster(ClusterConfig cfg) : base_(std::move(cfg)) {
  topo_ = base_.topology;
  if (!topo_.multi_segment()) {
    topo_.segment_sizes = {base_.num_nodes};
    topo_.links.clear();
  }
  topo_.validate();
  if (base_.trace_engine_events) {
    throw std::invalid_argument(
        "sharded cluster: trace_engine_events is unsupported — a shard "
        "engine is shared between segments, so per-segment traces cannot "
        "attribute event firings");
  }
  if (!topo_.links.empty() && topo_.bridge_phase >= base_.sync.round_period) {
    throw std::invalid_argument(
        "sharded cluster: bridge_phase must lie within one sync round");
  }
  int max_size = 0;
  for (const int s : topo_.segment_sizes) max_size = std::max(max_size, s);
  const Duration last_send =
      base_.sync.send_stagger_slot * (max_size - 1) + base_.sync.delay_max;
  if (last_send >= base_.sync.resync_offset) {
    throw std::invalid_argument(
        "sharded cluster: segment of " + std::to_string(max_size) +
        " nodes cannot finish its staggered CSP sends before the resync "
        "offset; shrink send_stagger_slot or segment sizes");
  }

  const int s_count = topo_.num_segments();
  std::size_t shards = topo_.shards == 0 ? static_cast<std::size_t>(s_count)
                                         : topo_.shards;
  shards = std::min(shards, static_cast<std::size_t>(s_count));
  group_ = std::make_unique<sim::ShardGroup>(shards);
  threads_ = std::min(
      mc::resolve_threads(topo_.threads != 0
                              ? topo_.threads
                              : mc::env_size("NTI_MC_THREADS", 0)),
      shards);
  pool_ = std::make_unique<mc::ThreadPool>(threads_);

  // Contiguous block partition: segment s rides engine s*shards/S.  The
  // grouping is invisible in every output byte (docs/SHARDING.md).
  shard_of_.resize(static_cast<std::size_t>(s_count));
  for (int s = 0; s < s_count; ++s) {
    shard_of_[static_cast<std::size_t>(s)] = static_cast<int>(
        static_cast<std::size_t>(s) * shards / static_cast<std::size_t>(s_count));
  }

  // Per-segment clusters.  Each segment's whole stochastic identity derives
  // from (cluster seed, segment index) — never from the shard layout.
  for (int s = 0; s < s_count; ++s) {
    ClusterConfig seg = base_;
    seg.topology = TopologySpec{};
    seg.num_nodes = topo_.segment_sizes[static_cast<std::size_t>(s)];
    seg.seed = RngStream(base_.seed).fork("segment", static_cast<std::uint64_t>(s))
                   .next_u64();
    if (s != 0) {
      // The reference segment (0) keeps GPS receivers and the fault plan;
      // node ids in those configs are segment-local.
      seg.gps_nodes.clear();
      seg.faults = fault::FaultPlan{};
    }
    segments_.push_back(std::make_unique<Cluster>(
        group_->engine(
            static_cast<std::size_t>(shard_of_[static_cast<std::size_t>(s)])),
        std::move(seg)));
  }

  // Gateway links, registered in topology order so link ids — the
  // cross-segment delivery tie-break — never depend on the shard layout.
  link_ids_.reserve(topo_.links.size());
  for (const TopoLink& l : topo_.links) {
    link_ids_.push_back(group_->add_link(
        static_cast<std::size_t>(shard_of_[static_cast<std::size_t>(l.src_seg)]),
        static_cast<std::size_t>(shard_of_[static_cast<std::size_t>(l.dst_seg)]),
        l.latency));
  }
}

ShardedCluster::~ShardedCluster() = default;

void ShardedCluster::start() {
  // Same cold-start advance as Cluster::start, but through the lookahead
  // scheduler so all shards arrive at the start instant together.
  const SimTime base =
      SimTime::epoch() + base_.initial_offset_spread + Duration::ms(1);
  group_->run_until(base, pool_.get());
  for (auto& seg : segments_) seg->start();
  arm_bridges();
}

void ShardedCluster::arm_bridges() {
  const Duration period = base_.sync.round_period;
  const SimTime first = SimTime::epoch() + period + topo_.bridge_phase;
  for (std::size_t li = 0; li < topo_.links.size(); ++li) {
    const TopoLink& l = topo_.links[li];
    Cluster& src = *segments_[static_cast<std::size_t>(l.src_seg)];
    const int dst_seg = l.dst_seg;
    const Duration latency = l.latency;
    // Pseudo-peer key: negative so it can never collide with a local node
    // id inside the destination segment's observation map.
    const int key = -(1 + static_cast<int>(li));
    const std::size_t link_id = link_ids_[li];
    bridges_.push_back(std::make_unique<sim::PeriodicTask>(
        src.engine(), first, period,
        [this, &src, dst_seg, latency, key, link_id](std::uint64_t) {
          csa::SyncNode& gw = src.sync(0);
          if (!gw.running()) return;
          const SimTime now = src.engine().now();
          const auto iv = gw.current_interval(now);
          const RateStep step = src.node(0).chip().ltu().step();
          group_->send(link_id, [this, dst_seg, key, ref = iv.ref(),
                                 am = iv.alpha_minus(), ap = iv.alpha_plus(),
                                 step, latency] {
            segments_[static_cast<std::size_t>(dst_seg)]->sync(0).offer_remote(
                key, ref, am, ap, step, latency);
          });
        }));
  }
}

ProbeSample ShardedCluster::probe() {
  const SimTime t = group_->engine(0).now();
  ProbeSample s;
  s.t = t;
  const Duration truth = t - SimTime::epoch();

  Duration min_c = Duration::max(), max_c = -Duration::max();
  Duration worst_acc = Duration::zero();
  std::int64_t alpha_acc = 0;
  int total_nodes = 0;
  for (auto& seg : segments_) {
    for (int i = 0; i < seg->size(); ++i) {
      const Duration c = seg->node(i).true_clock(t);
      min_c = std::min(min_c, c);
      max_c = std::max(max_c, c);
      worst_acc = std::max(worst_acc, (c - truth).abs());
      const auto iv = seg->sync(i).current_interval(t);
      alpha_acc += (iv.alpha_minus() + iv.alpha_plus()).count_ps() / 2;
      s.alpha_minus_max = std::max(s.alpha_minus_max, iv.alpha_minus());
      s.alpha_plus_max = std::max(s.alpha_plus_max, iv.alpha_plus());
      if (truth < iv.lower() || truth > iv.upper()) ++violations_;
      ++total_nodes;
    }
  }
  s.precision = max_c - min_c;
  s.worst_accuracy = worst_acc;
  s.mean_alpha = Duration::ps(alpha_acc / total_nodes);
  return s;
}

void ShardedCluster::run(Duration total, Duration warmup, Duration probe_period) {
  const SimTime t0 = group_->engine(0).now();
  const SimTime t_end = t0 + total;
  SimTime t_probe = t0 + warmup;
  while (t_probe <= t_end) {
    group_->run_until(t_probe, pool_.get());
    const ProbeSample s = probe();
    precision_.add(s.precision);
    accuracy_.add(s.worst_accuracy);
    alpha_.add(s.mean_alpha);
    ++probes_;
    trajectory_.push_back(s);
    if (on_probe) on_probe(s);
    t_probe += probe_period;
  }
  group_->run_until(t_end, pool_.get());
}

std::string ShardedCluster::output_signature() const {
  std::ostringstream os;
  os << "probes=" << probes_ << " violations=" << violations_ << "\n";
  for (const ProbeSample& s : trajectory_) {
    os << s.t.count_ps() << ',' << s.precision.count_ps() << ','
       << s.worst_accuracy.count_ps() << ',' << s.mean_alpha.count_ps() << ','
       << s.alpha_minus_max.count_ps() << ',' << s.alpha_plus_max.count_ps()
       << "\n";
  }
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    Cluster& seg = *segments_[i];
    os << "== segment " << i << " ==\n";
    os << seg.metrics().to_json() << "\n";
    if (auto* ring = seg.trace(); ring != nullptr) ring->dump_csv(os);
  }
  return os.str();
}

std::uint64_t ShardedCluster::total_events() const {
  std::uint64_t n = 0;
  for (std::size_t e = 0; e < group_->num_engines(); ++e) {
    n += const_cast<sim::ShardGroup&>(*group_).engine(e).events_executed();
  }
  return n;
}

}  // namespace nti::cluster
