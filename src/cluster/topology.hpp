// Multi-segment topology description (docs/SHARDING.md).
//
// A topology is a set of broadcast *segments* — each one CSMA/CD
// net::Medium with its own nodes, exactly the paper's LAN deployment unit —
// joined by directed *gateway links* with a fixed positive latency.  The
// latency doubles as the conservative lookahead bound of the sharded event
// engine (sim::ShardGroup), so zero-latency links are rejected outright at
// validation: they would leave the receiving shard no safe horizon to
// advance to.
//
// Generators cover the shapes the scale experiments measure (E14):
// chains and trees for the hierarchy-of-LANs story, full meshes for the
// densest gateway coupling, and seeded Erdos-Renyi-over-a-spanning-tree
// "ad hoc" graphs after Pabico's ad hoc clock networks (PAPERS.md), where
// precision-vs-graph-diameter is the headline measurement.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/time_types.hpp"

namespace nti::cluster {

/// One directed gateway link between segments.  Bidirectional gateways are
/// two TopoLinks; the generators emit both directions adjacently.
struct TopoLink {
  int src_seg = 0;
  int dst_seg = 0;
  Duration latency = Duration::ms(1);
};

struct TopologySpec {
  /// Nodes per segment.  Empty means "no topology": the cluster stays the
  /// classic single-segment build with ClusterConfig::num_nodes nodes.
  std::vector<int> segment_sizes;
  std::vector<TopoLink> links;

  /// Event shards to run the segments on; 0 = one shard per segment.
  /// Segments are assigned to shards in contiguous blocks, which never
  /// changes any output byte (the determinism contract, docs/SHARDING.md).
  std::size_t shards = 0;
  /// Worker threads for the shard pool; 0 = NTI_MC_THREADS env, then one
  /// per hardware core.  Also never changes any output byte.
  std::size_t threads = 0;

  /// Phase within each sync round (in simulated time) at which a gateway
  /// captures its segment's reference interval for forwarding — after the
  /// resync offset, so captures ship freshly fused intervals, and late
  /// enough that the *receiving* gateway has normally finished amortizing
  /// its own last correction by the time the capsule arrives (a 700 ms
  /// phase clears any correction up to ~0.9 ms at the default 2e-3
  /// amortization rate; SyncNode::offer_remote widens its margin by the
  /// remaining slew when one is still running, so earlier phases stay
  /// containment-correct, just wider).
  Duration bridge_phase = Duration::ms(700);

  // -- segment-level fault tolerance (docs/SHARDING.md) --------------------
  // A gateway that stops receiving capsules degrades through
  // SYNCHRONIZED -> HOLDOVER -> FREE_RUNNING, widening its synthesized
  // remote interval at the rho drift bound per elapsed tick (the ACU
  // deterioration law, node/gateway.hpp).
  /// Holdover bound ceiling: once the deteriorated remote alpha exceeds it,
  /// the gateway signals accuracy-broken and stops synthesizing offers.
  Duration holdover_ceiling = Duration::ms(2);
  /// Consecutive accepted capsules required to leave REJOINING.
  int rejoin_rounds = 2;
  /// Bounded retransmit-with-backoff for capsules dropped on a partitioned
  /// or lossy link: attempt k fires capsule_backoff * 2^(k-1) after the
  /// drop, skipped once a newer capture supersedes it.  Zero disables.
  int capsule_max_retransmit = 3;
  /// First retransmit backoff; zero = round_period / 8.
  Duration capsule_backoff = Duration::zero();
  /// Receiver staleness cut: capsules whose capture-to-transmit hold
  /// exceeds this are rejected (kCapsuleStale); zero = round_period.
  Duration capsule_stale_timeout = Duration::zero();
  /// How long after the nominal capsule arrival the receiving gateway
  /// checks for a missed round; zero = round_period / 8.
  Duration capsule_check_delay = Duration::zero();

  bool multi_segment() const { return !segment_sizes.empty(); }
  int num_segments() const { return static_cast<int>(segment_sizes.size()); }
  int total_nodes() const;
  /// Longest shortest path between segments over the undirected link graph
  /// (-1 when disconnected) — the hop count precision degrades with.
  int diameter() const;

  /// Throws std::invalid_argument on structural errors: empty segments,
  /// segment sizes outside [1, 255] (CSP source ids are one byte),
  /// out-of-range link endpoints, self-links, and non-positive or
  /// sub-nanosecond link latencies (no conservative lookahead).
  void validate() const;

  static TopologySpec chain(int segments, int nodes_per_segment, Duration latency);
  /// Rooted tree: every non-leaf has `fanout` children, `depth` levels below
  /// the root (depth 0 = just the root segment).
  static TopologySpec tree(int fanout, int depth, int nodes_per_segment,
                           Duration latency);
  static TopologySpec mesh(int segments, int nodes_per_segment, Duration latency);
  /// Random connected graph: spanning tree (each segment i >= 1 attaches to
  /// a uniform earlier segment) plus each remaining pair independently with
  /// `edge_probability`.  Fully seeded — same seed, same graph.
  static TopologySpec ad_hoc(int segments, int nodes_per_segment,
                             double edge_probability, Duration latency,
                             std::uint64_t seed);
};

}  // namespace nti::cluster
