// ShardedCluster: a multi-segment topology on the sharded event engine
// (docs/SHARDING.md).
//
// One cluster::Cluster per segment — each the paper's deployment unit: a
// broadcast CSMA/CD LAN with its own nodes, medium, RNG streams, trace
// ring and metrics registry — wired onto a sim::ShardGroup that assigns
// segments to shard engines in contiguous blocks and advances them under
// the conservative lookahead rule.  Gateway links carry *time capsules*:
// at a fixed phase of every sync round, the gateway node (node 0) of the
// link's source segment captures its current reference interval and ships
// it over the link; on arrival the destination gateway node feeds it into
// its own round via SyncNode::offer_remote as a pseudo-peer keyed by
// -(1 + link index).  Time therefore diffuses across the topology at one
// gateway hop per round, which is exactly the precision-vs-diameter
// trade E14 measures.
//
// Determinism contract (pinned by tests/sim/shard_differential_test.cpp
// and tests/cluster/shard_matrix_test.cpp): every byte of
// output_signature() — probe trajectory, per-segment metrics JSON,
// per-segment traces — is invariant under the shard count and the worker
// thread count.  Segment seeds derive from (seed, segment index) alone;
// segments sharing a shard engine interleave events but share no mutable
// state, and cross-segment deliveries execute in (arrival, link, seq)
// order through the engine's front band no matter which path scheduled
// them.  Shard-engine counters (events executed, queue depths) DO depend
// on the grouping and are deliberately excluded, reported only through
// informational accessors.
//
// Scope notes: gps_nodes and the node/medium-scoped fault plan apply to
// segment 0 only (the reference segment of a hierarchy); the sharded-
// topology fault kinds (fault::is_sharded_kind — gateway partition/loss/
// delay/corruption plus segment_crash) are enacted here, by the gateway
// bridge tap and the crash scheduler, never by a per-segment Injector;
// trace_engine_events is rejected — a shared shard engine cannot
// attribute event firings to one segment.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/bridge.hpp"
#include "cluster/cluster.hpp"
#include "mc/pool.hpp"
#include "sim/periodic.hpp"
#include "sim/shard.hpp"

namespace nti::cluster {

class ShardedCluster {
 public:
  /// cfg.topology must validate; an empty topology means one segment of
  /// cfg.num_nodes nodes (the monolithic reference shape).
  explicit ShardedCluster(ClusterConfig cfg);
  ~ShardedCluster();
  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  int num_segments() const { return static_cast<int>(segments_.size()); }
  Cluster& segment(int s) { return *segments_[static_cast<std::size_t>(s)]; }
  sim::ShardGroup& group() { return *group_; }
  std::size_t shards() const { return group_->num_engines(); }
  std::size_t threads() const { return threads_; }

  /// Cold-start every segment (same scatter rule as Cluster::start) and arm
  /// the gateway bridges.
  void start();

  /// Advance the whole topology with periodic global probes, exactly like
  /// Cluster::run but through the lookahead scheduler.
  void run(Duration total, Duration warmup,
           Duration probe_period = Duration::ms(100));

  /// One simultaneous snapshot across every node of every segment.
  ProbeSample probe();

  std::function<void(const ProbeSample&)> on_probe;

  SampleSet& precision_samples() { return precision_; }
  SampleSet& accuracy_samples() { return accuracy_; }
  SampleSet& alpha_samples() { return alpha_; }
  std::uint64_t containment_violations() const { return violations_; }
  std::uint64_t probes_taken() const { return probes_; }

  /// Deterministic serialization of everything observable: the full probe
  /// trajectory plus each segment's metrics JSON and trace CSV, in segment
  /// order.  Byte-identical across shard and thread counts.
  std::string output_signature() const;

  /// Informational (shard-grouping-dependent): total events executed
  /// across all shard engines.
  std::uint64_t total_events() const;

  /// The gateway bridge endpoints of topology link `li` (benches and tests
  /// read their capsule accounting and degradation state machines).
  GatewayLinkTx& gateway_tx(int li) {
    return *txs_[static_cast<std::size_t>(li)];
  }
  GatewayLinkRx& gateway_rx(int li) {
    return *rxs_[static_cast<std::size_t>(li)];
  }

 private:
  void arm_bridges();
  void arm_segment_crashes();

  ClusterConfig base_;
  TopologySpec topo_;
  std::size_t threads_ = 1;
  std::unique_ptr<sim::ShardGroup> group_;
  std::unique_ptr<mc::ThreadPool> pool_;
  std::vector<int> shard_of_;  ///< segment index -> engine index
  std::vector<std::unique_ptr<Cluster>> segments_;
  std::vector<std::size_t> link_ids_;  ///< topo link index -> group link id
  // Per-segment crash accounting (sized once in the ctor; addresses are
  // registered as counters in the targeted segments' registries).
  std::vector<std::uint64_t> crash_injected_;
  std::vector<std::uint64_t> crash_recovered_;
  // Rx before Tx: each Tx holds a reference to its Rx, so Txs (and the
  // periodic capture tasks inside them) must be destroyed first.
  std::vector<std::unique_ptr<GatewayLinkRx>> rxs_;
  std::vector<std::unique_ptr<GatewayLinkTx>> txs_;

  SampleSet precision_;
  SampleSet accuracy_;
  SampleSet alpha_;
  std::uint64_t violations_ = 0;
  std::uint64_t probes_ = 0;
  std::vector<ProbeSample> trajectory_;
};

}  // namespace nti::cluster
