#include "cluster/bridge.hpp"

#include <algorithm>
#include <utility>

#include "obs/prof.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace nti::cluster {

// ---------------------------------------------------------------------------
// GatewayLinkTx

GatewayLinkTx::GatewayLinkTx(sim::ShardGroup& group, Cluster& src_segment,
                             GatewayLinkRx& rx, Config cfg,
                             std::vector<ArmedSpec> specs)
    : group_(group),
      src_(src_segment),
      rx_(rx),
      cfg_(cfg),
      specs_(std::move(specs)) {
  task_ = std::make_unique<sim::PeriodicTask>(
      src_.engine(), cfg_.first_capture, cfg_.round_period,
      [this](std::uint64_t) { capture(); });
}

void GatewayLinkTx::register_metrics(obs::MetricsRegistry& reg) {
  const std::string p =
      "fault.capsule.link" + std::to_string(cfg_.link_index) + ".";
  reg.add_counter(p + "captures", &captures_);
  reg.add_counter(p + "sent", &sent_);
  reg.add_counter(p + "dropped.partition", &dropped_partition_);
  reg.add_counter(p + "dropped.loss", &dropped_loss_);
  reg.add_counter(p + "corrupted", &corrupted_);
  reg.add_counter(p + "delayed", &delayed_);
  reg.add_counter(p + "retransmits", &retransmits_);
  reg.add_counter(p + "retransmit_superseded", &retransmit_superseded_);
  reg.add_counter(p + "skipped_down", &skipped_down_);
}

void GatewayLinkTx::capture() {
  PROF_ZONE("fault.capsule.tx");
  ++captures_;
  csa::SyncNode& gw = src_.sync(0);
  const SimTime now = src_.engine().now();
  if (!gw.running()) {
    // Crashed gateway node (segment_crash window): nothing to capture, but
    // the skipped round is still accounted and traced.
    ++skipped_down_;
    if (auto* ring = src_.trace(); ring != nullptr) {
      ring->push(now, obs::TraceType::kCapsuleDrop, 0, cfg_.link_index,
                 static_cast<std::int64_t>(obs::DiscardReason::kNodeDown));
    }
    return;
  }
  const auto iv = gw.current_interval(now);
  node::TimeCapsule c;
  c.seq = ++seq_;
  c.ref = iv.ref();
  c.alpha_minus = iv.alpha_minus();
  c.alpha_plus = iv.alpha_plus();
  c.hold = Duration::zero();
  c.step = src_.node(0).chip().ltu().step();
  attempt(c, src_.node(0).driver().read_clock(now), 0);
}

void GatewayLinkTx::attempt(node::TimeCapsule c, Duration capture_clock,
                            int attempt_no) {
  PROF_ZONE("fault.capsule.tx");
  const SimTime now = src_.engine().now();
  Duration delay = Duration::zero();
  for (ArmedSpec& as : specs_) {
    const fault::FaultSpec& s = *as.spec;
    if (now < s.start || now >= s.end) continue;
    switch (s.kind) {
      case fault::Kind::kGatewayPartition:
        drop(c, capture_clock, attempt_no, obs::DiscardReason::kPartition);
        return;
      case fault::Kind::kGatewayCapsuleLoss:
        if (as.rng.chance(s.rate)) {
          drop(c, capture_clock, attempt_no, obs::DiscardReason::kInjectedLoss);
          return;
        }
        break;
      case fault::Kind::kGatewayDelaySpike:
        if (as.rng.chance(s.rate)) delay += s.magnitude;
        break;
      default:
        break;  // kCapsuleCorrupt is a wire effect, evaluated in transmit()
    }
  }
  if (delay > Duration::zero()) {
    // Held back, not dropped: the hold field keeps growing (measured in
    // transmit()) so the receiver pays the deterioration honestly.
    ++delayed_;
    src_.engine().schedule_in(
        delay, [this, c, capture_clock] { transmit(c, capture_clock); });
    return;
  }
  transmit(c, capture_clock);
}

void GatewayLinkTx::drop(const node::TimeCapsule& c, Duration capture_clock,
                         int attempt_no, obs::DiscardReason reason) {
  if (reason == obs::DiscardReason::kPartition) {
    ++dropped_partition_;
  } else {
    ++dropped_loss_;
  }
  if (auto* ring = src_.trace(); ring != nullptr) {
    ring->push(src_.engine().now(), obs::TraceType::kCapsuleDrop, 0,
               cfg_.link_index, static_cast<std::int64_t>(reason));
  }
  if (attempt_no >= cfg_.max_retransmit || !(cfg_.backoff0 > Duration::zero())) {
    return;
  }
  // Exponential backoff: attempt k retries backoff0 * 2^k later, unless a
  // newer capture supersedes this capsule in the meantime.
  const Duration backoff = cfg_.backoff0 * (std::int64_t{1} << attempt_no);
  src_.engine().schedule_in(backoff, [this, c, capture_clock, attempt_no] {
    if (c.seq != seq_) {
      ++retransmit_superseded_;
      return;
    }
    ++retransmits_;
    attempt(c, capture_clock, attempt_no + 1);
  });
}

void GatewayLinkTx::transmit(node::TimeCapsule c, Duration capture_clock) {
  PROF_ZONE("fault.capsule.tx");
  const SimTime now = src_.engine().now();
  // Hold: local-clock time the capsule sat between capture and transmit
  // (retransmit backoffs, delay spikes).  Measured on the sender's own
  // clock, exactly what a CPU reading the UTCSU before handing the frame
  // to the COMCO would see.
  c.hold = std::max(Duration::zero(),
                    src_.node(0).driver().read_clock(now) - capture_clock);
  node::TimeCapsule::Wire w = c.encode();
  for (ArmedSpec& as : specs_) {
    const fault::FaultSpec& s = *as.spec;
    if (s.kind != fault::Kind::kCapsuleCorrupt) continue;
    if (now < s.start || now >= s.end) continue;
    if (!as.rng.chance(s.rate)) continue;
    const std::int64_t bit = as.rng.uniform_int(
        0, static_cast<std::int64_t>(node::TimeCapsule::kWireBytes) * 8 - 1);
    w.bytes[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    ++corrupted_;  // still transmitted: the receiver's CRC-8 must catch it
  }
  ++sent_;
  group_.send(cfg_.group_link_id, [rx = &rx_, w] { rx->on_wire(w); });
}

// ---------------------------------------------------------------------------
// GatewayLinkRx

GatewayLinkRx::GatewayLinkRx(Cluster& dst_segment, Config cfg)
    : dst_(dst_segment), cfg_(cfg), guard_(cfg.guard) {
  task_ = std::make_unique<sim::PeriodicTask>(
      dst_.engine(), cfg_.first_check, cfg_.round_period,
      [this](std::uint64_t) { round_check(); });
}

void GatewayLinkRx::register_metrics(obs::MetricsRegistry& reg) {
  const std::string p =
      "fault.capsule.link" + std::to_string(cfg_.link_index) + ".";
  reg.add_counter(p + "accepted", &accepted_);
  reg.add_counter(p + "rejected.checksum", &rejected_checksum_);
  reg.add_counter(p + "rejected.stale", &rejected_stale_);
  reg.add_counter(p + "rx_skipped_down", &skipped_down_);
  reg.add_counter(p + "holdover_offers", &holdover_offers_);
  const std::string g =
      "cluster.gw.link" + std::to_string(cfg_.link_index) + ".";
  reg.add_gauge(g + "state", [this] {
    return static_cast<double>(static_cast<int>(guard_.state()));
  });
  reg.add_gauge(g + "transitions",
                [this] { return static_cast<double>(guard_.transitions()); });
  reg.add_gauge(g + "holdover_rounds", [this] {
    return static_cast<double>(guard_.holdover_rounds());
  });
  reg.add_gauge(g + "accuracy_broken", [this] {
    return static_cast<double>(guard_.accuracy_broken());
  });
  reg.add_gauge(g + "peak_holdover_alpha_us",
                [this] { return guard_.peak_holdover_alpha().to_us_f(); });
}

void GatewayLinkRx::on_wire(const node::TimeCapsule::Wire& wire) {
  PROF_ZONE("fault.capsule.rx");
  const SimTime now = dst_.engine().now();
  auto* ring = dst_.trace();
  csa::SyncNode& gw = dst_.sync(0);
  if (!gw.running()) {
    // Destination gateway crashed: the capsule is unusable, but it is
    // counted and traced — the no-silent-drops accounting identity
    // (accepted + rejected + rx_skipped_down == sent) must always close.
    ++skipped_down_;
    if (ring != nullptr) {
      ring->push(now, obs::TraceType::kCapsuleDrop, 0, cfg_.link_index,
                 static_cast<std::int64_t>(obs::DiscardReason::kNodeDown));
    }
    return;
  }
  const auto c = node::TimeCapsule::decode(wire);
  if (!c.has_value()) {
    ++rejected_checksum_;
    if (ring != nullptr) {
      ring->push(now, obs::TraceType::kCapsuleDrop, 0, cfg_.link_index,
                 static_cast<std::int64_t>(obs::DiscardReason::kCapsuleCorrupt));
    }
    return;
  }
  const Duration local = dst_.node(0).driver().read_clock(now);
  const node::GatewayGuard::Verdict v = guard_.on_capsule(*c, local);
  if (!v.accepted) {
    ++rejected_stale_;
    if (ring != nullptr) {
      ring->push(now, obs::TraceType::kCapsuleDrop, 0, cfg_.link_index,
                 static_cast<std::int64_t>(v.reason));
    }
    return;
  }
  ++accepted_;
  if (v.from != v.to) {
    trace_transition(v.from, v.to);
    if (v.to == node::GatewayState::kSynchronized) last_sync_time_ = now;
  }
  gw.offer_remote(cfg_.peer_key, v.offer.ref, v.offer.alpha_minus,
                  v.offer.alpha_plus, v.offer.step, cfg_.link_latency,
                  /*synthetic=*/false);
}

void GatewayLinkRx::round_check() {
  PROF_ZONE("fault.capsule.rx");
  csa::SyncNode& gw = dst_.sync(0);
  if (!gw.running()) return;  // crashed receiver: nothing to freewheel into
  const SimTime now = dst_.engine().now();
  const Duration local = dst_.node(0).driver().read_clock(now);
  const node::GatewayGuard::RoundCheck rc = guard_.on_round_check(local);
  if (rc.from != rc.to) trace_transition(rc.from, rc.to);
  if (!rc.offer_valid) return;
  ++holdover_offers_;
  // The freewheeled reference predicts the sender's clock *now*; it rides
  // the same latency translation as a real capsule so the fusion path is
  // identical — only the synthetic flag (rate-baseline exclusion) differs.
  gw.offer_remote(cfg_.peer_key, rc.offer.ref, rc.offer.alpha_minus,
                  rc.offer.alpha_plus, rc.offer.step, cfg_.link_latency,
                  /*synthetic=*/true);
}

void GatewayLinkRx::trace_transition(node::GatewayState from,
                                     node::GatewayState to) {
  if (auto* ring = dst_.trace(); ring != nullptr) {
    ring->push(dst_.engine().now(), obs::TraceType::kGatewayState, 0,
               cfg_.link_index,
               (static_cast<std::int64_t>(from) << 8) |
                   static_cast<std::int64_t>(to));
  }
}

}  // namespace nti::cluster
