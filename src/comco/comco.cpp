#include "comco/comco.hpp"

#include <algorithm>
#include <cassert>

#include "obs/prof.hpp"

namespace nti::comco {

using module::Addr;
using module::kHeaderBytes;

namespace {

/// Byte `idx` of the frame as this receiver's DMA engine sees it: the
/// shared payload, with the wire-level fault flip (net::Frame::corrupt_bit)
/// applied on the fly.  The flip must happen here, at copy-in time, because
/// the payload storage is shared by all receivers and is filled late by the
/// sender's own DMA model -- mutating it would corrupt the sender too.
std::uint8_t rx_byte(const net::Frame& f, std::size_t idx) {
  std::uint8_t b = f.bytes[idx];
  if (f.corrupt_bit >= 0 && static_cast<std::size_t>(f.corrupt_bit >> 3) == idx) {
    b = static_cast<std::uint8_t>(b ^ (1u << (f.corrupt_bit & 7)));
  }
  return b;
}

}  // namespace

Comco::Comco(sim::Engine& engine, module::Nti& nti, net::Medium& medium,
             ComcoConfig cfg, RngStream rng)
    : engine_(engine),
      nti_(nti),
      medium_(medium),
      port_(medium.attach()),
      cfg_(cfg),
      rng_(rng) {
  port_.on_wire_start = [this](SimTime wire_start,
                               const std::shared_ptr<net::Frame>& frame) {
    assert(!tx_pending_.empty());
    PendingTx tx = tx_pending_.front();
    tx_pending_.pop_front();

    const Addr hdr = module::Nti::tx_header_addr(tx.tx_slot);
    const Duration byte_time = medium_.byte_time();
    const auto preamble = static_cast<std::int64_t>(medium_.config().preamble_bytes);
    const Duration fifo_lead =
        cfg_.fifo_lead_base + rng_.uniform(Duration::zero(), cfg_.fifo_lead_jitter);
    const auto wire_time_of = [&](Addr offset) {
      return wire_start + byte_time * (preamble + static_cast<std::int64_t>(offset));
    };

    // DMA read of the trigger word: leads its wire instant by the FIFO
    // fill.  This is where the TRANSMIT trigger fires in the CPLD.  The
    // word's content is kept for the frame assembly below -- the
    // controller reads each header word exactly once, so the bulk fetch
    // must NOT touch this offset again (a second read would re-trigger
    // and re-sample the stamp ~16 byte-times later).
    const SimTime t_trigger =
        wire_time_of(nti_.program().tx_trigger_offset) - fifo_lead;
    auto trigger_word = std::make_shared<std::uint32_t>(0);
    engine_.schedule_at(t_trigger, [this, hdr, t_trigger, trigger_word,
                                    trace = tx.trace] {
      nti_.set_dma_trace(trace);
      *trigger_word =
          nti_.comco_read32(t_trigger, hdr + nti_.program().tx_trigger_offset);
      last_tx_trigger_ = t_trigger;
    });

    // Remaining header + payload fetch; the mapped words now return the
    // UTCSU's freshly sampled transmit stamp, which thereby rides out in
    // the packet (transparent mapping, Fig. 3).
    const SimTime t_fill = wire_time_of(nti_.program().tx_map_alpha + 4) - fifo_lead;
    engine_.schedule_at(t_fill, [this, hdr, tx, fp = frame, t_fill, trigger_word] {
      PROF_ZONE("comco.dma_walk");
      nti_.set_dma_trace(tx.trace);
      fp->bytes.resize(kHeaderBytes + tx.data_len);
      for (Addr off = 0; off < kHeaderBytes; off += 4) {
        const std::uint32_t w = off == nti_.program().tx_trigger_offset
                                    ? *trigger_word
                                    : nti_.comco_read32(t_fill, hdr + off);
        fp->bytes[off + 0] = static_cast<std::uint8_t>(w);
        fp->bytes[off + 1] = static_cast<std::uint8_t>(w >> 8);
        fp->bytes[off + 2] = static_cast<std::uint8_t>(w >> 16);
        fp->bytes[off + 3] = static_cast<std::uint8_t>(w >> 24);
      }
      for (std::size_t i = 0; i < tx.data_len; i += 4) {
        const std::uint32_t w =
            nti_.comco_read32(t_fill, tx.data_addr + static_cast<Addr>(i));
        for (std::size_t b = 0; b < 4 && i + b < tx.data_len; ++b) {
          fp->bytes[kHeaderBytes + i + b] = static_cast<std::uint8_t>(w >> (8 * b));
        }
      }
    });

    // Transmit-complete interrupt once the frame has left the wire.
    const Duration air = medium_.frame_air_time(frame->bytes.size());
    engine_.schedule_at(wire_start + air + cfg_.completion_delay, [this, tx] {
      if (on_tx_complete) on_tx_complete(tx.tx_slot);
    });
  };

  port_.on_tx_abort = [this](const net::Frame&) {
    assert(!tx_pending_.empty());
    const PendingTx tx = tx_pending_.front();
    tx_pending_.pop_front();
    if (on_tx_abort) on_tx_abort(tx.tx_slot);
  };

  port_.on_frame = [this](std::shared_ptr<const net::Frame> frame,
                          const net::RxTiming& timing) {
    handle_rx(std::move(frame), timing);
  };
}

void Comco::transmit(int tx_slot, Addr data_addr, std::size_t data_len,
                     std::uint64_t trace) {
  const Duration latency =
      cfg_.cmd_latency_base + rng_.uniform(Duration::zero(), cfg_.cmd_latency_jitter);
  engine_.schedule_in(latency, [this, tx_slot, data_addr, data_len, trace] {
    // Arena-backed buffer, zero-filled (real bytes land at DMA time).
    net::Frame frame = medium_.make_frame(kHeaderBytes + data_len, 0);
    frame.trace_id = trace;
    // Enqueue with the medium *first*: a tail-dropped frame never gets a
    // wire start, so pushing PendingTx unconditionally would desync the
    // in-order matching in on_wire_start (every later frame would fetch
    // the wrong header).  The wire-start callback always fires through the
    // event queue, never synchronously, so the push ordering is safe.
    if (!medium_.transmit(port_, std::move(frame))) {
      if (on_tx_abort) on_tx_abort(tx_slot);
      return;
    }
    tx_pending_.push_back({tx_slot, data_addr, data_len, trace});
  });
}

void Comco::provision_rx(int rx_slot, Addr data_addr, std::size_t capacity) {
  rx_ring_.push_back({rx_slot, data_addr, capacity});
}

void Comco::handle_rx(std::shared_ptr<const net::Frame> frame,
                      const net::RxTiming& timing) {
  if (frame->bytes.size() < kHeaderBytes) return;  // runt: controller drops
  if (rx_ring_.empty()) {
    ++rx_overruns_;  // "no resources" in 82596 terms
    if (spans_ != nullptr) {
      spans_->record(frame->trace_id, obs::SpanStage::kDiscarded,
                     timing.rx_start, port_.station(),
                     static_cast<std::int64_t>(obs::DiscardReason::kRxOverrun));
    }
    return;
  }
  const RxSlot slot = rx_ring_.front();
  rx_ring_.pop_front();
  rx_trace_[slot.slot] = frame->trace_id;

  const Addr hdr = module::Nti::rx_header_addr(slot.slot);
  const Duration byte_time = timing.byte_time;
  const auto preamble = static_cast<std::int64_t>(medium_.config().preamble_bytes);
  const Duration arb =
      cfg_.rx_arb_base + rng_.uniform(Duration::zero(), cfg_.rx_arb_jitter);
  const auto byte_received_at = [=](Addr offset) {
    return timing.rx_start + byte_time * (preamble + static_cast<std::int64_t>(offset) + 4);
  };

  // Early header burst: bytes 0x00..0x1C drain to memory as soon as the
  // trigger word is complete and the controller wins the bus.  The write
  // of offset 0x1C fires RECEIVE in the CPLD.
  const Addr rx_trig = nti_.program().rx_trigger_offset;
  const SimTime t_hdr = byte_received_at(rx_trig) + arb;
  engine_.schedule_at(t_hdr, [this, hdr, fp = frame, rx_trig, t_hdr] {
    PROF_ZONE("comco.dma_walk");
    nti_.set_dma_trace(fp->trace_id);
    for (Addr off = 0; off <= rx_trig; off += 4) {
      std::uint32_t w = 0;
      for (std::size_t b = 0; b < 4; ++b) {
        w |= std::uint32_t{rx_byte(*fp, off + b)} << (8 * b);
      }
      nti_.comco_write32(t_hdr, hdr + off, w);
      if (off == rx_trig) last_rx_trigger_ = t_hdr;
    }
  });

  // Remainder of header + payload after frame end.
  const std::size_t payload_len =
      std::min(frame->bytes.size() - kHeaderBytes, slot.capacity);
  const SimTime t_rest = timing.rx_end + arb;
  engine_.schedule_at(t_rest, [this, hdr, fp = frame, slot, payload_len, rx_trig, t_rest] {
    PROF_ZONE("comco.dma_walk");
    nti_.set_dma_trace(fp->trace_id);
    for (Addr off = rx_trig + 4; off < kHeaderBytes; off += 4) {
      std::uint32_t w = 0;
      for (std::size_t b = 0; b < 4; ++b) {
        w |= std::uint32_t{rx_byte(*fp, off + b)} << (8 * b);
      }
      nti_.comco_write32(t_rest, hdr + off, w);
    }
    for (std::size_t i = 0; i < payload_len; i += 4) {
      std::uint32_t w = 0;
      for (std::size_t b = 0; b < 4 && i + b < payload_len; ++b) {
        w |= std::uint32_t{rx_byte(*fp, kHeaderBytes + i + b)} << (8 * b);
      }
      nti_.comco_write32(t_rest, slot.data_addr + static_cast<Addr>(i), w);
    }
  });

  engine_.schedule_at(timing.rx_end + cfg_.completion_delay,
                      [this, slot, payload_len] {
                        if (on_rx_complete) on_rx_complete(slot.slot, payload_len);
                      });
}

}  // namespace nti::comco
