// COMCO: communications coprocessor model (Intel 82596CA-class).
//
// The COMCO moves packet data between NTI memory and the network
// independently of the CPU via DMA (paper Fig. 2).  What matters for clock
// synchronization is *when* it touches the supervised header words:
//
//   TX: the controller prefetches the transmit header/data into its FIFO
//   shortly before and during wire transmission.  The read of header
//   offset 0x14 (the trigger word) therefore leads its bytes' wire time by
//   the FIFO fill level -- a data-dependent lead with bounded jitter.
//   That jitter is the transmit half of the residual uncertainty epsilon.
//
//   RX: incoming bytes drain from the FIFO into memory once the controller
//   wins bus arbitration; the write of receive-header offset 0x1C lags the
//   corresponding wire time by the arbitration delay.  That jitter is the
//   receive half of epsilon.
//
// Everything else (command latency, completion interrupts, rx descriptor
// ring, frame filtering left to software, footnote-4 discard semantics) is
// modeled so the driver above sees a realistic controller.
//
// Wire header layout used by the driver (64-byte header, Fig. 7):
//   0x00  dest MAC (6 B, broadcast)     0x14  trigger word (don't care)
//   0x06  src MAC (node id)             0x18  TX timestamp   (mapped)
//   0x0C  ethertype                     0x1C  TX macrostamp  (mapped; RX
//   0x0E  payload length                       trigger on write)
//                                       0x20  TX alpha       (mapped)
//   0x24..0x3F unused on the wire; the receiver's CPU saves the RX stamp
//   there (kRxSave* in nti/memmap.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "common/rng.hpp"
#include "net/medium.hpp"
#include "nti/nti.hpp"
#include "sim/engine.hpp"

namespace nti::comco {

inline constexpr std::uint16_t kEthertypeCsp = 0x88F7;

struct ComcoConfig {
  Duration cmd_latency_base = Duration::us(6);   ///< CA strobe -> DMA starts
  Duration cmd_latency_jitter = Duration::us(4);
  Duration fifo_lead_base = Duration::us(3);     ///< header-read lead vs wire
  Duration fifo_lead_jitter = Duration::ns(150); ///< TX half of epsilon
  Duration rx_arb_base = Duration::ns(200);      ///< bus arbitration for writes
  Duration rx_arb_jitter = Duration::ns(250);    ///< RX half of epsilon
  Duration completion_delay = Duration::us(2);   ///< frame end -> IRQ callback
};

class Comco {
 public:
  Comco(sim::Engine& engine, module::Nti& nti, net::Medium& medium,
        ComcoConfig cfg, RngStream rng);

  /// Transmit the CSP prepared by the driver in `tx_slot`'s header plus
  /// `data_len` payload bytes at `data_addr` (NTI data-buffer space).
  /// `trace` is the CSP's span id (0 = untraced); it rides along as frame
  /// metadata and arms the NTI's DMA-burst attribution.
  void transmit(int tx_slot, module::Addr data_addr, std::size_t data_len,
                std::uint64_t trace = 0);

  /// Provision a receive descriptor: header slot + payload buffer.
  void provision_rx(int rx_slot, module::Addr data_addr, std::size_t capacity);

  /// Completion callbacks (the CPU model wraps these in ISR latency).
  std::function<void(int tx_slot)> on_tx_complete;
  std::function<void(int rx_slot, std::size_t payload_len)> on_rx_complete;
  std::function<void(int tx_slot)> on_tx_abort;

  std::uint64_t rx_overruns() const { return rx_overruns_; }
  net::MacPort& port() { return port_; }

  /// Record rx-overrun discards against the dropped frame's span.
  /// Borrowed, not owned; nullptr disables.
  void set_spans(obs::SpanCollector* spans) { spans_ = spans; }

  /// Span id of the frame most recently delivered into `rx_slot` (0 when
  /// untraced/unknown).  The driver reads this in its rx-complete path to
  /// propagate the trace into the task-level CSP record.
  std::uint64_t rx_trace(int rx_slot) const {
    const auto it = rx_trace_.find(rx_slot);
    return it != rx_trace_.end() ? it->second : 0;
  }

  /// Ground-truth instants of the last trigger-word accesses; experiment
  /// probes read these to compute epsilon exactly (not visible to the
  /// synchronization software).
  SimTime last_tx_trigger_time() const { return last_tx_trigger_; }
  SimTime last_rx_trigger_time() const { return last_rx_trigger_; }

 private:
  struct RxSlot {
    int slot;
    module::Addr data_addr;
    std::size_t capacity;
  };
  struct PendingTx {
    int tx_slot;
    module::Addr data_addr;
    std::size_t data_len;
    std::uint64_t trace;
  };

  void handle_rx(std::shared_ptr<const net::Frame> frame,
                 const net::RxTiming& timing);

  sim::Engine& engine_;
  module::Nti& nti_;
  net::Medium& medium_;
  net::MacPort& port_;
  ComcoConfig cfg_;
  RngStream rng_;
  std::deque<RxSlot> rx_ring_;
  std::deque<PendingTx> tx_pending_;  ///< matched to wire starts in order
  std::uint64_t rx_overruns_ = 0;
  SimTime last_tx_trigger_ = SimTime::epoch();
  SimTime last_rx_trigger_ = SimTime::epoch();
  obs::SpanCollector* spans_ = nullptr;
  // Ordered map: slot-keyed sweeps stay deterministic under any libstdc++.
  std::map<int, std::uint64_t> rx_trace_;  ///< rx_slot -> span id
};

}  // namespace nti::comco
