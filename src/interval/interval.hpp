// Accuracy intervals and interval fusion (paper Sec. 2).
//
// Real time t is represented by an accuracy interval A = [C - a_minus,
// C + a_plus] around the local clock value C, with the invariant t in A.
// Nodes exchange these intervals in CSPs; convergence functions fuse a set
// of (preprocessed) intervals into a new, smaller interval that still
// contains t despite up to f faulty inputs.
//
// Clock values here are logical durations since the common clock epoch,
// held in picoseconds.  Accuracies are non-negative durations.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/time_types.hpp"

namespace nti::interval {

/// An accuracy interval: clock reference value plus asymmetric accuracies.
class AccInterval {
 public:
  AccInterval() = default;
  /// Construct from reference and accuracies (both must be >= 0).
  AccInterval(Duration ref, Duration alpha_minus, Duration alpha_plus);
  /// Construct from edges (lo <= hi); reference defaults to the midpoint.
  static AccInterval from_edges(Duration lo, Duration hi);
  static AccInterval from_edges(Duration lo, Duration hi, Duration ref);
  /// Degenerate interval (a point).
  static AccInterval point(Duration ref) { return AccInterval(ref, Duration::zero(), Duration::zero()); }

  Duration ref() const { return ref_; }
  Duration alpha_minus() const { return am_; }
  Duration alpha_plus() const { return ap_; }
  Duration lower() const { return ref_ - am_; }
  Duration upper() const { return ref_ + ap_; }
  Duration length() const { return am_ + ap_; }
  Duration midpoint() const { return lower() + (upper() - lower()) / 2; }

  bool contains(Duration t) const { return lower() <= t && t <= upper(); }
  bool intersects(const AccInterval& o) const {
    return lower() <= o.upper() && o.lower() <= upper();
  }

  /// Enlarge both edges (delay/drift deterioration).  Negative growth is a
  /// contract violation and asserts.
  AccInterval enlarged(Duration grow_minus, Duration grow_plus) const;
  /// Shift the whole interval (reference and edges) by dt.
  AccInterval shifted(Duration dt) const;
  /// Same edges, new reference point (must lie within the interval).
  AccInterval with_ref(Duration new_ref) const;

  std::string str() const;

 private:
  Duration ref_;
  Duration am_;  ///< alpha_minus >= 0
  Duration ap_;  ///< alpha_plus  >= 0
};

/// Exact intersection; nullopt when disjoint.  The reference of the result
/// is the midpoint of the intersection.
std::optional<AccInterval> intersect(const AccInterval& a, const AccInterval& b);

/// Smallest interval containing both (convex hull).
AccInterval hull(const AccInterval& a, const AccInterval& b);

/// Marzullo's fault-tolerant fusion M_f: the first (leftmost) maximal
/// segment of points that lie in at least (n - f) of the n input intervals
/// [Mar84].  Every returned point really is covered by a quorum; when the
/// quorum set is non-contiguous (possible only with faulty inputs) the
/// result no longer spans the sub-quorum gap the old hull-of-quorum
/// implementation included.  Returns nullopt when no point achieves the
/// quorum (more than f inputs are mutually inconsistent).
std::optional<AccInterval> marzullo(std::span<const AccInterval> xs, int f);

/// Fault-tolerant edge selection: the fused lower edge is the (f+1)-th
/// smallest... specifically, sort lower edges descending and take the
/// (f+1)-th (so up to f arbitrarily large faulty lower edges are ignored);
/// dually for the upper edge.  This is the interval analogue of the
/// fault-tolerant midpoint family and the core of the orthogonal-accuracy
/// convergence function OA [Sch97b] (see DESIGN.md §4 for the
/// reconstruction note).  Requires n >= 2f + 1.
std::optional<AccInterval> ft_edge_fusion(std::span<const AccInterval> xs, int f);

/// Fault-tolerant average of the reference points after discarding the f
/// smallest and f largest (the CSU/FTA baseline of [KO87], lifted to a
/// degenerate interval).  Requires n >= 2f + 1.
std::optional<Duration> fault_tolerant_average(std::span<const Duration> xs, int f);

}  // namespace nti::interval
