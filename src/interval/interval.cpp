#include "interval/interval.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace nti::interval {

AccInterval::AccInterval(Duration ref, Duration alpha_minus, Duration alpha_plus)
    : ref_(ref), am_(alpha_minus), ap_(alpha_plus) {
  assert(alpha_minus >= Duration::zero() && alpha_plus >= Duration::zero());
}

AccInterval AccInterval::from_edges(Duration lo, Duration hi) {
  assert(lo <= hi);
  const Duration mid = lo + (hi - lo) / 2;
  return AccInterval(mid, mid - lo, hi - mid);
}

AccInterval AccInterval::from_edges(Duration lo, Duration hi, Duration ref) {
  assert(lo <= ref && ref <= hi);
  return AccInterval(ref, ref - lo, hi - ref);
}

AccInterval AccInterval::enlarged(Duration grow_minus, Duration grow_plus) const {
  assert(grow_minus >= Duration::zero() && grow_plus >= Duration::zero());
  return AccInterval(ref_, am_ + grow_minus, ap_ + grow_plus);
}

AccInterval AccInterval::shifted(Duration dt) const {
  return AccInterval(ref_ + dt, am_, ap_);
}

AccInterval AccInterval::with_ref(Duration new_ref) const {
  assert(contains(new_ref));
  return AccInterval(new_ref, new_ref - lower(), upper() - new_ref);
}

std::string AccInterval::str() const {
  return "[" + lower().str() + ", " + upper().str() + "] @ " + ref_.str();
}

std::optional<AccInterval> intersect(const AccInterval& a, const AccInterval& b) {
  const Duration lo = std::max(a.lower(), b.lower());
  const Duration hi = std::min(a.upper(), b.upper());
  if (lo > hi) return std::nullopt;
  return AccInterval::from_edges(lo, hi);
}

AccInterval hull(const AccInterval& a, const AccInterval& b) {
  return AccInterval::from_edges(std::min(a.lower(), b.lower()),
                                 std::max(a.upper(), b.upper()));
}

std::optional<AccInterval> marzullo(std::span<const AccInterval> xs, int f) {
  if (xs.empty()) return std::nullopt;
  const int n = static_cast<int>(xs.size());
  const int quorum = n - f;
  if (quorum <= 0) return std::nullopt;

  // Sweep over edge events; +1 at a lower edge, -1 just past an upper edge.
  // type 0 (open) sorts before type 1 (close) at equal position so that a
  // point shared by a closing and an opening interval counts both.
  struct Edge {
    Duration pos;
    int type;  // 0 = lower, 1 = upper
  };
  std::vector<Edge> edges;
  edges.reserve(xs.size() * 2);
  for (const auto& x : xs) {
    edges.push_back({x.lower(), 0});
    edges.push_back({x.upper(), 1});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.pos != b.pos) return a.pos < b.pos;
    return a.type < b.type;
  });

  // Return the FIRST maximal quorum segment.  Latching the first lower edge
  // that reached quorum and the last upper edge still at quorum returned the
  // hull of all quorum segments, which spans gaps covered by fewer than
  // (n - f) intervals when the quorum set is non-contiguous, e.g.
  // {[0,10],[0,10],[20,30],[20,30]} with f=2 fused to [0,30] even though no
  // point of (10,20) is in any input.  Every point of the segment returned
  // here is genuinely quorum-covered.
  int count = 0;
  bool in_segment = false;
  Duration seg_lo{};
  for (const Edge& e : edges) {
    if (e.type == 0) {
      ++count;
      if (count >= quorum && !in_segment) {
        seg_lo = e.pos;
        in_segment = true;
      }
    } else {
      // The close that takes count below quorum ends the first segment;
      // its position is the segment's (inclusive) upper edge.
      if (in_segment && count == quorum) {
        return AccInterval::from_edges(seg_lo, e.pos);
      }
      --count;
    }
  }
  return std::nullopt;  // count never reached quorum
}

std::optional<AccInterval> ft_edge_fusion(std::span<const AccInterval> xs, int f) {
  const int n = static_cast<int>(xs.size());
  if (n < 2 * f + 1) return std::nullopt;

  std::vector<Duration> lowers, uppers;
  lowers.reserve(xs.size());
  uppers.reserve(xs.size());
  for (const auto& x : xs) {
    lowers.push_back(x.lower());
    uppers.push_back(x.upper());
  }
  std::sort(lowers.begin(), lowers.end());
  std::sort(uppers.begin(), uppers.end());

  // Up to f faulty intervals can push their lower edge arbitrarily high (or
  // low); discarding the f largest lower edges guarantees the surviving
  // maximum lower edge came from a correct node, and since every correct
  // interval contains t, max-correct-lower <= t.  Dually for uppers.
  const Duration lo = lowers[static_cast<std::size_t>(n - 1 - f)];
  const Duration hi = uppers[static_cast<std::size_t>(f)];
  if (lo > hi) {
    // Inconsistent inputs beyond the fault assumption; fall back to the
    // hull of the trimmed edges so the caller can still make progress.
    return AccInterval::from_edges(hi, lo);
  }
  return AccInterval::from_edges(lo, hi);
}

std::optional<Duration> fault_tolerant_average(std::span<const Duration> xs, int f) {
  const int n = static_cast<int>(xs.size());
  if (n < 2 * f + 1) return std::nullopt;
  std::vector<Duration> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  std::int64_t acc = 0;
  const int kept = n - 2 * f;
  for (int i = f; i < n - f; ++i) acc += v[static_cast<std::size_t>(i)].count_ps();
  return Duration::ps(acc / kept);
}

}  // namespace nti::interval
