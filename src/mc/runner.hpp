// Monte-Carlo replication runner.
//
// The paper's precision/accuracy claims are statistical: they hold over
// ensembles of oscillator drifts, medium jitter and traffic patterns, not
// over one lucky seed.  The runner executes N independent cluster replicas
// -- each its own sim::Engine + cluster::Cluster, seeded via
// RngStream::fork("replica", i) off one root seed -- across the shared
// mc::ThreadPool, and reduces the results into ensemble statistics (per-metric
// mean/stddev/min/max plus 95% confidence intervals, and merged
// obs::LogHistograms of the probe trajectories).
//
// Determinism is a hard contract: the ensemble output (to_json() and every
// retained probe sample) is byte-identical for any thread count, including
// --threads 1.  Two mechanisms guarantee this:
//   1. replica seeding depends only on (root_seed, index), never on which
//      thread picks the replica up or in what order replicas finish;
//   2. results land in a pre-sized slot array indexed by replica and every
//      reduction (histogram merges, Welford passes, JSON emission) walks
//      the slots in replica order after all threads have joined, so even
//      floating-point accumulation order is fixed.
// Wall-clock throughput (replicas/sec) is measured but deliberately kept
// out of the deterministic serialization.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "obs/histogram.hpp"

namespace nti::mc {

struct McConfig {
  /// Number of independent replicas (env override: NTI_MC_REPLICAS).
  std::size_t replicas = 16;
  /// Worker threads; 0 means one per hardware core
  /// (env override: NTI_MC_THREADS).
  std::size_t threads = 0;
  /// Root seed; replica i runs with RngStream(root).fork("replica", i).
  std::uint64_t root_seed = 1;

  /// Per-replica simulation schedule (mirrors cluster::Cluster::run).
  Duration total = Duration::sec(60);
  Duration warmup = Duration::sec(10);
  Duration probe_period = Duration::ms(100);

  /// Retain every ProbeSample row per replica (the bit-reproducibility
  /// tests compare them; long campaigns may turn this off).
  bool keep_trajectories = true;
};

/// Apply the NTI_MC_REPLICAS / NTI_MC_THREADS env knobs on top of `base`.
McConfig apply_env(McConfig base);

/// The seed replica `index` runs with: first draw of
/// RngStream(root_seed).fork("replica", index).
std::uint64_t replica_seed(std::uint64_t root_seed, std::size_t index);

/// One replica's reduced output.  Everything here is a pure function of
/// (ClusterConfig, McConfig, index) -- no wall-clock, no thread identity.
struct ReplicaResult {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  std::uint64_t probes = 0;
  std::uint64_t violations = 0;
  /// Raw probe trajectory (empty when !keep_trajectories).
  std::vector<cluster::ProbeSample> trajectory;
  /// Named scalar metrics, sorted by name (default set plus anything the
  /// replica hook / extractor contributed via ReplicaContext::metric).
  std::vector<std::pair<std::string, double>> metrics;
  /// Per-replica probe distributions (merged into the ensemble in slot
  /// order); values are microseconds.
  obs::LogHistogram precision_hist;
  obs::LogHistogram accuracy_hist;

  /// Value of a named metric (0.0 when absent).
  double metric(const std::string& name) const;
};

/// Per-replica view handed to the replica hook (pre-start) and the metric
/// extractor (post-run).  Lives exactly as long as the replica's Cluster.
class ReplicaContext {
 public:
  ReplicaContext(std::size_t index, cluster::Cluster& cl, ReplicaResult& out)
      : index_(index), cluster_(cl), out_(out) {}
  ReplicaContext(const ReplicaContext&) = delete;
  ReplicaContext& operator=(const ReplicaContext&) = delete;

  std::size_t index() const { return index_; }
  cluster::Cluster& cluster() { return cluster_; }
  /// Deterministic per-replica stream for scenario randomness installed by
  /// hooks (fault injection schedules etc.); forked off the replica seed so
  /// it never perturbs the cluster's own streams.
  RngStream rng(std::string_view name) const {
    return RngStream(out_.seed).fork(name);
  }

  /// Contribute a named scalar to the replica's metric set (and thus the
  /// ensemble statistics).  Last write wins on duplicate names.
  void metric(const std::string& name, double v);

  /// Construct-and-own arbitrary per-replica state (sample sets, periodic
  /// tasks, counters) that must outlive the hook call; destroyed after the
  /// extractor runs, before the Cluster.
  template <class T, class... Args>
  T& retain(Args&&... args) {
    auto p = std::make_shared<T>(std::forward<Args>(args)...);
    T& ref = *p;
    retained_.push_back(std::move(p));
    return ref;
  }

 private:
  friend class Runner;
  std::size_t index_;
  cluster::Cluster& cluster_;
  ReplicaResult& out_;
  std::vector<std::shared_ptr<void>> retained_;
};

/// Ensemble statistics of one metric across replicas.
struct EnsembleStat {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample stddev (0 for n < 2)
  double ci95 = 0.0;    ///< 1.96 * stddev / sqrt(n) (0 for n < 2)
  double min = 0.0;
  double max = 0.0;
};

struct EnsembleResult {
  std::size_t replicas = 0;
  std::uint64_t root_seed = 0;
  /// Slot-ordered per-replica outputs.
  std::vector<ReplicaResult> replica_results;
  /// Per-metric ensemble statistics, sorted by metric name.
  std::vector<std::pair<std::string, EnsembleStat>> stats;
  /// Probe distributions merged across replicas in slot order (values in
  /// microseconds).
  obs::LogHistogram precision_hist;
  obs::LogHistogram accuracy_hist;

  /// Wall-clock measurements -- informative only, excluded from to_json()
  /// so the serialization stays byte-identical across thread counts.
  double wall_seconds = 0.0;
  double replicas_per_sec = 0.0;
  std::size_t threads_used = 0;

  /// Ensemble statistics of one metric (nullptr when absent).
  const EnsembleStat* stat(const std::string& name) const;

  /// Deterministic serialization of the whole ensemble (config, per-metric
  /// stats, merged histograms, per-replica metric rows).  Byte-identical
  /// for any thread count.
  std::string to_json() const;
};

class Runner {
 public:
  /// Called per replica after Cluster::start() (so chaining the driver
  /// callbacks SyncNode::start installs works), before the run: install
  /// instrumentation, fault injection, probes.  Runs on a worker thread but
  /// only ever touches its own replica's state.
  using ReplicaHook = std::function<void(ReplicaContext&)>;
  /// Called per replica after the run completes: read the cluster, push
  /// scenario-specific metrics.
  using MetricExtractor = std::function<void(ReplicaContext&)>;

  Runner(cluster::ClusterConfig base, McConfig mc)
      : base_(std::move(base)), mc_(mc) {}

  const McConfig& config() const { return mc_; }
  void set_replica_hook(ReplicaHook h) { hook_ = std::move(h); }
  void set_extractor(MetricExtractor e) { extractor_ = std::move(e); }

  /// Execute all replicas across the thread pool and reduce.
  EnsembleResult run();

 private:
  ReplicaResult run_replica(std::size_t index) const;

  cluster::ClusterConfig base_;
  McConfig mc_;
  ReplicaHook hook_;
  MetricExtractor extractor_;
};

}  // namespace nti::mc
