#include "mc/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "mc/pool.hpp"
#include "obs/json.hpp"

namespace nti::mc {

McConfig apply_env(McConfig base) {
  base.replicas = std::max<std::size_t>(1, env_size("NTI_MC_REPLICAS", base.replicas));
  base.threads = env_size("NTI_MC_THREADS", base.threads);
  return base;
}

std::uint64_t replica_seed(std::uint64_t root_seed, std::size_t index) {
  return RngStream(root_seed).fork("replica", index).next_u64();
}

double ReplicaResult::metric(const std::string& name) const {
  const auto it = std::lower_bound(
      metrics.begin(), metrics.end(), name,
      [](const auto& kv, const std::string& k) { return kv.first < k; });
  return (it != metrics.end() && it->first == name) ? it->second : 0.0;
}

void ReplicaContext::metric(const std::string& name, double v) {
  for (auto& kv : out_.metrics) {
    if (kv.first == name) {
      kv.second = v;
      return;
    }
  }
  out_.metrics.emplace_back(name, v);
}

ReplicaResult Runner::run_replica(std::size_t index) const {
  cluster::ClusterConfig cfg = base_;
  cfg.seed = replica_seed(mc_.root_seed, index);

  ReplicaResult out;
  out.index = index;
  out.seed = cfg.seed;

  cluster::Cluster cl(cfg);
  // Base trajectory recording goes in before the hook so a hook chaining
  // on_probe composes on top of it.
  cl.on_probe = [this, &out](const cluster::ProbeSample& s) {
    out.precision_hist.add(s.precision.to_us_f());
    out.accuracy_hist.add(s.worst_accuracy.to_us_f());
    if (mc_.keep_trajectories) out.trajectory.push_back(s);
  };

  ReplicaContext ctx(index, cl, out);
  // Hook runs after start(): SyncNode::start installs the driver callbacks
  // (on_csp/on_duty), so chaining instrumentation on top of them is only
  // possible once the cluster is started -- the same order the single-seed
  // benches always used.
  cl.start();
  if (hook_) hook_(ctx);
  cl.run(mc_.total, mc_.warmup, mc_.probe_period);

  out.probes = cl.probes_taken();
  out.violations = cl.containment_violations();
  ctx.metric("precision_mean_us", cl.precision_samples().mean() * 1e-6);
  ctx.metric("precision_p99_us", cl.precision_samples().percentile(99) * 1e-6);
  ctx.metric("precision_max_us", cl.precision_samples().max() * 1e-6);
  ctx.metric("accuracy_max_us", cl.accuracy_samples().max() * 1e-6);
  ctx.metric("alpha_mean_us", cl.alpha_samples().mean() * 1e-6);
  ctx.metric("violations", static_cast<double>(out.violations));
  if (auto* inj = cl.fault_injector(); inj != nullptr) {
    ctx.metric("fault_injections",
               static_cast<double>(inj->total_injections()));
    ctx.metric("fault_recoveries", static_cast<double>(inj->recoveries()));
  }
  if (extractor_) extractor_(ctx);

  std::stable_sort(out.metrics.begin(), out.metrics.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

EnsembleResult Runner::run() {
  const std::size_t n = mc_.replicas;
  const std::size_t threads = std::min(resolve_threads(mc_.threads), n);

  // Pre-sized slot array: replica i's result lands in slots[i] no matter
  // which worker ran it or when it finished.
  std::vector<ReplicaResult> slots(n);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back([this, &slots, i] { slots[i] = run_replica(i); });
  }
  // nti-lint: allow(prof): wall-clock throughput metric, reported only in
  // the human-facing summary -- never part of deterministic results.
  const auto wall_start = std::chrono::steady_clock::now();
  ThreadPool(threads).run_batch(tasks);
  const std::chrono::duration<double> wall =
      // nti-lint: allow(prof): see wall_start above.
      std::chrono::steady_clock::now() - wall_start;

  // Reduction strictly in slot (replica) order, single-threaded: histogram
  // merges and Welford accumulation are order-sensitive in floating point,
  // and this fixed order is what makes the output thread-count invariant.
  EnsembleResult res;
  res.replicas = n;
  res.root_seed = mc_.root_seed;
  res.threads_used = threads;
  res.wall_seconds = wall.count();
  res.replicas_per_sec =
      wall.count() > 0.0 ? static_cast<double>(n) / wall.count() : 0.0;

  std::vector<std::pair<std::string, SampleSet>> per_metric;
  for (const ReplicaResult& r : slots) {
    res.precision_hist.merge(r.precision_hist);
    res.accuracy_hist.merge(r.accuracy_hist);
    for (const auto& [name, value] : r.metrics) {
      auto it = std::find_if(per_metric.begin(), per_metric.end(),
                             [&](const auto& kv) { return kv.first == name; });
      if (it == per_metric.end()) {
        per_metric.emplace_back(name, SampleSet{});
        it = std::prev(per_metric.end());
      }
      it->second.add(value);
    }
  }
  std::sort(per_metric.begin(), per_metric.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  res.stats.reserve(per_metric.size());
  for (auto& [name, samples] : per_metric) {
    EnsembleStat s;
    s.n = samples.count();
    s.mean = samples.mean();
    s.stddev = samples.stddev();
    s.ci95 = samples.ci95();
    s.min = samples.min();
    s.max = samples.max();
    res.stats.emplace_back(name, s);
  }
  res.replica_results = std::move(slots);
  return res;
}

const EnsembleStat* EnsembleResult::stat(const std::string& name) const {
  const auto it = std::lower_bound(
      stats.begin(), stats.end(), name,
      [](const auto& kv, const std::string& k) { return kv.first < k; });
  return (it != stats.end() && it->first == name) ? &it->second : nullptr;
}

namespace {

obs::JsonObject histogram_json(const obs::LogHistogram& h) {
  obs::JsonObject o;
  o.add("count", h.count());
  o.add("mean", h.mean());
  o.add("p50", h.percentile(50));
  o.add("p99", h.percentile(99));
  o.add("min", h.min());
  o.add("max", h.max());
  return o;
}

}  // namespace

std::string EnsembleResult::to_json() const {
  obs::JsonObject root;

  obs::JsonObject mc;
  mc.add("replicas", static_cast<std::uint64_t>(replicas));
  mc.add("root_seed", root_seed);
  root.add_object("mc", mc);

  obs::JsonObject metrics;
  for (const auto& [name, s] : stats) {
    obs::JsonObject st;
    st.add("n", static_cast<std::uint64_t>(s.n));
    st.add("mean", s.mean);
    st.add("stddev", s.stddev);
    st.add("ci95", s.ci95);
    st.add("min", s.min);
    st.add("max", s.max);
    metrics.add_object(name, st);
  }
  root.add_object("metrics", metrics);

  obs::JsonObject hists;
  hists.add_object("precision_us", histogram_json(precision_hist));
  hists.add_object("accuracy_us", histogram_json(accuracy_hist));
  root.add_object("histograms", hists);

  obs::JsonArray reps;
  for (const ReplicaResult& r : replica_results) {
    obs::JsonObject rep;
    rep.add("index", static_cast<std::uint64_t>(r.index));
    rep.add("seed", r.seed);
    rep.add("probes", r.probes);
    rep.add("violations", r.violations);
    obs::JsonObject rm;
    for (const auto& [name, value] : r.metrics) rm.add(name, value);
    rep.add_object("metrics", rm);
    reps.add_object(rep);
  }
  root.add_array("replicas", reps);
  return root.str();
}

}  // namespace nti::mc
