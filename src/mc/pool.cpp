#include "mc/pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace nti::mc {

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t env_size(const char* name, std::size_t fallback) {
  // nti-lint: allow(nondet): worker-pool sizing only; every caller indexes
  // results by task slot, so the env value never changes any output byte.
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<std::size_t>(parsed);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;  // inline mode: no workers, no locking
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] {
      return stop_ || (batch_ != nullptr && next_task_ < batch_->size());
    });
    if (stop_) return;
    while (batch_ != nullptr && next_task_ < batch_->size()) {
      const std::size_t i = next_task_++;
      ++in_flight_;
      lk.unlock();
      (*batch_)[i]();
      lk.lock();
      --in_flight_;
    }
    if (in_flight_ == 0) done_cv_.notify_one();
  }
}

void ThreadPool::run_batch(const std::vector<std::function<void()>>& tasks) {
  if (workers_.empty()) {
    for (const auto& t : tasks) t();
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  batch_ = &tasks;
  next_task_ = 0;
  in_flight_ = 0;
  work_cv_.notify_all();
  done_cv_.wait(lk, [this, &tasks] {
    return next_task_ >= tasks.size() && in_flight_ == 0;
  });
  batch_ = nullptr;
}

}  // namespace nti::mc
