// The repo's one thread pool.
//
// Both parallel subsystems — the Monte-Carlo replication runner and the
// sharded event engine — have the same shape: a batch of independent tasks,
// a barrier, then a single-threaded deterministic reduction.  This pool is
// that shape and nothing more: run_batch() claims tasks by index off an
// atomic counter and returns only when every task has finished, so the
// caller's serial phase needs no synchronization of its own (the join /
// condition-variable handoff provides the happens-before edge).
//
// Determinism contract: the pool never influences any output byte.  Task
// index assignment is the only scheduling decision, and every caller indexes
// its results by task, not by worker or completion order.  Consequently the
// concurrency primitives of the whole tree live in this one file — enforced
// by nti-lint's `shard` rule (docs/STATIC_ANALYSIS.md): std::thread /
// std::mutex / std::atomic anywhere else in src/ need an explicit sanction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nti::mc {

/// Resolve a requested worker count: 0 means "ask the hardware", and the
/// result is clamped to at least 1.  (The NTI_MC_THREADS env override is
/// applied by mc::apply_env / the sharded cluster before calling this.)
std::size_t resolve_threads(std::size_t requested);

/// Read a non-negative integer from the environment; unset, empty, or
/// malformed values yield `fallback`.  Shared by the Monte-Carlo runner
/// (NTI_MC_REPLICAS / NTI_MC_THREADS) and the sharded cluster — both use it
/// strictly for worker sizing, which never changes any output byte.
std::size_t env_size(const char* name, std::size_t fallback);

class ThreadPool {
 public:
  /// A pool with `threads` persistent workers.  threads <= 1 starts no
  /// workers at all: run_batch() then executes inline on the caller, which
  /// keeps single-threaded runs trivially deterministic and debuggable.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threads() const { return workers_.empty() ? 1 : workers_.size(); }

  /// Run every task to completion and return (barrier).  Tasks are claimed
  /// in index order; a task may not call run_batch() on the same pool.
  void run_batch(const std::vector<std::function<void()>>& tasks);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for a batch
  std::condition_variable done_cv_;   ///< caller waits for completion
  const std::vector<std::function<void()>>* batch_ = nullptr;
  std::size_t next_task_ = 0;  ///< next unclaimed index in batch_
  std::size_t in_flight_ = 0;  ///< claimed but not yet finished
  bool stop_ = false;
};

}  // namespace nti::mc
