// The 16-node prototype (paper Sec. 4): "four MVME-162 with four NTIs
// each", the system on which the authors planned their thorough
// evaluation.  This example runs it for two simulated minutes with two
// GPS receivers and prints the evaluation a 1998 lab notebook would hold:
// the precision distribution (SNU-snapshot histogram), worst-case
// accuracy, and the per-node clock states at the end.
#include <cstdio>

#include "nti_api.hpp"

int main() {
  using namespace nti;

  cluster::ClusterConfig cfg;
  cfg.num_nodes = 16;
  cfg.seed = 1998;
  cfg.sync.fault_tolerance = 2;
  cfg.gps_nodes = {0, 4, 8};  // one receiver per carrier board, minus one
  cfg.background_load = 0.15; // some KI/NI traffic alongside

  cluster::Cluster cl(cfg);
  cl.start();
  std::printf("running 16 nodes for 120 simulated seconds...\n");
  cl.run(Duration::sec(120), Duration::sec(20), Duration::ms(100));

  Histogram hist(0.0, 3.0, 12);  // precision in us
  // Re-probe for the histogram over the final 30 s.
  for (int i = 0; i < 300; ++i) {
    cl.engine().run_until(cl.engine().now() + Duration::ms(100));
    hist.add(cl.probe().precision.to_us_f());
  }

  std::printf("\nprecision histogram over the final 30 s (us):\n%s\n",
              hist.ascii(40).c_str());
  std::printf("precision: p50 %-12s p99 %-12s max %s\n",
              cl.precision_samples().percentile_duration(50).str().c_str(),
              cl.precision_samples().percentile_duration(99).str().c_str(),
              cl.precision_samples().max_duration().str().c_str());
  std::printf("worst |C-UTC|: %s   mean alpha: %s   violations: %llu\n",
              cl.accuracy_samples().max_duration().str().c_str(),
              cl.alpha_samples().mean_duration().str().c_str(),
              static_cast<unsigned long long>(cl.containment_violations()));

  std::printf("\nper-node state at t = %s:\n", cl.engine().now().str().c_str());
  const Duration truth = cl.engine().now() - SimTime::epoch();
  for (int i = 0; i < cl.size(); ++i) {
    const auto iv = cl.sync(i).current_interval(cl.engine().now());
    std::printf("  node %2d%s  C-UTC = %-12s alpha = [-%s, +%s]\n", i,
                cl.node(i).has_gps() ? " (GPS)" : "      ",
                (cl.node(i).true_clock(cl.engine().now()) - truth).str().c_str(),
                iv.alpha_minus().str().c_str(), iv.alpha_plus().str().c_str());
  }

  const bool ok = cl.precision_samples().max_duration() < Duration::us(5) &&
                  cl.containment_violations() == 0;
  std::printf("\n%s\n", ok ? "PASS: 1 us-range precision sustained."
                           : "DEVIATION: see numbers above.");
  return ok ? 0 : 1;
}
