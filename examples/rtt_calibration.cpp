// Round-trip delay calibration (paper Sec. 2: the 1 us goal "makes it
// inevitable to employ an accurate round-trip-based transmission delay
// measurement").
//
// The interval algorithm's delay-compensation bounds [delay_min,
// delay_max] are not magic numbers: they are measured.  This example runs
// the four-stamp RTT handshake a few hundred times between two NTI nodes
// and derives the bounds, then shows they match the library defaults in
// csa::SyncConfig (which were produced exactly this way) and the ground
// truth the simulator knows.
#include <cstdio>

#include "nti_api.hpp"

using namespace nti;

namespace {

node::NodeConfig make_cfg(int id) {
  node::NodeConfig c;
  c.node_id = id;
  c.osc = osc::OscConfig::tcxo();
  c.osc.offset_ppm = id == 0 ? 0.7 : -1.1;  // realistic skewed clocks
  return c;
}

}  // namespace

int main() {
  sim::Engine engine;
  RngStream root(20240705);
  net::Medium medium(engine, net::MediumConfig{}, root.fork("lan"));
  node::NodeCard a(engine, medium, make_cfg(0), root);
  node::NodeCard b(engine, medium, make_cfg(1), root);
  csa::RttMeasurer rtt_a(a);
  csa::RttMeasurer rtt_b(b);

  SampleSet offsets;
  rtt_a.on_result = [&](const csa::RttResult& r) {
    offsets.add(r.offset_estimate);
  };

  // Ping-pong: fire the next probe as soon as the previous one resolves.
  const int kProbes = 500;
  for (int i = 0; i < kProbes; ++i) {
    engine.schedule_at(SimTime::epoch() + Duration::ms(3) * i,
                       [&rtt_a] { rtt_a.send_probe(); });
  }
  engine.run();

  SampleSet& delays = rtt_a.delays();
  std::printf("RTT calibration over %zu handshakes:\n", delays.count());
  std::printf("  delay estimate: min %-12s p50 %-12s max %s\n",
              Duration::ps(static_cast<std::int64_t>(delays.min())).str().c_str(),
              delays.percentile_duration(50).str().c_str(),
              delays.max_duration().str().c_str());
  std::printf("  NTP-style offset estimate (b vs a): p50 %s\n",
              offsets.percentile_duration(50).str().c_str());

  // Derive bounds with a small guard band, the way the driver would.
  const Duration guard = Duration::ns(200);
  const Duration lo = Duration::ps(static_cast<std::int64_t>(delays.min())) - guard;
  const Duration hi = delays.max_duration() + guard;
  const csa::SyncConfig defaults;
  std::printf("\n  derived compensation bounds : [%s, %s]\n", lo.str().c_str(),
              hi.str().c_str());
  std::printf("  library defaults            : [%s, %s]\n",
              defaults.delay_min.str().c_str(), defaults.delay_max.str().c_str());

  const bool consistent =
      lo >= defaults.delay_min - Duration::us(1) && hi <= defaults.delay_max + Duration::us(1);
  std::printf("  defaults consistent with measurement: %s\n",
              consistent ? "yes" : "NO");
  return (delays.count() > 400 && consistent) ? 0 : 1;
}
