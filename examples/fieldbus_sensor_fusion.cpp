// Distributed sensor fusion on a fieldbus -- the motivating use case of the
// paper's introduction ("relating sensor data gathered at different nodes").
//
// Four nodes observe the same physical event (a pulse on their APU inputs
// at slightly different cable delays).  Without synchronized clocks the
// timestamps are incomparable; with the NTI running, every node can place
// the event on a common UTC axis within its accuracy interval, and the
// fused event time is the intersection of the per-node intervals.
#include <cstdio>
#include <vector>

#include "nti_api.hpp"

int main() {
  using namespace nti;

  cluster::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.seed = 7;
  cfg.sync.fault_tolerance = 1;
  // Two GPS receivers anchor the cluster to UTC, which shrinks every
  // node's accuracy interval to the few-us level -- and with it the fused
  // event interval below.
  cfg.gps_nodes = {0, 1};
  cluster::Cluster cl(cfg);
  cl.start();

  // Let the clocks converge first.
  cl.engine().run_until(SimTime::epoch() + Duration::sec(5));

  // A physical event at t = 5.5 s, seen by each node's APU input 0 after
  // its sensor cable delay.
  const SimTime event_time = SimTime::epoch() + Duration::ms(5500);
  const Duration cable[4] = {Duration::ns(120), Duration::ns(350),
                             Duration::ns(80), Duration::ns(560)};
  for (int i = 0; i < 4; ++i) {
    const int node = i;
    cl.engine().schedule_at(event_time + cable[i], [&cl, node] {
      cl.node(node).chip().app_pulse(0, cl.engine().now());
    });
  }
  cl.engine().run_until(event_time + Duration::ms(1));

  std::printf("event observed (true UTC = %s after epoch):\n",
              (event_time - SimTime::epoch()).str().c_str());
  std::vector<interval::AccInterval> observations;
  for (int i = 0; i < 4; ++i) {
    const auto stamp = cl.node(i).chip().apu_stamp(0);
    const auto d = utcsu::decode_stamp(stamp.timestamp, stamp.macrostamp, stamp.alpha);
    if (!d.checksum_ok) continue;
    const interval::AccInterval iv(d.time(), d.acc_minus() + cable[i],
                                   d.acc_plus());
    observations.push_back(iv);
    std::printf("  node %d: C = %-14s alpha = [-%s, +%s]\n", i,
                d.time().str().c_str(), d.acc_minus().str().c_str(),
                d.acc_plus().str().c_str());
  }

  // Fuse: every correct observation contains the true event time, so the
  // Marzullo intersection pins it down tighter than any single sensor.
  const auto fused = interval::marzullo(observations, 0);
  if (!fused) {
    std::printf("observations inconsistent!\n");
    return 1;
  }
  const Duration truth = event_time - SimTime::epoch();
  std::printf("fused event interval: %s (width %s)\n", fused->str().c_str(),
              fused->length().str().c_str());
  std::printf("true event time contained: %s\n",
              fused->contains(truth) ? "yes" : "NO (ERROR)");
  return fused->contains(truth) ? 0 : 1;
}
