// WANs of LANs (paper footnote 2): two fieldbus segments joined by a
// gateway node whose UTCSU serves TWO communication coprocessors -- this
// is exactly why the ASIC provides six SSUs.
//
// LAN A: nodes 0..2 plus the gateway (node 3); nodes 0 and 1 carry GPS
// receivers (f + 1 anchored inputs, so the anchored edges survive the
// fault-tolerant trimming).
// LAN B: nodes 10..12, which never see LAN A traffic.  The gateway owns a
// second NTI decoding path on SSU 1 and a second COMCO attached to LAN B,
// and re-broadcasts its (UTC-anchored) interval there each round.  Time
// flows A -> gateway -> B entirely through hardware-stamped CSPs.
#include <cstdio>
#include <memory>
#include <vector>

#include "nti_api.hpp"

using namespace nti;

namespace {

node::NodeConfig make_cfg(int id, bool with_gps) {
  node::NodeConfig c;
  c.node_id = id;
  c.osc = osc::OscConfig::tcxo();
  c.osc.offset_ppm = (id % 5 - 2) * 0.8;  // deterministic spread
  if (with_gps) c.gps = gps::GpsConfig{};
  return c;
}

csa::SyncConfig sync_cfg(int f) {
  csa::SyncConfig s;
  s.fault_tolerance = f;
  return s;
}

}  // namespace

int main() {
  sim::Engine engine;
  RngStream root(31337);
  net::Medium lan_a(engine, net::MediumConfig{}, root.fork("lanA"));
  net::Medium lan_b(engine, net::MediumConfig{}, root.fork("lanB"));

  // LAN A members (gateway is id 3).
  std::vector<std::unique_ptr<node::NodeCard>> a_nodes;
  std::vector<std::unique_ptr<csa::SyncNode>> a_syncs;
  for (int i = 0; i < 4; ++i) {
    a_nodes.push_back(std::make_unique<node::NodeCard>(
        engine, lan_a, make_cfg(i, /*with_gps=*/i <= 1), root));
    a_syncs.push_back(
        std::make_unique<csa::SyncNode>(*a_nodes.back(), sync_cfg(1), 4));
  }

  // LAN B members.
  std::vector<std::unique_ptr<node::NodeCard>> b_nodes;
  std::vector<std::unique_ptr<csa::SyncNode>> b_syncs;
  for (int i = 10; i < 13; ++i) {
    b_nodes.push_back(std::make_unique<node::NodeCard>(
        engine, lan_b, make_cfg(i, false), root));
    // The B segment has only three members plus the gateway's bridged
    // interval; it runs with f = 0 and trusts its gateway (a segment that
    // needs Byzantine tolerance adds members or a second gateway).
    b_syncs.push_back(
        std::make_unique<csa::SyncNode>(*b_nodes.back(), sync_cfg(0), 4));
  }

  // Gateway second port: a second NTI decoding context on SSU 1 of the
  // SAME UTCSU, with its own COMCO on LAN B and its own driver.
  node::NodeCard& gw = *a_nodes[3];
  module::Nti nti_b(gw.chip(), module::CpldProgram{}, /*ssu_index=*/1);
  comco::Comco comco_b(engine, nti_b, lan_b, comco::ComcoConfig{},
                       root.fork("gw-comco"));
  node::Cpu cpu_b(engine, node::CpuConfig{}, root.fork("gw-cpu"));
  node::CiDriver driver_b(cpu_b, nti_b, comco_b, /*node_id=*/3);
  // The main driver owns the duty-timer/GPS interrupt demux; the second
  // port's driver must not race it for the shared ITU status bits.
  driver_b.demux_timers = false;

  // Start everything: advance past the scatter so clock states stay
  // non-negative, then scatter the cold-start values around "UTC now".
  engine.run_until(SimTime::epoch() + Duration::ms(1));
  const Duration alpha0 = Duration::us(501);
  RngStream scatter = root.fork("init");
  const Duration now0 = engine.now() - SimTime::epoch();
  for (auto& s : a_syncs) {
    s->start(now0 + scatter.uniform(-Duration::us(500), Duration::us(500)), alpha0);
  }
  for (auto& s : b_syncs) {
    s->start(now0 + scatter.uniform(-Duration::us(500), Duration::us(500)), alpha0);
  }

  // Bridge: whenever the gateway's round-send duty timer fires (timer 0),
  // also broadcast the gateway's current interval on LAN B.  The CSP gets
  // its time/accuracy inserted by the hardware on SSU 1 -- no software
  // timestamp error crosses the bridge.
  auto prev_duty = gw.driver().on_duty;
  gw.driver().on_duty = [&, prev_duty](int timer) {
    if (timer == 0) {
      csa::CspPayload p;
      p.kind = csa::CspKind::kSync;
      p.src = 3;
      p.round = static_cast<std::uint16_t>(a_syncs[3]->round());
      p.step = gw.chip().ltu().step().reg64();
      driver_b.send_csp(p.encode());
    }
    prev_duty(timer);
  };

  engine.run_until(SimTime::epoch() + Duration::sec(20));

  // Cross-LAN report.
  const SimTime t = engine.now();
  const Duration truth = t - SimTime::epoch();
  Duration lo = Duration::max(), hi = -Duration::max();
  std::printf("node   clock - UTC\n");
  auto report = [&](node::NodeCard& n) {
    const Duration c = n.true_clock(t);
    lo = std::min(lo, c);
    hi = std::max(hi, c);
    std::printf("%4d   %s\n", n.id(), (c - truth).str().c_str());
  };
  for (auto& n : a_nodes) report(*n);
  for (auto& n : b_nodes) report(*n);
  std::printf("\ncross-LAN precision after 20 s: %s\n", (hi - lo).str().c_str());
  std::printf("(both segments anchored to the GPS receivers on LAN A)\n");
  return (hi - lo) < Duration::us(10) ? 0 : 1;
}
