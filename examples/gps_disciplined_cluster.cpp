// External synchronization with clock validation: a 6-node cluster with
// two GPS receivers, compared healthy vs. failing (the [HS97] experience
// that motivated interval-based clock validation).
//
// Run A: both receivers healthy -- the cluster locks to UTC.
// Run B: the receivers develop a 2 ms offset failure between t = 20 s and
// t = 35 s.  Validation must reject every spiked fix inside the window and
// re-accept afterwards; the cluster coasts on internal synchronization in
// between and never violates its accuracy intervals.
#include <cstdio>

#include "nti_api.hpp"

int main() {
  using namespace nti;

  cluster::ClusterConfig cfg;
  cfg.num_nodes = 6;
  cfg.seed = 99;
  cfg.sync.fault_tolerance = 1;
  cfg.gps_nodes = {0, 1};
  cluster::Cluster cl(cfg);

  cluster::ClusterConfig cfg2 = cfg;
  cfg2.faults.add(fault::FaultSpec::gps_offset_spike(
      -1, Duration::ms(2), SimTime::epoch() + Duration::sec(20),
      SimTime::epoch() + Duration::sec(35)));

  // Run A: both receivers healthy.
  cl.start();
  cl.run(Duration::sec(40), Duration::sec(10), Duration::ms(200));
  std::printf("healthy receivers : worst |C-UTC| = %-12s precision = %s\n",
              cl.accuracy_samples().max_duration().str().c_str(),
              cl.precision_samples().max_duration().str().c_str());

  // Run B: receivers spike by 2 ms for 15 s; validation must reject them
  // during the window and re-accept afterwards.
  cluster::Cluster cl2(cfg2);
  int rejected_in_window = 0, offered_in_window = 0;
  cl2.sync(0).on_round = [&](const csa::RoundReport& r) {
    const double t = cl2.engine().now().to_sec_f();
    if (t > 21 && t < 35 && r.gps_offered) {
      ++offered_in_window;
      if (!r.gps_accepted) ++rejected_in_window;
    }
  };
  cl2.start();
  cl2.run(Duration::sec(40), Duration::sec(10), Duration::ms(200));
  std::printf("faulty receivers  : worst |C-UTC| = %-12s precision = %s\n",
              cl2.accuracy_samples().max_duration().str().c_str(),
              cl2.precision_samples().max_duration().str().c_str());
  std::printf("validation verdict: %d/%d spiked fixes rejected\n",
              rejected_in_window, offered_in_window);
  std::printf("containment violations: %llu + %llu (must be 0)\n",
              static_cast<unsigned long long>(cl.containment_violations()),
              static_cast<unsigned long long>(cl2.containment_violations()));

  const bool ok = rejected_in_window == offered_in_window &&
                  cl.containment_violations() == 0 &&
                  cl2.containment_violations() == 0;
  return ok ? 0 : 1;
}
