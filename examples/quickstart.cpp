// Quickstart: two nodes with NTI modules synchronize over Ethernet.
//
// Build & run:   ./build/examples/quickstart
//
// This is the paper's Sec. 4 two-node experiment in ~40 lines: create a
// cluster, start the interval-based synchronization, and watch precision
// converge into the 1 us range.
#include <cstdio>

#include "nti_api.hpp"

int main() {
  using namespace nti;

  cluster::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.seed = 2024;
  cfg.initial_offset_spread = Duration::us(400);  // cold-start scatter
  cfg.osc_offset_spread_ppm = 2.0;                // TCXO-grade oscillators

  cluster::Cluster cl(cfg);
  cl.start();

  std::printf("round  precision      worst |C-UTC|   mean alpha     correction@0\n");
  cl.sync(0).on_round = [&](const csa::RoundReport& r) {
    const auto p = cl.probe();
    std::printf("%5u  %-13s  %-13s  %-13s  %s\n", r.round,
                p.precision.str().c_str(), p.worst_accuracy.str().c_str(),
                p.mean_alpha.str().c_str(), r.correction.str().c_str());
  };

  cl.engine().run_until(SimTime::epoch() + Duration::sec(15));

  const auto final_probe = cl.probe();
  std::printf("\nafter 15 s: precision = %s (paper target: ~1 us range)\n",
              final_probe.precision.str().c_str());
  std::printf("containment violations: %llu (must be 0)\n",
              static_cast<unsigned long long>(cl.containment_violations()));
  return final_probe.precision < Duration::us(5) ? 0 : 1;
}
