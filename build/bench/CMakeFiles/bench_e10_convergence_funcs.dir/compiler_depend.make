# Empty compiler generated dependencies file for bench_e10_convergence_funcs.
# This may be replaced when dependencies are built.
