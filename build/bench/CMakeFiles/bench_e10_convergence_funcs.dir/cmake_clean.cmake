file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_convergence_funcs.dir/bench_e10_convergence_funcs.cpp.o"
  "CMakeFiles/bench_e10_convergence_funcs.dir/bench_e10_convergence_funcs.cpp.o.d"
  "bench_e10_convergence_funcs"
  "bench_e10_convergence_funcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_convergence_funcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
