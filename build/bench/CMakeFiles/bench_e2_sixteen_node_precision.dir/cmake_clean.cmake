file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_sixteen_node_precision.dir/bench_e2_sixteen_node_precision.cpp.o"
  "CMakeFiles/bench_e2_sixteen_node_precision.dir/bench_e2_sixteen_node_precision.cpp.o.d"
  "bench_e2_sixteen_node_precision"
  "bench_e2_sixteen_node_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_sixteen_node_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
