# Empty compiler generated dependencies file for bench_e2_sixteen_node_precision.
# This may be replaced when dependencies are built.
