file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_rate_sync.dir/bench_e7_rate_sync.cpp.o"
  "CMakeFiles/bench_e7_rate_sync.dir/bench_e7_rate_sync.cpp.o.d"
  "bench_e7_rate_sync"
  "bench_e7_rate_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_rate_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
