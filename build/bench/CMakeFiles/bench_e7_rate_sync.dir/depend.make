# Empty dependencies file for bench_e7_rate_sync.
# This may be replaced when dependencies are built.
