# Empty compiler generated dependencies file for bench_e8_lower_bound.
# This may be replaced when dependencies are built.
