# Empty compiler generated dependencies file for bench_e11_medium_access.
# This may be replaced when dependencies are built.
