file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_medium_access.dir/bench_e11_medium_access.cpp.o"
  "CMakeFiles/bench_e11_medium_access.dir/bench_e11_medium_access.cpp.o.d"
  "bench_e11_medium_access"
  "bench_e11_medium_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_medium_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
