# Empty dependencies file for bench_e12_trigger_placement.
# This may be replaced when dependencies are built.
