file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_trigger_placement.dir/bench_e12_trigger_placement.cpp.o"
  "CMakeFiles/bench_e12_trigger_placement.dir/bench_e12_trigger_placement.cpp.o.d"
  "bench_e12_trigger_placement"
  "bench_e12_trigger_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_trigger_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
