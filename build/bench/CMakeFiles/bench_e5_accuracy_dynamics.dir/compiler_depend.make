# Empty compiler generated dependencies file for bench_e5_accuracy_dynamics.
# This may be replaced when dependencies are built.
