file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_accuracy_dynamics.dir/bench_e5_accuracy_dynamics.cpp.o"
  "CMakeFiles/bench_e5_accuracy_dynamics.dir/bench_e5_accuracy_dynamics.cpp.o.d"
  "bench_e5_accuracy_dynamics"
  "bench_e5_accuracy_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_accuracy_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
