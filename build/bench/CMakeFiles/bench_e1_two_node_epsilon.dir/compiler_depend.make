# Empty compiler generated dependencies file for bench_e1_two_node_epsilon.
# This may be replaced when dependencies are built.
