file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_two_node_epsilon.dir/bench_e1_two_node_epsilon.cpp.o"
  "CMakeFiles/bench_e1_two_node_epsilon.dir/bench_e1_two_node_epsilon.cpp.o.d"
  "bench_e1_two_node_epsilon"
  "bench_e1_two_node_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_two_node_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
