file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_granularity_sweep.dir/bench_e3_granularity_sweep.cpp.o"
  "CMakeFiles/bench_e3_granularity_sweep.dir/bench_e3_granularity_sweep.cpp.o.d"
  "bench_e3_granularity_sweep"
  "bench_e3_granularity_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_granularity_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
