# Empty compiler generated dependencies file for bench_e3_granularity_sweep.
# This may be replaced when dependencies are built.
