# Empty compiler generated dependencies file for bench_e4_timestamp_methods.
# This may be replaced when dependencies are built.
