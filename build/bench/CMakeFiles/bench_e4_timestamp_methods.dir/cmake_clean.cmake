file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_timestamp_methods.dir/bench_e4_timestamp_methods.cpp.o"
  "CMakeFiles/bench_e4_timestamp_methods.dir/bench_e4_timestamp_methods.cpp.o.d"
  "bench_e4_timestamp_methods"
  "bench_e4_timestamp_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_timestamp_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
