
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e4_timestamp_methods.cpp" "bench/CMakeFiles/bench_e4_timestamp_methods.dir/bench_e4_timestamp_methods.cpp.o" "gcc" "bench/CMakeFiles/bench_e4_timestamp_methods.dir/bench_e4_timestamp_methods.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/nti_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/csa/CMakeFiles/nti_csa.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/nti_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/nti_node.dir/DependInfo.cmake"
  "/root/repo/build/src/comco/CMakeFiles/nti_comco.dir/DependInfo.cmake"
  "/root/repo/build/src/nti/CMakeFiles/nti_module.dir/DependInfo.cmake"
  "/root/repo/build/src/utcsu/CMakeFiles/nti_utcsu.dir/DependInfo.cmake"
  "/root/repo/build/src/osc/CMakeFiles/nti_osc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nti_net.dir/DependInfo.cmake"
  "/root/repo/build/src/gps/CMakeFiles/nti_gps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nti_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nti_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
