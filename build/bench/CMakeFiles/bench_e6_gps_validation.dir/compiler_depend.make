# Empty compiler generated dependencies file for bench_e6_gps_validation.
# This may be replaced when dependencies are built.
