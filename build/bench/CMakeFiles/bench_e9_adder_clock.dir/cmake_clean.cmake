file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_adder_clock.dir/bench_e9_adder_clock.cpp.o"
  "CMakeFiles/bench_e9_adder_clock.dir/bench_e9_adder_clock.cpp.o.d"
  "bench_e9_adder_clock"
  "bench_e9_adder_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_adder_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
