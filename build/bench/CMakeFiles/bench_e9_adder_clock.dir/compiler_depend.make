# Empty compiler generated dependencies file for bench_e9_adder_clock.
# This may be replaced when dependencies are built.
