file(REMOVE_RECURSE
  "CMakeFiles/fieldbus_sensor_fusion.dir/fieldbus_sensor_fusion.cpp.o"
  "CMakeFiles/fieldbus_sensor_fusion.dir/fieldbus_sensor_fusion.cpp.o.d"
  "fieldbus_sensor_fusion"
  "fieldbus_sensor_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fieldbus_sensor_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
