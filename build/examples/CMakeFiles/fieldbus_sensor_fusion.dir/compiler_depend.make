# Empty compiler generated dependencies file for fieldbus_sensor_fusion.
# This may be replaced when dependencies are built.
