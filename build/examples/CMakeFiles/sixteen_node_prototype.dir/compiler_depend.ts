# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sixteen_node_prototype.
