file(REMOVE_RECURSE
  "CMakeFiles/sixteen_node_prototype.dir/sixteen_node_prototype.cpp.o"
  "CMakeFiles/sixteen_node_prototype.dir/sixteen_node_prototype.cpp.o.d"
  "sixteen_node_prototype"
  "sixteen_node_prototype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sixteen_node_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
