# Empty compiler generated dependencies file for sixteen_node_prototype.
# This may be replaced when dependencies are built.
