file(REMOVE_RECURSE
  "CMakeFiles/gps_disciplined_cluster.dir/gps_disciplined_cluster.cpp.o"
  "CMakeFiles/gps_disciplined_cluster.dir/gps_disciplined_cluster.cpp.o.d"
  "gps_disciplined_cluster"
  "gps_disciplined_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gps_disciplined_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
