# Empty compiler generated dependencies file for gps_disciplined_cluster.
# This may be replaced when dependencies are built.
