file(REMOVE_RECURSE
  "CMakeFiles/wan_of_lans.dir/wan_of_lans.cpp.o"
  "CMakeFiles/wan_of_lans.dir/wan_of_lans.cpp.o.d"
  "wan_of_lans"
  "wan_of_lans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_of_lans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
