# Empty compiler generated dependencies file for wan_of_lans.
# This may be replaced when dependencies are built.
