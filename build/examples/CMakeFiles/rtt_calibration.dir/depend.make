# Empty dependencies file for rtt_calibration.
# This may be replaced when dependencies are built.
