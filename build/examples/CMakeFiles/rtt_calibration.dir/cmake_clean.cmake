file(REMOVE_RECURSE
  "CMakeFiles/rtt_calibration.dir/rtt_calibration.cpp.o"
  "CMakeFiles/rtt_calibration.dir/rtt_calibration.cpp.o.d"
  "rtt_calibration"
  "rtt_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtt_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
