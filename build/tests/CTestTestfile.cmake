# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_osc[1]_include.cmake")
include("/root/repo/build/tests/test_interval[1]_include.cmake")
include("/root/repo/build/tests/test_utcsu[1]_include.cmake")
include("/root/repo/build/tests/test_nti[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_comco[1]_include.cmake")
include("/root/repo/build/tests/test_gps[1]_include.cmake")
include("/root/repo/build/tests/test_node[1]_include.cmake")
include("/root/repo/build/tests/test_csa[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
