file(REMOVE_RECURSE
  "CMakeFiles/test_cluster.dir/cluster/cluster_unit_test.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/cluster_unit_test.cpp.o.d"
  "test_cluster"
  "test_cluster.pdb"
  "test_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
