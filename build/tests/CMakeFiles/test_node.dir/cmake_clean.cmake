file(REMOVE_RECURSE
  "CMakeFiles/test_node.dir/node/cpu_test.cpp.o"
  "CMakeFiles/test_node.dir/node/cpu_test.cpp.o.d"
  "CMakeFiles/test_node.dir/node/driver_test.cpp.o"
  "CMakeFiles/test_node.dir/node/driver_test.cpp.o.d"
  "CMakeFiles/test_node.dir/node/gateway_test.cpp.o"
  "CMakeFiles/test_node.dir/node/gateway_test.cpp.o.d"
  "test_node"
  "test_node.pdb"
  "test_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
