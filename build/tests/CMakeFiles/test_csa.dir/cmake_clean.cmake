file(REMOVE_RECURSE
  "CMakeFiles/test_csa.dir/csa/payload_test.cpp.o"
  "CMakeFiles/test_csa.dir/csa/payload_test.cpp.o.d"
  "CMakeFiles/test_csa.dir/csa/rtt_test.cpp.o"
  "CMakeFiles/test_csa.dir/csa/rtt_test.cpp.o.d"
  "CMakeFiles/test_csa.dir/csa/sync_test.cpp.o"
  "CMakeFiles/test_csa.dir/csa/sync_test.cpp.o.d"
  "test_csa"
  "test_csa.pdb"
  "test_csa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
