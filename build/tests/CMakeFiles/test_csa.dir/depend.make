# Empty dependencies file for test_csa.
# This may be replaced when dependencies are built.
