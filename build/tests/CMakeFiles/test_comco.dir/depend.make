# Empty dependencies file for test_comco.
# This may be replaced when dependencies are built.
