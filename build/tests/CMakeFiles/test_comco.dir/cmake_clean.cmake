file(REMOVE_RECURSE
  "CMakeFiles/test_comco.dir/comco/comco_test.cpp.o"
  "CMakeFiles/test_comco.dir/comco/comco_test.cpp.o.d"
  "test_comco"
  "test_comco.pdb"
  "test_comco[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
