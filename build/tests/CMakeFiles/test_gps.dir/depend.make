# Empty dependencies file for test_gps.
# This may be replaced when dependencies are built.
