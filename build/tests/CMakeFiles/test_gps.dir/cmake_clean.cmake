file(REMOVE_RECURSE
  "CMakeFiles/test_gps.dir/gps/gps_test.cpp.o"
  "CMakeFiles/test_gps.dir/gps/gps_test.cpp.o.d"
  "test_gps"
  "test_gps.pdb"
  "test_gps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
