# Empty dependencies file for test_utcsu.
# This may be replaced when dependencies are built.
