file(REMOVE_RECURSE
  "CMakeFiles/test_utcsu.dir/utcsu/acu_test.cpp.o"
  "CMakeFiles/test_utcsu.dir/utcsu/acu_test.cpp.o.d"
  "CMakeFiles/test_utcsu.dir/utcsu/duty_timer_test.cpp.o"
  "CMakeFiles/test_utcsu.dir/utcsu/duty_timer_test.cpp.o.d"
  "CMakeFiles/test_utcsu.dir/utcsu/ltu_property_test.cpp.o"
  "CMakeFiles/test_utcsu.dir/utcsu/ltu_property_test.cpp.o.d"
  "CMakeFiles/test_utcsu.dir/utcsu/ltu_test.cpp.o"
  "CMakeFiles/test_utcsu.dir/utcsu/ltu_test.cpp.o.d"
  "CMakeFiles/test_utcsu.dir/utcsu/stamp_test.cpp.o"
  "CMakeFiles/test_utcsu.dir/utcsu/stamp_test.cpp.o.d"
  "CMakeFiles/test_utcsu.dir/utcsu/utcsu_test.cpp.o"
  "CMakeFiles/test_utcsu.dir/utcsu/utcsu_test.cpp.o.d"
  "test_utcsu"
  "test_utcsu.pdb"
  "test_utcsu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_utcsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
