# Empty compiler generated dependencies file for test_nti.
# This may be replaced when dependencies are built.
