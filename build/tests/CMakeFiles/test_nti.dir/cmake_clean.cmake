file(REMOVE_RECURSE
  "CMakeFiles/test_nti.dir/nti/nti_test.cpp.o"
  "CMakeFiles/test_nti.dir/nti/nti_test.cpp.o.d"
  "CMakeFiles/test_nti.dir/nti/sprom_test.cpp.o"
  "CMakeFiles/test_nti.dir/nti/sprom_test.cpp.o.d"
  "test_nti"
  "test_nti.pdb"
  "test_nti[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
