# Empty compiler generated dependencies file for test_osc.
# This may be replaced when dependencies are built.
