file(REMOVE_RECURSE
  "CMakeFiles/test_osc.dir/osc/oscillator_test.cpp.o"
  "CMakeFiles/test_osc.dir/osc/oscillator_test.cpp.o.d"
  "test_osc"
  "test_osc.pdb"
  "test_osc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_osc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
