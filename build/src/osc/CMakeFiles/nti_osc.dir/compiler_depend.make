# Empty compiler generated dependencies file for nti_osc.
# This may be replaced when dependencies are built.
