file(REMOVE_RECURSE
  "CMakeFiles/nti_osc.dir/oscillator.cpp.o"
  "CMakeFiles/nti_osc.dir/oscillator.cpp.o.d"
  "libnti_osc.a"
  "libnti_osc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nti_osc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
