file(REMOVE_RECURSE
  "libnti_osc.a"
)
