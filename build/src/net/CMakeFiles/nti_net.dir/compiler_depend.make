# Empty compiler generated dependencies file for nti_net.
# This may be replaced when dependencies are built.
