file(REMOVE_RECURSE
  "libnti_net.a"
)
