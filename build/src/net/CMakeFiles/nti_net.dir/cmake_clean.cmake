file(REMOVE_RECURSE
  "CMakeFiles/nti_net.dir/medium.cpp.o"
  "CMakeFiles/nti_net.dir/medium.cpp.o.d"
  "CMakeFiles/nti_net.dir/traffic.cpp.o"
  "CMakeFiles/nti_net.dir/traffic.cpp.o.d"
  "libnti_net.a"
  "libnti_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nti_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
