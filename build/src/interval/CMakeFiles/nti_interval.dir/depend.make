# Empty dependencies file for nti_interval.
# This may be replaced when dependencies are built.
