file(REMOVE_RECURSE
  "libnti_interval.a"
)
