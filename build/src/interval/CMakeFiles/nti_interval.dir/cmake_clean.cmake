file(REMOVE_RECURSE
  "CMakeFiles/nti_interval.dir/interval.cpp.o"
  "CMakeFiles/nti_interval.dir/interval.cpp.o.d"
  "libnti_interval.a"
  "libnti_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nti_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
