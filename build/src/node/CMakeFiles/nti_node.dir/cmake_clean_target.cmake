file(REMOVE_RECURSE
  "libnti_node.a"
)
