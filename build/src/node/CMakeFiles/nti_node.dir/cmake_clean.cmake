file(REMOVE_RECURSE
  "CMakeFiles/nti_node.dir/driver.cpp.o"
  "CMakeFiles/nti_node.dir/driver.cpp.o.d"
  "CMakeFiles/nti_node.dir/gateway.cpp.o"
  "CMakeFiles/nti_node.dir/gateway.cpp.o.d"
  "CMakeFiles/nti_node.dir/node_card.cpp.o"
  "CMakeFiles/nti_node.dir/node_card.cpp.o.d"
  "libnti_node.a"
  "libnti_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nti_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
