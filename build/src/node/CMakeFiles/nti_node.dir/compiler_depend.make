# Empty compiler generated dependencies file for nti_node.
# This may be replaced when dependencies are built.
