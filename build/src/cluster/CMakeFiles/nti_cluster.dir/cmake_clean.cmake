file(REMOVE_RECURSE
  "CMakeFiles/nti_cluster.dir/cluster.cpp.o"
  "CMakeFiles/nti_cluster.dir/cluster.cpp.o.d"
  "libnti_cluster.a"
  "libnti_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nti_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
