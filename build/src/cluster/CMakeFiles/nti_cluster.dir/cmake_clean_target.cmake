file(REMOVE_RECURSE
  "libnti_cluster.a"
)
