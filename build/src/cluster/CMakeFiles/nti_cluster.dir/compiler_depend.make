# Empty compiler generated dependencies file for nti_cluster.
# This may be replaced when dependencies are built.
