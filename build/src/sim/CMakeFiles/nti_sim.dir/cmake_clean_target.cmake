file(REMOVE_RECURSE
  "libnti_sim.a"
)
