file(REMOVE_RECURSE
  "CMakeFiles/nti_sim.dir/engine.cpp.o"
  "CMakeFiles/nti_sim.dir/engine.cpp.o.d"
  "libnti_sim.a"
  "libnti_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nti_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
