# Empty compiler generated dependencies file for nti_sim.
# This may be replaced when dependencies are built.
