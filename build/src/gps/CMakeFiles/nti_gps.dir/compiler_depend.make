# Empty compiler generated dependencies file for nti_gps.
# This may be replaced when dependencies are built.
