file(REMOVE_RECURSE
  "libnti_gps.a"
)
