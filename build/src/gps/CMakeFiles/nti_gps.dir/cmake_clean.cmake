file(REMOVE_RECURSE
  "CMakeFiles/nti_gps.dir/gps.cpp.o"
  "CMakeFiles/nti_gps.dir/gps.cpp.o.d"
  "libnti_gps.a"
  "libnti_gps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nti_gps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
