# Empty compiler generated dependencies file for nti_common.
# This may be replaced when dependencies are built.
