file(REMOVE_RECURSE
  "libnti_common.a"
)
