file(REMOVE_RECURSE
  "CMakeFiles/nti_common.dir/checksum.cpp.o"
  "CMakeFiles/nti_common.dir/checksum.cpp.o.d"
  "CMakeFiles/nti_common.dir/log.cpp.o"
  "CMakeFiles/nti_common.dir/log.cpp.o.d"
  "CMakeFiles/nti_common.dir/rng.cpp.o"
  "CMakeFiles/nti_common.dir/rng.cpp.o.d"
  "CMakeFiles/nti_common.dir/stats.cpp.o"
  "CMakeFiles/nti_common.dir/stats.cpp.o.d"
  "CMakeFiles/nti_common.dir/time_types.cpp.o"
  "CMakeFiles/nti_common.dir/time_types.cpp.o.d"
  "libnti_common.a"
  "libnti_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nti_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
