file(REMOVE_RECURSE
  "libnti_utcsu.a"
)
