file(REMOVE_RECURSE
  "CMakeFiles/nti_utcsu.dir/acu.cpp.o"
  "CMakeFiles/nti_utcsu.dir/acu.cpp.o.d"
  "CMakeFiles/nti_utcsu.dir/ltu.cpp.o"
  "CMakeFiles/nti_utcsu.dir/ltu.cpp.o.d"
  "CMakeFiles/nti_utcsu.dir/utcsu.cpp.o"
  "CMakeFiles/nti_utcsu.dir/utcsu.cpp.o.d"
  "libnti_utcsu.a"
  "libnti_utcsu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nti_utcsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
