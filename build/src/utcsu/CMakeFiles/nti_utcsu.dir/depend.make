# Empty dependencies file for nti_utcsu.
# This may be replaced when dependencies are built.
