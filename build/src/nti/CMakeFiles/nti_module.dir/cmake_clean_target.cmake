file(REMOVE_RECURSE
  "libnti_module.a"
)
