file(REMOVE_RECURSE
  "CMakeFiles/nti_module.dir/nti.cpp.o"
  "CMakeFiles/nti_module.dir/nti.cpp.o.d"
  "CMakeFiles/nti_module.dir/sprom.cpp.o"
  "CMakeFiles/nti_module.dir/sprom.cpp.o.d"
  "libnti_module.a"
  "libnti_module.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nti_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
