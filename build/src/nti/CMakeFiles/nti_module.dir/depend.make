# Empty dependencies file for nti_module.
# This may be replaced when dependencies are built.
