# Empty compiler generated dependencies file for nti_csa.
# This may be replaced when dependencies are built.
