file(REMOVE_RECURSE
  "libnti_csa.a"
)
