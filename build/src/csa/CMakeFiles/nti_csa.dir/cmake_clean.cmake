file(REMOVE_RECURSE
  "CMakeFiles/nti_csa.dir/rtt.cpp.o"
  "CMakeFiles/nti_csa.dir/rtt.cpp.o.d"
  "CMakeFiles/nti_csa.dir/sync.cpp.o"
  "CMakeFiles/nti_csa.dir/sync.cpp.o.d"
  "libnti_csa.a"
  "libnti_csa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nti_csa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
