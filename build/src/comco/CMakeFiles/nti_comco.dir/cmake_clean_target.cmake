file(REMOVE_RECURSE
  "libnti_comco.a"
)
