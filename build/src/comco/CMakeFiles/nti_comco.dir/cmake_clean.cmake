file(REMOVE_RECURSE
  "CMakeFiles/nti_comco.dir/comco.cpp.o"
  "CMakeFiles/nti_comco.dir/comco.cpp.o.d"
  "libnti_comco.a"
  "libnti_comco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nti_comco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
