# Empty dependencies file for nti_comco.
# This may be replaced when dependencies are built.
