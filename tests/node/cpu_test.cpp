#include "node/cpu.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "sim/engine.hpp"

namespace nti::node {
namespace {

TEST(Cpu, IsrLatencyWithinConfiguredBounds) {
  sim::Engine engine;
  CpuConfig cfg;
  Cpu cpu(engine, cfg, RngStream(3));
  for (int i = 0; i < 5000; ++i) {
    const Duration d = cpu.draw_isr_latency();
    EXPECT_GE(d, cfg.isr_base);
    EXPECT_LE(d, cfg.isr_base + cfg.isr_jitter + cfg.int_disabled_max);
  }
}

TEST(Cpu, DisabledSectionsHitAtConfiguredRate) {
  sim::Engine engine;
  CpuConfig cfg;
  cfg.int_disabled_prob = 0.25;
  Cpu cpu(engine, cfg, RngStream(4));
  int spikes = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (cpu.draw_isr_latency() > cfg.isr_base + cfg.isr_jitter) ++spikes;
  }
  // A spike is only *visible* when the extra draw exceeds the jitter; that
  // still happens for most of the 25%.
  EXPECT_NEAR(static_cast<double>(spikes) / n, 0.25, 0.07);
}

TEST(Cpu, RequestInterruptDispatchesAfterLatency) {
  sim::Engine engine;
  Cpu cpu(engine, CpuConfig{}, RngStream(5));
  SimTime fired = SimTime::never();
  std::uint8_t seen_vector = 0;
  cpu.isr = [&](std::uint8_t v) {
    fired = engine.now();
    seen_vector = v;
  };
  cpu.request_interrupt(0x42);
  engine.run();
  ASSERT_NE(fired, SimTime::never());
  EXPECT_EQ(seen_vector, 0x42);
  EXPECT_GE(fired - SimTime::epoch(), CpuConfig{}.isr_base);
}

TEST(Cpu, TaskLatencyLargerThanIsr) {
  sim::Engine engine;
  CpuConfig cfg;
  Cpu cpu(engine, cfg, RngStream(6));
  RunningStats isr, task;
  for (int i = 0; i < 2000; ++i) {
    isr.add(cpu.draw_isr_latency());
    task.add(cpu.draw_task_latency());
  }
  EXPECT_GT(task.mean(), isr.mean() * 3);
}

TEST(Cpu, DeferToTaskRunsLater) {
  sim::Engine engine;
  Cpu cpu(engine, CpuConfig{}, RngStream(7));
  SimTime ran = SimTime::never();
  cpu.defer_to_task([&] { ran = engine.now(); });
  engine.run();
  ASSERT_NE(ran, SimTime::never());
  EXPECT_GE(ran - SimTime::epoch(), CpuConfig{}.task_base);
}

}  // namespace
}  // namespace nti::node
