#include "node/gateway.hpp"

#include <gtest/gtest.h>

#include "csa/payload.hpp"
#include "sim/engine.hpp"

namespace nti::node {
namespace {

struct Fixture {
  sim::Engine engine;
  net::Medium lan_a{engine, net::MediumConfig{}, RngStream(1)};
  net::Medium lan_b{engine, net::MediumConfig{}, RngStream(2)};
  NodeCard gw{engine, lan_a, make_cfg(0), RngStream(10)};
  NodeCard peer_a{engine, lan_a, make_cfg(1), RngStream(11)};
  NodeCard peer_b{engine, lan_b, make_cfg(2), RngStream(12)};
  GatewayPort port{gw, lan_b, /*ssu_index=*/1, RngStream(13)};

  static NodeConfig make_cfg(int id) {
    NodeConfig c;
    c.node_id = id;
    c.osc = osc::OscConfig::ideal(10e6);
    return c;
  }
};

std::vector<std::uint8_t> csp_bytes() {
  csa::CspPayload p;
  p.kind = csa::CspKind::kSync;
  return p.encode();
}

TEST(Gateway, SecondPortUsesItsOwnSsu) {
  Fixture f;
  f.port.driver().send_csp(csp_bytes());
  f.engine.run();
  EXPECT_TRUE(f.gw.chip().ssu_tx(1).valid);   // bridged port -> SSU 1
  EXPECT_FALSE(f.gw.chip().ssu_tx(0).valid);  // primary port untouched
}

TEST(Gateway, BothSegmentsReachableFromOneChip) {
  Fixture f;
  int got_a = 0, got_b = 0;
  f.peer_a.driver().on_csp = [&](const RxCsp&) { ++got_a; };
  f.peer_b.driver().on_csp = [&](const RxCsp&) { ++got_b; };
  f.gw.driver().send_csp(csp_bytes());    // primary port -> LAN A
  f.port.driver().send_csp(csp_bytes());  // gateway port -> LAN B
  f.engine.run();
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(got_b, 1);
}

TEST(Gateway, StampsFromBothPortsShareOneClock) {
  // The whole point of the multi-SSU design: both ports' stamps come from
  // the same LTU, so time bridged across segments carries no inter-clock
  // error.
  Fixture f;
  RxCsp from_a, from_b;
  f.peer_a.driver().on_csp = [&](const RxCsp& rx) { from_a = rx; };
  f.peer_b.driver().on_csp = [&](const RxCsp& rx) { from_b = rx; };
  f.engine.schedule_at(SimTime::epoch() + Duration::ms(5), [&f] {
    f.gw.driver().send_csp(csp_bytes());
    f.port.driver().send_csp(csp_bytes());
  });
  f.engine.run();
  ASSERT_TRUE(from_a.tx_stamp.checksum_ok);
  ASSERT_TRUE(from_b.tx_stamp.checksum_ok);
  // Both transmissions left within the MAC/cmd jitter window; their tx
  // stamps (one clock) must agree to well under a frame time.
  EXPECT_LT((from_a.tx_stamp.time() - from_b.tx_stamp.time()).abs(),
            Duration::ms(1));
}

TEST(Gateway, ReceiveOnSecondPortLatchesOwnHeaderBase) {
  Fixture f;
  bool got = false;
  f.port.driver().on_csp = [&](const RxCsp& rx) {
    got = true;
    EXPECT_TRUE(rx.rx_stamp_valid);
  };
  f.peer_b.driver().send_csp(csp_bytes());
  f.engine.run();
  EXPECT_TRUE(got);
  EXPECT_TRUE(f.gw.chip().ssu_rx(1).valid || !got);  // stamp consumed via SSU1 path
}

TEST(Gateway, PrimaryDriverKeepsTimerDemux) {
  Fixture f;
  EXPECT_TRUE(f.gw.driver().demux_timers);
  EXPECT_FALSE(f.port.driver().demux_timers);
}

TEST(Gateway, RejectsSsuZero) {
  Fixture f;
  EXPECT_DEATH(GatewayPort(f.gw, f.lan_b, 0, RngStream(9)),
               "SSU 0 belongs to the primary port");
}

// ---------------------------------------------------------------------------
// TimeCapsule wire format

TimeCapsule sample_capsule() {
  TimeCapsule c;
  c.seq = 7;
  c.ref = Duration::ms(1234);
  c.alpha_minus = Duration::us(40);
  c.alpha_plus = Duration::us(55);
  c.hold = Duration::us(3);
  c.step = RateStep::raw(0x123456789abcdef0);
  return c;
}

TEST(TimeCapsule, EncodeDecodeRoundTrip) {
  const TimeCapsule c = sample_capsule();
  const auto back = TimeCapsule::decode(c.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, c.seq);
  EXPECT_EQ(back->ref, c.ref);
  EXPECT_EQ(back->alpha_minus, c.alpha_minus);
  EXPECT_EQ(back->alpha_plus, c.alpha_plus);
  EXPECT_EQ(back->hold, c.hold);
  EXPECT_EQ(back->step.reg64(), c.step.reg64());
}

TEST(TimeCapsule, EverySingleBitFlipIsDetected) {
  const TimeCapsule::Wire wire = sample_capsule().encode();
  for (std::size_t bit = 0; bit < TimeCapsule::kWireBytes * 8; ++bit) {
    TimeCapsule::Wire flipped = wire;
    flipped.bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(TimeCapsule::decode(flipped).has_value())
        << "bit " << bit << " flip slipped through the CRC";
  }
}

// ---------------------------------------------------------------------------
// GatewayGuard degradation state machine

GuardConfig guard_cfg() {
  GuardConfig g;
  g.rho_ppm = 10.0;
  g.granularity = Duration::ns(60);
  g.alpha_ceiling = Duration::us(200);
  g.stale_timeout = Duration::ms(50);
  g.rejoin_rounds = 2;
  return g;
}

TimeCapsule capsule_at(std::uint64_t seq, Duration ref) {
  TimeCapsule c;
  c.seq = seq;
  c.ref = ref;
  c.alpha_minus = Duration::us(20);
  c.alpha_plus = Duration::us(20);
  c.hold = Duration::zero();
  c.step = RateStep::raw(0);
  return c;
}

TEST(GatewayGuard, AcceptFoldsHoldIntoRefAndBound) {
  GatewayGuard guard(guard_cfg());
  TimeCapsule c = capsule_at(1, Duration::ms(100));
  c.hold = Duration::ms(10);
  const auto v = guard.on_capsule(c, /*local_clock=*/Duration::ms(100));
  ASSERT_TRUE(v.accepted);
  EXPECT_EQ(v.offer.ref, Duration::ms(110));  // ref advanced by the hold
  // Bound deteriorated by rho (10 ppm over 10 ms = 100 ns) + granularity,
  // then AlphaUnits-quantized (round-up): never below the analytic margin.
  EXPECT_GE(v.offer.alpha_minus, Duration::us(20) + Duration::ns(160));
  EXPECT_LE(v.offer.alpha_minus, Duration::us(21));
  EXPECT_EQ(guard.state(), GatewayState::kSynchronized);
}

TEST(GatewayGuard, RejectsDuplicateSeqAndStaleHold) {
  GatewayGuard guard(guard_cfg());
  EXPECT_TRUE(guard.on_capsule(capsule_at(3, Duration::ms(1)), Duration::ms(1))
                  .accepted);
  // Duplicate / out-of-order sequence number.
  const auto dup = guard.on_capsule(capsule_at(3, Duration::ms(2)), Duration::ms(2));
  EXPECT_FALSE(dup.accepted);
  EXPECT_EQ(dup.reason, obs::DiscardReason::kCapsuleStale);
  // Held past the staleness cut.
  TimeCapsule old = capsule_at(4, Duration::ms(3));
  old.hold = Duration::ms(60);  // > 50 ms timeout
  EXPECT_FALSE(guard.on_capsule(old, Duration::ms(3)).accepted);
  EXPECT_EQ(guard.last_seq(), 3u);
}

TEST(GatewayGuard, HoldoverDeterioratesAtRhoPerElapsedTick) {
  GatewayGuard guard(guard_cfg());
  ASSERT_TRUE(
      guard.on_capsule(capsule_at(1, Duration::ms(500)), Duration::ms(500))
          .accepted);
  // The accept answers the current round; the next check is the first miss:
  // 100 ms of local elapsed time at 10 ppm = 1 us of deterioration.
  guard.on_round_check(Duration::ms(550));
  ASSERT_EQ(guard.state(), GatewayState::kSynchronized);
  const auto rc = guard.on_round_check(Duration::ms(600));
  EXPECT_EQ(guard.state(), GatewayState::kHoldover);
  ASSERT_TRUE(rc.offer_valid);
  EXPECT_EQ(rc.offer.ref, Duration::ms(600));  // freewheeled with local clock
  const Duration analytic = Duration::us(20) + Duration::us(1);
  EXPECT_GE(rc.offer.alpha_minus, analytic);
  // Quantization + the accept-time margin stay under one ACU unit + slack.
  EXPECT_LE(rc.offer.alpha_minus, analytic + Duration::us(1));
  EXPECT_EQ(guard.holdover_rounds(), 1u);
  EXPECT_GE(guard.peak_holdover_alpha(), analytic);
}

TEST(GatewayGuard, FreeRunningPastCeilingAndNoOffer) {
  GatewayGuard guard(guard_cfg());
  ASSERT_TRUE(guard.on_capsule(capsule_at(1, Duration::zero()), Duration::zero())
                  .accepted);
  guard.on_round_check(Duration::ms(100));  // answered by the accept
  // 21 s at 10 ppm = 210 us of deterioration: past the 200 us ceiling
  // (which sits on top of the 20 us base).
  const auto rc = guard.on_round_check(Duration::sec(21));
  EXPECT_EQ(guard.state(), GatewayState::kFreeRunning);
  EXPECT_FALSE(rc.offer_valid);
  EXPECT_TRUE(rc.accuracy_broken_now);
  EXPECT_EQ(guard.accuracy_broken(), 1u);
  // Still broken on the next check, but the transition fired only once.
  const auto rc2 = guard.on_round_check(Duration::sec(22));
  EXPECT_FALSE(rc2.offer_valid);
  EXPECT_FALSE(rc2.accuracy_broken_now);
  EXPECT_EQ(guard.accuracy_broken(), 1u);
}

TEST(GatewayGuard, RejoinNeedsConsecutiveAccepts) {
  GatewayGuard guard(guard_cfg());
  ASSERT_TRUE(guard.on_capsule(capsule_at(1, Duration::zero()), Duration::zero())
                  .accepted);
  guard.on_round_check(Duration::ms(50));  // answered by the accept
  guard.on_round_check(Duration::ms(100));
  ASSERT_EQ(guard.state(), GatewayState::kHoldover);
  // First accept after the outage: REJOINING (rejoin_rounds = 2).
  EXPECT_TRUE(
      guard.on_capsule(capsule_at(2, Duration::ms(200)), Duration::ms(200))
          .accepted);
  EXPECT_EQ(guard.state(), GatewayState::kRejoining);
  // A missed round resets the streak back to HOLDOVER...
  guard.on_round_check(Duration::ms(300));
  guard.on_round_check(Duration::ms(400));
  EXPECT_EQ(guard.state(), GatewayState::kHoldover);
  // ...and two consecutive accepts complete the rejoin.
  EXPECT_TRUE(
      guard.on_capsule(capsule_at(3, Duration::ms(500)), Duration::ms(500))
          .accepted);
  guard.on_round_check(Duration::ms(500));  // answered: fresh, no holdover
  EXPECT_EQ(guard.state(), GatewayState::kRejoining);
  const auto v = guard.on_capsule(capsule_at(4, Duration::ms(600)), Duration::ms(600));
  EXPECT_EQ(guard.state(), GatewayState::kSynchronized);
  EXPECT_EQ(v.to, GatewayState::kSynchronized);
}

TEST(GatewayGuard, StateNamesAreStable) {
  EXPECT_STREQ(to_string(GatewayState::kSynchronized), "synchronized");
  EXPECT_STREQ(to_string(GatewayState::kHoldover), "holdover");
  EXPECT_STREQ(to_string(GatewayState::kFreeRunning), "free_running");
  EXPECT_STREQ(to_string(GatewayState::kRejoining), "rejoining");
}

}  // namespace
}  // namespace nti::node
