#include "node/gateway.hpp"

#include <gtest/gtest.h>

#include "csa/payload.hpp"
#include "sim/engine.hpp"

namespace nti::node {
namespace {

struct Fixture {
  sim::Engine engine;
  net::Medium lan_a{engine, net::MediumConfig{}, RngStream(1)};
  net::Medium lan_b{engine, net::MediumConfig{}, RngStream(2)};
  NodeCard gw{engine, lan_a, make_cfg(0), RngStream(10)};
  NodeCard peer_a{engine, lan_a, make_cfg(1), RngStream(11)};
  NodeCard peer_b{engine, lan_b, make_cfg(2), RngStream(12)};
  GatewayPort port{gw, lan_b, /*ssu_index=*/1, RngStream(13)};

  static NodeConfig make_cfg(int id) {
    NodeConfig c;
    c.node_id = id;
    c.osc = osc::OscConfig::ideal(10e6);
    return c;
  }
};

std::vector<std::uint8_t> csp_bytes() {
  csa::CspPayload p;
  p.kind = csa::CspKind::kSync;
  return p.encode();
}

TEST(Gateway, SecondPortUsesItsOwnSsu) {
  Fixture f;
  f.port.driver().send_csp(csp_bytes());
  f.engine.run();
  EXPECT_TRUE(f.gw.chip().ssu_tx(1).valid);   // bridged port -> SSU 1
  EXPECT_FALSE(f.gw.chip().ssu_tx(0).valid);  // primary port untouched
}

TEST(Gateway, BothSegmentsReachableFromOneChip) {
  Fixture f;
  int got_a = 0, got_b = 0;
  f.peer_a.driver().on_csp = [&](const RxCsp&) { ++got_a; };
  f.peer_b.driver().on_csp = [&](const RxCsp&) { ++got_b; };
  f.gw.driver().send_csp(csp_bytes());    // primary port -> LAN A
  f.port.driver().send_csp(csp_bytes());  // gateway port -> LAN B
  f.engine.run();
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(got_b, 1);
}

TEST(Gateway, StampsFromBothPortsShareOneClock) {
  // The whole point of the multi-SSU design: both ports' stamps come from
  // the same LTU, so time bridged across segments carries no inter-clock
  // error.
  Fixture f;
  RxCsp from_a, from_b;
  f.peer_a.driver().on_csp = [&](const RxCsp& rx) { from_a = rx; };
  f.peer_b.driver().on_csp = [&](const RxCsp& rx) { from_b = rx; };
  f.engine.schedule_at(SimTime::epoch() + Duration::ms(5), [&f] {
    f.gw.driver().send_csp(csp_bytes());
    f.port.driver().send_csp(csp_bytes());
  });
  f.engine.run();
  ASSERT_TRUE(from_a.tx_stamp.checksum_ok);
  ASSERT_TRUE(from_b.tx_stamp.checksum_ok);
  // Both transmissions left within the MAC/cmd jitter window; their tx
  // stamps (one clock) must agree to well under a frame time.
  EXPECT_LT((from_a.tx_stamp.time() - from_b.tx_stamp.time()).abs(),
            Duration::ms(1));
}

TEST(Gateway, ReceiveOnSecondPortLatchesOwnHeaderBase) {
  Fixture f;
  bool got = false;
  f.port.driver().on_csp = [&](const RxCsp& rx) {
    got = true;
    EXPECT_TRUE(rx.rx_stamp_valid);
  };
  f.peer_b.driver().send_csp(csp_bytes());
  f.engine.run();
  EXPECT_TRUE(got);
  EXPECT_TRUE(f.gw.chip().ssu_rx(1).valid || !got);  // stamp consumed via SSU1 path
}

TEST(Gateway, PrimaryDriverKeepsTimerDemux) {
  Fixture f;
  EXPECT_TRUE(f.gw.driver().demux_timers);
  EXPECT_FALSE(f.port.driver().demux_timers);
}

TEST(Gateway, RejectsSsuZero) {
  Fixture f;
  EXPECT_DEATH(GatewayPort(f.gw, f.lan_b, 0, RngStream(9)),
               "SSU 0 belongs to the primary port");
}

}  // namespace
}  // namespace nti::node
