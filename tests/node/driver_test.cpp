#include "node/driver.hpp"

#include <gtest/gtest.h>

#include "node/node_card.hpp"
#include "sim/engine.hpp"

namespace nti::node {
namespace {

struct Fixture {
  sim::Engine engine;
  net::Medium medium{engine, net::MediumConfig{}, RngStream(11)};
  NodeCard a{engine, medium, make_cfg(0), RngStream(100)};
  NodeCard b{engine, medium, make_cfg(1), RngStream(200)};

  static NodeConfig make_cfg(int id) {
    NodeConfig c;
    c.node_id = id;
    c.osc = osc::OscConfig::ideal(10e6);
    return c;
  }
};

std::vector<std::uint8_t> payload_of(std::uint8_t fill, std::size_t n = 40) {
  return std::vector<std::uint8_t>(n, fill);
}

TEST(Driver, CspDeliveredWithValidStamps) {
  Fixture f;
  RxCsp got;
  bool received = false;
  f.b.driver().on_csp = [&](const RxCsp& rx) {
    got = rx;
    received = true;
  };
  const auto p = payload_of(0x5A);
  f.a.driver().send_csp(p);
  f.engine.run();
  ASSERT_TRUE(received);
  EXPECT_EQ(got.src_node, 0);
  EXPECT_EQ(got.payload, p);
  EXPECT_TRUE(got.rx_stamp_valid);
  EXPECT_TRUE(got.tx_stamp.checksum_ok);
  EXPECT_TRUE(got.rx_stamp.checksum_ok);
  EXPECT_EQ(f.a.driver().stats().csp_sent, 1u);
  EXPECT_EQ(f.b.driver().stats().csp_received, 1u);
}

TEST(Driver, HardwareStampsAreTriggerAccurate) {
  // With ideal identical oscillators started together, both clocks equal
  // real time, so rx_stamp - tx_stamp must equal the true trigger gap to
  // within granularity + synchronizer error.
  Fixture f;
  RxCsp got;
  f.b.driver().on_csp = [&](const RxCsp& rx) { got = rx; };
  f.a.driver().send_csp(payload_of(1));
  f.engine.run();
  const Duration stamp_gap = got.rx_stamp.time() - got.tx_stamp.time();
  const Duration true_gap = f.b.comco().last_rx_trigger_time() -
                            f.a.comco().last_tx_trigger_time();
  EXPECT_LE((stamp_gap - true_gap).abs(), Duration::ns(500));
  EXPECT_GT(stamp_gap, Duration::zero());
}

TEST(Driver, SoftwareClockReadingsOrdered) {
  Fixture f;
  RxCsp got;
  f.b.driver().on_csp = [&](const RxCsp& rx) { got = rx; };
  f.a.driver().send_csp(payload_of(2));
  f.engine.run();
  // ISR reading precedes task reading, both after the hardware rx stamp.
  EXPECT_GT(got.rx_clock_isr, got.rx_stamp.time());
  EXPECT_GT(got.rx_clock_task, got.rx_clock_isr);
}

TEST(Driver, NonCspFramesDiscardedButCounted) {
  Fixture f;
  int got = 0;
  f.b.driver().on_csp = [&](const RxCsp&) { ++got; };
  f.a.driver().send_data(0x0800, 128);  // NI (IP) frame
  f.engine.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(f.b.driver().stats().non_csp_received, 1u);
  // Footnote 4: the frame still fired RECEIVE; the ISR must have consumed
  // the stamp so the SSU is ready for the next packet (no stale valid bit).
  const SimTime now = f.engine.now();
  const auto status = f.b.nti().cpu_read32(
      now, module::kCpuUtcsuBase + utcsu::kRegSsuBase + utcsu::kSsuStatus);
  EXPECT_FALSE(status & utcsu::kSsuStatusRxValid);
}

TEST(Driver, BackToBackCspsBothDelivered) {
  Fixture f;
  int got = 0;
  int with_stamp = 0;
  f.b.driver().on_csp = [&](const RxCsp& rx) {
    ++got;
    if (rx.rx_stamp_valid) ++with_stamp;
  };
  for (int i = 0; i < 10; ++i) f.a.driver().send_csp(payload_of(static_cast<std::uint8_t>(i)));
  f.engine.run();
  EXPECT_EQ(got, 10);
  // Stamps may occasionally be lost (SSU overrun, or an ISR delayed past
  // packet completion by an interrupts-disabled section); most survive.
  EXPECT_GE(with_stamp, 7);
  EXPECT_LE(f.b.driver().stats().stamps_lost_overrun,
            static_cast<std::uint64_t>(10 - with_stamp));
}

TEST(Driver, ReadClockMatchesChip) {
  Fixture f;
  f.engine.run_until(SimTime::epoch() + Duration::ms(37));
  const Duration via_driver = f.a.driver().read_clock(f.engine.now());
  const Duration direct = f.a.true_clock(f.engine.now());
  EXPECT_LE((via_driver - direct).abs(), Duration::ns(61));  // granularity
}

TEST(Driver, DutyCallbackFires) {
  Fixture f;
  int fired_timer = -1;
  f.a.driver().on_duty = [&](int t) { fired_timer = t; };
  f.a.driver().enable_int_sources(utcsu::int_bit(utcsu::IntSource::kDuty0, 1));
  // Arm duty timer 1 at clock 5 ms via the register path.
  const Phi phi = Phi::from_duration(Duration::ms(5));
  const auto base = module::kCpuUtcsuBase + utcsu::kRegDutyBase + utcsu::kDutyStride;
  f.a.nti().cpu_write32(f.engine.now(), base + utcsu::kDutyCompareLo, phi.frac24());
  f.a.nti().cpu_write32(f.engine.now(), base + utcsu::kDutyCompareHi,
                        static_cast<std::uint32_t>(phi.whole_seconds()));
  f.a.nti().cpu_write32(f.engine.now(), base + utcsu::kDutyCtrl, 1);
  f.engine.run_until(SimTime::epoch() + Duration::ms(10));
  EXPECT_EQ(fired_timer, 1);
}

TEST(Driver, GpsCallbackFires) {
  sim::Engine engine;
  net::Medium medium{engine, net::MediumConfig{}, RngStream(11)};
  NodeConfig cfg = Fixture::make_cfg(0);
  cfg.gps = gps::GpsConfig{};
  NodeCard card(engine, medium, cfg, RngStream(1));
  int pps = 0;
  card.driver().on_gps = [&](int gpu) {
    EXPECT_EQ(gpu, 0);
    ++pps;
  };
  card.driver().enable_int_sources(utcsu::int_bit(utcsu::IntSource::kGpu0, 0));
  engine.run_until(SimTime::epoch() + Duration::sec(3) + Duration::ms(500));
  EXPECT_EQ(pps, 3);
}

}  // namespace
}  // namespace nti::node
