// Integration: fault injection -- a Byzantine-faulty node and faulty GPS
// receivers, exercising the fault-tolerance machinery (convergence with
// f > 0, clock validation).  All faults are declared through the unified
// fault::FaultPlan on ClusterConfig (see docs/FAULTS.md); the Byzantine
// saboteur is the kClockYank injector, the GPS failures are the GPS-kind
// specs that translate onto the receivers.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "mc/runner.hpp"
#include "sim/periodic.hpp"

namespace nti {
namespace {

using fault::FaultSpec;

cluster::ClusterConfig base_cfg(int n, int f) {
  cluster::ClusterConfig c;
  c.num_nodes = n;
  c.seed = 4242;
  c.sync.fault_tolerance = f;
  return c;
}

/// Node 4's clock yanked by +-3 ms every 700 ms -- the shared Byzantine
/// saboteur of the tests below.
FaultSpec byzantine_node4() {
  return FaultSpec::clock_yank(4, Duration::ms(3), Duration::ms(700),
                               SimTime::epoch() + Duration::ms(350));
}

/// Max pairwise clock difference over a subset of nodes.
Duration subset_precision(cluster::Cluster& cl, const std::vector<int>& ids) {
  const SimTime t = cl.engine().now();
  Duration lo = Duration::max(), hi = -Duration::max();
  for (const int i : ids) {
    const Duration c = cl.node(i).true_clock(t);
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  return hi - lo;
}

TEST(Faults, ByzantineNodeDoesNotBreakCorrectOnes) {
  // With n = 5, f = 1 the four correct nodes must stay mutually
  // synchronized despite the saboteur.
  auto cfg = base_cfg(5, 1);
  cfg.faults.add(byzantine_node4());
  cluster::Cluster cl(cfg);
  cl.start();
  SampleSet precision;
  const std::vector<int> correct = {0, 1, 2, 3};
  cl.engine().run_until(SimTime::epoch() + Duration::sec(5));
  for (int i = 0; i < 100; ++i) {
    cl.engine().run_until(cl.engine().now() + Duration::ms(100));
    precision.add(subset_precision(cl, correct));
  }
  EXPECT_GT(cl.fault_injector()->injections(fault::Kind::kClockYank), 5u);
  EXPECT_LT(precision.max_duration(), Duration::us(10));
}

TEST(Faults, EnsembleByzantineContainmentHoldsOnNonFaultyNodes) {
  // The single-seed Byzantine test above could be a lucky draw; across an
  // ensemble of 8 independently seeded replicas containment violations
  // must stay zero on every non-faulty node in every replica.  The plan
  // rides in ClusterConfig, so each replica's injector forks off its own
  // replica seed: decorrelated saboteurs for free.
  cluster::ClusterConfig cfg = base_cfg(5, 1);
  cfg.faults.add(byzantine_node4());

  mc::McConfig mcc;
  mcc.replicas = 8;
  mcc.threads = 0;  // hardware concurrency
  mcc.root_seed = 4242;
  mcc.total = Duration::sec(10);
  mcc.warmup = Duration::sec(5);
  mcc.probe_period = Duration::ms(100);
  mcc.keep_trajectories = false;

  struct PerReplica {
    std::uint64_t nonfaulty_violations = 0;
    std::uint64_t checks = 0;
    std::uint64_t yanks = 0;
  };
  std::vector<PerReplica> slots(mcc.replicas);

  mc::Runner runner(cfg, mcc);
  runner.set_replica_hook([&slots](mc::ReplicaContext& ctx) {
    auto& cl = ctx.cluster();
    PerReplica& slot = slots[ctx.index()];
    // Containment watchdog over the non-faulty subset, sampled densely
    // (the cluster's own violations counter includes the faulty node, which
    // is *expected* to break containment).
    ctx.retain<sim::PeriodicTask>(
        cl.engine(), SimTime::epoch() + Duration::sec(5), Duration::ms(100),
        [&cl, &slot](std::uint64_t) {
          const SimTime t = cl.engine().now();
          const Duration truth = t - SimTime::epoch();
          for (const int i : {0, 1, 2, 3}) {
            const auto iv = cl.sync(i).current_interval(t);
            ++slot.checks;
            if (truth < iv.lower() || truth > iv.upper()) {
              ++slot.nonfaulty_violations;
            }
          }
        });
  });
  runner.set_extractor([&slots](mc::ReplicaContext& ctx) {
    slots[ctx.index()].yanks =
        ctx.cluster().fault_injector()->injections(fault::Kind::kClockYank);
    ctx.metric("nonfaulty_violations",
               static_cast<double>(slots[ctx.index()].nonfaulty_violations));
    ctx.metric("containment_checks",
               static_cast<double>(slots[ctx.index()].checks));
  });

  const mc::EnsembleResult ens = runner.run();
  const mc::EnsembleStat* violations = ens.stat("nonfaulty_violations");
  const mc::EnsembleStat* checks = ens.stat("containment_checks");
  ASSERT_NE(violations, nullptr);
  ASSERT_NE(checks, nullptr);
  EXPECT_GT(checks->min, 0.0);  // the watchdog actually ran in every replica
  EXPECT_EQ(violations->max, 0.0)
      << "a non-faulty node broke containment in at least one replica";
  for (const PerReplica& s : slots) EXPECT_GT(s.yanks, 5u);
  // The replicas genuinely differ (decorrelated saboteur + oscillators).
  const mc::EnsembleStat* precision = ens.stat("precision_max_us");
  ASSERT_NE(precision, nullptr);
  EXPECT_GT(precision->stddev, 0.0);
}

TEST(Faults, TooManyFaultsAssumedZeroBreaks) {
  // Control experiment: with f = 0 a consistently biased saboteur corrupts
  // everyone (the convergence function trusts all inputs).  This
  // demonstrates the fault-tolerance parameter is load-bearing, not
  // decorative.  One-sided yanks: symmetric ones partially cancel across
  // rounds and muddy the control.
  auto cfg = base_cfg(5, 0);
  cfg.faults.add(FaultSpec::clock_yank(4, Duration::ms(2), Duration::ms(700),
                                       SimTime::epoch() + Duration::ms(350),
                                       SimTime::never(), /*one_sided=*/true));
  cluster::Cluster cl(cfg);
  cl.start();
  SampleSet precision;
  const std::vector<int> correct = {0, 1, 2, 3};
  cl.engine().run_until(SimTime::epoch() + Duration::sec(5));
  for (int i = 0; i < 50; ++i) {
    cl.engine().run_until(cl.engine().now() + Duration::ms(100));
    precision.add(subset_precision(cl, correct));
  }
  EXPECT_GT(precision.max_duration(), Duration::us(20));
}

TEST(Faults, SpikingGpsRejectedByValidation) {
  auto cfg = base_cfg(4, 1);
  cfg.gps_nodes = {0, 1};  // f + 1 receivers (see sync_test.cpp rationale)
  // Receivers deliver pulses 5 ms off for 10 s mid-run: classic [HS97]
  // offset failure, far outside the claimed accuracy.  node = -1 hits
  // every receiver, matching the old gps_base.faults semantics.
  cfg.faults.add(FaultSpec::gps_offset_spike(
      -1, Duration::ms(5), SimTime::epoch() + Duration::sec(6),
      SimTime::epoch() + Duration::sec(16)));
  cluster::Cluster cl(cfg);
  int offered = 0, accepted_during_fault = 0;
  cl.sync(0).on_round = [&](const csa::RoundReport& r) {
    const double t = cl.engine().now().to_sec_f();
    if (r.gps_offered) ++offered;
    if (t > 7.0 && t < 16.0 && r.gps_accepted) ++accepted_during_fault;
  };
  cl.start();
  cl.run(Duration::sec(20), Duration::sec(4));
  EXPECT_GT(offered, 10);
  EXPECT_EQ(accepted_during_fault, 0);  // validation must reject the spike
  EXPECT_EQ(cl.containment_violations(), 0u);
  // Precision among all nodes unharmed by the GPS fault in steady state;
  // the re-acquisition after the 10 s outage causes one bounded transient
  // (the ensemble drifted vs UTC meanwhile and is pulled back over a few
  // rounds).
  EXPECT_LT(cl.precision_samples().percentile_duration(90), Duration::us(8));
  EXPECT_LT(cl.precision_samples().max_duration(), Duration::us(40));
}

TEST(Faults, WrongSecondLabelRejected) {
  auto cfg = base_cfg(4, 1);
  cfg.gps_nodes = {0};
  cfg.faults.add(FaultSpec::gps_wrong_second(
      0, /*label_offset=*/1, SimTime::epoch() + Duration::sec(5),
      SimTime::epoch() + Duration::sec(15)));
  cluster::Cluster cl(cfg);
  int accepted_during_fault = 0;
  cl.sync(0).on_round = [&](const csa::RoundReport& r) {
    const double t = cl.engine().now().to_sec_f();
    if (t > 6.0 && t < 15.0 && r.gps_accepted) ++accepted_during_fault;
  };
  cl.start();
  cl.run(Duration::sec(18), Duration::sec(4));
  EXPECT_EQ(accepted_during_fault, 0);
  EXPECT_EQ(cl.containment_violations(), 0u);
}

TEST(Faults, OmittedPulsesMerelyDegrade) {
  auto cfg = base_cfg(4, 1);
  cfg.gps_nodes = {0, 1};
  cfg.faults.add(FaultSpec::gps_omission(-1,
                                         SimTime::epoch() + Duration::sec(5),
                                         SimTime::epoch() + Duration::sec(12)));
  cluster::Cluster cl(cfg);
  cl.start();
  cl.run(Duration::sec(16), Duration::sec(4));
  // No pulses -> no GPS interval -> internal sync carries through, with
  // one bounded re-acquisition transient at the end of the outage.
  EXPECT_EQ(cl.containment_violations(), 0u);
  EXPECT_LT(cl.precision_samples().percentile_duration(90), Duration::us(8));
  EXPECT_LT(cl.precision_samples().max_duration(), Duration::us(40));
}

TEST(Faults, HealthyGpsAcceptedAgainAfterFault) {
  auto cfg = base_cfg(4, 1);
  cfg.gps_nodes = {0};
  cfg.faults.add(FaultSpec::gps_offset_spike(
      0, Duration::ms(2), SimTime::epoch() + Duration::sec(5),
      SimTime::epoch() + Duration::sec(10)));
  cluster::Cluster cl(cfg);
  bool accepted_after = false;
  cl.sync(0).on_round = [&](const csa::RoundReport& r) {
    if (cl.engine().now().to_sec_f() > 12.0) accepted_after |= r.gps_accepted;
  };
  cl.start();
  cl.run(Duration::sec(18), Duration::sec(4));
  EXPECT_TRUE(accepted_after);
}

}  // namespace
}  // namespace nti
