// Parameterized full-stack sweep: every (n, f, convergence-function)
// combination must satisfy the two requirements of Sec. 2 --
//   (P) precision: bounded mutual deviation, and
//   (A) accuracy/containment: t inside every non-faulty interval --
// end to end through the complete hardware model.
#include <gtest/gtest.h>

#include <string>

#include "cluster/cluster.hpp"

namespace nti {
namespace {

struct SweepCase {
  int n;
  int f;
  csa::Convergence conv;
  double load;
};

class FullStackSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(FullStackSweep, PrecisionAndContainment) {
  const SweepCase c = GetParam();
  cluster::ClusterConfig cfg;
  cfg.num_nodes = c.n;
  cfg.seed = 0xABCD + static_cast<std::uint64_t>(c.n * 10 + c.f);
  cfg.sync.fault_tolerance = c.f;
  cfg.sync.convergence = c.conv;
  cfg.background_load = c.load;
  cluster::Cluster cl(cfg);
  cl.start();
  cl.run(Duration::sec(15), Duration::sec(8), Duration::ms(250));

  // (P): the 1 us-range goal, with headroom for small n / high f.
  EXPECT_LT(cl.precision_samples().max_duration(), Duration::us(10))
      << "n=" << c.n << " f=" << c.f;
  EXPECT_LT(cl.precision_samples().percentile_duration(90), Duration::us(5));
  // (A): the containment invariant must never break.
  EXPECT_EQ(cl.containment_violations(), 0u);
}

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const char* conv = info.param.conv == csa::Convergence::kOA ? "OA"
                     : info.param.conv == csa::Convergence::kMarzullo
                         ? "Marzullo"
                         : "FTA";
  return "n" + std::to_string(info.param.n) + "_f" +
         std::to_string(info.param.f) + "_" + conv +
         (info.param.load > 0 ? "_loaded" : "");
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FullStackSweep,
    ::testing::Values(SweepCase{2, 0, csa::Convergence::kOA, 0.0},
                      SweepCase{3, 0, csa::Convergence::kOA, 0.0},
                      SweepCase{4, 1, csa::Convergence::kOA, 0.0},
                      SweepCase{4, 1, csa::Convergence::kMarzullo, 0.0},
                      SweepCase{4, 1, csa::Convergence::kFTA, 0.0},
                      SweepCase{7, 2, csa::Convergence::kOA, 0.0},
                      SweepCase{7, 2, csa::Convergence::kMarzullo, 0.0},
                      SweepCase{10, 3, csa::Convergence::kOA, 0.0},
                      SweepCase{16, 2, csa::Convergence::kOA, 0.0},
                      SweepCase{4, 1, csa::Convergence::kOA, 0.3},
                      SweepCase{8, 1, csa::Convergence::kOA, 0.3}),
    case_name);

}  // namespace
}  // namespace nti
