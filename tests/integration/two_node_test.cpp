// Integration: the paper's two-node experiment (Sec. 4), end to end
// through every layer: CSA -> driver -> COMCO -> CSMA/CD -> COMCO -> CPLD
// triggers -> UTCSU stamps -> CSA.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace nti {
namespace {

cluster::ClusterConfig two_node_cfg() {
  cluster::ClusterConfig c;
  c.num_nodes = 2;
  c.seed = 77;
  c.sync.fault_tolerance = 0;
  c.osc_offset_spread_ppm = 2.0;
  c.initial_offset_spread = Duration::us(300);
  return c;
}

TEST(TwoNode, EpsilonWellBelowOneMicrosecond) {
  // The headline claim of Sec. 4: "preliminary experiments with a two-node
  // system revealed a transmission/reception time uncertainty epsilon well
  // below 1 us".  epsilon is the *variability* of the trigger-to-trigger
  // delay, measured here from ground truth over many CSPs.
  cluster::Cluster cl(two_node_cfg());
  SampleSet gaps;
  cl.start();
  // Chain a ground-truth probe in front of the sync handler.
  auto prev = cl.node(1).driver().on_csp;
  cl.node(1).driver().on_csp = [&, prev](const node::RxCsp& rx) {
    gaps.add(cl.node(1).comco().last_rx_trigger_time() -
             cl.node(0).comco().last_tx_trigger_time());
    prev(rx);
  };
  cl.engine().run_until(SimTime::epoch() + Duration::sec(60));
  ASSERT_GT(gaps.count(), 50u);
  const Duration epsilon = Duration::ps(
      static_cast<std::int64_t>(gaps.max() - gaps.min()));
  EXPECT_LT(epsilon, Duration::us(1));
  EXPECT_GT(epsilon, Duration::ns(10));  // jitter exists, it is not a constant
}

TEST(TwoNode, SynchronizesToMicrosecondRange) {
  cluster::Cluster cl(two_node_cfg());
  cl.start();
  cl.run(Duration::sec(30), Duration::sec(10));
  EXPECT_LT(cl.precision_samples().max_duration(), Duration::us(5));
  EXPECT_EQ(cl.containment_violations(), 0u);
}

TEST(TwoNode, SurvivesBackgroundTraffic) {
  auto cfg = two_node_cfg();
  cfg.background_load = 0.3;
  cluster::Cluster cl(cfg);
  cl.start();
  cl.run(Duration::sec(20), Duration::sec(10));
  // Hardware stamping is immune to medium-access delays: precision holds
  // even with 30% channel load.
  EXPECT_LT(cl.precision_samples().max_duration(), Duration::us(5));
  EXPECT_EQ(cl.containment_violations(), 0u);
  // The background frames really did flow (and were discarded by the CI).
  std::uint64_t noise = 0;
  for (int i = 0; i < 2; ++i) noise += cl.node(i).driver().stats().non_csp_received;
  EXPECT_GT(noise, 100u);
}

TEST(TwoNode, DeterministicAcrossRuns) {
  auto run_once = [] {
    cluster::Cluster cl(two_node_cfg());
    cl.start();
    cl.run(Duration::sec(10), Duration::sec(5));
    return cl.precision_samples().max();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace nti
