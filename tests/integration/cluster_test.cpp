// Integration: the 16-node prototype of Sec. 4 (four MVME-162 carriers
// with four NTIs each) and scaling behaviour around it.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace nti {
namespace {

cluster::ClusterConfig cfg_n(int n, int f) {
  cluster::ClusterConfig c;
  c.num_nodes = n;
  c.seed = 161'616;
  c.sync.fault_tolerance = f;
  return c;
}

TEST(SixteenNode, PrecisionInMicrosecondRange) {
  cluster::Cluster cl(cfg_n(16, 2));
  cl.start();
  cl.run(Duration::sec(20), Duration::sec(10));
  EXPECT_LT(cl.precision_samples().max_duration(), Duration::us(5));
  EXPECT_EQ(cl.containment_violations(), 0u);
}

TEST(SixteenNode, AllNodesParticipate) {
  cluster::Cluster cl(cfg_n(16, 2));
  int max_used = 0;
  cl.sync(7).on_round = [&](const csa::RoundReport& r) {
    max_used = std::max(max_used, r.intervals_used);
  };
  cl.start();
  cl.engine().run_until(SimTime::epoch() + Duration::sec(6));
  // 15 peers + own; an occasional stamp loss may drop one peer even in
  // the best round.
  EXPECT_GE(max_used, 15);
}

TEST(SixteenNode, StaggeredSendsLimitCollisions) {
  cluster::Cluster cl(cfg_n(16, 2));
  cl.start();
  cl.engine().run_until(SimTime::epoch() + Duration::sec(10));
  // 16 staggered senders per round for 10 rounds: the MAC should rarely
  // have to resolve collisions.
  EXPECT_LT(cl.medium().collisions(), 20u);
  // 16 senders x 9 completed rounds (the 10th round's senders are cut off
  // by the horizon).
  EXPECT_GE(cl.medium().frames_delivered(), 140u);
}

TEST(ClusterScaling, PrecisionDegradesGracefullyWithN) {
  // Lundelius-Lynch: the epsilon(1 - 1/n) bound grows with n, and so does
  // achievable precision -- but only mildly.
  SampleSet p4, p12;
  {
    cluster::Cluster cl(cfg_n(4, 1));
    cl.start();
    cl.run(Duration::sec(12), Duration::sec(6));
    p4 = cl.precision_samples();
  }
  {
    cluster::Cluster cl(cfg_n(12, 1));
    cl.start();
    cl.run(Duration::sec(12), Duration::sec(6));
    p12 = cl.precision_samples();
  }
  EXPECT_LT(p4.max_duration(), Duration::us(5));
  EXPECT_LT(p12.max_duration(), Duration::us(8));
}

TEST(ClusterScaling, LongRunStability) {
  // Two simulated minutes: no slow divergence, no containment decay.
  cluster::Cluster cl(cfg_n(6, 1));
  cl.start();
  cl.run(Duration::sec(120), Duration::sec(20), Duration::ms(500));
  EXPECT_LT(cl.precision_samples().percentile_duration(99), Duration::us(5));
  EXPECT_EQ(cl.containment_violations(), 0u);
  // Accuracy (vs UTC) cannot be anchored without GPS: the ensemble drifts
  // collectively at up to rho_max plus the initial scatter -- over 2
  // minutes at <= 2 ppm that stays well below 750 us.
  EXPECT_LT(cl.accuracy_samples().max_duration(), Duration::us(750));
}

}  // namespace
}  // namespace nti
