// Integration: hardware leap-second insertion/deletion across a running
// cluster (paper Sec. 3.3: duty timers are used "to insert/delete leap
// seconds"; the LTU applies the correction in hardware).
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"

namespace nti {
namespace {

cluster::ClusterConfig cfg4() {
  cluster::ClusterConfig c;
  c.num_nodes = 4;
  c.seed = 1111;
  c.sync.fault_tolerance = 1;
  return c;
}

TEST(LeapSecond, WholeClusterInsertsTogether) {
  cluster::Cluster cl(cfg4());
  cl.start();
  cl.engine().run_until(SimTime::epoch() + Duration::sec(4));
  // Without an external anchor the ensemble has a common-mode offset from
  // UTC; the leap must add exactly one second on top of it.
  std::vector<double> before(static_cast<std::size_t>(cl.size()));
  for (int i = 0; i < cl.size(); ++i) {
    before[static_cast<std::size_t>(i)] =
        (cl.node(i).true_clock(cl.engine().now()) -
         (cl.engine().now() - SimTime::epoch()))
            .to_sec_f();
  }
  // Every node arms the same UTC second; each clock leaps when *it*
  // reaches 6 s, i.e. all within the mutual precision of each other.
  for (int i = 0; i < cl.size(); ++i) cl.sync(i).schedule_leap(true, 6);

  cl.engine().run_until(SimTime::epoch() + Duration::sec(7));
  const SimTime t = cl.engine().now();
  const Duration truth = t - SimTime::epoch();
  for (int i = 0; i < cl.size(); ++i) {
    const double err = (cl.node(i).true_clock(t) - truth).to_sec_f();
    EXPECT_NEAR(err - before[static_cast<std::size_t>(i)], 1.0, 1e-4)
        << "node " << i;
  }
  // Mutual precision is preserved through the leap.
  EXPECT_LT(cl.probe().precision, Duration::us(10));
}

TEST(LeapSecond, DeletionRemovesOneSecond) {
  cluster::Cluster cl(cfg4());
  cl.start();
  cl.engine().run_until(SimTime::epoch() + Duration::sec(4));
  std::vector<double> before(static_cast<std::size_t>(cl.size()));
  for (int i = 0; i < cl.size(); ++i) {
    before[static_cast<std::size_t>(i)] =
        (cl.node(i).true_clock(cl.engine().now()) -
         (cl.engine().now() - SimTime::epoch()))
            .to_sec_f();
  }
  for (int i = 0; i < cl.size(); ++i) cl.sync(i).schedule_leap(false, 6);
  cl.engine().run_until(SimTime::epoch() + Duration::sec(8));
  const SimTime t = cl.engine().now();
  const Duration truth = t - SimTime::epoch();
  for (int i = 0; i < cl.size(); ++i) {
    const double err = (cl.node(i).true_clock(t) - truth).to_sec_f();
    EXPECT_NEAR(err - before[static_cast<std::size_t>(i)], -1.0, 1e-4)
        << "node " << i;
  }
  EXPECT_LT(cl.probe().precision, Duration::us(10));
}

TEST(LeapSecond, SyncKeepsRunningAfterLeap) {
  cluster::Cluster cl(cfg4());
  int rounds_after = 0;
  cl.start();
  cl.engine().run_until(SimTime::epoch() + Duration::sec(4));
  for (int i = 0; i < cl.size(); ++i) cl.sync(i).schedule_leap(true, 6);
  cl.sync(0).on_round = [&](const csa::RoundReport& r) {
    if (cl.engine().now() > SimTime::epoch() + Duration::sec(6)) {
      ++rounds_after;
      // Post-leap corrections stay in the normal sub-us regime: all
      // clocks moved by exactly the same second.
      EXPECT_LT(r.correction.abs(), Duration::us(50)) << "round " << r.round;
    }
  };
  cl.engine().run_until(SimTime::epoch() + Duration::sec(12));
  EXPECT_GT(rounds_after, 3);
}

}  // namespace
}  // namespace nti
