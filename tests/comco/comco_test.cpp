#include "comco/comco.hpp"

#include <gtest/gtest.h>

#include "osc/oscillator.hpp"
#include "sim/engine.hpp"

namespace nti::comco {
namespace {

using module::Addr;
using module::Nti;

// Two full NTI+COMCO stations on one medium.
struct Station {
  Station(sim::Engine& engine, net::Medium& medium, std::uint64_t seed)
      : osc(osc::OscConfig::ideal(10e6), RngStream(seed)),
        chip(engine, osc, utcsu::UtcsuConfig{}),
        nti(chip),
        comco(engine, nti, medium, ComcoConfig{}, RngStream(seed ^ 0xC0)) {}

  osc::QuartzOscillator osc;
  utcsu::Utcsu chip;
  Nti nti;
  Comco comco;
};

struct Fixture {
  sim::Engine engine;
  net::Medium medium{engine, net::MediumConfig{}, RngStream(7)};
  Station a{engine, medium, 1};
  Station b{engine, medium, 2};

  /// Prepare a transmit header+payload on station `s` and send it.
  void send(Station& s, int tx_slot, std::uint32_t marker, std::size_t len) {
    const SimTime now = engine.now();
    const Addr hdr = Nti::tx_header_addr(tx_slot);
    s.nti.cpu_write32(now, hdr + 0x00, 0xFFFFFFFF);
    s.nti.cpu_write32(now, hdr + 0x0C, kEthertypeCsp | (static_cast<std::uint32_t>(len) << 16));
    const Addr data = module::kDataBufferBase;
    s.nti.cpu_write32(now, data, marker);
    s.comco.transmit(tx_slot, data, len);
  }
};

TEST(Comco, EndToEndTransferMovesBytes) {
  Fixture f;
  f.b.comco.provision_rx(0, module::kDataBufferBase + 0x1000, 256);
  int rx_slot = -1;
  std::size_t rx_len = 0;
  f.b.comco.on_rx_complete = [&](int slot, std::size_t len) {
    rx_slot = slot;
    rx_len = len;
  };
  f.send(f.a, 0, 0xFEEDC0DE, 64);
  f.engine.run();
  ASSERT_EQ(rx_slot, 0);
  EXPECT_EQ(rx_len, 64u);
  // Payload word arrived in b's receive data buffer.
  EXPECT_EQ(f.b.nti.cpu_read32(f.engine.now(), module::kDataBufferBase + 0x1000),
            0xFEEDC0DEu);
  // Header word (ethertype) landed in b's rx header slot 0.
  EXPECT_EQ(f.b.nti.cpu_read32(f.engine.now(), Nti::rx_header_addr(0) + 0x0C) & 0xFFFF,
            kEthertypeCsp);
}

TEST(Comco, TransmitStampRidesInPacket) {
  Fixture f;
  f.b.comco.provision_rx(0, module::kDataBufferBase + 0x1000, 256);
  bool done = false;
  f.b.comco.on_rx_complete = [&](int, std::size_t) { done = true; };
  f.send(f.a, 0, 1, 64);
  f.engine.run();
  ASSERT_TRUE(done);
  // The receiver's rx header now holds the sender's tx stamp at the mapped
  // offsets -- and it must equal what the sender's SSU captured.
  const auto tx = f.a.chip.ssu_tx(0);
  ASSERT_TRUE(tx.valid);
  const SimTime now = f.engine.now();
  EXPECT_EQ(f.b.nti.cpu_read32(now, Nti::rx_header_addr(0) + 0x18), tx.timestamp);
  EXPECT_EQ(f.b.nti.cpu_read32(now, Nti::rx_header_addr(0) + 0x1C), tx.macrostamp);
  EXPECT_EQ(f.b.nti.cpu_read32(now, Nti::rx_header_addr(0) + 0x20), tx.alpha);
  const auto d = utcsu::decode_stamp(tx.timestamp, tx.macrostamp, tx.alpha);
  EXPECT_TRUE(d.checksum_ok);
}

TEST(Comco, ReceiveTriggerFiredDuringReception) {
  Fixture f;
  f.b.comco.provision_rx(0, module::kDataBufferBase + 0x1000, 256);
  bool done = false;
  f.b.comco.on_rx_complete = [&](int, std::size_t) { done = true; };
  f.send(f.a, 0, 1, 64);
  f.engine.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(f.b.chip.ssu_rx(0).valid);
  // The RECEIVE trigger must happen after the TRANSMIT trigger, and the
  // gap is bounded by frame air time + jitter (both triggers at fixed
  // header offsets).
  const Duration gap = f.b.comco.last_rx_trigger_time() - f.a.comco.last_tx_trigger_time();
  EXPECT_GT(gap, Duration::zero());
  EXPECT_LT(gap, Duration::us(100));
}

TEST(Comco, EpsilonBoundedByJitterBudget) {
  // The transmission/reception uncertainty: variability of
  // (rx_trigger - tx_trigger) over many packets.  Must stay within
  // fifo_lead_jitter + rx_arb_jitter (the engineered bound, Sec. 3.1/4).
  Fixture f;
  Duration min_gap = Duration::sec(999), max_gap = -Duration::sec(999);
  int received = 0;
  for (int i = 0; i < 100; ++i) f.b.comco.provision_rx(i % 16, module::kDataBufferBase + 0x1000, 256);
  f.b.comco.on_rx_complete = [&](int, std::size_t) {
    const Duration gap =
        f.b.comco.last_rx_trigger_time() - f.a.comco.last_tx_trigger_time();
    min_gap = std::min(min_gap, gap);
    max_gap = std::max(max_gap, gap);
    ++received;
  };
  for (int i = 0; i < 100; ++i) {
    f.engine.schedule_at(SimTime::epoch() + Duration::ms(i), [&f, i] {
      f.send(f.a, i % 8, static_cast<std::uint32_t>(i), 64);
    });
  }
  f.engine.run();
  ASSERT_EQ(received, 100);
  const ComcoConfig cfg;
  const Duration budget = cfg.fifo_lead_jitter + cfg.rx_arb_jitter;
  EXPECT_LE(max_gap - min_gap, budget);
  EXPECT_GT(max_gap - min_gap, Duration::zero());  // jitter actually present
}

TEST(Comco, RxOverrunWhenNoDescriptors) {
  Fixture f;
  // No provision_rx on b.
  f.send(f.a, 0, 1, 64);
  f.engine.run();
  EXPECT_EQ(f.b.comco.rx_overruns(), 1u);
  EXPECT_FALSE(f.b.chip.ssu_rx(0).valid);  // dropped before any DMA write
}

TEST(Comco, TxCompleteReported) {
  Fixture f;
  f.b.comco.provision_rx(0, module::kDataBufferBase + 0x1000, 256);
  int tx_done = -1;
  f.a.comco.on_tx_complete = [&](int slot) { tx_done = slot; };
  f.send(f.a, 5, 1, 64);
  f.engine.run();
  EXPECT_EQ(tx_done, 5);
}

TEST(Comco, PayloadClampedToCapacity) {
  Fixture f;
  f.b.comco.provision_rx(0, module::kDataBufferBase + 0x1000, 16);  // tiny
  std::size_t rx_len = 0;
  f.b.comco.on_rx_complete = [&](int, std::size_t len) { rx_len = len; };
  f.send(f.a, 0, 1, 64);
  f.engine.run();
  EXPECT_EQ(rx_len, 16u);
}

}  // namespace
}  // namespace nti::comco
