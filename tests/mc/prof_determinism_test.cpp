// Profiler non-interference: the acceptance gate for obs::prof.
//
// The profiler reads wall clocks on the hot path of the engine, medium,
// COMCO, and CSA.  This suite pins the contract that none of that can ever
// feed back into simulation state: the serialized ensemble output is
// byte-identical with profiling enabled vs disabled, and -- with profiling
// enabled -- across worker thread counts 1/2/4.  Any wall-clock-dependent
// branch leaking into simulated behaviour diverges these strings.
#include <gtest/gtest.h>

#include <string>

#include "mc/runner.hpp"
#include "obs/prof.hpp"

namespace nti {
namespace {

cluster::ClusterConfig small_cfg() {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.sync.fault_tolerance = 0;
  return cfg;
}

mc::McConfig small_mc(std::size_t threads) {
  mc::McConfig mcc;
  mcc.replicas = 4;
  mcc.threads = threads;
  mcc.root_seed = 1616;
  mcc.total = Duration::sec(4);
  mcc.warmup = Duration::sec(1);
  mcc.probe_period = Duration::ms(100);
  return mcc;
}

std::string run_json(std::size_t threads, bool profiled) {
  namespace prof = obs::prof;
  prof::reset();
  prof::set_enabled(profiled);
  const std::string json =
      mc::Runner(small_cfg(), small_mc(threads)).run().to_json();
  prof::set_enabled(false);
  return json;
}

TEST(ProfDeterminism, EnsembleJsonIdenticalWithProfilingOnAndOff) {
  const std::string off = run_json(1, /*profiled=*/false);
  const std::string on = run_json(1, /*profiled=*/true);
  EXPECT_EQ(off, on) << "profiling changed simulation output";
}

TEST(ProfDeterminism, ProfiledEnsembleJsonThreadCountInvariant) {
  const std::string t1 = run_json(1, /*profiled=*/true);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const std::string tn = run_json(threads, /*profiled=*/true);
    EXPECT_EQ(t1, tn) << "thread count " << threads
                      << " changed the profiled ensemble";
  }
}

TEST(ProfDeterminism, ProfiledRunActuallyCollectsZones) {
  namespace prof = obs::prof;
  prof::reset();
  prof::set_enabled(true);
  if (!prof::enabled()) GTEST_SKIP() << "NTI_OBS_OFF build";
  (void)mc::Runner(small_cfg(), small_mc(2)).run();
  prof::set_enabled(false);
  const auto zones = prof::snapshot();
  prof::reset();
  // Worker threads exited inside run(); their slabs must have been flushed
  // and merged -- the engine hot-path zones always fire.
  bool saw_dispatch = false;
  for (const auto& z : zones) {
    if (z.name == "sim.engine.dispatch") {
      saw_dispatch = true;
      EXPECT_GT(z.calls, 0u);
      EXPECT_GE(z.total_ns, z.self_ns);
    }
  }
  EXPECT_TRUE(saw_dispatch) << "no sim.engine.dispatch zone in snapshot";
}

}  // namespace
}  // namespace nti
