// Monte-Carlo runner: the determinism contract and the ensemble reduction.
//
// The hard contract under test: the ensemble output (serialized JSON and
// every retained probe sample) is byte-identical for any thread count,
// because replica seeding depends only on (root_seed, index) and every
// reduction walks the pre-sized slot array in replica order.
#include "mc/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace nti {
namespace {

cluster::ClusterConfig small_cfg() {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.sync.fault_tolerance = 0;
  return cfg;
}

mc::McConfig small_mc(std::size_t threads, std::size_t replicas = 4) {
  mc::McConfig mcc;
  mcc.replicas = replicas;
  mcc.threads = threads;
  mcc.root_seed = 99;
  mcc.total = Duration::sec(4);
  mcc.warmup = Duration::sec(1);
  mcc.probe_period = Duration::ms(100);
  return mcc;
}

/// Exact integer serialization of a trajectory: any single-picosecond
/// divergence between runs shows up as a string mismatch.
std::string trajectory_bytes(const mc::ReplicaResult& r) {
  std::string out;
  char buf[160];
  for (const cluster::ProbeSample& s : r.trajectory) {
    std::snprintf(buf, sizeof buf, "%lld|%lld|%lld|%lld|%lld|%lld\n",
                  static_cast<long long>((s.t - SimTime::epoch()).count_ps()),
                  static_cast<long long>(s.precision.count_ps()),
                  static_cast<long long>(s.worst_accuracy.count_ps()),
                  static_cast<long long>(s.mean_alpha.count_ps()),
                  static_cast<long long>(s.alpha_minus_max.count_ps()),
                  static_cast<long long>(s.alpha_plus_max.count_ps()));
    out += buf;
  }
  return out;
}

TEST(McRunner, EnsembleJsonByteIdenticalAcrossThreadCounts) {
  const std::string json1 =
      mc::Runner(small_cfg(), small_mc(1)).run().to_json();
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const std::string jsonN =
        mc::Runner(small_cfg(), small_mc(threads)).run().to_json();
    EXPECT_EQ(json1, jsonN) << "thread count " << threads
                            << " changed the serialized ensemble";
  }
}

TEST(McRunner, EveryProbeSampleByteIdenticalAcrossThreadCounts) {
  const mc::EnsembleResult a = mc::Runner(small_cfg(), small_mc(1)).run();
  const mc::EnsembleResult b = mc::Runner(small_cfg(), small_mc(4)).run();
  ASSERT_EQ(a.replica_results.size(), b.replica_results.size());
  for (std::size_t i = 0; i < a.replica_results.size(); ++i) {
    ASSERT_FALSE(a.replica_results[i].trajectory.empty());
    EXPECT_EQ(trajectory_bytes(a.replica_results[i]),
              trajectory_bytes(b.replica_results[i]))
        << "replica " << i;
  }
}

TEST(McRunner, ReplicasAreDecorrelated) {
  // Two replicas with different indices must produce different
  // trajectories: same config, different fork("replica", i) seeds.
  const mc::EnsembleResult ens = mc::Runner(small_cfg(), small_mc(1, 2)).run();
  ASSERT_EQ(ens.replica_results.size(), 2u);
  EXPECT_NE(ens.replica_results[0].seed, ens.replica_results[1].seed);
  EXPECT_NE(trajectory_bytes(ens.replica_results[0]),
            trajectory_bytes(ens.replica_results[1]));
}

TEST(McRunner, ReplicaSeedIsStableAndDistinct) {
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(mc::replica_seed(7, i), mc::replica_seed(7, i));
    for (std::size_t j = i + 1; j < 64; ++j) {
      EXPECT_NE(mc::replica_seed(7, i), mc::replica_seed(7, j));
    }
  }
  EXPECT_NE(mc::replica_seed(7, 0), mc::replica_seed(8, 0));
}

TEST(McRunner, EnsembleStatsMatchManualReduction) {
  const mc::EnsembleResult ens = mc::Runner(small_cfg(), small_mc(2)).run();
  const mc::EnsembleStat* s = ens.stat("precision_max_us");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->n, ens.replicas);

  SampleSet manual;
  for (const mc::ReplicaResult& r : ens.replica_results) {
    manual.add(r.metric("precision_max_us"));
  }
  EXPECT_DOUBLE_EQ(s->mean, manual.mean());
  EXPECT_DOUBLE_EQ(s->stddev, manual.stddev());
  EXPECT_DOUBLE_EQ(s->ci95, manual.ci95());
  EXPECT_DOUBLE_EQ(s->min, manual.min());
  EXPECT_DOUBLE_EQ(s->max, manual.max());
  EXPECT_GT(s->max, 0.0);  // a real cluster never has perfectly equal clocks
}

TEST(McRunner, MergedHistogramCountsEveryProbe) {
  const mc::EnsembleResult ens = mc::Runner(small_cfg(), small_mc(2)).run();
  std::uint64_t probes = 0;
  for (const mc::ReplicaResult& r : ens.replica_results) probes += r.probes;
  EXPECT_EQ(ens.precision_hist.count(), probes);
  EXPECT_EQ(ens.accuracy_hist.count(), probes);
  EXPECT_GT(probes, 0u);
}

TEST(McRunner, HookAndExtractorRunOncePerReplica) {
  std::atomic<int> hooks{0}, extracts{0};
  mc::Runner runner(small_cfg(), small_mc(4, 6));
  runner.set_replica_hook([&hooks](mc::ReplicaContext& ctx) {
    ++hooks;
    EXPECT_LT(ctx.index(), 6u);
  });
  runner.set_extractor([&extracts](mc::ReplicaContext& ctx) {
    ++extracts;
    ctx.metric("custom_metric", static_cast<double>(ctx.index()));
  });
  const mc::EnsembleResult ens = runner.run();
  EXPECT_EQ(hooks.load(), 6);
  EXPECT_EQ(extracts.load(), 6);
  const mc::EnsembleStat* s = ens.stat("custom_metric");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->mean, 2.5);  // mean of 0..5
  EXPECT_DOUBLE_EQ(s->min, 0.0);
  EXPECT_DOUBLE_EQ(s->max, 5.0);
}

TEST(McRunner, ApplyEnvReadsKnobs) {
  // Setting and clearing the knobs in-process keeps the test hermetic.
  setenv("NTI_MC_REPLICAS", "7", 1);
  setenv("NTI_MC_THREADS", "3", 1);
  const mc::McConfig mcc = mc::apply_env({});
  EXPECT_EQ(mcc.replicas, 7u);
  EXPECT_EQ(mcc.threads, 3u);
  unsetenv("NTI_MC_REPLICAS");
  unsetenv("NTI_MC_THREADS");
  const mc::McConfig dflt = mc::apply_env({});
  EXPECT_EQ(dflt.replicas, 16u);
  EXPECT_EQ(dflt.threads, 0u);
}

TEST(McRunner, ThreadsCappedByReplicas) {
  mc::McConfig mcc = small_mc(16, 2);
  const mc::EnsembleResult ens = mc::Runner(small_cfg(), mcc).run();
  EXPECT_EQ(ens.threads_used, 2u);
}

}  // namespace
}  // namespace nti
