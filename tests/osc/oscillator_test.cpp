#include "osc/oscillator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nti::osc {
namespace {

RngStream rng(std::uint64_t seed = 1) { return RngStream(seed); }

TEST(Oscillator, IdealTickCountMatchesNominal) {
  QuartzOscillator o(OscConfig::ideal(10e6), rng());
  // 1 s at 10 MHz -> exactly 10^7 ticks.
  EXPECT_EQ(o.ticks_at(SimTime::epoch() + Duration::sec(1)), 10'000'000u);
}

TEST(Oscillator, MonotoneTickCount) {
  QuartzOscillator o(OscConfig::tcxo(10e6), rng(2));
  std::uint64_t prev = 0;
  for (int i = 1; i <= 2000; ++i) {
    const std::uint64_t n =
        o.ticks_at(SimTime::from_ps(std::int64_t{i} * 7'777'777));
    EXPECT_GE(n, prev);
    prev = n;
  }
}

TEST(Oscillator, InverseConsistency) {
  QuartzOscillator o(OscConfig::tcxo(10e6), rng(3));
  for (const std::uint64_t n : {1ull, 17ull, 999ull, 123'456ull, 10'000'000ull}) {
    const SimTime t = o.time_of_tick(n);
    EXPECT_EQ(o.ticks_at(t), n) << "tick " << n;
    // Just before the tick the count must be lower.
    EXPECT_LT(o.ticks_at(t - Duration::ps(1)), n) << "tick " << n;
  }
}

TEST(Oscillator, TimeOfTickNeverBeforeQuery) {
  QuartzOscillator o(OscConfig::tcxo(10e6), rng(4));
  const SimTime t = SimTime::from_ps(123'456'789'000);
  const std::uint64_t n = o.ticks_at(t);
  EXPECT_LE(o.time_of_tick(n), t);
}

TEST(Oscillator, OffsetShiftsRate) {
  OscConfig cfg = OscConfig::ideal(10e6);
  cfg.offset_ppm = 10.0;  // fast by 10 ppm
  QuartzOscillator o(cfg, rng(5));
  const std::uint64_t n = o.ticks_at(SimTime::epoch() + Duration::sec(10));
  // Expect ~10e7 * (1 + 1e-5) = 100,001,000 ticks.
  EXPECT_NEAR(static_cast<double>(n), 100'001'000.0, 50.0);
}

TEST(Oscillator, WanderStaysWithinBound) {
  OscConfig cfg = OscConfig::tcxo(10e6);
  cfg.offset_ppm = 0.0;
  cfg.temp_coeff_ppm = 0.0;
  cfg.aging_ppm_per_day = 0.0;
  cfg.wander_sigma_ppb = 50.0;  // aggressive walk to hit the clamp
  cfg.wander_bound_ppm = 0.2;
  QuartzOscillator o(cfg, rng(6));
  for (int s = 1; s <= 60; ++s) {
    const double err = o.true_rate_error(SimTime::epoch() + Duration::sec(s));
    EXPECT_LE(std::fabs(err), 0.2e-6 * 1.001) << "t=" << s;
  }
}

TEST(Oscillator, TemperatureInducesPeriodicDeviation) {
  OscConfig cfg = OscConfig::ideal(10e6);
  cfg.temp_coeff_ppm = 1.0;
  cfg.temp_period = Duration::sec(100);
  QuartzOscillator o(cfg, rng(7));
  const double quarter = o.true_rate_error(SimTime::epoch() + Duration::sec(25));
  const double three_q = o.true_rate_error(SimTime::epoch() + Duration::sec(75));
  EXPECT_GT(quarter, 0.5e-6);   // near +peak
  EXPECT_LT(three_q, -0.5e-6);  // near -peak
}

TEST(Oscillator, RhoMaxBoundsTrueError) {
  // A long TCXO run must respect the configured spec-sheet bound.
  OscConfig cfg = OscConfig::tcxo(10e6);
  cfg.offset_ppm = 1.0;
  QuartzOscillator o(cfg, rng(8));
  for (int s = 0; s < 300; s += 7) {
    EXPECT_LE(std::fabs(o.true_rate_error(SimTime::epoch() + Duration::sec(s))),
              cfg.rho_max_ppm * 1e-6);
  }
}

TEST(Oscillator, FrequencyRangeAsserted) {
  EXPECT_DEATH(QuartzOscillator(OscConfig::ideal(100e6), rng()), "1..20 MHz");
}

TEST(Oscillator, TwentyMegahertzSupported) {
  QuartzOscillator o(OscConfig::ideal(20e6), rng(9));
  EXPECT_EQ(o.ticks_at(SimTime::epoch() + Duration::sec(1)), 20'000'000u);
  EXPECT_EQ(o.nominal_period(), Duration::ns(50));
}

TEST(Oscillator, DeterministicUnderSeed) {
  QuartzOscillator a(OscConfig::tcxo(10e6), rng(42));
  QuartzOscillator b(OscConfig::tcxo(10e6), rng(42));
  for (int s = 1; s <= 20; ++s) {
    const SimTime t = SimTime::epoch() + Duration::sec(s);
    EXPECT_EQ(a.ticks_at(t), b.ticks_at(t));
  }
}

}  // namespace
}  // namespace nti::osc
