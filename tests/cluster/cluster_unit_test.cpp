#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

namespace nti::cluster {
namespace {

ClusterConfig cfg_of(int n) {
  ClusterConfig c;
  c.num_nodes = n;
  c.seed = 9;
  return c;
}

TEST(ClusterUnit, BuildsRequestedTopology) {
  Cluster cl(cfg_of(5));
  EXPECT_EQ(cl.size(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(cl.node(i).id(), i);
    EXPECT_FALSE(cl.node(i).has_gps());
  }
}

TEST(ClusterUnit, GpsNodesGetReceivers) {
  auto c = cfg_of(4);
  c.gps_nodes = {1, 3};
  Cluster cl(c);
  EXPECT_FALSE(cl.node(0).has_gps());
  EXPECT_TRUE(cl.node(1).has_gps());
  EXPECT_FALSE(cl.node(2).has_gps());
  EXPECT_TRUE(cl.node(3).has_gps());
}

TEST(ClusterUnit, OscillatorOffsetsWithinSpread) {
  auto c = cfg_of(8);
  c.osc_offset_spread_ppm = 3.0;
  Cluster cl(c);
  for (int i = 0; i < 8; ++i) {
    EXPECT_LE(std::abs(cl.node(i).config().osc.offset_ppm), 3.0) << i;
  }
}

TEST(ClusterUnit, StartInitializesClocksNearSimTime) {
  auto c = cfg_of(3);
  c.initial_offset_spread = Duration::us(200);
  Cluster cl(c);
  cl.start();
  const SimTime t = cl.engine().now();
  const Duration truth = t - SimTime::epoch();
  for (int i = 0; i < 3; ++i) {
    EXPECT_LE((cl.node(i).true_clock(t) - truth).abs(), Duration::us(201)) << i;
  }
}

TEST(ClusterUnit, ProbeBeforeDivergenceIsTight) {
  Cluster cl(cfg_of(3));
  cl.start();
  const auto p = cl.probe();
  EXPECT_LE(p.precision, Duration::us(1001));     // within 2x initial spread
  EXPECT_LE(p.worst_accuracy, Duration::us(501));
}

TEST(ClusterUnit, RunAccumulatesSamples) {
  Cluster cl(cfg_of(2));
  cl.start();
  cl.run(Duration::sec(3), Duration::sec(1), Duration::ms(100));
  EXPECT_EQ(cl.probes_taken(), 21u);  // [1 s, 3 s] at 100 ms
  EXPECT_EQ(cl.precision_samples().count(), 21u);
}

TEST(ClusterUnit, DeterministicAcrossInstances) {
  auto run = [] {
    Cluster cl(cfg_of(3));
    cl.start();
    cl.run(Duration::sec(4), Duration::sec(2));
    return cl.precision_samples().max();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(ClusterUnit, SeedChangesOutcome) {
  auto run = [](std::uint64_t seed) {
    auto c = cfg_of(3);
    c.seed = seed;
    Cluster cl(c);
    cl.start();
    cl.run(Duration::sec(4), Duration::sec(2));
    return cl.precision_samples().max();
  };
  EXPECT_NE(run(1), run(2));
}

TEST(ClusterUnit, BackgroundTrafficFlows) {
  auto c = cfg_of(2);
  c.background_load = 0.2;
  Cluster cl(c);
  cl.start();
  cl.engine().run_until(SimTime::epoch() + Duration::sec(3));
  std::uint64_t noise = 0;
  for (int i = 0; i < 2; ++i) noise += cl.node(i).driver().stats().non_csp_received;
  EXPECT_GT(noise, 50u);
}

TEST(ClusterUnit, HwSnapshotAgreesWithTrueClock) {
  // The SNU register path quantizes to the stamp granularity but must
  // agree with the observer's exact view.
  Cluster cl(cfg_of(2));
  cl.start();
  cl.engine().run_until(SimTime::epoch() + Duration::ms(500));
  const SimTime t = cl.engine().now();
  cl.node(0).chip().hw_snapshot(t);
  const auto s = cl.node(0).chip().snapshot();
  ASSERT_TRUE(s.valid);
  const auto d = utcsu::decode_stamp(s.timestamp, s.macrostamp, s.alpha);
  ASSERT_TRUE(d.checksum_ok);
  // Synchronizer (2 ticks) + granularity tolerance.
  EXPECT_LE((d.time() - cl.node(0).true_clock(t)).abs(), Duration::ns(300));
}

}  // namespace
}  // namespace nti::cluster
