// Segment-level fault tolerance (docs/FAULTS.md, docs/SHARDING.md): the
// gateway capsule tap, the no-silent-drops accounting identity, the
// holdover degradation state machine, and whole-segment crash/rejoin.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cluster/sharded.hpp"
#include "cluster/topology.hpp"

namespace nti {
namespace {

const SimTime kEpoch = SimTime::epoch();

cluster::ClusterConfig two_segment_cfg() {
  cluster::ClusterConfig cfg;
  cfg.seed = 2026;
  cfg.sync.round_period = Duration::ms(200);
  cfg.sync.resync_offset = Duration::ms(50);
  cfg.initial_offset_spread = Duration::us(100);
  cfg.trace_capacity = 32768;
  cfg.topology = cluster::TopologySpec::chain(2, 3, Duration::ms(1));
  cfg.topology.bridge_phase = Duration::ms(60);
  return cfg;
}

std::size_t count_in_csv(obs::TraceRing* ring, const std::string& needle) {
  if (ring == nullptr) return 0;
  std::ostringstream os;
  ring->dump_csv(os);
  const std::string csv = os.str();
  std::size_t n = 0;
  for (std::size_t pos = csv.find(needle); pos != std::string::npos;
       pos = csv.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(GatewayFault, NoSilentDropsAccountingIdentity) {
  cluster::ClusterConfig cfg = two_segment_cfg();
  cfg.faults.add(fault::FaultSpec::gateway_capsule_loss(0.5, /*link=*/0))
      .add(fault::FaultSpec::capsule_corrupt(0.3, /*link=*/0));
  cluster::ShardedCluster sc(std::move(cfg));
  sc.start();
  sc.run(Duration::ms(3000), Duration::ms(400));

  cluster::GatewayLinkTx& tx = sc.gateway_tx(0);
  cluster::GatewayLinkRx& rx = sc.gateway_rx(0);
  ASSERT_GT(tx.captures(), 10u);
  EXPECT_GT(tx.dropped_loss(), 0u);
  EXPECT_GT(tx.corrupted(), 0u);
  EXPECT_GT(tx.retransmits(), 0u);
  EXPECT_EQ(tx.dropped_partition(), 0u);
  EXPECT_EQ(tx.skipped_down(), 0u);

  // The hard invariant: every capsule that left the sender is accounted at
  // the receiver — accepted, checksum-rejected, staleness-rejected, or
  // skipped because the receiver was down.  Nothing vanishes.
  EXPECT_EQ(rx.accepted() + rx.rejected_checksum() + rx.rejected_stale() +
                rx.skipped_down(),
            tx.sent());
  // Single-bit corruption is always caught by the CRC-8, never fused.
  EXPECT_EQ(rx.rejected_checksum(), tx.corrupted());

  // Every sender-side drop left a kCapsuleDrop trace record in the source
  // segment's ring; every receiver-side rejection in the destination's.
  EXPECT_EQ(count_in_csv(sc.segment(0).trace(), "capsule_drop"),
            tx.dropped_partition() + tx.dropped_loss() + tx.skipped_down());
  EXPECT_EQ(count_in_csv(sc.segment(1).trace(), "capsule_drop"),
            rx.rejected_checksum() + rx.rejected_stale() + rx.skipped_down());

  // Faults on link 0 never leak onto link 1 (the reverse direction).
  EXPECT_EQ(sc.gateway_tx(1).dropped_loss(), 0u);
  EXPECT_EQ(sc.gateway_tx(1).corrupted(), 0u);

  // The convergence rounds survived the lossy link.
  EXPECT_EQ(sc.containment_violations(), 0u);
}

TEST(GatewayFault, PartitionDrivesHoldoverThenRejoin) {
  cluster::ClusterConfig cfg = two_segment_cfg();
  const SimTime cut = kEpoch + Duration::ms(1000);
  const SimTime heal = kEpoch + Duration::ms(2200);
  cfg.faults.add(fault::FaultSpec::gateway_partition(0, cut, heal));
  cluster::ShardedCluster sc(std::move(cfg));
  sc.start();
  sc.run(Duration::ms(4000), Duration::ms(400));

  cluster::GatewayLinkTx& tx = sc.gateway_tx(0);
  cluster::GatewayLinkRx& rx = sc.gateway_rx(0);
  EXPECT_GT(tx.dropped_partition(), 0u);

  const node::GatewayGuard& guard = rx.guard();
  // The outage pushed the link through HOLDOVER and back: deteriorated
  // offers were synthesized while capsules were missing, and the state
  // machine re-integrated after rejoin_rounds consecutive accepts.
  EXPECT_GT(guard.holdover_rounds(), 0u);
  EXPECT_GT(rx.holdover_offers(), 0u);
  EXPECT_EQ(guard.state(), node::GatewayState::kSynchronized);
  EXPECT_GE(guard.transitions(), 3u);  // S->H, H->R, R->S at minimum
  EXPECT_EQ(guard.accuracy_broken(), 0u);  // 2 ppm * 1.2 s stays in bound

  // Resync happened after the heal, within rejoin_rounds + 1 rounds.
  EXPECT_GT(rx.last_sync_time(), heal);
  EXPECT_LE(rx.last_sync_time(), heal + Duration::ms(200) * 3);

  // Holdover deterioration stayed sane: positive, but far below the
  // ceiling for a 1.2 s outage at 2 ppm.
  EXPECT_GT(guard.peak_holdover_alpha(), Duration::zero());
  EXPECT_LT(guard.peak_holdover_alpha(), Duration::us(100));

  // The containment invariant held throughout — the whole point of
  // deteriorating the bound instead of freezing it.
  EXPECT_EQ(sc.containment_violations(), 0u);

  // State transitions are traced in the destination segment's ring.
  EXPECT_GE(count_in_csv(sc.segment(1).trace(), "gateway_state"), 3u);
}

TEST(GatewayFault, TinyCeilingBreaksAccuracyInsteadOfOffering) {
  cluster::ClusterConfig cfg = two_segment_cfg();
  cfg.topology.holdover_ceiling = Duration::ns(100);  // below any real bound
  const SimTime cut = kEpoch + Duration::ms(1000);
  const SimTime heal = kEpoch + Duration::ms(2200);
  cfg.faults.add(fault::FaultSpec::gateway_partition(0, cut, heal));
  cluster::ShardedCluster sc(std::move(cfg));
  sc.start();
  sc.run(Duration::ms(4000), Duration::ms(400));

  cluster::GatewayLinkRx& rx = sc.gateway_rx(0);
  const node::GatewayGuard& guard = rx.guard();
  // Broken accuracy is signalled exactly once, and never offered: a bound
  // past the ceiling is useless, feeding it would only poison the round.
  EXPECT_EQ(guard.accuracy_broken(), 1u);
  EXPECT_EQ(rx.holdover_offers(), 0u);
  // The link still recovers once capsules flow again.
  EXPECT_EQ(guard.state(), node::GatewayState::kSynchronized);
  EXPECT_EQ(sc.containment_violations(), 0u);
}

TEST(GatewayFault, SegmentCrashColdRejoins) {
  cluster::ClusterConfig cfg = two_segment_cfg();
  const SimTime crash = kEpoch + Duration::ms(1200);
  const SimTime restart = kEpoch + Duration::ms(1700);
  cfg.faults.add(
      fault::FaultSpec::segment_crash(1, crash, restart, Duration::us(300)));
  cluster::ShardedCluster sc(std::move(cfg));
  sc.start();
  sc.run(Duration::ms(4000), Duration::ms(400));

  // Every node of the crashed segment is back and round-executing.
  for (int i = 0; i < sc.segment(1).size(); ++i) {
    EXPECT_TRUE(sc.segment(1).sync(i).running());
  }
  // Crash accounting lives in the crashed segment's registry.
  const std::string json = sc.segment(1).metrics().to_json();
  EXPECT_NE(json.find("fault.segment_crash.injected"), std::string::npos);
  EXPECT_NE(json.find("fault.segment_crash.recovered"), std::string::npos);

  // While the segment was dead its gateway neither captured (link 1, the
  // 1->0 direction) nor consumed (link 0, the 0->1 direction) capsules —
  // both accounted, not silent.
  EXPECT_GT(sc.gateway_tx(1).skipped_down(), 0u);
  EXPECT_GT(sc.gateway_rx(0).skipped_down(), 0u);
  // The full accounting identity closes on the 0->1 link even across the
  // receiver outage.
  cluster::GatewayLinkRx& rx = sc.gateway_rx(0);
  EXPECT_EQ(rx.accepted() + rx.rejected_checksum() + rx.rejected_stale() +
                rx.skipped_down(),
            sc.gateway_tx(0).sent());

  // The cold scatter was honestly covered: no containment violation at any
  // probe, including the rejoin instant.
  EXPECT_EQ(sc.containment_violations(), 0u);

  // Crash edge events are traced in the crashed segment's ring.
  EXPECT_GE(count_in_csv(sc.segment(1).trace(), "fault_inject"), 1u);
  EXPECT_GE(count_in_csv(sc.segment(1).trace(), "fault_clear"), 1u);
}

TEST(GatewayFault, SingleSegmentClusterRejectsShardedKinds) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.faults.add(fault::FaultSpec::gateway_capsule_loss(0.1));
  EXPECT_THROW(cluster::Cluster{std::move(cfg)}, std::invalid_argument);

  cluster::ClusterConfig cfg2;
  cfg2.num_nodes = 3;
  cfg2.faults.add(fault::FaultSpec::segment_crash(
      0, kEpoch + Duration::sec(1), kEpoch + Duration::sec(2)));
  EXPECT_THROW(cluster::ShardedCluster{std::move(cfg2)}, std::invalid_argument);
}

}  // namespace
}  // namespace nti
