// Byte-identity matrix for the sharded cluster (docs/SHARDING.md): the full
// output signature — probe trajectory, per-segment metrics JSON, per-segment
// trace CSV — must be identical for every shard count {1, 2, N_segments}
// crossed with every worker thread count {1, 2, 4} (driven through the
// NTI_MC_THREADS environment override, exactly as CI sets it).  This is the
// test the asan and tsan gates select with `ctest -L shard`.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "cluster/sharded.hpp"
#include "cluster/topology.hpp"

namespace nti {
namespace {

std::string run_signature(std::size_t shards) {
  cluster::ClusterConfig cfg;
  cfg.seed = 1998;
  cfg.sync.round_period = Duration::ms(200);
  cfg.sync.resync_offset = Duration::ms(50);
  cfg.initial_offset_spread = Duration::us(100);
  cfg.trace_capacity = 2048;
  cfg.topology = cluster::TopologySpec::chain(3, 3, Duration::ms(1));
  cfg.topology.bridge_phase = Duration::ms(60);
  cfg.topology.shards = shards;
  cfg.topology.threads = 0;  // resolve from NTI_MC_THREADS

  cluster::ShardedCluster sc(std::move(cfg));
  sc.start();
  sc.run(Duration::ms(900), Duration::ms(300));
  return sc.output_signature();
}

TEST(ShardMatrix, ByteIdenticalAcrossShardAndThreadCounts) {
  std::string reference;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    for (const char* threads : {"1", "2", "4"}) {
      // nti-lint: allow(nondet): the test drives the documented env
      // override to prove it has no observable effect.
      ASSERT_EQ(setenv("NTI_MC_THREADS", threads, 1), 0);
      const std::string sig = run_signature(shards);
      ASSERT_FALSE(sig.empty());
      if (reference.empty()) {
        reference = sig;
      } else {
        ASSERT_EQ(reference, sig)
            << "output diverged at shards=" << shards << " threads=" << threads;
      }
    }
  }
  unsetenv("NTI_MC_THREADS");
}

std::string run_faulted_signature(std::size_t shards) {
  cluster::ClusterConfig cfg;
  cfg.seed = 1998;
  cfg.sync.round_period = Duration::ms(200);
  cfg.sync.resync_offset = Duration::ms(50);
  cfg.initial_offset_spread = Duration::us(100);
  cfg.trace_capacity = 4096;
  cfg.topology = cluster::TopologySpec::chain(3, 3, Duration::ms(1));
  cfg.topology.bridge_phase = Duration::ms(60);
  cfg.topology.shards = shards;
  cfg.topology.threads = 0;  // resolve from NTI_MC_THREADS
  // An *active* gateway fault plan: stochastic capsule loss and corruption
  // plus a partition window that drives the holdover state machine, all
  // drawn from per-(spec, link) streams that must never notice the shard
  // layout.
  cfg.faults
      .add(fault::FaultSpec::gateway_capsule_loss(0.4))
      .add(fault::FaultSpec::capsule_corrupt(0.25, /*link=*/1))
      .add(fault::FaultSpec::gateway_partition(
          0, SimTime::epoch() + Duration::ms(400),
          SimTime::epoch() + Duration::ms(700)));

  cluster::ShardedCluster sc(std::move(cfg));
  sc.start();
  sc.run(Duration::ms(900), Duration::ms(300));
  return sc.output_signature();
}

TEST(ShardMatrix, ByteIdenticalWithActiveGatewayFaultPlan) {
  std::string reference;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    for (const char* threads : {"1", "2", "4"}) {
      // nti-lint: allow(nondet): the test drives the documented env
      // override to prove it has no observable effect.
      ASSERT_EQ(setenv("NTI_MC_THREADS", threads, 1), 0);
      const std::string sig = run_faulted_signature(shards);
      ASSERT_FALSE(sig.empty());
      if (reference.empty()) {
        reference = sig;
      } else {
        ASSERT_EQ(reference, sig)
            << "faulted output diverged at shards=" << shards
            << " threads=" << threads;
      }
    }
  }
  unsetenv("NTI_MC_THREADS");
}

}  // namespace
}  // namespace nti
