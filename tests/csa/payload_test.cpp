#include "csa/payload.hpp"

#include <gtest/gtest.h>

namespace nti::csa {
namespace {

CspPayload sample() {
  CspPayload p;
  p.kind = CspKind::kRttReply;
  p.src = 7;
  p.round = 0xBEEF;
  p.sw_timestamp = 0x11223344;
  p.sw_macrostamp = 0x55667788;
  p.sw_alpha = 0x99AABBCC;
  p.step = 0x0123456789ABCDEFull;
  p.echo_timestamp = 0xDEADBEEF;
  p.echo_macrostamp = 0xFEEDF00D;
  p.probe_id = 42;
  return p;
}

TEST(Payload, EncodeDecodeRoundTrip) {
  const CspPayload p = sample();
  const auto bytes = p.encode();
  EXPECT_EQ(bytes.size(), CspPayload::kWireSize);
  const auto d = CspPayload::decode(bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, p.kind);
  EXPECT_EQ(d->src, p.src);
  EXPECT_EQ(d->round, p.round);
  EXPECT_EQ(d->sw_timestamp, p.sw_timestamp);
  EXPECT_EQ(d->sw_macrostamp, p.sw_macrostamp);
  EXPECT_EQ(d->sw_alpha, p.sw_alpha);
  EXPECT_EQ(d->step, p.step);
  EXPECT_EQ(d->echo_timestamp, p.echo_timestamp);
  EXPECT_EQ(d->echo_macrostamp, p.echo_macrostamp);
  EXPECT_EQ(d->probe_id, p.probe_id);
}

TEST(Payload, ShortBufferRejected) {
  const auto bytes = sample().encode();
  for (std::size_t n = 0; n < CspPayload::kWireSize; ++n) {
    EXPECT_FALSE(CspPayload::decode(std::span(bytes.data(), n)).has_value())
        << "length " << n;
  }
}

TEST(Payload, LongerBufferAccepted) {
  auto bytes = sample().encode();
  bytes.resize(bytes.size() + 17, 0xEE);  // receivers may pad
  EXPECT_TRUE(CspPayload::decode(bytes).has_value());
}

TEST(Payload, DefaultIsSyncKind) {
  CspPayload p;
  const auto d = CspPayload::decode(p.encode());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, CspKind::kSync);
  EXPECT_EQ(d->round, 0);
}

}  // namespace
}  // namespace nti::csa
