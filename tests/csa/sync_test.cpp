#include "csa/sync.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace nti::csa {
namespace {

cluster::ClusterConfig small_cfg() {
  cluster::ClusterConfig c;
  c.num_nodes = 4;
  c.seed = 1234;
  c.sync.fault_tolerance = 1;
  return c;
}

TEST(Sync, RoundsExecutePeriodically) {
  cluster::Cluster cl(small_cfg());
  int rounds = 0;
  cl.sync(0).on_round = [&](const RoundReport&) { ++rounds; };
  cl.start();
  cl.engine().run_until(SimTime::epoch() + Duration::sec(5) + Duration::ms(500));
  EXPECT_EQ(rounds, 5);
  EXPECT_EQ(cl.sync(0).round(), 6u);
}

TEST(Sync, UsesAllPeersIntervals) {
  cluster::Cluster cl(small_cfg());
  RoundReport last{};
  cl.sync(2).on_round = [&](const RoundReport& r) { last = r; };
  cl.start();
  cl.engine().run_until(SimTime::epoch() + Duration::sec(3));
  EXPECT_EQ(last.intervals_used, 4);  // 3 peers + own
}

TEST(Sync, PrecisionConvergesBelowInitialScatter) {
  auto cfg = small_cfg();
  cfg.initial_offset_spread = Duration::us(400);
  cluster::Cluster cl(cfg);
  cl.start();
  cl.engine().run_until(SimTime::epoch() + Duration::sec(4));
  const auto probe = cl.probe();
  EXPECT_LT(probe.precision, Duration::us(20));
}

TEST(Sync, ContainmentInvariantHolds) {
  cluster::Cluster cl(small_cfg());
  cl.start();
  cl.run(Duration::sec(8), Duration::sec(0), Duration::ms(50));
  EXPECT_GT(cl.probes_taken(), 100u);
  EXPECT_EQ(cl.containment_violations(), 0u);
}

TEST(Sync, CorrectionsShrinkAfterConvergence) {
  cluster::Cluster cl(small_cfg());
  std::vector<Duration> corrections;
  cl.sync(1).on_round = [&](const RoundReport& r) {
    corrections.push_back(r.correction.abs());
  };
  cl.start();
  cl.engine().run_until(SimTime::epoch() + Duration::sec(10));
  ASSERT_GE(corrections.size(), 8u);
  // Late-round corrections are much smaller than the first one.
  EXPECT_LT(corrections.back(), corrections.front() / 4 + Duration::us(2));
  EXPECT_LT(corrections.back(), Duration::us(5));
}

TEST(Sync, AccuraciesSmallWithExternalSource) {
  // With a GPS anchor the accuracy intervals sawtooth at the few-us level
  // (paper Sec. 2: dynamically maintained intervals are small on average).
  // Two receivers: with f = 1, a single tight interval is exactly what
  // the fault-tolerant edge trimming discards (it cannot be trusted), so
  // accuracy transport needs f + 1 externally-anchored inputs.
  auto cfg = small_cfg();
  cfg.gps_nodes = {0, 1};
  cluster::Cluster cl(cfg);
  cl.start();
  cl.run(Duration::sec(10), Duration::sec(5));
  EXPECT_LT(cl.alpha_samples().mean_duration(), Duration::us(50));
}

TEST(Sync, AccuracyGrowthBoundedWithoutExternalSource) {
  // Internal-only synchronization cannot *improve* knowledge of UTC, so
  // alpha legitimately never shrinks below the initial uncertainty -- but
  // its growth must be bounded by the deterioration rate, and containment
  // must hold throughout.
  cluster::Cluster cl(small_cfg());
  cl.start();
  cl.run(Duration::sec(20), Duration::sec(1));
  const Duration budget =
      cl.node(0).config().utcsu.initial_time.to_duration()  // zero
      + Duration::us(501)                                   // initial alpha
      + Duration::from_sec_f(20.0 * 2.0e-6 * 3)             // rho_bound growth
      + Duration::us(30);                                   // compensation slack
  EXPECT_LT(cl.alpha_samples().max_duration(), budget);
  EXPECT_EQ(cl.containment_violations(), 0u);
}

TEST(Sync, MarzulloConvergenceAlsoWorks) {
  auto cfg = small_cfg();
  cfg.sync.convergence = Convergence::kMarzullo;
  cluster::Cluster cl(cfg);
  cl.start();
  cl.run(Duration::sec(6), Duration::sec(3));
  EXPECT_LT(cl.precision_samples().max_duration(), Duration::us(20));
  EXPECT_EQ(cl.containment_violations(), 0u);
}

TEST(Sync, FtaBaselineConverges) {
  auto cfg = small_cfg();
  cfg.sync.convergence = Convergence::kFTA;
  cluster::Cluster cl(cfg);
  cl.start();
  cl.run(Duration::sec(6), Duration::sec(3));
  EXPECT_LT(cl.precision_samples().max_duration(), Duration::us(50));
}

TEST(Sync, SoftwareModeConvergesCoarser) {
  auto cfg = small_cfg();
  cfg.sync.use_hw_stamps = false;
  // Software stamping must budget for the full stack latency.
  cfg.sync.delay_min = Duration::us(5);
  cfg.sync.delay_max = Duration::ms(2);
  cluster::Cluster cl(cfg);
  cl.start();
  cl.run(Duration::sec(8), Duration::sec(4));
  // Still synchronizes...
  EXPECT_LT(cl.precision_samples().max_duration(), Duration::ms(2));
  // ...but orders of magnitude worse than hardware mode.
  EXPECT_GT(cl.precision_samples().max_duration(), Duration::us(30));
  EXPECT_EQ(cl.containment_violations(), 0u);
}

TEST(Sync, RateSyncReducesStepSpread) {
  auto cfg = small_cfg();
  cfg.osc_offset_spread_ppm = 5.0;
  cfg.sync.rho_bound_ppm = 10.0;  // must cover the oscillator spread
  cfg.sync.rate_sync = true;
  cluster::Cluster cl(cfg);
  cl.start();
  const double before = cl.max_rate_spread_ppm(SimTime::epoch() + Duration::ms(1));
  // Rate updates happen once per 8-round baseline window; give it a few.
  cl.engine().run_until(SimTime::epoch() + Duration::sec(50));
  const double after = cl.max_rate_spread_ppm(cl.engine().now());
  EXPECT_LT(after, before / 2);
}

TEST(Sync, GpsNodesPullClusterToUtc) {
  auto cfg = small_cfg();
  cfg.gps_nodes = {0, 1};  // f + 1 anchored inputs (see above)
  cluster::Cluster cl(cfg);
  bool accepted = false;
  cl.sync(0).on_round = [&](const RoundReport& r) { accepted |= r.gps_accepted; };
  cl.start();
  cl.run(Duration::sec(10), Duration::sec(5));
  EXPECT_TRUE(accepted);
  // Worst |C - UTC| across the cluster ends up in the few-us range rather
  // than drifting away (internal-only sync has no UTC anchor).
  EXPECT_LT(cl.accuracy_samples().max_duration(), Duration::us(25));
}

TEST(Sync, LateCspsCounted) {
  auto cfg = small_cfg();
  // Resync almost immediately after sends: peers' packets often arrive
  // after the resync point and must be discarded as late.
  cfg.sync.resync_offset = Duration::ms(2);
  cfg.sync.send_stagger_slot = Duration::us(500);
  cluster::Cluster cl(cfg);
  cl.start();
  cl.engine().run_until(SimTime::epoch() + Duration::sec(5));
  std::uint64_t late = 0;
  for (int i = 0; i < cl.size(); ++i) late += cl.sync(i).csps_late();
  EXPECT_GT(late, 0u);
}

// Regression: to_alpha_units computed (count_ps() << 24) in int64, which
// wraps for durations >= ~0.55 s -- exactly the cold-start alpha0 range --
// so a node could start out advertising a tiny (even zero) accuracy instead
// of the intended huge one.  It must saturate at the 16-bit register max.
TEST(Sync, AlphaUnitsSaturateForColdStartAccuracies) {
  // 1 unit = 2^-24 s; exact conversions round up.
  EXPECT_EQ(to_alpha_units(Duration::zero()).value(), 0u);
  EXPECT_EQ(to_alpha_units(Duration::ns(60)).value(), 2u);  // 60 ns = 1.007 units
  EXPECT_EQ(to_alpha_units(Duration::us(100)).value(), 1678u);
  // 0xFFFF units is ~3.9 ms: anything at or past that pins to the max.
  EXPECT_EQ(to_alpha_units(Duration::ms(4)).value(), 0xFFFFu);
  // The overflow cases: >= ~0.55 s used to wrap through int64.
  EXPECT_EQ(to_alpha_units(Duration::ms(600)).value(), 0xFFFFu);
  EXPECT_EQ(to_alpha_units(Duration::sec(1)).value(), 0xFFFFu);
  EXPECT_EQ(to_alpha_units(Duration::sec(300)).value(), 0xFFFFu);
}

TEST(Sync, NodeCountersTrackRoundsAndCsps) {
  cluster::Cluster cl(small_cfg());
  cl.start();
  cl.engine().run_until(SimTime::epoch() + Duration::sec(5));
  for (int i = 0; i < cl.size(); ++i) {
    const SyncNode& n = cl.sync(i);
    EXPECT_GT(n.rounds_completed(), 0u);
    // Every completed round fuses at least one peer CSP in a healthy net.
    EXPECT_GE(n.csps_used(), n.rounds_completed());
  }
}

}  // namespace
}  // namespace nti::csa
