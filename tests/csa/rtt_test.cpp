#include "csa/rtt.hpp"

#include <gtest/gtest.h>

#include "node/node_card.hpp"
#include "sim/engine.hpp"

namespace nti::csa {
namespace {

struct Fixture {
  sim::Engine engine;
  net::Medium medium{engine, net::MediumConfig{}, RngStream(21)};
  node::NodeCard a{engine, medium, make_cfg(0), RngStream(300)};
  node::NodeCard b{engine, medium, make_cfg(1), RngStream(400)};
  RttMeasurer rtt_a{a};
  RttMeasurer rtt_b{b};

  static node::NodeConfig make_cfg(int id) {
    node::NodeConfig c;
    c.node_id = id;
    c.osc = osc::OscConfig::ideal(10e6);
    return c;
  }
};

TEST(Rtt, HandshakeCompletes) {
  Fixture f;
  int results = 0;
  f.rtt_a.on_result = [&](const RttResult& r) {
    EXPECT_EQ(r.peer, 1);
    ++results;
  };
  f.rtt_a.send_probe();
  f.engine.run();
  EXPECT_EQ(results, 1);
  EXPECT_EQ(f.rtt_b.replies_sent(), 1u);
}

TEST(Rtt, DelayEstimateMatchesTriggerGap) {
  // With identical ideal clocks, the estimate must land on the true
  // one-way trigger-to-trigger delay to within stamp granularity.
  Fixture f;
  RttResult got{};
  f.rtt_a.on_result = [&](const RttResult& r) { got = r; };
  f.rtt_a.send_probe();
  f.engine.run();
  // True one-way delay of the *probe*: receiver trigger - sender trigger.
  const Duration truth =
      f.b.comco().last_rx_trigger_time() - f.a.comco().last_tx_trigger_time();
  // The reply leg has its own delay; the estimate is the average of both,
  // so allow the jitter budget plus granularity on each of 4 stamps.
  EXPECT_LE((got.delay_estimate - truth).abs(), Duration::us(1));
  EXPECT_GT(got.delay_estimate, Duration::zero());
}

TEST(Rtt, OffsetNearZeroForAlignedClocks) {
  Fixture f;
  RttResult got{};
  f.rtt_a.on_result = [&](const RttResult& r) { got = r; };
  f.rtt_a.send_probe();
  f.engine.run();
  EXPECT_LE(got.offset_estimate.abs(), Duration::us(1));
}

TEST(Rtt, OffsetDetectsSkewedPeer) {
  Fixture f;
  // Skew b's clock by +1 ms; the NTP-style offset must see it.
  f.b.chip().ltu().set_state(SimTime::epoch(),
                             Phi::from_duration(Duration::ms(1)));
  RttResult got{};
  f.rtt_a.on_result = [&](const RttResult& r) { got = r; };
  f.rtt_a.send_probe();
  f.engine.run();
  EXPECT_NEAR(got.offset_estimate.to_sec_f(), 1e-3, 5e-6);
}

TEST(Rtt, RepeatedProbesAccumulateSamples) {
  Fixture f;
  int done = 0;
  f.rtt_a.on_result = [&](const RttResult&) { ++done; };
  for (int i = 0; i < 20; ++i) {
    f.engine.schedule_at(SimTime::epoch() + Duration::ms(i * 5),
                         [&f] { f.rtt_a.send_probe(); });
  }
  f.engine.run();
  EXPECT_EQ(done, 20);
  EXPECT_EQ(f.rtt_a.delays().count(), 20u);
  // All estimates positive and tightly clustered (hardware stamping).
  EXPECT_GT(Duration::ps(static_cast<std::int64_t>(f.rtt_a.delays().min())),
            Duration::zero());
  EXPECT_LT(f.rtt_a.delays().max() - f.rtt_a.delays().min(), 1.5e6);  // ps
}

TEST(Rtt, ChainsToExistingHandler) {
  Fixture f;
  // A plain CSP (kind kSync) must pass through the RTT layer to whatever
  // handler was installed underneath.
  int sync_seen = 0;
  // Install underneath: recreate the chain by setting the driver callback
  // before a new measurer wraps it.
  node::NodeCard c{f.engine, f.medium, Fixture::make_cfg(2), RngStream(500)};
  c.driver().on_csp = [&](const node::RxCsp&) { ++sync_seen; };
  RttMeasurer rtt_c(c);
  CspPayload p;
  p.kind = CspKind::kSync;
  p.src = 0;
  f.a.driver().send_csp(p.encode());
  f.engine.run();
  EXPECT_EQ(sync_seen, 1);
}

}  // namespace
}  // namespace nti::csa
