#include "gps/gps.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/engine.hpp"

namespace nti::gps {
namespace {

struct Fixture {
  sim::Engine engine;
  GpsConfig cfg;

  std::vector<SimTime> pulses;
  std::vector<PpsEvent> serials;

  void run(Duration horizon) {
    GpsReceiver rx(engine, cfg, RngStream(5));
    rx.on_pps = [&](SimTime t) { pulses.push_back(t); };
    rx.on_serial = [&](const PpsEvent& e) { serials.push_back(e); };
    rx.start();
    engine.run_until(SimTime::epoch() + horizon);
  }
};

TEST(Gps, OnePulsePerSecond) {
  Fixture f;
  f.run(Duration::sec(10) + Duration::ms(500));
  EXPECT_EQ(f.pulses.size(), 10u);
  EXPECT_EQ(f.serials.size(), 10u);
}

TEST(Gps, PulsesNearSecondBoundaries) {
  Fixture f;
  f.cfg.static_offset = Duration::ns(40);
  f.run(Duration::sec(5) + Duration::ms(500));
  for (std::size_t k = 0; k < f.pulses.size(); ++k) {
    const double err =
        f.pulses[k].to_sec_f() - static_cast<double>(k + 1);
    EXPECT_LT(std::fabs(err), 500e-9) << "pulse " << k;
  }
}

TEST(Gps, ErrorWithinClaimedAccuracyWhenHealthy) {
  Fixture f;
  f.run(Duration::sec(60) + Duration::ms(500));
  for (std::size_t k = 0; k < f.pulses.size(); ++k) {
    const double err = std::fabs(f.pulses[k].to_sec_f() - static_cast<double>(k + 1));
    EXPECT_LE(err, f.cfg.claimed_accuracy.to_sec_f()) << "pulse " << k;
  }
}

TEST(Gps, SerialLabelsMatchSeconds) {
  Fixture f;
  f.run(Duration::sec(5) + Duration::ms(500));
  for (std::size_t i = 0; i < f.serials.size(); ++i) {
    EXPECT_EQ(f.serials[i].labeled_second, i + 1);
  }
}

TEST(Gps, SerialArrivesAfterPulse) {
  Fixture f;
  f.run(Duration::sec(3) + Duration::ms(500));
  ASSERT_GE(f.serials.size(), 1u);
  // Serial delay is 80 ms by default; all labels arrive within the second.
  EXPECT_GT(f.serials[0].true_time + f.cfg.serial_delay,
            f.serials[0].true_time);
}

TEST(Gps, OmissionFaultDropsPulses) {
  Fixture f;
  f.cfg.faults.push_back({FaultKind::kOmission,
                          SimTime::epoch() + Duration::sec(3),
                          SimTime::epoch() + Duration::sec(6)});
  f.run(Duration::sec(10) + Duration::ms(500));
  EXPECT_EQ(f.pulses.size(), 7u);  // seconds 3,4,5 omitted
}

TEST(Gps, OffsetSpikeDisplacesPulse) {
  Fixture f;
  f.cfg.noise_sigma = Duration::zero();
  f.cfg.sawtooth_amplitude = Duration::zero();
  f.cfg.static_offset = Duration::zero();
  f.cfg.faults.push_back({FaultKind::kOffsetSpike,
                          SimTime::epoch() + Duration::sec(2) - Duration::ms(1),
                          SimTime::epoch() + Duration::sec(3) - Duration::ms(1),
                          Duration::ms(5)});
  f.run(Duration::sec(4) + Duration::ms(500));
  ASSERT_GE(f.pulses.size(), 3u);
  EXPECT_NEAR(f.pulses[0].to_sec_f(), 1.0, 1e-6);
  EXPECT_NEAR(f.pulses[1].to_sec_f(), 2.005, 1e-6);  // spiked
  EXPECT_NEAR(f.pulses[2].to_sec_f(), 3.0, 1e-6);
}

TEST(Gps, WrongSecondLabels) {
  Fixture f;
  f.cfg.faults.push_back({FaultKind::kWrongSecond,
                          SimTime::epoch() + Duration::sec(2) - Duration::ms(1),
                          SimTime::epoch() + Duration::sec(4) - Duration::ms(1),
                          Duration::zero(), Duration::zero(), +1});
  f.run(Duration::sec(5) + Duration::ms(500));
  ASSERT_GE(f.serials.size(), 4u);
  EXPECT_EQ(f.serials[0].labeled_second, 1u);
  EXPECT_EQ(f.serials[1].labeled_second, 3u);  // mislabeled
  EXPECT_EQ(f.serials[2].labeled_second, 4u);  // mislabeled
  EXPECT_EQ(f.serials[3].labeled_second, 4u);  // healthy again
}

TEST(Gps, StuckFaultRampsError) {
  Fixture f;
  f.cfg.noise_sigma = Duration::zero();
  f.cfg.sawtooth_amplitude = Duration::zero();
  f.cfg.static_offset = Duration::zero();
  FaultWindow w{FaultKind::kStuck, SimTime::epoch() + Duration::sec(1) - Duration::ms(1),
                SimTime::epoch() + Duration::sec(100)};
  w.ramp_per_sec = Duration::us(100);
  f.cfg.faults.push_back(w);
  f.run(Duration::sec(5) + Duration::ms(500));
  ASSERT_GE(f.pulses.size(), 4u);
  const double e1 = f.pulses[1].to_sec_f() - 2.0;
  const double e3 = f.pulses[3].to_sec_f() - 4.0;
  EXPECT_GT(e3, e1 + 150e-6);  // growing
}

TEST(Gps, DeterministicUnderSeed) {
  GpsConfig cfg;
  sim::Engine e1, e2;
  std::vector<SimTime> p1, p2;
  GpsReceiver r1(e1, cfg, RngStream(9));
  GpsReceiver r2(e2, cfg, RngStream(9));
  r1.on_pps = [&](SimTime t) { p1.push_back(t); };
  r2.on_pps = [&](SimTime t) { p2.push_back(t); };
  r1.start();
  r2.start();
  e1.run_until(SimTime::epoch() + Duration::sec(5));
  e2.run_until(SimTime::epoch() + Duration::sec(5));
  EXPECT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_EQ(p1[i], p2[i]);
}

TEST(Gps, StopHaltsPulses) {
  sim::Engine engine;
  GpsReceiver rx(engine, GpsConfig{}, RngStream(4));
  int pulses = 0;
  rx.on_pps = [&](SimTime) { ++pulses; };
  rx.start();
  engine.schedule_at(SimTime::epoch() + Duration::sec(3) + Duration::ms(100),
                     [&] { rx.stop(); });
  engine.run_until(SimTime::epoch() + Duration::sec(10));
  EXPECT_LE(pulses, 4);
}

}  // namespace
}  // namespace nti::gps
