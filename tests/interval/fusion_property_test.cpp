// Property-based tests of the fusion soundness invariant: whenever at
// least n - f inputs contain the true value t, the fused interval must
// also contain t (this is THE correctness property of interval-based
// clock synchronization; everything else is performance).
#include "interval/interval.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace nti::interval {
namespace {

struct FusionCase {
  int n;
  int f;
  std::uint64_t seed;
};

class FusionProperty : public ::testing::TestWithParam<FusionCase> {};

std::vector<AccInterval> random_instance(RngStream& rng, int n, int f,
                                         Duration truth) {
  std::vector<AccInterval> xs;
  // n - f correct intervals: contain the truth with random widths/positions.
  for (int i = 0; i < n - f; ++i) {
    const Duration am = rng.uniform(Duration::ns(10), Duration::us(50));
    const Duration ap = rng.uniform(Duration::ns(10), Duration::us(50));
    xs.push_back(AccInterval::from_edges(truth - am, truth + ap));
  }
  // f faulty intervals: arbitrary garbage, possibly far away or inverted
  // widths, possibly even containing the truth (a fault may look benign).
  for (int i = 0; i < f; ++i) {
    const Duration lo = rng.uniform(-Duration::ms(5), Duration::ms(5));
    const Duration w = rng.uniform(Duration::ns(1), Duration::ms(1));
    xs.emplace_back(AccInterval::from_edges(lo, lo + w));
  }
  // Shuffle by index swap so faulty positions vary.
  for (std::size_t i = xs.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(xs[i - 1], xs[j]);
  }
  return xs;
}

TEST_P(FusionProperty, MarzulloContainsTruth) {
  const auto [n, f, seed] = GetParam();
  RngStream rng(seed);
  for (int iter = 0; iter < 200; ++iter) {
    const Duration truth = rng.uniform(Duration::zero(), Duration::ms(1));
    const auto xs = random_instance(rng, n, f, truth);
    const auto m = marzullo(xs, f);
    ASSERT_TRUE(m.has_value()) << "n=" << n << " f=" << f << " iter=" << iter;
    EXPECT_TRUE(m->contains(truth))
        << "n=" << n << " f=" << f << " iter=" << iter << " " << m->str();
  }
}

TEST_P(FusionProperty, FtEdgeFusionContainsTruth) {
  const auto [n, f, seed] = GetParam();
  if (n < 2 * f + 1) GTEST_SKIP() << "edge fusion needs n >= 2f+1";
  RngStream rng(seed ^ 0xF00Dull);
  for (int iter = 0; iter < 200; ++iter) {
    const Duration truth = rng.uniform(Duration::zero(), Duration::ms(1));
    const auto xs = random_instance(rng, n, f, truth);
    const auto r = ft_edge_fusion(xs, f);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->contains(truth))
        << "n=" << n << " f=" << f << " iter=" << iter << " " << r->str();
  }
}

TEST_P(FusionProperty, FusionNeverWiderThanWorstCorrectPair) {
  // Performance-flavoured sanity: with no faults, the fused width is never
  // larger than the widest input (intersection can only shrink).
  const auto [n, f, seed] = GetParam();
  RngStream rng(seed ^ 0xBEEFull);
  for (int iter = 0; iter < 100; ++iter) {
    const Duration truth = rng.uniform(Duration::zero(), Duration::ms(1));
    const auto xs = random_instance(rng, n, 0, truth);
    const auto m = marzullo(xs, 0);
    ASSERT_TRUE(m.has_value());
    Duration widest = Duration::zero();
    for (const auto& x : xs) widest = std::max(widest, x.length());
    EXPECT_LE(m->length(), widest);
  }
}

TEST_P(FusionProperty, MarzulloInsideFtEdgeFusion) {
  // M_f is the tightest f-tolerant fusion; the edge-fusion result must
  // contain it whenever both exist.
  const auto [n, f, seed] = GetParam();
  if (n < 2 * f + 1) GTEST_SKIP();
  RngStream rng(seed ^ 0xCAFEull);
  for (int iter = 0; iter < 100; ++iter) {
    const Duration truth = rng.uniform(Duration::zero(), Duration::ms(1));
    const auto xs = random_instance(rng, n, f, truth);
    const auto m = marzullo(xs, f);
    const auto e = ft_edge_fusion(xs, f);
    if (!m || !e) continue;
    if (e->lower() > e->upper()) continue;  // fallback case
    EXPECT_GE(m->lower(), e->lower());
    EXPECT_LE(m->upper(), e->upper());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FusionProperty,
    ::testing::Values(FusionCase{3, 0, 1}, FusionCase{3, 1, 2},
                      FusionCase{4, 1, 3}, FusionCase{5, 1, 4},
                      FusionCase{7, 2, 5}, FusionCase{9, 2, 6},
                      FusionCase{10, 3, 7}, FusionCase{16, 5, 8}),
    // Not `info`: the INSTANTIATE_ macro expands around the lambda with its
    // own `info` parameter, which -Wshadow (promoted by the lint wall) flags.
    [](const ::testing::TestParamInfo<FusionCase>& tpi) {
      return "n" + std::to_string(tpi.param.n) + "_f" +
             std::to_string(tpi.param.f);
    });

}  // namespace
}  // namespace nti::interval
