// Property-based tests of the fusion soundness invariant: whenever at
// least n - f inputs contain the true value t, the point t achieves the
// quorum, so t lies in some maximal quorum segment (this is THE
// correctness property of interval-based clock synchronization;
// everything else is performance).  marzullo() returns the FIRST maximal
// quorum segment; with a connected quorum set -- always the case without
// faults, and the overwhelmingly common case with them -- that segment is
// the whole quorum set and therefore contains t.  Only when faulty inputs
// conspire to build a disjoint quorum coalition *earlier* on the line can
// the returned segment precede t's segment; the test below pins exactly
// that dichotomy instead of the old hull semantics (which papered over
// the gap by returning points covered by fewer than n - f intervals; see
// marzullo_property_test.cpp for the oracle cross-check).
#include "interval/interval.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace nti::interval {
namespace {

struct FusionCase {
  int n;
  int f;
  std::uint64_t seed;
};

class FusionProperty : public ::testing::TestWithParam<FusionCase> {};

std::vector<AccInterval> random_instance(RngStream& rng, int n, int f,
                                         Duration truth) {
  std::vector<AccInterval> xs;
  // n - f correct intervals: contain the truth with random widths/positions.
  for (int i = 0; i < n - f; ++i) {
    const Duration am = rng.uniform(Duration::ns(10), Duration::us(50));
    const Duration ap = rng.uniform(Duration::ns(10), Duration::us(50));
    xs.push_back(AccInterval::from_edges(truth - am, truth + ap));
  }
  // f faulty intervals: arbitrary garbage, possibly far away or inverted
  // widths, possibly even containing the truth (a fault may look benign).
  for (int i = 0; i < f; ++i) {
    const Duration lo = rng.uniform(-Duration::ms(5), Duration::ms(5));
    const Duration w = rng.uniform(Duration::ns(1), Duration::ms(1));
    xs.emplace_back(AccInterval::from_edges(lo, lo + w));
  }
  // Shuffle by index swap so faulty positions vary.
  for (std::size_t i = xs.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(xs[i - 1], xs[j]);
  }
  return xs;
}

// All maximal quorum segments, left to right (the generalization of the
// production sweep used to state the soundness dichotomy).
std::vector<std::pair<Duration, Duration>> quorum_segments(
    const std::vector<AccInterval>& xs, int f) {
  struct Edge {
    Duration pos;
    int type;  // 0 = lower, 1 = upper
  };
  std::vector<Edge> edges;
  for (const auto& x : xs) {
    edges.push_back({x.lower(), 0});
    edges.push_back({x.upper(), 1});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.pos != b.pos) return a.pos < b.pos;
    return a.type < b.type;
  });
  const int quorum = static_cast<int>(xs.size()) - f;
  std::vector<std::pair<Duration, Duration>> segs;
  int count = 0;
  bool in_segment = false;
  Duration lo{};
  for (const Edge& e : edges) {
    if (e.type == 0) {
      ++count;
      if (count >= quorum && !in_segment) {
        lo = e.pos;
        in_segment = true;
      }
    } else {
      if (in_segment && count == quorum) {
        segs.emplace_back(lo, e.pos);
        in_segment = false;
      }
      --count;
    }
  }
  return segs;
}

TEST_P(FusionProperty, MarzulloContainsTruth) {
  const auto [n, f, seed] = GetParam();
  RngStream rng(seed);
  for (int iter = 0; iter < 200; ++iter) {
    const Duration truth = rng.uniform(Duration::zero(), Duration::ms(1));
    const auto xs = random_instance(rng, n, f, truth);
    const auto m = marzullo(xs, f);
    ASSERT_TRUE(m.has_value()) << "n=" << n << " f=" << f << " iter=" << iter;
    if (m->contains(truth)) continue;
    // The only sanctioned miss: faulty inputs built a disjoint quorum
    // coalition entirely before the truth's segment, and marzullo returned
    // that earlier segment.  The truth must still achieve the quorum in a
    // later maximal segment -- anything else is a genuine soundness bug.
    ASSERT_GE(f, 1) << "fault-free fusion must contain the truth; iter="
                    << iter << " " << m->str();
    EXPECT_LT(m->upper(), truth)
        << "n=" << n << " f=" << f << " iter=" << iter << " " << m->str();
    const auto segs = quorum_segments(xs, f);
    const bool truth_in_some =
        std::any_of(segs.begin(), segs.end(), [&](const auto& s) {
          return s.first <= truth && truth <= s.second;
        });
    EXPECT_TRUE(truth_in_some)
        << "n=" << n << " f=" << f << " iter=" << iter << " " << m->str();
  }
}

TEST_P(FusionProperty, FtEdgeFusionContainsTruth) {
  const auto [n, f, seed] = GetParam();
  if (n < 2 * f + 1) GTEST_SKIP() << "edge fusion needs n >= 2f+1";
  RngStream rng(seed ^ 0xF00Dull);
  for (int iter = 0; iter < 200; ++iter) {
    const Duration truth = rng.uniform(Duration::zero(), Duration::ms(1));
    const auto xs = random_instance(rng, n, f, truth);
    const auto r = ft_edge_fusion(xs, f);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->contains(truth))
        << "n=" << n << " f=" << f << " iter=" << iter << " " << r->str();
  }
}

TEST_P(FusionProperty, FusionNeverWiderThanWorstCorrectPair) {
  // Performance-flavoured sanity: with no faults, the fused width is never
  // larger than the widest input (intersection can only shrink).
  const auto [n, f, seed] = GetParam();
  RngStream rng(seed ^ 0xBEEFull);
  for (int iter = 0; iter < 100; ++iter) {
    const Duration truth = rng.uniform(Duration::zero(), Duration::ms(1));
    const auto xs = random_instance(rng, n, 0, truth);
    const auto m = marzullo(xs, 0);
    ASSERT_TRUE(m.has_value());
    Duration widest = Duration::zero();
    for (const auto& x : xs) widest = std::max(widest, x.length());
    EXPECT_LE(m->length(), widest);
  }
}

TEST_P(FusionProperty, MarzulloInsideFtEdgeFusion) {
  // M_f is the tightest f-tolerant fusion; the edge-fusion result must
  // contain it whenever both exist.
  const auto [n, f, seed] = GetParam();
  if (n < 2 * f + 1) GTEST_SKIP();
  RngStream rng(seed ^ 0xCAFEull);
  for (int iter = 0; iter < 100; ++iter) {
    const Duration truth = rng.uniform(Duration::zero(), Duration::ms(1));
    const auto xs = random_instance(rng, n, f, truth);
    const auto m = marzullo(xs, f);
    const auto e = ft_edge_fusion(xs, f);
    if (!m || !e) continue;
    if (e->lower() > e->upper()) continue;  // fallback case
    EXPECT_GE(m->lower(), e->lower());
    EXPECT_LE(m->upper(), e->upper());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FusionProperty,
    ::testing::Values(FusionCase{3, 0, 1}, FusionCase{3, 1, 2},
                      FusionCase{4, 1, 3}, FusionCase{5, 1, 4},
                      FusionCase{7, 2, 5}, FusionCase{9, 2, 6},
                      FusionCase{10, 3, 7}, FusionCase{16, 5, 8}),
    // Not `info`: the INSTANTIATE_ macro expands around the lambda with its
    // own `info` parameter, which -Wshadow (promoted by the lint wall) flags.
    [](const ::testing::TestParamInfo<FusionCase>& tpi) {
      return "n" + std::to_string(tpi.param.n) + "_f" +
             std::to_string(tpi.param.f);
    });

}  // namespace
}  // namespace nti::interval
