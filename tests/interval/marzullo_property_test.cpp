// Oracle cross-check for the Marzullo sweep, plus the quorum-gap
// regression.  The pre-fix implementation latched best_lo at the FIRST
// edge that reached quorum and best_hi at the LAST close still at quorum,
// so non-contiguous quorum sets (possible only with faulty inputs) fused
// to the hull spanning a gap covered by fewer than n - f intervals.  The
// fixed sweep returns the first maximal quorum segment; this file pins
// that semantics against a brute-force point-count oracle.
#include "interval/interval.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"

namespace nti::interval {
namespace {

struct Seg {
  std::int64_t lo_ps;
  std::int64_t hi_ps;
};

// Brute-force oracle: evaluate the interval-membership count at every
// candidate point and take the first maximal run with count >= n - f.
// Candidates are all edges plus the midpoints between consecutive distinct
// edges, computed at 2x scale so midpoints stay exact integers; the count
// function is piecewise constant between edges, so this candidate set
// distinguishes every behaviour the sweep can produce (including
// single-point segments where a close touches an open).
std::optional<Seg> oracle_first_quorum_segment(
    const std::vector<AccInterval>& xs, int f) {
  const int n = static_cast<int>(xs.size());
  const int quorum = n - f;
  if (n == 0 || quorum <= 0) return std::nullopt;

  std::vector<std::int64_t> edges2;
  edges2.reserve(xs.size() * 2);
  for (const auto& x : xs) {
    edges2.push_back(2 * x.lower().count_ps());
    edges2.push_back(2 * x.upper().count_ps());
  }
  std::sort(edges2.begin(), edges2.end());
  edges2.erase(std::unique(edges2.begin(), edges2.end()), edges2.end());

  std::vector<std::int64_t> cands;
  for (std::size_t i = 0; i < edges2.size(); ++i) {
    cands.push_back(edges2[i]);
    if (i + 1 < edges2.size()) {
      cands.push_back((edges2[i] + edges2[i + 1]) / 2);
    }
  }

  const auto count_at = [&xs](std::int64_t p2) {
    int c = 0;
    for (const auto& x : xs) {
      if (2 * x.lower().count_ps() <= p2 && p2 <= 2 * x.upper().count_ps()) {
        ++c;
      }
    }
    return c;
  };

  std::size_t i = 0;
  while (i < cands.size() && count_at(cands[i]) < quorum) ++i;
  if (i == cands.size()) return std::nullopt;
  std::size_t j = i;
  while (j + 1 < cands.size() && count_at(cands[j + 1]) >= quorum) ++j;
  // A maximal run always starts and ends on interval edges (the count only
  // changes there), so the 2x coordinates must be even.
  EXPECT_EQ(cands[i] % 2, 0);
  EXPECT_EQ(cands[j] % 2, 0);
  return Seg{cands[i] / 2, cands[j] / 2};
}

// The motivating failure: two disjoint coalitions of two intervals each,
// f=2 (quorum 2).  No point of (10, 20) lies in any input, yet the pre-fix
// sweep returned the hull [0, 30].  The first maximal quorum segment is
// [0, 10].
TEST(MarzulloQuorumGap, DisjointCoalitionsDoNotFuseAcrossGap) {
  const std::vector<AccInterval> xs = {
      AccInterval::from_edges(Duration::ns(0), Duration::ns(10)),
      AccInterval::from_edges(Duration::ns(0), Duration::ns(10)),
      AccInterval::from_edges(Duration::ns(20), Duration::ns(30)),
      AccInterval::from_edges(Duration::ns(20), Duration::ns(30)),
  };
  const auto m = marzullo(xs, 2);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->lower(), Duration::ns(0));
  EXPECT_EQ(m->upper(), Duration::ns(10));
}

// A faulty straggler bridging nothing: the quorum segment around the
// correct cluster must not be widened by a far-away pair that also happens
// to reach quorum later on the line.
TEST(MarzulloQuorumGap, LaterQuorumSegmentIgnored) {
  const std::vector<AccInterval> xs = {
      AccInterval::from_edges(Duration::ns(0), Duration::ns(4)),
      AccInterval::from_edges(Duration::ns(1), Duration::ns(5)),
      AccInterval::from_edges(Duration::ns(2), Duration::ns(6)),
      AccInterval::from_edges(Duration::ns(100), Duration::ns(200)),
      AccInterval::from_edges(Duration::ns(150), Duration::ns(250)),
  };
  // quorum = 3: only [2, 4] achieves it; the far pair never does.
  const auto m = marzullo(xs, 2);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->lower(), Duration::ns(2));
  EXPECT_EQ(m->upper(), Duration::ns(4));
}

TEST(MarzulloOracle, MatchesBruteForceOnRandomSets) {
  // Small integer coordinates on purpose: they force edge collisions,
  // touching opens/closes, duplicated intervals, and single-point quorum
  // segments far more often than wide random draws would.
  RngStream rng(0x13572468ull);
  for (int iter = 0; iter < 2000; ++iter) {
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    const int f = static_cast<int>(rng.uniform_int(0, n - 1));
    std::vector<AccInterval> xs;
    xs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const std::int64_t lo = rng.uniform_int(0, 200);
      const std::int64_t w = rng.uniform_int(0, 60);
      xs.push_back(AccInterval::from_edges(Duration::ps(lo),
                                           Duration::ps(lo + w)));
    }
    const auto m = marzullo(xs, f);
    const auto want = oracle_first_quorum_segment(xs, f);
    ASSERT_EQ(m.has_value(), want.has_value()) << "iter=" << iter;
    if (!want) continue;
    EXPECT_EQ(m->lower().count_ps(), want->lo_ps) << "iter=" << iter;
    EXPECT_EQ(m->upper().count_ps(), want->hi_ps) << "iter=" << iter;
  }
}

TEST(MarzulloOracle, EveryReturnedPointIsQuorumCovered) {
  // The point of the fix, stated directly: sample points inside the fused
  // interval and check each one really is covered by >= n - f inputs.
  RngStream rng(0xA11CE5ull);
  for (int iter = 0; iter < 500; ++iter) {
    const int n = static_cast<int>(rng.uniform_int(2, 8));
    const int f = static_cast<int>(rng.uniform_int(0, n - 1));
    std::vector<AccInterval> xs;
    xs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const std::int64_t lo = rng.uniform_int(0, 200);
      const std::int64_t w = rng.uniform_int(0, 60);
      xs.push_back(AccInterval::from_edges(Duration::ps(lo),
                                           Duration::ps(lo + w)));
    }
    const auto m = marzullo(xs, f);
    if (!m) continue;
    const int quorum = n - f;
    for (std::int64_t p = m->lower().count_ps(); p <= m->upper().count_ps();
         ++p) {
      int c = 0;
      for (const auto& x : xs) {
        if (x.lower().count_ps() <= p && p <= x.upper().count_ps()) ++c;
      }
      ASSERT_GE(c, quorum) << "iter=" << iter << " point=" << p;
    }
  }
}

}  // namespace
}  // namespace nti::interval
