#include "interval/interval.hpp"

#include <gtest/gtest.h>

namespace nti::interval {
namespace {

using nti::Duration;

AccInterval iv(std::int64_t lo_us, std::int64_t hi_us) {
  return AccInterval::from_edges(Duration::us(lo_us), Duration::us(hi_us));
}

TEST(AccInterval, ConstructionFromRefAndAlphas) {
  const AccInterval a(Duration::us(10), Duration::us(2), Duration::us(3));
  EXPECT_EQ(a.lower(), Duration::us(8));
  EXPECT_EQ(a.upper(), Duration::us(13));
  EXPECT_EQ(a.length(), Duration::us(5));
}

TEST(AccInterval, FromEdgesMidpointRef) {
  const AccInterval a = iv(4, 10);
  EXPECT_EQ(a.ref(), Duration::us(7));
  EXPECT_EQ(a.midpoint(), Duration::us(7));
}

TEST(AccInterval, ContainsAndIntersects) {
  const AccInterval a = iv(0, 10);
  EXPECT_TRUE(a.contains(Duration::us(0)));
  EXPECT_TRUE(a.contains(Duration::us(10)));
  EXPECT_FALSE(a.contains(Duration::us(11)));
  EXPECT_TRUE(a.intersects(iv(10, 20)));   // touching counts
  EXPECT_FALSE(a.intersects(iv(11, 20)));
}

TEST(AccInterval, EnlargeAndShift) {
  const AccInterval a = iv(5, 7).enlarged(Duration::us(1), Duration::us(2));
  EXPECT_EQ(a.lower(), Duration::us(4));
  EXPECT_EQ(a.upper(), Duration::us(9));
  const AccInterval b = a.shifted(Duration::us(10));
  EXPECT_EQ(b.lower(), Duration::us(14));
  EXPECT_EQ(b.upper(), Duration::us(19));
  EXPECT_EQ(b.ref() - a.ref(), Duration::us(10));
}

TEST(AccInterval, WithRefKeepsEdges) {
  const AccInterval a = iv(0, 10).with_ref(Duration::us(2));
  EXPECT_EQ(a.ref(), Duration::us(2));
  EXPECT_EQ(a.alpha_minus(), Duration::us(2));
  EXPECT_EQ(a.alpha_plus(), Duration::us(8));
}

TEST(Intersect, OverlapAndDisjoint) {
  const auto both = intersect(iv(0, 10), iv(5, 20));
  ASSERT_TRUE(both.has_value());
  EXPECT_EQ(both->lower(), Duration::us(5));
  EXPECT_EQ(both->upper(), Duration::us(10));
  EXPECT_FALSE(intersect(iv(0, 4), iv(5, 9)).has_value());
}

TEST(Hull, CoversBoth) {
  const AccInterval h = hull(iv(0, 2), iv(8, 9));
  EXPECT_EQ(h.lower(), Duration::us(0));
  EXPECT_EQ(h.upper(), Duration::us(9));
}

TEST(Marzullo, AllAgreeingGivesIntersection) {
  const std::vector<AccInterval> xs = {iv(0, 10), iv(2, 12), iv(4, 14)};
  const auto m = marzullo(xs, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->lower(), Duration::us(4));
  EXPECT_EQ(m->upper(), Duration::us(10));
}

TEST(Marzullo, ToleratesOneOutlier) {
  // Three good intervals around [4,10], one absurd outlier; f=1 must
  // recover the consistent core.
  const std::vector<AccInterval> xs = {iv(0, 10), iv(2, 12), iv(4, 14),
                                       iv(100, 120)};
  const auto m = marzullo(xs, 1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->lower(), Duration::us(4));
  EXPECT_EQ(m->upper(), Duration::us(10));
}

TEST(Marzullo, QuorumUnreachableReturnsNullopt) {
  const std::vector<AccInterval> xs = {iv(0, 1), iv(10, 11), iv(20, 21)};
  EXPECT_FALSE(marzullo(xs, 0).has_value());
}

TEST(Marzullo, TouchingEdgesCount) {
  const std::vector<AccInterval> xs = {iv(0, 5), iv(5, 10)};
  const auto m = marzullo(xs, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->lower(), Duration::us(5));
  EXPECT_EQ(m->upper(), Duration::us(5));
}

TEST(FtEdgeFusion, RequiresQuorum) {
  const std::vector<AccInterval> xs = {iv(0, 10), iv(1, 11)};
  EXPECT_FALSE(ft_edge_fusion(xs, 1).has_value());  // n=2 < 2f+1=3
}

TEST(FtEdgeFusion, NoFaultsGivesIntersectionOfEdges) {
  const std::vector<AccInterval> xs = {iv(0, 10), iv(2, 12), iv(4, 14)};
  const auto r = ft_edge_fusion(xs, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lower(), Duration::us(4));
  EXPECT_EQ(r->upper(), Duration::us(10));
}

TEST(FtEdgeFusion, DiscardsFaultyEdges) {
  // One faulty interval pushed far right; with f=1 its edges are trimmed.
  const std::vector<AccInterval> xs = {iv(0, 10), iv(2, 12), iv(500, 510)};
  const auto r = ft_edge_fusion(xs, 1);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lower(), Duration::us(2));   // max lower after dropping 500
  EXPECT_EQ(r->upper(), Duration::us(12));  // min upper after dropping 10
}

TEST(FtaAverage, TrimsExtremes) {
  const std::vector<Duration> xs = {Duration::us(1), Duration::us(10),
                                    Duration::us(11), Duration::us(12),
                                    Duration::us(1000)};
  const auto avg = fault_tolerant_average(xs, 1);
  ASSERT_TRUE(avg.has_value());
  EXPECT_EQ(*avg, Duration::us(11));
}

TEST(FtaAverage, InsufficientInputs) {
  const std::vector<Duration> xs = {Duration::us(1), Duration::us(2)};
  EXPECT_FALSE(fault_tolerant_average(xs, 1).has_value());
}

}  // namespace
}  // namespace nti::interval
