#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace nti::obs {
namespace {

TEST(MetricsRegistry, CounterReadsLiveValue) {
  MetricsRegistry reg;
  std::uint64_t frames = 0;
  reg.add_counter("net.frames", &frames);
  EXPECT_EQ(reg.value("net.frames"), 0.0);
  frames = 17;
  EXPECT_EQ(reg.value("net.frames"), 17.0);  // no re-registration needed
}

TEST(MetricsRegistry, GaugeEvaluatesAtSnapshotTime) {
  MetricsRegistry reg;
  double depth = 1.5;
  reg.add_gauge("queue.depth", [&depth] { return depth; });
  depth = 42.0;
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].value, 42.0);
  EXPECT_EQ(snap[0].kind, Metric::Kind::kGauge);
}

TEST(MetricsRegistry, ScalarUpsertsInPlace) {
  MetricsRegistry reg;
  reg.set_scalar("precision_us", 3.0);
  reg.set_scalar("precision_us", 1.5);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.value("precision_us"), 1.5);
}

TEST(MetricsRegistry, ScalarMaxKeepsEnvelope) {
  MetricsRegistry reg;
  reg.set_scalar_max("worst", 3.0);
  reg.set_scalar_max("worst", 1.0);  // smaller: ignored
  EXPECT_EQ(reg.value("worst"), 3.0);
  reg.set_scalar_max("worst", 9.0);
  EXPECT_EQ(reg.value("worst"), 9.0);
}

TEST(MetricsRegistry, SnapshotSortedByName) {
  MetricsRegistry reg;
  std::uint64_t a = 1, b = 2;
  reg.add_counter("zzz", &a);
  reg.add_counter("aaa", &b);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "aaa");
  EXPECT_EQ(snap[1].name, "zzz");
}

TEST(MetricsRegistry, ValueOfUnknownNameIsZero) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.contains("nope"));
  EXPECT_EQ(reg.value("nope"), 0.0);
}

TEST(MetricsRegistry, ToJsonIsFlatSortedObject) {
  MetricsRegistry reg;
  std::uint64_t n = 3;
  reg.add_counter("b.count", &n);
  reg.set_scalar("a.value", 2.5);
  EXPECT_EQ(reg.to_json(), "{\"a.value\": 2.5, \"b.count\": 3}");
}

}  // namespace
}  // namespace nti::obs
