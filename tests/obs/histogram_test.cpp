#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nti::obs {
namespace {

TEST(LogHistogram, EmptyIsAllZero) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(LogHistogram, SingleSampleEveryPercentileIsIt) {
  LogHistogram h;
  h.add(1234.0);
  EXPECT_EQ(h.count(), 1u);
  for (const double p : {0.0, 50.0, 99.0, 100.0}) {
    // The bucket midpoint is clamped into [min, max], which for one sample
    // collapses to the sample itself.
    EXPECT_DOUBLE_EQ(h.percentile(p), 1234.0);
  }
}

TEST(LogHistogram, ExactExtremaAndMean) {
  LogHistogram h;
  h.add(10.0);
  h.add(20.0);
  h.add(90.0);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 90.0);
  EXPECT_DOUBLE_EQ(h.mean(), 40.0);
}

TEST(LogHistogram, PercentileBoundedRelativeError) {
  // 8 linear sub-buckets per octave -> worst-case half-bucket error of
  // ~1/16 of the octave span; the header promises ~6% relative error.
  LogHistogram h;
  for (int i = 1; i <= 10'000; ++i) h.add(static_cast<double>(i));
  const double p50 = h.percentile(50);
  const double p99 = h.percentile(99);
  EXPECT_NEAR(p50, 5000.0, 5000.0 * 0.07);
  EXPECT_NEAR(p99, 9900.0, 9900.0 * 0.07);
  // p=100 selects the top bucket's midpoint (clamped into [min, max]),
  // so it carries the same bounded error -- max() is the exact extremum.
  EXPECT_NEAR(h.percentile(100), 10'000.0, 10'000.0 * 0.07);
  EXPECT_DOUBLE_EQ(h.max(), 10'000.0);
}

TEST(LogHistogram, PercentileMonotoneInP) {
  LogHistogram h;
  for (int i = 0; i < 1000; ++i) h.add(std::pow(1.01, i));
  double prev = h.percentile(0);
  for (double p = 5; p <= 100; p += 5) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(LogHistogram, NegativesCountedAndClamped) {
  LogHistogram h;
  h.add(-5.0);  // instrumentation bug canary
  h.add(3.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.negatives(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);  // the sample itself is clamped to zero
}

TEST(LogHistogram, DurationOverloadFeedsPs) {
  LogHistogram h;
  h.add(Duration::us(2));
  EXPECT_DOUBLE_EQ(h.max(), 2e6);
}

TEST(LogHistogram, MergeEqualsSequentialAdds) {
  // Merging per-replica histograms must be indistinguishable from having
  // fed one histogram with all the samples (the MC ensemble reduction
  // relies on this).
  LogHistogram a, b, all;
  for (const double v : {0.5, 3.0, 100.0, 1e6}) {
    a.add(v);
    all.add(v);
  }
  for (const double v : {-1.0, 7.0, 2e9}) {
    b.add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.negatives(), all.negatives());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  for (const double p : {0.0, 25.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), all.percentile(p)) << "p=" << p;
  }
}

TEST(LogHistogram, MergeWithEmptyIsIdentity) {
  LogHistogram h, empty;
  h.add(4.0);
  h.merge(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 4.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);

  LogHistogram target;
  target.merge(h);  // merging into an empty histogram adopts the extrema
  EXPECT_EQ(target.count(), 1u);
  EXPECT_DOUBLE_EQ(target.min(), 4.0);
  EXPECT_DOUBLE_EQ(target.max(), 4.0);
}

TEST(LogHistogram, ClearResets) {
  LogHistogram h;
  h.add(7.0);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.negatives(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

}  // namespace
}  // namespace nti::obs
