// End-to-end span-flow test (the PR's acceptance check): a real two-node
// cluster with spans enabled must produce at least one CSP trace whose
// stage chain is causally ordered from send_request through
// correction_applied, with every stage's parent_ps equal to the recorded
// instant of its taxonomy parent, and the exporter must serialize it into
// structurally valid Chrome trace JSON.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "nti_api.hpp"

namespace nti {
namespace {

using obs::SpanEvent;
using obs::SpanStage;

std::map<SpanStage, SpanEvent> by_stage(const std::vector<SpanEvent>& evs) {
  std::map<SpanStage, SpanEvent> out;
  for (const auto& e : evs) out.emplace(e.stage, e);  // first occurrence
  return out;
}

class SpanFlow : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster::ClusterConfig cfg;
    cfg.num_nodes = 2;
    cfg.seed = 7;
    cfg.sync.round_period = Duration::ms(100);
    cfg.sync.resync_offset = Duration::ms(50);
    cfg.enable_spans = true;
    cfg.record_timeseries = true;
    cluster_ = new cluster::Cluster(cfg);
    cluster_->start();
    cluster_->run(Duration::sec(5), Duration::sec(1), Duration::ms(100));
  }
  static void TearDownTestSuite() {
    delete cluster_;
    cluster_ = nullptr;
  }
  static cluster::Cluster* cluster_;
};

cluster::Cluster* SpanFlow::cluster_ = nullptr;

// Finds a trace that reached correction_applied and validates the whole
// parent chain against the stage taxonomy, including the FIFO-lead
// interleaving (on_wire before tx_trigger is legal; causality is
// per-parent-edge, not global record order).
TEST_F(SpanFlow, CompleteCspHasCausallyOrderedStageChain) {
  obs::SpanCollector& sc = *cluster_->spans();
  ASSERT_GT(sc.spans_started(), 10u);

  std::uint64_t complete = 0;
  for (std::uint64_t id = 1; id <= sc.spans_started() && !complete; ++id) {
    const auto evs = sc.trace_events(id);
    for (const auto& e : evs)
      if (e.stage == SpanStage::kCorrectionApplied) complete = id;
  }
  ASSERT_NE(complete, 0u) << "no CSP reached correction_applied in 5 s";

  const auto evs = sc.trace_events(complete);
  const auto st = by_stage(evs);
  for (const SpanStage s :
       {SpanStage::kSendRequest, SpanStage::kMediumAcquire,
        SpanStage::kTxTrigger, SpanStage::kTxStampInsert, SpanStage::kOnWire,
        SpanStage::kRxStamp, SpanStage::kIsrAssoc, SpanStage::kFused,
        SpanStage::kCorrectionApplied}) {
    ASSERT_TRUE(st.count(s)) << "stage missing: " << obs::to_string(s);
  }

  // Parent edges resolve to the parent stage's recorded instant.
  EXPECT_EQ(st.at(SpanStage::kSendRequest).parent_ps, -1);
  EXPECT_EQ(st.at(SpanStage::kMediumAcquire).parent_ps,
            st.at(SpanStage::kSendRequest).t_ps);
  EXPECT_EQ(st.at(SpanStage::kTxTrigger).parent_ps,
            st.at(SpanStage::kMediumAcquire).t_ps);
  EXPECT_EQ(st.at(SpanStage::kTxStampInsert).parent_ps,
            st.at(SpanStage::kTxTrigger).t_ps);
  EXPECT_EQ(st.at(SpanStage::kOnWire).parent_ps,
            st.at(SpanStage::kMediumAcquire).t_ps);
  EXPECT_EQ(st.at(SpanStage::kRxStamp).parent_ps,
            st.at(SpanStage::kOnWire).t_ps);
  EXPECT_EQ(st.at(SpanStage::kIsrAssoc).parent_ps,
            st.at(SpanStage::kRxStamp).t_ps);
  EXPECT_EQ(st.at(SpanStage::kFused).parent_ps,
            st.at(SpanStage::kIsrAssoc).t_ps);
  EXPECT_EQ(st.at(SpanStage::kCorrectionApplied).parent_ps,
            st.at(SpanStage::kFused).t_ps);

  // Every edge is causal (duration >= 0) and the COMCO's FIFO lead places
  // the wire start at or before the TX trigger readout.
  for (const auto& [stage, e] : st) {
    if (e.parent_ps >= 0) {
      EXPECT_GE(e.t_ps, e.parent_ps);
    }
  }
  EXPECT_LE(st.at(SpanStage::kOnWire).t_ps, st.at(SpanStage::kTxTrigger).t_ps);

  // Tx-side stages run on the sender, rx-side on the receiver.
  const int src = st.at(SpanStage::kSendRequest).node;
  EXPECT_EQ(st.at(SpanStage::kTxTrigger).node, src);
  EXPECT_NE(st.at(SpanStage::kRxStamp).node, src);
}

TEST_F(SpanFlow, StageHistogramsAreCausalAndPopulated) {
  obs::SpanCollector& sc = *cluster_->spans();
  for (const SpanStage s :
       {SpanStage::kMediumAcquire, SpanStage::kTxTrigger, SpanStage::kOnWire,
        SpanStage::kRxStamp, SpanStage::kIsrAssoc, SpanStage::kFused}) {
    const obs::LogHistogram& h = sc.stage_histogram(s);
    EXPECT_GT(h.count(), 0u) << obs::to_string(s);
    EXPECT_EQ(h.negatives(), 0u) << obs::to_string(s);
  }
  // The INTN ISR runs within the configured interrupt latency bounds, so
  // the isr_assoc stage must sit in the sub-millisecond range.
  EXPECT_LT(sc.stage_histogram(SpanStage::kIsrAssoc).max(), 1e9);
}

TEST_F(SpanFlow, ExporterEmitsParseableStructure) {
  std::ostringstream os;
  obs::dump_chrome_trace(os, *cluster_->spans());
  const std::string s = os.str();
  ASSERT_GT(s.size(), 100u);
  EXPECT_EQ(s.rfind("{\"traceEvents\": [", 0), 0u);  // starts the array
  EXPECT_NE(s.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
  EXPECT_NE(s.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(s.find("\"name\": \"correction_applied\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\": \"s\""), std::string::npos);  // flow start
  EXPECT_NE(s.find("\"ph\": \"f\""), std::string::npos);  // flow finish
  // Balanced braces/brackets (cheap structural validity check; the bench
  // artifacts are additionally loaded with a real JSON parser in CI).
  std::ptrdiff_t braces = 0, brackets = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '"' && (i == 0 || s[i - 1] != '\\')) in_str = !in_str;
    if (in_str) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(SpanFlow, TimeseriesTracksProbes) {
  obs::TimeSeriesRecorder& ts = *cluster_->timeseries();
  // 5 s total, 1 s warmup, 100 ms cadence -> ~40 post-warmup probes.
  EXPECT_GT(ts.rows(), 30u);
  ASSERT_EQ(ts.column_count(), 6u);  // 4 cluster columns + 2 node offsets
  EXPECT_EQ(ts.columns()[0], "pi_us");
  EXPECT_EQ(ts.columns()[4], "node0_offset_us");
  // pi(t) after convergence stays positive and below a microsecond or two.
  const double pi_last = ts.at(ts.rows() - 1, 0);
  EXPECT_GT(pi_last, 0.0);
  EXPECT_LT(pi_last, 5.0);
}

}  // namespace
}  // namespace nti
