#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace nti::obs {
namespace {

TEST(TimeSeriesRecorder, ColumnsAndRows) {
  TimeSeriesRecorder rec({"pi_us", "alpha_us"});
  EXPECT_EQ(rec.column_count(), 2u);
  EXPECT_EQ(rec.rows(), 0u);
  rec.add_row(1.5, std::array<double, 2>{0.25, 100.0});
  rec.add_row(2.5, std::array<double, 2>{0.5, 99.0});
  ASSERT_EQ(rec.rows(), 2u);
  EXPECT_DOUBLE_EQ(rec.t_at(0), 1.5);
  EXPECT_DOUBLE_EQ(rec.at(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(rec.at(1, 1), 99.0);
}

TEST(TimeSeriesRecorder, CsvSchemaHeaderPlusRows) {
  TimeSeriesRecorder rec({"a", "b"});
  rec.add_row(0.001, std::array<double, 2>{1.0, -2.5});
  rec.add_row(10.0, std::array<double, 2>{3.25e-6, 4e9});
  std::ostringstream os;
  rec.dump_csv(os);
  EXPECT_EQ(os.str(),
            "t_s,a,b\n"
            "0.001,1,-2.5\n"
            "10,3.25e-06,4e+09\n");
}

TEST(TimeSeriesRecorder, WriteCsvRoundTrips) {
  TimeSeriesRecorder rec({"x"});
  rec.add_row(1.0, std::array<double, 1>{42.0});
  const std::string path = ::testing::TempDir() + "nti_timeseries_test.csv";
  ASSERT_TRUE(rec.write_csv(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "t_s,x\n1,42\n");
  std::remove(path.c_str());
}

TEST(TimeSeriesRecorder, ClearKeepsSchema) {
  TimeSeriesRecorder rec({"x", "y", "z"});
  rec.add_row(0.0, std::array<double, 3>{1, 2, 3});
  rec.clear();
  EXPECT_EQ(rec.rows(), 0u);
  EXPECT_EQ(rec.column_count(), 3u);
  EXPECT_EQ(rec.columns()[2], "z");
}

}  // namespace
}  // namespace nti::obs
