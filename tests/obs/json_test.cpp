#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace nti::obs {
namespace {

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("x\ny"), "x\\ny");
  EXPECT_EQ(json_escape(std::string("\x01")), "\\u0001");
}

TEST(Json, NumbersIntegralWithoutFractionAndNonFiniteAsNull) {
  EXPECT_EQ(json_number(3.0), "3");
  EXPECT_EQ(json_number(-7.0), "-7");
  EXPECT_EQ(json_number(2.5), "2.5");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  JsonObject obj;
  obj.add("z", std::uint64_t{1});
  obj.add("a", "text");
  obj.add("ok", true);
  EXPECT_EQ(obj.str(), "{\"z\": 1, \"a\": \"text\", \"ok\": true}");
}

TEST(Json, NestedObject) {
  JsonObject inner;
  inner.add("pi", 3.5);
  JsonObject root;
  root.add("bench", "e1");
  root.add_object("metrics", inner);
  EXPECT_EQ(root.str(), "{\"bench\": \"e1\", \"metrics\": {\"pi\": 3.5}}");
}

}  // namespace
}  // namespace nti::obs
