// obs::prof unit tests: interning, nesting/attribution, reset, the
// disabled-path no-op, deterministic merge across threads, and the
// Perfetto (chrome_trace) zone-track export.
//
// Wall-clock assertions are deliberately loose (>=0, containment) -- the
// profiler measures real time, and CI boxes are noisy.  Exact assertions
// are reserved for call counts and structural properties.
#include "obs/prof.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "obs/chrome_trace.hpp"
#include "obs/span.hpp"

namespace prof = nti::obs::prof;

namespace {

/// Zone rows keyed by name for assertion convenience.
const prof::ZoneStats* find(const std::vector<prof::ZoneStats>& zones,
                            const std::string& name) {
  for (const auto& z : zones) {
    if (z.name == name) return &z;
  }
  return nullptr;
}

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Time every window: assertions about total/self must not depend on
    // which windows the default 1-of-16 sampling happens to pick.
    prof::set_sample_period(1);
    prof::reset();
  }
  void TearDown() override {
    prof::set_enabled(false);
    prof::set_sample_period(16);
    prof::reset();
  }
};

/// Burn a little real time so total_ns has something to accumulate.
void spin() {
  volatile std::uint64_t x = 0;
  for (int i = 0; i < 20'000; ++i) x = x + static_cast<std::uint64_t>(i);
}

TEST_F(ProfTest, DisabledByDefaultAndZonesAreNoOps) {
  EXPECT_FALSE(prof::enabled());
  {
    PROF_ZONE("test.disabled");
    spin();
  }
  EXPECT_TRUE(prof::snapshot().empty());
}

TEST_F(ProfTest, ResetDropsAccumulatedZones) {
  prof::set_enabled(true);
  if (!prof::enabled()) GTEST_SKIP() << "NTI_OBS_OFF build";
  {
    PROF_ZONE("test.reset");
    spin();
  }
  EXPECT_FALSE(prof::snapshot().empty());
  prof::reset();
  EXPECT_TRUE(prof::snapshot().empty());
}

TEST_F(ProfTest, CallCountsAndNameOrder) {
  prof::set_enabled(true);
  if (!prof::enabled()) GTEST_SKIP() << "NTI_OBS_OFF build";
  for (int i = 0; i < 5; ++i) {
    PROF_ZONE("test.b_zone");
    spin();
  }
  for (int i = 0; i < 3; ++i) {
    PROF_ZONE("test.a_zone");
    spin();
  }
  const auto zones = prof::snapshot();
  ASSERT_EQ(zones.size(), 2u);
  // snapshot() is name-ordered regardless of first-use order.
  EXPECT_EQ(zones[0].name, "test.a_zone");
  EXPECT_EQ(zones[1].name, "test.b_zone");
  EXPECT_EQ(zones[0].calls, 3u);
  EXPECT_EQ(zones[1].calls, 5u);
  for (const auto& z : zones) {
    EXPECT_GE(z.total_ns, 0);
    EXPECT_GE(z.self_ns, 0);
    EXPECT_LE(z.self_ns, z.total_ns);
  }
}

TEST_F(ProfTest, NestedZonesSplitSelfFromTotal) {
  prof::set_enabled(true);
  if (!prof::enabled()) GTEST_SKIP() << "NTI_OBS_OFF build";
  {
    PROF_ZONE("test.outer");
    spin();
    {
      PROF_ZONE("test.inner");
      spin();
    }
    spin();
  }
  const auto zones = prof::snapshot();
  const auto* outer = find(zones, "test.outer");
  const auto* inner = find(zones, "test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->calls, 1u);
  EXPECT_EQ(inner->calls, 1u);
  // The inner zone is fully contained, so outer total >= inner total and
  // outer self excludes the inner time (within clamping slop).
  EXPECT_GE(outer->total_ns, inner->total_ns);
  EXPECT_LE(outer->self_ns, outer->total_ns);
  EXPECT_GE(inner->self_ns, 0);
}

TEST_F(ProfTest, DepthOverflowIsSafe) {
  prof::set_enabled(true);
  if (!prof::enabled()) GTEST_SKIP() << "NTI_OBS_OFF build";
  // Recurse far past the 64-frame stack: overflowing frames are simply not
  // timed, and exits stay balanced (no crash, no negative depth).
  struct Recurser {
    static void go(int depth) {
      PROF_ZONE("test.deep");
      if (depth > 0) go(depth - 1);
    }
  };
  Recurser::go(200);
  const auto zones = prof::snapshot();
  const auto* deep = find(zones, "test.deep");
  ASSERT_NE(deep, nullptr);
  EXPECT_LE(deep->calls, 201u);
  EXPECT_GE(deep->calls, 1u);
  // And the thread's zone stack unwound cleanly: a fresh zone still works.
  {
    PROF_ZONE("test.after_deep");
    spin();
  }
  EXPECT_NE(find(prof::snapshot(), "test.after_deep"), nullptr);
}

TEST_F(ProfTest, WorkerThreadSlabsMergeDeterministically) {
  prof::set_enabled(true);
  if (!prof::enabled()) GTEST_SKIP() << "NTI_OBS_OFF build";
  {
    PROF_ZONE("test.merge");
    spin();
  }
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 7;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        PROF_ZONE("test.merge");
        spin();
      }
    });
  }
  for (auto& th : pool) th.join();  // thread exit flushes each slab
  const auto zones = prof::snapshot();
  const auto* merged = find(zones, "test.merge");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->calls, 1u + kThreads * kCallsPerThread);
}

TEST_F(ProfTest, SamplingCountsExactlyAndExtrapolatesTime) {
  EXPECT_EQ(prof::sample_period(), 1u);
  prof::set_sample_period(4);
  EXPECT_EQ(prof::sample_period(), 4u);
  prof::set_sample_period(10);  // rounds down to a power of two
  EXPECT_EQ(prof::sample_period(), 8u);
  prof::set_sample_period(0);
  EXPECT_EQ(prof::sample_period(), 1u);

  prof::set_sample_period(4);
  prof::reset();  // re-aligns the window counter: window 0 is sampled
  prof::set_enabled(true);
  if (!prof::enabled()) GTEST_SKIP() << "NTI_OBS_OFF build";
  constexpr int kWindows = 16;
  for (int i = 0; i < kWindows; ++i) {
    PROF_ZONE("test.sampled");
    spin();
  }
  const auto zones = prof::snapshot();
  const auto* z = find(zones, "test.sampled");
  ASSERT_NE(z, nullptr);
  // Counting is exact even though only 1-of-4 windows read the clock; the
  // reported time is extrapolated from those sampled windows.
  EXPECT_EQ(z->calls, static_cast<std::uint64_t>(kWindows));
  EXPECT_GT(z->total_ns, 0);
}

#ifndef NTI_OBS_OFF
TEST_F(ProfTest, InternIsStable) {
  const prof::ZoneId a1 = prof::intern("test.intern.a");
  const prof::ZoneId a2 = prof::intern("test.intern.a");
  const prof::ZoneId b = prof::intern("test.intern.b");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}
#endif

TEST_F(ProfTest, ChromeTraceExportsZoneTracks) {
  prof::set_enabled(true);
  if (!prof::enabled()) GTEST_SKIP() << "NTI_OBS_OFF build";
  {
    PROF_ZONE("test.export");
    spin();
  }
  nti::obs::SpanCollector spans;
  std::ostringstream os;
  nti::obs::dump_chrome_trace(os, spans, prof::snapshot());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"nti-prof\""), std::string::npos);
  EXPECT_NE(json.find("test.export"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos)
      << "expected a counter track";
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos)
      << "expected a slice";
  // Without zones the prof process must not appear.
  std::ostringstream os2;
  nti::obs::dump_chrome_trace(os2, spans, {});
  EXPECT_EQ(os2.str().find("nti-prof"), std::string::npos);
}

}  // namespace
