#include "obs/span.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace nti::obs {
namespace {

SimTime at_us(std::int64_t us) { return SimTime::from_ps(us * 1'000'000); }

// Drives one synthetic CSP from node 0 to node 1 through the full stage
// taxonomy, with distinct instants so every parent edge is checkable.
std::uint64_t play_full_csp(SpanCollector& sc) {
  const std::uint64_t id = sc.begin_csp(0, at_us(100));
  sc.record(id, SpanStage::kMediumAcquire, at_us(110), 0);
  // FIFO lead: the wire starts (and the receiver's on_wire fires) before
  // the TX trigger word is read out of the FIFO.
  sc.record(id, SpanStage::kOnWire, at_us(112), 1);
  sc.record(id, SpanStage::kTxTrigger, at_us(114), 0);
  sc.record(id, SpanStage::kTxStampInsert, at_us(115), 0);
  sc.record(id, SpanStage::kRxStamp, at_us(120), 1);
  sc.record(id, SpanStage::kIsrAssoc, at_us(130), 1);
  sc.record(id, SpanStage::kFused, at_us(200), 1);
  sc.record(id, SpanStage::kCorrectionApplied, at_us(200), 1, /*detail=*/-42);
  return id;
}

TEST(SpanCollector, IdsStartAtOneAndZeroIsIgnored) {
  SpanCollector sc;
  EXPECT_EQ(sc.begin_csp(3, at_us(1)), 1u);
  EXPECT_EQ(sc.begin_csp(3, at_us(2)), 2u);
  EXPECT_EQ(sc.spans_started(), 2u);
  // Unknown / sentinel traces never record: background frames carry 0.
  sc.record(0, SpanStage::kOnWire, at_us(3), 1);
  sc.record(999, SpanStage::kOnWire, at_us(3), 1);
  EXPECT_EQ(sc.event_count(), 2u);  // just the two roots
}

TEST(SpanCollector, RootEventShape) {
  SpanCollector sc;
  const std::uint64_t id = sc.begin_csp(5, at_us(7));
  const auto evs = sc.trace_events(id);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].stage, SpanStage::kSendRequest);
  EXPECT_EQ(evs[0].node, 5);
  EXPECT_EQ(evs[0].src, 5);
  EXPECT_EQ(evs[0].t_ps, at_us(7).count_ps());
  EXPECT_EQ(evs[0].parent_ps, -1);  // root
}

TEST(SpanCollector, ParentChainAcrossFullLifecycle) {
  SpanCollector sc;
  const std::uint64_t id = play_full_csp(sc);
  const auto evs = sc.trace_events(id);
  ASSERT_EQ(evs.size(), 9u);

  auto find = [&](SpanStage s) -> const SpanEvent& {
    for (const auto& e : evs)
      if (e.stage == s) return e;
    ADD_FAILURE() << "stage missing: " << to_string(s);
    static SpanEvent none;
    return none;
  };
  // Stage -> parent instant, per the taxonomy table in span.hpp.
  EXPECT_EQ(find(SpanStage::kMediumAcquire).parent_ps, at_us(100).count_ps());
  EXPECT_EQ(find(SpanStage::kTxTrigger).parent_ps, at_us(110).count_ps());
  EXPECT_EQ(find(SpanStage::kTxStampInsert).parent_ps, at_us(114).count_ps());
  EXPECT_EQ(find(SpanStage::kOnWire).parent_ps, at_us(110).count_ps());
  EXPECT_EQ(find(SpanStage::kRxStamp).parent_ps, at_us(112).count_ps());
  EXPECT_EQ(find(SpanStage::kIsrAssoc).parent_ps, at_us(120).count_ps());
  EXPECT_EQ(find(SpanStage::kFused).parent_ps, at_us(130).count_ps());
  EXPECT_EQ(find(SpanStage::kCorrectionApplied).parent_ps,
            at_us(200).count_ps());
  EXPECT_EQ(find(SpanStage::kCorrectionApplied).detail, -42);
  // Every event carries the originating node.
  for (const auto& e : evs) EXPECT_EQ(e.src, 0);
}

TEST(SpanCollector, StageHistogramsMeasureParentDeltas) {
  SpanCollector sc;
  play_full_csp(sc);
  EXPECT_DOUBLE_EQ(sc.stage_histogram(SpanStage::kMediumAcquire).max(),
                   10e6);  // 100us -> 110us
  EXPECT_DOUBLE_EQ(sc.stage_histogram(SpanStage::kOnWire).max(), 2e6);
  EXPECT_DOUBLE_EQ(sc.stage_histogram(SpanStage::kIsrAssoc).max(), 10e6);
  EXPECT_DOUBLE_EQ(sc.stage_histogram(SpanStage::kCorrectionApplied).max(),
                   0.0);  // co-timed with fused at the resync instant
  EXPECT_EQ(sc.stage_histogram(SpanStage::kSendRequest).count(), 0u);  // root
  // No stage duration may come out negative (causality canary).
  for (std::size_t i = 0; i < kNumSpanStages; ++i) {
    EXPECT_EQ(sc.stage_histogram(static_cast<SpanStage>(i)).negatives(), 0u);
  }
}

TEST(SpanCollector, PairHistogramsKeyedSrcDst) {
  SpanCollector sc;
  play_full_csp(sc);
  // rx-side stage: src 0 -> dst 1.
  const LogHistogram* rx = sc.pair_histogram(0, 1, SpanStage::kRxStamp);
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->count(), 1u);
  // tx-side stage: dst == src.
  const LogHistogram* tx = sc.pair_histogram(0, 0, SpanStage::kTxTrigger);
  ASSERT_NE(tx, nullptr);
  EXPECT_EQ(tx->count(), 1u);
  EXPECT_EQ(sc.pair_histogram(1, 0, SpanStage::kRxStamp), nullptr);
}

TEST(SpanCollector, BroadcastForksPerReceiverBranches) {
  SpanCollector sc;
  const std::uint64_t id = sc.begin_csp(0, at_us(0));
  sc.record(id, SpanStage::kMediumAcquire, at_us(1), 0);
  // Two receivers, interleaved: each rx stage resolves against its own
  // node's branch, not the other receiver's.
  sc.record(id, SpanStage::kOnWire, at_us(2), 1);
  sc.record(id, SpanStage::kOnWire, at_us(3), 2);
  sc.record(id, SpanStage::kRxStamp, at_us(10), 2);
  sc.record(id, SpanStage::kRxStamp, at_us(20), 1);
  const auto evs = sc.trace_events(id);
  for (const auto& e : evs) {
    if (e.stage != SpanStage::kRxStamp) continue;
    if (e.node == 1) {
      EXPECT_EQ(e.parent_ps, at_us(2).count_ps());
    }
    if (e.node == 2) {
      EXPECT_EQ(e.parent_ps, at_us(3).count_ps());
    }
  }
}

TEST(SpanCollector, DiscardRecordsReason) {
  SpanCollector sc;
  const std::uint64_t id = sc.begin_csp(0, at_us(0));
  sc.record(id, SpanStage::kDiscarded, at_us(5), 0,
            static_cast<std::int64_t>(DiscardReason::kTxAbort));
  const auto evs = sc.trace_events(id);
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[1].stage, SpanStage::kDiscarded);
  EXPECT_EQ(static_cast<DiscardReason>(evs[1].detail),
            DiscardReason::kTxAbort);
  EXPECT_STREQ(to_string(DiscardReason::kTxAbort), "tx_abort");
}

TEST(SpanCollector, EventCapDropsRawButKeepsHistograms) {
  SpanCollector sc(/*max_events=*/3);
  play_full_csp(sc);  // 9 events total
  EXPECT_EQ(sc.event_count(), 3u);
  EXPECT_EQ(sc.dropped_events(), 6u);
  // Histograms are unaffected by the raw-event cap.
  EXPECT_EQ(sc.stage_histogram(SpanStage::kFused).count(), 1u);
}

TEST(SpanCollector, RegisterMetricsExposesHistogramsAndCounters) {
  SpanCollector sc;
  play_full_csp(sc);
  MetricsRegistry reg;
  sc.register_metrics(reg, "span.");
  const auto snap = reg.snapshot();
  auto value_of = [&](const std::string& name) -> double {
    for (const auto& m : snap)
      if (m.name == name) return m.value;
    ADD_FAILURE() << "metric missing: " << name;
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(value_of("span.spans_started"), 1.0);
  EXPECT_DOUBLE_EQ(value_of("span.stage.isr_assoc_us.count"), 1.0);
  // Histogram values are exported in microseconds (ps * 1e-6).
  EXPECT_NEAR(value_of("span.stage.isr_assoc_us.max"), 10.0, 1e-9);
  EXPECT_NEAR(value_of("span.stage.medium_acquire_us.p50"), 10.0, 0.7);
}

TEST(SpanCollector, ClearDropsLiveStateAndEvents) {
  SpanCollector sc;
  play_full_csp(sc);
  sc.clear();
  EXPECT_EQ(sc.event_count(), 0u);
  EXPECT_EQ(sc.stage_histogram(SpanStage::kFused).count(), 0u);
  // Post-clear recording on the dead trace is a no-op, not a crash.
  sc.record(1, SpanStage::kFused, at_us(999), 1);
  EXPECT_EQ(sc.event_count(), 0u);
}

TEST(SpanStageNames, Stable) {
  EXPECT_STREQ(to_string(SpanStage::kSendRequest), "send_request");
  EXPECT_STREQ(to_string(SpanStage::kMediumAcquire), "medium_acquire");
  EXPECT_STREQ(to_string(SpanStage::kTxTrigger), "tx_trigger");
  EXPECT_STREQ(to_string(SpanStage::kTxStampInsert), "tx_stamp_insert");
  EXPECT_STREQ(to_string(SpanStage::kOnWire), "on_wire");
  EXPECT_STREQ(to_string(SpanStage::kRxStamp), "rx_stamp");
  EXPECT_STREQ(to_string(SpanStage::kIsrAssoc), "isr_assoc");
  EXPECT_STREQ(to_string(SpanStage::kFused), "fused");
  EXPECT_STREQ(to_string(SpanStage::kDiscarded), "discarded");
  EXPECT_STREQ(to_string(SpanStage::kCorrectionApplied),
               "correction_applied");
}

}  // namespace
}  // namespace nti::obs
