// Validates the Chrome trace-event exporter's JSON structure against what
// Perfetto / chrome://tracing require: a traceEvents array, process/thread
// metadata, "X" duration slices with µs timestamps, and s/t/f async flow
// events stitching one CSP across tracks.
#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/span.hpp"

namespace nti::obs {
namespace {

SimTime at_us(std::int64_t us) { return SimTime::from_ps(us * 1'000'000); }

std::string dump(const SpanCollector& sc) {
  std::ostringstream os;
  dump_chrome_trace(os, sc);
  return os.str();
}

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(ChromeTrace, EmptyCollectorIsStillValidJson) {
  SpanCollector sc;
  const std::string s = dump(sc);
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_EQ(s.front(), '{');
  EXPECT_EQ(s.back(), '\n');
}

TEST(ChromeTrace, FullCspProducesSlicesAndFlows) {
  SpanCollector sc;
  const std::uint64_t id = sc.begin_csp(0, at_us(100));
  sc.record(id, SpanStage::kMediumAcquire, at_us(110), 0);
  sc.record(id, SpanStage::kOnWire, at_us(112), 1);
  sc.record(id, SpanStage::kTxTrigger, at_us(114), 0);
  sc.record(id, SpanStage::kRxStamp, at_us(120), 1);
  sc.record(id, SpanStage::kIsrAssoc, at_us(130), 1);
  sc.record(id, SpanStage::kFused, at_us(200), 1);
  const std::string s = dump(sc);

  // Track metadata: one process plus a thread-name row per touched node.
  EXPECT_NE(s.find("\"process_name\""), std::string::npos);
  EXPECT_EQ(count_of(s, "\"thread_name\""), 2u);  // nodes 0 and 1

  // The root is an instant, every non-root event a duration slice.
  EXPECT_EQ(count_of(s, "\"ph\": \"i\""), 1u);
  EXPECT_EQ(count_of(s, "\"ph\": \"X\""), 6u);
  EXPECT_NE(s.find("\"name\": \"send_request\""), std::string::npos);
  EXPECT_NE(s.find("\"name\": \"medium_acquire\""), std::string::npos);

  // Async flow: one start, one finish, the rest steps -- all id'd by trace.
  EXPECT_EQ(count_of(s, "\"ph\": \"s\""), 1u);
  EXPECT_EQ(count_of(s, "\"ph\": \"f\""), 1u);
  EXPECT_EQ(count_of(s, "\"ph\": \"t\""), 5u);
  EXPECT_NE(s.find("\"id\": 1"), std::string::npos);

  // Timestamps are µs: medium_acquire spans 100us -> 110us, so its slice
  // starts at its parent instant with a 10us duration.
  EXPECT_NE(s.find("\"ts\": 100"), std::string::npos);
  EXPECT_NE(s.find("\"dur\": 10"), std::string::npos);
}

TEST(ChromeTrace, DiscardCarriesReasonArg) {
  SpanCollector sc;
  const std::uint64_t id = sc.begin_csp(2, at_us(0));
  sc.record(id, SpanStage::kDiscarded, at_us(3), 2,
            static_cast<std::int64_t>(DiscardReason::kRxOverrun));
  const std::string s = dump(sc);
  EXPECT_NE(s.find("\"name\": \"discarded\""), std::string::npos);
  EXPECT_NE(s.find("rx_overrun"), std::string::npos);
}

TEST(ChromeTrace, TwoTracesGetDistinctFlowIds) {
  SpanCollector sc;
  const std::uint64_t a = sc.begin_csp(0, at_us(1));
  const std::uint64_t b = sc.begin_csp(1, at_us(2));
  sc.record(a, SpanStage::kMediumAcquire, at_us(5), 0);
  sc.record(b, SpanStage::kMediumAcquire, at_us(6), 1);
  const std::string s = dump(sc);
  EXPECT_NE(s.find("\"id\": 1"), std::string::npos);
  EXPECT_NE(s.find("\"id\": 2"), std::string::npos);
}

}  // namespace
}  // namespace nti::obs
