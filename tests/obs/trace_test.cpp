#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace nti::obs {
namespace {

SimTime at_ps(std::int64_t ps) { return SimTime::from_ps(ps); }

TEST(TraceRing, RetainsInOrderBelowCapacity) {
  TraceRing ring(4);
  ring.push(at_ps(10), TraceType::kEventFired, -1, 1);
  ring.push(at_ps(20), TraceType::kFrameTx, 3, 7, 64);
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.at(0).t.count_ps(), 10);
  EXPECT_EQ(ring.at(1).t.count_ps(), 20);
  EXPECT_EQ(ring.at(1).type, TraceType::kFrameTx);
  EXPECT_EQ(ring.at(1).node, 3);
  EXPECT_EQ(ring.at(1).a, 7);
  EXPECT_EQ(ring.at(1).b, 64);
  EXPECT_EQ(ring.overwritten(), 0u);
}

TEST(TraceRing, OverwritesOldestWhenFull) {
  TraceRing ring(3);
  for (std::int64_t i = 0; i < 5; ++i)
    ring.push(at_ps(i), TraceType::kEventFired, -1, i);
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total_pushed(), 5u);
  EXPECT_EQ(ring.overwritten(), 2u);
  // Oldest retained is record #2; newest is #4.
  EXPECT_EQ(ring.at(0).a, 2);
  EXPECT_EQ(ring.at(1).a, 3);
  EXPECT_EQ(ring.at(2).a, 4);
}

TEST(TraceRing, ClearResetsRetainedAndCounters) {
  TraceRing ring(2);
  ring.push(at_ps(1), TraceType::kResync, 0, 1, -500);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_pushed(), 0u);
  ring.push(at_ps(2), TraceType::kCspStamp, 1, 0, 999);
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.at(0).type, TraceType::kCspStamp);
}

TEST(TraceRing, DumpCsvEmitsHeaderAndRowsOldestFirst) {
  TraceRing ring(8);
  ring.push(at_ps(100), TraceType::kFrameRx, 2, 5, 12345);
  ring.push(at_ps(200), TraceType::kResync, 1, 3, -42);
  std::ostringstream os;
  ring.dump_csv(os);
  EXPECT_EQ(os.str(),
            "t_ps,type,node,a,b\n"
            "100,frame_rx,2,5,12345\n"
            "200,resync,1,3,-42\n");
}

// Regression: after the ring wraps, dump_csv must emit exactly the retained
// records, oldest first, starting from the logical head -- not from physical
// index 0 (which after wraparound holds a newer record).
TEST(TraceRing, DumpCsvAfterWraparoundStartsAtOldest) {
  TraceRing ring(3);
  for (std::int64_t i = 0; i < 7; ++i)  // wraps twice: retains #4, #5, #6
    ring.push(at_ps(1000 + i), TraceType::kEventFired, -1, i);
  EXPECT_EQ(ring.overwritten(), 4u);
  std::ostringstream os;
  ring.dump_csv(os);
  EXPECT_EQ(os.str(),
            "t_ps,type,node,a,b\n"
            "1004,event_fired,-1,4,0\n"
            "1005,event_fired,-1,5,0\n"
            "1006,event_fired,-1,6,0\n");
}

TEST(TraceRing, TypeNames) {
  EXPECT_STREQ(to_string(TraceType::kEventFired), "event_fired");
  EXPECT_STREQ(to_string(TraceType::kFrameTx), "frame_tx");
  EXPECT_STREQ(to_string(TraceType::kFrameRx), "frame_rx");
  EXPECT_STREQ(to_string(TraceType::kCspStamp), "csp_stamp");
  EXPECT_STREQ(to_string(TraceType::kResync), "resync");
}

}  // namespace
}  // namespace nti::obs
