// SpanCollector memoization tests.
//
// record() keeps a one-entry cache of the last trace lookup and the last
// pair-histogram lookup.  These tests pin the property that the cache is
// purely an access-path optimization: feeding the same per-trace event
// sequences in cache-friendly (burst) order and in cache-hostile
// (interleaved, pair-churning) order must leave byte-identical state, and
// clear() must fully invalidate the cache so a reused collector matches a
// fresh one.  Histograms are compared against an unmemoized reference walk
// that recomputes them straight from the retained events.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/time_types.hpp"
#include "obs/histogram.hpp"
#include "obs/obs_build.hpp"

namespace nti {
namespace {

using obs::LogHistogram;
using obs::SpanCollector;
using obs::SpanEvent;
using obs::SpanStage;

/// Byte-exact fingerprint of a histogram's observable state.  LogHistogram
/// has no operator==; every accessor it exposes goes into the string, so
/// any divergence -- count, range, shape -- shows up as a mismatch.
std::string hist_bytes(const LogHistogram& h) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "n=%llu neg=%llu min=%.17g max=%.17g "
                "mean=%.17g p50=%.17g p90=%.17g p99=%.17g buckets=%zu",
                static_cast<unsigned long long>(h.count()),
                static_cast<unsigned long long>(h.negatives()), h.min(),
                h.max(), h.mean(), h.percentile(50), h.percentile(90),
                h.percentile(99), h.bucket_count());
  return buf;
}

std::string event_bytes(const SpanEvent& ev) {
  char buf[192];
  std::snprintf(buf, sizeof buf, "%llu|%d|%d|%d|%lld|%lld|%lld\n",
                static_cast<unsigned long long>(ev.trace),
                static_cast<int>(ev.stage), ev.node, ev.src,
                static_cast<long long>(ev.t_ps),
                static_cast<long long>(ev.parent_ps),
                static_cast<long long>(ev.detail));
  return buf;
}

std::string events_bytes(const std::vector<SpanEvent>& evs) {
  std::string out;
  for (const auto& ev : evs) out += event_bytes(ev);
  return out;
}

/// One scripted record (trace referenced by index into the begun-id list).
struct Rec {
  std::size_t trace_idx;
  SpanStage stage;
  int node;
  std::int64_t t_ps;
};

/// The stage ladder of one CSP from src with two receivers, offset in time
/// by `base` so traces do not collide.
std::vector<Rec> csp_script(std::size_t trace_idx, int src, int dst_a,
                            int dst_b, std::int64_t base) {
  std::vector<Rec> r;
  r.push_back({trace_idx, SpanStage::kMediumAcquire, src, base + 10});
  r.push_back({trace_idx, SpanStage::kTxTrigger, src, base + 25});
  r.push_back({trace_idx, SpanStage::kTxStampInsert, src, base + 27});
  for (const int dst : {dst_a, dst_b}) {
    const std::int64_t skew = dst * 3;
    r.push_back({trace_idx, SpanStage::kOnWire, dst, base + 40 + skew});
    r.push_back({trace_idx, SpanStage::kRxStamp, dst, base + 55 + skew});
    r.push_back({trace_idx, SpanStage::kIsrAssoc, dst, base + 70 + skew});
    r.push_back({trace_idx, SpanStage::kFused, dst, base + 90 + skew});
    r.push_back(
        {trace_idx, SpanStage::kCorrectionApplied, dst, base + 120 + skew});
  }
  return r;
}

void feed(SpanCollector& sc, const std::vector<std::uint64_t>& ids,
          const std::vector<Rec>& script) {
  for (const Rec& r : script) {
    sc.record(ids[r.trace_idx], r.stage, SimTime::from_ps(r.t_ps), r.node);
  }
}

/// Unmemoized reference walk: rebuild the stage/pair histograms directly
/// from the retained events, with no cache and no lookup reuse.
struct ReferenceHists {
  LogHistogram stage[obs::kNumSpanStages];
  // Keyed by (src, dst, stage) directly -- independent of the collector's
  // internal key packing.
  std::map<std::tuple<int, int, SpanStage>, LogHistogram> pair;

  explicit ReferenceHists(const SpanCollector& sc) {
    for (const SpanEvent& ev : sc.events()) {
      if (ev.parent_ps < 0) continue;
      const auto delta = static_cast<double>(ev.t_ps - ev.parent_ps);
      stage[static_cast<std::size_t>(ev.stage)].add(delta);
      pair[std::make_tuple(ev.src, ev.node, ev.stage)].add(delta);
    }
  }
};

/// Assert the collector's histograms are byte-identical to the reference
/// walk over its own retained events.
void expect_matches_reference(const SpanCollector& sc, const char* label) {
  const ReferenceHists ref(sc);
  for (std::size_t i = 0; i < obs::kNumSpanStages; ++i) {
    const auto stage = static_cast<SpanStage>(i);
    EXPECT_EQ(hist_bytes(sc.stage_histogram(stage)), hist_bytes(ref.stage[i]))
        << label << ": stage " << to_string(stage);
  }
  for (const auto& [key, ref_hist] : ref.pair) {
    const auto [src, dst, stage] = key;
    const LogHistogram* got = sc.pair_histogram(src, dst, stage);
    ASSERT_NE(got, nullptr)
        << label << ": missing pair " << src << "->" << dst;
    EXPECT_EQ(hist_bytes(*got), hist_bytes(ref_hist))
        << label << ": pair " << src << "->" << dst << " stage "
        << to_string(stage);
  }
}

class SpanMemoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kObsEnabled) GTEST_SKIP() << "NTI_OBS_OFF build";
  }
};

TEST_F(SpanMemoTest, BurstAndInterleavedOrdersLeaveIdenticalState) {
  // Three concurrent CSPs from different sources.  Collector A sees the
  // records trace-by-trace (every record after the first is a cache hit);
  // collector B sees them round-robin interleaved (the trace cache misses
  // on almost every record, the pair cache churns constantly).
  SpanCollector a, b;
  std::vector<std::uint64_t> ids_a, ids_b;
  for (int src = 0; src < 3; ++src) {
    ids_a.push_back(a.begin_csp(src, SimTime::from_ps(src)));
    ids_b.push_back(b.begin_csp(src, SimTime::from_ps(src)));
  }
  ASSERT_EQ(ids_a, ids_b);

  std::vector<std::vector<Rec>> scripts;
  for (int src = 0; src < 3; ++src) {
    scripts.push_back(csp_script(static_cast<std::size_t>(src), src,
                                 (src + 1) % 3, (src + 2) % 3, 1000 * src));
  }

  for (const auto& s : scripts) feed(a, ids_a, s);  // burst order
  for (std::size_t i = 0; i < scripts[0].size(); ++i) {  // interleaved
    for (const auto& s : scripts) {
      ASSERT_LT(i, s.size());
      b.record(ids_b[s[i].trace_idx], s[i].stage,
               SimTime::from_ps(s[i].t_ps), s[i].node);
    }
  }

  // Per-trace event streams are byte-identical (global retention order
  // legitimately differs; per-trace order and parentage must not).
  for (const std::uint64_t id : ids_a) {
    EXPECT_EQ(events_bytes(a.trace_events(id)), events_bytes(b.trace_events(id)))
        << "trace " << id;
  }
  EXPECT_EQ(a.event_count(), b.event_count());
  EXPECT_EQ(a.dropped_events(), b.dropped_events());
  // Histograms are byte-identical to each other and to the unmemoized
  // reference walk.
  for (std::size_t i = 0; i < obs::kNumSpanStages; ++i) {
    const auto stage = static_cast<SpanStage>(i);
    EXPECT_EQ(hist_bytes(a.stage_histogram(stage)),
              hist_bytes(b.stage_histogram(stage)))
        << "stage " << to_string(stage);
  }
  expect_matches_reference(a, "burst");
  expect_matches_reference(b, "interleaved");
}

TEST_F(SpanMemoTest, PairChurnNeverCorruptsHistograms) {
  // Alternate every record between two traces with disjoint (src, dst)
  // pairs: the one-entry pair cache is evicted on every single add.
  SpanCollector sc;
  const std::uint64_t t0 = sc.begin_csp(0, SimTime::from_ps(0));
  const std::uint64_t t1 = sc.begin_csp(7, SimTime::from_ps(1));
  for (int i = 0; i < 50; ++i) {
    const std::int64_t base = 100 + 10 * i;
    sc.record(t0, SpanStage::kOnWire, SimTime::from_ps(base), 3);
    sc.record(t1, SpanStage::kOnWire, SimTime::from_ps(base + 1), 9);
    sc.record(t0, SpanStage::kRxStamp, SimTime::from_ps(base + 2), 3);
    sc.record(t1, SpanStage::kRxStamp, SimTime::from_ps(base + 3), 9);
  }
  expect_matches_reference(sc, "pair-churn");
  const LogHistogram* h03 = sc.pair_histogram(0, 3, SpanStage::kRxStamp);
  const LogHistogram* h79 = sc.pair_histogram(7, 9, SpanStage::kRxStamp);
  ASSERT_NE(h03, nullptr);
  ASSERT_NE(h79, nullptr);
  EXPECT_EQ(h03->count(), 50u);
  EXPECT_EQ(h79->count(), 50u);
}

TEST_F(SpanMemoTest, ClearInvalidatesCacheAndMatchesFreshCollector) {
  // Feed a first generation, clear(), feed a second generation; a fresh
  // collector fed only the second generation must match byte-for-byte.
  // A stale cached_state_/cached_pair_ surviving clear() would either
  // corrupt the reused collector's state or crash under ASan.
  SpanCollector reused;
  std::vector<std::uint64_t> gen1;
  gen1.push_back(reused.begin_csp(1, SimTime::from_ps(0)));
  gen1.push_back(reused.begin_csp(2, SimTime::from_ps(5)));
  feed(reused, gen1, csp_script(0, 1, 0, 2, 100));
  feed(reused, gen1, csp_script(1, 2, 0, 1, 200));
  ASSERT_GT(reused.event_count(), 0u);

  reused.clear();
  EXPECT_EQ(reused.event_count(), 0u);
  EXPECT_EQ(reused.spans_started(), 0u);

  SpanCollector fresh;
  std::vector<std::uint64_t> ids_r, ids_f;
  ids_r.push_back(reused.begin_csp(4, SimTime::from_ps(0)));
  ids_f.push_back(fresh.begin_csp(4, SimTime::from_ps(0)));
  ASSERT_EQ(ids_r, ids_f);  // clear() also resets the trace-id counter
  const auto gen2 = csp_script(0, 4, 5, 6, 300);
  feed(reused, ids_r, gen2);
  feed(fresh, ids_f, gen2);

  EXPECT_EQ(events_bytes(reused.events()), events_bytes(fresh.events()));
  for (std::size_t i = 0; i < obs::kNumSpanStages; ++i) {
    const auto stage = static_cast<SpanStage>(i);
    EXPECT_EQ(hist_bytes(reused.stage_histogram(stage)),
              hist_bytes(fresh.stage_histogram(stage)))
        << "stage " << to_string(stage);
  }
  expect_matches_reference(reused, "reused");
  // Pair histograms from generation 1 are gone entirely.
  EXPECT_EQ(reused.pair_histogram(1, 0, SpanStage::kRxStamp), nullptr);
}

TEST_F(SpanMemoTest, UnknownAndZeroTracesBypassTheCache) {
  SpanCollector sc;
  const std::uint64_t id = sc.begin_csp(0, SimTime::from_ps(0));
  sc.record(id, SpanStage::kMediumAcquire, SimTime::from_ps(10), 0);
  const std::size_t before = sc.event_count();
  sc.record(0, SpanStage::kRxStamp, SimTime::from_ps(20), 1);     // "no span"
  sc.record(9999, SpanStage::kRxStamp, SimTime::from_ps(30), 1);  // unknown
  EXPECT_EQ(sc.event_count(), before);
  // The cached trace is still valid after the misses.
  sc.record(id, SpanStage::kTxTrigger, SimTime::from_ps(40), 0);
  EXPECT_EQ(sc.event_count(), before + 1);
  expect_matches_reference(sc, "miss-then-hit");
}

}  // namespace
}  // namespace nti
