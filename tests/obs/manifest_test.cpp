// RunManifest: build/run provenance attached to every bench report.
// Pins that current() captures non-empty provenance (so the collector's
// --expect gate has something to validate) and that to_json() emits the
// exact key set tools/collect_bench.py requires.
#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/obs_build.hpp"

namespace nti {
namespace {

TEST(RunManifest, CurrentCapturesBuildProvenance) {
  const obs::RunManifest m = obs::RunManifest::current();
  // Compile-time provenance comes from the configure step; it can say
  // "unknown" (e.g. tarball build with no git) but never be empty.
  EXPECT_FALSE(m.git_sha.empty());
  EXPECT_FALSE(m.compiler.empty());
  EXPECT_FALSE(m.build_type.empty());
  EXPECT_FALSE(m.preset.empty());
  EXPECT_FALSE(m.host.empty());
  EXPECT_EQ(m.obs_enabled, obs::kObsEnabled);
  EXPECT_GT(m.threads, 0u);
}

TEST(RunManifest, JsonContainsEveryRequiredKey) {
  obs::RunManifest m = obs::RunManifest::current();
  m.seed = 4242;
  const std::string json = m.to_json().str();
  // The key set validated by collect_bench.py --expect.
  for (const char* key : {"\"git_sha\"", "\"compiler\"", "\"build_type\"",
                          "\"preset\"", "\"host\"", "\"obs_enabled\"",
                          "\"seed\"", "\"threads\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_NE(json.find("4242"), std::string::npos);
}

TEST(RunManifest, JsonReflectsFieldValues) {
  obs::RunManifest m;
  m.git_sha = "abc123def456";
  m.compiler = "TestCC 1.0";
  m.build_type = "Release";
  m.preset = "unit-test";
  m.host = "testhost";
  m.obs_enabled = false;
  m.seed = 7;
  m.threads = 3;
  const std::string json = m.to_json().str();
  EXPECT_NE(json.find("\"git_sha\": \"abc123def456\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\": \"TestCC 1.0\""), std::string::npos);
  EXPECT_NE(json.find("\"build_type\": \"Release\""), std::string::npos);
  EXPECT_NE(json.find("\"preset\": \"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"host\": \"testhost\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_enabled\": false"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 3"), std::string::npos);
}

}  // namespace
}  // namespace nti
