// Regression: span export must be byte-identical across runs and across
// independently-built collectors fed the same event sequence.  The live
// per-trace state used to be an unordered_map, so anything iterating it
// (or future exporters doing so) depended on hash layout; the container is
// now ordered and this test pins the byte-identity contract end to end.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"

namespace nti::obs {
namespace {

SimTime at_us(std::int64_t us) { return SimTime::from_ps(us * 1'000'000); }

// Interleave many CSPs across several nodes so a hash-ordered live-trace
// map would have plenty of opportunity to reorder anything derived from it.
void play_interleaved(SpanCollector& sc) {
  std::uint64_t ids[40] = {};
  for (int i = 0; i < 40; ++i) {
    const int src = i % 5;
    ids[i] = sc.begin_csp(src, at_us(100 + i));
  }
  // Stages recorded out of begin order, fanning each CSP to two receivers.
  for (int i = 39; i >= 0; --i) {
    const int src = i % 5;
    sc.record(ids[i], SpanStage::kMediumAcquire, at_us(200 + i), src);
    for (int d = 1; d <= 2; ++d) {
      const int dst = (src + d) % 5;
      sc.record(ids[i], SpanStage::kOnWire, at_us(210 + i), dst);
      sc.record(ids[i], SpanStage::kRxStamp, at_us(220 + i), dst);
      sc.record(ids[i], SpanStage::kIsrAssoc, at_us(230 + i), dst);
      if (i % 3 == 0) {
        sc.record(ids[i], SpanStage::kDiscarded, at_us(240 + i), dst,
                  static_cast<std::int64_t>(DiscardReason::kLateArrival));
      } else {
        sc.record(ids[i], SpanStage::kFused, at_us(240 + i), dst);
        sc.record(ids[i], SpanStage::kCorrectionApplied, at_us(250 + i), dst,
                  -7 * i);
      }
    }
    sc.record(ids[i], SpanStage::kTxTrigger, at_us(205 + i), src);
    sc.record(ids[i], SpanStage::kTxStampInsert, at_us(206 + i), src);
  }
}

std::string chrome_json(const SpanCollector& sc) {
  std::ostringstream os;
  dump_chrome_trace(os, sc);
  return os.str();
}

TEST(SpanExportDeterminism, ChromeTraceBytesIdenticalAcrossCollectors) {
  SpanCollector a;
  SpanCollector b;
  play_interleaved(a);
  play_interleaved(b);
  const std::string ja = chrome_json(a);
  ASSERT_FALSE(ja.empty());
  EXPECT_EQ(ja, chrome_json(b));
  // Re-exporting the same collector must also be stable (no internal
  // mutation during export).
  EXPECT_EQ(ja, chrome_json(a));
}

TEST(SpanExportDeterminism, MetricsSnapshotIdenticalAcrossCollectors) {
  SpanCollector a;
  SpanCollector b;
  play_interleaved(a);
  play_interleaved(b);
  MetricsRegistry ra;
  MetricsRegistry rb;
  a.register_metrics(ra, "span.");
  b.register_metrics(rb, "span.");
  const std::string ja = ra.to_json();
  const std::string jb = rb.to_json();
  ASSERT_FALSE(ja.empty());
  EXPECT_EQ(ja, jb);
}

TEST(SpanExportDeterminism, TraceEventsIdenticalAcrossCollectors) {
  SpanCollector a;
  SpanCollector b;
  play_interleaved(a);
  play_interleaved(b);
  // Per-trace event sequences come back in recording order, field for
  // field, regardless of how many other traces were interleaved.
  for (std::uint64_t trace = 1; trace <= a.spans_started(); ++trace) {
    const auto ea = a.trace_events(trace);
    const auto eb = b.trace_events(trace);
    ASSERT_GE(ea.size(), 2u) << "trace=" << trace;
    ASSERT_EQ(ea.size(), eb.size()) << "trace=" << trace;
    EXPECT_EQ(ea.front().stage, SpanStage::kSendRequest);
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].stage, eb[i].stage) << "trace=" << trace << " i=" << i;
      EXPECT_EQ(ea[i].t_ps, eb[i].t_ps) << "trace=" << trace << " i=" << i;
      EXPECT_EQ(ea[i].parent_ps, eb[i].parent_ps);
      EXPECT_EQ(ea[i].node, eb[i].node);
      EXPECT_EQ(ea[i].detail, eb[i].detail);
    }
  }
}

}  // namespace
}  // namespace nti::obs
