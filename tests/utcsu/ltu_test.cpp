#include "utcsu/ltu.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "osc/oscillator.hpp"

namespace nti::utcsu {
namespace {

osc::OscConfig ideal() { return osc::OscConfig::ideal(10e6); }

struct Fixture {
  osc::QuartzOscillator osc{ideal(), RngStream(1)};
  Ltu ltu{osc, Phi::from_sec(0)};
};

SimTime at_sec(std::int64_t s) { return SimTime::epoch() + Duration::sec(s); }

TEST(Ltu, NominalStepValue) {
  // STEP = 2^51 / 10^7, about 225 x 10^6 phi per 100 ns tick.
  EXPECT_EQ(Ltu::nominal_step(10e6).value(), 225'179'981);
  EXPECT_NEAR(static_cast<double>(Ltu::nominal_step(10e6).value()) * 10e6,
              static_cast<double>(Phi::kPerSec), 1e7);
}

TEST(Ltu, TracksRealTimeWithIdealOscillator) {
  Fixture f;
  const Phi c = f.ltu.read(at_sec(10));
  // 10 s of ideal ticks: |C - 10 s| below one tick quantum + STEP rounding.
  const double err = std::abs(c.to_sec_f() - 10.0);
  EXPECT_LT(err, 1e-6);
}

TEST(Ltu, MonotoneReads) {
  Fixture f;
  Phi prev = f.ltu.read(SimTime::epoch());
  for (int i = 1; i < 500; ++i) {
    const Phi c = f.ltu.read(SimTime::from_ps(std::int64_t{i} * 333'333'333));
    EXPECT_GE(c.raw_value(), prev.raw_value());
    prev = c;
  }
}

TEST(Ltu, RateAdjustGranularity) {
  // Changing STEP by 1 changes the rate by f_osc * 2^-51 s/s (~4.4 ns/s at
  // 10 MHz): the paper's "fine-grained rate adjustable in steps of about
  // 10 ns/s".  Compare two clocks on the same oscillator, one nudged by a
  // single augend LSB.
  Fixture f;
  Ltu nudged(f.osc, Phi::from_sec(0));
  nudged.set_step(SimTime::epoch(), Ltu::nominal_step(10e6) + RateStep::raw(1));
  const Phi a = f.ltu.read(at_sec(100));
  const Phi b = nudged.read(at_sec(100));
  const double gained = (b - a).to_sec_f();
  const double expected = 100.0 * 10e6 / std::pow(2.0, 51);  // 100 s of +1 LSB
  EXPECT_NEAR(gained, expected, expected * 0.01);
}

TEST(Ltu, SetStateJumps) {
  Fixture f;
  f.ltu.read(at_sec(1));
  f.ltu.set_state(at_sec(1), Phi::from_sec(500));
  const Phi c = f.ltu.read(at_sec(2));
  EXPECT_NEAR(c.to_sec_f(), 501.0, 1e-5);
}

TEST(Ltu, AmortizationAppliesExactOffset) {
  Fixture f;
  f.ltu.read(at_sec(1));
  // Absorb +1 ms by running 0.1% fast: extra = step/1000 per tick.
  const RateStep step = f.ltu.step();
  const RateStep extra = step / 1000;
  const u128 want = Phi::from_duration(Duration::ms(1)).raw_value();
  const auto ticks = static_cast<std::uint64_t>(want / extra.magnitude());
  f.ltu.start_amortization(at_sec(1), step + extra, TickCount::of(ticks));
  EXPECT_TRUE(f.ltu.amortizing());

  // Amortization lasts ticks/10MHz ~ 1 s; read well past the end.
  const Phi c = f.ltu.read(at_sec(5));
  EXPECT_FALSE(f.ltu.amortizing());
  const double err = c.to_sec_f() - (5.0 + 1e-3);
  EXPECT_LT(std::abs(err), 5e-6);
}

TEST(Ltu, AmortizationKeepsClockMonotoneWhenSlowingDown) {
  Fixture f;
  f.ltu.read(at_sec(1));
  const RateStep step = f.ltu.step();
  const RateStep less = step / 500;
  f.ltu.start_amortization(at_sec(1), step - less, TickCount::of(1'000'000));
  Phi prev = f.ltu.read(at_sec(1));
  for (int i = 0; i < 100; ++i) {
    const Phi c = f.ltu.read(at_sec(1) + Duration::ms(5 * (i + 1)));
    EXPECT_GE(c.raw_value(), prev.raw_value());
    prev = c;
  }
}

TEST(Ltu, AbortAmortizationStopsSlew) {
  Fixture f;
  const RateStep step = f.ltu.step();
  f.ltu.start_amortization(SimTime::epoch(), step * 2, TickCount::of(10'000'000));  // huge
  f.ltu.read(at_sec(1));
  f.ltu.abort_amortization(at_sec(1));
  EXPECT_FALSE(f.ltu.amortizing());
  const Phi c1 = f.ltu.read(at_sec(1));
  const Phi c2 = f.ltu.read(at_sec(2));
  EXPECT_NEAR((c2 - c1).to_sec_f(), 1.0, 1e-6);  // back to nominal rate
}

TEST(Ltu, LeapInsertAddsSecondAtArmedValue) {
  Fixture f;
  f.ltu.arm_leap(true, Phi::from_sec(5));
  const Phi before = f.ltu.read(at_sec(4));
  EXPECT_LT(before.whole_seconds(), 5u);
  EXPECT_TRUE(f.ltu.leap_pending());
  const Phi after = f.ltu.read(at_sec(6));
  EXPECT_FALSE(f.ltu.leap_pending());
  // Clock jumped from 5 to 6 exactly when it reached 5: at real time 6 it
  // reads ~7 s.
  EXPECT_NEAR(after.to_sec_f(), 7.0, 1e-5);
}

TEST(Ltu, LeapDeleteRemovesSecond) {
  Fixture f;
  f.ltu.arm_leap(false, Phi::from_sec(5));
  const Phi after = f.ltu.read(at_sec(6));
  EXPECT_NEAR(after.to_sec_f(), 5.0, 1e-5);
}

TEST(Ltu, TickReachingProjectsThroughAmortization) {
  Fixture f;
  const RateStep step = f.ltu.step();
  // Slew fast for 1e6 ticks then nominal; target beyond the slew phase.
  f.ltu.start_amortization(SimTime::epoch(), step + step / 100,
                           TickCount::of(1'000'000));
  const TickCount tick = f.ltu.tick_reaching(Phi::from_sec(2));
  const SimTime when = f.osc.time_of_tick(tick.value());
  const Phi at = f.ltu.value_at_tick(tick);
  EXPECT_GE(at, Phi::from_sec(2));
  // One tick earlier must be below target.
  EXPECT_LT(f.ltu.value_at_tick(tick - TickCount::of(1)), Phi::from_sec(2));
  // Faster-than-nominal start -> reach 2 s slightly before real-time 2 s.
  EXPECT_LT(when, at_sec(2));
}

TEST(Ltu, ValueAtTickDoesNotCommitFutureState) {
  Fixture f;
  const std::uint64_t now_tick = f.osc.ticks_at(at_sec(1));
  f.ltu.read(at_sec(1));
  const Phi future = f.ltu.value_at_tick(TickCount::of(now_tick + 2));  // synchronizer peek
  EXPECT_GT(future, f.ltu.read(at_sec(1)));
  // A later normal read at the same instant is unaffected by the peek.
  const Phi again = f.ltu.read(at_sec(1));
  EXPECT_EQ(again.raw_value(), f.ltu.read(at_sec(1)).raw_value());
}

TEST(Ltu, CaptureTickAddsSynchronizerStages) {
  Fixture f;
  const SimTime t = at_sec(1) + Duration::ns(3);
  EXPECT_EQ(f.ltu.capture_tick(t, 1).value(), f.osc.ticks_at(t) + 1);
  EXPECT_EQ(f.ltu.capture_tick(t, 2).value(), f.osc.ticks_at(t) + 2);
}

// Regression: value_at_tick used to project under the current rate regime
// only, ignoring an armed leap second -- a capture stamp taken near the
// leap boundary disagreed with the committed clock by a whole second.
TEST(Ltu, ValueAtTickProjectsArmedLeapInsert) {
  Fixture f;
  f.ltu.arm_leap(true, Phi::from_sec(5));
  const Phi projected =
      f.ltu.value_at_tick(TickCount::of(f.osc.ticks_at(at_sec(6))));
  EXPECT_NEAR(projected.to_sec_f(), 7.0, 1e-5);
  // The peek must not consume the armed leap...
  EXPECT_TRUE(f.ltu.leap_pending());
  // ...and the committed clock must agree with the projection exactly.
  EXPECT_EQ(f.ltu.read(at_sec(6)).raw_value(), projected.raw_value());
}

TEST(Ltu, ValueAtTickProjectsArmedLeapDelete) {
  Fixture f;
  f.ltu.arm_leap(false, Phi::from_sec(5));
  const Phi projected =
      f.ltu.value_at_tick(TickCount::of(f.osc.ticks_at(at_sec(6))));
  EXPECT_NEAR(projected.to_sec_f(), 5.0, 1e-5);
  EXPECT_EQ(f.ltu.read(at_sec(6)).raw_value(), projected.raw_value());
}

}  // namespace
}  // namespace nti::utcsu
