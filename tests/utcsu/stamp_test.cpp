#include "utcsu/stamp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nti::utcsu {
namespace {

TEST(Stamp, PackDecodeRoundTrip) {
  const Phi t = Phi::from_duration(Duration::sec(1000) + Duration::us(123));
  const StampRegs r = pack_stamp(t, 0x0042, 0x0017);
  const DecodedStamp d = decode_stamp(r.timestamp, r.macrostamp, r.alpha);
  EXPECT_TRUE(d.checksum_ok);
  EXPECT_EQ(d.seconds, 1000u);
  EXPECT_EQ(d.alpha_minus, 0x0042);
  EXPECT_EQ(d.alpha_plus, 0x0017);
  // Reconstructed time within one granularity unit (2^-24 s ~ 59.6 ns).
  EXPECT_LE((d.time() - (Duration::sec(1000) + Duration::us(123))).abs(),
            Duration::ns(60));
}

TEST(Stamp, TimestampWrapsEvery256Seconds) {
  const StampRegs a = pack_stamp(Phi::from_sec(10), 0, 0);
  const StampRegs b = pack_stamp(Phi::from_sec(10 + 256), 0, 0);
  EXPECT_EQ(a.timestamp, b.timestamp);       // 32-bit stamp identical
  EXPECT_NE(a.macrostamp, b.macrostamp);     // macrostamp disambiguates
}

TEST(Stamp, ChecksumCoversWholeTime) {
  const StampRegs r = pack_stamp(Phi::from_sec(99), 1, 2);
  // Corrupt the seconds carried in the macrostamp; decode must notice.
  const DecodedStamp bad = decode_stamp(r.timestamp, r.macrostamp ^ 0x0100u, r.alpha);
  EXPECT_FALSE(bad.checksum_ok);
  // Corrupt the fraction in the timestamp; decode must notice too.
  const DecodedStamp bad2 = decode_stamp(r.timestamp ^ 1u, r.macrostamp, r.alpha);
  EXPECT_FALSE(bad2.checksum_ok);
}

TEST(Stamp, GranularityIsTwoToMinus24) {
  // One fraction LSB = 2^-24 s.
  const DecodedStamp a = decode_stamp(0x0000'0000, pack_stamp(Phi::raw(0), 0, 0).macrostamp, 0);
  (void)a;
  const Phi one_lsb = Phi::raw(u128{1} << (Phi::kFracBits - 24));
  const StampRegs r = pack_stamp(one_lsb, 0, 0);
  const DecodedStamp d = decode_stamp(r.timestamp, r.macrostamp, r.alpha);
  EXPECT_EQ(d.frac24, 1u);
  EXPECT_NEAR(d.time().to_sec_f(), std::pow(2.0, -24), 1e-12);
}

TEST(Stamp, AccuracyUnitConversion) {
  DecodedStamp d;
  d.alpha_minus = 1;  // one 2^-24 s unit
  d.alpha_plus = 17;
  EXPECT_NEAR(d.acc_minus().to_sec_f(), std::pow(2.0, -24), 1e-12);
  EXPECT_NEAR(d.acc_plus().to_sec_f(), 17 * std::pow(2.0, -24), 1e-11);
}

TEST(Stamp, PhiReconstructionMatchesTruncation) {
  const Phi t = Phi::from_duration(Duration::ms(123456));
  const StampRegs r = pack_stamp(t, 0, 0);
  const DecodedStamp d = decode_stamp(r.timestamp, r.macrostamp, r.alpha);
  // to_phi truncates below 2^-24 s: difference in [0, 2^-24).
  const PhiDelta diff = t - d.to_phi();
  EXPECT_GE(diff.raw_value(), 0);
  EXPECT_LT(diff.raw_value(), i128{1} << (Phi::kFracBits - 24));
}

}  // namespace
}  // namespace nti::utcsu
