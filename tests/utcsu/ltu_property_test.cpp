// Property sweeps over the lazy adder-clock arithmetic: for a matrix of
// oscillator classes and rate regimes, the closed-form advance must agree
// with the definitionally correct (but slow) per-tick evaluation, and the
// duty-timer inversion must be exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include <string>

#include "osc/oscillator.hpp"
#include "utcsu/ltu.hpp"

namespace nti::utcsu {
namespace {

struct LtuCase {
  const char* osc_kind;  // "ideal" | "tcxo" | "cheap"
  double f_mhz;
  double step_scale;     // STEP = nominal * scale
  std::uint64_t seed;
};

osc::OscConfig config_of(const LtuCase& c) {
  if (std::string(c.osc_kind) == "ideal") return osc::OscConfig::ideal(c.f_mhz * 1e6);
  if (std::string(c.osc_kind) == "tcxo") return osc::OscConfig::tcxo(c.f_mhz * 1e6);
  return osc::OscConfig::cheap_xo(c.f_mhz * 1e6);
}

class LtuProperty : public ::testing::TestWithParam<LtuCase> {};

TEST_P(LtuProperty, ClosedFormMatchesPerTickSum) {
  const LtuCase c = GetParam();
  osc::QuartzOscillator osc(config_of(c), RngStream(c.seed));
  Ltu ltu(osc, Phi::from_sec(3));
  const auto step = static_cast<std::uint64_t>(
      static_cast<double>(Ltu::nominal_step(c.f_mhz * 1e6).value()) *
      c.step_scale);
  ltu.set_step(SimTime::epoch(), RateStep::raw(static_cast<std::int64_t>(step)));

  // Reference: value(tick n) = initial + n * step (no amortization).
  // Reads advance internal state, so probe in time order.
  RngStream probe(c.seed ^ 0x9999);
  std::vector<std::int64_t> times;
  for (int i = 0; i < 50; ++i) times.push_back(probe.uniform_int(1, 2'000'000'000'000));
  std::sort(times.begin(), times.end());
  for (const std::int64_t ps : times) {
    const SimTime t = SimTime::from_ps(ps);
    const std::uint64_t n = osc.ticks_at(t);
    const Phi expect = Phi::from_sec(3) + Phi::raw(u128{step} * n);
    EXPECT_EQ(ltu.read(t).raw_value(), expect.raw_value()) << "t=" << ps;
  }
}

TEST_P(LtuProperty, TickReachingIsExactInverse) {
  const LtuCase c = GetParam();
  osc::QuartzOscillator osc(config_of(c), RngStream(c.seed));
  Ltu ltu(osc, Phi::from_sec(0));
  const auto step = static_cast<std::uint64_t>(
      static_cast<double>(Ltu::nominal_step(c.f_mhz * 1e6).value()) *
      c.step_scale);
  ltu.set_step(SimTime::epoch(), RateStep::raw(static_cast<std::int64_t>(step)));

  RngStream probe(c.seed ^ 0x7777);
  for (int i = 0; i < 30; ++i) {
    const Phi target = Phi::from_duration(
        Duration::ps(probe.uniform_int(1'000'000, 900'000'000'000)));
    const TickCount n = ltu.tick_reaching(target);
    EXPECT_GE(ltu.value_at_tick(n), target);
    if (n > TickCount::zero()) {
      EXPECT_LT(ltu.value_at_tick(n - TickCount::of(1)), target);
    }
  }
}

TEST_P(LtuProperty, AmortizationConservesTotalAdjustment) {
  const LtuCase c = GetParam();
  osc::QuartzOscillator osc(config_of(c), RngStream(c.seed));
  Ltu ltu(osc, Phi::from_sec(0));
  const SimTime t0 = SimTime::epoch() + Duration::ms(10);
  const Phi base = ltu.read(t0);
  const std::uint64_t step = ltu.step().magnitude();
  const std::uint64_t dpt = std::max<std::uint64_t>(1, step / 777);
  const std::uint64_t ticks = 1'000'000;
  ltu.start_amortization(t0,
                         RateStep::raw(static_cast<std::int64_t>(step + dpt)),
                         TickCount::of(ticks));
  // Far beyond amortization end.
  const SimTime t1 = t0 + Duration::sec(2);
  const std::uint64_t n0 = osc.ticks_at(t0);
  const std::uint64_t n1 = osc.ticks_at(t1);
  const Phi got = ltu.read(t1);
  const Phi expect =
      base + Phi::raw(u128{step} * (n1 - n0) + u128{dpt} * ticks);
  EXPECT_EQ(got.raw_value(), expect.raw_value());
}

TEST_P(LtuProperty, ReadsAreMonotoneAcrossRegimeChanges) {
  const LtuCase c = GetParam();
  osc::QuartzOscillator osc(config_of(c), RngStream(c.seed));
  Ltu ltu(osc, Phi::from_sec(0));
  RngStream chaos(c.seed ^ 0x5555);
  Phi prev = ltu.read(SimTime::epoch());
  SimTime t = SimTime::epoch();
  for (int i = 0; i < 200; ++i) {
    t += Duration::ps(chaos.uniform_int(1000, 30'000'000'000));
    switch (chaos.uniform_int(0, 3)) {
      case 0:
        ltu.set_step(t, ltu.step() + RateStep::raw(chaos.uniform_int(-500, 500)));
        break;
      case 1:
        ltu.start_amortization(
            t, ltu.step() + ltu.step() / 200,
            TickCount::of(static_cast<std::uint64_t>(chaos.uniform_int(1, 200'000))));
        break;
      case 2:
        ltu.abort_amortization(t);
        break;
      default:
        break;
    }
    const Phi now = ltu.read(t);
    EXPECT_GE(now.raw_value(), prev.raw_value()) << "i=" << i;
    prev = now;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LtuProperty,
    ::testing::Values(LtuCase{"ideal", 10, 1.0, 1}, LtuCase{"tcxo", 10, 1.0, 2},
                      LtuCase{"cheap", 10, 1.0, 3}, LtuCase{"tcxo", 1, 1.0, 4},
                      LtuCase{"tcxo", 20, 1.0, 5}, LtuCase{"tcxo", 10, 0.5, 6},
                      LtuCase{"tcxo", 10, 2.0, 7}, LtuCase{"ideal", 14, 1.0, 8}),
    [](const ::testing::TestParamInfo<LtuCase>& tpi) {
      return std::string(tpi.param.osc_kind) + "_f" +
             std::to_string(static_cast<int>(tpi.param.f_mhz)) + "_s" +
             std::to_string(static_cast<int>(tpi.param.step_scale * 10)) + "_" +
             std::to_string(tpi.param.seed);
    });

}  // namespace
}  // namespace nti::utcsu
