#include "utcsu/utcsu.hpp"

#include <gtest/gtest.h>

#include "osc/oscillator.hpp"
#include "sim/engine.hpp"

namespace nti::utcsu {
namespace {

struct Fixture {
  sim::Engine engine;
  osc::QuartzOscillator osc{osc::OscConfig::ideal(10e6), RngStream(1)};
  Utcsu chip{engine, osc, UtcsuConfig{}};

  SimTime at(std::int64_t us) { return SimTime::epoch() + Duration::us(us); }
};

TEST(Utcsu, IdRegister) {
  Fixture f;
  EXPECT_EQ(f.chip.bus_read(SimTime::epoch(), kRegIdVersion), kIdVersionValue);
}

TEST(Utcsu, AtomicTimestampMacrostampPair) {
  Fixture f;
  // Set the clock close to a 256 s wrap boundary, then read the pair.
  const Phi near_wrap = Phi::from_duration(Duration::sec(255) + Duration::ms(999));
  f.chip.ltu().set_state(SimTime::epoch(), near_wrap);
  const SimTime t = f.at(1'500'000);  // 1.5 s later: clock past the wrap
  const std::uint32_t ts = f.chip.bus_read(t, kRegTimestamp);
  const std::uint32_t macro = f.chip.bus_read(t, kRegMacrostamp);
  const DecodedStamp d = decode_stamp(ts, macro, 0);
  EXPECT_TRUE(d.checksum_ok);
  EXPECT_EQ(d.seconds, 257u);  // 255.999 + 1.5 = 257.499
}

TEST(Utcsu, MacrostampShadowIsStable) {
  Fixture f;
  const std::uint32_t ts = f.chip.bus_read(f.at(10), kRegTimestamp);
  const std::uint32_t m1 = f.chip.bus_read(f.at(20), kRegMacrostamp);
  const std::uint32_t m2 = f.chip.bus_read(f.at(30), kRegMacrostamp);
  EXPECT_EQ(m1, m2);  // latched at the timestamp read, not live
  EXPECT_TRUE(decode_stamp(ts, m1, 0).checksum_ok);
}

TEST(Utcsu, TransmitTriggerCapturesIntoSsu) {
  Fixture f;
  f.chip.trigger_transmit(0, f.at(1000));
  const StampRegs s = f.chip.ssu_tx(0);
  ASSERT_TRUE(s.valid);
  const DecodedStamp d = decode_stamp(s.timestamp, s.macrostamp, s.alpha);
  EXPECT_TRUE(d.checksum_ok);
  // Sampled at most 2 synchronizer ticks (200 ns) after the trigger.
  EXPECT_GE(d.time(), Duration::us(1000) - Duration::ns(60));
  EXPECT_LE(d.time(), Duration::us(1000) + Duration::ns(260));
}

TEST(Utcsu, ReceiveTriggerSetsStatusAndInterrupt) {
  Fixture f;
  f.chip.bus_write(SimTime::epoch(), kRegIntEnable, int_bit(IntSource::kSsuRx0, 2));
  bool intn = false;
  f.chip.on_int_line = [&](IntLine line, bool level) {
    if (line == IntLine::kIntN) intn = level;
  };
  f.chip.trigger_receive(2, f.at(5));
  EXPECT_TRUE(intn);
  const std::uint32_t status =
      f.chip.bus_read(f.at(6), kRegSsuBase + 2 * kSsuStride + kSsuStatus);
  EXPECT_TRUE(status & kSsuStatusRxValid);
  // Ack clears status and drops the line.
  f.chip.bus_write(f.at(7), kRegSsuBase + 2 * kSsuStride + kSsuStatus,
                   kSsuStatusRxValid);
  f.chip.bus_write(f.at(7), kRegIntAck, int_bit(IntSource::kSsuRx0, 2));
  EXPECT_FALSE(intn);
}

TEST(Utcsu, BackToBackReceiveSetsOverrun) {
  Fixture f;
  f.chip.trigger_receive(0, f.at(5));
  f.chip.trigger_receive(0, f.at(6));
  const std::uint32_t status =
      f.chip.bus_read(f.at(7), kRegSsuBase + kSsuStatus);
  EXPECT_TRUE(status & kSsuStatusRxOverrun);
}

TEST(Utcsu, SixIndependentSsus) {
  Fixture f;
  for (int i = 0; i < kNumSsu; ++i) {
    f.chip.trigger_receive(i, f.at(10 + i));
  }
  for (int i = 0; i < kNumSsu; ++i) {
    EXPECT_TRUE(f.chip.ssu_rx(i).valid) << i;
  }
  // Distinct capture instants -> distinct stamps.
  EXPECT_NE(f.chip.ssu_rx(0).timestamp, f.chip.ssu_rx(5).timestamp);
}

TEST(Utcsu, GpuAndApuCapture) {
  Fixture f;
  f.chip.pps_pulse(1, f.at(42));
  f.chip.app_pulse(7, f.at(43));
  EXPECT_TRUE(f.chip.gpu_stamp(1).valid);
  EXPECT_TRUE(f.chip.apu_stamp(7).valid);
  EXPECT_FALSE(f.chip.gpu_stamp(0).valid);
  const std::uint32_t gstat = f.chip.bus_read(f.at(44), kRegGpuBase + kGpuStride + kGpuStatus);
  EXPECT_EQ(gstat & 1u, 1u);
}

TEST(Utcsu, StepWriteCommitsOnHighWord) {
  Fixture f;
  const std::uint64_t want = 0x0000'0001'2345'6789ull;
  f.chip.bus_write(f.at(1), kRegStepLo, static_cast<std::uint32_t>(want));
  // Low write alone must not take effect yet.
  EXPECT_NE(f.chip.ltu().step().reg64(), want);
  f.chip.bus_write(f.at(1), kRegStepHi, static_cast<std::uint32_t>(want >> 32));
  EXPECT_EQ(f.chip.ltu().step().reg64(), want);
}

TEST(Utcsu, TimeSetAppliesAtomicallyWithAccuracies) {
  Fixture f;
  const Phi target = Phi::from_sec(77);
  const u128 raw = target.raw_value();
  f.chip.bus_write(f.at(1), kRegTimeSet0, static_cast<std::uint32_t>(raw));
  f.chip.bus_write(f.at(1), kRegTimeSet1, static_cast<std::uint32_t>(raw >> 32));
  f.chip.bus_write(f.at(1), kRegTimeSet2, static_cast<std::uint32_t>(raw >> 64));
  f.chip.bus_write(f.at(1), kRegAccSetMinus, 5);
  f.chip.bus_write(f.at(1), kRegAccSetPlus, 9);
  f.chip.bus_write(f.at(1), kRegCtrl, kCtrlApplyTimeSet);
  EXPECT_EQ(f.chip.clock(f.at(2)).whole_seconds(), 77u);
  EXPECT_EQ(f.chip.bus_read(f.at(2), kRegAlphaMinus), 5u);
  EXPECT_EQ(f.chip.bus_read(f.at(2), kRegAlphaPlus), 9u);
}

TEST(Utcsu, ApplyAccSetAloneKeepsClock) {
  Fixture f;
  const Phi before = f.chip.clock(f.at(10));
  f.chip.bus_write(f.at(10), kRegAccSetMinus, 3);
  f.chip.bus_write(f.at(10), kRegAccSetPlus, 4);
  f.chip.bus_write(f.at(10), kRegCtrl, kCtrlApplyAccSet);
  EXPECT_EQ(f.chip.bus_read(f.at(11), kRegAlphaMinus), 3u);
  const Phi after = f.chip.clock(f.at(11));
  EXPECT_NEAR(after.to_sec_f() - before.to_sec_f(), 1e-6, 1e-7);
}

TEST(Utcsu, SnapshotUnitCaptures) {
  Fixture f;
  f.chip.hw_snapshot(f.at(123));
  const StampRegs s = f.chip.snapshot();
  ASSERT_TRUE(s.valid);
  const DecodedStamp d = decode_stamp(s.timestamp, s.macrostamp, s.alpha);
  EXPECT_TRUE(d.checksum_ok);
  EXPECT_EQ(f.chip.bus_read(f.at(124), kRegSnapStatus) & 1u, 1u);
  f.chip.bus_write(f.at(124), kRegSnapStatus, 1u);
  EXPECT_EQ(f.chip.bus_read(f.at(125), kRegSnapStatus) & 1u, 0u);
}

TEST(Utcsu, BtuChecksumMatchesTime) {
  Fixture f;
  const std::uint32_t ts = f.chip.bus_read(f.at(50), kRegTimestamp);
  const std::uint32_t macro = f.chip.bus_read(f.at(50), kRegMacrostamp);
  (void)ts;
  // The BTU checksum register equals the checksum in the macrostamp for a
  // read at the same instant (same oscillator tick).
  EXPECT_EQ(f.chip.bus_read(f.at(50), kRegBtuChecksum), macro & 0xFFu);
}

TEST(Utcsu, BtuSelftestPasses) {
  Fixture f;
  EXPECT_EQ(f.chip.bus_read(f.at(1), kRegBtuSelftest), 1u);
}

TEST(Utcsu, InterruptMaskGatesLines) {
  Fixture f;
  int transitions = 0;
  f.chip.on_int_line = [&](IntLine, bool) { ++transitions; };
  f.chip.trigger_receive(0, f.at(1));  // not enabled: no line change
  EXPECT_EQ(transitions, 0);
  f.chip.bus_write(f.at(2), kRegIntEnable, int_bit(IntSource::kSsuRx0, 0));
  EXPECT_EQ(transitions, 1);  // enabling with pending status raises the line
}

TEST(Utcsu, InterruptLinesRouteByClass) {
  Fixture f;
  f.chip.bus_write(f.at(1), kRegIntEnable, ~0u);
  bool n = false, t = false, a = false;
  f.chip.on_int_line = [&](IntLine line, bool level) {
    if (line == IntLine::kIntN) n = level;
    if (line == IntLine::kIntT) t = level;
    if (line == IntLine::kIntA) a = level;
  };
  f.chip.trigger_transmit(3, f.at(2));
  EXPECT_TRUE(n);
  EXPECT_FALSE(t);
  f.chip.pps_pulse(0, f.at(3));
  EXPECT_TRUE(a);
}

}  // namespace
}  // namespace nti::utcsu
