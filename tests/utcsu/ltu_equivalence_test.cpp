// Bit-equivalence pin against the pre-strong-typing implementation.
//
// The strong-typed LTU/ACU API (TickCount / RateStep / AlphaUnits) is a
// pure re-typing: every recorded value below was captured from the raw
// uint64_t implementation immediately before the migration, replaying the
// exact same operation sequence on the same deterministic TCXO.  Any drift
// in these comparisons means the refactor changed numeric behavior, which
// it must never do.
#include <gtest/gtest.h>

#include "common/phi.hpp"
#include "osc/oscillator.hpp"
#include "utcsu/acu.hpp"
#include "utcsu/ltu.hpp"

namespace nti::utcsu {
namespace {

TEST(LtuEquivalence, RecordedVectorMatchesSeedImplementation) {
  // Drifting (but deterministic) TCXO: the sequence exercises rate changes,
  // amortization, both leap directions, synchronizer projection, and the
  // duty-timer inversion -- each compared bit-for-bit.
  osc::QuartzOscillator osc(osc::OscConfig::tcxo(10e6), RngStream(42));
  Ltu ltu(osc, Phi::from_sec(5));
  const SimTime e = SimTime::epoch();

  EXPECT_EQ(ltu.read(e + Duration::sec(1)).raw_value(),
            u128{0x002fffffffc7c480ull});
  ltu.set_step(e + Duration::sec(1),
               Ltu::nominal_step(10e6) + RateStep::raw(17));
  EXPECT_EQ(ltu.read(e + Duration::sec(2)).raw_value(),
            u128{0x0038000009b18780ull});

  const RateStep step = ltu.step();
  ltu.start_amortization(e + Duration::sec(2), step + step / 500,
                         TickCount::of(2'000'000));
  EXPECT_EQ(ltu.read(e + Duration::ms(2100)).raw_value(),
            u128{0x0038cd35b2f916c0ull});
  EXPECT_EQ(ltu.value_at_tick(
                   TickCount::of(osc.ticks_at(e + Duration::ms(2150)) + 2))
                .raw_value(),
            u128{0x003933d0a2828f8aull});
  EXPECT_EQ(ltu.read(e + Duration::sec(3)).raw_value(),
            u128{0x004000d1ca954200ull});

  ltu.arm_leap(true, Phi::from_sec(9));
  EXPECT_EQ(ltu.read(e + Duration::sec(6)).raw_value(),
            u128{0x006000d1e8528b00ull});
  EXPECT_EQ(ltu.tick_reaching(Phi::from_sec(12)).value(), 0x03938700ull);

  ltu.arm_leap(false, Phi::from_sec(13));
  EXPECT_EQ(ltu.read(e + Duration::sec(9)).raw_value(),
            u128{0x007000d2137bcd5eull});

  ltu.set_step(e + Duration::sec(9),
               Ltu::nominal_step(10e6) - RateStep::raw(31));
  ltu.start_amortization(e + Duration::sec(9),
                         ltu.step() - ltu.step() / 1000,
                         TickCount::of(500'000));
  EXPECT_EQ(ltu.read(e + Duration::sec(10)).raw_value(),
            u128{0x007800b7c9ede9feull});
  EXPECT_EQ(ltu.capture_tick(e + Duration::ms(10'500), 2).value(),
            0x06422c43ull);
  EXPECT_EQ(ltu.value_at_tick(ltu.capture_tick(e + Duration::ms(10'500), 2))
                .raw_value(),
            u128{0x007c00b7db6ca1daull});
}

TEST(AcuEquivalence, RecordedDeteriorationMatchesSeedImplementation) {
  AccuracyCell c;
  c.set(TickCount::of(0), AlphaUnits::of(3));
  c.set_lambda(TickCount::of(0), RateStep::raw(450));
  EXPECT_EQ(c.read_at_tick(TickCount::of(100'000)).value(), 0x0003);
  EXPECT_EQ(c.read_at_tick(TickCount::of(10'000'000)).value(), 0x0024);
  c.set_lambda(TickCount::of(10'000'000),
               -RateStep::raw(static_cast<std::int64_t>(
                   AccuracyCell::kPhiPerUnit)));
  EXPECT_EQ(c.read_at_tick(TickCount::of(10'000'040)).value(), 0x0000);
  EXPECT_EQ(c.read_at_tick(TickCount::of(20'000'000)).value(), 0x0000);
  c.set(TickCount::of(20'000'000), AlphaUnits::of(0xFFF0));
  c.set_lambda(TickCount::of(20'000'000),
               RateStep::raw(static_cast<std::int64_t>(
                   AccuracyCell::kPhiPerUnit)) * 7);
  EXPECT_EQ(c.read_at_tick(TickCount::of(20'000'100)).value(), 0xFFFF);
  EXPECT_EQ(c.raw_at_tick(TickCount::of(20'000'200)), 0x000007fff8000000ull);
}

}  // namespace
}  // namespace nti::utcsu
