#include "utcsu/acu.hpp"

#include <gtest/gtest.h>

#include "osc/oscillator.hpp"

namespace nti::utcsu {
namespace {

TEST(AccuracyCell, DeterioratesLinearly) {
  AccuracyCell c;
  c.set(0, 0);
  c.set_lambda(0, static_cast<std::int64_t>(AccuracyCell::kPhiPerUnit));  // 1 unit per tick
  EXPECT_EQ(c.read_at_tick(5), 5);
  EXPECT_EQ(c.read_at_tick(100), 100);
}

TEST(AccuracyCell, SetOverridesAccumulated) {
  AccuracyCell c;
  c.set_lambda(0, static_cast<std::int64_t>(AccuracyCell::kPhiPerUnit));
  c.read_at_tick(50);
  c.set(50, 7);
  EXPECT_EQ(c.read_at_tick(50), 7);
  EXPECT_EQ(c.read_at_tick(53), 10);
}

TEST(AccuracyCell, SaturatesInsteadOfWrapping) {
  // Wrap suppression (paper Sec. 3.3): a stale accuracy must never shrink.
  AccuracyCell c;
  c.set(0, 0xFFFE);
  c.set_lambda(0, static_cast<std::int64_t>(AccuracyCell::kPhiPerUnit) * 100);
  EXPECT_EQ(c.read_at_tick(1'000'000), 0xFFFF);
  EXPECT_EQ(c.read_at_tick(2'000'000), 0xFFFF);
}

TEST(AccuracyCell, ZeroMasksNegative) {
  // Zero-masking during amortization: a shrinking accuracy clamps at 0.
  AccuracyCell c;
  c.set(0, 10);
  c.set_lambda(0, -static_cast<std::int64_t>(AccuracyCell::kPhiPerUnit));
  EXPECT_EQ(c.read_at_tick(5), 5);
  EXPECT_EQ(c.read_at_tick(10), 0);
  EXPECT_EQ(c.read_at_tick(100), 0);  // stays clamped, no wrap to 0xFFFF
}

TEST(AccuracyCell, SubUnitLambdaAccumulates) {
  // Realistic deterioration: ~2 ppm of a 100 ns tick is far below one
  // 60 ns unit per tick; growth must still appear over enough ticks.
  AccuracyCell c;
  c.set(0, 0);
  // 450 phi/tick (2 ppm at 10 MHz); one unit = 2^27 phi -> ~298k ticks/unit.
  c.set_lambda(0, 450);
  EXPECT_EQ(c.read_at_tick(100'000), 0);
  EXPECT_GE(c.read_at_tick(10'000'000), 30);  // 1 s -> ~33 units (~2 us)
  EXPECT_LE(c.read_at_tick(10'000'000), 36);
}

TEST(Acu, PackedCombinesBothCells) {
  osc::QuartzOscillator osc(osc::OscConfig::ideal(10e6), RngStream(1));
  Acu acu(osc);
  acu.minus().set(0, 0x1234);
  acu.plus().set(0, 0x5678);
  EXPECT_EQ(acu.packed_at_tick(0), 0x1234'5678u);
}

TEST(Acu, StagedApplyIsAtomicPair) {
  osc::QuartzOscillator osc(osc::OscConfig::ideal(10e6), RngStream(1));
  Acu acu(osc);
  acu.stage(100, 200);
  EXPECT_EQ(acu.alpha_minus(SimTime::epoch()), 0);  // not yet applied
  acu.apply_staged(SimTime::epoch() + Duration::ms(1));
  EXPECT_EQ(acu.alpha_minus(SimTime::epoch() + Duration::ms(1)), 100);
  EXPECT_EQ(acu.alpha_plus(SimTime::epoch() + Duration::ms(1)), 200);
}

TEST(Acu, AlphaReadsTrackRealTime) {
  osc::QuartzOscillator osc(osc::OscConfig::ideal(10e6), RngStream(1));
  Acu acu(osc);
  acu.stage(0, 0);
  acu.apply_staged(SimTime::epoch());
  const auto lambda = static_cast<std::int64_t>(AccuracyCell::kPhiPerUnit);  // 1 unit/tick
  acu.minus().set_lambda(0, lambda);
  // After 1 ms at 10 MHz: 10,000 ticks -> 10,000 units.
  EXPECT_EQ(acu.alpha_minus(SimTime::epoch() + Duration::ms(1)), 10'000);
}

}  // namespace
}  // namespace nti::utcsu
