#include "utcsu/acu.hpp"

#include <gtest/gtest.h>

#include "osc/oscillator.hpp"

namespace nti::utcsu {
namespace {

TickCount tick(std::uint64_t n) { return TickCount::of(n); }

TEST(AccuracyCell, DeterioratesLinearly) {
  AccuracyCell c;
  c.set(tick(0), AlphaUnits::of(0));
  c.set_lambda(tick(0), RateStep::raw(static_cast<std::int64_t>(
                            AccuracyCell::kPhiPerUnit)));  // 1 unit per tick
  EXPECT_EQ(c.read_at_tick(tick(5)).value(), 5);
  EXPECT_EQ(c.read_at_tick(tick(100)).value(), 100);
}

TEST(AccuracyCell, SetOverridesAccumulated) {
  AccuracyCell c;
  c.set_lambda(tick(0), RateStep::raw(static_cast<std::int64_t>(
                            AccuracyCell::kPhiPerUnit)));
  c.read_at_tick(tick(50));
  c.set(tick(50), AlphaUnits::of(7));
  EXPECT_EQ(c.read_at_tick(tick(50)).value(), 7);
  EXPECT_EQ(c.read_at_tick(tick(53)).value(), 10);
}

TEST(AccuracyCell, SaturatesInsteadOfWrapping) {
  // Wrap suppression (paper Sec. 3.3): a stale accuracy must never shrink.
  AccuracyCell c;
  c.set(tick(0), AlphaUnits::of(0xFFFE));
  c.set_lambda(tick(0), RateStep::raw(static_cast<std::int64_t>(
                            AccuracyCell::kPhiPerUnit)) * 100);
  EXPECT_EQ(c.read_at_tick(tick(1'000'000)).value(), 0xFFFF);
  EXPECT_TRUE(c.read_at_tick(tick(1'000'000)).is_saturated());
  EXPECT_EQ(c.read_at_tick(tick(2'000'000)).value(), 0xFFFF);
}

TEST(AccuracyCell, ZeroMasksNegative) {
  // Zero-masking during amortization: a shrinking accuracy clamps at 0.
  AccuracyCell c;
  c.set(tick(0), AlphaUnits::of(10));
  c.set_lambda(tick(0), -RateStep::raw(static_cast<std::int64_t>(
                            AccuracyCell::kPhiPerUnit)));
  EXPECT_EQ(c.read_at_tick(tick(5)).value(), 5);
  EXPECT_EQ(c.read_at_tick(tick(10)).value(), 0);
  EXPECT_EQ(c.read_at_tick(tick(100)).value(), 0);  // stays clamped, no wrap to 0xFFFF
}

TEST(AccuracyCell, SubUnitLambdaAccumulates) {
  // Realistic deterioration: ~2 ppm of a 100 ns tick is far below one
  // 60 ns unit per tick; growth must still appear over enough ticks.
  AccuracyCell c;
  c.set(tick(0), AlphaUnits::of(0));
  // 450 phi/tick (2 ppm at 10 MHz); one unit = 2^27 phi -> ~298k ticks/unit.
  c.set_lambda(tick(0), RateStep::raw(450));
  EXPECT_EQ(c.read_at_tick(tick(100'000)).value(), 0);
  EXPECT_GE(c.read_at_tick(tick(10'000'000)).value(), 30);  // 1 s -> ~33 units (~2 us)
  EXPECT_LE(c.read_at_tick(tick(10'000'000)).value(), 36);
}

TEST(Acu, PackedCombinesBothCells) {
  osc::QuartzOscillator osc(osc::OscConfig::ideal(10e6), RngStream(1));
  Acu acu(osc);
  acu.minus().set(tick(0), AlphaUnits::of(0x1234));
  acu.plus().set(tick(0), AlphaUnits::of(0x5678));
  EXPECT_EQ(acu.packed_at_tick(tick(0)), 0x1234'5678u);
}

TEST(Acu, StagedApplyIsAtomicPair) {
  osc::QuartzOscillator osc(osc::OscConfig::ideal(10e6), RngStream(1));
  Acu acu(osc);
  acu.stage(AlphaUnits::of(100), AlphaUnits::of(200));
  EXPECT_EQ(acu.alpha_minus(SimTime::epoch()).value(), 0);  // not yet applied
  acu.apply_staged(SimTime::epoch() + Duration::ms(1));
  EXPECT_EQ(acu.alpha_minus(SimTime::epoch() + Duration::ms(1)).value(), 100);
  EXPECT_EQ(acu.alpha_plus(SimTime::epoch() + Duration::ms(1)).value(), 200);
}

TEST(Acu, AlphaReadsTrackRealTime) {
  osc::QuartzOscillator osc(osc::OscConfig::ideal(10e6), RngStream(1));
  Acu acu(osc);
  acu.stage(AlphaUnits::of(0), AlphaUnits::of(0));
  acu.apply_staged(SimTime::epoch());
  const auto lambda = RateStep::raw(
      static_cast<std::int64_t>(AccuracyCell::kPhiPerUnit));  // 1 unit/tick
  acu.minus().set_lambda(tick(0), lambda);
  // After 1 ms at 10 MHz: 10,000 ticks -> 10,000 units.
  EXPECT_EQ(acu.alpha_minus(SimTime::epoch() + Duration::ms(1)).value(), 10'000);
}

}  // namespace
}  // namespace nti::utcsu
