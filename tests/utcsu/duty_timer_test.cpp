#include <gtest/gtest.h>

#include "osc/oscillator.hpp"
#include "sim/engine.hpp"
#include "utcsu/utcsu.hpp"

namespace nti::utcsu {
namespace {

struct Fixture {
  sim::Engine engine;
  osc::QuartzOscillator osc{osc::OscConfig::ideal(10e6), RngStream(1)};
  Utcsu chip{engine, osc, UtcsuConfig{}};

  void arm(int timer, Duration clock_value) {
    const Phi phi = Phi::from_duration(clock_value);
    const RegOffset base = kRegDutyBase + static_cast<RegOffset>(timer) * kDutyStride;
    const SimTime now = engine.now();
    chip.bus_write(now, base + kDutyCompareLo, phi.frac24());
    chip.bus_write(now, base + kDutyCompareHi,
                   static_cast<std::uint32_t>(phi.whole_seconds() & 0xFF'FFFF));
    chip.bus_write(now, base + kDutyCtrl, 1);
  }

  bool fired(int timer) {
    const RegOffset base = kRegDutyBase + static_cast<RegOffset>(timer) * kDutyStride;
    return chip.bus_read(engine.now(), base + kDutyStatus) & 1u;
  }
};

TEST(DutyTimer, FiresWhenClockReachesCompare) {
  Fixture f;
  f.chip.bus_write(SimTime::epoch(), kRegIntEnable, int_bit(IntSource::kDuty0, 0));
  SimTime fire_time = SimTime::never();
  f.chip.on_int_line = [&](IntLine line, bool level) {
    if (line == IntLine::kIntT && level) fire_time = f.engine.now();
  };
  f.arm(0, Duration::ms(500));
  f.engine.run_until(SimTime::epoch() + Duration::sec(1));
  // Ideal oscillator: the clock reads 500 ms at real time ~500 ms.
  ASSERT_NE(fire_time, SimTime::never());
  EXPECT_NEAR(fire_time.to_sec_f(), 0.5, 1e-5);
  EXPECT_TRUE(f.fired(0));
}

TEST(DutyTimer, FiringTracksRateChanges) {
  Fixture f;
  // Run the clock at half speed; a 500 ms compare then fires at ~1 s real.
  const std::uint64_t half = Ltu::nominal_step(10e6).reg64() / 2;
  f.chip.bus_write(SimTime::epoch(), kRegStepLo, static_cast<std::uint32_t>(half));
  f.chip.bus_write(SimTime::epoch(), kRegStepHi, static_cast<std::uint32_t>(half >> 32));
  f.chip.bus_write(SimTime::epoch(), kRegIntEnable, int_bit(IntSource::kDuty0, 1));
  SimTime fire_time = SimTime::never();
  f.chip.on_int_line = [&](IntLine line, bool level) {
    if (line == IntLine::kIntT && level) fire_time = f.engine.now();
  };
  f.arm(1, Duration::ms(500));
  f.engine.run_until(SimTime::epoch() + Duration::sec(2));
  ASSERT_NE(fire_time, SimTime::never());
  EXPECT_NEAR(fire_time.to_sec_f(), 1.0, 1e-4);
}

TEST(DutyTimer, RearmedOnStepChangeMidFlight) {
  Fixture f;
  f.chip.bus_write(SimTime::epoch(), kRegIntEnable, int_bit(IntSource::kDuty0, 0));
  SimTime fire_time = SimTime::never();
  f.chip.on_int_line = [&](IntLine line, bool level) {
    if (line == IntLine::kIntT && level) fire_time = f.engine.now();
  };
  f.arm(0, Duration::ms(800));
  // At 400 ms real time, double the clock speed: remaining 400 clock-ms
  // take only 200 real-ms -> fire at ~600 ms.
  f.engine.schedule_at(SimTime::epoch() + Duration::ms(400), [&f] {
    const std::uint64_t dbl = Ltu::nominal_step(10e6).reg64() * 2;
    f.chip.bus_write(f.engine.now(), kRegStepLo, static_cast<std::uint32_t>(dbl));
    f.chip.bus_write(f.engine.now(), kRegStepHi, static_cast<std::uint32_t>(dbl >> 32));
  });
  f.engine.run_until(SimTime::epoch() + Duration::sec(1));
  ASSERT_NE(fire_time, SimTime::never());
  EXPECT_NEAR(fire_time.to_sec_f(), 0.6, 1e-3);
}

TEST(DutyTimer, PastCompareFiresImmediately) {
  Fixture f;
  f.engine.run_until(SimTime::epoch() + Duration::ms(100));
  f.chip.bus_write(f.engine.now(), kRegIntEnable, int_bit(IntSource::kDuty0, 2));
  bool fired = false;
  f.chip.on_int_line = [&](IntLine line, bool level) {
    if (line == IntLine::kIntT && level) fired = true;
  };
  f.arm(2, Duration::ms(50));  // already passed
  f.engine.run_until(f.engine.now() + Duration::ms(1));
  EXPECT_TRUE(fired);
}

TEST(DutyTimer, DisarmCancels) {
  Fixture f;
  f.arm(3, Duration::ms(100));
  const RegOffset base = kRegDutyBase + 3 * kDutyStride;
  f.chip.bus_write(f.engine.now(), base + kDutyCtrl, 0);  // disarm
  f.engine.run_until(SimTime::epoch() + Duration::ms(200));
  EXPECT_FALSE(f.fired(3));
}

TEST(DutyTimer, StatusIsWrite1Clear) {
  Fixture f;
  f.arm(0, Duration::ms(10));
  f.engine.run_until(SimTime::epoch() + Duration::ms(20));
  EXPECT_TRUE(f.fired(0));
  f.chip.bus_write(f.engine.now(), kRegDutyBase + kDutyStatus, 1u);
  EXPECT_FALSE(f.fired(0));
}

TEST(DutyTimer, EightTimersIndependent) {
  Fixture f;
  for (int i = 0; i < kNumDutyTimers; ++i) {
    f.arm(i, Duration::ms(10 * (i + 1)));
  }
  f.engine.run_until(SimTime::epoch() + Duration::ms(45));
  for (int i = 0; i < kNumDutyTimers; ++i) {
    EXPECT_EQ(f.fired(i), i < 4) << "timer " << i;
  }
}

TEST(DutyTimer, FiresThroughAmortization) {
  Fixture f;
  // Start a fast amortization, then arm a timer whose target falls inside
  // the slew phase; the firing time must reflect the faster clock.
  const std::uint64_t step = Ltu::nominal_step(10e6).reg64();
  f.chip.bus_write(SimTime::epoch(), kRegAmortStepLo,
                   static_cast<std::uint32_t>(step * 2));
  f.chip.bus_write(SimTime::epoch(), kRegAmortStepHi,
                   static_cast<std::uint32_t>((step * 2) >> 32));
  f.chip.bus_write(SimTime::epoch(), kRegAmortTicksLo, 10'000'000);  // 1 s worth
  f.chip.bus_write(SimTime::epoch(), kRegAmortTicksHi, 0);
  f.chip.bus_write(SimTime::epoch(), kRegCtrl, kCtrlStartAmort);
  f.arm(0, Duration::ms(600));
  f.engine.run_until(SimTime::epoch() + Duration::sec(1));
  // Clock runs 2x: reaches 600 ms at ~300 ms real time.
  EXPECT_TRUE(f.fired(0));
}

}  // namespace
}  // namespace nti::utcsu
