// Unit tests for the declarative fault plan: builder field mapping, kind
// queries, and the round-trip to the legacy gps::FaultWindow mechanism.
#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/fault.hpp"

namespace nti::fault {
namespace {

const SimTime kT4 = SimTime::epoch() + Duration::sec(4);
const SimTime kT9 = SimTime::epoch() + Duration::sec(9);

TEST(FaultPlan, BuildersFillTheRightFields) {
  const FaultSpec loss = FaultSpec::frame_loss(0.25, kT4, kT9, 2);
  EXPECT_EQ(loss.kind, Kind::kFrameLoss);
  EXPECT_DOUBLE_EQ(loss.rate, 0.25);
  EXPECT_EQ(loss.node, 2);
  EXPECT_EQ(loss.start, kT4);
  EXPECT_EQ(loss.end, kT9);

  const FaultSpec cut = FaultSpec::partition({3, 4}, kT4, kT9);
  EXPECT_EQ(cut.kind, Kind::kPartition);
  EXPECT_EQ(cut.group, (std::vector<int>{3, 4}));

  const FaultSpec crash = FaultSpec::node_crash(1, kT4, kT9, Duration::us(250));
  EXPECT_EQ(crash.kind, Kind::kNodeCrash);
  EXPECT_EQ(crash.node, 1);
  EXPECT_EQ(crash.magnitude, Duration::us(250));

  const FaultSpec yank =
      FaultSpec::clock_yank(4, Duration::ms(3), Duration::ms(700), kT4);
  EXPECT_EQ(yank.kind, Kind::kClockYank);
  EXPECT_EQ(yank.magnitude, Duration::ms(3));
  EXPECT_EQ(yank.period, Duration::ms(700));
  EXPECT_EQ(yank.end, SimTime::never());

  const FaultSpec step = FaultSpec::freq_step(2, 1.5, kT4, kT9);
  EXPECT_EQ(step.kind, Kind::kFreqStep);
  EXPECT_DOUBLE_EQ(step.ppm, 1.5);

  const FaultSpec babble =
      FaultSpec::babbling_idiot(0, kT4, kT9, Duration::us(600), 256);
  EXPECT_EQ(babble.kind, Kind::kBabblingIdiot);
  EXPECT_EQ(babble.period, Duration::us(600));
  EXPECT_EQ(babble.param, 256);

  const FaultSpec miss = FaultSpec::missed_trigger(0.1);
  EXPECT_EQ(miss.kind, Kind::kMissedTrigger);
  EXPECT_EQ(miss.node, -1);  // every node by default
  EXPECT_EQ(miss.start, SimTime::epoch());
  EXPECT_EQ(miss.end, SimTime::never());
}

TEST(FaultPlan, OfKindPreservesPlanOrder) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.add(FaultSpec::frame_loss(0.1))
      .add(FaultSpec::frame_corrupt(0.2))
      .add(FaultSpec::frame_loss(0.3, kT4, kT9));
  EXPECT_FALSE(plan.empty());
  const auto losses = plan.of_kind(Kind::kFrameLoss);
  ASSERT_EQ(losses.size(), 2u);
  EXPECT_DOUBLE_EQ(losses[0]->rate, 0.1);
  EXPECT_DOUBLE_EQ(losses[1]->rate, 0.3);
  EXPECT_EQ(plan.of_kind(Kind::kNodeCrash).size(), 0u);
}

TEST(FaultPlan, GpsKindPredicate) {
  EXPECT_TRUE(is_gps_kind(Kind::kGpsOffsetSpike));
  EXPECT_TRUE(is_gps_kind(Kind::kGpsRamp));
  EXPECT_FALSE(is_gps_kind(Kind::kFrameLoss));
  EXPECT_FALSE(is_gps_kind(Kind::kClockYank));
}

TEST(FaultPlan, GpsWindowRoundTrip) {
  gps::FaultWindow w{gps::FaultKind::kOffsetSpike, kT4, kT9, Duration::ms(5)};
  const FaultSpec s = from_gps_window(3, w);
  EXPECT_EQ(s.kind, Kind::kGpsOffsetSpike);
  EXPECT_EQ(s.node, 3);
  const gps::FaultWindow back = to_gps_window(s);
  EXPECT_EQ(back.kind, w.kind);
  EXPECT_EQ(back.start, w.start);
  EXPECT_EQ(back.end, w.end);
  EXPECT_EQ(back.magnitude, w.magnitude);

  gps::FaultWindow stuck{gps::FaultKind::kStuck, kT4, kT9};
  stuck.ramp_per_sec = Duration::us(7);
  const gps::FaultWindow stuck2 = to_gps_window(from_gps_window(0, stuck));
  EXPECT_EQ(stuck2.kind, gps::FaultKind::kStuck);
  EXPECT_EQ(stuck2.ramp_per_sec, Duration::us(7));

  gps::FaultWindow wrong{gps::FaultKind::kWrongSecond, kT4, kT9};
  wrong.label_offset = -2;
  const gps::FaultWindow wrong2 = to_gps_window(from_gps_window(0, wrong));
  EXPECT_EQ(wrong2.kind, gps::FaultKind::kWrongSecond);
  EXPECT_EQ(wrong2.label_offset, -2);

  EXPECT_EQ(to_gps_window(FaultSpec::gps_omission(1, kT4, kT9)).kind,
            gps::FaultKind::kOmission);
  EXPECT_EQ(to_gps_window(FaultSpec::gps_ramp(1, Duration::ns(50), kT4, kT9))
                .ramp_per_sec,
            Duration::ns(50));
}

TEST(FaultPlan, ToStringCoversEveryKind) {
  for (std::size_t k = 0; k < kNumKinds; ++k) {
    EXPECT_STRNE(to_string(static_cast<Kind>(k)), "unknown");
  }
}

TEST(FaultPlan, ShardedBuildersFillTheRightFields) {
  const FaultSpec cut = FaultSpec::gateway_partition(1, kT4, kT9);
  EXPECT_EQ(cut.kind, Kind::kGatewayPartition);
  EXPECT_EQ(cut.node, 1);  // link index, by convention
  EXPECT_EQ(cut.start, kT4);
  EXPECT_EQ(cut.end, kT9);

  const FaultSpec loss = FaultSpec::gateway_capsule_loss(0.4);
  EXPECT_EQ(loss.kind, Kind::kGatewayCapsuleLoss);
  EXPECT_DOUBLE_EQ(loss.rate, 0.4);
  EXPECT_EQ(loss.node, -1);  // every link by default

  const FaultSpec spike =
      FaultSpec::gateway_delay_spike(0.2, Duration::ms(5), 0, kT4, kT9);
  EXPECT_EQ(spike.kind, Kind::kGatewayDelaySpike);
  EXPECT_EQ(spike.magnitude, Duration::ms(5));
  EXPECT_EQ(spike.node, 0);

  const FaultSpec corrupt = FaultSpec::capsule_corrupt(0.1, 2);
  EXPECT_EQ(corrupt.kind, Kind::kCapsuleCorrupt);
  EXPECT_DOUBLE_EQ(corrupt.rate, 0.1);
  EXPECT_EQ(corrupt.node, 2);

  const FaultSpec crash = FaultSpec::segment_crash(1, kT4, kT9, Duration::us(80));
  EXPECT_EQ(crash.kind, Kind::kSegmentCrash);
  EXPECT_EQ(crash.node, 1);  // segment index, by convention
  EXPECT_EQ(crash.magnitude, Duration::us(80));
}

TEST(FaultPlan, KindPredicates) {
  EXPECT_TRUE(is_gateway_kind(Kind::kGatewayPartition));
  EXPECT_TRUE(is_gateway_kind(Kind::kGatewayCapsuleLoss));
  EXPECT_TRUE(is_gateway_kind(Kind::kGatewayDelaySpike));
  EXPECT_TRUE(is_gateway_kind(Kind::kCapsuleCorrupt));
  EXPECT_FALSE(is_gateway_kind(Kind::kSegmentCrash));
  EXPECT_FALSE(is_gateway_kind(Kind::kPartition));
  EXPECT_TRUE(is_sharded_kind(Kind::kSegmentCrash));
  EXPECT_TRUE(is_sharded_kind(Kind::kGatewayPartition));
  EXPECT_FALSE(is_sharded_kind(Kind::kNodeCrash));
}

TEST(FaultPlanValidate, AcceptsAWellFormedPlan) {
  FaultPlan plan;
  plan.add(FaultSpec::frame_loss(0.1))
      .add(FaultSpec::node_crash(2, kT4, kT9))
      .add(FaultSpec::partition({0, 1}, kT4, kT9))
      .add(FaultSpec::gateway_partition(1, kT4, kT9))
      .add(FaultSpec::gateway_capsule_loss(0.3))
      .add(FaultSpec::segment_crash(1, kT4, kT9));
  EXPECT_NO_THROW(plan.validate(/*num_nodes=*/3, /*num_segments=*/2,
                                /*num_links=*/2));
}

TEST(FaultPlanValidate, RejectsNonexistentNode) {
  FaultPlan plan;
  plan.add(FaultSpec::node_crash(5, kT4, kT9));
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
  FaultPlan group;
  group.add(FaultSpec::partition({1, 7}, kT4, kT9));
  EXPECT_THROW(group.validate(4), std::invalid_argument);
  FaultPlan wildcard;
  wildcard.add(FaultSpec::clock_yank(-1, Duration::ms(1), Duration::ms(500)));
  EXPECT_THROW(wildcard.validate(4), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsShardedKindsOnSingleSegment) {
  FaultPlan plan;
  plan.add(FaultSpec::gateway_capsule_loss(0.2));
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
  FaultPlan crash;
  crash.add(FaultSpec::segment_crash(0, kT4, kT9));
  EXPECT_THROW(crash.validate(4, /*num_segments=*/1), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsNonexistentLinkOrSegment) {
  FaultPlan link;
  link.add(FaultSpec::gateway_partition(3, kT4, kT9));
  EXPECT_THROW(link.validate(4, /*num_segments=*/3, /*num_links=*/2),
               std::invalid_argument);
  FaultPlan seg;
  seg.add(FaultSpec::segment_crash(3, kT4, kT9));
  EXPECT_THROW(seg.validate(4, /*num_segments=*/3, /*num_links=*/2),
               std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsOverlappingCrashWindows) {
  const SimTime t6 = SimTime::epoch() + Duration::sec(6);
  const SimTime t12 = SimTime::epoch() + Duration::sec(12);
  FaultPlan nodes;
  nodes.add(FaultSpec::node_crash(1, kT4, kT9))
      .add(FaultSpec::node_crash(1, t6, t12));
  EXPECT_THROW(nodes.validate(4), std::invalid_argument);

  // Same windows on *different* targets are fine.
  FaultPlan disjoint;
  disjoint.add(FaultSpec::node_crash(1, kT4, kT9))
      .add(FaultSpec::node_crash(2, t6, t12));
  EXPECT_NO_THROW(disjoint.validate(4));

  FaultPlan segs;
  segs.add(FaultSpec::segment_crash(1, kT4, kT9))
      .add(FaultSpec::segment_crash(1, t6, t12));
  EXPECT_THROW(segs.validate(4, /*num_segments=*/2), std::invalid_argument);

  // A segment 0 crash covers every plan-local node: overlap with any
  // node_crash is rejected.
  FaultPlan mixed;
  mixed.add(FaultSpec::segment_crash(0, kT4, kT9))
      .add(FaultSpec::node_crash(2, t6, t12));
  EXPECT_THROW(mixed.validate(4, /*num_segments=*/2), std::invalid_argument);

  // Back-to-back (touching, not overlapping) windows are fine.
  FaultPlan touching;
  touching.add(FaultSpec::node_crash(1, kT4, t6))
      .add(FaultSpec::node_crash(1, t6, t12));
  EXPECT_NO_THROW(touching.validate(4));
}

}  // namespace
}  // namespace nti::fault
