// Integration tests for fault::Injector: every injector kind enacted
// against a live cluster, checking (a) the fault actually happens (counters
// + trace records), (b) the sync machinery degrades gracefully -- the
// containment invariant holds on non-faulty nodes and precision recovers.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "cluster/cluster.hpp"

namespace nti {
namespace {

using fault::FaultSpec;
using fault::Kind;

SimTime at(double sec) { return SimTime::epoch() + Duration::from_sec_f(sec); }

cluster::ClusterConfig base_cfg(int n, int f) {
  cluster::ClusterConfig c;
  c.num_nodes = n;
  c.seed = 20260806;
  c.sync.fault_tolerance = f;
  return c;
}

std::uint64_t trace_count(obs::TraceRing* ring, obs::TraceType type,
                          std::int64_t kind) {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < ring->size(); ++i) {
    const obs::TraceRecord& r = ring->at(i);
    if (r.type == type && r.a == kind) ++n;
  }
  return n;
}

TEST(Injector, NoPlanMeansNoInjector) {
  cluster::Cluster cl(base_cfg(2, 0));
  EXPECT_EQ(cl.fault_injector(), nullptr);
}

TEST(Injector, InjectedFrameLossIsCountedTracedAndTolerated) {
  auto cfg = base_cfg(4, 1);
  cfg.trace_capacity = 1 << 14;
  cfg.faults.add(FaultSpec::frame_loss(0.15));
  cluster::Cluster cl(cfg);
  cl.start();
  cl.run(Duration::sec(12), Duration::sec(4));

  ASSERT_NE(cl.fault_injector(), nullptr);
  const std::uint64_t losses = cl.fault_injector()->injections(Kind::kFrameLoss);
  EXPECT_GT(losses, 0u);
  EXPECT_EQ(losses, cl.medium().injected_losses());
  // No silent degradation: every drop is attributed per receiving station
  // and visible in the trace with its cause.
  std::uint64_t station_drops = 0;
  for (int i = 0; i < cl.size(); ++i) {
    station_drops += static_cast<std::uint64_t>(cl.metrics().value(
        "net.medium.station" + std::to_string(i) + ".drops"));
  }
  EXPECT_GE(station_drops, losses);
  std::uint64_t traced = 0;
  for (std::size_t i = 0; i < cl.trace()->size(); ++i) {
    const obs::TraceRecord& r = cl.trace()->at(i);
    if (r.type == obs::TraceType::kFrameDrop &&
        r.b == static_cast<std::int64_t>(obs::DiscardReason::kInjectedLoss)) {
      ++traced;
    }
  }
  EXPECT_GT(traced, 0u);
  // 15% loss leaves >= 2 of 3 peer CSPs per round on average: sync holds.
  EXPECT_EQ(cl.containment_violations(), 0u);
  EXPECT_LT(cl.precision_samples().percentile_duration(99), Duration::us(10));
  EXPECT_GT(cl.metrics().value("fault.injected.frame_loss"), 0.0);
}

TEST(Injector, CorruptedStampsAreRejectedByTheChecksum) {
  auto cfg = base_cfg(4, 1);
  cfg.faults.add(FaultSpec::frame_corrupt(0.2));
  cluster::Cluster cl(cfg);
  cl.start();
  cl.run(Duration::sec(12), Duration::sec(4));

  EXPECT_GT(cl.medium().corrupted_frames(), 0u);
  std::uint64_t checksum_failures = 0, invalid = 0;
  for (int i = 0; i < cl.size(); ++i) {
    checksum_failures += cl.node(i).driver().stats().checksum_failures;
    invalid += cl.sync(i).csps_invalid();
  }
  // Every corrupted CSP must be caught: the flip lands in the checksummed
  // stamp words, so receivers see a checksum failure and the CSA discards
  // the observation instead of fusing a wrong interval.
  EXPECT_GT(checksum_failures, 0u);
  EXPECT_GT(invalid, 0u);
  EXPECT_EQ(cl.containment_violations(), 0u);
  EXPECT_LT(cl.precision_samples().percentile_duration(99), Duration::us(10));
}

TEST(Injector, PartitionHealsAndReconverges) {
  auto cfg = base_cfg(5, 1);
  cfg.trace_capacity = 1 << 12;
  cfg.faults.add(FaultSpec::partition({3, 4}, at(5.0), at(9.0)));
  cluster::Cluster cl(cfg);
  cl.start();
  cl.run(Duration::sec(18), Duration::sec(14));

  EXPECT_GT(cl.medium().partition_drops(), 0u);
  EXPECT_EQ(cl.fault_injector()->injections(Kind::kPartition), 1u);
  EXPECT_EQ(trace_count(cl.trace(), obs::TraceType::kFaultInject,
                        static_cast<std::int64_t>(Kind::kPartition)),
            1u);
  EXPECT_EQ(trace_count(cl.trace(), obs::TraceType::kFaultClear,
                        static_cast<std::int64_t>(Kind::kPartition)),
            1u);
  // Intervals stay honest while the sides drift apart (containment is per
  // node against truth), and after healing the cluster re-converges: all
  // post-14 s probes see tight precision again.
  EXPECT_EQ(cl.containment_violations(), 0u);
  EXPECT_LT(cl.precision_samples().max_duration(), Duration::us(10));
}

TEST(Injector, DelaySpikesAreAbsorbedByConvergence) {
  auto cfg = base_cfg(4, 1);
  cfg.faults.add(FaultSpec::delay_spike(0.02, Duration::us(100)));
  cluster::Cluster cl(cfg);
  cl.start();
  cl.run(Duration::sec(14), Duration::sec(4));

  EXPECT_GT(cl.fault_injector()->injections(Kind::kDelaySpike), 0u);
  // A spiked delivery violates the delay-compensation bound, producing one
  // faulty interval; f = 1 convergence drops it.
  EXPECT_EQ(cl.containment_violations(), 0u);
  EXPECT_LT(cl.precision_samples().percentile_duration(99), Duration::us(10));
}

TEST(Injector, CrashedNodeRejoinsWithinBoundedRounds) {
  auto cfg = base_cfg(5, 1);
  cfg.trace_capacity = 1 << 12;
  const SimTime crash = at(6.0), restart = at(10.0);
  cfg.faults.add(FaultSpec::node_crash(4, crash, restart, Duration::us(300)));
  cluster::Cluster cl(cfg);
  cl.start();

  // Containment watchdog on the surviving nodes while 4 is down/rejoining.
  std::uint64_t nonfaulty_violations = 0;
  SimTime reconverged = SimTime::never();
  cl.on_probe = [&](const cluster::ProbeSample& s) {
    const Duration truth = s.t - SimTime::epoch();
    for (int i = 0; i < 4; ++i) {
      const auto iv = cl.sync(i).current_interval(s.t);
      if (truth < iv.lower() || truth > iv.upper()) ++nonfaulty_violations;
    }
    // First post-restart probe where the rejoined node is back in the fold.
    if (s.t > restart && reconverged == SimTime::never() &&
        s.precision < Duration::us(10)) {
      reconverged = s.t;
    }
  };
  cl.run(Duration::sec(24), Duration::sec(4));

  EXPECT_TRUE(cl.sync(4).running()) << "node 4 did not restart";
  EXPECT_GT(cl.medium().node_down_drops(), 0u);
  EXPECT_EQ(cl.fault_injector()->injections(Kind::kNodeCrash), 1u);
  EXPECT_EQ(cl.fault_injector()->recoveries(), 1u);
  EXPECT_EQ(nonfaulty_violations, 0u);
  ASSERT_NE(reconverged, SimTime::never()) << "node 4 never re-converged";
  const double rounds_to_rejoin =
      (reconverged - restart).to_sec_f() / cfg.sync.round_period.to_sec_f();
  EXPECT_LE(rounds_to_rejoin, 10.0);
  EXPECT_EQ(trace_count(cl.trace(), obs::TraceType::kFaultClear,
                        static_cast<std::int64_t>(Kind::kNodeCrash)),
            1u);
}

TEST(Injector, MissedTriggerInvalidatesStampsNotCorrectness) {
  auto cfg = base_cfg(4, 1);
  cfg.faults.add(FaultSpec::missed_trigger(0.3, /*node=*/2));
  cluster::Cluster cl(cfg);
  cl.start();
  cl.run(Duration::sec(14), Duration::sec(4));

  EXPECT_GT(cl.fault_injector()->injections(Kind::kMissedTrigger), 0u);
  // Node 2 delivers those CSPs with rx_stamp_valid = false; the CSA
  // discards them as invalid rather than using garbage.
  EXPECT_GT(cl.sync(2).csps_invalid(), 0u);
  EXPECT_EQ(cl.containment_violations(), 0u);
  EXPECT_LT(cl.precision_samples().percentile_duration(99), Duration::us(10));
}

TEST(Injector, StaleLatchDegradesOnlyTheFaultyNode) {
  auto cfg = base_cfg(4, 1);
  cfg.faults.add(FaultSpec::stale_latch(1.0, /*node=*/1, at(4.0), at(10.0)));
  cluster::Cluster cl(cfg);
  cl.start();

  // Node 1's latch never updates: stamps that are a round old get caught
  // by the driver's 50 ms freshness check (stamps_stale), but a stale
  // stamp from the *same* round burst is only milliseconds old -- fresh
  // enough to pass, and wrong.  Node 1 is thereby a genuinely faulty node;
  // f = 1 must confine the damage to it.
  std::uint64_t nonfaulty_violations = 0;
  Duration worst_subset_precision = Duration::zero();
  cl.on_probe = [&](const cluster::ProbeSample& s) {
    const Duration truth = s.t - SimTime::epoch();
    Duration lo = Duration::max(), hi = -Duration::max();
    for (const int i : {0, 2, 3}) {
      const auto iv = cl.sync(i).current_interval(s.t);
      if (truth < iv.lower() || truth > iv.upper()) ++nonfaulty_violations;
      const Duration c = cl.node(i).true_clock(s.t);
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    worst_subset_precision = std::max(worst_subset_precision, hi - lo);
  };
  cl.run(Duration::sec(14), Duration::sec(4));

  EXPECT_GT(cl.fault_injector()->injections(Kind::kStaleLatch), 0u);
  EXPECT_GT(cl.node(1).driver().stats().stamps_stale, 0u);
  EXPECT_EQ(nonfaulty_violations, 0u);
  EXPECT_LT(worst_subset_precision, Duration::us(10));
}

TEST(Injector, FrequencyStepWithinDriftBoundIsRateSynced) {
  auto cfg = base_cfg(4, 1);
  // Adjust every 4 rounds so the 18 s run sees several opportunities to
  // steer against the injected step (the default 8-round baseline only
  // fires at rounds 8 and 16 -- too sparse for this window).
  cfg.sync.rate_baseline_rounds = 4;
  cfg.faults.add(FaultSpec::freq_step(2, 1.5, at(5.0), at(11.0)));
  cluster::Cluster cl(cfg);
  cl.start();
  cl.run(Duration::sec(18), Duration::sec(4));

  EXPECT_EQ(cl.fault_injector()->injections(Kind::kFreqStep), 1u);
  EXPECT_EQ(cl.fault_injector()->recoveries(), 1u);
  EXPECT_GT(cl.sync(2).rate_adjustments(), 0u);
  // +1.5 ppm stays inside rho_bound_ppm = 2.0: the drift-compensation
  // assumption holds, so containment survives and rate sync absorbs it.
  EXPECT_EQ(cl.containment_violations(), 0u);
  EXPECT_LT(cl.precision_samples().percentile_duration(99), Duration::us(10));
}

TEST(Injector, BabblingIdiotLoadsTheMediumNotTheClocks) {
  auto cfg = base_cfg(4, 1);
  cfg.faults.add(
      FaultSpec::babbling_idiot(3, at(5.0), at(9.0), Duration::us(900), 512));
  cluster::Cluster cl(cfg);
  cl.start();
  cl.run(Duration::sec(14), Duration::sec(4));

  // Thousands of junk frames were actually sent...
  EXPECT_GT(cl.fault_injector()->injections(Kind::kBabblingIdiot), 1000u);
  std::uint64_t non_csp = 0;
  for (int i = 0; i < cl.size(); ++i) {
    non_csp += cl.node(i).driver().stats().non_csp_received;
  }
  EXPECT_GT(non_csp, 1000u);
  // ...but CSP stamps are taken at wire start (not submit time), so the
  // queueing the flood causes does not corrupt the delay compensation.
  EXPECT_EQ(cl.containment_violations(), 0u);
  EXPECT_LT(cl.precision_samples().percentile_duration(99), Duration::us(10));
}

TEST(Injector, SameSeedSamePlanInjectsIdentically) {
  auto cfg = base_cfg(4, 1);
  cfg.faults.add(FaultSpec::frame_loss(0.1))
      .add(FaultSpec::frame_corrupt(0.1))
      .add(FaultSpec::delay_spike(0.05, Duration::us(50)))
      .add(FaultSpec::clock_yank(3, Duration::ms(2), Duration::ms(700), at(4.5)));

  auto run_once = [&cfg] {
    cluster::Cluster cl(cfg);
    cl.start();
    cl.run(Duration::sec(10), Duration::sec(3));
    return std::tuple{cl.fault_injector()->total_injections(),
                      cl.medium().injected_losses(),
                      cl.medium().corrupted_frames(),
                      cl.precision_samples().max()};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b) << "fault injection is not seed-deterministic";
  EXPECT_GT(std::get<0>(a), 0u);
}

TEST(Injector, DifferentSeedsDecorrelate) {
  auto cfg = base_cfg(4, 1);
  cfg.faults.add(FaultSpec::frame_loss(0.1));
  auto losses_with_seed = [&cfg](std::uint64_t seed) {
    auto c = cfg;
    c.seed = seed;
    cluster::Cluster cl(c);
    cl.start();
    cl.run(Duration::sec(10), Duration::sec(3));
    return cl.medium().injected_losses();
  };
  // Loss *patterns* differ across seeds; counts differing is the cheap
  // proxy (equal counts across all three would be a one-in-thousands
  // coincidence for ~100 Bernoulli draws).
  const auto a = losses_with_seed(1);
  const auto b = losses_with_seed(2);
  const auto c = losses_with_seed(3);
  EXPECT_TRUE(a != b || b != c);
}

}  // namespace
}  // namespace nti
