// Cold-rejoin regression: SyncNode::start() must clear the pending
// amortization end mark along with the rest of the stale history.  Before
// the fix, a node crash-restarted while (or after) a slew was running kept
// the old clock-unit mark, so the first post-rejoin offer_remote calls
// widened their margins for an amortization that was no longer running.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace nti {
namespace {

TEST(RejoinAmort, ColdRestartClearsPendingAmortizationMark) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.seed = 77;
  cfg.sync.round_period = Duration::ms(200);
  cfg.sync.resync_offset = Duration::ms(50);
  cfg.initial_offset_spread = Duration::us(100);
  cluster::Cluster c(std::move(cfg));
  c.start();
  c.run(Duration::ms(1600), Duration::ms(400));

  // After several converged rounds the corrections are small enough to be
  // amortized, so the end mark (a local-clock value) is nonzero somewhere.
  bool any_amortized = false;
  for (int i = 0; i < c.size(); ++i) {
    any_amortized = any_amortized ||
                    c.sync(i).amort_end_clock() > Duration::zero();
  }
  ASSERT_TRUE(any_amortized)
      << "scenario produced no amortized correction; the regression check "
         "below would be vacuous";

  // Crash-restart every such node: the cold start() replaces the clock
  // state outright, so the mark must be gone.
  const Duration truth = c.engine().now() - SimTime::epoch();
  for (int i = 0; i < c.size(); ++i) {
    if (c.sync(i).amort_end_clock() <= Duration::zero()) continue;
    c.sync(i).stop();
    const auto first_round = static_cast<std::uint32_t>(
        truth.count_ps() / Duration::ms(200).count_ps()) + 2;
    c.sync(i).start(truth, Duration::us(300), first_round);
    EXPECT_EQ(c.sync(i).amort_end_clock(), Duration::zero());
  }
}

}  // namespace
}  // namespace nti
