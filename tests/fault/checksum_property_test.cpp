// Property: ANY single bit flip in the mapped timestamp/macrostamp words
// (the 64 wire bits the fault injector targets, byte offsets 0x18..0x1F of
// a CSP frame) is detected by the stamp checksum.
//
// Those 64 bits are the 56-bit NTP time (seconds[31:0] split across the
// two words + frac24) plus the 8-bit checksum itself; flipping a time bit
// changes the expected checksum, flipping a checksum bit mismatches the
// unchanged time, so decode_stamp must report checksum_ok == false for
// every one of the 64 positions.  The alpha word (0x20) is NOT covered by
// the checksum -- a deliberate, documented gap of the register format (the
// convergence function is what tolerates wrong accuracies).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "utcsu/stamp.hpp"

namespace nti::utcsu {
namespace {

TEST(ChecksumProperty, EverySingleBitFlipInTimeWordsIsDetected) {
  RngStream rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    // Up to ~30 days keeps count_ps() well inside int64.
    const Duration t = rng.uniform(Duration::zero(), Duration::sec(86400 * 30));
    const auto am = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
    const auto ap = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
    const StampRegs r = pack_stamp(Phi::from_duration(t), am, ap);
    ASSERT_TRUE(decode_stamp(r.timestamp, r.macrostamp, r.alpha).checksum_ok);

    for (int bit = 0; bit < 64; ++bit) {
      std::uint32_t ts = r.timestamp;
      std::uint32_t ms = r.macrostamp;
      if (bit < 32) {
        ts ^= std::uint32_t{1} << bit;
      } else {
        ms ^= std::uint32_t{1} << (bit - 32);
      }
      const DecodedStamp d = decode_stamp(ts, ms, r.alpha);
      EXPECT_FALSE(d.checksum_ok)
          << "undetected flip of bit " << bit << " at t = " << t.to_sec_f();
    }
  }
}

TEST(ChecksumProperty, AlphaWordIsTheDocumentedGap) {
  // The register format checksums only the 56-bit time; accuracy words ride
  // unprotected (wrong alphas are a *fault model* input the convergence
  // function handles, not a detectable transmission error).  The injector
  // therefore confines wire flips to the protected region -- this test
  // pins the gap so a future format change is a conscious decision.
  const StampRegs r = pack_stamp(Phi::from_duration(Duration::sec(5)), 7, 9);
  const DecodedStamp d = decode_stamp(r.timestamp, r.macrostamp, r.alpha ^ 1u);
  EXPECT_TRUE(d.checksum_ok);
  EXPECT_NE(d.alpha_plus, 9);
}

}  // namespace
}  // namespace nti::utcsu
