#include "nti/sprom.hpp"

#include <gtest/gtest.h>

namespace nti::module {
namespace {

TEST(Sprom, IdentificationFields) {
  Sprom rom;
  EXPECT_EQ(rom.module_id(), Sprom::kNtiModuleId);
  EXPECT_EQ(rom.revision(), Sprom::kNtiRevision);
  EXPECT_TRUE(rom.checksum_ok());
}

TEST(Sprom, AccessByteSemantics) {
  Sprom rom;
  rom.access_write(0x02);
  const std::uint8_t hi = rom.access_read();
  const std::uint8_t lo = rom.access_read();  // cursor auto-increments
  EXPECT_EQ((std::uint16_t{hi} << 8) | lo, Sprom::kNtiModuleId);
}

TEST(Sprom, SyncWordPresent) {
  Sprom rom;
  rom.access_write(0x00);
  EXPECT_EQ(rom.access_read(), 0x53);  // 'S'
  EXPECT_EQ(rom.access_read(), 0x46);  // 'F'
}

TEST(Sprom, CursorWraps) {
  Sprom rom;
  rom.access_write(0xFF);
  (void)rom.access_read();             // checksum byte
  rom.access_write(0x00);
  EXPECT_EQ(rom.access_read(), 0x53);  // back at the start
}

}  // namespace
}  // namespace nti::module
