#include "nti/nti.hpp"

#include <gtest/gtest.h>

#include "osc/oscillator.hpp"
#include "sim/engine.hpp"

namespace nti::module {
namespace {

struct Fixture {
  sim::Engine engine;
  osc::QuartzOscillator osc{osc::OscConfig::ideal(10e6), RngStream(1)};
  utcsu::Utcsu chip{engine, osc, utcsu::UtcsuConfig{}};
  Nti nti{chip};

  SimTime at(std::int64_t us) { return SimTime::epoch() + Duration::us(us); }
};

TEST(Nti, CpuMemoryReadWrite) {
  Fixture f;
  f.nti.cpu_write32(f.at(1), 0x1234, 0xDEADBEEF);
  EXPECT_EQ(f.nti.cpu_read32(f.at(1), 0x1234), 0xDEADBEEFu);
  f.nti.cpu_write8(f.at(1), 0x2000, 0x42);
  EXPECT_EQ(f.nti.cpu_read8(f.at(1), 0x2000), 0x42);
}

TEST(Nti, CpuWindowReachesUtcsuRegisters) {
  Fixture f;
  EXPECT_EQ(f.nti.cpu_read32(f.at(1), kCpuUtcsuBase + utcsu::kRegIdVersion),
            utcsu::kIdVersionValue);
}

TEST(Nti, CpuAccessToHeadersHasNoSideEffects) {
  Fixture f;
  const Addr tx_hdr = Nti::tx_header_addr(0);
  f.nti.cpu_write32(f.at(1), tx_hdr + 0x14, 0x11111111);
  (void)f.nti.cpu_read32(f.at(1), tx_hdr + 0x14);
  EXPECT_FALSE(f.chip.ssu_tx(0).valid);  // no TRANSMIT trigger
  const Addr rx_hdr = Nti::rx_header_addr(0);
  f.nti.cpu_write32(f.at(1), rx_hdr + 0x1C, 0x22222222);
  EXPECT_FALSE(f.chip.ssu_rx(0).valid);  // no RECEIVE trigger
}

TEST(Nti, ComcoReadOfTriggerOffsetFiresTransmit) {
  Fixture f;
  const Addr hdr = Nti::tx_header_addr(3);
  f.nti.cpu_write32(f.at(1), hdr + 0x14, 0xAAAA5555);
  const std::uint32_t v = f.nti.comco_read32(f.at(2), hdr + 0x14);
  EXPECT_EQ(v, 0xAAAA5555u);  // trigger word still reads the memory content
  EXPECT_TRUE(f.chip.ssu_tx(0).valid);
}

TEST(Nti, TransparentMappingReturnsStampRegisters) {
  Fixture f;
  const Addr hdr = Nti::tx_header_addr(0);
  // Memory under the mapped addresses contains garbage; the COMCO read
  // must return the UTCSU stamp instead.
  f.nti.cpu_write32(f.at(1), hdr + 0x18, 0x11111111);
  (void)f.nti.comco_read32(f.at(2), hdr + 0x14);  // trigger
  const std::uint32_t ts = f.nti.comco_read32(f.at(2), hdr + 0x18);
  const std::uint32_t macro = f.nti.comco_read32(f.at(2), hdr + 0x1C);
  const std::uint32_t alpha = f.nti.comco_read32(f.at(2), hdr + 0x20);
  EXPECT_EQ(ts, f.chip.ssu_tx(0).timestamp);
  EXPECT_EQ(macro, f.chip.ssu_tx(0).macrostamp);
  EXPECT_EQ(alpha, f.chip.ssu_tx(0).alpha);
  EXPECT_NE(ts, 0x11111111u);
  EXPECT_TRUE(utcsu::decode_stamp(ts, macro, alpha).checksum_ok);
}

TEST(Nti, ComcoWriteOfRxTriggerOffsetFiresReceiveAndLatchesBase) {
  Fixture f;
  const Addr hdr = Nti::rx_header_addr(5);
  f.nti.comco_write32(f.at(3), hdr + 0x1C, 0x12345678);
  EXPECT_TRUE(f.chip.ssu_rx(0).valid);
  // Receive Header Base latched (as header address / 64).
  EXPECT_EQ(f.nti.io_read16(kIoRxHeaderBase), hdr >> 6);
  // The written word still lands in memory.
  EXPECT_EQ(f.nti.cpu_read32(f.at(3), hdr + 0x1C), 0x12345678u);
}

TEST(Nti, RxBaseTracksLatestTrigger) {
  Fixture f;
  f.nti.comco_write32(f.at(1), Nti::rx_header_addr(1) + 0x1C, 1);
  f.nti.comco_write32(f.at(2), Nti::rx_header_addr(9) + 0x1C, 2);
  EXPECT_EQ(f.nti.io_read16(kIoRxHeaderBase), Nti::rx_header_addr(9) >> 6);
}

TEST(Nti, ComcoWritesElsewhereDoNotTrigger) {
  Fixture f;
  f.nti.comco_write32(f.at(1), Nti::rx_header_addr(0) + 0x18, 7);
  f.nti.comco_write32(f.at(1), kDataBufferBase + 0x1C, 7);
  EXPECT_FALSE(f.chip.ssu_rx(0).valid);
}

TEST(Nti, InterruptVectorCarriesLineState) {
  Fixture f;
  f.nti.io_write16(kIoVectorBase, 0x60);
  f.nti.io_write16(kIoIntEnable, 1);
  f.nti.cpu_write32(f.at(1), kCpuUtcsuBase + utcsu::kRegIntEnable,
                    utcsu::int_bit(utcsu::IntSource::kSsuRx0, 0));
  std::uint8_t vector = 0;
  int fires = 0;
  f.nti.on_irq = [&](std::uint8_t v) {
    vector = v;
    ++fires;
  };
  f.nti.comco_write32(f.at(2), Nti::rx_header_addr(0) + 0x1C, 0);
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(vector, 0x60 | 1);  // INTN bit set
}

TEST(Nti, InterruptOneShotUntilReenabled) {
  Fixture f;
  f.nti.io_write16(kIoIntEnable, 1);
  f.nti.cpu_write32(f.at(1), kCpuUtcsuBase + utcsu::kRegIntEnable, ~0u);
  int fires = 0;
  f.nti.on_irq = [&](std::uint8_t) { ++fires; };
  f.nti.comco_write32(f.at(2), Nti::rx_header_addr(0) + 0x1C, 0);
  EXPECT_EQ(fires, 1);
  // A second event while disabled must not fire...
  f.nti.comco_write32(f.at(3), Nti::rx_header_addr(1) + 0x1C, 0);
  EXPECT_EQ(fires, 1);
  // ...but re-enabling with the line still asserted fires immediately.
  f.nti.io_write16(kIoIntEnable, 1);
  EXPECT_EQ(fires, 2);
}

TEST(Nti, CustomCpldProgramRespected) {
  // "Two independently configurable addresses for timestamp triggering and
  // transparent mapping" (paper Sec. 5).
  CpldProgram prog;
  prog.tx_trigger_offset = 0x10;
  prog.rx_trigger_offset = 0x24;
  sim::Engine engine;
  osc::QuartzOscillator osc(osc::OscConfig::ideal(10e6), RngStream(1));
  utcsu::Utcsu chip(engine, osc, utcsu::UtcsuConfig{});
  Nti nti(chip, prog);
  (void)nti.comco_read32(SimTime::epoch() + Duration::us(1),
                         Nti::tx_header_addr(0) + 0x14);
  EXPECT_FALSE(chip.ssu_tx(0).valid);  // old offset inert
  (void)nti.comco_read32(SimTime::epoch() + Duration::us(1),
                         Nti::tx_header_addr(0) + 0x10);
  EXPECT_TRUE(chip.ssu_tx(0).valid);
  nti.comco_write32(SimTime::epoch() + Duration::us(2),
                    Nti::rx_header_addr(0) + 0x1C, 0);
  EXPECT_FALSE(chip.ssu_rx(0).valid);
  nti.comco_write32(SimTime::epoch() + Duration::us(2),
                    Nti::rx_header_addr(0) + 0x24, 0);
  EXPECT_TRUE(chip.ssu_rx(0).valid);
}

TEST(Nti, SsuIndexSelectsUnit) {
  sim::Engine engine;
  osc::QuartzOscillator osc(osc::OscConfig::ideal(10e6), RngStream(1));
  utcsu::Utcsu chip(engine, osc, utcsu::UtcsuConfig{});
  Nti nti(chip, CpldProgram{}, /*ssu_index=*/4);
  nti.comco_write32(SimTime::epoch() + Duration::us(1),
                    Nti::rx_header_addr(0) + 0x1C, 0);
  EXPECT_TRUE(chip.ssu_rx(4).valid);
  EXPECT_FALSE(chip.ssu_rx(0).valid);
}

}  // namespace
}  // namespace nti::module
