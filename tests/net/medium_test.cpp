#include "net/medium.hpp"

#include <gtest/gtest.h>

#include "net/traffic.hpp"
#include "sim/engine.hpp"

namespace nti::net {
namespace {

struct Fixture {
  sim::Engine engine;
  MediumConfig cfg;
  Medium medium{engine, cfg, RngStream(1)};
};

Frame make_frame(std::size_t n) {
  Frame f;
  f.bytes.assign(n, 0xAB);
  return f;
}

TEST(Medium, ByteTimeAt10Mbit) {
  Fixture f;
  EXPECT_EQ(f.medium.byte_time(), Duration::ns(800));
  // 64-byte frame + 8-byte preamble = 72 bytes = 57.6 us.
  EXPECT_EQ(f.medium.frame_air_time(64), Duration::ns(57'600));
}

TEST(Medium, DeliversToAllOtherStations) {
  Fixture f;
  MacPort& a = f.medium.attach();
  MacPort& b = f.medium.attach();
  MacPort& c = f.medium.attach();
  int b_got = 0, c_got = 0, a_got = 0;
  a.on_frame = [&](auto, const RxTiming&) { ++a_got; };
  b.on_frame = [&](auto, const RxTiming&) { ++b_got; };
  c.on_frame = [&](auto, const RxTiming&) { ++c_got; };
  f.medium.transmit(a, make_frame(64));
  f.engine.run();
  EXPECT_EQ(a_got, 0);  // no self-reception
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 1);
}

TEST(Medium, TimingFieldsConsistent) {
  Fixture f;
  MacPort& a = f.medium.attach();
  MacPort& b = f.medium.attach();
  RxTiming seen{};
  SimTime wire_start = SimTime::never();
  a.on_wire_start = [&](SimTime t, auto&) { wire_start = t; };
  b.on_frame = [&](auto, const RxTiming& t) { seen = t; };
  f.medium.transmit(a, make_frame(100));
  f.engine.run();
  ASSERT_NE(wire_start, SimTime::never());
  EXPECT_EQ(seen.wire_start, wire_start);
  EXPECT_EQ(seen.rx_start - seen.wire_start, f.cfg.propagation_per_station);
  EXPECT_EQ(seen.rx_end - seen.rx_start, f.medium.frame_air_time(100));
}

TEST(Medium, PropagationScalesWithDistance) {
  Fixture f;
  MacPort& a = f.medium.attach();
  (void)f.medium.attach();
  MacPort& c = f.medium.attach();
  RxTiming seen{};
  c.on_frame = [&](auto, const RxTiming& t) { seen = t; };
  f.medium.transmit(a, make_frame(64));
  f.engine.run();
  EXPECT_EQ(seen.rx_start - seen.wire_start, f.cfg.propagation_per_station * 2);
}

TEST(Medium, SecondSenderDefersWhileBusy) {
  Fixture f;
  MacPort& a = f.medium.attach();
  MacPort& b = f.medium.attach();
  MacPort& c = f.medium.attach();
  std::vector<SimTime> starts;
  a.on_wire_start = [&](SimTime t, auto&) { starts.push_back(t); };
  b.on_wire_start = [&](SimTime t, auto&) { starts.push_back(t); };
  c.on_frame = [](auto, const RxTiming&) {};
  f.medium.transmit(a, make_frame(500));
  f.engine.schedule_in(Duration::us(10), [&] {  // mid-transmission
    f.medium.transmit(b, make_frame(64));
  });
  f.engine.run();
  ASSERT_EQ(starts.size(), 2u);
  // b must start after a's frame air time + inter-frame gap.
  EXPECT_GE(starts[1], starts[0] + f.medium.frame_air_time(500) +
                           f.cfg.inter_frame_gap);
}

TEST(Medium, SimultaneousRequestsBothEventuallyDeliver) {
  Fixture f;
  MacPort& a = f.medium.attach();
  MacPort& b = f.medium.attach();
  MacPort& c = f.medium.attach();
  int got = 0;
  c.on_frame = [&](auto, const RxTiming&) { ++got; };
  f.engine.schedule_at(SimTime::epoch() + Duration::us(5), [&] {
    f.medium.transmit(a, make_frame(64));
    f.medium.transmit(b, make_frame(64));
  });
  f.engine.run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(f.medium.frames_delivered(), 2u);
}

TEST(Medium, QueuedFramesFromOnePortStayFifo) {
  Fixture f;
  MacPort& a = f.medium.attach();
  MacPort& b = f.medium.attach();
  std::vector<std::uint8_t> firsts;
  b.on_frame = [&](std::shared_ptr<const Frame> fr, const RxTiming&) {
    firsts.push_back(fr->bytes[0]);
  };
  Frame f1;
  f1.bytes.assign(64, 1);
  Frame f2;
  f2.bytes.assign(64, 2);
  f.medium.transmit(a, std::move(f1));
  f.medium.transmit(a, std::move(f2));
  f.engine.run();
  EXPECT_EQ(firsts, (std::vector<std::uint8_t>{1, 2}));
}

TEST(Medium, ContentionUnderLoadProducesCollisions) {
  Fixture f;
  // Many stations all transmitting at once repeatedly.
  std::vector<MacPort*> ports;
  std::uint64_t aborted = 0;
  for (int i = 0; i < 8; ++i) {
    ports.push_back(&f.medium.attach());
    ports.back()->on_tx_abort = [&aborted](const Frame&) { ++aborted; };
  }
  for (int burst = 0; burst < 20; ++burst) {
    f.engine.schedule_at(SimTime::epoch() + Duration::ms(burst), [&f, &ports] {
      for (auto* p : ports) f.medium.transmit(*p, make_frame(64));
    });
  }
  f.engine.run();
  // Every frame is accounted for: delivered, or given up after 16 attempts
  // (excessive-collision abort, as a real MAC does).
  EXPECT_EQ(f.medium.frames_delivered() + aborted, 160u);
  EXPECT_GE(f.medium.frames_delivered(), 140u);
  EXPECT_GT(f.medium.collisions(), 0u);
}

TEST(Medium, TxQueueTailDropsWhenSaturated) {
  sim::Engine engine;
  MediumConfig mc;
  mc.tx_queue_cap = 8;
  Medium medium(engine, mc, RngStream(5));
  MacPort& a = medium.attach();
  (void)medium.attach();
  // Enqueue far more than the ring holds while the wire is busy.
  for (int i = 0; i < 100; ++i) medium.transmit(a, make_frame(1500));
  EXPECT_GT(medium.queue_drops(), 80u);
  engine.run();
  // Everything that was accepted eventually goes out.
  EXPECT_EQ(medium.frames_delivered() + medium.queue_drops(), 100u);
}

// Regression: frames_delivered was bumped when the transmission was
// *scheduled* (inside begin_transmission), not when the last receiver
// actually finished the frame -- a mid-run probe over-reported throughput
// by every frame still in the air.
TEST(Medium, FramesDeliveredCountsAtDeliveryTime) {
  Fixture f;
  MacPort& a = f.medium.attach();
  (void)f.medium.attach();
  f.medium.transmit(a, make_frame(64));
  // Transmission has begun (wire is busy) but no receiver has the frame.
  EXPECT_EQ(f.medium.frames_delivered(), 0u);
  f.engine.run();
  EXPECT_EQ(f.medium.frames_delivered(), 1u);
}

TEST(Medium, ExcessiveCollisionsAbortAndCount) {
  sim::Engine engine;
  MediumConfig mc;
  mc.max_backoff_exp = 0;  // every contender always draws slot 0
  Medium medium(engine, mc, RngStream(7));
  obs::MetricsRegistry reg;
  medium.register_metrics(reg, "net.");
  MacPort& a = medium.attach();
  MacPort& b = medium.attach();
  MacPort& c = medium.attach();
  int a_aborts = 0, b_aborts = 0;
  a.on_tx_abort = [&](const Frame&) { ++a_aborts; };
  b.on_tx_abort = [&](const Frame&) { ++b_aborts; };
  // c grabs the wire; a and b queue behind it and then collide forever
  // (slot 0 vs slot 0) until both exhaust max_attempts and abort.
  medium.transmit(c, make_frame(64));
  medium.transmit(a, make_frame(64));
  medium.transmit(b, make_frame(64));
  engine.run();
  EXPECT_EQ(a_aborts, 1);
  EXPECT_EQ(b_aborts, 1);
  EXPECT_EQ(medium.tx_aborts(), 2u);
  EXPECT_EQ(medium.frames_delivered(), 1u);  // only c's frame made it out
  EXPECT_GE(medium.collisions(), static_cast<std::uint64_t>(mc.max_attempts));
  EXPECT_EQ(reg.value("net.tx_aborts"), 2.0);
  EXPECT_EQ(reg.value("net.frames_delivered"), 1.0);
}

// Regression: during analytic backoff resolution, excessive-collision
// aborts ran synchronously at contention time stamped with the *future*
// abort instant.  Any station transmitting between those two instants then
// appended trace records with earlier timestamps after the abort's record,
// breaking TraceRing monotonicity (and retransmit logic observed
// engine.now() earlier than the abort it reacted to).  The abort is now an
// event at its own simulated time.
TEST(Medium, TraceTimestampsMonotoneUnderAborts) {
  sim::Engine engine;
  MediumConfig mc;
  mc.max_backoff_exp = 0;  // every contender always draws slot 0
  Medium medium(engine, mc, RngStream(7));
  obs::TraceRing ring(1024);
  medium.set_trace(&ring);
  MacPort& a = medium.attach();
  MacPort& b = medium.attach();
  MacPort& c = medium.attach();
  SimTime a_abort_at = SimTime::never();
  a.on_tx_abort = [&](const Frame&) { a_abort_at = engine.now(); };
  b.on_tx_abort = [](const Frame&) {};
  // c occupies the wire; a and b queue behind it and collide forever.  The
  // abort lands ~16 slot times later; c's second frame goes out before
  // that, so its records must precede the abort's in both time and order.
  medium.transmit(c, make_frame(64));
  medium.transmit(a, make_frame(64));
  medium.transmit(b, make_frame(64));
  engine.schedule_at(SimTime::epoch() + Duration::us(100), [&] {
    medium.transmit(c, make_frame(64));
  });
  engine.run();
  EXPECT_EQ(medium.tx_aborts(), 2u);
  // The abort callback fires at the abort's simulated instant, not at
  // contention-resolution time.
  ASSERT_NE(a_abort_at, SimTime::never());
  EXPECT_GT(a_abort_at, SimTime::epoch() + Duration::us(100));
  for (std::size_t i = 1; i < ring.size(); ++i) {
    EXPECT_GE(ring.at(i).t, ring.at(i - 1).t)
        << "record " << i << " went backwards";
  }
}

// Air time is computed exactly from the total bit count (round-half-up),
// not by multiplying a truncated per-byte time: at 7 Mbit/s a 72-byte
// transmission is 576/7e6 s = 82'285'714.29 ps, which per-byte truncation
// underestimated by 10 ps (and the bias grows linearly with frame size).
TEST(Medium, NonDivisibleRateAirTimeIsExact) {
  sim::Engine engine;
  MediumConfig mc;
  mc.bit_rate_hz = 7e6;
  Medium medium(engine, mc, RngStream(1));
  EXPECT_EQ(medium.frame_air_time(64), Duration::ps(82'285'714));
  // The per-byte DMA grid stays the truncated serialization time.
  EXPECT_EQ(medium.byte_time(), Duration::ps(1'142'857));
  // Divisible rates are unchanged (pinned by ByteTimeAt10Mbit too).
  Medium ten(engine, MediumConfig{}, RngStream(1));
  EXPECT_EQ(ten.frame_air_time(64), Duration::ns(57'600));
}

// The frame arena recycles slots and byte buffers: sequential traffic
// reaches a steady state with a handful of live slots no matter how many
// frames are sent.
TEST(Medium, FramePoolReusesSlotsAndBuffers) {
  Fixture f;
  MacPort& a = f.medium.attach();
  (void)f.medium.attach();
  for (int i = 0; i < 50; ++i) {
    f.medium.transmit(a, f.medium.make_frame(64, 0xAB));
    f.engine.run();
  }
  EXPECT_EQ(f.medium.frames_delivered(), 50u);
  EXPECT_LE(f.medium.frame_pool().slots_allocated(), 2u);
  EXPECT_GE(f.medium.frame_pool().slots_reused(), 48u);
  EXPECT_GE(f.medium.frame_pool().buffers_reused(), 48u);
}

TEST(Traffic, OfferedLoadApproximatelyMet) {
  sim::Engine engine;
  MediumConfig mc;
  Medium medium(engine, mc, RngStream(2));
  (void)medium.attach();  // a listener so frames have a receiver
  TrafficConfig tc;
  tc.offered_load = 0.3;
  tc.frame_bytes = 512;
  TrafficGenerator gen(engine, medium, tc, RngStream(3));
  engine.run_until(SimTime::epoch() + Duration::sec(2));
  const double air = medium.frame_air_time(512).to_sec_f();
  const double load = static_cast<double>(gen.frames_sent()) * air / 2.0;
  EXPECT_NEAR(load, 0.3, 0.06);
}

}  // namespace
}  // namespace nti::net
