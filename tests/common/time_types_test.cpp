#include "common/time_types.hpp"

#include <gtest/gtest.h>

namespace nti {
namespace {

using namespace nti::literals;

TEST(Duration, UnitConstructorsAgree) {
  EXPECT_EQ(Duration::ns(1).count_ps(), 1000);
  EXPECT_EQ(Duration::us(1).count_ps(), 1'000'000);
  EXPECT_EQ(Duration::ms(1).count_ps(), 1'000'000'000);
  EXPECT_EQ(Duration::sec(1).count_ps(), 1'000'000'000'000);
  EXPECT_EQ(1_us, Duration::ns(1000));
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(3_us + 2_us, 5_us);
  EXPECT_EQ(3_us - 5_us, -(2_us));
  EXPECT_EQ((2_us) * 3, 6_us);
  EXPECT_EQ((6_us) / 3, 2_us);
  EXPECT_EQ((6_us) / (2_us), 3);
  EXPECT_EQ((-(7_ns)).abs(), 7_ns);
}

TEST(Duration, FloatRoundTrip) {
  const Duration d = Duration::from_sec_f(1.5e-6);
  EXPECT_EQ(d, Duration::ns(1500));
  EXPECT_DOUBLE_EQ(d.to_us_f(), 1.5);
}

TEST(Duration, FromSecFNegative) {
  EXPECT_EQ(Duration::from_sec_f(-2.5e-9), -Duration::ps(2500));
}

TEST(Duration, Ordering) {
  EXPECT_LT(1_ns, 1_us);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_LE(Duration::zero(), Duration::zero());
}

TEST(Duration, StrScalesUnits) {
  EXPECT_EQ(Duration::ps(42).str(), "42 ps");
  EXPECT_NE(Duration::ns(150).str().find("ns"), std::string::npos);
  EXPECT_NE(Duration::ns(1500).str().find("us"), std::string::npos);  // 1.5 us
  EXPECT_NE((2_ms).str().find("ms"), std::string::npos);
  EXPECT_NE((3_s).str().find(" s"), std::string::npos);
}

TEST(SimTime, Arithmetic) {
  const SimTime t = SimTime::epoch() + 5_us;
  EXPECT_EQ(t.count_ps(), 5'000'000);
  EXPECT_EQ(t - SimTime::epoch(), 5_us);
  EXPECT_EQ((t + 1_us) - t, 1_us);
  EXPECT_LT(t, t + 1_ps);
}

TEST(SimTime, NeverIsLaterThanEverything) {
  EXPECT_GT(SimTime::never(), SimTime::epoch() + Duration::sec(1'000'000));
}

}  // namespace
}  // namespace nti
