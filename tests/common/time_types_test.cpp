#include "common/time_types.hpp"

#include <gtest/gtest.h>

namespace nti {
namespace {

using namespace nti::literals;

TEST(Duration, UnitConstructorsAgree) {
  EXPECT_EQ(Duration::ns(1).count_ps(), 1000);
  EXPECT_EQ(Duration::us(1).count_ps(), 1'000'000);
  EXPECT_EQ(Duration::ms(1).count_ps(), 1'000'000'000);
  EXPECT_EQ(Duration::sec(1).count_ps(), 1'000'000'000'000);
  EXPECT_EQ(1_us, Duration::ns(1000));
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(3_us + 2_us, 5_us);
  EXPECT_EQ(3_us - 5_us, -(2_us));
  EXPECT_EQ((2_us) * 3, 6_us);
  EXPECT_EQ((6_us) / 3, 2_us);
  EXPECT_EQ((6_us) / (2_us), 3);
  EXPECT_EQ((-(7_ns)).abs(), 7_ns);
}

TEST(Duration, FloatRoundTrip) {
  const Duration d = Duration::from_sec_f(1.5e-6);
  EXPECT_EQ(d, Duration::ns(1500));
  EXPECT_DOUBLE_EQ(d.to_us_f(), 1.5);
}

TEST(Duration, FromSecFNegative) {
  EXPECT_EQ(Duration::from_sec_f(-2.5e-9), -Duration::ps(2500));
}

TEST(Duration, Ordering) {
  EXPECT_LT(1_ns, 1_us);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_LE(Duration::zero(), Duration::zero());
}

TEST(Duration, StrScalesUnits) {
  EXPECT_EQ(Duration::ps(42).str(), "42 ps");
  EXPECT_NE(Duration::ns(150).str().find("ns"), std::string::npos);
  EXPECT_NE(Duration::ns(1500).str().find("us"), std::string::npos);  // 1.5 us
  EXPECT_NE((2_ms).str().find("ms"), std::string::npos);
  EXPECT_NE((3_s).str().find(" s"), std::string::npos);
}

TEST(SimTime, Arithmetic) {
  const SimTime t = SimTime::epoch() + 5_us;
  EXPECT_EQ(t.count_ps(), 5'000'000);
  EXPECT_EQ(t - SimTime::epoch(), 5_us);
  EXPECT_EQ((t + 1_us) - t, 1_us);
  EXPECT_LT(t, t + 1_ps);
}

TEST(SimTime, NeverIsLaterThanEverything) {
  EXPECT_GT(SimTime::never(), SimTime::epoch() + Duration::sec(1'000'000));
}

TEST(TickCount, ArithmeticAndOrdering) {
  const TickCount a = TickCount::of(100);
  const TickCount b = TickCount::of(40);
  EXPECT_EQ((a + b).value(), 140u);
  EXPECT_EQ((a - b).value(), 60u);
  TickCount c = a;
  c += b;
  c -= TickCount::of(1);
  EXPECT_EQ(c.value(), 139u);
  EXPECT_LT(b, a);
  EXPECT_EQ(TickCount::zero().value(), 0u);
}

TEST(TickCount, NeverIsLaterThanAnyRealTick) {
  EXPECT_TRUE(TickCount::never().is_never());
  EXPECT_FALSE(TickCount::of(0xFFFF'FFFF'FFFF'FFFEull).is_never());
  EXPECT_GT(TickCount::never(), TickCount::of(0xFFFF'FFFF'FFFF'FFFEull));
}

TEST(RateStep, SignedArithmeticAndMagnitude) {
  const RateStep s = RateStep::raw(1000);
  EXPECT_EQ((s + RateStep::raw(24)).value(), 1024);
  EXPECT_EQ((s - RateStep::raw(1)).value(), 999);
  EXPECT_EQ((-s).value(), -1000);
  EXPECT_EQ((s / 3).value(), 333);
  EXPECT_EQ((s * 7).value(), 7000);
  EXPECT_FALSE(s.negative());
  EXPECT_TRUE((-s).negative());
  EXPECT_EQ(s.magnitude(), 1000u);
  EXPECT_EQ((-s).magnitude(), 1000u);
  EXPECT_EQ(RateStep::zero().value(), 0);
}

TEST(RateStep, Reg64RoundTripsTheBusEncoding) {
  // The register view is the plain two's-complement 64-bit encoding: a
  // non-negative augend round-trips exactly through the lo/hi bus words.
  const RateStep s = RateStep::raw(0x0000'0001'2345'6789LL);
  EXPECT_EQ(s.reg64(), 0x0000'0001'2345'6789ull);
  const std::uint64_t reg = s.reg64();
  EXPECT_EQ(RateStep::raw(static_cast<std::int64_t>(reg)), s);
}

TEST(AlphaUnits, FromDurationRoundsUpAndSaturates) {
  EXPECT_EQ(AlphaUnits::from_duration(Duration::zero()).value(), 0u);
  EXPECT_EQ(AlphaUnits::from_duration(-Duration::ms(1)).value(), 0u);
  // 1 unit = 2^-24 s ~ 59.6 ns: 60 ns rounds *up* to 2 units.
  EXPECT_EQ(AlphaUnits::from_duration(Duration::ns(60)).value(), 2u);
  // An exact multiple does not round up past itself.
  const AlphaUnits u = AlphaUnits::of(1678);
  EXPECT_EQ(AlphaUnits::from_duration(u.to_duration()).value(), 1678u);
  // Saturation, including the >= ~0.55 s range that once wrapped in int64.
  EXPECT_TRUE(AlphaUnits::from_duration(Duration::ms(4)).is_saturated());
  EXPECT_TRUE(AlphaUnits::from_duration(Duration::sec(300)).is_saturated());
  EXPECT_EQ(AlphaUnits::saturated().value(), AlphaUnits::kMax);
}

TEST(AlphaUnits, DurationRoundTripIsContainment) {
  // from_duration(d).to_duration() >= d never under-represents an
  // uncertainty, and to_duration -> from_duration is exact (identity).
  for (const std::int64_t ps : {1LL, 59'604LL, 59'605LL, 1'000'000LL,
                                123'456'789LL, 3'900'000'000LL}) {
    const Duration d = Duration::ps(ps);
    const AlphaUnits u = AlphaUnits::from_duration(d);
    if (!u.is_saturated()) {
      EXPECT_GE(u.to_duration() + Duration::ps(1), d) << ps;
      EXPECT_EQ(AlphaUnits::from_duration(u.to_duration()), u) << ps;
    }
  }
}

}  // namespace
}  // namespace nti
