#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>

namespace nti {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  RngStream a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  RngStream a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsStableAndIndependent) {
  RngStream root(7);
  RngStream a1 = root.fork("osc");
  RngStream a2 = root.fork("osc");
  RngStream b = root.fork("net");
  EXPECT_EQ(a1.next_u64(), a2.next_u64());
  RngStream a3 = root.fork("osc");
  EXPECT_NE(a3.next_u64(), b.next_u64());
}

TEST(Rng, IndexedForksDiffer) {
  RngStream root(7);
  EXPECT_NE(root.fork("node", 0).next_u64(), root.fork("node", 1).next_u64());
}

// Property: the Monte-Carlo runner forks one sibling stream per replica
// ("replica", i); the ensemble is only meaningful if siblings are pairwise
// decorrelated from the very first draws.  Checked over the first 4 draws
// of replica/0..63.
TEST(Rng, SiblingStreamsPairwiseDifferInFirstFourDraws) {
  RngStream root(42);
  constexpr int kSiblings = 64;
  constexpr int kDraws = 4;
  std::array<std::array<std::uint64_t, kDraws>, kSiblings> draws{};
  for (int i = 0; i < kSiblings; ++i) {
    RngStream s = root.fork("replica", static_cast<std::uint64_t>(i));
    for (int d = 0; d < kDraws; ++d) draws[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)] = s.next_u64();
  }
  for (int i = 0; i < kSiblings; ++i) {
    for (int j = i + 1; j < kSiblings; ++j) {
      EXPECT_NE(draws[static_cast<std::size_t>(i)], draws[static_cast<std::size_t>(j)])
          << "siblings " << i << " and " << j
          << " share their first " << kDraws << " draws";
    }
  }
}

// Property: re-forking with the same (name, index) is stable across calls
// -- and across interleaved draws from the parent's other forks, since
// forking hashes the parent's immutable seed, not its draw state.
TEST(Rng, IndexedReforkStableAcrossCalls) {
  RngStream root(42);
  for (std::uint64_t i = 0; i < 16; ++i) {
    RngStream first = root.fork("replica", i);
    root.fork("other").next_u64();  // unrelated activity in between
    RngStream second = root.fork("replica", i);
    for (int d = 0; d < 8; ++d) {
      ASSERT_EQ(first.next_u64(), second.next_u64()) << "index " << i;
    }
  }
}

// The stream name participates in the hash: same index under different
// names must not collide.
TEST(Rng, IndexedForkNameMatters) {
  RngStream root(42);
  EXPECT_NE(root.fork("replica", 3).next_u64(), root.fork("node", 3).next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  RngStream r(99);
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntInRange) {
  RngStream r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDurationInRange) {
  RngStream r(6);
  const Duration lo = Duration::ns(-50), hi = Duration::ns(50);
  for (int i = 0; i < 1000; ++i) {
    const Duration d = r.uniform(lo, hi);
    EXPECT_GE(d, lo);
    EXPECT_LE(d, hi);
  }
}

TEST(Rng, NormalMoments) {
  RngStream r(11);
  double sum = 0, sumsq = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(2.0, 3.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Rng, ExponentialMean) {
  RngStream r(13);
  double sum = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ChanceRespectsProbability) {
  RngStream r(17);
  int hits = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

}  // namespace
}  // namespace nti
