#include "common/checksum.hpp"

#include <gtest/gtest.h>

#include <array>

namespace nti {
namespace {

TEST(TimeChecksum, Deterministic) {
  EXPECT_EQ(time_checksum8(0x0123456789ABCDull), time_checksum8(0x0123456789ABCDull));
}

TEST(TimeChecksum, DetectsSingleByteCorruption) {
  const std::uint64_t v = 0x00DEADBEEF1234ull;
  const std::uint8_t good = time_checksum8(v);
  for (int byte = 0; byte < 7; ++byte) {
    const std::uint64_t bad = v ^ (0xFFull << (8 * byte));
    EXPECT_NE(time_checksum8(bad), good) << "byte " << byte;
  }
}

TEST(TimeChecksum, DetectsSingleBitFlips) {
  const std::uint64_t v = 0x00FACE0FF1CE42ull;
  const std::uint8_t good = time_checksum8(v);
  for (int bit = 0; bit < 56; ++bit) {
    EXPECT_NE(time_checksum8(v ^ (1ull << bit)), good) << "bit " << bit;
  }
}

TEST(Crc8, KnownVector) {
  // CRC-8/ATM of "123456789" is 0xF4.
  const std::array<std::uint8_t, 9> msg = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc8(msg), 0xF4);
}

TEST(Crc8, EmptyIsZero) {
  EXPECT_EQ(crc8({}), 0);
}

TEST(Blocksum, FoldsCarries) {
  const std::array<std::uint32_t, 2> words = {0xFFFF'FFFFu, 0x0000'0001u};
  // 0xFFFF + 0xFFFF + 0x0001 = 0x1FFFF -> fold -> 0x0000 + carries.
  EXPECT_LE(blocksum16(words), 0xFFFFu);
  EXPECT_EQ(blocksum16(words), blocksum16(words));
}

TEST(Blocksum, OrderInsensitive) {
  const std::array<std::uint32_t, 3> a = {1, 2, 3};
  const std::array<std::uint32_t, 3> b = {3, 1, 2};
  EXPECT_EQ(blocksum16(a), blocksum16(b));
}

}  // namespace
}  // namespace nti
