#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

namespace nti {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, AcceptsDurations) {
  RunningStats s;
  s.add(Duration::us(2));
  s.add(Duration::us(4));
  EXPECT_DOUBLE_EQ(s.mean(), 3e6);  // ps
}

TEST(SampleSet, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  // Nearest-rank: element ceil(p/100 * 100) of the sorted set.
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

// Nearest-rank semantics pinned down for every n in 1..5: the returned value
// is always an actual sample, p=0 yields the minimum, p=100 the maximum,
// and p=50 on even n picks the lower of the two middle samples
// (ceil(0.5 * n) is the n/2-th element, 1-based).
TEST(SampleSet, NearestRankSmallN) {
  for (int n = 1; n <= 5; ++n) {
    SampleSet s;
    for (int i = 1; i <= n; ++i) s.add(static_cast<double>(i * 10));
    SCOPED_TRACE("n=" + std::to_string(n));
    EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), static_cast<double>(n * 10));
    const int median_rank = (n + 1) / 2;  // ceil(n/2)
    EXPECT_DOUBLE_EQ(s.percentile(50), static_cast<double>(median_rank * 10));
    // Every percentile is one of the samples, never interpolated.
    for (const double p : {1.0, 25.0, 37.5, 60.0, 99.0}) {
      const double v = s.percentile(p);
      EXPECT_DOUBLE_EQ(v, std::round(v / 10.0) * 10.0);
      EXPECT_GE(v, 10.0);
      EXPECT_LE(v, static_cast<double>(n * 10));
    }
  }
}

// stddev/ci95 edge cases pinned down: n=0 and n=1 must both yield exactly
// zero (no NaN from a 0/0, no garbage from an n-1 underflow).
TEST(SampleSet, StddevAndCi95EdgeCases) {
  SampleSet empty;
  EXPECT_DOUBLE_EQ(empty.variance(), 0.0);
  EXPECT_DOUBLE_EQ(empty.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(empty.ci95(), 0.0);

  SampleSet one;
  one.add(123.456);
  EXPECT_DOUBLE_EQ(one.variance(), 0.0);
  EXPECT_DOUBLE_EQ(one.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(one.ci95(), 0.0);

  SampleSet two;
  two.add(1.0);
  two.add(3.0);
  // Sample variance of {1, 3} is 2; ci95 = 1.96 * sqrt(2) / sqrt(2) = 1.96.
  EXPECT_DOUBLE_EQ(two.variance(), 2.0);
  EXPECT_DOUBLE_EQ(two.stddev(), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(two.ci95(), 1.96);
}

TEST(SampleSet, StddevMatchesRunningStats) {
  SampleSet s;
  RunningStats ref;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
    ref.add(x);
  }
  EXPECT_DOUBLE_EQ(s.variance(), ref.variance());
  EXPECT_DOUBLE_EQ(s.stddev(), ref.stddev());
}

// The Welford path must not cancel catastrophically for large-offset
// samples (picosecond magnitudes with microsecond spreads -- exactly the
// regime the probes produce).  A naive sum-of-squares two-pass loses all
// significant digits here.
TEST(SampleSet, WelfordStableForLargeOffsets) {
  SampleSet s;
  const double base = 3e14;  // ~300 s in ps
  for (const double d : {0.0, 1e6, 2e6, 3e6}) s.add(base + d);  // +- us spread
  // Sample variance of {0, 1, 2, 3}e6 is 5/3 * 1e12.
  EXPECT_NEAR(s.variance(), 5.0 / 3.0 * 1e12, 1.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0) * 1e6, 1e-3);
}

TEST(SampleSet, AddAfterSortStillCorrect) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  s.add(9.0);  // invalidates cached sort
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SampleSet, DurationHelpers) {
  SampleSet s;
  s.add(Duration::us(1));
  s.add(Duration::us(3));
  EXPECT_EQ(s.max_duration(), Duration::us(3));
  EXPECT_EQ(s.mean_duration(), Duration::us(2));
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.5);
  h.add(9.99);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  const std::string art = h.ascii();
  EXPECT_NE(art.find('#'), std::string::npos);
}

// Regression: ascii() ran max_element over an empty bin vector (UB) when
// the histogram was constructed with zero bins.  Such a histogram renders
// as nothing and tallies everything as under-/overflow.
TEST(Histogram, ZeroBinsRendersEmptyWithoutUB) {
  Histogram h(0.0, 10.0, 0);
  h.add(5.0);
  h.add(-3.0);
  EXPECT_EQ(h.ascii(), "");
  EXPECT_EQ(h.underflow() + h.overflow(), 2u);
}

// Regression: the bar width computed bins[i] * width before dividing by
// the peak, overflowing 64-bit arithmetic for very large counts and
// rendering garbage-length bars.  The bulk add() overload makes such
// counts constructible in a test without 2^60 calls.
TEST(Histogram, HugeCountsScaleBarsWithoutOverflow) {
  Histogram h(0.0, 10.0, 2);
  const std::uint64_t huge = std::uint64_t{1} << 60;
  h.add(1.0, huge);      // first bin: the peak
  h.add(6.0, huge / 2);  // second bin: half-height bar
  const std::string art = h.ascii(50);
  // Two lines; the first bar is full width, the second exactly half.
  const auto first_nl = art.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  const std::string line1 = art.substr(0, first_nl);
  const std::string line2 = art.substr(first_nl + 1);
  EXPECT_EQ(std::count(line1.begin(), line1.end(), '#'), 50);
  EXPECT_EQ(std::count(line2.begin(), line2.end(), '#'), 25);
}

TEST(Histogram, BulkAddMatchesRepeatedAdd) {
  Histogram a(0.0, 10.0, 4);
  Histogram b(0.0, 10.0, 4);
  for (int i = 0; i < 7; ++i) a.add(3.3);
  b.add(3.3, 7);
  EXPECT_EQ(a.ascii(), b.ascii());
}

}  // namespace
}  // namespace nti
