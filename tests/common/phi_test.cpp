#include "common/phi.hpp"

#include <gtest/gtest.h>

namespace nti {
namespace {

TEST(Phi, SecondIs2Pow51) {
  EXPECT_EQ(Phi::from_sec(1).raw_value(), u128{1} << 51);
  EXPECT_EQ(Phi::from_sec(3).whole_seconds(), 3u);
}

TEST(Phi, DurationRoundTripExactSeconds) {
  const Phi p = Phi::from_duration(Duration::sec(7));
  EXPECT_EQ(p.whole_seconds(), 7u);
  EXPECT_EQ(p.to_duration(), Duration::sec(7));
}

TEST(Phi, DurationRoundTripSubSecond) {
  for (const auto ps : {std::int64_t{1}, std::int64_t{61'035}, std::int64_t{999'999'999'999}}) {
    const Duration d = Duration::ps(ps);
    const Duration back = Phi::from_duration(d).to_duration();
    // One phi is ~0.44 fs, far below 1 ps, so round trips are exact in ps.
    EXPECT_EQ(back, d) << ps;
  }
}

TEST(Phi, Frac24MatchesGranularity) {
  // 2^-24 s steps: half a unit must floor, a full unit must increment.
  const Phi half = Phi::raw(u128{1} << (51 - 25));
  EXPECT_EQ(half.frac24(), 0u);
  const Phi unit = Phi::raw(u128{1} << (51 - 24));
  EXPECT_EQ(unit.frac24(), 1u);
}

TEST(Phi, AdditionAndScaling) {
  const Phi a = Phi::from_sec(1);
  const Phi b = a * 3;
  EXPECT_EQ(b.whole_seconds(), 3u);
  EXPECT_EQ((a + b).whole_seconds(), 4u);
}

TEST(PhiDelta, SignedConversions) {
  const PhiDelta neg = PhiDelta::from_duration(-Duration::us(5));
  EXPECT_LT(neg.raw_value(), 0);
  EXPECT_EQ(neg.to_duration(), -Duration::us(5));
  EXPECT_NEAR(neg.to_sec_f(), -5e-6, 1e-12);
}

TEST(PhiDelta, DifferenceOfPhis) {
  const Phi a = Phi::from_duration(Duration::ms(10));
  const Phi b = Phi::from_duration(Duration::ms(4));
  EXPECT_EQ((a - b).to_duration(), Duration::ms(6));
  EXPECT_EQ((b - a).to_duration(), -Duration::ms(6));
}

TEST(PhiDelta, PlusAppliesSignedOffset) {
  const Phi base = Phi::from_sec(10);
  const Phi fwd = base.plus(PhiDelta::from_duration(Duration::ms(1)));
  const Phi back = base.plus(PhiDelta::from_duration(-Duration::ms(1)));
  EXPECT_EQ((fwd - base).to_duration(), Duration::ms(1));
  EXPECT_EQ((base - back).to_duration(), Duration::ms(1));
}

TEST(Phi, NinetyOneBitHeadroom) {
  // 91 bits at 2^-51 s per unit covers 2^40 s (~34,000 years): the state
  // register never wraps within any simulation horizon.
  const Phi big = Phi::from_sec(1ull << 39);
  EXPECT_EQ(big.whole_seconds(), 1ull << 39);
  EXPECT_LT(big.raw_value(), u128{1} << 91);
}

}  // namespace
}  // namespace nti
