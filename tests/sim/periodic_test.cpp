#include "sim/periodic.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nti::sim {
namespace {

TEST(PeriodicTask, FiresOnTheGrid) {
  Engine e;
  std::vector<SimTime> fires;
  PeriodicTask task(e, SimTime::from_ps(100), Duration::ps(50),
                    [&](std::uint64_t) { fires.push_back(e.now()); });
  e.run_until(SimTime::from_ps(300));
  ASSERT_GE(fires.size(), 5u);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(fires[k], SimTime::from_ps(100 + 50 * static_cast<std::int64_t>(k)));
  }
}

TEST(PeriodicTask, PassesFiringIndex) {
  Engine e;
  std::vector<std::uint64_t> ks;
  PeriodicTask task(e, SimTime::epoch(), Duration::ps(10),
                    [&](std::uint64_t k) { ks.push_back(k); });
  e.run_until(SimTime::from_ps(35));
  EXPECT_EQ(ks, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(PeriodicTask, StopFromInsideHandler) {
  Engine e;
  int fired = 0;
  PeriodicTask task(e, SimTime::epoch(), Duration::ps(10), [&](std::uint64_t k) {
    ++fired;
    if (k == 2) task.stop();
  });
  e.run();
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTask, DestructionCancels) {
  Engine e;
  int fired = 0;
  {
    PeriodicTask task(e, SimTime::epoch(), Duration::ps(10),
                      [&](std::uint64_t) { ++fired; });
    e.run_until(SimTime::from_ps(25));
  }
  e.run_until(SimTime::from_ps(1000));
  EXPECT_EQ(fired, 3);  // 0, 10, 20 -- nothing after destruction
}

TEST(PeriodicTask, NoDriftAccumulation) {
  // The k-th firing is start + k*period exactly, regardless of handler
  // count -- no floating accumulation.
  Engine e;
  SimTime last;
  std::uint64_t last_k = 0;
  PeriodicTask task(e, SimTime::from_ps(7), Duration::ps(13),
                    [&](std::uint64_t k) {
                      last = e.now();
                      last_k = k;
                    });
  e.run_until(SimTime::from_ps(13'000'007));
  EXPECT_EQ(last.count_ps(), 7 + 13 * static_cast<std::int64_t>(last_k));
}

}  // namespace
}  // namespace nti::sim
