// Lookahead property tests for the sharded event engine (docs/SHARDING.md).
//
// The conservative-lookahead contract under randomized link latencies and
// send schedules: no delivery executes before send + link latency (in fact
// exactly at it), per-shard virtual time never runs backwards as seen by
// deliveries, per-segment trace timestamps are monotone, and zero-latency
// gateway links — which would leave a shard no safe horizon — are rejected
// at validation with an explanatory error.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/sharded.hpp"
#include "cluster/topology.hpp"
#include "common/rng.hpp"
#include "sim/periodic.hpp"
#include "sim/shard.hpp"

namespace nti {
namespace {

TEST(ShardLookahead, DeliveredExactlyAtSendPlusLatencyRandomized) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    RngStream rng(seed * 7919 + 1);
    sim::ShardGroup group(3);
    struct TestLink {
      std::size_t id;
      std::size_t src;
      std::int64_t latency_ps;
    };
    std::vector<TestLink> links;
    for (int i = 0; i < 4; ++i) {
      const auto src = static_cast<std::size_t>(rng.uniform_int(0, 2));
      auto dst = static_cast<std::size_t>(rng.uniform_int(0, 2));
      if (dst == src) dst = (dst + 1) % 3;
      const Duration latency = rng.uniform(Duration::us(1), Duration::ms(5));
      links.push_back(
          TestLink{group.add_link(src, dst, latency), src, latency.count_ps()});
    }
    group.set_record_handoffs(true);

    std::size_t expected = 0;
    for (const TestLink& l : links) {
      for (int k = 0; k < 25; ++k) {
        const SimTime t =
            SimTime::epoch() + rng.uniform(Duration::us(1), Duration::ms(80));
        group.engine(l.src).schedule_at(
            t, [&group, id = l.id] { group.send(id, [] {}); });
        ++expected;
      }
    }
    group.run_until(SimTime::epoch() + Duration::ms(100));

    const auto records = group.handoff_records();
    ASSERT_EQ(records.size(), expected) << "seed " << seed;
    for (const sim::HandoffRecord& r : records) {
      const std::int64_t latency_ps = links[r.link].latency_ps;
      // The hard property: never early...
      EXPECT_GE(r.delivered_ps, r.send_ps + latency_ps) << "seed " << seed;
      // ...and this engine delivers with zero scheduling slop.
      EXPECT_EQ(r.arrival_ps, r.send_ps + latency_ps) << "seed " << seed;
      EXPECT_EQ(r.delivered_ps, r.arrival_ps) << "seed " << seed;
    }
  }
}

TEST(ShardLookahead, DeliveryTimesMonotonePerShard) {
  sim::ShardGroup group(2);
  const std::size_t l01 = group.add_link(0, 1, Duration::us(10));
  const std::size_t l10 = group.add_link(1, 0, Duration::us(17));

  std::vector<std::int64_t> seen_on0;
  std::vector<std::int64_t> seen_on1;
  sim::PeriodicTask ping(
      group.engine(0), SimTime::epoch() + Duration::us(3), Duration::us(7),
      [&](std::uint64_t) {
        group.send(l01, [&] { seen_on1.push_back(group.engine(1).now().count_ps()); });
      });
  sim::PeriodicTask pong(
      group.engine(1), SimTime::epoch() + Duration::us(5), Duration::us(11),
      [&](std::uint64_t) {
        group.send(l10, [&] { seen_on0.push_back(group.engine(0).now().count_ps()); });
      });
  group.run_until(SimTime::epoch() + Duration::ms(2));

  ASSERT_GT(seen_on0.size(), 50u);
  ASSERT_GT(seen_on1.size(), 50u);
  for (std::size_t i = 1; i < seen_on0.size(); ++i) {
    ASSERT_LE(seen_on0[i - 1], seen_on0[i]);
  }
  for (std::size_t i = 1; i < seen_on1.size(); ++i) {
    ASSERT_LE(seen_on1[i - 1], seen_on1[i]);
  }
  EXPECT_GT(group.cross_shard_handoffs(), 0u);
}

TEST(ShardLookahead, SegmentTraceTimestampsMonotone) {
  cluster::ClusterConfig cfg;
  cfg.seed = 21;
  cfg.sync.round_period = Duration::ms(200);
  cfg.sync.resync_offset = Duration::ms(50);
  cfg.initial_offset_spread = Duration::us(100);
  cfg.trace_capacity = 4096;
  cfg.topology = cluster::TopologySpec::chain(3, 3, Duration::ms(1));
  cfg.topology.bridge_phase = Duration::ms(60);

  cluster::ShardedCluster sc(cfg);
  sc.start();
  sc.run(Duration::ms(900), Duration::ms(200));

  for (int s = 0; s < sc.num_segments(); ++s) {
    obs::TraceRing* ring = sc.segment(s).trace();
    ASSERT_NE(ring, nullptr);
    ASSERT_GT(ring->size(), 0u) << "segment " << s;
    for (std::size_t i = 1; i < ring->size(); ++i) {
      ASSERT_LE(ring->at(i - 1).t.count_ps(), ring->at(i).t.count_ps())
          << "segment " << s << " record " << i;
    }
  }
  EXPECT_GT(sc.group().deliveries(), 0u);
}

TEST(ShardLookahead, ZeroLatencyLinkRejectedByGroup) {
  sim::ShardGroup group(2);
  try {
    group.add_link(0, 1, Duration::zero());
    FAIL() << "zero-latency link must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("lookahead"), std::string::npos)
        << "error should explain the lookahead rule, got: " << e.what();
  }
  // Sub-nanosecond is just as degenerate: the advance target is
  // horizon - 1 ps, so a 1 ps link would deadlock the receiving shard.
  EXPECT_THROW(group.add_link(0, 1, Duration::ps(999)), std::invalid_argument);
  EXPECT_NO_THROW(group.add_link(0, 1, sim::ShardGroup::kMinLinkLatency));
}

TEST(ShardLookahead, ZeroLatencyLinkRejectedByTopologyValidation) {
  cluster::TopologySpec topo;
  topo.segment_sizes = {2, 2};
  topo.links.push_back(cluster::TopoLink{0, 1, Duration::zero()});
  try {
    topo.validate();
    FAIL() << "zero-latency gateway must be rejected at config validation";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("lookahead"), std::string::npos)
        << "error should explain the lookahead rule, got: " << e.what();
  }

  cluster::ClusterConfig cfg;
  cfg.topology = topo;
  EXPECT_THROW(cluster::ShardedCluster{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace nti
